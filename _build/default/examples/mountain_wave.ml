(* The paper's correctness workload (Figure 5): the Williamson TC5
   zonal flow over an isolated mountain.  Integrates half a day, prints
   a coarse longitude-latitude picture of the total height field and a
   conservation time series, then compares the original and refactored
   execution engines.

   Run with: dune exec examples/mountain_wave.exe *)

open Mpas_swe
open Mpas_numerics

(* Render a cell field as characters on a lon-lat grid. *)
let ascii_map (mesh : Mpas_mesh.Mesh.t) field ~cols ~rows =
  let glyphs = " .:-=+*#%@" in
  let lo, hi = Stats.min_max field in
  let span = if hi > lo then hi -. lo else 1. in
  let buf = Buffer.create ((cols + 1) * rows) in
  for r = 0 to rows - 1 do
    let lat = Float.pi /. 2. -. (Float.pi *. (float_of_int r +. 0.5) /. float_of_int rows) in
    for col = 0 to cols - 1 do
      let lon = (2. *. Float.pi *. (float_of_int col +. 0.5) /. float_of_int cols) -. Float.pi in
      (* Nearest cell by great-circle distance to the probe point. *)
      let p = Sphere.of_lonlat lon lat in
      let best = ref 0 and best_d = ref infinity in
      for c = 0 to mesh.n_cells - 1 do
        let d = Vec3.dist p mesh.x_cell.(c) in
        if d < !best_d then begin
          best_d := d;
          best := c
        end
      done;
      let v = (field.(!best) -. lo) /. span in
      let k = Int.min (String.length glyphs - 1) (int_of_float (v *. 10.)) in
      Buffer.add_char buf glyphs.[k]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let () =
  let mesh = Mpas_mesh.Build.icosahedral ~level:4 ~lloyd_iters:3 () in
  let model = Model.init Williamson.Tc5 mesh in
  let reference = Model.invariants model in
  Printf.printf "TC5 on %d cells, dt = %.0f s\n\n" mesh.n_cells model.dt;
  Printf.printf "%-8s %-12s %-12s %-12s\n" "hours" "mass" "energy" "enstrophy";
  let hours_per_block = 3 in
  for _block = 1 to 4 do
    let steps =
      int_of_float (float_of_int hours_per_block *. 3600. /. model.dt)
    in
    Model.run model ~steps;
    let d = Conservation.drift ~reference (Model.invariants model) in
    Printf.printf "%-8.1f %-12.3e %-12.3e %-12.3e\n" (Model.time model /. 3600.)
      d.mass d.energy d.potential_enstrophy
  done;
  print_newline ();
  print_endline "total height h+b (dark = high):";
  print_string (ascii_map mesh (Model.total_height model) ~cols:72 ~rows:18);
  print_newline ();

  (* The Figure 5 comparison: original scatter engine vs refactored. *)
  let m1 = Model.init ~engine:Timestep.original Williamson.Tc5 mesh in
  let m2 = Model.init Williamson.Tc5 mesh in
  let steps = int_of_float (6. *. 3600. /. m1.dt) in
  Model.run m1 ~steps;
  Model.run m2 ~steps;
  let th1 = Model.total_height m1 and th2 = Model.total_height m2 in
  let _, hi = Stats.min_max th1 in
  Printf.printf
    "original vs refactored after %d steps: max |diff| = %.3e m (%.1e of \
     the field)\n"
    steps
    (Stats.max_abs_diff th1 th2)
    (Stats.max_abs_diff th1 th2 /. hi)
