(* Simulated-MPI execution: run the mountain-wave case partitioned over
   several ranks with halo exchanges, verify the result is bitwise
   identical to the serial run, report the halo traffic, and show the
   kernel profile that motivates the kernel-level hybrid design.

   Run with: dune exec examples/distributed_run.exe *)

open Mpas_swe
open Mpas_dist

let () =
  let mesh = Mpas_mesh.Build.icosahedral ~level:4 ~lloyd_iters:2 () in
  let n_ranks = 4 in
  let steps = 10 in

  (* Serial reference. *)
  let serial = Model.init Williamson.Tc5 mesh in
  Model.run serial ~steps;

  (* The same integration over four ranks. *)
  let dist = Driver.init ~n_ranks Williamson.Tc5 mesh in
  Array.iter
    (fun s ->
      Printf.printf
        "rank %d: %5d cells owned, %4d ghost cells, %4d ghost edges\n"
        s.Exchange.rank
        (Array.length s.Exchange.own_cells)
        (Array.length s.Exchange.ghost_cells)
        (Array.length s.Exchange.ghost_edges))
    dist.Driver.exchange.Exchange.sets;
  Exchange.reset_stats dist.Driver.exchange;
  Driver.run dist ~steps;

  let gathered = Driver.gather_state dist in
  let identical =
    gathered.Fields.h = serial.Model.state.Fields.h
    && gathered.Fields.u = serial.Model.state.Fields.u
  in
  Printf.printf
    "\nafter %d steps: distributed result bitwise identical to serial: %b\n"
    steps identical;
  Printf.printf "halo traffic: %.2f MB in %d exchanges (%.1f kB per step)\n"
    (Exchange.bytes_moved dist.Driver.exchange /. 1e6)
    dist.Driver.exchange.Exchange.exchanges
    (Exchange.bytes_moved dist.Driver.exchange /. 1e3 /. float_of_int steps);

  (* The per-kernel profile, i.e. the measurement behind Figure 2's
     kernel placement. *)
  print_endline "\nkernel profile (serial, this machine):";
  print_endline (Profile.to_string (Profile.measure serial ~steps:5))
