(* The hybrid-design study of the paper on one node: build the
   data-flow graph, place pattern instances with the kernel-level and
   pattern-driven plans, simulate the schedules on the modelled
   CPU + Xeon Phi node, and show how the adjustable split trades load
   between host and device (paper Figures 2, 4, 6, 7).

   Run with: dune exec examples/hybrid_speedup.exe *)

open Mpas_patterns
open Mpas_machine
open Mpas_hybrid

let () =
  (* The data-flow diagram exposes the concurrency the scheduler uses. *)
  let g = Mpas_dataflow.Graph.build () in
  let sets = Mpas_dataflow.Graph.level_sets g in
  Printf.printf "data-flow graph: %d pattern instances, %d levels\n"
    (Mpas_dataflow.Graph.n_nodes g)
    (Array.length sets);
  Array.iteri
    (fun l nodes ->
      Printf.printf "  level %d: %s\n" l
        (String.concat " "
           (List.map
              (fun i -> g.nodes.(i).Mpas_dataflow.Graph.instance.Pattern.id)
              nodes)))
    sets;
  print_newline ();

  (* Figure 6 in brief: the optimization ladder on one device. *)
  let stats = Cost.stats_of_level 8 in
  let p = Costmodel.default_params in
  let base =
    Costmodel.step_time_single_device Hw.xeon_phi_5110p p Costmodel.baseline
      stats
  in
  print_endline "one Xeon Phi, 30-km mesh:";
  List.iter
    (fun (name, flags) ->
      let t =
        Costmodel.step_time_single_device Hw.xeon_phi_5110p p flags stats
      in
      Printf.printf "  %-12s %8.3f s/step  (%.1fx)\n" name t (base /. t))
    Costmodel.fig6_ladder;
  print_newline ();

  (* Figure 7 in brief: how the adjustable split balances the node. *)
  let cfg = Schedule.default_config ~split:0.5 in
  print_endline "pattern-driven makespan vs adjustable split (30-km mesh):";
  List.iter
    (fun split ->
      let r = Schedule.step_result { cfg with split } stats Plan.pattern_driven in
      let host_u, dev_u = Simulate.utilization r in
      Printf.printf
        "  split %.2f -> %.3f s/step (host %2.0f%% busy, device %2.0f%%)\n"
        split r.Simulate.makespan (100. *. host_u) (100. *. dev_u))
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  let best_split, best = Schedule.optimize_split cfg stats Plan.pattern_driven in
  print_newline ();
  print_endline
    "one substep of the pattern-driven schedule at the optimal split \
     (host '#', device '=', time left to right):";
  let r =
    Schedule.step_result { cfg with split = best_split } stats
      Plan.pattern_driven
  in
  let lines = String.split_on_char '\n' (Simulate.render_timeline ~width:64 r) in
  List.iteri (fun i l -> if i < 24 then print_endline l) lines;
  print_endline "  ... (remaining substeps identical in structure)";
  let kernel = Schedule.step_time cfg stats Plan.kernel_level in
  let cpu =
    Costmodel.step_time_single_device Hw.xeon_e5_2680_v2 p Costmodel.baseline
      stats
  in
  Printf.printf
    "\nbest split %.2f: pattern-driven %.3f s/step (%.2fx over the \
     single-core CPU code) vs kernel-level %.3f s/step (%.2fx)\n"
    best_split best (cpu /. best) kernel (cpu /. kernel)
