examples/distributed_run.ml: Array Driver Exchange Fields Model Mpas_dist Mpas_mesh Mpas_swe Printf Profile Williamson
