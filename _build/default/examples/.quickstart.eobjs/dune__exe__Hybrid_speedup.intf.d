examples/hybrid_speedup.mli:
