examples/quickstart.mli:
