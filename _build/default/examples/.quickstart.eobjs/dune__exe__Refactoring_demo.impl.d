examples/refactoring_demo.ml: Array Build Mpas_mesh Mpas_numerics Mpas_par Mpas_patterns Printf Refactor Rng Stats Unix
