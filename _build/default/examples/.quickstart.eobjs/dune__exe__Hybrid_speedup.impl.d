examples/hybrid_speedup.ml: Array Cost Costmodel Hw List Mpas_dataflow Mpas_hybrid Mpas_machine Mpas_patterns Pattern Plan Printf Schedule Simulate String
