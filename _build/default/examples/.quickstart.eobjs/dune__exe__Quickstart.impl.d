examples/quickstart.ml: Array Conservation Model Mpas_mesh Mpas_numerics Mpas_swe Printf Williamson
