examples/distributed_run.mli:
