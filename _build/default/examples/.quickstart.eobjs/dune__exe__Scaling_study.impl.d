examples/scaling_study.ml: Cost Costmodel Halo Hw List Mpas_hybrid Mpas_machine Mpas_mesh Mpas_partition Mpas_patterns Netmodel Partition Plan Printf Schedule
