examples/mountain_wave.ml: Array Buffer Conservation Float Int Model Mpas_mesh Mpas_numerics Mpas_swe Printf Sphere Stats String Timestep Vec3 Williamson
