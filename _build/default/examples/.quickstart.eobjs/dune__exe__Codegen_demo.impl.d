examples/codegen_demo.ml: Array Emit Library List Mpas_gen Mpas_mesh Mpas_numerics Mpas_swe Printf Stencil String
