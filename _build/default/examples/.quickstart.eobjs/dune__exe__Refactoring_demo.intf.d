examples/refactoring_demo.mli:
