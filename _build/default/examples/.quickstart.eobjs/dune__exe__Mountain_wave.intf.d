examples/mountain_wave.mli:
