(* The regularity-aware loop refactoring of the paper (Algorithms 2, 3
   and 4) on a real mesh: the edge-order scatter races under
   multithreading, the cell-order gather does not, and the label-matrix
   form removes the branch.  This example times all three forms on this
   machine and verifies their equivalence.

   Run with: dune exec examples/refactoring_demo.exe *)

open Mpas_numerics
open Mpas_mesh
open Mpas_patterns

let time_it f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let () =
  let mesh = Build.icosahedral ~level:6 () in
  Printf.printf "mesh: %d cells, %d edges (the paper's 120-km mesh)\n\n"
    mesh.n_cells mesh.n_edges;
  let rng = Rng.create 7L in
  let x = Array.init mesh.n_edges (fun _ -> Rng.uniform rng (-1.) 1.) in
  let y_scatter = Array.make mesh.n_cells 0. in
  let y_gather = Array.make mesh.n_cells 0. in
  let y_branch_free = Array.make mesh.n_cells 0. in
  let labels = Refactor.label_matrix mesh in

  let reps = 20 in
  let bench name f =
    let t = time_it (fun () -> for _ = 1 to reps do f () done) in
    Printf.printf "  %-34s %8.2f ms/sweep\n" name (1000. *. t /. float_of_int reps)
  in
  print_endline "edge-to-cell reduction, one sweep over the mesh:";
  bench "Algorithm 2 (edge-order scatter)" (fun () ->
      Refactor.edge_to_cell_scatter mesh ~x ~y:y_scatter);
  bench "Algorithm 3 (cell-order gather)" (fun () ->
      Refactor.edge_to_cell_gather mesh ~x ~y:y_gather);
  bench "Algorithm 4 (branch-free, label L)" (fun () ->
      Refactor.edge_to_cell_branch_free mesh labels ~x ~y:y_branch_free);
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      bench "Algorithm 4 on a 4-domain pool" (fun () ->
          Refactor.edge_to_cell_branch_free ~pool mesh labels ~x
            ~y:y_branch_free));

  Printf.printf "\nequivalence: scatter vs gather %.2e, gather vs branch-free %.2e\n"
    (Stats.max_abs_diff y_scatter y_gather)
    (Stats.max_abs_diff y_gather y_branch_free);

  (* The label matrix is exactly the mesh's edge_sign_on_cell array —
     the paper's L(i,j) in Algorithm 4. *)
  let l = Refactor.labels labels in
  let same = ref true in
  for c = 0 to mesh.n_cells - 1 do
    for j = 0 to mesh.n_edges_on_cell.(c) - 1 do
      if l.(c).(j) <> mesh.edge_sign_on_cell.(c).(j) then same := false
    done
  done;
  Printf.printf "label matrix equals edge_sign_on_cell: %b\n" !same
