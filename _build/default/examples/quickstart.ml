(* Quickstart: build a small SCVT mesh, run the shallow-water model on
   the Williamson mountain test case for a simulated hour, and print
   the conservation diagnostics.

   Run with: dune exec examples/quickstart.exe *)

open Mpas_swe

let () =
  (* 1. An icosahedral SCVT mesh: level 4 = 2562 cells (~480 km). *)
  let mesh = Mpas_mesh.Build.icosahedral ~level:4 ~lloyd_iters:3 () in
  Printf.printf "mesh: %d cells, %d edges, %d vertices\n" mesh.n_cells
    mesh.n_edges mesh.n_vertices;

  (* 2. A model initialized from Williamson test case 5 (zonal flow
     over an isolated mountain), with an automatic CFL-based step. *)
  let model = Model.init Williamson.Tc5 mesh in
  Printf.printf "dt = %.0f s\n" model.dt;

  (* 3. Integrate one simulated hour and check the invariants. *)
  let before = Model.invariants model in
  let steps = int_of_float (3600. /. model.dt) + 1 in
  Model.run model ~steps;
  let drift = Conservation.drift ~reference:before (Model.invariants model) in
  Printf.printf "after %.1f min: mass drift %.2e, energy drift %.2e\n"
    (Model.time model /. 60.)
    drift.mass drift.energy;

  (* 4. The same model runs on a pool of OCaml domains with the
     refactored (race-free) loops — same answer, bit for bit. *)
  let h_serial = Array.copy model.state.h in
  let model2 = Model.init Williamson.Tc5 mesh in
  Model.with_parallel_engine model2 ~n_domains:4 (fun m ->
      Model.run m ~steps);
  Printf.printf "serial vs 4-domain max |dh| = %.3e m\n"
    (Mpas_numerics.Stats.max_abs_diff h_serial model2.state.h)
