(* Multi-process scaling study (paper Figures 8 and 9): partition a
   real mesh, build halos, feed their measured shapes into the network
   model, and print strong- and weak-scaling tables.

   Run with: dune exec examples/scaling_study.exe *)

open Mpas_machine
open Mpas_patterns
open Mpas_hybrid
open Mpas_partition

let () =
  (* Partition a real level-5 mesh and compare the measured halos with
     the analytic surface-to-volume model used for the big meshes. *)
  let mesh = Mpas_mesh.Build.icosahedral ~level:5 ~lloyd_iters:2 () in
  Printf.printf "partitioning %d cells:\n" mesh.n_cells;
  Printf.printf "  %-6s %-10s %-10s %-16s %-16s\n" "ranks" "imbalance"
    "edge cut" "measured halo" "analytic halo";
  List.iter
    (fun ranks ->
      let part = Partition.sfc mesh ~n_parts:ranks in
      let halos = Halo.build mesh part in
      let measured = Netmodel.patch_of_partition (Halo.summaries halos) in
      let analytic = Netmodel.analytic_patch ~cells:mesh.n_cells ~ranks in
      Printf.printf "  %-6d %-10.3f %-10d %-16d %-16d\n" ranks
        (Partition.imbalance part)
        (Partition.edge_cut mesh part)
        measured.Netmodel.boundary_cells analytic.Netmodel.boundary_cells)
    [ 2; 4; 8; 16 ];
  print_newline ();

  (* Strong scaling of the hybrid code on the 30-km mesh. *)
  let stats = Cost.stats_of_level 8 in
  let p = Costmodel.default_params in
  let net = Hw.fdr_infiniband in
  let cfg = Schedule.default_config ~split:0. in
  Printf.printf "strong scaling, 30-km mesh (%d cells):\n" stats.Cost.n_cells;
  Printf.printf "  %-6s %-12s %-12s %-12s\n" "ranks" "cpu s/step"
    "hybrid s/step" "efficiency";
  let t1 = ref 0. in
  List.iter
    (fun ranks ->
      let local =
        {
          stats with
          Cost.n_cells = stats.Cost.n_cells / ranks;
          n_edges = stats.Cost.n_edges / ranks;
          n_vertices = stats.Cost.n_vertices / ranks;
        }
      in
      let patch = Netmodel.analytic_patch ~cells:stats.Cost.n_cells ~ranks in
      let cpu =
        Costmodel.step_time_single_device Hw.xeon_e5_2680_v2 p
          Costmodel.baseline local
        +. Netmodel.comm_time_per_step net patch
      in
      let _, compute =
        Schedule.optimize_split ~grid:20 cfg local Plan.pattern_driven
      in
      let hybrid =
        compute
        +. Netmodel.comm_time_per_step net ~device_link:Hw.pcie_gen2_x16 patch
      in
      if ranks = 1 then t1 := hybrid;
      Printf.printf "  %-6d %-12.3f %-12.3f %-12.2f\n" ranks cpu hybrid
        (!t1 /. (hybrid *. float_of_int ranks)))
    [ 1; 2; 4; 8; 16; 32; 64 ];
  print_newline ();

  (* Weak scaling at one 120-km mesh per process. *)
  let per_proc = Cost.stats_of_level 6 in
  Printf.printf "weak scaling, 40962 cells per process:\n";
  Printf.printf "  %-6s %-12s %-12s\n" "ranks" "cpu s/step" "hybrid s/step";
  List.iter
    (fun ranks ->
      let patch =
        Netmodel.analytic_patch ~cells:(per_proc.Cost.n_cells * ranks) ~ranks
      in
      let cpu =
        Costmodel.step_time_single_device Hw.xeon_e5_2680_v2 p
          Costmodel.baseline per_proc
        +. Netmodel.comm_time_per_step net patch
      in
      let _, compute =
        Schedule.optimize_split ~grid:20 cfg per_proc Plan.pattern_driven
      in
      let hybrid =
        compute
        +. Netmodel.comm_time_per_step net ~device_link:Hw.pcie_gen2_x16 patch
      in
      Printf.printf "  %-6d %-12.3f %-12.3f\n" ranks cpu hybrid)
    [ 1; 4; 16; 64 ]
