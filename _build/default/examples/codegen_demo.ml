(* The paper's future work (§VI), running: "leveraging automatic code
   generation techniques for the ease of implementation and
   optimization".  A stencil kernel is written once as an expression
   tree; the same description is type-checked, executed over a real
   mesh (race-free gather form by construction, pool-parallel), checked
   against the hand-written kernel, and emitted as OCaml source.

   Run with: dune exec examples/codegen_demo.exe *)

open Mpas_gen
open Stencil

let () =
  let mesh = Mpas_mesh.Build.icosahedral ~level:4 ~lloyd_iters:3 () in

  (* 1. A model kernel from the Table I library. *)
  let divergence = Library.spec ~gravity:9.80616 ~apvm_dt:0. "A3 divergence" in
  Printf.printf "library kernel %s: %s\n" divergence.kernel_name
    (match check divergence with [] -> "well-typed" | e -> String.concat "; " e);

  let state, _ = Mpas_swe.Williamson.init Mpas_swe.Williamson.Tc5 mesh in
  let env = { mesh; fields = [ ("u", state.Mpas_swe.Fields.u) ] } in
  let out = Array.make mesh.n_cells 0. in
  Stencil.run env divergence ~out;
  let reference = Array.make mesh.n_cells 0. in
  Mpas_swe.Operators.divergence mesh ~u:state.Mpas_swe.Fields.u ~out:reference;
  Printf.printf "IR vs hand-written divergence: max diff %.2e\n\n"
    (Mpas_numerics.Stats.max_abs_diff out reference);

  (* 2. A kernel that exists nowhere in the hand-written code: absolute
     vorticity normalized by planetary vorticity, defined on the spot. *)
  let two_omega = 2. *. Mpas_mesh.Build.earth_omega in
  let custom =
    {
      kernel_name = "absolute vorticity / 2 Omega";
      out_space = Vertices;
      reads = [ ("u", Edges) ];
      body =
        Div
          ( Add
              ( Geom Coriolis,
                Div
                  ( Sum (Edges_of_vertex, Mul (Coef, Mul (Field "u", Geom Dc))),
                    Geom Area_triangle ) ),
            Const two_omega );
    }
  in
  (match check custom with
  | [] -> print_endline "custom kernel: well-typed"
  | errs -> List.iter print_endline errs);
  let eta = Array.make mesh.n_vertices 0. in
  Stencil.run env custom ~out:eta;
  let lo, hi = Mpas_numerics.Stats.min_max eta in
  Printf.printf "absolute vorticity / 2 Omega: [%.3f, %.3f] (+-1 at the poles)\n\n"
    lo hi;

  (* 3. The same description emits its own loop source. *)
  print_endline "generated source:";
  print_endline (Emit.to_ocaml custom);

  (* 4. The type checker catches mistakes before they run. *)
  let broken = { custom with body = Mul (Geom Dc, Field "u") } in
  Printf.printf "a deliberately broken kernel reports: %s\n"
    (String.concat "; " (check broken))
