lib/patterns/pattern.ml: List
