lib/patterns/cost.mli: Mpas_mesh Pattern
