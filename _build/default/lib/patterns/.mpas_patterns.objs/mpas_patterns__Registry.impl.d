lib/patterns/registry.ml: Format List Pattern
