lib/patterns/refactor.ml: Array Mesh Mpas_mesh Mpas_par Pool
