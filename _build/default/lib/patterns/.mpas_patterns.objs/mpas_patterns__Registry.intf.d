lib/patterns/registry.mli: Pattern
