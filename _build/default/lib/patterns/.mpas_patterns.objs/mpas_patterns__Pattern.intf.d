lib/patterns/pattern.mli:
