lib/patterns/cost.ml: Array List Mpas_mesh Mpas_numerics Pattern Registry
