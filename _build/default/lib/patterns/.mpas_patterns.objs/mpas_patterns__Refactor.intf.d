lib/patterns/refactor.mli: Mesh Mpas_mesh Mpas_par Pool
