open Mpas_mesh
open Mpas_par

let pfor pool lo hi f =
  match pool with
  | None ->
      for i = lo to hi - 1 do
        f i
      done
  | Some p -> Pool.parallel_for p ~lo ~hi f

let edge_to_cell_scatter (m : Mesh.t) ~x ~y =
  Array.fill y 0 m.n_cells 0.;
  for e = 0 to m.n_edges - 1 do
    let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
    y.(c1) <- y.(c1) +. x.(e);
    y.(c2) <- y.(c2) -. x.(e)
  done

let edge_to_cell_gather ?pool (m : Mesh.t) ~x ~y =
  pfor pool 0 m.n_cells (fun c ->
      let acc = ref 0. in
      for j = 0 to m.n_edges_on_cell.(c) - 1 do
        let e = m.edges_on_cell.(c).(j) in
        if c = m.cells_on_edge.(e).(0) then acc := !acc +. x.(e)
        else acc := !acc -. x.(e)
      done;
      y.(c) <- !acc)

type label_matrix = float array array

let label_matrix (m : Mesh.t) =
  Array.init m.n_cells (fun c ->
      Array.init m.n_edges_on_cell.(c) (fun j ->
          if c = m.cells_on_edge.(m.edges_on_cell.(c).(j)).(0) then 1. else -1.))

let edge_to_cell_branch_free ?pool (m : Mesh.t) l ~x ~y =
  pfor pool 0 m.n_cells (fun c ->
      let acc = ref 0. in
      let labels = l.(c) and edges = m.edges_on_cell.(c) in
      for j = 0 to m.n_edges_on_cell.(c) - 1 do
        acc := !acc +. (labels.(j) *. x.(edges.(j)))
      done;
      y.(c) <- !acc)

(* Flat-layout variant of Algorithm 4: the packed [Mesh.csr] view
   already stores the +-1 label matrix ([cell_edge_signs], which equals
   [label_matrix] entry for entry) next to the packed edge ids, so the
   branch-free loop walks flat arrays with unit stride. *)
let edge_to_cell_csr ?pool (m : Mesh.t) ~x ~y =
  let csr : Mesh.csr = Mesh.csr m in
  if Array.length x < m.n_edges then
    invalid_arg "Refactor.edge_to_cell_csr: x shorter than n_edges";
  if Array.length y < m.n_cells then
    invalid_arg "Refactor.edge_to_cell_csr: y shorter than n_cells";
  let offsets = csr.cell_offsets
  and edges = csr.cell_edges
  and signs = csr.cell_edge_signs in
  let body ~lo ~hi =
    for c = lo to hi - 1 do
      let j0 = Array.unsafe_get offsets c
      and j1 = Array.unsafe_get offsets (c + 1) in
      let acc = ref 0. in
      for j = j0 to j1 - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get signs j
              *. Array.unsafe_get x (Array.unsafe_get edges j))
      done;
      Array.unsafe_set y c !acc
    done
  in
  match pool with
  | None -> if m.n_cells > 0 then body ~lo:0 ~hi:m.n_cells
  | Some p -> Pool.parallel_for_chunks p ~lo:0 ~hi:m.n_cells body

let labels l = l
