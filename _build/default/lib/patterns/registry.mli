(** Table I of the paper as data: every pattern instance of the
    shallow-water model with its kernel, input and output variables.

    Instance labels follow the paper's Figure 4 / Table I inventory
    (A1-A4, B1-B2, C1-C2, D1-D2, E, F, G, H1-H2, X1-X6 — 21 boxes in
    six kernels).  Where the published table is ambiguous about which
    letter a mixed-input loop carries, the label keeps the paper's id
    and the stencil letter records the paper's classification:
    - C1 is the Laplacian-diffusion update of [tend_u] (inputs at mass
      and vorticity points);
    - H1 is the PV-gradient computation feeding APVM (inputs at mass
      and vorticity points);
    - the paper's [d2fdx2_cell1]/[d2fdx2_cell2] pair is stored as the
      single cell field [d2fdx2_cell] (the pair denotes the two
      cell-side views from an edge). *)

type var = {
  var_name : string;
  var_point : Pattern.point;  (** where the variable lives *)
  var_static : bool;  (** true for state carried across substeps *)
}

(** All model variables appearing in the table. *)
val variables : var list

(** Look up a variable.
    @raise Not_found for unknown names. *)
val variable : string -> var

(** The 21 pattern instances in Algorithm 1 execution order. *)
val instances : Pattern.instance list

(** Instances of one kernel, in execution order. *)
val of_kernel : Pattern.kernel -> Pattern.instance list

(** Look up an instance by id.
    @raise Not_found for unknown ids. *)
val instance : string -> Pattern.instance

(** Count of stencil instances per letter, e.g. [(A, 4); (B, 2); ...] —
    the utilization numbers of Figure 4. *)
val letter_census : unit -> (Pattern.letter * int) list

(** Consistency of the registry itself: every input is either produced
    by an earlier instance (in execution order, wrapping across the
    substep boundary for state variables) or is a declared variable;
    every output is declared; ids are unique.  Returns violations. *)
val check : unit -> string list
