open Pattern

type var = { var_name : string; var_point : point; var_static : bool }

let v ?(static = false) name point =
  { var_name = name; var_point = point; var_static = static }

let variables =
  [
    v ~static:true "h" Mass;
    v ~static:true "u" Velocity;
    v ~static:true "provis_h" Mass;
    v ~static:true "provis_u" Velocity;
    v "tend_h" Mass;
    v "tend_u" Velocity;
    v "d2fdx2_cell" Mass;
    v "h_edge" Velocity;
    v "ke" Mass;
    v "divergence" Mass;
    v "vorticity" Vorticity;
    v "h_vertex" Vorticity;
    v "pv_vertex" Vorticity;
    v "pv_cell" Mass;
    v "v" Velocity;
    v "grad_pv_n" Velocity;
    v "grad_pv_t" Velocity;
    v "pv_edge" Velocity;
    v "uReconstructX" Mass;
    v "uReconstructY" Mass;
    v "uReconstructZ" Mass;
    v "uReconstructZonal" Mass;
    v "uReconstructMeridional" Mass;
  ]

let variable name =
  match List.find_opt (fun x -> x.var_name = name) variables with
  | Some x -> x
  | None -> raise Not_found

let mk id kind kernel spaces ~ins ?(stencil_reads = ins) ~outs ~irregular () =
  (match kind with
  | Local ->
      if stencil_reads <> [] && stencil_reads != ins then
        invalid_arg "Registry: local instances have no stencil reads"
  | Stencil _ -> ());
  {
    id;
    kind;
    kernel;
    spaces;
    inputs = ins;
    neighbour_inputs = (match kind with Local -> [] | Stencil _ -> stencil_reads);
    outputs = outs;
    irregular;
  }

(* Execution order per Algorithm 1: within one RK substep the kernels
   run compute_tend -> enforce_boundary_edge -> compute_next_substep_
   state -> compute_solve_diagnostics -> accumulative_update (with the
   reconstruction after the final substep); the diagnostics consumed by
   compute_tend are those produced in the previous substep. *)
let instances =
  [
    (* compute_tend *)
    mk "A1" (Stencil A) Compute_tend [ Mass ]
      ~ins:[ "provis_u"; "h_edge" ] ~outs:[ "tend_h" ] ~irregular:true ();
    mk "B1" (Stencil B) Compute_tend [ Velocity ]
      ~ins:[ "pv_edge"; "provis_u"; "h_edge"; "ke"; "provis_h" ]
      ~outs:[ "tend_u" ] ~irregular:false ();
    mk "C1" (Stencil C) Compute_tend [ Velocity ]
      ~ins:[ "divergence"; "vorticity"; "tend_u" ]
      ~stencil_reads:[ "divergence"; "vorticity" ]
      ~outs:[ "tend_u" ] ~irregular:false ();
    mk "X1" Local Compute_tend [ Velocity ] ~ins:[ "provis_u"; "tend_u" ]
      ~outs:[ "tend_u" ] ~irregular:false ();
    (* enforce_boundary_edge *)
    mk "X2" Local Enforce_boundary_edge [ Velocity ] ~ins:[ "tend_u" ]
      ~outs:[ "tend_u" ] ~irregular:false ();
    (* compute_next_substep_state *)
    mk "X3" Local Compute_next_substep_state [ Mass; Velocity ]
      ~ins:[ "h"; "u"; "tend_h"; "tend_u" ]
      ~outs:[ "provis_h"; "provis_u" ]
      ~irregular:false ();
    (* compute_solve_diagnostics *)
    mk "H2" (Stencil H) Compute_solve_diagnostics [ Mass ]
      ~ins:[ "provis_h" ] ~outs:[ "d2fdx2_cell" ] ~irregular:true ();
    mk "B2" (Stencil B) Compute_solve_diagnostics [ Velocity ]
      ~ins:[ "provis_h"; "d2fdx2_cell" ]
      ~outs:[ "h_edge" ] ~irregular:false ();
    mk "A2" (Stencil A) Compute_solve_diagnostics [ Mass ]
      ~ins:[ "provis_u" ] ~outs:[ "ke" ] ~irregular:true ();
    mk "A3" (Stencil A) Compute_solve_diagnostics [ Mass ]
      ~ins:[ "provis_u" ] ~outs:[ "divergence" ] ~irregular:true ();
    mk "D1" (Stencil D) Compute_solve_diagnostics [ Vorticity ]
      ~ins:[ "provis_u" ] ~outs:[ "vorticity" ] ~irregular:true ();
    mk "C2" (Stencil C) Compute_solve_diagnostics [ Vorticity ]
      ~ins:[ "provis_h" ] ~outs:[ "h_vertex" ] ~irregular:false ();
    mk "D2" (Stencil D) Compute_solve_diagnostics [ Vorticity ]
      ~ins:[ "vorticity"; "h_vertex" ]
      ~stencil_reads:[]
      ~outs:[ "pv_vertex" ] ~irregular:false ();
    mk "E" (Stencil E) Compute_solve_diagnostics [ Mass ]
      ~ins:[ "pv_vertex" ] ~outs:[ "pv_cell" ] ~irregular:true ();
    mk "G" (Stencil G) Compute_solve_diagnostics [ Velocity ]
      ~ins:[ "provis_u" ] ~outs:[ "v" ] ~irregular:false ();
    mk "H1" (Stencil H) Compute_solve_diagnostics [ Velocity ]
      ~ins:[ "pv_cell"; "pv_vertex" ]
      ~outs:[ "grad_pv_n"; "grad_pv_t" ]
      ~irregular:false ();
    mk "F" (Stencil F) Compute_solve_diagnostics [ Velocity ]
      ~ins:[ "pv_vertex"; "grad_pv_n"; "grad_pv_t"; "provis_u"; "v" ]
      ~stencil_reads:[ "pv_vertex" ]
      ~outs:[ "pv_edge" ] ~irregular:false ();
    (* accumulative_update *)
    mk "X4" Local Accumulative_update [ Mass ] ~ins:[ "h"; "tend_h" ]
      ~outs:[ "h" ] ~irregular:false ();
    mk "X5" Local Accumulative_update [ Velocity ] ~ins:[ "u"; "tend_u" ]
      ~outs:[ "u" ] ~irregular:false ();
    (* mpas_reconstruct *)
    mk "A4" (Stencil A) Mpas_reconstruct [ Mass ] ~ins:[ "u" ]
      ~outs:[ "uReconstructX"; "uReconstructY"; "uReconstructZ" ]
      ~irregular:false ();
    mk "X6" Local Mpas_reconstruct [ Mass ]
      ~ins:[ "uReconstructX"; "uReconstructY"; "uReconstructZ" ]
      ~outs:[ "uReconstructZonal"; "uReconstructMeridional" ]
      ~irregular:false ();
  ]

let of_kernel k = List.filter (fun i -> i.kernel = k) instances

let instance id =
  match List.find_opt (fun i -> i.id = id) instances with
  | Some i -> i
  | None -> raise Not_found

let letter_census () =
  List.map
    (fun l ->
      let n =
        List.length
          (List.filter (fun i -> i.kind = Stencil l) instances)
      in
      (l, n))
    all_letters

let check () =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Unique ids. *)
  let ids = List.map (fun i -> i.id) instances in
  let sorted = List.sort_uniq compare ids in
  if List.length sorted <> List.length ids then err "duplicate instance ids";
  (* All variables declared. *)
  List.iter
    (fun i ->
      List.iter
        (fun name ->
          match variable name with
          | _ -> ()
          | exception Not_found ->
              err "instance %s references undeclared variable %s" i.id name)
        (i.inputs @ i.outputs))
    instances;
  (* Every input is produced somewhere or is state. *)
  let produced name =
    List.exists (fun i -> List.mem name i.outputs) instances
  in
  List.iter
    (fun i ->
      List.iter
        (fun name ->
          match variable name with
          | { var_static = true; _ } -> ()
          | { var_static = false; _ } ->
              if not (produced name) then
                err "instance %s reads %s which nothing produces" i.id name
          | exception Not_found -> ())
        i.inputs)
    instances;
  (* Stencil reads are a subset of the inputs. *)
  List.iter
    (fun i ->
      List.iter
        (fun name ->
          if not (List.mem name i.inputs) then
            err "instance %s: neighbour input %s not among inputs" i.id name)
        i.neighbour_inputs)
    instances;
  (* Stencil iteration spaces match the letter's output point — except
     the two documented mixed-input instances that keep the paper's
     letter (C1 diffusion, H1 PV gradients), which iterate over edges. *)
  let mixed_letter_exceptions = [ "C1"; "H1" ] in
  List.iter
    (fun i ->
      if not (List.mem i.id mixed_letter_exceptions) then
        match stencil_output i with
        | None -> ()
        | Some p ->
            if not (List.mem p i.spaces) then
              err "instance %s: iteration spaces do not include %s output" i.id
                (point_name p))
    instances;
  List.rev !errors
