let to_string (s : Fields.state) =
  let buf = Buffer.create (1 lsl 16) in
  let pr fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  pr "mpas-state 1\n";
  pr "counts %d %d %d\n" (Array.length s.Fields.h) (Array.length s.Fields.u)
    (Array.length s.Fields.tracers);
  let dump name a =
    pr "%s" name;
    Array.iter (fun x -> pr " %.17g" x) a;
    pr "\n"
  in
  dump "h" s.Fields.h;
  dump "u" s.Fields.u;
  Array.iteri (fun k row -> dump (Format.sprintf "tracer%d" k) row) s.Fields.tracers;
  Buffer.contents buf

let of_string text =
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun t -> t <> "")
    |> ref
  in
  let next () =
    match !tokens with
    | [] -> failwith "State_io: unexpected end of input"
    | t :: rest ->
        tokens := rest;
        t
  in
  let expect tag =
    let t = next () in
    if t <> tag then failwith (Format.sprintf "State_io: expected %s, got %s" tag t)
  in
  let next_int () =
    match int_of_string_opt (next ()) with
    | Some i -> i
    | None -> failwith "State_io: expected integer"
  in
  let next_float () =
    match float_of_string_opt (next ()) with
    | Some f -> f
    | None -> failwith "State_io: expected float"
  in
  expect "mpas-state";
  if next_int () <> 1 then failwith "State_io: unsupported version";
  expect "counts";
  let n_cells = next_int () in
  let n_edges = next_int () in
  let n_tracers = next_int () in
  let read tag n =
    expect tag;
    Array.init n (fun _ -> next_float ())
  in
  let h = read "h" n_cells in
  let u = read "u" n_edges in
  let tracers =
    Array.init n_tracers (fun k -> read (Format.sprintf "tracer%d" k) n_cells)
  in
  { Fields.h; u; tracers }

let save s path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
