open Mpas_obs

type t = (Timestep.kernel * float) list

let of_snapshot snap =
  List.map
    (fun k ->
      let total =
        match
          Metrics.find_timer snap ("swe.kernel." ^ Timestep.kernel_name k)
        with
        | Some stats -> stats.Metrics.total_s
        | None -> 0.
      in
      (k, total))
    Timestep.all_kernels

let measure (model : Model.t) ~steps =
  (* A fresh registry isolates this measurement from the process-wide
     metrics; Timestep.observed composes with the engine's existing
     instrument hook, so a pre-instrumented engine keeps its hook. *)
  let registry = Metrics.create () in
  let saved = model.Model.engine in
  Model.set_engine model (Timestep.observed ~registry saved);
  Fun.protect
    ~finally:(fun () -> Model.set_engine model saved)
    (fun () -> Model.run model ~steps);
  of_snapshot (Metrics.snapshot registry)

let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0. t

let ranking t =
  List.sort (fun (_, a) (_, b) -> compare b a) t

let to_string t =
  let sum = total t in
  String.concat "\n"
    (List.map
       (fun (k, s) ->
         Format.sprintf "%-28s %8.2f ms  %5.1f%%" (Timestep.kernel_name k)
           (1000. *. s)
           (if sum > 0. then 100. *. s /. sum else 0.))
       (ranking t))
