type t = (Timestep.kernel * float) list

let measure (model : Model.t) ~steps =
  let acc = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace acc k 0.) Timestep.all_kernels;
  let instrument kernel f =
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    Hashtbl.replace acc kernel (Hashtbl.find acc kernel +. dt)
  in
  let saved = model.Model.engine in
  Model.set_engine model (Timestep.with_instrument saved instrument);
  Fun.protect
    ~finally:(fun () -> Model.set_engine model saved)
    (fun () -> Model.run model ~steps);
  List.map (fun k -> (k, Hashtbl.find acc k)) Timestep.all_kernels

let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0. t

let ranking t =
  List.sort (fun (_, a) (_, b) -> compare b a) t

let to_string t =
  let sum = total t in
  String.concat "\n"
    (List.map
       (fun (k, s) ->
         Format.sprintf "%-28s %8.2f ms  %5.1f%%" (Timestep.kernel_name k)
           (1000. *. s)
           (if sum > 0. then 100. *. s /. sum else 0.))
       (ranking t))
