(** Field containers for the shallow-water model.

    The prognostic state holds the fluid thickness [h] at mass points
    and the normal velocity [u] at velocity points (paper §II-B).  The
    diagnostic record holds every intermediate variable of Table I. *)

open Mpas_mesh

type state = {
  h : float array;  (** thickness at cells *)
  u : float array;  (** normal velocity at edges *)
  tracers : float array array;
      (** concentrations at cells, one row per tracer (possibly none);
          the advected prognostic quantity is [h * tracer] *)
}

type tendencies = {
  tend_h : float array;
  tend_u : float array;
  tend_tracers : float array array;  (** tendencies of [h * tracer] *)
}

type diagnostics = {
  d2fdx2_cell : float array;
      (** cell Laplacian of thickness, the paper's d2fdx2_cell1/2 pair
          seen from the edge (instance H2) *)
  h_edge : float array;  (** thickness interpolated to edges (B2) *)
  ke : float array;  (** kinetic energy at cells (A2) *)
  divergence : float array;  (** velocity divergence at cells (A3) *)
  vorticity : float array;  (** relative vorticity at vertices (D1) *)
  h_vertex : float array;  (** thickness at vertices, kite-weighted (C2) *)
  pv_vertex : float array;  (** potential vorticity at vertices (D2) *)
  pv_cell : float array;  (** potential vorticity at cells (E) *)
  v_tangential : float array;  (** tangential velocity at edges (G) *)
  grad_pv_n : float array;  (** normal PV gradient at edges (H1) *)
  grad_pv_t : float array;  (** tangential PV gradient at edges (H1) *)
  pv_edge : float array;  (** upwinded potential vorticity at edges (F) *)
  (* extension fields beyond the paper's Table I *)
  tracer_edge : float array array;  (** tracer concentration at edges *)
  lap_u : float array;  (** velocity Laplacian, input of del-4 diffusion *)
  div_lap : float array;  (** divergence of [lap_u] at cells *)
  vort_lap : float array;  (** vorticity of [lap_u] at vertices *)
}

type reconstruction = {
  ux : float array;  (** Cartesian velocity at cells (A4) *)
  uy : float array;
  uz : float array;
  zonal : float array;  (** eastward component (X6) *)
  meridional : float array;  (** northward component (X6) *)
}

(** [n_tracers] defaults to 0. *)
val alloc_state : ?n_tracers:int -> Mesh.t -> state

val alloc_tendencies : ?n_tracers:int -> Mesh.t -> tendencies
val alloc_diagnostics : ?n_tracers:int -> Mesh.t -> diagnostics

val n_tracers : state -> int
val alloc_reconstruction : Mesh.t -> reconstruction

val copy_state : state -> state

(** [blit_state ~src ~dst] copies the contents of [src] into [dst]. *)
val blit_state : src:state -> dst:state -> unit
