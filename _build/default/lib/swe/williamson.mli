(** Initial conditions from the standard shallow-water test set of
    Williamson et al. (1992), used for the paper's correctness
    validation (Figure 5 uses test case 5).

    Each case yields the initial prognostic state and the bottom
    topography for a given spherical mesh. *)

open Mpas_mesh

type case =
  | Tc2  (** steady-state zonal geostrophic flow *)
  | Tc2_rotated
      (** the same steady flow with its rotation axis tilted 45
          degrees, so the stream crosses the twelve pentagons — the
          standard grid-imprinting stress test *)
  | Tc5  (** zonal flow over an isolated mountain *)
  | Tc6  (** Rossby–Haurwitz wave *)
  | Galewsky_balanced
      (** the balanced zonal jet of Galewsky et al. (2004) — an exact
          steady state whose height comes from a gradient-wind balance
          integral (extension beyond the Williamson set) *)
  | Galewsky
      (** the same jet with the 120 m height perturbation that triggers
          the barotropic instability *)

val case_name : case -> string

(** [init case mesh] is [(state, b)].  The mesh must be spherical.
    @raise Invalid_argument on a planar mesh. *)
val init : case -> Mesh.t -> Fields.state * float array

(** Adjust the mesh for the case: the rotated test cases need a
    Coriolis field tilted with the flow (identity for the others).
    [Model.init] applies this automatically. *)
val prepare_mesh : case -> Mesh.t -> Mesh.t

(** A stable RK-4 step for the mesh: [cfl * min dc / gravity-wave
    speed], defaulting to [cfl = 0.5]. *)
val recommended_dt : ?cfl:float -> case -> Mesh.t -> float

(** The cosine bell of Williamson test case 1: concentration
    [(1 + cos(pi r / radius)) / 2] within [radius] (radians of arc) of
    [center = (lon, lat)], zero outside.  Defaults: the TC1 bell,
    radius a third of the TC5 mountain position's latitude circle
    ([radius = 1/3], centered at [(3 pi / 2, 0)]). *)
val cosine_bell :
  ?center:float * float -> ?radius:float -> Mesh.t -> float array
