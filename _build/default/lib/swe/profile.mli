(** Kernel profiling: measured wall time per kernel over a few steps —
    the "profiling of the code" that the kernel-level hybrid design
    starts from (paper §II-C). *)

type t = (Timestep.kernel * float) list  (** seconds, one entry per kernel *)

(** [measure model ~steps] runs [steps] RK-4 steps with an instrumented
    engine and returns accumulated per-kernel times.  The model's state
    advances; its engine is restored afterwards. *)
val measure : Model.t -> steps:int -> t

val total : t -> float

(** Kernels sorted by cost, heaviest first. *)
val ranking : t -> t

val to_string : t -> string
