type h_adv_order = Second | Fourth
type tracer_adv = Centered | Upwind
type pv_average = Symmetric | Edge_only
type integrator = Rk4 | Ssprk3

type t = {
  gravity : float;
  apvm_factor : float;
  visc2 : float;
  visc4 : float;
  bottom_drag : float;
  h_adv_order : h_adv_order;
  tracer_adv : tracer_adv;
  pv_average : pv_average;
  integrator : integrator;
}

let default =
  {
    gravity = 9.80616;
    apvm_factor = 0.5;
    visc2 = 0.;
    visc4 = 0.;
    bottom_drag = 0.;
    h_adv_order = Fourth;
    tracer_adv = Centered;
    pv_average = Symmetric;
    integrator = Rk4;
  }
