open Mpas_numerics
open Mpas_mesh

type t = { mass : float; energy : float; potential_enstrophy : float }

let measure (cfg : Config.t) (m : Mesh.t) ~b (state : Fields.state) =
  let diag = Fields.alloc_diagnostics m in
  (match cfg.h_adv_order with
  | Config.Second -> ()
  | Config.Fourth -> Operators.d2fdx2 m ~h:state.h ~out:diag.d2fdx2_cell);
  Operators.h_edge m ~order:cfg.h_adv_order ~h:state.h
    ~d2fdx2_cell:diag.d2fdx2_cell ~out:diag.h_edge;
  Operators.vorticity m ~u:state.u ~out:diag.vorticity;
  Operators.h_vertex m ~h:state.h ~out:diag.h_vertex;
  Operators.pv_vertex m ~vorticity:diag.vorticity ~h_vertex:diag.h_vertex
    ~out:diag.pv_vertex;
  let mass = ref 0. and kinetic = ref 0. and potential = ref 0. in
  for c = 0 to m.n_cells - 1 do
    let a = m.area_cell.(c) in
    mass := !mass +. (state.h.(c) *. a);
    let surf = state.h.(c) +. b.(c) in
    potential :=
      !potential
      +. (0.5 *. cfg.gravity *. ((surf *. surf) -. (b.(c) *. b.(c))) *. a)
  done;
  for e = 0 to m.n_edges - 1 do
    let a_e = 0.5 *. m.dc_edge.(e) *. m.dv_edge.(e) in
    kinetic :=
      !kinetic +. (0.5 *. diag.h_edge.(e) *. state.u.(e) *. state.u.(e) *. a_e)
  done;
  let enstrophy = ref 0. in
  for v = 0 to m.n_vertices - 1 do
    enstrophy :=
      !enstrophy
      +. (0.5 *. diag.pv_vertex.(v) *. diag.pv_vertex.(v) *. diag.h_vertex.(v)
          *. m.area_triangle.(v))
  done;
  { mass = !mass; energy = !kinetic +. !potential;
    potential_enstrophy = !enstrophy }

let drift ~reference current =
  {
    mass = Stats.rel_diff reference.mass current.mass;
    energy = Stats.rel_diff reference.energy current.energy;
    potential_enstrophy =
      Stats.rel_diff reference.potential_enstrophy
        current.potential_enstrophy;
  }
