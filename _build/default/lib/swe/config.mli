(** Model configuration: physical constants and scheme options. *)

type h_adv_order = Second | Fourth

(** Edge reconstruction of tracer concentrations. *)
type tracer_adv = Centered | Upwind

(** Potential-vorticity average inside the perp flux of the momentum
    tendency: [Symmetric] is the energy-conserving
    [0.5 (q_e + q_e')] of Ringler et al. (2010); [Edge_only] uses the
    local [q_e] and breaks the exact Coriolis energy neutrality —
    kept as a numerics ablation. *)
type pv_average = Symmetric | Edge_only

(** Time integrator: the paper's RK-4 (Algorithm 1) or a three-stage
    strong-stability-preserving RK-3 — the same six kernels in a
    different driver loop, demonstrating the §II-A claim that the
    pattern/data-flow structure absorbs model development. *)
type integrator = Rk4 | Ssprk3

type t = {
  gravity : float;  (** gravitational acceleration, m/s^2 *)
  apvm_factor : float;
      (** anticipated-potential-vorticity upwinding factor; MPAS
          default 0.5, 0 disables APVM *)
  visc2 : float;  (** Laplacian momentum diffusion coefficient, m^2/s *)
  visc4 : float;  (** biharmonic (del-4) momentum diffusion, m^4/s *)
  bottom_drag : float;  (** linear bottom drag rate, 1/s *)
  h_adv_order : h_adv_order;
      (** order of the thickness interpolation to edges *)
  tracer_adv : tracer_adv;
  pv_average : pv_average;
  integrator : integrator;
}

(** MPAS-like defaults: [gravity = 9.80616], [apvm_factor = 0.5], no
    diffusion, no drag, fourth-order thickness interpolation, centered
    tracer advection. *)
val default : t
