open Mpas_numerics
open Mpas_mesh

type case =
  | Tc2
  | Tc2_rotated
  | Tc5
  | Tc6
  | Galewsky_balanced
  | Galewsky

let case_name = function
  | Tc2 -> "TC2 steady zonal flow"
  | Tc2_rotated -> "TC2 steady flow rotated 45 degrees"
  | Tc5 -> "TC5 flow over an isolated mountain"
  | Tc6 -> "TC6 Rossby-Haurwitz wave"
  | Galewsky_balanced -> "Galewsky balanced zonal jet"
  | Galewsky -> "Galewsky barotropic instability"

let gravity = 9.80616

let sphere_radius (m : Mesh.t) =
  match m.geometry with
  | Mesh.Sphere r -> r
  | Mesh.Plane _ ->
      invalid_arg "Williamson.init: test cases are defined on the sphere"

(* Project an (east, north) analytic velocity onto the edge normals. *)
let edge_normal_velocity (m : Mesh.t) velocity =
  Array.init m.n_edges (fun e ->
      let p = m.x_edge.(e) in
      let zonal, merid = velocity ~lon:m.lon_edge.(e) ~lat:m.lat_edge.(e) in
      match Sphere.tangent_basis p with
      | east, north ->
          let v = Vec3.add (Vec3.scale zonal east) (Vec3.scale merid north) in
          Vec3.dot v m.edge_normal.(e)
      | exception Invalid_argument _ -> 0.)

let cell_field (m : Mesh.t) f =
  Array.init m.n_cells (fun c -> f ~lon:m.lon_cell.(c) ~lat:m.lat_cell.(c))

(* --- TC2 / TC5: (rotated) solid-body flow -------------------------------- *)

(* Williamson et al. (1992) eqs (90)-(95): solid-body rotation whose
   axis is tilted by [alpha] from the planetary axis.  The balancing
   height uses the physical Coriolis parameter, so the state is an
   exact steady solution for every alpha. *)
let zonal_flow_state ?(alpha = 0.) (m : Mesh.t) ~u0 ~h0 ~b =
  let a = sphere_radius m in
  let omega = Build.earth_omega in
  let ca = cos alpha and sa = sin alpha in
  let velocity ~lon ~lat =
    ( u0 *. ((cos lat *. ca) +. (cos lon *. sin lat *. sa)),
      -.u0 *. sin lon *. sa )
  in
  let surface ~lon ~lat =
    (* sin of the latitude in the rotated frame. *)
    let s = (-.cos lon *. cos lat *. sa) +. (sin lat *. ca) in
    h0 -. (((a *. omega *. u0) +. (u0 *. u0 /. 2.)) /. gravity *. s *. s)
  in
  let h =
    Array.init m.n_cells (fun c ->
        let surf = surface ~lon:m.lon_cell.(c) ~lat:m.lat_cell.(c) in
        surf -. b.(c))
  in
  ({ Fields.h; u = edge_normal_velocity m velocity; tracers = [||] }, b)

let tc2 ?alpha (m : Mesh.t) =
  let a = sphere_radius m in
  let u0 = 2. *. Float.pi *. a /. (12. *. 86400.) in
  let h0 = 2.94e4 /. gravity in
  zonal_flow_state ?alpha m ~u0 ~h0 ~b:(Array.make m.n_cells 0.)

let tc5 (m : Mesh.t) =
  let u0 = 20. and h0 = 5960. in
  let lon_c = 3. *. Float.pi /. 2. and lat_c = Float.pi /. 6. in
  let rr = Float.pi /. 9. and hs0 = 2000. in
  let mountain ~lon ~lat =
    (* Wrap the longitude difference into (-pi, pi]. *)
    let dlon =
      let d = lon -. lon_c in
      if d > Float.pi then d -. (2. *. Float.pi)
      else if d <= -.Float.pi then d +. (2. *. Float.pi)
      else d
    in
    let dlat = lat -. lat_c in
    let r = Float.min rr (sqrt ((dlon *. dlon) +. (dlat *. dlat))) in
    hs0 *. (1. -. (r /. rr))
  in
  zonal_flow_state m ~u0 ~h0 ~b:(cell_field m mountain)

(* --- TC6: Rossby-Haurwitz wave ------------------------------------------ *)

let tc6 (m : Mesh.t) =
  let a = sphere_radius m in
  let big_omega = Build.earth_omega in
  let w = 7.848e-6 and k = 7.848e-6 in
  let r = 4. and h0 = 8000. in
  let velocity ~lon ~lat =
    let cl = cos lat and sl = sin lat in
    let zonal =
      (a *. w *. cl)
      +. (a *. k *. (cl ** (r -. 1.))
          *. ((r *. sl *. sl) -. (cl *. cl))
          *. cos (r *. lon))
    in
    let merid = -.(a *. k *. r) *. (cl ** (r -. 1.)) *. sl *. sin (r *. lon) in
    (zonal, merid)
  in
  let height ~lon ~lat =
    let cl = cos lat in
    let c2 = cl *. cl in
    let aa =
      (w /. 2. *. (2. *. big_omega +. w) *. c2)
      +. (0.25 *. k *. k *. (cl ** (2. *. r))
          *. (((r +. 1.) *. c2)
             +. ((2. *. r *. r) -. r -. 2.)
             -. (2. *. r *. r /. c2)))
    in
    let bb =
      2. *. (big_omega +. w) *. k
      /. ((r +. 1.) *. (r +. 2.))
      *. (cl ** r)
      *. (((r *. r) +. (2. *. r) +. 2.) -. (((r +. 1.) ** 2.) *. c2))
    in
    let cc =
      0.25 *. k *. k *. (cl ** (2. *. r)) *. (((r +. 1.) *. c2) -. (r +. 2.))
    in
    h0
    +. (a *. a /. gravity
        *. (aa +. (bb *. cos (r *. lon)) +. (cc *. cos (2. *. r *. lon))))
  in
  let h = cell_field m height in
  ({ Fields.h; u = edge_normal_velocity m velocity; tracers = [||] }, Array.make m.n_cells 0.)

(* --- Galewsky et al. (2004) barotropic instability ---------------------- *)

(* The balanced zonal jet of Galewsky, Scott & Polvani (Tellus 2004):
   u(lat) = (u_max / e_n) exp(1 / ((lat - lat0)(lat - lat1))) inside
   (lat0, lat1) and 0 outside, with the height field integrated from
   gradient-wind balance
     g dh/dlat = -a u (f + tan(lat) u / a).
   The balance integral has no closed form; a trapezoid cumulative
   table at ~0.01-degree resolution is far below the model's spatial
   truncation error. *)
let galewsky_jet_u =
  let lat0 = Float.pi /. 7. in
  let lat1 = (Float.pi /. 2.) -. lat0 in
  let u_max = 80. in
  let e_n = exp (-4. /. ((lat1 -. lat0) ** 2.)) in
  fun lat ->
    if lat <= lat0 || lat >= lat1 then 0.
    else u_max /. e_n *. exp (1. /. ((lat -. lat0) *. (lat -. lat1)))

let galewsky_height_table (m : Mesh.t) =
  let a = sphere_radius m in
  let omega = Build.earth_omega in
  let n = 16384 in
  let lo = -.Float.pi /. 2. and hi = Float.pi /. 2. in
  let dlat = (hi -. lo) /. float_of_int n in
  let integrand lat =
    let u = galewsky_jet_u lat in
    -.(a *. u)
    *. ((2. *. omega *. sin lat) +. (tan lat *. u /. a))
    /. gravity
  in
  let table = Array.make (n + 1) 0. in
  for i = 1 to n do
    let l0 = lo +. (float_of_int (i - 1) *. dlat) in
    let l1 = lo +. (float_of_int i *. dlat) in
    table.(i) <- table.(i - 1) +. (0.5 *. (integrand l0 +. integrand l1) *. dlat)
  done;
  fun lat ->
    let x = (lat -. lo) /. dlat in
    let i = Int.max 0 (Int.min (n - 1) (int_of_float x)) in
    let frac = Float.max 0. (Float.min 1. (x -. float_of_int i)) in
    ((1. -. frac) *. table.(i)) +. (frac *. table.(i + 1))

let galewsky ~perturbed (m : Mesh.t) =
  let height = galewsky_height_table m in
  (* Offset so the global (cell-area-weighted) mean depth is 10 km. *)
  let mean =
    let num = ref 0. and den = ref 0. in
    for c = 0 to m.n_cells - 1 do
      num := !num +. (height m.lat_cell.(c) *. m.area_cell.(c));
      den := !den +. m.area_cell.(c)
    done;
    !num /. !den
  in
  let h0 = 10_000. -. mean in
  let perturbation ~lon ~lat =
    if not perturbed then 0.
    else begin
      (* h' = 120 m cos(lat) exp(-(lon/alpha)^2) exp(-((lat2-lat)/beta)^2) *)
      let alpha = 1. /. 3. and beta = 1. /. 15. and lat2 = Float.pi /. 4. in
      let lon = if lon > Float.pi then lon -. (2. *. Float.pi) else lon in
      120. *. cos lat
      *. exp (-.((lon /. alpha) ** 2.))
      *. exp (-.(((lat2 -. lat) /. beta) ** 2.))
    end
  in
  let h =
    Array.init m.n_cells (fun c ->
        h0 +. height m.lat_cell.(c)
        +. perturbation ~lon:m.lon_cell.(c) ~lat:m.lat_cell.(c))
  in
  let velocity ~lon:_ ~lat = (galewsky_jet_u lat, 0.) in
  ( { Fields.h; u = edge_normal_velocity m velocity; tracers = [||] },
    Array.make m.n_cells 0. )

(* For the rotated case the planet's rotation axis tilts with the flow
   (Williamson eq. 91): f = 2 Omega (sin lat cos a - cos lon cos lat
   sin a), which in Cartesian terms only needs z and x. *)
let prepare_mesh case m =
  match case with
  | Tc2_rotated ->
      let alpha = Float.pi /. 4. in
      Mpas_mesh.Mesh.with_coriolis m (fun (p : Vec3.t) ->
          2. *. Build.earth_omega
          *. ((p.Vec3.z *. cos alpha) -. (p.Vec3.x *. sin alpha)))
  | Tc2 | Tc5 | Tc6 | Galewsky_balanced | Galewsky -> m

let init case m =
  match case with
  | Tc2 -> tc2 m
  | Tc2_rotated -> tc2 ~alpha:(Float.pi /. 4.) m
  | Tc5 -> tc5 m
  | Tc6 -> tc6 m
  | Galewsky_balanced -> galewsky ~perturbed:false m
  | Galewsky -> galewsky ~perturbed:true m

let recommended_dt ?(cfl = 0.5) case m =
  let h_max =
    match case with
    | Tc2 | Tc2_rotated -> 3000.
    | Tc5 -> 5960.
    | Tc6 | Galewsky_balanced | Galewsky -> 10500.
  in
  let wave_speed = sqrt (gravity *. h_max) in
  let dc_min = Array.fold_left Float.min Float.infinity m.Mesh.dc_edge in
  cfl *. dc_min /. wave_speed

let cosine_bell ?(center = (3. *. Float.pi /. 2., 0.)) ?(radius = 1. /. 3.)
    (m : Mesh.t) =
  let lon_c, lat_c = center in
  let p_c = Sphere.of_lonlat lon_c lat_c in
  Array.init m.n_cells (fun c ->
      let r = Sphere.arc_length p_c m.x_cell.(c) in
      if r < radius then 0.5 *. (1. +. cos (Float.pi *. r /. radius)) else 0.)
