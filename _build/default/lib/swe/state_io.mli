(** Checkpoint / restart serialization of the prognostic state.

    Same conventions as [Mpas_mesh.Mesh_io]: a line-oriented text dump
    with full float precision, so a save/load round trip restores the
    state bit for bit and a restarted integration continues exactly. *)

val to_string : Fields.state -> string

(** @raise Failure on malformed input. *)
val of_string : string -> Fields.state

val save : Fields.state -> string -> unit
val load : string -> Fields.state
