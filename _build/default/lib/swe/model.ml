open Mpas_mesh
open Mpas_par

type t = {
  mesh : Mesh.t;
  config : Config.t;
  b : float array;
  state : Fields.state;
  work : Timestep.workspace;
  recon : Reconstruct.t;
  dt : float;
  mutable engine : Timestep.engine;
  mutable steps_taken : int;
}

let of_state ?(config = Config.default) ?(engine = Timestep.refactored) ~dt ~b
    mesh state =
  let t =
    {
      mesh;
      config;
      b = Array.copy b;
      state = Fields.copy_state state;
      work = Timestep.alloc_workspace ~n_tracers:(Fields.n_tracers state) mesh;
      recon = Reconstruct.init mesh;
      dt;
      engine;
      steps_taken = 0;
    }
  in
  Timestep.init_diagnostics t.engine t.config t.mesh ~dt:t.dt ~state:t.state
    ~work:t.work;
  t

let init ?config ?dt ?engine ?(tracers = [||]) case mesh =
  let mesh = Williamson.prepare_mesh case mesh in
  let state, b = Williamson.init case mesh in
  let state = { state with Fields.tracers } in
  let dt =
    match dt with Some d -> d | None -> Williamson.recommended_dt case mesh
  in
  of_state ?config ?engine ~dt ~b mesh state

let set_engine t engine =
  t.engine <- engine;
  Timestep.init_diagnostics t.engine t.config t.mesh ~dt:t.dt ~state:t.state
    ~work:t.work

let run t ~steps =
  for _ = 1 to steps do
    Timestep.step t.engine t.config t.mesh ~b:t.b ~recon:t.recon ~dt:t.dt
      ~state:t.state ~work:t.work ();
    t.steps_taken <- t.steps_taken + 1
  done

let time t = float_of_int t.steps_taken *. t.dt
let invariants t = Conservation.measure t.config t.mesh ~b:t.b t.state

let total_height t =
  Array.init t.mesh.n_cells (fun c -> t.state.h.(c) +. t.b.(c))

let with_parallel_engine t ~n_domains f =
  Pool.with_pool ~n_domains (fun pool ->
      let saved = t.engine in
      set_engine t (Timestep.parallel pool);
      Fun.protect
        ~finally:(fun () -> set_engine t saved)
        (fun () -> f t))
