(** Discrete conserved quantities of the TRiSK shallow-water scheme,
    used by the correctness tests: the scheme conserves mass exactly
    and total energy / potential enstrophy to time-truncation error. *)

open Mpas_mesh

type t = {
  mass : float;  (** sum of h * A over cells *)
  energy : float;
      (** kinetic [sum 1/2 h_e u^2 A_e] plus potential
          [sum 1/2 g ((h+b)^2 - b^2) A_c] *)
  potential_enstrophy : float;  (** sum 1/2 q^2 h_v A_v over vertices *)
}

(** [measure cfg mesh ~b state] evaluates the invariants; the needed
    diagnostics are recomputed internally. *)
val measure :
  Config.t -> Mesh.t -> b:float array -> Fields.state -> t

(** Relative drift of each invariant between two measurements. *)
val drift : reference:t -> t -> t
