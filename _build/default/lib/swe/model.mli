(** High-level model driver: the three-phase MPAS running procedure
    (initialization, time-integration, finalization) for the
    shallow-water core. *)

open Mpas_mesh


type t = {
  mesh : Mesh.t;
  config : Config.t;
  b : float array;  (** bottom topography at cells *)
  state : Fields.state;
  work : Timestep.workspace;
  recon : Reconstruct.t;
  dt : float;
  mutable engine : Timestep.engine;
  mutable steps_taken : int;
}

(** Initialization phase: build the model from a Williamson test case.
    [dt] defaults to [Williamson.recommended_dt case mesh]; [tracers]
    rows (concentrations at cells) are advected alongside. *)
val init :
  ?config:Config.t ->
  ?dt:float ->
  ?engine:Timestep.engine ->
  ?tracers:float array array ->
  Williamson.case ->
  Mesh.t ->
  t

(** Initialization from explicit fields (copied). *)
val of_state :
  ?config:Config.t ->
  ?engine:Timestep.engine ->
  dt:float ->
  b:float array ->
  Mesh.t ->
  Fields.state ->
  t

(** Switch execution engine mid-run (diagnostics are re-initialized so
    engines can be compared step-by-step). *)
val set_engine : t -> Timestep.engine -> unit

(** Run [n] RK-4 steps. *)
val run : t -> steps:int -> unit

(** Simulated time elapsed so far, seconds. *)
val time : t -> float

(** Current conserved quantities. *)
val invariants : t -> Conservation.t

(** Total height field [h + b] (the quantity plotted in Figure 5). *)
val total_height : t -> float array

(** Shut down the engine's pool, if any. *)
val with_parallel_engine : t -> n_domains:int -> (t -> 'a) -> 'a
