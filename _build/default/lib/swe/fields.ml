open Mpas_mesh

type state = {
  h : float array;
  u : float array;
  tracers : float array array;
}

type tendencies = {
  tend_h : float array;
  tend_u : float array;
  tend_tracers : float array array;
}

type diagnostics = {
  d2fdx2_cell : float array;
  h_edge : float array;
  ke : float array;
  divergence : float array;
  vorticity : float array;
  h_vertex : float array;
  pv_vertex : float array;
  pv_cell : float array;
  v_tangential : float array;
  grad_pv_n : float array;
  grad_pv_t : float array;
  pv_edge : float array;
  tracer_edge : float array array;
  lap_u : float array;
  div_lap : float array;
  vort_lap : float array;
}

type reconstruction = {
  ux : float array;
  uy : float array;
  uz : float array;
  zonal : float array;
  meridional : float array;
}

let tracer_rows n size = Array.init n (fun _ -> Array.make size 0.)

let alloc_state ?(n_tracers = 0) (m : Mesh.t) =
  {
    h = Array.make m.n_cells 0.;
    u = Array.make m.n_edges 0.;
    tracers = tracer_rows n_tracers m.n_cells;
  }

let alloc_tendencies ?(n_tracers = 0) (m : Mesh.t) =
  {
    tend_h = Array.make m.n_cells 0.;
    tend_u = Array.make m.n_edges 0.;
    tend_tracers = tracer_rows n_tracers m.n_cells;
  }

let n_tracers s = Array.length s.tracers

let alloc_diagnostics ?(n_tracers = 0) (m : Mesh.t) =
  {
    d2fdx2_cell = Array.make m.n_cells 0.;
    h_edge = Array.make m.n_edges 0.;
    ke = Array.make m.n_cells 0.;
    divergence = Array.make m.n_cells 0.;
    vorticity = Array.make m.n_vertices 0.;
    h_vertex = Array.make m.n_vertices 0.;
    pv_vertex = Array.make m.n_vertices 0.;
    pv_cell = Array.make m.n_cells 0.;
    v_tangential = Array.make m.n_edges 0.;
    grad_pv_n = Array.make m.n_edges 0.;
    grad_pv_t = Array.make m.n_edges 0.;
    pv_edge = Array.make m.n_edges 0.;
    tracer_edge = tracer_rows n_tracers m.n_edges;
    lap_u = Array.make m.n_edges 0.;
    div_lap = Array.make m.n_cells 0.;
    vort_lap = Array.make m.n_vertices 0.;
  }

let alloc_reconstruction (m : Mesh.t) =
  {
    ux = Array.make m.n_cells 0.;
    uy = Array.make m.n_cells 0.;
    uz = Array.make m.n_cells 0.;
    zonal = Array.make m.n_cells 0.;
    meridional = Array.make m.n_cells 0.;
  }

let copy_state s =
  {
    h = Array.copy s.h;
    u = Array.copy s.u;
    tracers = Array.map Array.copy s.tracers;
  }

let blit_state ~src ~dst =
  Array.blit src.h 0 dst.h 0 (Array.length src.h);
  Array.blit src.u 0 dst.u 0 (Array.length src.u);
  Array.iteri
    (fun k row -> Array.blit row 0 dst.tracers.(k) 0 (Array.length row))
    src.tracers
