lib/swe/fields.ml: Array Mesh Mpas_mesh
