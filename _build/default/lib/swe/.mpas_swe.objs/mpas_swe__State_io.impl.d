lib/swe/state_io.ml: Array Buffer Fields Format Fun List String
