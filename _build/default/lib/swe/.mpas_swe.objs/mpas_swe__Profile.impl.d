lib/swe/profile.ml: Format Fun Hashtbl List Model String Timestep Unix
