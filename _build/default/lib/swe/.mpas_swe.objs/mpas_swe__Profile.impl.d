lib/swe/profile.ml: Format Fun List Metrics Model Mpas_obs String Timestep
