lib/swe/model.ml: Array Config Conservation Fields Fun Mesh Mpas_mesh Mpas_par Pool Reconstruct Timestep Williamson
