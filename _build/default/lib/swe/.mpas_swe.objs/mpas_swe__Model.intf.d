lib/swe/model.mli: Config Conservation Fields Mesh Mpas_mesh Reconstruct Timestep Williamson
