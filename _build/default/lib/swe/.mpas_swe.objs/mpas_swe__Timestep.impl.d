lib/swe/timestep.ml: Array Config Fields List Metrics Mpas_obs Mpas_par Operators Pool Reconstruct Trace
