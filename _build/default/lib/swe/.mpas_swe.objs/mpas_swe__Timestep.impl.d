lib/swe/timestep.ml: Array Config Fields Mpas_par Operators Pool Reconstruct
