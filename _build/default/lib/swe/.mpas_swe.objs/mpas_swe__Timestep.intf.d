lib/swe/timestep.mli: Config Fields Mesh Mpas_mesh Mpas_obs Mpas_par Pool Reconstruct
