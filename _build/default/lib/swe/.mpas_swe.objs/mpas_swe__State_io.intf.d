lib/swe/state_io.mli: Fields
