lib/swe/reconstruct.ml: Array Fields Mat3 Mesh Mpas_mesh Mpas_numerics Operators Sphere Vec3
