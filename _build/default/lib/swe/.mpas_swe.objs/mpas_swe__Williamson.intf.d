lib/swe/williamson.mli: Fields Mesh Mpas_mesh
