lib/swe/profile.mli: Model Mpas_obs Timestep
