lib/swe/profile.mli: Model Timestep
