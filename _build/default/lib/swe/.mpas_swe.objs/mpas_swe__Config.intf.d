lib/swe/config.mli:
