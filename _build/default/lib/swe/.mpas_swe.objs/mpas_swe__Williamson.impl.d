lib/swe/williamson.ml: Array Build Fields Float Int Mesh Mpas_mesh Mpas_numerics Sphere Vec3
