lib/swe/operators.ml: Array Config Fields Int Mesh Mesh_index Mpas_mesh Mpas_par Pool Printf
