lib/swe/operators.ml: Array Config Fields Mesh Mesh_index Mpas_mesh Mpas_par Pool
