lib/swe/operators.mli: Config Fields Mesh Mpas_mesh Mpas_par Pool
