lib/swe/config.ml:
