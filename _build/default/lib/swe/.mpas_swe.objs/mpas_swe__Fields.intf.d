lib/swe/fields.mli: Mesh Mpas_mesh
