lib/swe/conservation.ml: Array Config Fields Mesh Mpas_mesh Mpas_numerics Operators Stats
