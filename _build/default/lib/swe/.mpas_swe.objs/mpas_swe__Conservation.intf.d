lib/swe/conservation.mli: Config Fields Mesh Mpas_mesh
