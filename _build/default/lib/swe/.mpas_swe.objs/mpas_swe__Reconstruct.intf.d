lib/swe/reconstruct.mli: Fields Mesh Mpas_mesh Mpas_par Pool
