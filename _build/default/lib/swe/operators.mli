(** The computation-pattern kernels of the shallow-water model.

    Every function implements one pattern instance of the paper's
    Table I.  Instances that are irregular reductions in the original
    MPAS code (edge- or vertex-order loops scattering into cell or
    vertex arrays, paper Algorithm 2) come in two equivalent forms:

    - [*_scatter]: the original loop order, sequential only — running
      it concurrently would race exactly as the paper describes;
    - the gather form (paper Algorithm 3 after regularity-aware loop
      refactoring): output-order loops that only read neighbours, safe
      to execute in parallel, hence the optional [?pool].

    Regular loops (already output-ordered) only have the gather form.
    All functions write their full output range, so no zeroing is
    needed between steps.

    The hot gather kernels additionally come in two layouts.  When
    [?on] is absent (the single-device engine), they walk the packed
    {!Mesh.csr} view of the connectivity with unsafe indexing — flat
    offsets/data arrays instead of ragged rows — which is validated
    once when the view is built.  With [?on] they fall back to the
    ragged forms in {!Ragged}, which remain the reference
    implementations.  Both layouts evaluate the same floating-point
    expressions in the same order, so results are bit-identical. *)

open Mpas_mesh
open Mpas_par

(** [pfor pool lo hi f]: plain loop without a pool, chunked parallel
    loop with one.  Shared by every gather-form kernel. *)
val pfor : Pool.t option -> int -> int -> (int -> unit) -> unit

(** [iter pool ?on n f] runs [f] over [0..n-1], or over exactly the
    indices of [on] when given. *)
val iter : Pool.t option -> ?on:int array -> int -> (int -> unit) -> unit

(** Every gather-form kernel accepts [?on]: when given, the loop runs
    over exactly those indices instead of the full output range — the
    rank-local compute sets of the distributed execution engine
    ([Mpas_dist]). *)

(** Ragged-layout gather forms of the kernels that have a CSR fast
    path.  These walk the mesh's [int array array] connectivity rows
    directly (safe indexing, arbitrary index sets) and are what the
    top-level kernels run when [?on] is given.  Kept exposed as the
    reference implementations: the equivalence tests pin the CSR paths
    to them bit-for-bit and the [layout] benchmark group measures the
    flattening win against them. *)
module Ragged : sig
  val kinetic_energy :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> u:float array ->
    out:float array -> unit

  val divergence :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> u:float array ->
    out:float array -> unit

  val vorticity :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> u:float array ->
    out:float array -> unit

  val h_vertex :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> h:float array ->
    out:float array -> unit

  val pv_cell :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> pv_vertex:float array ->
    out:float array -> unit

  val tangential_velocity :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> u:float array ->
    out:float array -> unit

  val tend_h :
    ?pool:Pool.t ->
    ?on:int array ->
    Mesh.t ->
    h_edge:float array ->
    u:float array ->
    out:float array ->
    unit

  val tend_u :
    ?pool:Pool.t ->
    ?on:int array ->
    ?pv_average:Config.pv_average ->
    Mesh.t ->
    gravity:float ->
    h:float array ->
    b:float array ->
    ke:float array ->
    h_edge:float array ->
    u:float array ->
    pv_edge:float array ->
    out:float array ->
    unit

  val tracer_edge :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> scheme:Config.tracer_adv ->
    tracer:float array -> u:float array -> out:float array -> unit

  val tend_tracer :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> h_edge:float array ->
    u:float array -> tracer_edge:float array -> out:float array -> unit

  val velocity_laplacian :
    ?pool:Pool.t -> ?on:int array -> Mesh.t -> divergence:float array ->
    vorticity:float array -> out:float array -> unit
end

(** {1 compute_solve_diagnostics instances} *)

(** H2: cell Laplacian of thickness, input to the fourth-order
    thickness interpolation. *)
val d2fdx2 :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> h:float array ->
  out:float array -> unit

val d2fdx2_scatter : Mesh.t -> h:float array -> out:float array -> unit

(** B2: thickness at edges; [Fourth] applies the [d2fdx2]
    correction. *)
val h_edge :
  ?pool:Pool.t ->
  ?on:int array ->
  Mesh.t ->
  order:Config.h_adv_order ->
  h:float array ->
  d2fdx2_cell:float array ->
  out:float array ->
  unit

(** A2: kinetic energy at cells, [ke = (1/A) sum 1/4 dc dv u^2]. *)
val kinetic_energy :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> u:float array ->
  out:float array -> unit

val kinetic_energy_scatter : Mesh.t -> u:float array -> out:float array -> unit

(** A3: velocity divergence at cells. *)
val divergence :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> u:float array ->
  out:float array -> unit

val divergence_scatter : Mesh.t -> u:float array -> out:float array -> unit

(** D1: relative vorticity (circulation / triangle area) at vertices. *)
val vorticity :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> u:float array ->
  out:float array -> unit

val vorticity_scatter : Mesh.t -> u:float array -> out:float array -> unit

(** C2: thickness at vertices, kite-area weighted. *)
val h_vertex :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> h:float array ->
  out:float array -> unit

(** D2: potential vorticity at vertices,
    [(f + vorticity) / h_vertex]. *)
val pv_vertex :
  ?pool:Pool.t ->
  ?on:int array ->
  Mesh.t ->
  vorticity:float array ->
  h_vertex:float array ->
  out:float array ->
  unit

(** E: potential vorticity averaged to cells (kite weights). *)
val pv_cell :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> pv_vertex:float array ->
  out:float array -> unit

val pv_cell_scatter :
  Mesh.t -> pv_vertex:float array -> out:float array -> unit

(** G: tangential velocity from the TRiSK weights. *)
val tangential_velocity :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> u:float array ->
  out:float array -> unit

(** H1: PV gradients at edges (normal from [pv_cell], tangential from
    [pv_vertex]), inputs of the APVM upwinding. *)
val grad_pv :
  ?pool:Pool.t ->
  ?on:int array ->
  Mesh.t ->
  pv_cell:float array ->
  pv_vertex:float array ->
  out_n:float array ->
  out_t:float array ->
  unit

(** F: potential vorticity at edges: vertex average plus the
    anticipated-PV correction
    [- apvm * dt * (u grad_n + v grad_t)]. *)
val pv_edge :
  ?pool:Pool.t ->
  ?on:int array ->
  Mesh.t ->
  apvm_factor:float ->
  dt:float ->
  pv_vertex:float array ->
  grad_pv_n:float array ->
  grad_pv_t:float array ->
  u:float array ->
  v_tangential:float array ->
  out:float array ->
  unit

(** {1 compute_tend instances} *)

(** A1: thickness tendency, [-div(h_edge u)]. *)
val tend_h :
  ?pool:Pool.t ->
  ?on:int array ->
  Mesh.t ->
  h_edge:float array ->
  u:float array ->
  out:float array ->
  unit

val tend_h_scatter :
  Mesh.t -> h_edge:float array -> u:float array -> out:float array -> unit

(** B1: momentum tendency,
    [q_e Fperp_e - grad (g (h + b) + ke)] with the energy-conserving
    symmetric PV average [0.5 (q_e + q_e')] inside the perp flux. *)
val tend_u :
  ?pool:Pool.t ->
  ?on:int array ->
  ?pv_average:Config.pv_average ->
  Mesh.t ->
  gravity:float ->
  h:float array ->
  b:float array ->
  ke:float array ->
  h_edge:float array ->
  u:float array ->
  pv_edge:float array ->
  out:float array ->
  unit

(** C1: Laplacian momentum diffusion added into [tend_u]:
    [+ visc2 (grad divergence - curl vorticity)].  No-op when
    [visc2 = 0]. *)
val dissipation :
  ?pool:Pool.t ->
  ?on:int array ->
  Mesh.t ->
  visc2:float ->
  divergence:float array ->
  vorticity:float array ->
  tend_u:float array ->
  unit

(** X1: local momentum forcing (linear bottom drag) added into
    [tend_u].  No-op when [drag = 0]. *)
val local_forcing :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> drag:float -> u:float array ->
  tend_u:float array -> unit

(** {1 remaining kernels} *)

(** X2 (enforce_boundary_edge): zero the tendency on boundary edges. *)
val enforce_boundary_edge :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> tend_u:float array -> unit

(** X3 (compute_next_substep_state): [provis = base + coef * tend]. *)
val next_substep_state :
  ?pool:Pool.t ->
  ?on_cells:int array ->
  ?on_edges:int array ->
  Mesh.t ->
  coef:float ->
  base:Fields.state ->
  tend:Fields.tendencies ->
  provis:Fields.state ->
  unit

(** X4 + X5 (accumulative_update): [accum += coef * tend]. *)
val accumulate :
  ?pool:Pool.t ->
  ?on_cells:int array ->
  ?on_edges:int array ->
  Mesh.t ->
  coef:float ->
  tend:Fields.tendencies ->
  accum:Fields.state ->
  unit

(** {1 Extensions beyond the paper's Table I}

    Tracer transport and biharmonic diffusion, present in the MPAS
    shallow-water code but outside the paper's pattern inventory; they
    reuse the same stencil shapes (tracer flux divergence is A-shaped,
    the edge reconstruction B-shaped, del-4 a repeated C1). *)

(** Tracer concentration at edges. *)
val tracer_edge :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> scheme:Config.tracer_adv ->
  tracer:float array -> u:float array -> out:float array -> unit

(** Tendency of [h * tracer]: [-div(h_edge tracer_edge u)].  With a
    constant tracer this reduces exactly to [tend_h], so constants are
    preserved to machine precision (compatibility with continuity). *)
val tend_tracer :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> h_edge:float array ->
  u:float array -> tracer_edge:float array -> out:float array -> unit

val tend_tracer_scatter :
  Mesh.t -> h_edge:float array -> u:float array -> tracer_edge:float array ->
  out:float array -> unit

(** Vector Laplacian of the velocity at edges,
    [grad(div) - curl(vorticity)]. *)
val velocity_laplacian :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> divergence:float array ->
  vorticity:float array -> out:float array -> unit

(** Biharmonic diffusion: [tend_u -= visc4 * lap(lap_u)], where
    [div_lap]/[vort_lap] are divergence and vorticity of the velocity
    Laplacian.  No-op when [visc4 = 0]. *)
val del4_dissipation :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> visc4:float ->
  div_lap:float array -> vort_lap:float array -> tend_u:float array -> unit

(** [provis.tracers = (base.h * base.tracers + coef * tend) / provis.h];
    [provis.h] must already hold the sub-step thickness. *)
val next_substep_tracers :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> coef:float ->
  base:Fields.state -> tend:Fields.tendencies -> provis:Fields.state -> unit

(** Store [h * tracer] into the accumulator rows. *)
val seed_tracer_accumulator :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> state:Fields.state ->
  accum:Fields.state -> unit

(** [accum_rows += coef * tend] (conservative form). *)
val accumulate_tracers :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> coef:float ->
  tend:Fields.tendencies -> accum:Fields.state -> unit

(** Convert the state's tracer rows from [h * tracer] back to
    concentrations by dividing by the updated [state.h]. *)
val finalize_tracers :
  ?pool:Pool.t -> ?on:int array -> Mesh.t -> state:Fields.state -> unit

(** Affine state blend for multi-stage integrators:
    [out = a*base + b*other + c*tend], tracers combined in conservative
    [h * tracer] form.  [out] must not alias [base] or [other]. *)
val blend :
  ?pool:Pool.t ->
  ?on_cells:int array ->
  ?on_edges:int array ->
  Mesh.t ->
  a:float ->
  base:Fields.state ->
  b:float ->
  other:Fields.state ->
  c:float ->
  tend:Fields.tendencies ->
  out:Fields.state ->
  unit
