(** Geometry on the unit sphere.

    All points are unit 3-vectors.  Results scale to a sphere of radius
    [r] as documented per function (lengths by [r], areas by [r^2]). *)

(** Mean Earth radius in meters, as used by MPAS. *)
val earth_radius : float

(** [of_lonlat lon lat] converts geographic coordinates (radians) to a
    unit vector. *)
val of_lonlat : float -> float -> Vec3.t

(** [to_lonlat p] is [(lon, lat)] in radians; [lon] in [(-pi, pi]]. *)
val to_lonlat : Vec3.t -> float * float

(** Great-circle (geodesic) distance between two unit vectors, on the
    unit sphere.  Multiply by the radius for physical length. *)
val arc_length : Vec3.t -> Vec3.t -> float

(** Area of the spherical triangle with the given unit-vector corners,
    on the unit sphere, via the signed solid-angle formula (Oosterom &
    Strackee).  Always non-negative. *)
val triangle_area : Vec3.t -> Vec3.t -> Vec3.t -> float

(** Circumcenter of a spherical triangle: the unit vector equidistant
    from the three corners, on the same side as the triangle's
    orientation. *)
val circumcenter : Vec3.t -> Vec3.t -> Vec3.t -> Vec3.t

(** Midpoint of the geodesic between two unit vectors, projected back to
    the sphere. *)
val geodesic_midpoint : Vec3.t -> Vec3.t -> Vec3.t

(** Area centroid of a spherical polygon (corners in order), projected
    to the sphere.  Computed by fanning triangles from the vertex mean;
    adequate for the small, nearly planar polygons of fine meshes. *)
val polygon_centroid : Vec3.t array -> Vec3.t

(** Area of a spherical polygon with corners in order (unit sphere). *)
val polygon_area : Vec3.t array -> float

(** [tangent_basis p] is [(e_east, e_north)]: an orthonormal basis of
    the tangent plane at [p] aligned with geographic east and north.
    @raise Invalid_argument at the poles where east is undefined. *)
val tangent_basis : Vec3.t -> Vec3.t * Vec3.t

(** [project_tangent p v] removes from [v] its component along [p]. *)
val project_tangent : Vec3.t -> Vec3.t -> Vec3.t
