type t = { m : float array }

let zero () = { m = Array.make 9 0. }

let identity () =
  let t = zero () in
  t.m.(0) <- 1.;
  t.m.(4) <- 1.;
  t.m.(8) <- 1.;
  t

let add_outer t s (v : Vec3.t) =
  let c = [| v.x; v.y; v.z |] in
  for i = 0 to 2 do
    for j = 0 to 2 do
      t.m.((3 * i) + j) <- t.m.((3 * i) + j) +. (s *. c.(i) *. c.(j))
    done
  done

let mul_vec t (v : Vec3.t) =
  let m = t.m in
  Vec3.make
    ((m.(0) *. v.x) +. (m.(1) *. v.y) +. (m.(2) *. v.z))
    ((m.(3) *. v.x) +. (m.(4) *. v.y) +. (m.(5) *. v.z))
    ((m.(6) *. v.x) +. (m.(7) *. v.y) +. (m.(8) *. v.z))

let det t =
  let m = t.m in
  (m.(0) *. ((m.(4) *. m.(8)) -. (m.(5) *. m.(7))))
  -. (m.(1) *. ((m.(3) *. m.(8)) -. (m.(5) *. m.(6))))
  +. (m.(2) *. ((m.(3) *. m.(7)) -. (m.(4) *. m.(6))))

let inv t =
  let m = t.m in
  let d = det t in
  let scale = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0. m in
  if Float.abs d < 1e-30 *. (scale ** 3.) then
    invalid_arg "Mat3.inv: singular matrix";
  let c i j =
    (* Cofactor of entry (i, j). *)
    let i1 = (i + 1) mod 3 and i2 = (i + 2) mod 3 in
    let j1 = (j + 1) mod 3 and j2 = (j + 2) mod 3 in
    (m.((3 * i1) + j1) *. m.((3 * i2) + j2))
    -. (m.((3 * i1) + j2) *. m.((3 * i2) + j1))
  in
  let r = Array.make 9 0. in
  for i = 0 to 2 do
    for j = 0 to 2 do
      (* Transposed cofactor (adjugate) over the determinant. *)
      r.((3 * i) + j) <- c j i /. d
    done
  done;
  { m = r }
