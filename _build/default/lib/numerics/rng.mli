(** Deterministic splittable random number generator (splitmix64).

    Used wherever the library needs reproducible pseudo-randomness
    (mesh perturbations, synthetic workloads, property-test fixtures)
    without depending on global [Random] state. *)

type t

(** [create seed] makes a generator; equal seeds give equal streams. *)
val create : int64 -> t

(** Independent generator derived from the current state. *)
val split : t -> t

val next_int64 : t -> int64

(** Uniform in [[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** Uniform in [[0, 1)]. *)
val float : t -> float

(** Uniform in [[lo, hi)]. *)
val uniform : t -> float -> float -> float

(** Standard normal deviate (Box–Muller). *)
val gaussian : t -> float

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
