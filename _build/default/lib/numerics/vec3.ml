type t = { x : float; y : float; z : float }

let make x y z = { x; y; z }
let zero = { x = 0.; y = 0.; z = 0. }
let ex = { x = 1.; y = 0.; z = 0. }
let ey = { x = 0.; y = 1.; z = 0. }
let ez = { x = 0.; y = 0.; z = 1. }

let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let neg a = { x = -.a.x; y = -.a.y; z = -.a.z }
let scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }
let axpy a x y = { x = (a *. x.x) +. y.x; y = (a *. x.y) +. y.y; z = (a *. x.z) +. y.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let cross a b =
  { x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x) }

let norm2 a = dot a a
let norm a = sqrt (norm2 a)

let normalize a =
  let n = norm a in
  if n <= 0. then invalid_arg "Vec3.normalize: zero vector";
  scale (1. /. n) a

let dist a b = norm (sub a b)
let midpoint a b = scale 0.5 (add a b)
let lerp a b t = add (scale (1. -. t) a) (scale t b)
let triple a b c = dot a (cross b c)

let approx_equal ?(eps = 1e-12) a b =
  Float.abs (a.x -. b.x) <= eps
  && Float.abs (a.y -. b.y) <= eps
  && Float.abs (a.z -. b.z) <= eps

let pp ppf a = Format.fprintf ppf "(%g, %g, %g)" a.x a.y a.z
let to_string a = Format.asprintf "%a" pp a
