type t = { headers : string list; mutable rows : string list list }

let create headers =
  if headers = [] then invalid_arg "Table.create: no headers";
  { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let cell_float ?(digits = 4) x = Format.sprintf "%.*g" digits x
let cell_int n = string_of_int n

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> Int.max w (String.length (List.nth row i)))
          (String.length h) rows)
      t.headers
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line cells =
    "| " ^ String.concat " | " (List.map2 pad cells widths) ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  String.concat "\n" (line t.headers :: sep :: List.map line rows)

let print t = print_endline (render t)
