lib/numerics/vec3.mli: Format
