lib/numerics/rng.mli:
