lib/numerics/table.mli:
