lib/numerics/stats.mli:
