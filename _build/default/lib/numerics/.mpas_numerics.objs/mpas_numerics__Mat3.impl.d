lib/numerics/mat3.ml: Array Float Vec3
