lib/numerics/sphere.mli: Vec3
