lib/numerics/table.ml: Format Int List String
