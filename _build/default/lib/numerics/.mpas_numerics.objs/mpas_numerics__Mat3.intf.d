lib/numerics/mat3.mli: Vec3
