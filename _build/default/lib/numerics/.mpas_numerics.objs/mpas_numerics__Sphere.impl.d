lib/numerics/sphere.ml: Array Float Vec3
