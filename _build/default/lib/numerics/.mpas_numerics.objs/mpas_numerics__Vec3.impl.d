lib/numerics/vec3.ml: Float Format
