let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  check_nonempty "Stats.variance" a;
  let m = mean a in
  let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0. a in
  acc /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let min_max a =
  check_nonempty "Stats.min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let percentile p a =
  check_nonempty "Stats.percentile" a;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Int.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median a = percentile 50. a

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxx = ref 0. and sxy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. (ys.(i) -. my))
  done;
  if !sxx = 0. then invalid_arg "Stats.linear_fit: degenerate xs";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let rel_diff ?(floor = 1e-300) a b =
  let scale = Float.max (Float.abs a) (Float.max (Float.abs b) floor) in
  Float.abs (a -. b) /. scale

let l2_norm a = sqrt (Array.fold_left (fun s x -> s +. (x *. x)) 0. a)

let l2_diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Stats.l2_diff: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d)) a;
  sqrt !acc

let max_abs_diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Stats.max_abs_diff: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := Float.max !acc (Float.abs (x -. b.(i)))) a;
  !acc

let rms a =
  check_nonempty "Stats.rms" a;
  l2_norm a /. sqrt (float_of_int (Array.length a))
