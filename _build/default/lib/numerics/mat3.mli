(** Minimal 3x3 matrix operations (row-major) for the small dense
    solves of the velocity reconstruction. *)

type t = { m : float array }  (** 9 entries, row-major *)

val zero : unit -> t
val identity : unit -> t

(** [add_outer t s v] adds [s * v v^T] to [t] in place. *)
val add_outer : t -> float -> Vec3.t -> unit

val mul_vec : t -> Vec3.t -> Vec3.t
val det : t -> float

(** Matrix inverse via cofactors.
    @raise Invalid_argument when singular (|det| below 1e-30 times the
    cubed max entry). *)
val inv : t -> t
