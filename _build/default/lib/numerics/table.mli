(** ASCII table rendering for the experiment harness and benchmarks.

    Produces aligned, pipe-separated tables similar to the rows reported
    in the paper, e.g.:

    {v
    | mesh    | cells    | cpu (s) | hybrid (s) | speedup |
    |---------|----------|---------|------------|---------|
    | 120-km  | 40962    | 0.271   | 0.045      | 6.02    |
    v} *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** Append a row; it must have as many cells as there are headers. *)
val add_row : t -> string list -> unit

(** Convenience: format a float with [%.*g]-style significant digits. *)
val cell_float : ?digits:int -> float -> string

val cell_int : int -> string

(** Render to a string, with a header separator line. *)
val render : t -> string

(** [print t] renders to stdout followed by a newline. *)
val print : t -> unit
