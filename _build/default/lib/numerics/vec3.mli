(** Three-dimensional Euclidean vectors.

    Used for points on the unit sphere and for reconstructed velocity
    vectors.  All operations are allocation-light; a vector is an
    immutable record of three floats. *)

type t = { x : float; y : float; z : float }

val make : float -> float -> float -> t
val zero : t
val ex : t
val ey : t
val ez : t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t

(** [axpy a x y] is [a*x + y]. *)
val axpy : float -> t -> t -> t

val dot : t -> t -> float
val cross : t -> t -> t
val norm2 : t -> float
val norm : t -> float

(** [normalize v] is [v] scaled to unit length.
    @raise Invalid_argument on the zero vector. *)
val normalize : t -> t

(** Euclidean distance between two points. *)
val dist : t -> t -> float

(** Midpoint of the segment, not projected to the sphere. *)
val midpoint : t -> t -> t

(** Component-wise linear interpolation: [lerp a b t = (1-t)*a + t*b]. *)
val lerp : t -> t -> float -> t

(** [triple a b c] is the scalar triple product [a . (b x c)]. *)
val triple : t -> t -> t -> float

(** Equality within absolute tolerance [eps] on every component. *)
val approx_equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
