type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop two bits so the result fits OCaml's 63-bit int positively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let gaussian t =
  let u1 = Float.max 1e-300 (float t) in
  let u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
