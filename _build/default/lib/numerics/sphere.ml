let earth_radius = 6_371_220.0

let of_lonlat lon lat =
  let cl = cos lat in
  Vec3.make (cl *. cos lon) (cl *. sin lon) (sin lat)

let to_lonlat (p : Vec3.t) =
  let lon = atan2 p.y p.x in
  let lat = asin (Float.max (-1.) (Float.min 1. p.z)) in
  (lon, lat)

let arc_length a b =
  (* atan2 form is accurate for both small and near-antipodal angles. *)
  let c = Vec3.cross a b in
  atan2 (Vec3.norm c) (Vec3.dot a b)

let triangle_area a b c =
  let num = Float.abs (Vec3.triple a b c) in
  let den =
    1. +. Vec3.dot a b +. Vec3.dot b c +. Vec3.dot a c
  in
  2. *. atan2 num den

let circumcenter a b c =
  let n = Vec3.cross (Vec3.sub b a) (Vec3.sub c a) in
  let n = Vec3.normalize n in
  (* Keep the center on the triangle's side of the sphere. *)
  if Vec3.dot n a >= 0. then n else Vec3.neg n

let geodesic_midpoint a b = Vec3.normalize (Vec3.midpoint a b)

let vertex_mean corners =
  let acc = Array.fold_left Vec3.add Vec3.zero corners in
  Vec3.normalize acc

let polygon_area corners =
  let n = Array.length corners in
  if n < 3 then 0.
  else begin
    let center = vertex_mean corners in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let a = corners.(i) and b = corners.((i + 1) mod n) in
      acc := !acc +. triangle_area center a b
    done;
    !acc
  end

let polygon_centroid corners =
  let n = Array.length corners in
  if n = 0 then invalid_arg "Sphere.polygon_centroid: empty polygon";
  if n < 3 then vertex_mean corners
  else begin
    let center = vertex_mean corners in
    let acc = ref Vec3.zero in
    for i = 0 to n - 1 do
      let a = corners.(i) and b = corners.((i + 1) mod n) in
      let area = triangle_area center a b in
      let tri_centroid = vertex_mean [| center; a; b |] in
      acc := Vec3.axpy area tri_centroid !acc
    done;
    Vec3.normalize !acc
  end

let tangent_basis (p : Vec3.t) =
  let horiz = (p.x *. p.x) +. (p.y *. p.y) in
  if horiz < 1e-24 then invalid_arg "Sphere.tangent_basis: pole";
  let east = Vec3.normalize (Vec3.make (-.p.y) p.x 0.) in
  let north = Vec3.cross p east in
  (east, north)

let project_tangent p v = Vec3.axpy (-.Vec3.dot p v) p v
