(** Small descriptive-statistics helpers used by benchmarks, mesh
    quality reports and the experiment harness. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float
val min_max : float array -> float * float

(** [percentile p a] with [p] in [[0,100]]; linear interpolation between
    order statistics.  Does not modify [a]. *)
val percentile : float -> float array -> float

val median : float array -> float

(** Least-squares line fit: [linear_fit xs ys = (slope, intercept)]. *)
val linear_fit : float array -> float array -> float * float

(** Relative difference [|a-b| / max(|a|,|b|,floor)]. *)
val rel_diff : ?floor:float -> float -> float -> float

(** L2 norm of an array. *)
val l2_norm : float array -> float

(** L2 norm of the element-wise difference. *)
val l2_diff : float array -> float array -> float

(** Maximum absolute element-wise difference. *)
val max_abs_diff : float array -> float array -> float

(** Root-mean-square of an array. *)
val rms : float array -> float
