(** Discrete-event simulation of a hybrid schedule on one node: two
    compute resources (host CPU, accelerator) plus the PCIe link.

    Tasks are given in a valid topological order.  A task starts when
    its resource is free and all dependencies have finished, including
    the link-serialized transfer of any dependency produced on the
    other resource.  Transfers overlap computation — the paper's
    "overlapped data moving". *)

type resource = Host | Device

val resource_name : resource -> string

type task = {
  tid : string;
  resource : resource;
  duration : float;
  deps : (string * float) list;
      (** (producer tid, bytes moved if the producer ran on the other
          resource) *)
}

type timeline_entry = {
  entry_tid : string;
  entry_resource : resource;
  start : float;
  finish : float;
}

type result = {
  makespan : float;
  host_busy : float;
  device_busy : float;
  link_busy : float;
  timeline : timeline_entry list;  (** in start order *)
}

(** [run ~link tasks] simulates the schedule.
    @raise Invalid_argument on duplicate ids, unknown dependencies, or
    dependencies appearing after their consumers. *)
val run : link:Hw.link -> task list -> result

(** Host and device utilization (busy time / makespan). *)
val utilization : result -> float * float

(** ASCII Gantt chart of the simulated step: one line per non-trivial
    task, host rows filled with [#], device rows with [=]. *)
val render_timeline : ?width:int -> result -> string

(** The timeline as Chrome trace-viewer JSON (load in
    chrome://tracing or https://ui.perfetto.dev): host = tid 1,
    device = tid 2. *)
val to_chrome_trace : result -> string
