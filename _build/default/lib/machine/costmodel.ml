open Mpas_patterns

type flags = {
  multithread : bool;
  refactored : bool;
  simd : bool;
  streaming : bool;
  others : bool;
}

let baseline =
  { multithread = false; refactored = false; simd = false; streaming = false;
    others = false }

let fully_optimized =
  { multithread = true; refactored = true; simd = true; streaming = true;
    others = true }

let fig6_ladder =
  [
    ("Baseline", baseline);
    ("OpenMP", { baseline with multithread = true });
    ("Refactoring", { baseline with multithread = true; refactored = true });
    ( "SIMD",
      { baseline with multithread = true; refactored = true; simd = true } );
    ( "Streaming",
      { multithread = true; refactored = true; simd = true; streaming = true;
        others = false } );
    ("Others", fully_optimized);
  ]

type params = {
  scatter_speedup_cap : float;
  simd_eff_irregular : float;
  stream_bw_boost : float;
  others_bw_boost : float;
  region_overhead_s : float;
  flop_eff : float;
  gather_amplification : float;
}

let default_params =
  {
    scatter_speedup_cap = 6.;
    simd_eff_irregular = 0.40;
    stream_bw_boost = 1.13;
    others_bw_boost = 1.15;
    region_overhead_s = 8e-6;
    flop_eff = 0.075;
    gather_amplification = 3.75;
  }

let instance_time (d : Hw.device) p flags ~irregular ?(stencil = true)
    (w : Cost.work) =
  let threads = float_of_int (Hw.threads d) in
  let eff_threads =
    if not flags.multithread then 1.
    else begin
      let scaled = d.thread_efficiency *. threads in
      if irregular && not flags.refactored then
        Float.min scaled p.scatter_speedup_cap
      else scaled
    end
  in
  (* Flop rate: scalar lane count 1; SIMD uses a fraction of the lanes
     because of indexed gathers. *)
  let lanes =
    if flags.simd then Float.max 1. (float_of_int d.simd_width_dp *. p.simd_eff_irregular)
    else 1. /. d.scalar_penalty
  in
  let core_scalar = Hw.scalar_core_gflops d *. 1e9 in
  (* A lone thread still occupies a full core; beyond that, cores fill
     at threads_per_core threads each. *)
  let cores_used =
    Float.max 1.
      (Float.min (float_of_int d.cores)
         (eff_threads /. float_of_int d.threads_per_core))
  in
  let flop_rate = core_scalar *. lanes *. cores_used *. p.flop_eff in
  (* Memory rate: bandwidth saturates with thread count; stencil loops
     pay an amplification factor for their cache-unfriendly indexed
     gathers. *)
  let bw_frac = Float.min 1. (eff_threads /. d.bw_saturation_threads) in
  let bw_boost =
    (if flags.streaming then p.stream_bw_boost else 1.)
    *. if flags.others then p.others_bw_boost else 1.
  in
  let mem_rate = d.mem_bw_gbs *. 1e9 *. bw_frac *. bw_boost in
  let bytes =
    if stencil then w.Cost.bytes *. p.gather_amplification else w.Cost.bytes
  in
  let t_compute = w.Cost.flops /. flop_rate in
  let t_mem = bytes /. mem_rate in
  let overhead = if flags.multithread then p.region_overhead_s else 0. in
  Float.max t_compute t_mem +. overhead

let instance_time_by_id ?layout d p flags stats id =
  let inst = Registry.instance id in
  let stencil =
    match inst.Pattern.kind with Pattern.Stencil _ -> true | Pattern.Local -> false
  in
  instance_time d p flags ~irregular:inst.Pattern.irregular ~stencil
    (Cost.instance_work ?layout stats id)

let kernel_time ?layout d p flags stats kernel =
  let calls = float_of_int (Cost.kernel_calls_per_step kernel) in
  let one_call =
    List.fold_left
      (fun t (inst : Pattern.instance) ->
        t +. instance_time_by_id ?layout d p flags stats inst.Pattern.id)
      0.
      (Registry.of_kernel kernel)
  in
  (* Loop fusion ("others") collapses the per-instance regions into
     one region per legally fusable chain (Mpas_dataflow.Fusion). *)
  let fused_saving =
    if flags.others && flags.multithread then
      let instances = List.length (Registry.of_kernel kernel) in
      let chains = List.length (Mpas_dataflow.Fusion.chains kernel) in
      p.region_overhead_s *. float_of_int (instances - chains)
    else 0.
  in
  calls *. Float.max 0. (one_call -. fused_saving)

let step_time_single_device ?layout d p flags stats =
  List.fold_left
    (fun acc kernel -> acc +. kernel_time ?layout d p flags stats kernel)
    0. Pattern.all_kernels
