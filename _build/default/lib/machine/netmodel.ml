type patch = { owned_cells : int; boundary_cells : int; neighbours : int }

let analytic_patch ~cells ~ranks =
  if ranks < 1 then invalid_arg "Netmodel.analytic_patch: ranks < 1";
  let owned = (cells + ranks - 1) / ranks in
  if ranks = 1 then { owned_cells = owned; boundary_cells = 0; neighbours = 0 }
  else begin
    (* A compact hexagonal patch of n cells has a perimeter of about
       3.8 sqrt n cells; cap at the patch size for tiny partitions. *)
    let boundary =
      Int.min owned (int_of_float (Float.ceil (3.8 *. sqrt (float_of_int owned))))
    in
    { owned_cells = owned; boundary_cells = boundary;
      neighbours = Int.min (ranks - 1) 6 }
  end

let patch_of_partition per_rank =
  Array.fold_left
    (fun acc (owned, boundary, neighbours) ->
      if
        float_of_int boundary +. (0.001 *. float_of_int owned)
        > float_of_int acc.boundary_cells
          +. (0.001 *. float_of_int acc.owned_cells)
      then { owned_cells = owned; boundary_cells = boundary; neighbours }
      else acc)
    { owned_cells = 0; boundary_cells = 0; neighbours = 0 }
    per_rank

(* Each boundary cell carries its thickness plus its ~3 incident edge
   velocities, doubled for the halo-layer edges. *)
let bytes_per_cell ~fields = float_of_int fields *. 4. *. 8.

let exchange_time (net : Hw.network) ?device_link ~fields patch =
  if patch.neighbours = 0 then 0.
  else begin
    let bytes = float_of_int patch.boundary_cells *. bytes_per_cell ~fields in
    let net_time =
      (float_of_int patch.neighbours *. net.net_latency_s)
      +. (bytes /. (net.net_bw_gbs *. 1e9))
    in
    match device_link with
    | None -> net_time
    | Some (l : Hw.link) ->
        (* Device -> host before sending, host -> device after
           receiving. *)
        net_time +. (2. *. (l.latency_s +. (bytes /. (l.bw_gbs *. 1e9))))
  end

let exchanges_per_step = 8

let comm_time_per_step net ?device_link patch =
  float_of_int exchanges_per_step
  *. exchange_time net ?device_link ~fields:2 patch
