(** MPI halo-exchange cost model for the scalability experiments
    (Figures 8 and 9).

    Each MPI process owns a compact patch of cells; one halo exchange
    sends the boundary layer of the two prognostic fields to every
    neighbour.  Algorithm 1 synchronizes twice per RK substep (paper
    Figure 2/4), i.e. eight exchanges per time step.  On the hybrid
    code path the halo additionally crosses the PCIe link in both
    directions. *)

type patch = {
  owned_cells : int;
  boundary_cells : int;  (** cells with a neighbour on another rank *)
  neighbours : int;  (** adjacent ranks *)
}

(** Analytic patch shape for [cells] total cells over [ranks] ranks:
    compact patches have a boundary of ~[perimeter_coef * sqrt own]
    cells and ~6 neighbours (fewer for tiny partitions). *)
val analytic_patch : cells:int -> ranks:int -> patch

(** Same quantities measured from a real partition: takes per-rank
    (owned, boundary, neighbours) and returns the worst-case patch. *)
val patch_of_partition : (int * int * int) array -> patch

(** Seconds for one halo exchange of [fields] double fields on the
    boundary cells (plus proportional edge data), through the network,
    optionally staged over a host-device link. *)
val exchange_time :
  Hw.network -> ?device_link:Hw.link -> fields:int -> patch -> float

(** Halo exchanges per RK-4 step. *)
val exchanges_per_step : int

(** Seconds of communication per time step. *)
val comm_time_per_step :
  Hw.network -> ?device_link:Hw.link -> patch -> float
