open Mpas_patterns

let fig6_anchor_speedups =
  [
    ("Baseline", 1.);
    ("OpenMP", 18.5);
    ("Refactoring", 62.);
    ("SIMD", 75.);
    ("Streaming", 85.);
    ("Others", 98.);
  ]

let cpu_serial_anchors =
  [ (6, 0.271); (7, 1.115); (8, 4.434); (9, 17.528) ]

type deviation = {
  what : string;
  expected : float;
  modelled : float;
  rel_err : float;
}

let deviations () =
  let p = Costmodel.default_params in
  let stats8 = Cost.stats_of_level 8 in
  let mic = Hw.xeon_phi_5110p in
  let base = Costmodel.step_time_single_device mic p Costmodel.baseline stats8 in
  let fig6 =
    List.map2
      (fun (name, flags) (_, expected) ->
        let t = Costmodel.step_time_single_device mic p flags stats8 in
        let modelled = base /. t in
        {
          what = "fig6 " ^ name;
          expected;
          modelled;
          rel_err = Mpas_numerics.Stats.rel_diff expected modelled;
        })
      Costmodel.fig6_ladder fig6_anchor_speedups
  in
  let cpu = Hw.xeon_e5_2680_v2 in
  let serial =
    List.map
      (fun (level, expected) ->
        let modelled =
          Costmodel.step_time_single_device cpu p Costmodel.baseline
            (Cost.stats_of_level level)
        in
        {
          what = Format.sprintf "cpu serial level %d" level;
          expected;
          modelled;
          rel_err = Mpas_numerics.Stats.rel_diff expected modelled;
        })
      cpu_serial_anchors
  in
  fig6 @ serial

let worst_deviation () =
  List.fold_left (fun acc d -> Float.max acc d.rel_err) 0. (deviations ())
