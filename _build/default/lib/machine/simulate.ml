type resource = Host | Device

let resource_name = function Host -> "host" | Device -> "device"

type task = {
  tid : string;
  resource : resource;
  duration : float;
  deps : (string * float) list;
}

type timeline_entry = {
  entry_tid : string;
  entry_resource : resource;
  start : float;
  finish : float;
}

type result = {
  makespan : float;
  host_busy : float;
  device_busy : float;
  link_busy : float;
  timeline : timeline_entry list;
}

type done_task = { fin : float; on : resource }

let run ~(link : Hw.link) tasks =
  let finished : (string, done_task) Hashtbl.t =
    Hashtbl.create (List.length tasks)
  in
  let host_free = ref 0. and device_free = ref 0. and link_free = ref 0. in
  let host_busy = ref 0. and device_busy = ref 0. and link_busy = ref 0. in
  let timeline = ref [] in
  List.iter
    (fun t ->
      if Hashtbl.mem finished t.tid then
        invalid_arg (Format.sprintf "Simulate.run: duplicate task %s" t.tid);
      let data_ready =
        List.fold_left
          (fun acc (dep, bytes) ->
            match Hashtbl.find_opt finished dep with
            | None ->
                invalid_arg
                  (Format.sprintf "Simulate.run: %s depends on unknown/later %s"
                     t.tid dep)
            | Some d ->
                let ready =
                  if d.on = t.resource || bytes <= 0. then d.fin
                  else begin
                    (* Serialize the transfer on the link; it may start
                       only when the data exists and the link is idle. *)
                    let start = Float.max !link_free d.fin in
                    let dur = link.latency_s +. (bytes /. (link.bw_gbs *. 1e9)) in
                    link_free := start +. dur;
                    link_busy := !link_busy +. dur;
                    start +. dur
                  end
                in
                Float.max acc ready)
          0. t.deps
      in
      let resource_free =
        match t.resource with Host -> host_free | Device -> device_free
      in
      let start = Float.max !resource_free data_ready in
      let finish = start +. t.duration in
      resource_free := finish;
      (match t.resource with
      | Host -> host_busy := !host_busy +. t.duration
      | Device -> device_busy := !device_busy +. t.duration);
      Hashtbl.add finished t.tid { fin = finish; on = t.resource };
      timeline :=
        { entry_tid = t.tid; entry_resource = t.resource; start; finish }
        :: !timeline)
    tasks;
  {
    makespan = Float.max !host_free !device_free;
    host_busy = !host_busy;
    device_busy = !device_busy;
    link_busy = !link_busy;
    timeline = List.rev !timeline;
  }

let utilization r =
  if r.makespan <= 0. then (0., 0.)
  else (r.host_busy /. r.makespan, r.device_busy /. r.makespan)

let render_timeline ?(width = 72) r =
  if r.makespan <= 0. then "(empty timeline)"
  else begin
    let buf = Buffer.create 4096 in
    let col t =
      Int.min (width - 1)
        (int_of_float (Float.of_int width *. t /. r.makespan))
    in
    List.iter
      (fun e ->
        if e.finish > e.start then begin
          let c0 = col e.start and c1 = Int.max (col e.start) (col e.finish) in
          let lane, fill =
            match e.entry_resource with Host -> ("host  ", '#') | Device -> ("device", '=')
          in
          Buffer.add_string buf
            (Format.sprintf "%s |%s%s%s| %s\n" lane (String.make c0 ' ')
               (String.make (Int.max 1 (c1 - c0)) fill)
               (String.make (width - Int.max (c1) (c0 + 1)) ' ')
               e.entry_tid)
        end)
      r.timeline;
    Buffer.add_string buf
      (Format.sprintf "%.3f s makespan; host %.0f%%, device %.0f%% busy\n"
         r.makespan
         (100. *. fst (utilization r))
         (100. *. snd (utilization r)));
    Buffer.contents buf
  end

let to_chrome_trace r =
  (* Chrome's about://tracing JSON array format: one complete event per
     task, microsecond timestamps, one row per resource. *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  List.iter
    (fun e ->
      if e.finish > e.start then begin
        if not !first then Buffer.add_string buf ",";
        first := false;
        Buffer.add_string buf
          (Format.sprintf
             {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d}|}
             e.entry_tid (1e6 *. e.start)
             (1e6 *. (e.finish -. e.start))
             (match e.entry_resource with Host -> 1 | Device -> 2))
      end)
    r.timeline;
  Buffer.add_string buf "]";
  Buffer.contents buf
