open Mpas_patterns

(** Roofline-style execution-time model for pattern instances under the
    paper's optimization flags (§IV).

    Time for a loop of work [w] on device [d]:
    {v
    t = max(flops / flop_rate, bytes / mem_rate) + region_overhead
    v}
    where both rates depend on the enabled optimizations:
    - {b multithread} scales the rates by the effective parallel
      speedup; without it a single thread only reaches a fraction of
      the device bandwidth ([mem_bw / bw_saturation_threads]);
    - {b refactored}: without it, irregular-reduction loops synchronize
      their scatter updates and their parallel speedup is capped
      ([scatter_speedup_cap]) — the paper's "<20x without
      refactoring";
    - {b simd}: multiplies the flop rate by the SIMD width times
      [simd_eff_irregular] (gather-dominated loops only use a fraction
      of the lanes); scalar code uses one lane;
    - {b streaming} stores avoid write-allocate traffic, boosting the
      effective bandwidth ([stream_bw_boost]);
    - {b others} (prefetch, 2 MB pages, loop fusion) adds a further
      bandwidth factor and removes the per-instance parallel-region
      overhead in favour of one per kernel. *)

type flags = {
  multithread : bool;
  refactored : bool;
  simd : bool;
  streaming : bool;
  others : bool;
}

val baseline : flags
val fully_optimized : flags

(** The cumulative stages of Figure 6, in order:
    Baseline, OpenMP, Refactoring, SIMD, Streaming, Others. *)
val fig6_ladder : (string * flags) list

type params = {
  scatter_speedup_cap : float;
      (** speedup ceiling of multithreaded un-refactored reductions *)
  simd_eff_irregular : float;
      (** usable fraction of SIMD lanes in indexed-gather loops *)
  stream_bw_boost : float;
  others_bw_boost : float;
  region_overhead_s : float;  (** one parallel-region fork/join *)
  flop_eff : float;
      (** achievable fraction of peak flops in stencil code *)
  gather_amplification : float;
      (** memory-traffic multiplier of stencil loops: indexed gathers
          on an unstructured mesh re-fetch cache lines *)
}

(** Calibrated against the paper's Figure 6 anchor points; see
    [Calibration]. *)
val default_params : params

(** [instance_time d p flags ~irregular ~stencil w] — execution time of
    one loop with work [w].  [irregular] marks loops that are irregular
    reductions in the original code; [stencil] (default true) marks
    loops with indexed-gather traffic subject to
    [gather_amplification]. *)
val instance_time :
  Hw.device -> params -> flags -> irregular:bool -> ?stencil:bool ->
  Cost.work -> float

(** Time of a whole pattern-instance by id on the given mesh.
    [?layout] picks the connectivity layout the byte counts assume
    (default {!Cost.Csr}, matching the packed view the engine runs);
    {!Cost.Ragged} adds the boxed-row-pointer traffic of the
    [int array array] tables. *)
val instance_time_by_id :
  ?layout:Cost.layout ->
  Hw.device -> params -> flags -> Cost.mesh_stats -> string -> float

(** Roofline time of all of one kernel's invocations in one RK-4 step
    on one device: per-instance times summed over the kernel's pattern
    instances, times Algorithm 1's calls per step, minus the fused
    parallel-region savings of the "others" stage.  The per-kernel
    rows of the measured-vs-modelled report ([Mpas_obs_report.Report])
    come from here. *)
val kernel_time :
  ?layout:Cost.layout ->
  Hw.device -> params -> flags -> Cost.mesh_stats -> Pattern.kernel -> float

(** One full RK-4 step run entirely on one device (no hybrid overlap):
    sum of {!kernel_time} over the six kernels.  This is the quantity
    behind Figure 6. *)
val step_time_single_device :
  ?layout:Cost.layout ->
  Hw.device -> params -> flags -> Cost.mesh_stats -> float
