(** Hardware descriptors for the performance model.

    The two devices reproduce Table II of the paper (Intel Xeon
    E5-2680 v2 and Intel Xeon Phi 5110P); the numbers not in the table
    (sustainable memory bandwidth, bandwidth-saturation thread counts,
    link characteristics) come from vendor data sheets and STREAM
    measurements reported for these parts, and are documented on each
    field. *)

type device = {
  name : string;
  cores : int;
  threads_per_core : int;
  freq_ghz : float;
  simd_width_dp : int;  (** double-precision SIMD lanes *)
  peak_gflops : float;  (** Table II "Gflops in D.P." *)
  mem_bw_gbs : float;  (** sustainable STREAM bandwidth, GB/s *)
  bw_saturation_threads : float;
      (** threads needed to reach [mem_bw_gbs]; a single thread
          sustains [mem_bw_gbs / bw_saturation_threads] *)
  thread_efficiency : float;
      (** effective fraction of the hardware threads that a
          well-refactored irregular stencil loop exploits (in-order
          accelerator cores score much lower than the Xeon) *)
  scalar_penalty : float;
      (** extra slowdown of non-SIMD code relative to the nominal
          per-lane rate (KNC's in-order pipeline issues scalar code
          poorly; 1.0 for the Xeon) *)
}

(** Total hardware threads. *)
val threads : device -> int

(** Peak scalar (non-SIMD) GFLOP/s of one core. *)
val scalar_core_gflops : device -> float

(** Table II, left column. *)
val xeon_e5_2680_v2 : device

(** Table II, right column. *)
val xeon_phi_5110p : device

type link = {
  link_name : string;
  latency_s : float;
  bw_gbs : float;
}

(** PCIe 2.0 x16, the 5110P's host link. *)
val pcie_gen2_x16 : link

(** One compute node of the paper's platform: CPU socket + one Phi. *)
type node = { cpu : device; acc : device; link : link }

val paper_node : node

type network = {
  net_name : string;
  net_latency_s : float;
  net_bw_gbs : float;
}

(** 56 Gb/s FDR InfiniBand (§V). *)
val fdr_infiniband : network

(** NVIDIA Tesla K20X (Titan's accelerator, cited in the paper's
    introduction) — used by the host-to-device-ratio ablation. *)
val tesla_k20x : device
