lib/machine/netmodel.mli: Hw
