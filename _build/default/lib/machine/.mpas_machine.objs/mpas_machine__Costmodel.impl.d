lib/machine/costmodel.ml: Cost Float Hw List Mpas_dataflow Mpas_patterns Pattern Registry
