lib/machine/simulate.ml: Buffer Float Format Hashtbl Hw Int List String
