lib/machine/calibration.mli:
