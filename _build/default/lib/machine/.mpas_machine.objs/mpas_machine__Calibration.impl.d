lib/machine/calibration.ml: Cost Costmodel Float Format Hw List Mpas_numerics Mpas_patterns
