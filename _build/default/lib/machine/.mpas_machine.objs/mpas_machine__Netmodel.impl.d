lib/machine/netmodel.ml: Array Float Hw Int
