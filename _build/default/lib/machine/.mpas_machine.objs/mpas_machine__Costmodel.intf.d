lib/machine/costmodel.mli: Cost Hw Mpas_patterns Pattern
