lib/machine/simulate.mli: Hw
