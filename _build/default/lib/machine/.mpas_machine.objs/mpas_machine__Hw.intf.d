lib/machine/hw.mli:
