lib/machine/hw.ml:
