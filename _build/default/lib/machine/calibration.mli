(** Calibration anchors of the performance model (DESIGN.md §6).

    The cost-model parameters ([Costmodel.default_params] and the
    [thread_efficiency] fields of [Hw]) were fitted {e once} against
    the paper's reported numbers below and are then held fixed for all
    experiments — Figures 7, 8 and 9 are predictions, not per-figure
    fits. *)

(** Figure 6 speedups over the single-core MIC baseline after each
    cumulative optimization stage, as read off the paper's bar chart. *)
val fig6_anchor_speedups : (string * float) list

(** Figure 7 single-core CPU seconds per step per bisection level. *)
val cpu_serial_anchors : (int * float) list

type deviation = {
  what : string;
  expected : float;
  modelled : float;
  rel_err : float;
}

(** Evaluate the model against every anchor. *)
val deviations : unit -> deviation list

(** Largest relative deviation across all anchors; the test suite
    asserts this stays below 0.15. *)
val worst_deviation : unit -> float
