lib/par/pool.mli:
