lib/par/pool.ml: Array Atomic Condition Domain Fun Int List Mpas_obs Mutex
