lib/core/report.ml: Format List Mpas_numerics String Table
