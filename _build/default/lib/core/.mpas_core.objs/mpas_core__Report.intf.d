lib/core/report.mli:
