(** Regeneration of every table and figure of the paper's evaluation
    (DESIGN.md §2, §5).  Each function returns a [Report.t] whose rows
    carry both our measured/modelled values and the paper's reported
    values where the paper gives them.

    Figure 5 runs the {e real} shallow-water solver; Figures 6-9 run
    the calibrated performance model (this container has neither a
    Xeon Phi nor an InfiniBand cluster — see DESIGN.md §3). *)

(** Table I: the pattern inventory. *)
val table1 : unit -> Report.t

(** Table II: the modelled platform. *)
val table2 : unit -> Report.t

(** Table III: the four quasi-uniform SCVT meshes. *)
val table3 : unit -> Report.t

(** Figure 5: correctness of the refactored/hybrid execution against
    the original serial code on Williamson TC5.  [level] selects the
    mesh (default 4; the paper uses the 120-km mesh = level 6, which
    takes minutes), [hours] the simulated span (default 6; the paper
    shows day 15), [domains] the pool size of the parallel engine. *)
val fig5 :
  ?level:int -> ?lloyd_iters:int -> ?hours:float -> ?domains:int -> unit ->
  Report.t

(** Figure 6: the optimization ladder on one Xeon Phi, 30-km mesh. *)
val fig6 : unit -> Report.t

(** Figure 7: CPU / kernel-level / pattern-driven per-step times and
    speedups over the four meshes of Table III. *)
val fig7 : unit -> Report.t

(** Figure 8: strong scaling, 1-64 processes, 30-km and 15-km meshes. *)
val fig8 : unit -> Report.t

(** Figure 9: weak scaling at ~40962 cells per process. *)
val fig9 : unit -> Report.t

(** All experiments in paper order.  [fig5_level]/[fig5_hours] tune the
    real-solver run embedded in Figure 5. *)
val all : ?fig5_level:int -> ?fig5_hours:float -> unit -> Report.t list

(** Ablation beyond the paper's figures: vary the accelerator
    (half-size Phi, the Phi 5110P, a Tesla K20X) and report the
    re-optimized adjustable split — the §II-C "arbitrary host-to-device
    ratios" claim. *)
val ablation_device_ratio : unit -> Report.t

(** Ablation of §IV-A: PCIe traffic and step time with and without
    up-front device residency. *)
val ablation_residency : unit -> Report.t

(** Extension: spatial convergence of the solver against the analytic
    TC2 steady state over a range of bisection levels. *)
val convergence : ?levels:int list -> ?hours:float -> unit -> Report.t

(** Validation extension: measured per-kernel time shares of the real
    solver vs the cost model's prediction. *)
val model_vs_measured : ?level:int -> ?steps:int -> unit -> Report.t

(** Extension: unsteady convergence of TC5 against a fine-reference
    run, using the mesh-to-mesh remap. *)
val convergence_tc5 :
  ?levels:int list -> ?reference_level:int -> ?hours:float -> unit -> Report.t

(** Extension: bisected stability boundary of the RK-4 step on TC5 per
    resolution — a CFL-scaling validation. *)
val stability : ?levels:int list -> unit -> Report.t
