(** Experiment result tables: a title, column headers, rows and
    free-text notes, renderable as aligned ASCII (the format of
    EXPERIMENTS.md). *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

val make :
  title:string -> headers:string list -> ?notes:string list ->
  string list list -> t

val render : t -> string
val print : t -> unit

(** Format helpers shared by the experiments. *)
val f3 : float -> string

val f2 : float -> string
val speedup : float -> string
