open Mpas_numerics

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ?(notes = []) rows = { title; headers; rows; notes }

let render t =
  let table = Table.create t.headers in
  List.iter (Table.add_row table) t.rows;
  let body = Table.render table in
  let notes =
    match t.notes with
    | [] -> ""
    | notes -> "\n" ^ String.concat "\n" (List.map (fun n -> "  note: " ^ n) notes)
  in
  Format.sprintf "== %s ==\n%s%s\n" t.title body notes

let print t = print_string (render t ^ "\n")
let f3 x = Format.sprintf "%.3f" x
let f2 x = Format.sprintf "%.2f" x
let speedup x = Format.sprintf "%.2fx" x
