(** Loop-fusion analysis (paper §IV-F: "loop fusing ... by properly
    fusing adjacent computation patterns without affecting the data
    dependency in the data-flow diagram").

    Two consecutive instances of the same kernel can share one fused
    loop (and hence one parallel region) when they iterate over the
    same point space and the later one reads the earlier one's outputs
    only at its own point (a [neighbour_inputs] read of a chain-produced
    variable forces a barrier: the whole producing loop must finish
    before any neighbour is read). *)

open Mpas_patterns

(** Maximal fusable chains of one kernel, in execution order; each
    chain is a list of instance ids. *)
val chains : Pattern.kernel -> string list list

(** Chains of every kernel. *)
val all_chains : unit -> (Pattern.kernel * string list list) list

(** Parallel regions per RK-4 step before fusion (one per instance
    execution) and after (one per chain execution). *)
val regions_per_step : unit -> int * int
