lib/dataflow/graph.mli: Mpas_patterns Pattern
