lib/dataflow/fusion.mli: Mpas_patterns Pattern
