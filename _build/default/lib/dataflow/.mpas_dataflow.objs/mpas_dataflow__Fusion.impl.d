lib/dataflow/fusion.ml: Cost List Mpas_patterns Pattern Registry
