lib/dataflow/dot.ml: Array Buffer Format Graph List Mpas_patterns Pattern
