lib/dataflow/graph.ml: Array Float Format Fun Hashtbl Int List Mpas_patterns Pattern Registry
