open Mpas_patterns

(* Can [next] join a chain that already produces [chain_outputs]? *)
let can_fuse ~chain_spaces ~chain_outputs (next : Pattern.instance) =
  next.Pattern.spaces = chain_spaces
  && List.for_all
       (fun v -> not (List.mem v chain_outputs))
       next.Pattern.neighbour_inputs

let chains kernel =
  let rec go current outputs acc = function
    | [] -> List.rev (List.rev current :: acc)
    | (i : Pattern.instance) :: rest ->
        if
          current <> []
          && can_fuse
               ~chain_spaces:(Registry.instance (List.hd current)).Pattern.spaces
               ~chain_outputs:outputs i
        then go (i.Pattern.id :: current) (outputs @ i.Pattern.outputs) acc rest
        else begin
          let acc = if current = [] then acc else List.rev current :: acc in
          go [ i.Pattern.id ] i.Pattern.outputs acc rest
        end
  in
  match Registry.of_kernel kernel with
  | [] -> []
  | instances -> go [] [] [] instances

let all_chains () = List.map (fun k -> (k, chains k)) Pattern.all_kernels

let regions_per_step () =
  List.fold_left
    (fun (before, after) kernel ->
      let calls = Cost.kernel_calls_per_step kernel in
      let instances = List.length (Registry.of_kernel kernel) in
      let fused = List.length (chains kernel) in
      (before + (calls * instances), after + (calls * fused)))
    (0, 0) Pattern.all_kernels
