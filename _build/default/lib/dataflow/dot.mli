(** Graphviz export of the data-flow diagram, clustered by kernel like
    Figure 4 of the paper. *)

(** Render to DOT.  [placement] optionally colors nodes by where the
    hybrid plan puts them (like the gray/yellow boxes of Figure 4b). *)
val render : ?placement:(string -> string option) -> Graph.t -> string
