open Mpas_patterns
let render ?(placement = fun _ -> None) (g : Graph.t) =
  let buf = Buffer.create 4096 in
  let pr fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  pr "digraph dataflow {\n  rankdir=TB;\n  node [shape=box];\n";
  List.iteri
    (fun ki kernel ->
      let members =
        Array.to_list g.nodes
        |> List.filter (fun n -> n.Graph.instance.Pattern.kernel = kernel)
      in
      if members <> [] then begin
        pr "  subgraph cluster_%d {\n    label=\"%s\";\n" ki
          (Pattern.kernel_name kernel);
        List.iter
          (fun n ->
            let inst = n.Graph.instance in
            let shape =
              match inst.Pattern.kind with
              | Pattern.Stencil _ -> "ellipse"
              | Pattern.Local -> "box"
            in
            let color =
              match placement inst.Pattern.id with
              | Some c -> Format.sprintf ", style=filled, fillcolor=\"%s\"" c
              | None -> ""
            in
            pr "    n%d [label=\"%s\", shape=%s%s];\n" n.Graph.index
              inst.Pattern.id shape color)
          members;
        pr "  }\n"
      end)
    Pattern.all_kernels;
  List.iter
    (fun d -> pr "  n%d -> n%d [label=\"%s\"];\n" d.Graph.src d.Graph.dst d.Graph.var)
    g.deps;
  pr "}\n";
  Buffer.contents buf
