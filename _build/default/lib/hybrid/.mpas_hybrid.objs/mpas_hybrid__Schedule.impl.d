lib/hybrid/schedule.ml: Cost Costmodel Float Format Fun Hashtbl Hw List Metrics Mpas_machine Mpas_obs Mpas_patterns Pattern Plan Registry Simulate String Trace
