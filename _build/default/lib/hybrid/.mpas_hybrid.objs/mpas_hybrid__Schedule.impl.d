lib/hybrid/schedule.ml: Cost Costmodel Float Format Fun Hashtbl Hw List Mpas_machine Mpas_patterns Pattern Plan Registry Simulate String
