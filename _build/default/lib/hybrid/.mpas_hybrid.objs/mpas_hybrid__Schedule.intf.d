lib/hybrid/schedule.mli: Costmodel Hw Mpas_machine Mpas_obs Mpas_patterns Plan Simulate
