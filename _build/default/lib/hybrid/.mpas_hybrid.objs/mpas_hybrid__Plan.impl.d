lib/hybrid/plan.ml: Format List Mpas_patterns Pattern Printexc Registry
