lib/hybrid/plan.mli:
