(** Placement plans: which pattern instances run on the host CPU, which
    on the accelerator, and which are {e adjustable} — split between
    the two with a tunable fraction (the light-yellow boxes of paper
    Figure 4b). *)

type site =
  | Host
  | Device
  | Adjustable  (** split [f] on host, [1 - f] on device *)

val site_name : site -> string

type t = {
  plan_name : string;
  place : string -> site;  (** by instance id *)
}

(** Everything on the host — the structure of the original (or
    CPU-multithreaded) code. *)
val cpu_only : t

(** Everything offloaded — the accelerator-rich strategy of §II-C. *)
val device_only : t

(** The kernel-level design of Figure 2: whole kernels are the
    placement unit.  The accumulative update runs on the CPU
    (concurrently with the device's diagnostics, the only kernel-level
    concurrency Algorithm 1 admits); every other kernel runs on the
    accelerator. *)
val kernel_level : t

(** The pattern-driven design of Figure 4b: local updates and the
    reconstruction on the CPU, the heavy edge stencils pinned to the
    accelerator, and the cell/vertex diagnostics adjustable. *)
val pattern_driven : t

(** Validation: every registry instance gets a site; Adjustable only
    appears in plans that can split (always true of ours).  Returns
    violations. *)
val check : t -> string list
