open Mpas_numerics

let to_string (m : Mesh.t) fields =
  List.iter
    (fun (name, data) ->
      if Array.length data <> m.n_cells then
        invalid_arg ("Vtk: field " ^ name ^ " is not a cell field");
      if String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') name then
        invalid_arg ("Vtk: field name contains whitespace: " ^ name))
    fields;
  let buf = Buffer.create (1 lsl 20) in
  let pr fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  pr "# vtk DataFile Version 3.0\n";
  pr "mpas mesh\nASCII\nDATASET POLYDATA\n";
  (* Points: the Voronoi corners (mesh vertices). *)
  pr "POINTS %d double\n" m.n_vertices;
  Array.iter
    (fun (p : Vec3.t) -> pr "%.9g %.9g %.9g\n" p.x p.y p.z)
    m.x_vertex;
  (* Polygons: one per cell, listing its corners in order. *)
  let size =
    Array.fold_left (fun acc n -> acc + n + 1) 0 m.n_edges_on_cell
  in
  pr "POLYGONS %d %d\n" m.n_cells size;
  for c = 0 to m.n_cells - 1 do
    pr "%d" m.n_edges_on_cell.(c);
    for j = 0 to m.n_edges_on_cell.(c) - 1 do
      pr " %d" m.vertices_on_cell.(c).(j)
    done;
    pr "\n"
  done;
  if fields <> [] then begin
    pr "CELL_DATA %d\n" m.n_cells;
    List.iter
      (fun (name, data) ->
        pr "SCALARS %s double 1\nLOOKUP_TABLE default\n" name;
        Array.iter (fun x -> pr "%.9g\n" x) data)
      fields
  end;
  Buffer.contents buf

let save m fields path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m fields))
