(** Construction of the full MPAS mesh (dual Voronoi mesh with all
    connectivity, geometry, sign and TRiSK-weight arrays) from a primal
    spherical triangulation. *)

open Mpas_numerics

(** Earth's angular velocity in rad/s, the default for Coriolis. *)
val earth_omega : float

(** [of_triangulation ~radius ~coriolis tri] builds the dual mesh of
    [tri] on a sphere of radius [radius] (meters).  [coriolis p] gives
    the Coriolis parameter at unit-sphere position [p]; the default is
    [2 * earth_omega * sin lat]. *)
val of_triangulation :
  ?radius:float -> ?coriolis:(Vec3.t -> float) -> Icosphere.t -> Mesh.t

(** Convenience: icosahedral bisection grid at [level], optionally
    Lloyd-relaxed toward an SCVT.  A [density] function turns the grid
    into a multiresolution SCVT (local spacing ~ density^(-1/4); keep
    the implied spacing ratio under ~2 so the fixed topology stays
    Delaunay).  Defaults: Earth radius, Earth rotation, no
    relaxation. *)
val icosahedral :
  ?radius:float ->
  ?omega:float ->
  ?lloyd_iters:int ->
  ?density:(Vec3.t -> float) ->
  ?over_relax:float ->
  level:int ->
  unit ->
  Mesh.t
