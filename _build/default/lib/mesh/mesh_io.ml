open Mpas_numerics
open Mesh

let fp = Format.fprintf

let write_int_array ppf name a =
  fp ppf "%s %d\n" name (Array.length a);
  Array.iter (fun x -> fp ppf "%d " x) a;
  fp ppf "\n"

let write_float_array ppf name a =
  fp ppf "%s %d\n" name (Array.length a);
  Array.iter (fun x -> fp ppf "%.17g " x) a;
  fp ppf "\n"

let write_bool_array ppf name a =
  write_int_array ppf name (Array.map (fun b -> if b then 1 else 0) a)

let write_vec_array ppf name a =
  fp ppf "%s %d\n" name (Array.length a);
  Array.iter
    (fun (v : Vec3.t) -> fp ppf "%.17g %.17g %.17g " v.x v.y v.z)
    a;
  fp ppf "\n"

let write_ragged_int ppf name a =
  fp ppf "%s %d\n" name (Array.length a);
  Array.iter
    (fun row ->
      fp ppf "%d" (Array.length row);
      Array.iter (fun x -> fp ppf " %d" x) row;
      fp ppf "\n")
    a

let write_ragged_float ppf name a =
  fp ppf "%s %d\n" name (Array.length a);
  Array.iter
    (fun row ->
      fp ppf "%d" (Array.length row);
      Array.iter (fun x -> fp ppf " %.17g" x) row;
      fp ppf "\n")
    a

let to_string (m : t) =
  let buf = Buffer.create (1 lsl 20) in
  let ppf = Format.formatter_of_buffer buf in
  fp ppf "mpas-mesh 1\n";
  (match m.geometry with
  | Sphere r -> fp ppf "geometry sphere %.17g\n" r
  | Plane { lx; ly } -> fp ppf "geometry plane %.17g %.17g\n" lx ly);
  fp ppf "counts %d %d %d %d\n" m.n_cells m.n_edges m.n_vertices m.max_edges;
  write_vec_array ppf "x_cell" m.x_cell;
  write_vec_array ppf "x_edge" m.x_edge;
  write_vec_array ppf "x_vertex" m.x_vertex;
  write_float_array ppf "lon_cell" m.lon_cell;
  write_float_array ppf "lat_cell" m.lat_cell;
  write_float_array ppf "lon_edge" m.lon_edge;
  write_float_array ppf "lat_edge" m.lat_edge;
  write_float_array ppf "lon_vertex" m.lon_vertex;
  write_float_array ppf "lat_vertex" m.lat_vertex;
  write_int_array ppf "n_edges_on_cell" m.n_edges_on_cell;
  write_ragged_int ppf "edges_on_cell" m.edges_on_cell;
  write_ragged_int ppf "cells_on_cell" m.cells_on_cell;
  write_ragged_int ppf "vertices_on_cell" m.vertices_on_cell;
  write_ragged_int ppf "cells_on_edge" m.cells_on_edge;
  write_ragged_int ppf "vertices_on_edge" m.vertices_on_edge;
  write_ragged_int ppf "edges_on_vertex" m.edges_on_vertex;
  write_ragged_int ppf "cells_on_vertex" m.cells_on_vertex;
  write_int_array ppf "n_edges_on_edge" m.n_edges_on_edge;
  write_ragged_int ppf "edges_on_edge" m.edges_on_edge;
  write_ragged_float ppf "weights_on_edge" m.weights_on_edge;
  write_float_array ppf "dc_edge" m.dc_edge;
  write_float_array ppf "dv_edge" m.dv_edge;
  write_float_array ppf "area_cell" m.area_cell;
  write_float_array ppf "area_triangle" m.area_triangle;
  write_ragged_float ppf "kite_areas_on_vertex" m.kite_areas_on_vertex;
  write_vec_array ppf "edge_normal" m.edge_normal;
  write_vec_array ppf "edge_tangent" m.edge_tangent;
  write_float_array ppf "angle_edge" m.angle_edge;
  write_ragged_float ppf "edge_sign_on_cell" m.edge_sign_on_cell;
  write_ragged_float ppf "edge_sign_on_vertex" m.edge_sign_on_vertex;
  write_float_array ppf "f_cell" m.f_cell;
  write_float_array ppf "f_edge" m.f_edge;
  write_float_array ppf "f_vertex" m.f_vertex;
  write_bool_array ppf "boundary_edge" m.boundary_edge;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* --- reading ------------------------------------------------------------ *)

type reader = { mutable tokens : string list }

let tokenize s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun t -> t <> "")

let next r =
  match r.tokens with
  | [] -> failwith "Mesh_io: unexpected end of input"
  | t :: rest ->
      r.tokens <- rest;
      t

let next_int r =
  let t = next r in
  match int_of_string_opt t with
  | Some i -> i
  | None -> failwith ("Mesh_io: expected integer, got " ^ t)

let next_float r =
  let t = next r in
  match float_of_string_opt t with
  | Some f -> f
  | None -> failwith ("Mesh_io: expected float, got " ^ t)

let expect r tag =
  let t = next r in
  if t <> tag then failwith (Format.sprintf "Mesh_io: expected %s, got %s" tag t)

let read_sized r tag read_item =
  expect r tag;
  let n = next_int r in
  Array.init n (fun _ -> read_item r)

let read_int_array r tag = read_sized r tag next_int
let read_float_array r tag = read_sized r tag next_float

let read_bool_array r tag =
  Array.map (fun x -> x <> 0) (read_int_array r tag)

let read_vec_array r tag =
  read_sized r tag (fun r ->
      let x = next_float r in
      let y = next_float r in
      let z = next_float r in
      Vec3.make x y z)

let read_ragged r tag read_item =
  read_sized r tag (fun r ->
      let k = next_int r in
      Array.init k (fun _ -> read_item r))

let of_string s =
  let r = { tokens = tokenize s } in
  expect r "mpas-mesh";
  let version = next_int r in
  if version <> 1 then failwith "Mesh_io: unsupported version";
  expect r "geometry";
  let geometry =
    match next r with
    | "sphere" -> Sphere (next_float r)
    | "plane" ->
        let lx = next_float r in
        let ly = next_float r in
        Plane { lx; ly }
    | g -> failwith ("Mesh_io: unknown geometry " ^ g)
  in
  expect r "counts";
  let n_cells = next_int r in
  let n_edges = next_int r in
  let n_vertices = next_int r in
  let max_edges = next_int r in
  let x_cell = read_vec_array r "x_cell" in
  let x_edge = read_vec_array r "x_edge" in
  let x_vertex = read_vec_array r "x_vertex" in
  let lon_cell = read_float_array r "lon_cell" in
  let lat_cell = read_float_array r "lat_cell" in
  let lon_edge = read_float_array r "lon_edge" in
  let lat_edge = read_float_array r "lat_edge" in
  let lon_vertex = read_float_array r "lon_vertex" in
  let lat_vertex = read_float_array r "lat_vertex" in
  let n_edges_on_cell = read_int_array r "n_edges_on_cell" in
  let edges_on_cell = read_ragged r "edges_on_cell" next_int in
  let cells_on_cell = read_ragged r "cells_on_cell" next_int in
  let vertices_on_cell = read_ragged r "vertices_on_cell" next_int in
  let cells_on_edge = read_ragged r "cells_on_edge" next_int in
  let vertices_on_edge = read_ragged r "vertices_on_edge" next_int in
  let edges_on_vertex = read_ragged r "edges_on_vertex" next_int in
  let cells_on_vertex = read_ragged r "cells_on_vertex" next_int in
  let n_edges_on_edge = read_int_array r "n_edges_on_edge" in
  let edges_on_edge = read_ragged r "edges_on_edge" next_int in
  let weights_on_edge = read_ragged r "weights_on_edge" next_float in
  let dc_edge = read_float_array r "dc_edge" in
  let dv_edge = read_float_array r "dv_edge" in
  let area_cell = read_float_array r "area_cell" in
  let area_triangle = read_float_array r "area_triangle" in
  let kite_areas_on_vertex = read_ragged r "kite_areas_on_vertex" next_float in
  let edge_normal = read_vec_array r "edge_normal" in
  let edge_tangent = read_vec_array r "edge_tangent" in
  let angle_edge = read_float_array r "angle_edge" in
  let edge_sign_on_cell = read_ragged r "edge_sign_on_cell" next_float in
  let edge_sign_on_vertex = read_ragged r "edge_sign_on_vertex" next_float in
  let f_cell = read_float_array r "f_cell" in
  let f_edge = read_float_array r "f_edge" in
  let f_vertex = read_float_array r "f_vertex" in
  let boundary_edge = read_bool_array r "boundary_edge" in
  {
    geometry; n_cells; n_edges; n_vertices; max_edges;
    x_cell; x_edge; x_vertex;
    lon_cell; lat_cell; lon_edge; lat_edge; lon_vertex; lat_vertex;
    n_edges_on_cell; edges_on_cell; cells_on_cell; vertices_on_cell;
    cells_on_edge; vertices_on_edge; edges_on_vertex; cells_on_vertex;
    n_edges_on_edge; edges_on_edge; weights_on_edge;
    dc_edge; dv_edge; area_cell; area_triangle; kite_areas_on_vertex;
    edge_normal; edge_tangent; angle_edge;
    edge_sign_on_cell; edge_sign_on_vertex;
    f_cell; f_edge; f_vertex; boundary_edge;
    csr_cache = None;
  }

let save m path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
