open Mpas_numerics

type locator = { mesh : Mesh.t; mutable last : int }

let locator mesh = { mesh; last = 0 }

let nearest_cell t p =
  let m = t.mesh in
  let p =
    match m.geometry with
    | Mesh.Sphere _ -> Vec3.normalize p
    | Mesh.Plane _ -> p
  in
  let d c = Vec3.dist p m.x_cell.(c) in
  let rec descend c dc =
    let best = ref c and best_d = ref dc in
    for j = 0 to m.n_edges_on_cell.(c) - 1 do
      let c' = m.cells_on_cell.(c).(j) in
      let dc' = d c' in
      if dc' < !best_d then begin
        best := c';
        best_d := dc'
      end
    done;
    if !best = c then c else descend !best !best_d
  in
  let hit = descend t.last (d t.last) in
  t.last <- hit;
  hit

let remap ~(src : Mesh.t) ~(dst : Mesh.t) field =
  if Array.length field <> src.n_cells then
    invalid_arg "Remap.remap: field length does not match the source mesh";
  let loc = locator src in
  Array.init dst.n_cells (fun c ->
      let p =
        match (src.geometry, dst.geometry) with
        | Mesh.Sphere _, Mesh.Sphere _ -> Vec3.normalize dst.x_cell.(c)
        | _ -> dst.x_cell.(c)
      in
      let nearest = nearest_cell loc p in
      let d0 = Vec3.dist p src.x_cell.(nearest) in
      if d0 < 1e-12 then field.(nearest)
      else begin
        (* Inverse-distance weights over the nearest cell and its ring. *)
        let num = ref 0. and den = ref 0. in
        let add c' =
          let w = 1. /. Vec3.dist p src.x_cell.(c') ** 2. in
          num := !num +. (w *. field.(c'));
          den := !den +. w
        in
        add nearest;
        for j = 0 to src.n_edges_on_cell.(nearest) - 1 do
          add src.cells_on_cell.(nearest).(j)
        done;
        !num /. !den
      end)

let l2_error ~coarse ~fine ~field ~reference =
  let mapped = remap ~src:coarse ~dst:fine field in
  Stats.l2_diff mapped reference /. Stats.l2_norm reference
