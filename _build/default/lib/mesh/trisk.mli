(** TRiSK tangential-reconstruction weights (Thuburn et al. 2009;
    Ringler et al. 2010), shared by the spherical and planar mesh
    builders.

    For each edge [e], the tangential velocity is reconstructed as
    [v_e = sum_i w.(e).(i) * u(eoe.(e).(i))].  The weights satisfy the
    antisymmetry [A_e w_(e,e') = -A_(e') w_(e',e)] with
    [A_e = dc_e * dv_e], which makes the discrete Coriolis force
    energy-neutral. *)

type input = {
  n_edges : int;
  cells_on_edge : int array array;
  n_edges_on_cell : int array;
  edges_on_cell : int array array;
  vertices_on_cell : int array array;
  cells_on_vertex : int array array;
  kite_areas_on_vertex : float array array;
  area_cell : float array;
  dc_edge : float array;
  dv_edge : float array;
  edge_sign_on_cell : float array array;
}

(** Returns [(edges_on_edge, weights_on_edge)]. *)
val weights : input -> int array array * float array array
