lib/mesh/mesh_io.ml: Array Buffer Format Fun List Mesh Mpas_numerics String Vec3
