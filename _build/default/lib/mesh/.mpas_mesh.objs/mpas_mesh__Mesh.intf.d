lib/mesh/mesh.mli: Mpas_numerics Vec3
