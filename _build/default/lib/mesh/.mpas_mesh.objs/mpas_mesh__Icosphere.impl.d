lib/mesh/icosphere.ml: Array Hashtbl Int List Mpas_numerics Sphere Stats Vec3
