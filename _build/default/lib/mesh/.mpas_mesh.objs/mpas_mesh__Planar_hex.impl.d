lib/mesh/planar_hex.ml: Array Mesh Mpas_numerics Trisk Vec3
