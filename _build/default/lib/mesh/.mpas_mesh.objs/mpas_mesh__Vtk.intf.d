lib/mesh/vtk.mli: Mesh
