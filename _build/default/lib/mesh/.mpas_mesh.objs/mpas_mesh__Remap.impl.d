lib/mesh/remap.ml: Array Mesh Mpas_numerics Stats Vec3
