lib/mesh/quality.mli: Mesh
