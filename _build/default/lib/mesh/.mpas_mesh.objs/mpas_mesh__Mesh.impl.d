lib/mesh/mesh.ml: Array Float Format List Mpas_numerics Stats String Vec3
