lib/mesh/remap.mli: Mesh Mpas_numerics Vec3
