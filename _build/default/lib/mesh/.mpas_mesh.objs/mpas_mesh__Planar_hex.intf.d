lib/mesh/planar_hex.mli: Mesh
