lib/mesh/mesh_index.ml: Array
