lib/mesh/trisk.ml: Array List Mesh_index
