lib/mesh/mesh_index.mli:
