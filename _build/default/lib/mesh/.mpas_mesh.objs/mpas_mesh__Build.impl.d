lib/mesh/build.ml: Array Format Hashtbl Icosphere Int List Mesh Mpas_numerics Sphere Trisk Vec3
