lib/mesh/build.mli: Icosphere Mesh Mpas_numerics Vec3
