lib/mesh/icosphere.mli: Mpas_numerics Vec3
