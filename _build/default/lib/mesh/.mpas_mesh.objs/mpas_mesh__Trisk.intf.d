lib/mesh/trisk.mli:
