lib/mesh/quality.ml: Array Float Format Fun List Mesh Mpas_numerics Sphere Stats Vec3
