lib/mesh/mesh_io.mli: Mesh
