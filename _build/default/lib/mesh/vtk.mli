(** Legacy-VTK export of meshes and cell fields for visualization in
    ParaView/VisIt: the Voronoi cells become VTK polygons (on the unit
    sphere or the plane) with any number of named cell-data scalars. *)

(** [to_string mesh fields] renders an ASCII "legacy" VTK PolyData
    file; [fields] are (name, per-cell values) pairs.
    @raise Invalid_argument when a field has the wrong length or a
    name contains whitespace. *)
val to_string : Mesh.t -> (string * float array) list -> string

val save : Mesh.t -> (string * float array) list -> string -> unit
