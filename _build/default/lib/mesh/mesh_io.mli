(** Plain-text serialization of meshes.

    The format is a line-oriented dump of every array of [Mesh.t] with
    full float precision ("%.17g"), so a save/load round trip
    reproduces the mesh bit-for-bit.  Intended for caching expensive
    fine meshes between runs, not for interchange. *)

open Mesh

val save : t -> string -> unit

(** @raise Failure on malformed files. *)
val load : string -> t

(** In-memory round trip, used by tests and as a deep copy. *)
val to_string : t -> string

val of_string : string -> t
