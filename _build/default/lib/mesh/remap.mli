(** Cell-field remapping between meshes of the same domain, used to
    compare runs at different resolutions (error norms against a
    high-resolution reference).

    The locator routes greedily on the cell-adjacency graph: from a
    start cell, repeatedly step to the neighbour whose center is
    closest to the query point until no neighbour improves.  On a
    Delaunay/Voronoi mesh this terminates at the true nearest cell, in
    O(sqrt n) steps; consecutive queries reuse the previous hit as the
    start, so sweeps over a mesh are effectively O(1) per query. *)

open Mpas_numerics

type locator

val locator : Mesh.t -> locator

(** Nearest cell (by center distance) to a point.  For spherical meshes
    the point need not be normalized. *)
val nearest_cell : locator -> Vec3.t -> int

(** [remap ~src ~dst field] carries a cell field from [src] onto [dst]
    by inverse-distance weighting over the nearest source cell and its
    neighbours; a destination center that coincides with a source
    center copies the value exactly.
    @raise Invalid_argument when [field] is not a [src] cell field. *)
val remap : src:Mesh.t -> dst:Mesh.t -> float array -> float array

(** Relative l2 difference of two runs of the same field on different
    meshes: [coarse] is remapped onto [fine] and compared against
    [reference] there. *)
val l2_error :
  coarse:Mesh.t -> fine:Mesh.t -> field:float array ->
  reference:float array -> float
