(** Doubly periodic planar mesh of perfectly regular hexagons.

    Cells sit on the triangular lattice spanned by [a1 = (dc, 0)] and
    [a2 = (dc/2, dc*sqrt 3/2)]; the domain is the torus
    [nx*a1 x ny*a2].  Because every hexagon, kite and dual triangle is
    exactly regular, discrete operators have known exact values here,
    which makes this mesh the reference fixture for unit tests (the
    spherical mesh only offers convergence tests).

    Positions are stored {e unwrapped} (a cell at lattice coordinates
    [(i, j)] is at [i*a1 + j*a2] even when an edge or vertex of the
    periodic seam sticks out of the fundamental domain), so linear test
    fields evaluated at stored positions are consistent away from the
    seams.  Connectivity is fully periodic. *)

(** [create ~nx ~ny ~dc ()] builds the mesh.  [nx, ny >= 3] keeps the
    periodic connectivity simple (no double edges between the same two
    cells).  [dc] is the cell-center spacing; [f] is a constant
    Coriolis parameter (default 0). *)
val create : ?f:float -> nx:int -> ny:int -> dc:float -> unit -> Mesh.t
