(** Mesh quality metrics, reported by the meshgen tool and used to
    document how close the relaxed grids are to true SCVTs. *)


type t = {
  cells : int;
  pentagons : int;
  mean_spacing_m : float;
  spacing_ratio : float;  (** max dc / min dc — 1.0 is uniform *)
  area_ratio : float;  (** max / min cell area *)
  mean_centroid_offset : float;
      (** mean distance from cell site to its polygon centroid, as a
          fraction of the local spacing; 0 for an exact SCVT *)
  min_edge_orthogonality : float;
      (** min |cos| between the edge normal and the cell-to-cell
          direction; 1.0 means perfectly orthogonal dual *)
}

val measure : Mesh.t -> t
val to_string : t -> string
