open Mpas_numerics
open Mesh

type t = {
  cells : int;
  pentagons : int;
  mean_spacing_m : float;
  spacing_ratio : float;
  area_ratio : float;
  mean_centroid_offset : float;
  min_edge_orthogonality : float;
}

let measure (m : Mesh.t) =
  let pentagons =
    Array.fold_left (fun acc n -> if n = 5 then acc + 1 else acc) 0
      m.n_edges_on_cell
  in
  let dc_lo, dc_hi = Stats.min_max m.dc_edge in
  let a_lo, a_hi = Stats.min_max m.area_cell in
  let radius = match m.geometry with Sphere r -> r | Plane _ -> 1. in
  let cell_offset c =
    let corners = Array.map (fun v -> m.x_vertex.(v)) m.vertices_on_cell.(c) in
    (* Normalize by the local spacing. *)
    let local =
      Mesh.fold_edges_on_cell m c (fun acc e -> acc +. m.dc_edge.(e)) 0.
      /. float_of_int m.n_edges_on_cell.(c)
    in
    match m.geometry with
    | Sphere _ ->
        let centroid = Sphere.polygon_centroid corners in
        Some (radius *. Sphere.arc_length m.x_cell.(c) centroid /. local)
    | Plane _ ->
        (* Planar vertex positions are stored unwrapped: cells on the
           periodic seam see corners a full domain away, so only
           interior cells are meaningful here. *)
        if Array.exists (fun v -> Vec3.dist v m.x_cell.(c) > 2. *. local) corners
        then None
        else begin
          let centroid =
            Vec3.scale (1. /. float_of_int (Array.length corners))
              (Array.fold_left Vec3.add Vec3.zero corners)
          in
          Some (Vec3.dist m.x_cell.(c) centroid /. local)
        end
  in
  let offsets =
    Array.init m.n_cells cell_offset
    |> Array.to_list |> List.filter_map Fun.id |> Array.of_list
  in
  let offsets = if Array.length offsets = 0 then [| 0. |] else offsets in
  let ortho = ref 1. in
  for e = 0 to m.n_edges - 1 do
    let ce = m.cells_on_edge.(e) in
    let d = Vec3.sub m.x_cell.(ce.(1)) m.x_cell.(ce.(0)) in
    match m.geometry with
    | Sphere _ ->
        let d = Sphere.project_tangent m.x_edge.(e) d in
        let c = Float.abs (Vec3.dot (Vec3.normalize d) m.edge_normal.(e)) in
        ortho := Float.min !ortho c
    | Plane _ ->
        (* Skip periodic-seam edges, whose unwrapped endpoints are a
           domain apart. *)
        if Vec3.norm d < 1.5 *. m.dc_edge.(e) then begin
          let c = Float.abs (Vec3.dot (Vec3.normalize d) m.edge_normal.(e)) in
          ortho := Float.min !ortho c
        end
  done;
  {
    cells = m.n_cells;
    pentagons;
    mean_spacing_m = Mesh.mean_spacing m;
    spacing_ratio = dc_hi /. dc_lo;
    area_ratio = a_hi /. a_lo;
    mean_centroid_offset = Stats.mean offsets;
    min_edge_orthogonality = !ortho;
  }

let to_string q =
  Format.sprintf
    "cells %d (%d pentagons), mean spacing %.1f km, dc ratio %.3f, area \
     ratio %.3f, centroid offset %.4f, orthogonality %.6f"
    q.cells q.pentagons (q.mean_spacing_m /. 1000.) q.spacing_ratio
    q.area_ratio q.mean_centroid_offset q.min_edge_orthogonality
