(** Tiny index-search helpers shared by the mesh builders. *)

(** [find_index a n x] is the position of [x] among the first [n]
    elements of [a].
    @raise Not_found when absent. *)
val find_index : int array -> int -> int -> int

(** [local_index a x] is [find_index a (Array.length a) x]. *)
val local_index : int array -> int -> int
