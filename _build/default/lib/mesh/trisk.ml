type input = {
  n_edges : int;
  cells_on_edge : int array array;
  n_edges_on_cell : int array;
  edges_on_cell : int array array;
  vertices_on_cell : int array array;
  cells_on_vertex : int array array;
  kite_areas_on_vertex : float array array;
  area_cell : float array;
  dc_edge : float array;
  dv_edge : float array;
  edge_sign_on_cell : float array array;
}

(* For each of the edge's two cells, walk the cell's edges
   counter-clockwise starting after [e], accumulating the fraction [r]
   of the cell area covered by the kites passed so far.  The edge
   reached at local index [j] contributes
     side * (1/2 - r) * (dv_e' / dc_e) * edge_sign_on_cell(c, j)
   with [side] = +1 for the cell the normal leaves and -1 for the cell
   it enters. *)
let weights t =
  let edges_on_edge = Array.make t.n_edges [||] in
  let weights_on_edge = Array.make t.n_edges [||] in
  for e = 0 to t.n_edges - 1 do
    let eoe = ref [] and ws = ref [] in
    Array.iteri
      (fun i c ->
        let side = if i = 0 then 1. else -1. in
        let m = t.n_edges_on_cell.(c) in
        let j0 = Mesh_index.find_index t.edges_on_cell.(c) m e in
        let r = ref 0. in
        for k = 1 to m - 1 do
          let j = (j0 + k) mod m in
          let e' = t.edges_on_cell.(c).(j) in
          (* The vertex between edges j-1 and j is vertex j-1. *)
          let v = t.vertices_on_cell.(c).((j - 1 + m) mod m) in
          let kv = t.cells_on_vertex.(v) in
          let kk = if kv.(0) = c then 0 else if kv.(1) = c then 1 else 2 in
          r := !r +. (t.kite_areas_on_vertex.(v).(kk) /. t.area_cell.(c));
          let w =
            side *. (0.5 -. !r) *. t.dv_edge.(e') /. t.dc_edge.(e)
            *. t.edge_sign_on_cell.(c).(j)
          in
          eoe := e' :: !eoe;
          ws := w :: !ws
        done)
      t.cells_on_edge.(e);
    edges_on_edge.(e) <- Array.of_list (List.rev !eoe);
    weights_on_edge.(e) <- Array.of_list (List.rev !ws)
  done;
  (edges_on_edge, weights_on_edge)
