open Mpas_numerics

type t = { points : Vec3.t array; triangles : (int * int * int) array }

let points_at_level k = (10 * (1 lsl (2 * k))) + 2

let icosahedron () =
  let phi = (1. +. sqrt 5.) /. 2. in
  let raw =
    [| (-1., phi, 0.); (1., phi, 0.); (-1., -.phi, 0.); (1., -.phi, 0.);
       (0., -1., phi); (0., 1., phi); (0., -1., -.phi); (0., 1., -.phi);
       (phi, 0., -1.); (phi, 0., 1.); (-.phi, 0., -1.); (-.phi, 0., 1.) |]
  in
  let points =
    Array.map (fun (x, y, z) -> Vec3.normalize (Vec3.make x y z)) raw
  in
  let faces =
    [| (0, 11, 5); (0, 5, 1); (0, 1, 7); (0, 7, 10); (0, 10, 11);
       (1, 5, 9); (5, 11, 4); (11, 10, 2); (10, 7, 6); (7, 1, 8);
       (3, 9, 4); (3, 4, 2); (3, 2, 6); (3, 6, 8); (3, 8, 9);
       (4, 9, 5); (2, 4, 11); (6, 2, 10); (8, 6, 7); (9, 8, 1) |]
  in
  (* Enforce counter-clockwise orientation seen from outside. *)
  let orient (a, b, c) =
    if Vec3.triple points.(a) points.(b) points.(c) >= 0. then (a, b, c)
    else (a, c, b)
  in
  { points; triangles = Array.map orient faces }

let bisect t =
  let n = Array.length t.points in
  let new_points = ref [] in
  let next_id = ref n in
  let midpoints = Hashtbl.create (Array.length t.triangles * 2) in
  let midpoint a b =
    let key = (Int.min a b, Int.max a b) in
    match Hashtbl.find_opt midpoints key with
    | Some id -> id
    | None ->
        let id = !next_id in
        incr next_id;
        Hashtbl.add midpoints key id;
        new_points := Vec3.normalize (Vec3.midpoint t.points.(a) t.points.(b))
                      :: !new_points;
        id
  in
  let triangles =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (a, b, c) ->
              let ab = midpoint a b and bc = midpoint b c and ca = midpoint c a in
              [| (a, ab, ca); (ab, b, bc); (ca, bc, c); (ab, bc, ca) |])
            t.triangles))
  in
  let points =
    Array.append t.points (Array.of_list (List.rev !new_points))
  in
  { points; triangles }

let create ~level =
  if level < 0 then invalid_arg "Icosphere.create: negative level";
  let rec go k t = if k = 0 then t else go (k - 1) (bisect t) in
  go level (icosahedron ())

(* Circumcenters of the triangles incident to each point, ordered
   counter-clockwise around that point. *)
let voronoi_corners t =
  let np = Array.length t.points in
  let incident = Array.make np [] in
  Array.iteri
    (fun ti (a, b, c) ->
      incident.(a) <- ti :: incident.(a);
      incident.(b) <- ti :: incident.(b);
      incident.(c) <- ti :: incident.(c))
    t.triangles;
  let centers =
    Array.map
      (fun (a, b, c) ->
        Sphere.circumcenter t.points.(a) t.points.(b) t.points.(c))
      t.triangles
  in
  Array.init np (fun p ->
      let site = t.points.(p) in
      let east, north =
        match Sphere.tangent_basis site with
        | basis -> basis
        | exception Invalid_argument _ ->
            (* Exact pole: any tangent direction works, but keep the
               frame right-handed with respect to the outward normal. *)
            let east = Vec3.ex in
            (east, Vec3.cross site east)
      in
      let angle ti =
        let d = Vec3.sub centers.(ti) site in
        atan2 (Vec3.dot d north) (Vec3.dot d east)
      in
      let tris = Array.of_list incident.(p) in
      Array.sort (fun a b -> compare (angle a) (angle b)) tris;
      Array.map (fun ti -> centers.(ti)) tris)

(* Density-weighted area centroid of a Voronoi cell: triangle-fan
   quadrature with the density evaluated at each triangle's vertex
   mean.  With [density = 1] this reduces to the plain centroid; a
   non-uniform density yields the multiresolution SCVTs of Ringler et
   al. (2011), with local spacing ~ density^(-1/4). *)
let weighted_centroid density site corners =
  let n = Array.length corners in
  if n < 3 then Vec3.normalize (Array.fold_left Vec3.add site corners)
  else begin
    let acc = ref Vec3.zero in
    for i = 0 to n - 1 do
      let a = corners.(i) and b = corners.((i + 1) mod n) in
      let tri_centroid = Vec3.normalize (Vec3.add site (Vec3.add a b)) in
      let w = Sphere.triangle_area site a b *. density tri_centroid in
      acc := Vec3.axpy w tri_centroid !acc
    done;
    Vec3.normalize !acc
  end

let lloyd_step ?(density = fun _ -> 1.) ?(over_relax = 1.) t =
  let corners = voronoi_corners t in
  let points =
    Array.mapi
      (fun p cs ->
        let centroid = weighted_centroid density t.points.(p) cs in
        if over_relax = 1. then centroid
        else
          (* Over-relaxation: step past the centroid along the update
             direction; factors up to ~1.7 stay stable and roughly
             halve the iteration count of plain Lloyd. *)
          Vec3.normalize
            (Vec3.axpy over_relax (Vec3.sub centroid t.points.(p)) t.points.(p)))
      corners
  in
  { t with points }

let relax ?density ?over_relax ~iters t =
  let rec go k t =
    if k = 0 then t else go (k - 1) (lloyd_step ?density ?over_relax t)
  in
  if iters < 0 then invalid_arg "Icosphere.relax: negative iters";
  go iters t

let centroid_offset t =
  let corners = voronoi_corners t in
  let offsets =
    Array.mapi
      (fun p cs -> Sphere.arc_length t.points.(p) (Sphere.polygon_centroid cs))
      corners
  in
  Stats.mean offsets
