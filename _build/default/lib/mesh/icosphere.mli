(** Icosahedral triangulations of the unit sphere.

    These are the primal (Delaunay) meshes underlying the quasi-uniform
    SCVT grids of Table III in the paper: bisection level [k] yields
    [10*4^k + 2] generating points, i.e. that many Voronoi cells in the
    dual mesh (level 6 = 40962 cells = the 120-km mesh, level 9 =
    2621442 cells = the 15-km mesh). *)

open Mpas_numerics

type t = {
  points : Vec3.t array;  (** unit vectors; dual-mesh cell sites *)
  triangles : (int * int * int) array;
      (** corner indices, counter-clockwise seen from outside *)
}

(** Number of points at bisection level [k]: [10*4^k + 2]. *)
val points_at_level : int -> int

(** [create ~level] builds the level-[level] bisection of the
    icosahedron.  [level] must be non-negative; level 0 is the
    icosahedron itself (12 points, 20 triangles). *)
val create : level:int -> t

(** One Lloyd step toward a spherical centroidal Voronoi tessellation:
    every point moves to the (density-weighted) area centroid of its
    Voronoi cell.  A non-uniform [density] produces the multiresolution
    SCVTs of the MPAS project (Ringler et al. 2011), with local spacing
    proportional to [density^(-1/4)].  Topology is kept fixed, which is
    valid for quasi-uniform grids and gentle density contrasts (spacing
    ratios up to ~2). *)
val lloyd_step : ?density:(Vec3.t -> float) -> ?over_relax:float -> t -> t

(** [relax ~iters t] applies [lloyd_step] [iters] times.  [over_relax]
    (default 1, stable up to ~1.7) steps past the centroid to speed up
    the linear convergence of plain Lloyd iteration. *)
val relax :
  ?density:(Vec3.t -> float) -> ?over_relax:float -> iters:int -> t -> t

(** Mean distance from each point to its Voronoi-cell centroid, a
    measure of how close the grid is to a true SCVT (0 for exact). *)
val centroid_offset : t -> float
