let find_index a n x =
  let rec loop j =
    if j >= n then raise Not_found else if a.(j) = x then j else loop (j + 1)
  in
  loop 0

let local_index a x = find_index a (Array.length a) x
