open Mpas_numerics
open Mpas_mesh

type t = { n_parts : int; owner : int array }

(* Interleave the bits of three quantized coordinates (Morton code).
   21 bits per axis fit a 63-bit integer. *)
let morton (p : Vec3.t) =
  let quant x =
    let v = int_of_float ((x +. 1.) /. 2. *. 2097151.) in
    Int.max 0 (Int.min 2097151 v)
  in
  let ix = quant p.Vec3.x and iy = quant p.Vec3.y and iz = quant p.Vec3.z in
  let code = ref 0 in
  for b = 20 downto 0 do
    code := (!code lsl 3)
            lor (((ix lsr b) land 1) lsl 2)
            lor (((iy lsr b) land 1) lsl 1)
            lor ((iz lsr b) land 1)
  done;
  !code

let unit_positions (m : Mesh.t) =
  match m.geometry with
  | Mesh.Sphere _ -> m.x_cell
  | Mesh.Plane { lx; ly } ->
      (* Rescale the box into [-1, 1]^2 so the quantizer applies. *)
      Array.map
        (fun (p : Vec3.t) ->
          Vec3.make ((2. *. p.Vec3.x /. lx) -. 1.) ((2. *. p.Vec3.y /. ly) -. 1.) 0.)
        m.x_cell

let cut_into_runs order n_cells n_parts =
  let owner = Array.make n_cells 0 in
  Array.iteri
    (fun pos c -> owner.(c) <- pos * n_parts / n_cells)
    order;
  owner

let sfc (m : Mesh.t) ~n_parts =
  if n_parts < 1 || n_parts > m.n_cells then
    invalid_arg "Partition.sfc: bad n_parts";
  let pos = unit_positions m in
  let order = Array.init m.n_cells Fun.id in
  let key = Array.map morton pos in
  Array.sort (fun a b -> compare key.(a) key.(b)) order;
  { n_parts; owner = cut_into_runs order m.n_cells n_parts }

let rcb (m : Mesh.t) ~n_parts =
  if n_parts < 1 || n_parts > m.n_cells then
    invalid_arg "Partition.rcb: bad n_parts";
  let pos = unit_positions m in
  let owner = Array.make m.n_cells 0 in
  (* Split [cells] into [parts] ranks starting at [base]. *)
  let rec split cells parts base =
    if parts = 1 then Array.iter (fun c -> owner.(c) <- base) cells
    else begin
      let axis =
        let extent f =
          let lo, hi =
            Array.fold_left
              (fun (lo, hi) c -> (Float.min lo (f pos.(c)), Float.max hi (f pos.(c))))
              (Float.infinity, Float.neg_infinity)
              cells
          in
          hi -. lo
        in
        let ex = extent (fun (p : Vec3.t) -> p.Vec3.x)
        and ey = extent (fun (p : Vec3.t) -> p.Vec3.y)
        and ez = extent (fun (p : Vec3.t) -> p.Vec3.z) in
        if ex >= ey && ex >= ez then fun (p : Vec3.t) -> p.Vec3.x
        else if ey >= ez then fun (p : Vec3.t) -> p.Vec3.y
        else fun (p : Vec3.t) -> p.Vec3.z
      in
      let sorted = Array.copy cells in
      Array.sort (fun a b -> compare (axis pos.(a)) (axis pos.(b))) sorted;
      (* Proportional split keeps sizes balanced for non-power-of-two
         part counts. *)
      let left_parts = parts / 2 in
      let cut = Array.length sorted * left_parts / parts in
      split (Array.sub sorted 0 cut) left_parts base;
      split
        (Array.sub sorted cut (Array.length sorted - cut))
        (parts - left_parts) (base + left_parts)
    end
  in
  split (Array.init m.n_cells Fun.id) n_parts 0;
  { n_parts; owner }

let bfs (m : Mesh.t) ~n_parts =
  if n_parts < 1 || n_parts > m.n_cells then
    invalid_arg "Partition.bfs: bad n_parts";
  let owner = Array.make m.n_cells (-1) in
  (* Seeds from an SFC pass, so they start well separated. *)
  let seeds =
    let by_curve = sfc m ~n_parts in
    let seed = Array.make n_parts (-1) in
    Array.iteri
      (fun c r -> if seed.(r) < 0 then seed.(r) <- c)
      by_curve.owner;
    seed
  in
  let quota r = ((r + 1) * m.n_cells / n_parts) - (r * m.n_cells / n_parts) in
  let queues = Array.map (fun s -> Queue.of_seq (Seq.return s)) seeds in
  let counts = Array.make n_parts 0 in
  let claim r c =
    if owner.(c) < 0 && counts.(r) < quota r then begin
      owner.(c) <- r;
      counts.(r) <- counts.(r) + 1;
      true
    end
    else false
  in
  Array.iteri (fun r s -> ignore (claim r s)) seeds;
  let remaining = ref (m.n_cells - Array.fold_left ( + ) 0 counts) in
  (* Round-robin BFS keeps the parts growing at the same rate. *)
  while !remaining > 0 do
    let progressed = ref false in
    for r = 0 to n_parts - 1 do
      let rec grab () =
        if counts.(r) < quota r && not (Queue.is_empty queues.(r)) then begin
          let c = Queue.pop queues.(r) in
          let grew = ref false in
          for j = 0 to m.n_edges_on_cell.(c) - 1 do
            let c' = m.cells_on_cell.(c).(j) in
            if claim r c' then begin
              decr remaining;
              progressed := true;
              grew := true;
              Queue.push c' queues.(r)
            end
          done;
          if not !grew then grab ()
        end
      in
      grab ()
    done;
    if not !progressed then begin
      (* Disconnected leftovers (quota walls): assign to the smallest
         part that still has room. *)
      for c = 0 to m.n_cells - 1 do
        if owner.(c) < 0 then begin
          let best = ref 0 in
          for r = 1 to n_parts - 1 do
            if counts.(r) - quota r < counts.(!best) - quota !best then
              best := r
          done;
          owner.(c) <- !best;
          counts.(!best) <- counts.(!best) + 1;
          decr remaining
        end
      done
    end
  done;
  { n_parts; owner }

let sizes t =
  let s = Array.make t.n_parts 0 in
  Array.iter (fun r -> s.(r) <- s.(r) + 1) t.owner;
  s

let imbalance t =
  let s = Array.map float_of_int (sizes t) in
  let _, hi = Stats.min_max s in
  hi /. Stats.mean s

let edge_cut (m : Mesh.t) t =
  let cut = ref 0 in
  for e = 0 to m.n_edges - 1 do
    let ce = m.cells_on_edge.(e) in
    if t.owner.(ce.(0)) <> t.owner.(ce.(1)) then incr cut
  done;
  !cut

let check (m : Mesh.t) t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  if Array.length t.owner <> m.n_cells then err "owner array size mismatch";
  Array.iteri
    (fun c r -> if r < 0 || r >= t.n_parts then err "cell %d has bad rank %d" c r)
    t.owner;
  Array.iteri
    (fun r n -> if n = 0 then err "rank %d owns no cells" r)
    (sizes t);
  List.rev !errors
