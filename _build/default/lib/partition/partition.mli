(** Mesh partitioning for the multi-process scaling experiments: assign
    every cell to one of [n_parts] ranks, favouring compact patches so
    halo traffic stays at the surface-to-volume minimum.

    Two geometric partitioners are provided (MPAS itself delegates to
    Metis; geometric methods give comparably compact parts on
    quasi-uniform spherical meshes):
    - space-filling-curve: sort cells along a Morton curve of their
      coordinates and cut into equal runs;
    - recursive coordinate bisection: recursively split the cell set
      through the median of its widest coordinate axis. *)

open Mpas_mesh

type t = {
  n_parts : int;
  owner : int array;  (** cell -> rank *)
}

val sfc : Mesh.t -> n_parts:int -> t
val rcb : Mesh.t -> n_parts:int -> t

(** Graph-growing: seeds spread over the sphere grab cells
    breadth-first until their quota fills; purely topological (no
    coordinates), like the simplest Metis-style heuristics. *)
val bfs : Mesh.t -> n_parts:int -> t

(** Number of cells owned by each rank. *)
val sizes : t -> int array

(** [imbalance p] = max part size / mean part size (1.0 is perfect). *)
val imbalance : t -> float

(** Edges whose two cells live on different ranks. *)
val edge_cut : Mesh.t -> t -> int

(** Validation: every cell owned, ranks in range, no empty part.
    Returns violations. *)
val check : Mesh.t -> t -> string list
