lib/partition/halo.mli: Mesh Mpas_mesh Partition
