lib/partition/halo.ml: Array Format List Mesh Mpas_mesh Partition
