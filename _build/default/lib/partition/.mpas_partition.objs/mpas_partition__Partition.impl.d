lib/partition/partition.ml: Array Float Format Fun Int List Mesh Mpas_mesh Mpas_numerics Queue Seq Stats Vec3
