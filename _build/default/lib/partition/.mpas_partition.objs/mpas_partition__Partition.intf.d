lib/partition/partition.mli: Mesh Mpas_mesh
