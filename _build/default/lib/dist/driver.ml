open Mpas_mesh
open Mpas_swe

type t = {
  mesh : Mesh.t;
  config : Config.t;
  b : float array;
  exchange : Exchange.t;
  recon : Reconstruct.t;
  dt : float;
  states : Fields.state array;
  provis : Fields.state array;
  tends : Fields.tendencies array;
  accums : Fields.state array;
  diags : Fields.diagnostics array;
  recons : Fields.reconstruction array;
  mutable steps_taken : int;
}

let each t f =
  for r = 0 to t.exchange.Exchange.n_ranks - 1 do
    f r t.exchange.Exchange.sets.(r)
  done

(* Exchange one field living at [loc], selected from each rank by
   [select]. *)
let xch t loc select =
  Exchange.exchange t.exchange loc
    (Array.init t.exchange.Exchange.n_ranks select)

(* The diagnostics sequence on a state selected by [h_of]/[u_of], with
   a halo exchange after each kernel whose output is read non-locally
   (paper Figures 2/4: "Exchange halo"). *)
let solve_diagnostics t ~h_of ~u_of ~tracer_of =
  let m = t.mesh and cfg = t.config in
  (match cfg.Config.h_adv_order with
  | Config.Second -> ()
  | Config.Fourth ->
      each t (fun r s ->
          Operators.d2fdx2 ~on:s.Exchange.own_cells m ~h:(h_of r)
            ~out:t.diags.(r).Fields.d2fdx2_cell);
      xch t Exchange.Cells (fun r -> t.diags.(r).Fields.d2fdx2_cell));
  each t (fun r s ->
      Operators.h_edge ~on:s.Exchange.own_edges m ~order:cfg.Config.h_adv_order
        ~h:(h_of r) ~d2fdx2_cell:t.diags.(r).Fields.d2fdx2_cell
        ~out:t.diags.(r).Fields.h_edge);
  xch t Exchange.Edges (fun r -> t.diags.(r).Fields.h_edge);
  each t (fun r s ->
      let diag = t.diags.(r) in
      Operators.kinetic_energy ~on:s.Exchange.own_cells m ~u:(u_of r)
        ~out:diag.Fields.ke;
      Operators.divergence ~on:s.Exchange.own_cells m ~u:(u_of r)
        ~out:diag.Fields.divergence;
      Operators.vorticity ~on:s.Exchange.own_vertices m ~u:(u_of r)
        ~out:diag.Fields.vorticity;
      Operators.h_vertex ~on:s.Exchange.own_vertices m ~h:(h_of r)
        ~out:diag.Fields.h_vertex;
      Operators.pv_vertex ~on:s.Exchange.own_vertices m
        ~vorticity:diag.Fields.vorticity ~h_vertex:diag.Fields.h_vertex
        ~out:diag.Fields.pv_vertex);
  xch t Exchange.Cells (fun r -> t.diags.(r).Fields.ke);
  xch t Exchange.Cells (fun r -> t.diags.(r).Fields.divergence);
  xch t Exchange.Vertices (fun r -> t.diags.(r).Fields.vorticity);
  xch t Exchange.Vertices (fun r -> t.diags.(r).Fields.pv_vertex);
  each t (fun r s ->
      Operators.pv_cell ~on:s.Exchange.own_cells m
        ~pv_vertex:t.diags.(r).Fields.pv_vertex ~out:t.diags.(r).Fields.pv_cell);
  xch t Exchange.Cells (fun r -> t.diags.(r).Fields.pv_cell);
  each t (fun r s ->
      let diag = t.diags.(r) in
      Operators.tangential_velocity ~on:s.Exchange.own_edges m ~u:(u_of r)
        ~out:diag.Fields.v_tangential;
      Operators.grad_pv ~on:s.Exchange.own_edges m ~pv_cell:diag.Fields.pv_cell
        ~pv_vertex:diag.Fields.pv_vertex ~out_n:diag.Fields.grad_pv_n
        ~out_t:diag.Fields.grad_pv_t;
      Operators.pv_edge ~on:s.Exchange.own_edges m
        ~apvm_factor:cfg.Config.apvm_factor ~dt:t.dt
        ~pv_vertex:diag.Fields.pv_vertex ~grad_pv_n:diag.Fields.grad_pv_n
        ~grad_pv_t:diag.Fields.grad_pv_t ~u:(u_of r)
        ~v_tangential:diag.Fields.v_tangential ~out:diag.Fields.pv_edge);
  xch t Exchange.Edges (fun r -> t.diags.(r).Fields.pv_edge);
  let n_tracers = Array.length t.diags.(0).Fields.tracer_edge in
  for k = 0 to n_tracers - 1 do
    each t (fun r s ->
        Operators.tracer_edge ~on:s.Exchange.own_edges m
          ~scheme:cfg.Config.tracer_adv
          ~tracer:(tracer_of r k) ~u:(u_of r)
          ~out:t.diags.(r).Fields.tracer_edge.(k));
    xch t Exchange.Edges (fun r -> t.diags.(r).Fields.tracer_edge.(k))
  done

let compute_tend t ~h_of ~u_of =
  let m = t.mesh and cfg = t.config in
  each t (fun r s ->
      let diag = t.diags.(r) and tend = t.tends.(r) in
      Operators.tend_h ~on:s.Exchange.own_cells m ~h_edge:diag.Fields.h_edge
        ~u:(u_of r) ~out:tend.Fields.tend_h;
      Operators.tend_u ~on:s.Exchange.own_edges
        ~pv_average:cfg.Config.pv_average m ~gravity:cfg.Config.gravity
        ~h:(h_of r) ~b:t.b ~ke:diag.Fields.ke ~h_edge:diag.Fields.h_edge
        ~u:(u_of r) ~pv_edge:diag.Fields.pv_edge ~out:tend.Fields.tend_u;
      Operators.dissipation ~on:s.Exchange.own_edges m ~visc2:cfg.Config.visc2
        ~divergence:diag.Fields.divergence ~vorticity:diag.Fields.vorticity
        ~tend_u:tend.Fields.tend_u;
      Operators.local_forcing ~on:s.Exchange.own_edges m
        ~drag:cfg.Config.bottom_drag ~u:(u_of r) ~tend_u:tend.Fields.tend_u;
      Operators.enforce_boundary_edge ~on:s.Exchange.own_edges m
        ~tend_u:tend.Fields.tend_u);
  if cfg.Config.visc4 <> 0. then begin
    each t (fun r s ->
        Operators.velocity_laplacian ~on:s.Exchange.own_edges m
          ~divergence:t.diags.(r).Fields.divergence
          ~vorticity:t.diags.(r).Fields.vorticity
          ~out:t.diags.(r).Fields.lap_u);
    xch t Exchange.Edges (fun r -> t.diags.(r).Fields.lap_u);
    each t (fun r s ->
        Operators.divergence ~on:s.Exchange.own_cells m
          ~u:t.diags.(r).Fields.lap_u ~out:t.diags.(r).Fields.div_lap;
        Operators.vorticity ~on:s.Exchange.own_vertices m
          ~u:t.diags.(r).Fields.lap_u ~out:t.diags.(r).Fields.vort_lap);
    xch t Exchange.Cells (fun r -> t.diags.(r).Fields.div_lap);
    xch t Exchange.Vertices (fun r -> t.diags.(r).Fields.vort_lap);
    each t (fun r s ->
        Operators.del4_dissipation ~on:s.Exchange.own_edges m
          ~visc4:cfg.Config.visc4 ~div_lap:t.diags.(r).Fields.div_lap
          ~vort_lap:t.diags.(r).Fields.vort_lap
          ~tend_u:t.tends.(r).Fields.tend_u);
    (* The boundary mask applies after every contribution. *)
    each t (fun r s ->
        Operators.enforce_boundary_edge ~on:s.Exchange.own_edges m
          ~tend_u:t.tends.(r).Fields.tend_u)
  end;
  let n_tracers = Array.length t.diags.(0).Fields.tracer_edge in
  for k = 0 to n_tracers - 1 do
    each t (fun r s ->
        Operators.tend_tracer ~on:s.Exchange.own_cells m
          ~h_edge:t.diags.(r).Fields.h_edge ~u:(u_of r)
          ~tracer_edge:t.diags.(r).Fields.tracer_edge.(k)
          ~out:t.tends.(r).Fields.tend_tracers.(k))
  done

let m_steps = Mpas_obs.Metrics.counter "dist.steps"

let step_body t =
  let m = t.mesh in
  let dt = t.dt in
  let substep_coef = [| dt /. 2.; dt /. 2.; dt |] in
  let accum_coef = [| dt /. 6.; dt /. 3.; dt /. 3.; dt /. 6. |] in
  each t (fun r s ->
      Fields.blit_state ~src:t.states.(r) ~dst:t.accums.(r);
      Fields.blit_state ~src:t.states.(r) ~dst:t.provis.(r);
      Operators.seed_tracer_accumulator ~on:s.Exchange.own_cells m
        ~state:t.states.(r) ~accum:t.accums.(r));
  for rk = 0 to 3 do
    compute_tend t
      ~h_of:(fun r -> t.provis.(r).Fields.h)
      ~u_of:(fun r -> t.provis.(r).Fields.u);
    if rk < 3 then begin
      each t (fun r s ->
          Operators.next_substep_state ~on_cells:s.Exchange.own_cells
            ~on_edges:s.Exchange.own_edges m ~coef:substep_coef.(rk)
            ~base:t.states.(r) ~tend:t.tends.(r) ~provis:t.provis.(r);
          Operators.next_substep_tracers ~on:s.Exchange.own_cells m
            ~coef:substep_coef.(rk) ~base:t.states.(r) ~tend:t.tends.(r)
            ~provis:t.provis.(r));
      xch t Exchange.Cells (fun r -> t.provis.(r).Fields.h);
      xch t Exchange.Edges (fun r -> t.provis.(r).Fields.u);
      for k = 0 to Array.length t.provis.(0).Fields.tracers - 1 do
        xch t Exchange.Cells (fun r -> t.provis.(r).Fields.tracers.(k))
      done;
      solve_diagnostics t
        ~h_of:(fun r -> t.provis.(r).Fields.h)
        ~u_of:(fun r -> t.provis.(r).Fields.u)
        ~tracer_of:(fun r k -> t.provis.(r).Fields.tracers.(k));
      each t (fun r s ->
          Operators.accumulate ~on_cells:s.Exchange.own_cells
            ~on_edges:s.Exchange.own_edges m ~coef:accum_coef.(rk)
            ~tend:t.tends.(r) ~accum:t.accums.(r);
          Operators.accumulate_tracers ~on:s.Exchange.own_cells m
            ~coef:accum_coef.(rk) ~tend:t.tends.(r) ~accum:t.accums.(r))
    end
    else begin
      each t (fun r s ->
          Operators.accumulate ~on_cells:s.Exchange.own_cells
            ~on_edges:s.Exchange.own_edges m ~coef:accum_coef.(rk)
            ~tend:t.tends.(r) ~accum:t.accums.(r);
          Operators.accumulate_tracers ~on:s.Exchange.own_cells m
            ~coef:accum_coef.(rk) ~tend:t.tends.(r) ~accum:t.accums.(r);
          Fields.blit_state ~src:t.accums.(r) ~dst:t.states.(r);
          Operators.finalize_tracers ~on:s.Exchange.own_cells m
            ~state:t.states.(r));
      xch t Exchange.Cells (fun r -> t.states.(r).Fields.h);
      xch t Exchange.Edges (fun r -> t.states.(r).Fields.u);
      for k = 0 to Array.length t.states.(0).Fields.tracers - 1 do
        xch t Exchange.Cells (fun r -> t.states.(r).Fields.tracers.(k))
      done;
      solve_diagnostics t
        ~h_of:(fun r -> t.states.(r).Fields.h)
        ~u_of:(fun r -> t.states.(r).Fields.u)
        ~tracer_of:(fun r k -> t.states.(r).Fields.tracers.(k));
      each t (fun r s ->
          Reconstruct.run ~on:s.Exchange.own_cells t.recon m
            ~u:t.states.(r).Fields.u ~out:t.recons.(r))
    end
  done;
  t.steps_taken <- t.steps_taken + 1

let step t =
  Mpas_obs.Metrics.Counter.incr m_steps;
  Mpas_obs.Trace.with_span ~cat:"dist"
    ~args:[ ("ranks", string_of_int t.exchange.Exchange.n_ranks) ]
    "dist.step" (fun () -> step_body t)

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

let of_state ?(config = Config.default) ~n_ranks ~dt ~b m state =
  let part = Mpas_partition.Partition.sfc m ~n_parts:n_ranks in
  let exchange = Exchange.build m part in
  let n_tracers = Fields.n_tracers state in
  let alloc f = Array.init n_ranks (fun _ -> f ?n_tracers:(Some n_tracers) m) in
  let t =
    {
      mesh = m;
      config;
      b = Array.copy b;
      exchange;
      recon = Reconstruct.init m;
      dt;
      states = Array.init n_ranks (fun _ -> Fields.copy_state state);
      provis = alloc Fields.alloc_state;
      tends = alloc Fields.alloc_tendencies;
      accums = alloc Fields.alloc_state;
      diags = alloc Fields.alloc_diagnostics;
      recons = Array.init n_ranks (fun _ -> Fields.alloc_reconstruction m);
      steps_taken = 0;
    }
  in
  solve_diagnostics t
    ~h_of:(fun r -> t.states.(r).Fields.h)
    ~u_of:(fun r -> t.states.(r).Fields.u)
    ~tracer_of:(fun r k -> t.states.(r).Fields.tracers.(k));
  t

let init ?config ?dt ?(tracers = [||]) ~n_ranks case m =
  let m = Williamson.prepare_mesh case m in
  let state, b = Williamson.init case m in
  let state = { state with Fields.tracers } in
  let dt =
    match dt with Some d -> d | None -> Williamson.recommended_dt case m
  in
  of_state ?config ~n_ranks ~dt ~b m state

let gather_state t =
  let global = Fields.alloc_state t.mesh in
  each t (fun r s ->
      Array.iter (fun c -> global.Fields.h.(c) <- t.states.(r).Fields.h.(c))
        s.Exchange.own_cells;
      Array.iter (fun e -> global.Fields.u.(e) <- t.states.(r).Fields.u.(e))
        s.Exchange.own_edges);
  global

let poison_invisible t =
  let m = t.mesh in
  each t (fun r s ->
      let cell_ok = Array.make m.n_cells false in
      let edge_ok = Array.make m.n_edges false in
      Array.iter (fun c -> cell_ok.(c) <- true) s.Exchange.own_cells;
      Array.iter (fun c -> cell_ok.(c) <- true) s.Exchange.ghost_cells;
      Array.iter (fun e -> edge_ok.(e) <- true) s.Exchange.own_edges;
      Array.iter (fun e -> edge_ok.(e) <- true) s.Exchange.ghost_edges;
      for c = 0 to m.n_cells - 1 do
        if not cell_ok.(c) then t.states.(r).Fields.h.(c) <- Float.nan
      done;
      for e = 0 to m.n_edges - 1 do
        if not edge_ok.(e) then t.states.(r).Fields.u.(e) <- Float.nan
      done)

let owned_values_finite t =
  let ok = ref true in
  each t (fun r s ->
      Array.iter
        (fun c -> if Float.is_nan t.states.(r).Fields.h.(c) then ok := false)
        s.Exchange.own_cells;
      Array.iter
        (fun e -> if Float.is_nan t.states.(r).Fields.u.(e) then ok := false)
        s.Exchange.own_edges);
  !ok
