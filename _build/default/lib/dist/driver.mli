(** Distributed (simulated-MPI) execution of the shallow-water model.

    Each rank owns a patch of the partition and holds its own copy of
    every field array, valid only on its owned + ghost entities; ranks
    compute kernels on exactly their owned entities and halo exchanges
    copy boundary data between the per-rank arrays after each producing
    kernel.  Because the refactored gather loops compute each output
    item independently, the distributed run is {e bitwise} identical to
    the serial run on every owned entity — the reproduction of the
    paper's multi-process correctness, with the exchange structure of
    its Figures 2/4.

    No real MPI is involved (DESIGN.md §3): ranks execute round-robin
    in one process, which preserves all data dependencies of a true MPI
    execution, and the [Exchange] layer records the traffic a real run
    would ship. *)

open Mpas_mesh
open Mpas_swe

type t = {
  mesh : Mesh.t;
  config : Config.t;
  b : float array;
  exchange : Exchange.t;
  recon : Reconstruct.t;
  dt : float;
  states : Fields.state array;  (** per rank *)
  provis : Fields.state array;
  tends : Fields.tendencies array;
  accums : Fields.state array;
  diags : Fields.diagnostics array;
  recons : Fields.reconstruction array;
  mutable steps_taken : int;
}

(** Initialize from a Williamson case over an SFC partition into
    [n_ranks] ranks; [tracers] rows are advected alongside. *)
val init :
  ?config:Config.t -> ?dt:float -> ?tracers:float array array ->
  n_ranks:int -> Williamson.case -> Mesh.t -> t

(** Initialize from explicit fields (copied to every rank). *)
val of_state :
  ?config:Config.t ->
  n_ranks:int ->
  dt:float ->
  b:float array ->
  Mesh.t ->
  Fields.state ->
  t

(** Advance one RK-4 step on all ranks. *)
val step : t -> unit

val run : t -> steps:int -> unit

(** Assemble the global state from the owned entries of every rank. *)
val gather_state : t -> Fields.state

(** Debug helper: overwrite every array entry a rank neither owns nor
    ghosts with NaN.  If the kernels respect the ownership discipline,
    subsequent steps still produce NaN-free owned values (tested). *)
val poison_invisible : t -> unit

(** True when no owned entry of any rank is NaN. *)
val owned_values_finite : t -> bool
