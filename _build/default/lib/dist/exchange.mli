(** Rank-local compute sets and halo exchange for the simulated-MPI
    execution of the model.

    Ownership: a cell belongs to its partition rank; an edge or vertex
    belongs to the rank of its first adjacent cell.  Each rank computes
    every kernel on exactly its owned entities, so the union over ranks
    reproduces the global loops with identical per-item arithmetic —
    distributed results are bitwise equal to serial ones.

    Ghost sets are derived from the actual stencil accesses of the
    kernels (edges_on_cell, cells_on_edge, edges_on_edge, ...): a rank's
    ghost set at a location is every entity of that location reachable
    from its owned items in one kernel application.  Exchanging a field
    after the kernel that produces it therefore keeps all reads valid —
    the fine-grained variant of the paper's "Exchange halo" boxes. *)

open Mpas_mesh

type location = Cells | Edges | Vertices

val location_name : location -> string

type rank_sets = {
  rank : int;
  own_cells : int array;
  own_edges : int array;
  own_vertices : int array;
  ghost_cells : int array;  (** cells read but owned elsewhere *)
  ghost_edges : int array;
  ghost_vertices : int array;
}

type t = {
  mesh : Mesh.t;
  n_ranks : int;
  cell_owner : int array;
  edge_owner : int array;
  vertex_owner : int array;
  sets : rank_sets array;
  mutable exchanges : int;  (** exchange calls so far *)
  mutable values_moved : int;  (** ghost entries copied so far *)
}

(** Build the ownership and ghost structure from a partition. *)
val build : Mesh.t -> Mpas_partition.Partition.t -> t

(** [exchange t loc fields] copies, for every rank and every ghost
    entity at [loc], the owner's value into that rank's copy of each
    field.  [fields.(rank)] is rank [rank]'s array. *)
val exchange : t -> location -> float array array -> unit

(** Reset the traffic counters. *)
val reset_stats : t -> unit

(** Bytes moved so far, at 8 bytes per copied value. *)
val bytes_moved : t -> float

(** Validation: ownership covers every entity exactly once across
    ranks, ghosts are disjoint from owned, and every stencil access of
    an owned item lands in owned + ghost.  Returns violations. *)
val check : t -> string list
