lib/dist/driver.ml: Array Config Exchange Fields Float Mesh Mpas_mesh Mpas_obs Mpas_partition Mpas_swe Operators Reconstruct Williamson
