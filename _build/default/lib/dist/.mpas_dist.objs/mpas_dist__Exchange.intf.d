lib/dist/exchange.mli: Mesh Mpas_mesh Mpas_partition
