lib/dist/driver.mli: Config Exchange Fields Mesh Mpas_mesh Mpas_swe Reconstruct Williamson
