lib/dist/exchange.ml: Array Format List Mesh Mpas_mesh Mpas_obs Mpas_partition
