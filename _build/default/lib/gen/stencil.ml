open Mpas_mesh

type space = Cells | Edges | Vertices

let space_name = function
  | Cells -> "cells"
  | Edges -> "edges"
  | Vertices -> "vertices"

type relation =
  | Edges_of_cell
  | Cells_of_cell
  | Vertices_of_cell
  | Edges_of_vertex
  | Cells_of_vertex
  | Edges_of_edge

let relation_spaces = function
  | Edges_of_cell -> (Cells, Edges)
  | Cells_of_cell -> (Cells, Cells)
  | Vertices_of_cell -> (Cells, Vertices)
  | Edges_of_vertex -> (Vertices, Edges)
  | Cells_of_vertex -> (Vertices, Cells)
  | Edges_of_edge -> (Edges, Edges)

let relation_has_coef = function
  | Edges_of_cell | Vertices_of_cell | Edges_of_vertex | Cells_of_vertex
  | Edges_of_edge ->
      true
  | Cells_of_cell -> false

type geom = Dc | Dv | Area_cell | Area_triangle | Coriolis

type expr =
  | Const of float
  | Field of string
  | Geom of geom
  | Coef
  | Outer of expr
  | Cell1 of expr
  | Cell2 of expr
  | Vertex1 of expr
  | Vertex2 of expr
  | Other_cell of expr
  | Sum of relation * expr
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type kernel = {
  kernel_name : string;
  out_space : space;
  reads : (string * space) list;
  body : expr;
}

(* --- static checking ---------------------------------------------------- *)

type check_state = {
  at : space;
  has_coef : bool;
  (* Space the innermost Edges_of_cell sum is rooted at, if any. *)
  cell_rooted_edge_sum : bool;
}

let check kernel =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let read_space name =
    List.assoc_opt name kernel.reads
  in
  let rec go st = function
    | Const _ -> ()
    | Field name -> (
        match read_space name with
        | None -> err "field %s not declared in reads" name
        | Some s ->
            if s <> st.at then
              err "field %s lives at %s but is read at %s" name (space_name s)
                (space_name st.at))
    | Geom Dc | Geom Dv ->
        if st.at <> Edges then err "dc/dv only exist at edges"
    | Geom Area_cell -> if st.at <> Cells then err "area_cell needs a cell"
    | Geom Area_triangle ->
        if st.at <> Vertices then err "area_triangle needs a vertex"
    | Geom Coriolis -> ()
    | Coef -> if not st.has_coef then err "Coef outside a coefficient sum"
    | Outer e -> go { st with at = kernel.out_space } e
    | Cell1 e | Cell2 e ->
        if st.at <> Edges then err "Cell1/Cell2 need an edge cursor";
        go { st with at = Cells } e
    | Vertex1 e | Vertex2 e ->
        if st.at <> Edges then err "Vertex1/Vertex2 need an edge cursor";
        go { st with at = Vertices } e
    | Other_cell e ->
        if not (st.at = Edges && st.cell_rooted_edge_sum) then
          err "Other_cell needs an edge reached from a cell's edge sum";
        go { st with at = Cells } e
    | Sum (rel, e) ->
        let src, dst = relation_spaces rel in
        if st.at <> src then
          err "relation rooted at %s used at %s" (space_name src)
            (space_name st.at);
        go
          {
            at = dst;
            has_coef = relation_has_coef rel;
            cell_rooted_edge_sum = rel = Edges_of_cell;
          }
          e
    | Neg e -> go st e
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        go st a;
        go st b
  in
  go { at = kernel.out_space; has_coef = false; cell_rooted_edge_sum = false }
    kernel.body;
  List.rev !errors

(* --- evaluation ---------------------------------------------------------- *)

type env = { mesh : Mesh.t; fields : (string * float array) list }

type ctx = {
  outer : int;
  at : space;
  idx : int;
  coef : float;
  has_coef : bool;
  (* Root cell of the innermost Edges_of_cell sum, for Other_cell. *)
  root_cell : int;
}

let kite_coef (m : Mesh.t) ~v ~c =
  let kv = m.cells_on_vertex.(v) in
  let k = if kv.(0) = c then 0 else if kv.(1) = c then 1 else 2 in
  m.kite_areas_on_vertex.(v).(k)

let eval env kernel =
  let m = env.mesh in
  let field name =
    match List.assoc_opt name env.fields with
    | Some a -> a
    | None -> invalid_arg ("Stencil: unknown field " ^ name)
  in
  let rec go ctx = function
    | Const x -> x
    | Field name -> (field name).(ctx.idx)
    | Geom Dc -> m.dc_edge.(ctx.idx)
    | Geom Dv -> m.dv_edge.(ctx.idx)
    | Geom Area_cell -> m.area_cell.(ctx.idx)
    | Geom Area_triangle -> m.area_triangle.(ctx.idx)
    | Geom Coriolis -> (
        match ctx.at with
        | Cells -> m.f_cell.(ctx.idx)
        | Edges -> m.f_edge.(ctx.idx)
        | Vertices -> m.f_vertex.(ctx.idx))
    | Coef ->
        if not ctx.has_coef then invalid_arg "Stencil: Coef outside a sum";
        ctx.coef
    | Outer e -> go { ctx with at = kernel.out_space; idx = ctx.outer } e
    | Cell1 e -> go { ctx with at = Cells; idx = m.cells_on_edge.(ctx.idx).(0) } e
    | Cell2 e -> go { ctx with at = Cells; idx = m.cells_on_edge.(ctx.idx).(1) } e
    | Vertex1 e ->
        go { ctx with at = Vertices; idx = m.vertices_on_edge.(ctx.idx).(0) } e
    | Vertex2 e ->
        go { ctx with at = Vertices; idx = m.vertices_on_edge.(ctx.idx).(1) } e
    | Other_cell e ->
        let ce = m.cells_on_edge.(ctx.idx) in
        let other = if ce.(0) = ctx.root_cell then ce.(1) else ce.(0) in
        go { ctx with at = Cells; idx = other } e
    | Sum (rel, e) -> begin
        let acc = ref 0. in
        (match rel with
        | Edges_of_cell ->
            let c = ctx.idx in
            for j = 0 to m.n_edges_on_cell.(c) - 1 do
              acc :=
                !acc
                +. go
                     { ctx with at = Edges; idx = m.edges_on_cell.(c).(j);
                       coef = m.edge_sign_on_cell.(c).(j); has_coef = true;
                       root_cell = c }
                     e
            done
        | Cells_of_cell ->
            let c = ctx.idx in
            for j = 0 to m.n_edges_on_cell.(c) - 1 do
              acc :=
                !acc
                +. go
                     { ctx with at = Cells; idx = m.cells_on_cell.(c).(j);
                       has_coef = false }
                     e
            done
        | Vertices_of_cell ->
            let c = ctx.idx in
            for j = 0 to m.n_edges_on_cell.(c) - 1 do
              let v = m.vertices_on_cell.(c).(j) in
              acc :=
                !acc
                +. go
                     { ctx with at = Vertices; idx = v;
                       coef = kite_coef m ~v ~c; has_coef = true }
                     e
            done
        | Edges_of_vertex ->
            let v = ctx.idx in
            for k = 0 to 2 do
              acc :=
                !acc
                +. go
                     { ctx with at = Edges; idx = m.edges_on_vertex.(v).(k);
                       coef = m.edge_sign_on_vertex.(v).(k); has_coef = true }
                     e
            done
        | Cells_of_vertex ->
            let v = ctx.idx in
            for k = 0 to 2 do
              let c = m.cells_on_vertex.(v).(k) in
              acc :=
                !acc
                +. go
                     { ctx with at = Cells; idx = c;
                       coef = kite_coef m ~v ~c; has_coef = true }
                     e
            done
        | Edges_of_edge ->
            let e0 = ctx.idx in
            for i = 0 to m.n_edges_on_edge.(e0) - 1 do
              acc :=
                !acc
                +. go
                     { ctx with at = Edges; idx = m.edges_on_edge.(e0).(i);
                       coef = m.weights_on_edge.(e0).(i); has_coef = true }
                     e
            done);
        !acc
      end
    | Neg e -> -.go ctx e
    | Add (a, b) -> go ctx a +. go ctx b
    | Sub (a, b) -> go ctx a -. go ctx b
    | Mul (a, b) -> go ctx a *. go ctx b
    | Div (a, b) -> go ctx a /. go ctx b
  in
  fun i ->
    go
      { outer = i; at = kernel.out_space; idx = i; coef = 0.; has_coef = false;
        root_cell = -1 }
      kernel.body

let eval_at env kernel i = eval env kernel i

let out_length (m : Mesh.t) kernel =
  match kernel.out_space with
  | Cells -> m.n_cells
  | Edges -> m.n_edges
  | Vertices -> m.n_vertices

let run ?pool ?on env kernel ~out =
  let f = eval env kernel in
  let n = out_length env.mesh kernel in
  let body i = out.(i) <- f i in
  match (pool, on) with
  | None, None ->
      for i = 0 to n - 1 do
        body i
      done
  | None, Some idx -> Array.iter body idx
  | Some p, None -> Mpas_par.Pool.parallel_for p ~lo:0 ~hi:n body
  | Some p, Some idx ->
      Mpas_par.Pool.parallel_for p ~lo:0 ~hi:(Array.length idx) (fun k ->
          body idx.(k))
