(** Source emission from the stencil IR: prints the OCaml gather loop a
    kernel describes — the "automatic code generation" half of the
    paper's future work.  The output is the refactored (Algorithm 3)
    loop form by construction: the IR has no scatter. *)

(** Render the kernel as compilable-looking OCaml source (a function of
    the mesh, the input fields and the output array). *)
val to_ocaml : Stencil.kernel -> string
