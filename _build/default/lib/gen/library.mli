(** Table I instances expressed in the stencil IR.

    Each entry names the fields it reads (matching
    [Mpas_swe.Fields.diagnostics] vocabulary) and produces one output
    field; multi-output instances appear once per output
    (H1 -> grad_pv_n / grad_pv_t, X3/X4/X5 are trivial pointwise
    updates and are omitted).  Gravity and the APVM factor are baked as
    constants where needed. *)

(** [specs ~gravity ~apvm_dt] — every expressible instance, keyed by a
    descriptive name. *)
val specs : gravity:float -> apvm_dt:float -> (string * Stencil.kernel) list

(** Look up one spec. @raise Not_found for unknown names. *)
val spec : gravity:float -> apvm_dt:float -> string -> Stencil.kernel
