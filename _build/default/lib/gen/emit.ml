open Stencil

(* Each cursor is a named OCaml variable; sums introduce fresh index
   variables. *)
let to_ocaml kernel =
  let buf = Buffer.create 1024 in
  let pr fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  let fresh =
    let n = ref 0 in
    fun base ->
      incr n;
      Format.sprintf "%s%d" base !n
  in
  let out_var, out_n =
    match kernel.out_space with
    | Cells -> ("c", "m.n_cells")
    | Edges -> ("e", "m.n_edges")
    | Vertices -> ("v", "m.n_vertices")
  in
  (* Emit an expression; [cursor] is the variable holding the current
     index, [coef] the coefficient expression of the enclosing sum,
     [root] the root variable of an enclosing Edges_of_cell sum.
     Returns the expression string; sums are emitted via accumulator
     statements collected in [stmts]. *)
  let stmts = ref [] in
  let rec go ~cursor ~coef ~root expr =
    match expr with
    | Const x -> Format.sprintf "%g" x
    | Field name -> Format.sprintf "%s.(%s)" name cursor
    | Geom Dc -> Format.sprintf "m.dc_edge.(%s)" cursor
    | Geom Dv -> Format.sprintf "m.dv_edge.(%s)" cursor
    | Geom Area_cell -> Format.sprintf "m.area_cell.(%s)" cursor
    | Geom Area_triangle -> Format.sprintf "m.area_triangle.(%s)" cursor
    | Geom Coriolis -> Format.sprintf "f.(%s)" cursor
    | Coef -> ( match coef with Some c -> c | None -> "(* no coef *) 1.")
    | Outer e -> go ~cursor:out_var ~coef ~root e
    | Cell1 e ->
        go ~cursor:(Format.sprintf "m.cells_on_edge.(%s).(0)" cursor) ~coef
          ~root e
    | Cell2 e ->
        go ~cursor:(Format.sprintf "m.cells_on_edge.(%s).(1)" cursor) ~coef
          ~root e
    | Vertex1 e ->
        go ~cursor:(Format.sprintf "m.vertices_on_edge.(%s).(0)" cursor) ~coef
          ~root e
    | Vertex2 e ->
        go ~cursor:(Format.sprintf "m.vertices_on_edge.(%s).(1)" cursor) ~coef
          ~root e
    | Other_cell e ->
        let other = fresh "other" in
        stmts :=
          Format.sprintf
            "      let %s = let ce = m.cells_on_edge.(%s) in if ce.(0) = %s \
             then ce.(1) else ce.(0) in"
            other cursor root
          :: !stmts;
        go ~cursor:other ~coef ~root e
    | Sum (rel, e) ->
        let acc = fresh "acc" in
        let j = fresh "j" in
        let header, nbr, coef_expr =
          match rel with
          | Edges_of_cell ->
              ( Format.sprintf
                  "for %s = 0 to m.n_edges_on_cell.(%s) - 1 do" j cursor,
                Format.sprintf "m.edges_on_cell.(%s).(%s)" cursor j,
                Some (Format.sprintf "m.edge_sign_on_cell.(%s).(%s)" cursor j)
              )
          | Cells_of_cell ->
              ( Format.sprintf
                  "for %s = 0 to m.n_edges_on_cell.(%s) - 1 do" j cursor,
                Format.sprintf "m.cells_on_cell.(%s).(%s)" cursor j,
                None )
          | Vertices_of_cell ->
              ( Format.sprintf
                  "for %s = 0 to m.n_edges_on_cell.(%s) - 1 do" j cursor,
                Format.sprintf "m.vertices_on_cell.(%s).(%s)" cursor j,
                Some (Format.sprintf "kite_area m %s (* vertex *) %s" cursor j)
              )
          | Edges_of_vertex ->
              ( Format.sprintf "for %s = 0 to 2 do" j,
                Format.sprintf "m.edges_on_vertex.(%s).(%s)" cursor j,
                Some
                  (Format.sprintf "m.edge_sign_on_vertex.(%s).(%s)" cursor j)
              )
          | Cells_of_vertex ->
              ( Format.sprintf "for %s = 0 to 2 do" j,
                Format.sprintf "m.cells_on_vertex.(%s).(%s)" cursor j,
                Some (Format.sprintf "m.kite_areas_on_vertex.(%s).(%s)" cursor j)
              )
          | Edges_of_edge ->
              ( Format.sprintf
                  "for %s = 0 to m.n_edges_on_edge.(%s) - 1 do" j cursor,
                Format.sprintf "m.edges_on_edge.(%s).(%s)" cursor j,
                Some (Format.sprintf "m.weights_on_edge.(%s).(%s)" cursor j)
              )
        in
        let nbr_var = fresh "n" in
        let saved = !stmts in
        stmts := [];
        let inner =
          go ~cursor:nbr_var ~coef:coef_expr
            ~root:(if rel = Edges_of_cell then cursor else root)
            e
        in
        let inner_stmts = String.concat "\n" (List.rev !stmts) in
        stmts :=
          Format.sprintf
            "      let %s = ref 0. in\n      %s\n        let %s = %s in\n%s\n        %s := !%s +. (%s)\n      done;"
            acc header nbr_var nbr
            (if inner_stmts = "" then "" else inner_stmts)
            acc acc inner
          :: saved;
        Format.sprintf "!%s" acc
    | Neg e -> Format.sprintf "(-. (%s))" (go ~cursor ~coef ~root e)
    | Add (a, b) ->
        Format.sprintf "(%s +. %s)" (go ~cursor ~coef ~root a)
          (go ~cursor ~coef ~root b)
    | Sub (a, b) ->
        Format.sprintf "(%s -. %s)" (go ~cursor ~coef ~root a)
          (go ~cursor ~coef ~root b)
    | Mul (a, b) ->
        Format.sprintf "(%s *. %s)" (go ~cursor ~coef ~root a)
          (go ~cursor ~coef ~root b)
    | Div (a, b) ->
        Format.sprintf "(%s /. %s)" (go ~cursor ~coef ~root a)
          (go ~cursor ~coef ~root b)
  in
  let fields = String.concat " " (List.map (fun (n, _) -> "~" ^ n) kernel.reads) in
  pr "(* generated from the stencil IR: %s *)\n" kernel.kernel_name;
  pr "let kernel (m : Mesh.t) %s ~out =\n" fields;
  pr "  for %s = 0 to %s - 1 do\n" out_var out_n;
  let body = go ~cursor:out_var ~coef:None ~root:out_var kernel.body in
  List.iter (fun stmt -> pr "%s\n" stmt) (List.rev !stmts);
  pr "    out.(%s) <- %s\n" out_var body;
  pr "  done\n";
  Buffer.contents buf
