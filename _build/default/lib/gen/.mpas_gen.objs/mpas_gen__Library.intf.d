lib/gen/library.mli: Stencil
