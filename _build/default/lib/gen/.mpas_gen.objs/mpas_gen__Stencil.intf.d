lib/gen/stencil.mli: Mesh Mpas_mesh Mpas_par
