lib/gen/emit.mli: Stencil
