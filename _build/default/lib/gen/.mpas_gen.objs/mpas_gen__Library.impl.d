lib/gen/library.ml: List Stencil
