lib/gen/emit.ml: Buffer Format List Stencil String
