lib/gen/stencil.ml: Array Format List Mesh Mpas_mesh Mpas_par
