(** A small stencil-expression IR realizing the paper's stated future
    work (§VI): "leveraging automatic code generation techniques for
    the ease of implementation and optimization".

    A kernel is described as an expression tree evaluated at every
    point of an output space; neighbour sums ([Sum]) iterate one of the
    mesh adjacency relations with its paired coefficient (edge sign,
    kite area or TRiSK weight) in scope, and the cursor combinators
    ([Cell1], [Other_cell], [Outer], ...) move the evaluation point
    across the C-grid.  Every Table I stencil is expressible
    ([Library]); the executor runs them directly over a mesh — always
    in the race-free gather form of the paper's Algorithm 3 — and the
    emitter prints the equivalent loop source. *)

open Mpas_mesh

type space = Cells | Edges | Vertices

val space_name : space -> string

(** Adjacency relations a [Sum] can iterate, with the coefficient that
    travels with each neighbour. *)
type relation =
  | Edges_of_cell  (** paired coefficient: edge_sign_on_cell *)
  | Cells_of_cell  (** aligned with Edges_of_cell; no coefficient *)
  | Vertices_of_cell  (** paired coefficient: the cell's kite area *)
  | Edges_of_vertex  (** paired coefficient: edge_sign_on_vertex *)
  | Cells_of_vertex  (** paired coefficient: kite_areas_on_vertex *)
  | Edges_of_edge  (** paired coefficient: weights_on_edge *)

(** Source and target spaces of a relation. *)
val relation_spaces : relation -> space * space

(** Geometry readable at the evaluation cursor. *)
type geom =
  | Dc  (** edge only *)
  | Dv  (** edge only *)
  | Area_cell
  | Area_triangle
  | Coriolis  (** f at the cursor's space *)

type expr =
  | Const of float
  | Field of string  (** named field at the cursor *)
  | Geom of geom
  | Coef  (** the enclosing [Sum]'s paired coefficient *)
  | Outer of expr  (** evaluate at the loop's output point *)
  | Cell1 of expr  (** cursor must be an edge *)
  | Cell2 of expr
  | Vertex1 of expr
  | Vertex2 of expr
  | Other_cell of expr
      (** cursor an edge reached from a cell sum: the cell across *)
  | Sum of relation * expr
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type kernel = {
  kernel_name : string;
  out_space : space;
  reads : (string * space) list;  (** field name -> where it lives *)
  body : expr;
}

(** Static checking: cursor/space discipline ([Dc] only at edges,
    [Cell1] only at edges, [Sum] relations rooted at the right space,
    [Coef] only under a [Sum], field reads declared with the right
    space, [Other_cell] only under an [Edges_of_cell] sum rooted at a
    cell).  Returns violations; empty means well-typed. *)
val check : kernel -> string list

type env = { mesh : Mesh.t; fields : (string * float array) list }

(** Interpret the kernel at one output index.
    @raise Invalid_argument on ill-typed expressions or unknown
    fields (run [check] first). *)
val eval_at : env -> kernel -> int -> float

(** Execute over the whole output space (or [?on] indices) into [out],
    in gather form; safe under the pool like every refactored loop. *)
val run :
  ?pool:Mpas_par.Pool.t -> ?on:int array -> env -> kernel ->
  out:float array -> unit

(** Length of the output array the kernel needs on [mesh]. *)
val out_length : Mesh.t -> kernel -> int
