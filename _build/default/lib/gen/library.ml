open Stencil

let half = Const 0.5

let mean_cells field = Mul (half, Add (Cell1 (Field field), Cell2 (Field field)))

let specs ~gravity ~apvm_dt =
  [
    ( "A3 divergence",
      {
        kernel_name = "A3 divergence";
        out_space = Cells;
        reads = [ ("u", Edges) ];
        body =
          Div
            ( Sum (Edges_of_cell, Mul (Coef, Mul (Field "u", Geom Dv))),
              Geom Area_cell );
      } );
    ( "A1 tend_h",
      {
        kernel_name = "A1 tend_h";
        out_space = Cells;
        reads = [ ("u", Edges); ("h_edge", Edges) ];
        body =
          Neg
            (Div
               ( Sum
                   ( Edges_of_cell,
                     Mul (Coef, Mul (Field "h_edge", Mul (Field "u", Geom Dv)))
                   ),
                 Geom Area_cell ));
      } );
    ( "A2 kinetic energy",
      {
        kernel_name = "A2 kinetic energy";
        out_space = Cells;
        reads = [ ("u", Edges) ];
        body =
          Div
            ( Sum
                ( Edges_of_cell,
                  Mul
                    ( Const 0.25,
                      Mul (Geom Dc, Mul (Geom Dv, Mul (Field "u", Field "u")))
                    ) ),
              Geom Area_cell );
      } );
    ( "H2 d2fdx2",
      {
        kernel_name = "H2 d2fdx2";
        out_space = Cells;
        reads = [ ("h", Cells) ];
        body =
          Div
            ( Sum
                ( Edges_of_cell,
                  Div
                    ( Mul
                        ( Geom Dv,
                          Sub (Other_cell (Field "h"), Outer (Field "h")) ),
                      Geom Dc ) ),
              Geom Area_cell );
      } );
    ( "B2 h_edge (4th order)",
      {
        kernel_name = "B2 h_edge (4th order)";
        out_space = Edges;
        reads = [ ("h", Cells); ("d2fdx2_cell", Cells) ];
        body =
          Sub
            ( mean_cells "h",
              Mul
                ( Div (Mul (Geom Dc, Geom Dc), Const 24.),
                  Add (Cell1 (Field "d2fdx2_cell"), Cell2 (Field "d2fdx2_cell"))
                ) );
      } );
    ( "D1 vorticity",
      {
        kernel_name = "D1 vorticity";
        out_space = Vertices;
        reads = [ ("u", Edges) ];
        body =
          Div
            ( Sum (Edges_of_vertex, Mul (Coef, Mul (Field "u", Geom Dc))),
              Geom Area_triangle );
      } );
    ( "C2 h_vertex",
      {
        kernel_name = "C2 h_vertex";
        out_space = Vertices;
        reads = [ ("h", Cells) ];
        body =
          Div
            ( Sum (Cells_of_vertex, Mul (Coef, Field "h")),
              Geom Area_triangle );
      } );
    ( "D2 pv_vertex",
      {
        kernel_name = "D2 pv_vertex";
        out_space = Vertices;
        reads = [ ("vorticity", Vertices); ("h_vertex", Vertices) ];
        body = Div (Add (Geom Coriolis, Field "vorticity"), Field "h_vertex");
      } );
    ( "E pv_cell",
      {
        kernel_name = "E pv_cell";
        out_space = Cells;
        reads = [ ("pv_vertex", Vertices) ];
        body =
          Div
            ( Sum (Vertices_of_cell, Mul (Coef, Field "pv_vertex")),
              Geom Area_cell );
      } );
    ( "G tangential velocity",
      {
        kernel_name = "G tangential velocity";
        out_space = Edges;
        reads = [ ("u", Edges) ];
        body = Sum (Edges_of_edge, Mul (Coef, Field "u"));
      } );
    ( "H1 grad_pv_n",
      {
        kernel_name = "H1 grad_pv_n";
        out_space = Edges;
        reads = [ ("pv_cell", Cells) ];
        body =
          Div (Sub (Cell2 (Field "pv_cell"), Cell1 (Field "pv_cell")), Geom Dc);
      } );
    ( "H1 grad_pv_t",
      {
        kernel_name = "H1 grad_pv_t";
        out_space = Edges;
        reads = [ ("pv_vertex", Vertices) ];
        body =
          Div
            ( Sub (Vertex2 (Field "pv_vertex"), Vertex1 (Field "pv_vertex")),
              Geom Dv );
      } );
    ( "F pv_edge",
      {
        kernel_name = "F pv_edge";
        out_space = Edges;
        reads =
          [ ("pv_vertex", Vertices); ("grad_pv_n", Edges);
            ("grad_pv_t", Edges); ("u", Edges); ("v", Edges) ];
        body =
          Sub
            ( Mul (half, Add (Vertex1 (Field "pv_vertex"), Vertex2 (Field "pv_vertex"))),
              Mul
                ( Const apvm_dt,
                  Add
                    ( Mul (Field "u", Field "grad_pv_n"),
                      Mul (Field "v", Field "grad_pv_t") ) ) );
      } );
    ( "C1 dissipation term",
      {
        kernel_name = "C1 dissipation term";
        out_space = Edges;
        reads = [ ("divergence", Cells); ("vorticity", Vertices) ];
        body =
          Sub
            ( Div
                ( Sub (Cell2 (Field "divergence"), Cell1 (Field "divergence")),
                  Geom Dc ),
              Div
                ( Sub (Vertex2 (Field "vorticity"), Vertex1 (Field "vorticity")),
                  Geom Dv ) );
      } );
    ( "B1 tend_u",
      {
        kernel_name = "B1 tend_u";
        out_space = Edges;
        reads =
          [ ("u", Edges); ("h", Cells); ("b", Cells); ("ke", Cells);
            ("h_edge", Edges); ("pv_edge", Edges) ];
        body =
          (let energy =
             Add (Mul (Const gravity, Add (Field "h", Field "b")), Field "ke")
           in
           Sub
             ( Sum
                 ( Edges_of_edge,
                   Mul
                     ( Coef,
                       Mul
                         ( Field "u",
                           Mul
                             ( Field "h_edge",
                               Mul
                                 ( half,
                                   Add
                                     ( Outer (Field "pv_edge"),
                                       Field "pv_edge" ) ) ) ) ) ),
               Div (Sub (Cell2 energy, Cell1 energy), Geom Dc) ));
      } );
  ]

let spec ~gravity ~apvm_dt name = List.assoc name (specs ~gravity ~apvm_dt)
