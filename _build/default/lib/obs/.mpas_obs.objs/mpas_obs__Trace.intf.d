lib/obs/trace.mli: Jsonv
