lib/obs/metrics.mli: Jsonv
