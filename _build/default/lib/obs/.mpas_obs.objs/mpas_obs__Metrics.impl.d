lib/obs/metrics.ml: Array Atomic Float Format Fun Hashtbl Jsonv List Mutex String Unix
