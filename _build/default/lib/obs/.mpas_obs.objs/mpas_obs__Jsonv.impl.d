lib/obs/jsonv.ml: Buffer Char Float List Printf String
