lib/obs/jsonv.mli:
