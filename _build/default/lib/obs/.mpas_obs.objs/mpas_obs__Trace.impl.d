lib/obs/trace.ml: Atomic Domain Fun Jsonv List Mutex Unix
