(** Minimal JSON values — enough for the Chrome trace export, metric
    snapshots and the measured-vs-roofline report, with a parser so
    tests (and the [obs_report] pretty-printer) can read what the
    writers produce without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact rendering; numbers that hold an integral value print
    without a decimal point, others with 17 significant digits (enough
    to round-trip a double). *)
val to_string : t -> string

(** Parse a complete JSON document.
    @raise Failure on malformed input or trailing garbage. *)
val of_string : string -> t

(** [member key j] is the value at [key] if [j] is an object. *)
val member : string -> t -> t option

(** Accessors; each raises [Failure] on a shape mismatch. *)

val to_float : t -> float
val to_int : t -> int
val to_str : t -> string
val to_arr : t -> t list
val to_obj : t -> (string * t) list
