(** Measured-vs-roofline report: joins wall-clock per-kernel timings
    (from [Mpas_swe.Profile] / the [Obs] timers) with the
    [Mpas_machine.Costmodel] roofline predictions into one table of
    absolute times and measured/modelled ratios per kernel — the check
    of the paper's §II-C profiling step against the Table I cost
    model.

    Ratios are only meaningful in shape: the model is calibrated to
    the paper's Xeon, not to the machine the measurement ran on, so a
    uniform scale factor across kernels is expected; a kernel whose
    ratio stands off from the others is the anomaly worth chasing. *)

open Mpas_machine

type row = {
  kernel : string;  (** kernel name, e.g. "compute_tend" *)
  calls_per_step : int;
  measured_s : float;  (** measured seconds per step, all calls *)
  modelled_s : float;  (** roofline seconds per step, all calls *)
  ratio : float;  (** measured / modelled; [nan] when modelled = 0 *)
}

type t = {
  device : string;
  steps : int;  (** steps the measurement accumulated over *)
  rows : row list;  (** one row per kernel, Algorithm 1 order *)
}

(** [make ~stats ~steps measured] builds the table.  [measured] maps
    kernel names to total measured seconds over [steps] steps; kernels
    absent from the list report 0 measured time.  Defaults: the
    paper's Xeon E5-2680 v2, default parameters, [Costmodel.baseline]
    flags (matching a serial, single-thread measurement run) and the
    CSR layout the engine executes. *)
val make :
  ?device:Hw.device ->
  ?params:Costmodel.params ->
  ?flags:Costmodel.flags ->
  ?layout:Mpas_patterns.Cost.layout ->
  stats:Mpas_patterns.Cost.mesh_stats ->
  steps:int ->
  (string * float) list ->
  t

val measured_total : t -> float
val modelled_total : t -> float

val to_string : t -> string

val to_json : t -> Mpas_obs.Jsonv.t

(** Inverse of {!to_json}.
    @raise Failure on a JSON shape mismatch. *)
val of_json : Mpas_obs.Jsonv.t -> t
