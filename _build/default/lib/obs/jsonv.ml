type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_nan x || Float.abs x = Float.infinity then
    (* JSON has no NaN/Inf; null is the conventional stand-in. *)
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  add buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

type reader = { text : string; mutable pos : int }

let fail r msg = failwith (Printf.sprintf "Jsonv: %s at offset %d" msg r.pos)

let peek r = if r.pos < String.length r.text then Some r.text.[r.pos] else None

let skip_ws r =
  while
    r.pos < String.length r.text
    && (match r.text.[r.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    r.pos <- r.pos + 1
  done

let expect r c =
  match peek r with
  | Some c' when c' = c -> r.pos <- r.pos + 1
  | _ -> fail r (Printf.sprintf "expected '%c'" c)

let literal r word v =
  let n = String.length word in
  if r.pos + n <= String.length r.text && String.sub r.text r.pos n = word then begin
    r.pos <- r.pos + n;
    v
  end
  else fail r ("expected " ^ word)

let parse_string r =
  expect r '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if r.pos >= String.length r.text then fail r "unterminated string";
    let c = r.text.[r.pos] in
    r.pos <- r.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if r.pos >= String.length r.text then fail r "unterminated escape";
        let e = r.text.[r.pos] in
        r.pos <- r.pos + 1;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char buf e;
            go ()
        | 'n' ->
            Buffer.add_char buf '\n';
            go ()
        | 'r' ->
            Buffer.add_char buf '\r';
            go ()
        | 't' ->
            Buffer.add_char buf '\t';
            go ()
        | 'b' ->
            Buffer.add_char buf '\b';
            go ()
        | 'f' ->
            Buffer.add_char buf '\012';
            go ()
        | 'u' ->
            if r.pos + 4 > String.length r.text then fail r "short \\u escape";
            let hex = String.sub r.text r.pos 4 in
            r.pos <- r.pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail r "bad \\u escape"
            in
            (* Keep it simple: only BMP codepoints, encoded as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end;
            go ()
        | _ -> fail r "unknown escape")
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number r =
  let start = r.pos in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while r.pos < String.length r.text && num_char r.text.[r.pos] do
    r.pos <- r.pos + 1
  done;
  match float_of_string_opt (String.sub r.text start (r.pos - start)) with
  | Some x -> x
  | None -> fail r "bad number"

let rec parse_value r =
  skip_ws r;
  match peek r with
  | None -> fail r "unexpected end of input"
  | Some '"' -> Str (parse_string r)
  | Some 't' -> literal r "true" (Bool true)
  | Some 'f' -> literal r "false" (Bool false)
  | Some 'n' -> literal r "null" Null
  | Some '[' ->
      expect r '[';
      skip_ws r;
      if peek r = Some ']' then begin
        r.pos <- r.pos + 1;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value r in
          skip_ws r;
          match peek r with
          | Some ',' ->
              r.pos <- r.pos + 1;
              items (v :: acc)
          | Some ']' ->
              r.pos <- r.pos + 1;
              List.rev (v :: acc)
          | _ -> fail r "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '{' ->
      expect r '{';
      skip_ws r;
      if peek r = Some '}' then begin
        r.pos <- r.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws r;
          let k = parse_string r in
          skip_ws r;
          expect r ':';
          let v = parse_value r in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws r;
          match peek r with
          | Some ',' ->
              r.pos <- r.pos + 1;
              fields (kv :: acc)
          | Some '}' ->
              r.pos <- r.pos + 1;
              List.rev (kv :: acc)
          | _ -> fail r "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some _ -> Num (parse_number r)

let of_string text =
  let r = { text; pos = 0 } in
  let v = parse_value r in
  skip_ws r;
  if r.pos <> String.length text then fail r "trailing garbage";
  v

(* --- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> x | _ -> failwith "Jsonv.to_float: not a number"
let to_int v = int_of_float (to_float v)
let to_str = function Str s -> s | _ -> failwith "Jsonv.to_str: not a string"
let to_arr = function Arr l -> l | _ -> failwith "Jsonv.to_arr: not an array"
let to_obj = function Obj l -> l | _ -> failwith "Jsonv.to_obj: not an object"
