lib/obs/report.ml: Cost Costmodel Float Format Hw Jsonv List Mpas_machine Mpas_obs Mpas_patterns Pattern String
