lib/obs/report.mli: Costmodel Hw Mpas_machine Mpas_obs Mpas_patterns
