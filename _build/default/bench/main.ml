(* Benchmark harness.

   Two parts:
   1. regeneration of every table and figure of the paper's evaluation
      (Tables I-III, Figures 5-9) through Mpas_core.Experiments — the
      rows printed here are the reproduction artifacts recorded in
      EXPERIMENTS.md;
   2. Bechamel micro-benchmarks of the real kernels (one group per
      experiment plus the refactoring forms of Algorithms 2-4), run on
      this machine. *)

open Bechamel
open Toolkit

(* --- part 1: the paper's tables and figures ------------------------------ *)

let regenerate_experiments () =
  print_endline "=== Paper evaluation artifacts (see EXPERIMENTS.md) ===\n";
  List.iter Mpas_core.Report.print
    (Mpas_core.Experiments.all ~fig5_level:4 ~fig5_hours:6. ())

(* --- part 2: micro-benchmarks -------------------------------------------- *)

let mesh = lazy (Mpas_mesh.Build.icosahedral ~level:4 ~lloyd_iters:2 ())

let microbenches () =
  let open Mpas_swe in
  let m = Lazy.force mesh in
  let rng = Mpas_numerics.Rng.create 11L in
  let x = Array.init m.n_edges (fun _ -> Mpas_numerics.Rng.uniform rng (-1.) 1.) in
  let y = Array.make m.n_cells 0. in
  let labels = Mpas_patterns.Refactor.label_matrix m in
  let refactoring =
    Test.make_grouped ~name:"refactoring (Algorithms 2-4)"
      [
        Test.make ~name:"alg2 edge-order scatter"
          (Staged.stage (fun () ->
               Mpas_patterns.Refactor.edge_to_cell_scatter m ~x ~y));
        Test.make ~name:"alg3 cell-order gather"
          (Staged.stage (fun () ->
               Mpas_patterns.Refactor.edge_to_cell_gather m ~x ~y));
        Test.make ~name:"alg4 branch-free"
          (Staged.stage (fun () ->
               Mpas_patterns.Refactor.edge_to_cell_branch_free m labels ~x ~y));
      ]
  in
  let state, b = Williamson.init Williamson.Tc5 m in
  let diag = Fields.alloc_diagnostics m in
  let tend = Fields.alloc_tendencies m in
  let recon = Reconstruct.init m in
  let recon_out = Fields.alloc_reconstruction m in
  let cfg = Config.default in
  Operators.d2fdx2 m ~h:state.h ~out:diag.d2fdx2_cell;
  Operators.h_edge m ~order:cfg.h_adv_order ~h:state.h
    ~d2fdx2_cell:diag.d2fdx2_cell ~out:diag.h_edge;
  Operators.kinetic_energy m ~u:state.u ~out:diag.ke;
  Operators.vorticity m ~u:state.u ~out:diag.vorticity;
  Operators.h_vertex m ~h:state.h ~out:diag.h_vertex;
  Operators.pv_vertex m ~vorticity:diag.vorticity ~h_vertex:diag.h_vertex
    ~out:diag.pv_vertex;
  Operators.tangential_velocity m ~u:state.u ~out:diag.v_tangential;
  let operators =
    Test.make_grouped ~name:"pattern instances (real kernels)"
      [
        Test.make ~name:"A1 tend_h"
          (Staged.stage (fun () ->
               Operators.tend_h m ~h_edge:diag.h_edge ~u:state.u
                 ~out:tend.tend_h));
        Test.make ~name:"B1 tend_u"
          (Staged.stage (fun () ->
               Operators.tend_u m ~gravity:cfg.gravity ~h:state.h ~b
                 ~ke:diag.ke ~h_edge:diag.h_edge ~u:state.u
                 ~pv_edge:diag.pv_edge ~out:tend.tend_u));
        Test.make ~name:"B2 h_edge (4th order)"
          (Staged.stage (fun () ->
               Operators.h_edge m ~order:Config.Fourth ~h:state.h
                 ~d2fdx2_cell:diag.d2fdx2_cell ~out:diag.h_edge));
        Test.make ~name:"D1 vorticity"
          (Staged.stage (fun () ->
               Operators.vorticity m ~u:state.u ~out:diag.vorticity));
        Test.make ~name:"G tangential velocity"
          (Staged.stage (fun () ->
               Operators.tangential_velocity m ~u:state.u
                 ~out:diag.v_tangential));
        Test.make ~name:"A4/X6 reconstruct"
          (Staged.stage (fun () ->
               Reconstruct.run recon m ~u:state.u ~out:recon_out));
      ]
  in
  let model_original = Model.init ~engine:Timestep.original Williamson.Tc5 m in
  let model_refactored = Model.init Williamson.Tc5 m in
  let bell = Williamson.cosine_bell m in
  let model_tracers = Model.init ~tracers:[| bell |] Williamson.Tc5 m in
  let dist = Mpas_dist.Driver.init ~n_ranks:4 Williamson.Tc5 m in
  let steps =
    Test.make_grouped ~name:"full RK-4 step"
      [
        Test.make ~name:"original (scatter) engine"
          (Staged.stage (fun () -> Model.run model_original ~steps:1));
        Test.make ~name:"refactored (gather) engine"
          (Staged.stage (fun () -> Model.run model_refactored ~steps:1));
        Test.make ~name:"with one tracer"
          (Staged.stage (fun () -> Model.run model_tracers ~steps:1));
        Test.make ~name:"distributed, 4 ranks"
          (Staged.stage (fun () -> Mpas_dist.Driver.run dist ~steps:1));
      ]
  in
  let experiments =
    (* One Test.make per paper table/figure generator (the cheap,
       model-based ones; Figure 5 runs the real solver and is
       regenerated in part 1 instead of being timed here). *)
    Test.make_grouped ~name:"experiment generators"
      [
        Test.make ~name:"table1"
          (Staged.stage (fun () -> Mpas_core.Experiments.table1 ()));
        Test.make ~name:"table2"
          (Staged.stage (fun () -> Mpas_core.Experiments.table2 ()));
        Test.make ~name:"table3"
          (Staged.stage (fun () -> Mpas_core.Experiments.table3 ()));
        Test.make ~name:"fig6"
          (Staged.stage (fun () -> Mpas_core.Experiments.fig6 ()));
        Test.make ~name:"fig7"
          (Staged.stage (fun () -> Mpas_core.Experiments.fig7 ()));
        Test.make ~name:"fig8"
          (Staged.stage (fun () -> Mpas_core.Experiments.fig8 ()));
        Test.make ~name:"fig9"
          (Staged.stage (fun () -> Mpas_core.Experiments.fig9 ()));
        Test.make ~name:"ablation-devices"
          (Staged.stage (fun () -> Mpas_core.Experiments.ablation_device_ratio ()));
        Test.make ~name:"ablation-residency"
          (Staged.stage (fun () -> Mpas_core.Experiments.ablation_residency ()));
      ]
  in
  [ refactoring; operators; steps; experiments ]

let run_benchmarks tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None ()
  in
  print_endline "\n=== Bechamel micro-benchmarks (this machine) ===\n";
  Printf.printf "%-55s %15s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
        |> List.sort compare
      in
      List.iter
        (fun (name, ols) ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let pretty =
            if ns >= 1e9 then Printf.sprintf "%8.3f  s" (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          Printf.printf "%-55s %15s\n" name pretty)
        rows)
    tests

let () =
  regenerate_experiments ();
  run_benchmarks (microbenches ())
