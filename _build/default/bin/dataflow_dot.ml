(* Emit the data-flow diagram (paper Figure 4) as Graphviz DOT,
   optionally colored by a hybrid placement plan. *)

open Cmdliner

let run plan =
  let placement =
    match plan with
    | "none" -> fun _ -> None
    | "kernel" | "pattern" ->
        let p =
          if plan = "kernel" then Mpas_hybrid.Plan.kernel_level
          else Mpas_hybrid.Plan.pattern_driven
        in
        fun id ->
          Some
            (match p.Mpas_hybrid.Plan.place id with
            | Mpas_hybrid.Plan.Host -> "lightgray"
            | Mpas_hybrid.Plan.Device -> "gold"
            | Mpas_hybrid.Plan.Adjustable -> "lightyellow")
    | other -> failwith ("unknown plan: " ^ other)
  in
  match plan with
  | "none" | "kernel" | "pattern" ->
      print_string
        (Mpas_dataflow.Dot.render ~placement (Mpas_dataflow.Graph.build ()));
      0
  | other ->
      prerr_endline ("unknown plan: " ^ other);
      1

let plan =
  Arg.(value & opt string "none"
       & info [ "plan" ] ~docv:"PLAN"
           ~doc:"Color nodes by placement: none, kernel or pattern.")

let cmd =
  Cmd.v
    (Cmd.info "dataflow_dot" ~doc:"Export the model data-flow diagram as DOT")
    Term.(const run $ plan)

let () = exit (Cmd.eval' cmd)
