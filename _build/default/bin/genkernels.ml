(* Print the OCaml loops generated from the stencil IR — the paper's
   §VI future work ("automatic code generation") made concrete.  Every
   emitted loop is in the refactored gather form of Algorithm 3 by
   construction. *)

open Cmdliner

let run names =
  let specs = Mpas_gen.Library.specs ~gravity:9.80616 ~apvm_dt:0.5 in
  let selected =
    if names = [] then specs
    else
      List.filter_map
        (fun n ->
          match List.assoc_opt n specs with
          | Some k -> Some (n, k)
          | None ->
              prerr_endline ("unknown kernel: " ^ n);
              None)
        names
  in
  List.iter
    (fun (_, k) ->
      (match Mpas_gen.Stencil.check k with
      | [] -> ()
      | errs ->
          prerr_endline ("ill-typed spec: " ^ String.concat "; " errs));
      print_endline (Mpas_gen.Emit.to_ocaml k);
      print_newline ())
    selected;
  if selected = [] && names <> [] then 1 else 0

let names =
  Arg.(value & pos_all string []
       & info [] ~docv:"KERNEL"
           ~doc:"Kernels to emit (default: the whole Table I library).")

let cmd =
  Cmd.v
    (Cmd.info "genkernels"
       ~doc:"Generate OCaml loops from the stencil-pattern IR")
    Term.(const run $ names)

let () = exit (Cmd.eval' cmd)
