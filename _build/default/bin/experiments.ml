(* CLI for regenerating the paper's tables and figures.

   Usage: experiments [EXPERIMENT...] [--fig5-level N] [--fig5-hours H]
   with experiments among table1 table2 table3 fig5 fig6 fig7 fig8 fig9
   all (default all). *)

open Cmdliner

let run names fig5_level fig5_hours =
  let pick = function
    | "table1" -> Mpas_core.Experiments.table1 ()
    | "table2" -> Mpas_core.Experiments.table2 ()
    | "table3" -> Mpas_core.Experiments.table3 ()
    | "fig5" ->
        Mpas_core.Experiments.fig5 ~level:fig5_level ~hours:fig5_hours ()
    | "fig6" -> Mpas_core.Experiments.fig6 ()
    | "fig7" -> Mpas_core.Experiments.fig7 ()
    | "fig8" -> Mpas_core.Experiments.fig8 ()
    | "fig9" -> Mpas_core.Experiments.fig9 ()
    | "ablation-devices" -> Mpas_core.Experiments.ablation_device_ratio ()
    | "ablation-residency" -> Mpas_core.Experiments.ablation_residency ()
    | "convergence" -> Mpas_core.Experiments.convergence ()
    | "model-vs-measured" -> Mpas_core.Experiments.model_vs_measured ()
    | "convergence-tc5" -> Mpas_core.Experiments.convergence_tc5 ()
    | "stability" -> Mpas_core.Experiments.stability ()
    | other -> failwith ("unknown experiment: " ^ other)
  in
  let names = if names = [] then [ "all" ] else names in
  try
    List.iter
      (fun name ->
        if name = "all" then
          List.iter Mpas_core.Report.print
            (Mpas_core.Experiments.all ~fig5_level ~fig5_hours ())
        else Mpas_core.Report.print (pick name))
      names;
    0
  with Failure msg ->
    prerr_endline msg;
    1

let names =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiments to run: table1 table2 table3 fig5..fig9                  ablation-devices ablation-residency or all.")

let fig5_level =
  Arg.(value & opt int 4
       & info [ "fig5-level" ] ~docv:"N"
           ~doc:"Icosahedral bisection level of the Figure 5 solver run \
                 (6 = the paper's 120-km mesh; 4 runs in seconds).")

let fig5_hours =
  Arg.(value & opt float 6.
       & info [ "fig5-hours" ] ~docv:"H"
           ~doc:"Simulated hours for Figure 5 (the paper shows day 15 = 360).")

let cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the tables and figures of the paper's evaluation")
    Term.(const run $ names $ fig5_level $ fig5_hours)

let () = exit (Cmd.eval' cmd)
