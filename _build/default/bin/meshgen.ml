(* Generate an icosahedral SCVT mesh, report its quality, and
   optionally save it for later runs. *)

open Cmdliner
open Mpas_mesh

let run level lloyd output check =
  let mesh = Build.icosahedral ~level ~lloyd_iters:lloyd () in
  print_endline (Quality.to_string (Quality.measure mesh));
  let status = ref 0 in
  if check then begin
    match Mesh.check ~area_tol:1e-3 mesh with
    | [] -> print_endline "invariants: ok"
    | errors ->
        List.iter (fun e -> print_endline ("invariant violation: " ^ e)) errors;
        status := 1
  end;
  (match output with
  | None -> ()
  | Some path ->
      Mesh_io.save mesh path;
      Printf.printf "saved to %s\n" path);
  !status

let level =
  Arg.(value & opt int 4
       & info [ "level" ] ~docv:"N" ~doc:"Icosahedral bisection level.")

let lloyd =
  Arg.(value & opt int 3
       & info [ "lloyd" ] ~docv:"N" ~doc:"Lloyd (SCVT) relaxation iterations.")

let output =
  Arg.(value & opt (some string) None
       & info [ "output"; "o" ] ~docv:"PATH" ~doc:"Save the mesh to a file.")

let check =
  Arg.(value & flag
       & info [ "check" ] ~doc:"Run the structural invariant checker.")

let cmd =
  Cmd.v
    (Cmd.info "meshgen" ~doc:"Generate quasi-uniform SCVT meshes")
    Term.(const run $ level $ lloyd $ output $ check)

let () = exit (Cmd.eval' cmd)
