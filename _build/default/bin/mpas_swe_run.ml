(* Run the shallow-water model on a Williamson test case and report
   timing and conservation. *)

open Cmdliner
open Mpas_swe

let case_of_string = function
  | "tc2" -> Ok Williamson.Tc2
  | "tc2r" -> Ok Williamson.Tc2_rotated
  | "tc5" -> Ok Williamson.Tc5
  | "tc6" -> Ok Williamson.Tc6
  | "galewsky" -> Ok Williamson.Galewsky
  | "galewsky-balanced" -> Ok Williamson.Galewsky_balanced
  | other -> Error (`Msg ("unknown test case: " ^ other))

let engine_of_string = function
  | "original" -> Ok `Original
  | "refactored" -> Ok `Refactored
  | "parallel" -> Ok `Parallel
  | "distributed" -> Ok `Distributed
  | other -> Error (`Msg ("unknown engine: " ^ other))

let dump_csv (model : Model.t) path =
  let m = model.Model.mesh in
  let th = Model.total_height model in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "lon,lat,h,total_height,b\n";
      for c = 0 to m.Mpas_mesh.Mesh.n_cells - 1 do
        Printf.fprintf oc "%.6f,%.6f,%.3f,%.3f,%.3f\n"
          m.Mpas_mesh.Mesh.lon_cell.(c) m.Mpas_mesh.Mesh.lat_cell.(c)
          model.Model.state.Mpas_swe.Fields.h.(c)
          th.(c) model.Model.b.(c)
      done)

let run case level lloyd hours dt engine domains dump checkpoint restart vtk =
  let mesh = Mpas_mesh.Build.icosahedral ~level ~lloyd_iters:lloyd () in
  Printf.printf "mesh: %d cells, %d edges, mean spacing %.0f km\n%!"
    mesh.Mpas_mesh.Mesh.n_cells mesh.Mpas_mesh.Mesh.n_edges
    (Mpas_mesh.Mesh.mean_spacing mesh /. 1000.);
  let model =
    match restart with
    | Some path ->
        let state = State_io.load path in
        let prepared = Williamson.prepare_mesh case mesh in
        let _, b = Williamson.init case prepared in
        let dt =
          match dt with
          | Some d -> d
          | None -> Williamson.recommended_dt case prepared
        in
        Printf.printf "restarting from %s\n%!" path;
        Model.of_state ~dt ~b prepared state
    | None -> (
        match dt with
        | Some dt -> Model.init ~dt case mesh
        | None -> Model.init case mesh)
  in
  let steps =
    Int.max 1 (int_of_float (Float.round (hours *. 3600. /. model.Model.dt)))
  in
  Printf.printf "%s: dt = %.1f s, %d steps (%.1f h)\n%!"
    (Williamson.case_name case) model.Model.dt steps hours;
  let inv0 = Model.invariants model in
  let wall = Unix.gettimeofday () in
  (match engine with
  | `Original ->
      Model.set_engine model Timestep.original;
      Model.run model ~steps
  | `Refactored -> Model.run model ~steps
  | `Parallel ->
      Model.with_parallel_engine model ~n_domains:domains (fun model ->
          Model.run model ~steps)
  | `Distributed ->
      (* Simulated MPI over [domains] ranks; results are bitwise equal
         to the serial engines, so copy the gathered state back. *)
      let dist =
        Mpas_dist.Driver.of_state ~config:model.Model.config
          ~n_ranks:domains ~dt:model.Model.dt ~b:model.Model.b
          model.Model.mesh model.Model.state
      in
      Mpas_dist.Driver.run dist ~steps;
      Mpas_swe.Fields.blit_state
        ~src:(Mpas_dist.Driver.gather_state dist)
        ~dst:model.Model.state;
      Printf.printf "halo traffic: %.2f MB over %d exchanges\n"
        (Mpas_dist.Exchange.bytes_moved dist.Mpas_dist.Driver.exchange /. 1e6)
        dist.Mpas_dist.Driver.exchange.Mpas_dist.Exchange.exchanges);
  let wall = Unix.gettimeofday () -. wall in
  let drift = Conservation.drift ~reference:inv0 (Model.invariants model) in
  let th = Model.total_height model in
  let lo, hi = Mpas_numerics.Stats.min_max th in
  Printf.printf "wall time: %.2f s (%.4f s/step)\n" wall
    (wall /. float_of_int steps);
  Printf.printf "total height range: [%.1f, %.1f] m\n" lo hi;
  Printf.printf "mass drift: %.3e  energy drift: %.3e  enstrophy drift: %.3e\n"
    drift.Conservation.mass drift.Conservation.energy
    drift.Conservation.potential_enstrophy;
  (match dump with
  | Some path ->
      dump_csv model path;
      Printf.printf "height field written to %s\n" path
  | None -> ());
  (match checkpoint with
  | Some path ->
      State_io.save model.Model.state path;
      Printf.printf "checkpoint written to %s\n" path
  | None -> ());
  (match vtk with
  | Some path ->
      Mpas_mesh.Vtk.save model.Model.mesh
        [ ("h", model.Model.state.Mpas_swe.Fields.h);
          ("total_height", Model.total_height model);
          ("bottom", model.Model.b) ]
        path;
      Printf.printf "VTK file written to %s\n" path
  | None -> ());
  0

let case =
  Arg.(value
       & opt (conv (case_of_string, fun ppf _ -> Format.fprintf ppf "case"))
           Williamson.Tc5
       & info [ "case" ] ~docv:"CASE" ~doc:"Test case: tc2, tc2r (rotated), tc5, tc6, galewsky or \
                 galewsky-balanced.")

let level =
  Arg.(value & opt int 4
       & info [ "level" ] ~docv:"N" ~doc:"Icosahedral bisection level.")

let lloyd =
  Arg.(value & opt int 3
       & info [ "lloyd" ] ~docv:"N" ~doc:"Lloyd (SCVT) relaxation iterations.")

let hours =
  Arg.(value & opt float 6. & info [ "hours" ] ~docv:"H" ~doc:"Simulated hours.")

let dt =
  Arg.(value & opt (some float) None
       & info [ "dt" ] ~docv:"S" ~doc:"Time step override in seconds.")

let engine =
  Arg.(value
       & opt (conv (engine_of_string, fun ppf _ -> Format.fprintf ppf "engine"))
           `Refactored
       & info [ "engine" ] ~docv:"E"
           ~doc:"Execution engine: original, refactored, parallel or \
                 distributed (simulated MPI over --domains ranks).")

let domains =
  Arg.(value & opt int 4
       & info [ "domains" ] ~docv:"N"
           ~doc:"Domain-pool size for the parallel engine.")

let dump =
  Arg.(value & opt (some string) None
       & info [ "dump" ] ~docv:"PATH"
           ~doc:"Write the final height field as CSV (lon,lat,h,h+b,b).")

let checkpoint =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"PATH"
           ~doc:"Save the final prognostic state for later --restart.")

let restart =
  Arg.(value & opt (some string) None
       & info [ "restart" ] ~docv:"PATH"
           ~doc:"Resume from a state saved with --checkpoint (the mesh                  options must match).")

let vtk =
  Arg.(value & opt (some string) None
       & info [ "vtk" ] ~docv:"PATH"
           ~doc:"Write the mesh and final height fields as a legacy VTK \
                 PolyData file for ParaView.")

let cmd =
  Cmd.v
    (Cmd.info "mpas_swe_run" ~doc:"Run the MPAS shallow-water model")
    Term.(const run $ case $ level $ lloyd $ hours $ dt $ engine $ domains
          $ dump $ checkpoint $ restart $ vtk)

let () = exit (Cmd.eval' cmd)
