open Mpas_mesh
open Mpas_partition

let mesh = lazy (Build.icosahedral ~level:4 ())
let hex = lazy (Planar_hex.create ~nx:8 ~ny:8 ~dc:500. ())

let partitioners =
  [ ("sfc", Partition.sfc); ("rcb", Partition.rcb); ("bfs", Partition.bfs) ]

let test_partitions_valid () =
  let m = Lazy.force mesh in
  List.iter
    (fun (name, f) ->
      List.iter
        (fun n_parts ->
          let p = f m ~n_parts in
          Alcotest.(check (list string))
            (Format.sprintf "%s %d parts valid" name n_parts)
            [] (Partition.check m p))
        [ 1; 2; 7; 16; 64 ])
    partitioners

let test_sizes_sum () =
  let m = Lazy.force mesh in
  let p = Partition.sfc m ~n_parts:16 in
  Alcotest.(check int) "sizes sum to cells" m.n_cells
    (Array.fold_left ( + ) 0 (Partition.sizes p))

let test_balanced () =
  let m = Lazy.force mesh in
  List.iter
    (fun (name, f) ->
      let p = f m ~n_parts:16 in
      Alcotest.(check bool)
        (name ^ " imbalance < 1.05")
        true
        (Partition.imbalance p < 1.05))
    partitioners

let test_edge_cut_reasonable () =
  (* Compact patches must beat random assignment by a wide margin. *)
  let m = Lazy.force mesh in
  let rng = Mpas_numerics.Rng.create 1L in
  let random =
    { Partition.n_parts = 16;
      owner = Array.init m.n_cells (fun _ -> Mpas_numerics.Rng.int rng 16) }
  in
  List.iter
    (fun (name, f) ->
      let p = f m ~n_parts:16 in
      Alcotest.(check bool)
        (name ^ " cut beats random")
        true
        (Partition.edge_cut m p * 3 < Partition.edge_cut m random))
    partitioners

let test_single_part_no_cut () =
  let m = Lazy.force mesh in
  let p = Partition.sfc m ~n_parts:1 in
  Alcotest.(check int) "no cut edges" 0 (Partition.edge_cut m p)

let test_bad_args () =
  let m = Lazy.force mesh in
  List.iter
    (fun n_parts ->
      Alcotest.(check bool)
        (Format.sprintf "n_parts %d rejected" n_parts)
        true
        (match Partition.sfc m ~n_parts with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ 0; -3; Lazy.force mesh |> fun m -> m.n_cells + 1 ]

let test_planar_partitioning () =
  let m = Lazy.force hex in
  let p = Partition.rcb m ~n_parts:4 in
  Alcotest.(check (list string)) "valid on plane" [] (Partition.check m p);
  Alcotest.(check bool) "balanced" true (Partition.imbalance p < 1.01)

(* --- halos -------------------------------------------------------------------- *)

let test_halo_valid () =
  let m = Lazy.force mesh in
  let p = Partition.sfc m ~n_parts:8 in
  let halos = Halo.build m p in
  Alcotest.(check (list string)) "halo consistent" [] (Halo.check m p halos)

let test_halo_summaries () =
  let m = Lazy.force mesh in
  let p = Partition.sfc m ~n_parts:8 in
  let halos = Halo.build m p in
  let sums = Halo.summaries halos in
  Alcotest.(check int) "one summary per rank" 8 (Array.length sums);
  Array.iter
    (fun (owned, boundary, neighbours) ->
      Alcotest.(check bool) "boundary <= owned" true (boundary <= owned);
      Alcotest.(check bool) "has neighbours" true (neighbours > 0))
    sums

let test_halo_single_rank () =
  let m = Lazy.force mesh in
  let p = Partition.sfc m ~n_parts:1 in
  let halos = Halo.build m p in
  Alcotest.(check int) "no boundary" 0 (List.length halos.(0).Halo.boundary);
  Alcotest.(check int) "no ghosts" 0 (List.length halos.(0).Halo.ghosts)

let test_halo_matches_analytic_shape () =
  (* The analytic sqrt model used for the unbuildable meshes must agree
     with measured halos within a factor ~2. *)
  let m = Lazy.force mesh in
  let p = Partition.sfc m ~n_parts:8 in
  let measured =
    Mpas_machine.Netmodel.patch_of_partition (Halo.summaries (Halo.build m p))
  in
  let analytic =
    Mpas_machine.Netmodel.analytic_patch ~cells:m.n_cells ~ranks:8
  in
  let r =
    float_of_int measured.Mpas_machine.Netmodel.boundary_cells
    /. float_of_int analytic.Mpas_machine.Netmodel.boundary_cells
  in
  Alcotest.(check bool)
    (Format.sprintf "measured/analytic halo ratio %.2f in [0.5, 2]" r)
    true
    (r > 0.5 && r < 2.)

(* --- properties ----------------------------------------------------------------- *)

let prop_every_ghost_is_someones_boundary =
  QCheck.Test.make ~name:"ghost/boundary duality" ~count:8
    QCheck.(int_range 2 24)
    (fun n_parts ->
      let m = Lazy.force mesh in
      let p = Partition.sfc m ~n_parts in
      Halo.check m p (Halo.build m p) = [])

let prop_partition_deterministic =
  QCheck.Test.make ~name:"partitioning is deterministic" ~count:5
    QCheck.(int_range 2 16)
    (fun n_parts ->
      let m = Lazy.force mesh in
      let a = Partition.sfc m ~n_parts and b = Partition.sfc m ~n_parts in
      a.Partition.owner = b.Partition.owner)

let () =
  Alcotest.run "partition"
    [
      ( "partitioners",
        [
          Alcotest.test_case "valid" `Quick test_partitions_valid;
          Alcotest.test_case "sizes" `Quick test_sizes_sum;
          Alcotest.test_case "balance" `Quick test_balanced;
          Alcotest.test_case "edge cut" `Quick test_edge_cut_reasonable;
          Alcotest.test_case "single part" `Quick test_single_part_no_cut;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          Alcotest.test_case "planar" `Quick test_planar_partitioning;
        ] );
      ( "halo",
        [
          Alcotest.test_case "valid" `Quick test_halo_valid;
          Alcotest.test_case "summaries" `Quick test_halo_summaries;
          Alcotest.test_case "single rank" `Quick test_halo_single_rank;
          Alcotest.test_case "analytic shape" `Quick
            test_halo_matches_analytic_shape;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_every_ghost_is_someones_boundary; prop_partition_deterministic ] );
    ]
