open Mpas_patterns
open Mpas_machine

let stats = Cost.stats_of_level 6
let p = Costmodel.default_params

(* --- hardware descriptors -------------------------------------------------- *)

let test_table2_numbers () =
  let cpu = Hw.xeon_e5_2680_v2 and mic = Hw.xeon_phi_5110p in
  Alcotest.(check int) "cpu cores" 10 cpu.Hw.cores;
  Alcotest.(check int) "mic cores" 60 mic.Hw.cores;
  Alcotest.(check int) "mic threads" 240 (Hw.threads mic);
  Alcotest.(check (float 0.01)) "cpu peak" 224. cpu.Hw.peak_gflops;
  Alcotest.(check (float 0.01)) "mic peak" 1010.8 mic.Hw.peak_gflops;
  Alcotest.(check int) "cpu simd" 4 cpu.Hw.simd_width_dp;
  Alcotest.(check int) "mic simd" 8 mic.Hw.simd_width_dp

let test_scalar_core_rate () =
  (* peak = cores * simd * scalar rate by construction. *)
  List.iter
    (fun d ->
      Alcotest.(check (float 1e-6))
        (d.Hw.name ^ " decomposition") d.Hw.peak_gflops
        (Hw.scalar_core_gflops d
        *. float_of_int (d.Hw.cores * d.Hw.simd_width_dp)))
    [ Hw.xeon_e5_2680_v2; Hw.xeon_phi_5110p ]

(* --- cost model -------------------------------------------------------------- *)

let test_flags_ladder_monotone () =
  (* Each cumulative optimization must not slow the device down. *)
  let mic = Hw.xeon_phi_5110p in
  let times =
    List.map
      (fun (_, flags) -> Costmodel.step_time_single_device mic p flags stats)
      Costmodel.fig6_ladder
  in
  let rec monotone = function
    | a :: b :: rest -> a >= b && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "ladder monotone" true (monotone times)

let test_refactoring_only_helps_irregular () =
  let mic = Hw.xeon_phi_5110p in
  let mt = { Costmodel.baseline with Costmodel.multithread = true } in
  let rf = { mt with Costmodel.refactored = true } in
  let w = Cost.instance_work stats "A1" in
  let t_irregular_mt = Costmodel.instance_time mic p mt ~irregular:true w in
  let t_irregular_rf = Costmodel.instance_time mic p rf ~irregular:true w in
  Alcotest.(check bool) "refactoring speeds up irregular loops" true
    (t_irregular_rf < t_irregular_mt /. 2.);
  let t_regular_mt = Costmodel.instance_time mic p mt ~irregular:false w in
  let t_regular_rf = Costmodel.instance_time mic p rf ~irregular:false w in
  Alcotest.(check (float 1e-12)) "regular loops unaffected" t_regular_mt
    t_regular_rf

let test_local_instances_cheaper_per_byte () =
  (* Locals stream; stencils pay the gather amplification. *)
  let mic = Hw.xeon_phi_5110p in
  let w = { Cost.items = 1e6; flops = 2e6; bytes = 24e6 } in
  let stencil =
    Costmodel.instance_time mic p Costmodel.fully_optimized ~irregular:false
      ~stencil:true w
  in
  let local =
    Costmodel.instance_time mic p Costmodel.fully_optimized ~irregular:false
      ~stencil:false w
  in
  Alcotest.(check bool) "stencil slower" true (stencil > local)

let test_step_time_scales_linearly () =
  let mic = Hw.xeon_phi_5110p in
  let t6 =
    Costmodel.step_time_single_device mic p Costmodel.fully_optimized
      (Cost.stats_of_level 6)
  in
  let t8 =
    Costmodel.step_time_single_device mic p Costmodel.fully_optimized
      (Cost.stats_of_level 8)
  in
  let r = t8 /. t6 in
  Alcotest.(check bool)
    (Format.sprintf "two levels = ~16x work (got %.1f)" r)
    true
    (r > 12. && r < 17.)

let test_calibration_anchors () =
  let worst = Calibration.worst_deviation () in
  Alcotest.(check bool)
    (Format.sprintf "worst anchor deviation %.3f < 0.15" worst)
    true (worst < 0.15)

(* --- simulator ---------------------------------------------------------------- *)

let link = Hw.pcie_gen2_x16

let task tid resource duration deps =
  { Simulate.tid; resource; duration; deps }

let test_simulate_serial_chain () =
  let r =
    Simulate.run ~link
      [
        task "a" Simulate.Host 1. [];
        task "b" Simulate.Host 2. [ ("a", 0.) ];
        task "c" Simulate.Host 3. [ ("b", 0.) ];
      ]
  in
  Alcotest.(check (float 1e-9)) "chain" 6. r.Simulate.makespan;
  Alcotest.(check (float 1e-9)) "host busy" 6. r.Simulate.host_busy

let test_simulate_parallel_resources () =
  let r =
    Simulate.run ~link
      [
        task "h" Simulate.Host 5. [];
        task "d" Simulate.Device 3. [];
      ]
  in
  Alcotest.(check (float 1e-9)) "overlap" 5. r.Simulate.makespan;
  let host_u, dev_u = Simulate.utilization r in
  Alcotest.(check (float 1e-9)) "host util" 1. host_u;
  Alcotest.(check (float 1e-9)) "device util" 0.6 dev_u

let test_simulate_transfer_cost () =
  let bytes = 6.2e9 in
  (* exactly one second at link bandwidth *)
  let r =
    Simulate.run ~link
      [
        task "producer" Simulate.Device 1. [];
        task "consumer" Simulate.Host 1. [ ("producer", bytes) ];
      ]
  in
  Alcotest.(check bool)
    (Format.sprintf "makespan %.3f ~ 3 + latency" r.Simulate.makespan)
    true
    (r.Simulate.makespan > 2.99 && r.Simulate.makespan < 3.01);
  Alcotest.(check bool) "link busy ~1s" true
    (r.Simulate.link_busy > 0.99 && r.Simulate.link_busy < 1.01)

let test_simulate_same_resource_no_transfer () =
  let r =
    Simulate.run ~link
      [
        task "producer" Simulate.Device 1. [];
        task "consumer" Simulate.Device 1. [ ("producer", 1e12) ];
      ]
  in
  Alcotest.(check (float 1e-9)) "no transfer" 2. r.Simulate.makespan

let test_simulate_rejects_bad_input () =
  Alcotest.(check bool)
    "unknown dep" true
    (match
       Simulate.run ~link [ task "a" Simulate.Host 1. [ ("ghost", 1.) ] ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "duplicate id" true
    (match
       Simulate.run ~link
         [ task "a" Simulate.Host 1. []; task "a" Simulate.Host 1. [] ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_timeline_ordered () =
  let r =
    Simulate.run ~link
      [
        task "a" Simulate.Host 1. [];
        task "b" Simulate.Device 1. [ ("a", 1e6) ];
      ]
  in
  match r.Simulate.timeline with
  | [ a; b ] ->
      Alcotest.(check bool) "starts ordered" true
        (a.Simulate.start <= b.Simulate.start);
      Alcotest.(check bool) "transfer delays b" true
        (b.Simulate.start > a.Simulate.finish)
  | _ -> Alcotest.fail "expected two entries"

let test_render_timeline () =
  let r =
    Simulate.run ~link
      [
        task "a" Simulate.Host 1. [];
        task "b" Simulate.Device 2. [ ("a", 1e6) ];
      ]
  in
  let s = Simulate.render_timeline ~width:40 r in
  Alcotest.(check bool) "mentions both tasks" true
    (let has sub =
       let n = String.length s and k = String.length sub in
       let rec loop i = i + k <= n && (String.sub s i k = sub || loop (i + 1)) in
       loop 0
     in
     has "a" && has "b" && has "makespan" && has "host" && has "device")

let test_chrome_trace () =
  let r =
    Simulate.run ~link
      [ task "alpha" Simulate.Host 1. []; task "beta" Simulate.Device 2. [] ]
  in
  let json = Simulate.to_chrome_trace r in
  Alcotest.(check bool) "array of complete events" true
    (String.length json > 10 && json.[0] = '[' && json.[String.length json - 1] = ']');
  let has sub =
    let n = String.length json and k = String.length sub in
    let rec loop i = i + k <= n && (String.sub json i k = sub || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "names present" true (has "alpha" && has "beta");
  Alcotest.(check bool) "phase X" true (has {|"ph":"X"|});
  Alcotest.(check bool) "two lanes" true (has {|"tid":1|} && has {|"tid":2|})

let test_k20x_descriptor () =
  let g = Hw.tesla_k20x in
  (* Peak decomposes into the nominal cores x lanes x freq x 2 FMA. *)
  Alcotest.(check bool) "peak consistent" true
    (Mpas_numerics.Stats.rel_diff g.Hw.peak_gflops
       (float_of_int (g.Hw.cores * g.Hw.simd_width_dp)
       *. g.Hw.freq_ghz *. 2.)
    < 0.01);
  (* Stronger device: faster fully-optimized step time than the Phi. *)
  let t d =
    Costmodel.step_time_single_device d p Costmodel.fully_optimized stats
  in
  Alcotest.(check bool) "K20X beats the Phi when fully used" true
    (t Hw.tesla_k20x < t Hw.xeon_phi_5110p)

(* --- network model -------------------------------------------------------------- *)

let test_patch_analytic () =
  let one = Netmodel.analytic_patch ~cells:40962 ~ranks:1 in
  Alcotest.(check int) "single rank has no halo" 0 one.Netmodel.boundary_cells;
  let p4 = Netmodel.analytic_patch ~cells:40962 ~ranks:4 in
  Alcotest.(check bool) "boundary < owned" true
    (p4.Netmodel.boundary_cells < p4.Netmodel.owned_cells);
  Alcotest.(check bool) "boundary ~ sqrt" true
    (let expect = 3.8 *. sqrt (float_of_int p4.Netmodel.owned_cells) in
     Float.abs (float_of_int p4.Netmodel.boundary_cells -. expect) < 2.)

let test_exchange_time_behaviour () =
  let net = Hw.fdr_infiniband in
  let small = Netmodel.analytic_patch ~cells:40962 ~ranks:64 in
  let large = Netmodel.analytic_patch ~cells:2621442 ~ranks:64 in
  let ts = Netmodel.exchange_time net ~fields:2 small in
  let tl = Netmodel.exchange_time net ~fields:2 large in
  Alcotest.(check bool) "bigger halo, longer exchange" true (tl > ts);
  let staged =
    Netmodel.exchange_time net ~device_link:Hw.pcie_gen2_x16 ~fields:2 large
  in
  Alcotest.(check bool) "device staging adds time" true (staged > tl);
  Alcotest.(check (float 0.))
    "no neighbours, no cost" 0.
    (Netmodel.exchange_time net ~fields:2
       (Netmodel.analytic_patch ~cells:1000 ~ranks:1))

let test_comm_time_per_step () =
  let net = Hw.fdr_infiniband in
  let patch = Netmodel.analytic_patch ~cells:655362 ~ranks:16 in
  let per_exchange = Netmodel.exchange_time net ~fields:2 patch in
  Alcotest.(check (float 1e-12))
    "eight exchanges"
    (8. *. per_exchange)
    (Netmodel.comm_time_per_step net patch)

(* --- properties -------------------------------------------------------------------- *)

let prop_makespan_bounds =
  (* Makespan is at least the per-resource busy time and at most the
     serial sum of everything. *)
  QCheck.Test.make ~name:"makespan bounds" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 12) (pair bool (float_bound_inclusive 3.)))
    (fun specs ->
      let tasks =
        List.mapi
          (fun i (on_host, d) ->
            let deps = if i = 0 then [] else [ (Format.sprintf "t%d" (i - 1), 0.) ] in
            task (Format.sprintf "t%d" i)
              (if on_host then Simulate.Host else Simulate.Device)
              (Float.abs d) deps)
          specs
      in
      let r = Simulate.run ~link tasks in
      let total = List.fold_left (fun acc (_, d) -> acc +. Float.abs d) 0. specs in
      r.Simulate.makespan >= Float.max r.Simulate.host_busy r.Simulate.device_busy -. 1e-9
      && r.Simulate.makespan <= total +. 1e-9)

let prop_step_time_decreasing_in_threads =
  QCheck.Test.make ~name:"more optimization never slower" ~count:20
    QCheck.(int_range 1 8)
    (fun level ->
      let s = Cost.stats_of_level level in
      let mic = Hw.xeon_phi_5110p in
      Costmodel.step_time_single_device mic p Costmodel.fully_optimized s
      <= Costmodel.step_time_single_device mic p Costmodel.baseline s)

let () =
  Alcotest.run "machine"
    [
      ( "hardware",
        [
          Alcotest.test_case "table2" `Quick test_table2_numbers;
          Alcotest.test_case "scalar rate" `Quick test_scalar_core_rate;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "ladder monotone" `Quick test_flags_ladder_monotone;
          Alcotest.test_case "refactoring scope" `Quick
            test_refactoring_only_helps_irregular;
          Alcotest.test_case "stencil amplification" `Quick
            test_local_instances_cheaper_per_byte;
          Alcotest.test_case "linear scaling" `Quick
            test_step_time_scales_linearly;
          Alcotest.test_case "calibration" `Quick test_calibration_anchors;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "serial chain" `Quick test_simulate_serial_chain;
          Alcotest.test_case "parallel resources" `Quick
            test_simulate_parallel_resources;
          Alcotest.test_case "transfer cost" `Quick test_simulate_transfer_cost;
          Alcotest.test_case "no transfer same side" `Quick
            test_simulate_same_resource_no_transfer;
          Alcotest.test_case "bad input" `Quick test_simulate_rejects_bad_input;
          Alcotest.test_case "timeline" `Quick test_timeline_ordered;
          Alcotest.test_case "gantt render" `Quick test_render_timeline;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
          Alcotest.test_case "k20x" `Quick test_k20x_descriptor;
        ] );
      ( "network",
        [
          Alcotest.test_case "analytic patch" `Quick test_patch_analytic;
          Alcotest.test_case "exchange time" `Quick test_exchange_time_behaviour;
          Alcotest.test_case "per step" `Quick test_comm_time_per_step;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_makespan_bounds; prop_step_time_decreasing_in_threads ] );
    ]
