open Mpas_numerics
open Mpas_mesh
open Mpas_gen

let mesh = lazy (Build.icosahedral ~level:3 ~lloyd_iters:2 ())
let gravity = 9.80616
let dt = 600.
let apvm_factor = 0.5

(* Random but reproducible input fields shared by all comparisons. *)
let fields =
  lazy
    (let m = Lazy.force mesh in
     let r = Rng.create 17L in
     let arr n lo hi = Array.init n (fun _ -> Rng.uniform r lo hi) in
     let u = arr m.n_edges (-10.) 10. in
     let h = arr m.n_cells 900. 1100. in
     let b = arr m.n_cells 0. 100. in
     let open Mpas_swe in
     let diag = Fields.alloc_diagnostics m in
     Operators.d2fdx2 m ~h ~out:diag.d2fdx2_cell;
     Operators.h_edge m ~order:Config.Fourth ~h
       ~d2fdx2_cell:diag.d2fdx2_cell ~out:diag.h_edge;
     Operators.kinetic_energy m ~u ~out:diag.ke;
     Operators.divergence m ~u ~out:diag.divergence;
     Operators.vorticity m ~u ~out:diag.vorticity;
     Operators.h_vertex m ~h ~out:diag.h_vertex;
     Operators.pv_vertex m ~vorticity:diag.vorticity ~h_vertex:diag.h_vertex
       ~out:diag.pv_vertex;
     Operators.pv_cell m ~pv_vertex:diag.pv_vertex ~out:diag.pv_cell;
     Operators.tangential_velocity m ~u ~out:diag.v_tangential;
     Operators.grad_pv m ~pv_cell:diag.pv_cell ~pv_vertex:diag.pv_vertex
       ~out_n:diag.grad_pv_n ~out_t:diag.grad_pv_t;
     Operators.pv_edge m ~apvm_factor ~dt ~pv_vertex:diag.pv_vertex
       ~grad_pv_n:diag.grad_pv_n ~grad_pv_t:diag.grad_pv_t ~u
       ~v_tangential:diag.v_tangential ~out:diag.pv_edge;
     (u, h, b, diag))

let env () =
  let m = Lazy.force mesh in
  let u, h, b, diag = Lazy.force fields in
  {
    Stencil.mesh = m;
    fields =
      [
        ("u", u); ("h", h); ("b", b);
        ("h_edge", diag.Mpas_swe.Fields.h_edge);
        ("ke", diag.Mpas_swe.Fields.ke);
        ("d2fdx2_cell", diag.Mpas_swe.Fields.d2fdx2_cell);
        ("divergence", diag.Mpas_swe.Fields.divergence);
        ("vorticity", diag.Mpas_swe.Fields.vorticity);
        ("h_vertex", diag.Mpas_swe.Fields.h_vertex);
        ("pv_vertex", diag.Mpas_swe.Fields.pv_vertex);
        ("pv_cell", diag.Mpas_swe.Fields.pv_cell);
        ("v", diag.Mpas_swe.Fields.v_tangential);
        ("grad_pv_n", diag.Mpas_swe.Fields.grad_pv_n);
        ("grad_pv_t", diag.Mpas_swe.Fields.grad_pv_t);
        ("pv_edge", diag.Mpas_swe.Fields.pv_edge);
      ];
  }

let all_specs () = Library.specs ~gravity ~apvm_dt:(apvm_factor *. dt)

let run_spec name =
  let env = env () in
  let k = Library.spec ~gravity ~apvm_dt:(apvm_factor *. dt) name in
  let out = Array.make (Stencil.out_length env.Stencil.mesh k) 0. in
  Stencil.run env k ~out;
  out

(* Relative agreement: the IR may associate multiplications differently
   from the handwritten loops, so exact equality is not guaranteed. *)
let close name got expected =
  let scale = Float.max (Stats.l2_norm expected) 1e-30 in
  let diff = Stats.l2_diff got expected in
  Alcotest.(check bool)
    (Format.sprintf "%s: rel l2 diff %.2e" name (diff /. scale))
    true
    (diff /. scale < 1e-13)

(* --- static checking --------------------------------------------------- *)

let test_all_specs_well_typed () =
  List.iter
    (fun (name, k) ->
      Alcotest.(check (list string)) (name ^ " type-checks") []
        (Stencil.check k))
    (all_specs ())

let test_checker_rejects_ill_typed () =
  let bad body reads out_space =
    Stencil.check
      { Stencil.kernel_name = "bad"; out_space; reads; body }
    <> []
  in
  let open Stencil in
  Alcotest.(check bool) "dc at cells" true (bad (Geom Dc) [] Cells);
  Alcotest.(check bool) "coef outside sum" true (bad Coef [] Cells);
  Alcotest.(check bool) "cell1 of a cell" true
    (bad (Cell1 (Const 1.)) [] Cells);
  Alcotest.(check bool) "undeclared field" true (bad (Field "ghost") [] Cells);
  Alcotest.(check bool) "field at wrong space" true
    (bad (Field "u") [ ("u", Edges) ] Cells);
  Alcotest.(check bool) "relation at wrong space" true
    (bad (Sum (Edges_of_vertex, Const 1.)) [] Cells);
  Alcotest.(check bool) "other_cell outside edge sum" true
    (bad (Cell1 (Const 0.)) [] Vertices
    || bad (Sum (Edges_of_edge, Other_cell (Const 1.))) [] Edges)

(* --- equivalence with the handwritten kernels ---------------------------- *)

let test_divergence () =
  let m = Lazy.force mesh in
  let u, _, _, _ = Lazy.force fields in
  let expected = Array.make m.n_cells 0. in
  Mpas_swe.Operators.divergence m ~u ~out:expected;
  close "A3" (run_spec "A3 divergence") expected

let test_tend_h () =
  let m = Lazy.force mesh in
  let u, _, _, diag = Lazy.force fields in
  let expected = Array.make m.n_cells 0. in
  Mpas_swe.Operators.tend_h m ~h_edge:diag.Mpas_swe.Fields.h_edge ~u
    ~out:expected;
  close "A1" (run_spec "A1 tend_h") expected

let test_kinetic_energy () =
  let m = Lazy.force mesh in
  let u, _, _, _ = Lazy.force fields in
  let expected = Array.make m.n_cells 0. in
  Mpas_swe.Operators.kinetic_energy m ~u ~out:expected;
  close "A2" (run_spec "A2 kinetic energy") expected

let test_d2fdx2 () =
  let m = Lazy.force mesh in
  let _, h, _, _ = Lazy.force fields in
  let expected = Array.make m.n_cells 0. in
  Mpas_swe.Operators.d2fdx2 m ~h ~out:expected;
  close "H2" (run_spec "H2 d2fdx2") expected

let test_h_edge () =
  let _, _, _, diag = Lazy.force fields in
  close "B2" (run_spec "B2 h_edge (4th order)") diag.Mpas_swe.Fields.h_edge

let test_vorticity () =
  let _, _, _, diag = Lazy.force fields in
  close "D1" (run_spec "D1 vorticity") diag.Mpas_swe.Fields.vorticity

let test_h_vertex_pv_chain () =
  let _, _, _, diag = Lazy.force fields in
  close "C2" (run_spec "C2 h_vertex") diag.Mpas_swe.Fields.h_vertex;
  close "D2" (run_spec "D2 pv_vertex") diag.Mpas_swe.Fields.pv_vertex;
  close "E" (run_spec "E pv_cell") diag.Mpas_swe.Fields.pv_cell

let test_tangential_and_apvm () =
  let _, _, _, diag = Lazy.force fields in
  close "G" (run_spec "G tangential velocity")
    diag.Mpas_swe.Fields.v_tangential;
  close "H1n" (run_spec "H1 grad_pv_n") diag.Mpas_swe.Fields.grad_pv_n;
  close "H1t" (run_spec "H1 grad_pv_t") diag.Mpas_swe.Fields.grad_pv_t;
  close "F" (run_spec "F pv_edge") diag.Mpas_swe.Fields.pv_edge

let test_dissipation_term () =
  let m = Lazy.force mesh in
  let _, _, _, diag = Lazy.force fields in
  let expected = Array.make m.n_edges 0. in
  Mpas_swe.Operators.velocity_laplacian m
    ~divergence:diag.Mpas_swe.Fields.divergence
    ~vorticity:diag.Mpas_swe.Fields.vorticity ~out:expected;
  close "C1" (run_spec "C1 dissipation term") expected

let test_tend_u () =
  let m = Lazy.force mesh in
  let u, h, b, diag = Lazy.force fields in
  let expected = Array.make m.n_edges 0. in
  Mpas_swe.Operators.tend_u m ~gravity ~h ~b ~ke:diag.Mpas_swe.Fields.ke
    ~h_edge:diag.Mpas_swe.Fields.h_edge ~u
    ~pv_edge:diag.Mpas_swe.Fields.pv_edge ~out:expected;
  close "B1" (run_spec "B1 tend_u") expected

(* --- execution modes ------------------------------------------------------ *)

let test_pool_and_subset_execution () =
  let env = env () in
  let k = Library.spec ~gravity ~apvm_dt:0. "A3 divergence" in
  let n = Stencil.out_length env.Stencil.mesh k in
  let serial = Array.make n 0. in
  Stencil.run env k ~out:serial;
  Mpas_par.Pool.with_pool ~n_domains:3 (fun pool ->
      let par = Array.make n 0. in
      Stencil.run ~pool env k ~out:par;
      Alcotest.(check bool) "pool bitwise equal" true (serial = par));
  let subset = Array.init (n / 2) (fun i -> 2 * i) in
  let partial = Array.make n nan in
  Stencil.run ~on:subset env k ~out:partial;
  Array.iteri
    (fun i x ->
      if i mod 2 = 0 && i < n then
        Alcotest.(check bool) "subset computed" true (Float.equal x serial.(i))
      else Alcotest.(check bool) "others untouched" true (Float.is_nan x))
    partial

let test_unknown_field_raises () =
  let m = Lazy.force mesh in
  let k = Library.spec ~gravity ~apvm_dt:0. "A3 divergence" in
  let env = { Stencil.mesh = m; fields = [] } in
  Alcotest.(check bool) "raises" true
    (match Stencil.eval_at env k 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- emitter ---------------------------------------------------------------- *)

let contains hay needle =
  let n = String.length hay and k = String.length needle in
  let rec loop i = i + k <= n && (String.sub hay i k = needle || loop (i + 1)) in
  loop 0

let test_emitter_output () =
  List.iter
    (fun (name, k) ->
      let src = Emit.to_ocaml k in
      Alcotest.(check bool) (name ^ " has loop header") true
        (contains src "for "
        && contains src "out.("
        && contains src "done");
      (* Every read field appears in the source. *)
      List.iter
        (fun (f, _) ->
          Alcotest.(check bool)
            (name ^ " uses " ^ f)
            true
            (contains src (f ^ ".(")))
        k.Stencil.reads)
    (all_specs ())

let test_emitter_loop_bound_matches_space () =
  let src k = Emit.to_ocaml (Library.spec ~gravity ~apvm_dt:0. k) in
  Alcotest.(check bool) "cells loop" true
    (contains (src "A3 divergence") "m.n_cells - 1");
  Alcotest.(check bool) "edges loop" true
    (contains (src "B2 h_edge (4th order)") "m.n_edges - 1");
  Alcotest.(check bool) "vertices loop" true
    (contains (src "D1 vorticity") "m.n_vertices - 1")

(* --- properties ------------------------------------------------------------- *)

let prop_ir_matches_handwritten_divergence =
  QCheck.Test.make ~name:"IR divergence matches for random fields" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let m = Lazy.force mesh in
      let r = Rng.create (Int64.of_int seed) in
      let u = Array.init m.n_edges (fun _ -> Rng.uniform r (-1.) 1.) in
      let env = { Stencil.mesh = m; fields = [ ("u", u) ] } in
      let k = Library.spec ~gravity ~apvm_dt:0. "A3 divergence" in
      let out = Array.make m.n_cells 0. in
      Stencil.run env k ~out;
      let expected = Array.make m.n_cells 0. in
      Mpas_swe.Operators.divergence m ~u ~out:expected;
      Stats.max_abs_diff out expected < 1e-12)

let prop_constant_kernel =
  QCheck.Test.make ~name:"constant kernels fill with the constant" ~count:20
    QCheck.(float_bound_inclusive 100.)
    (fun x ->
      let m = Lazy.force mesh in
      let k =
        { Stencil.kernel_name = "const"; out_space = Stencil.Edges;
          reads = []; body = Stencil.Const x }
      in
      let out = Array.make m.n_edges nan in
      Stencil.run { Stencil.mesh = m; fields = [] } k ~out;
      Array.for_all (fun y -> Float.equal y x) out)

let () =
  Alcotest.run "gen"
    [
      ( "static checking",
        [
          Alcotest.test_case "library well-typed" `Quick
            test_all_specs_well_typed;
          Alcotest.test_case "rejections" `Quick test_checker_rejects_ill_typed;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "A3 divergence" `Quick test_divergence;
          Alcotest.test_case "A1 tend_h" `Quick test_tend_h;
          Alcotest.test_case "A2 ke" `Quick test_kinetic_energy;
          Alcotest.test_case "H2 d2fdx2" `Quick test_d2fdx2;
          Alcotest.test_case "B2 h_edge" `Quick test_h_edge;
          Alcotest.test_case "D1 vorticity" `Quick test_vorticity;
          Alcotest.test_case "PV chain" `Quick test_h_vertex_pv_chain;
          Alcotest.test_case "tangential + APVM" `Quick
            test_tangential_and_apvm;
          Alcotest.test_case "C1 dissipation" `Quick test_dissipation_term;
          Alcotest.test_case "B1 tend_u" `Quick test_tend_u;
        ] );
      ( "execution",
        [
          Alcotest.test_case "pool + subset" `Quick
            test_pool_and_subset_execution;
          Alcotest.test_case "unknown field" `Quick test_unknown_field_raises;
        ] );
      ( "emitter",
        [
          Alcotest.test_case "source shape" `Quick test_emitter_output;
          Alcotest.test_case "loop bounds" `Quick
            test_emitter_loop_bound_matches_space;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ir_matches_handwritten_divergence; prop_constant_kernel ] );
    ]
