open Mpas_numerics

let check_float = Alcotest.(check (float 1e-12))

(* --- Vec3 ---------------------------------------------------------------- *)

let test_vec3_basics () =
  let a = Vec3.make 1. 2. 3. and b = Vec3.make (-2.) 0.5 4. in
  check_float "dot" 11. (Vec3.dot a b);
  check_float "norm" (sqrt 14.) (Vec3.norm a);
  Alcotest.(check bool)
    "cross orthogonal" true
    (Float.abs (Vec3.dot (Vec3.cross a b) a) < 1e-12
    && Float.abs (Vec3.dot (Vec3.cross a b) b) < 1e-12);
  check_float "dist" 0. (Vec3.dist a a);
  Alcotest.(check bool)
    "axpy" true
    (Vec3.approx_equal (Vec3.axpy 2. a b) (Vec3.make 0. 4.5 10.))

let test_vec3_normalize () =
  let v = Vec3.normalize (Vec3.make 3. 4. 0.) in
  check_float "unit" 1. (Vec3.norm v);
  Alcotest.check_raises "zero" (Invalid_argument "Vec3.normalize: zero vector")
    (fun () -> ignore (Vec3.normalize Vec3.zero))

let test_vec3_triple () =
  check_float "triple e_x e_y e_z" 1. (Vec3.triple Vec3.ex Vec3.ey Vec3.ez);
  check_float "triple degenerate" 0. (Vec3.triple Vec3.ex Vec3.ex Vec3.ey)

(* --- Sphere -------------------------------------------------------------- *)

let test_lonlat_roundtrip () =
  List.iter
    (fun (lon, lat) ->
      let p = Sphere.of_lonlat lon lat in
      check_float "unit" 1. (Vec3.norm p);
      let lon', lat' = Sphere.to_lonlat p in
      check_float "lat" lat lat';
      if Float.abs lat < 1.5 then check_float "lon" lon lon')
    [ (0., 0.); (1., 0.3); (-2., -1.2); (3., 1.5); (0.5, 0.) ]

let test_arc_length () =
  let a = Sphere.of_lonlat 0. 0. and b = Sphere.of_lonlat (Float.pi /. 2.) 0. in
  check_float "quarter" (Float.pi /. 2.) (Sphere.arc_length a b);
  check_float "self" 0. (Sphere.arc_length a a);
  let c = Vec3.neg a in
  check_float "antipodal" Float.pi (Sphere.arc_length a c)

let test_triangle_area_octant () =
  (* One octant of the sphere has area 4*pi/8 = pi/2. *)
  check_float "octant" (Float.pi /. 2.)
    (Sphere.triangle_area Vec3.ex Vec3.ey Vec3.ez)

let test_circumcenter () =
  let a = Sphere.of_lonlat 0.1 0.2
  and b = Sphere.of_lonlat 0.4 0.1
  and c = Sphere.of_lonlat 0.3 0.5 in
  let cc = Sphere.circumcenter a b c in
  check_float "unit" 1. (Vec3.norm cc);
  let da = Sphere.arc_length cc a in
  check_float "equidistant b" da (Sphere.arc_length cc b);
  check_float "equidistant c" da (Sphere.arc_length cc c)

let test_polygon_area_hemisphere () =
  (* A square around the north pole covering lat > 0 approximates the
     hemisphere as the number of corners grows. *)
  let n = 256 in
  let corners =
    Array.init n (fun i ->
        Sphere.of_lonlat (2. *. Float.pi *. float_of_int i /. float_of_int n) 0.)
  in
  Alcotest.(check (float 1e-3))
    "hemisphere" (2. *. Float.pi)
    (Sphere.polygon_area corners)

let test_tangent_basis () =
  let p = Sphere.of_lonlat 0.7 (-0.3) in
  let east, north = Sphere.tangent_basis p in
  check_float "east unit" 1. (Vec3.norm east);
  check_float "north unit" 1. (Vec3.norm north);
  check_float "east tangent" 0. (Vec3.dot east p);
  check_float "north tangent" 0. (Vec3.dot north p);
  check_float "orthogonal" 0. (Vec3.dot east north);
  (* Right-handed: east x north = up. *)
  Alcotest.(check bool)
    "right-handed" true
    (Vec3.approx_equal ~eps:1e-12 (Vec3.cross east north) p)

let test_project_tangent () =
  let p = Sphere.of_lonlat 1.1 0.4 in
  let v = Vec3.make 1. (-2.) 0.5 in
  check_float "tangent" 0. (Vec3.dot (Sphere.project_tangent p v) p)

(* --- Mat3 ---------------------------------------------------------------- *)

let test_mat3_identity () =
  let v = Vec3.make 1. 2. 3. in
  Alcotest.(check bool)
    "id * v" true
    (Vec3.approx_equal (Mat3.mul_vec (Mat3.identity ()) v) v)

let test_mat3_inv () =
  let m = Mat3.zero () in
  Mat3.add_outer m 2. (Vec3.make 1. 0.5 0.);
  Mat3.add_outer m 1. (Vec3.make 0. 1. 0.3);
  Mat3.add_outer m 3. (Vec3.make 0.2 0. 1.);
  let mi = Mat3.inv m in
  let v = Vec3.make 0.3 (-1.) 2. in
  Alcotest.(check bool)
    "inv(m) (m v) = v" true
    (Vec3.approx_equal ~eps:1e-10 (Mat3.mul_vec mi (Mat3.mul_vec m v)) v)

let test_mat3_singular () =
  let m = Mat3.zero () in
  Mat3.add_outer m 1. (Vec3.make 1. 0. 0.);
  Alcotest.(check bool)
    "singular raises" true
    (match Mat3.inv m with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_ranges () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (x >= 0. && x < 1.);
    let n = Rng.int r 17 in
    Alcotest.(check bool) "int in [0,17)" true (n >= 0 && n < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create 1L in
  let b = Rng.split a in
  let xa = Rng.next_int64 a and xb = Rng.next_int64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_shuffle_permutes () =
  let r = Rng.create 5L in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle r b;
  Array.sort compare b;
  Alcotest.(check bool) "same multiset" true (a = b)

(* --- Stats --------------------------------------------------------------- *)

let test_stats_basics () =
  let a = [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 (Stats.mean a);
  check_float "variance" 1.25 (Stats.variance a);
  check_float "median" 2.5 (Stats.median a);
  check_float "p0" 1. (Stats.percentile 0. a);
  check_float "p100" 4. (Stats.percentile 100. a);
  let lo, hi = Stats.min_max a in
  check_float "min" 1. lo;
  check_float "max" 4. hi

let test_stats_linear_fit () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = Array.map (fun x -> (2.5 *. x) -. 1.) xs in
  let slope, intercept = Stats.linear_fit xs ys in
  check_float "slope" 2.5 slope;
  check_float "intercept" (-1.) intercept

let test_stats_norms () =
  let a = [| 3.; 4. |] and b = [| 0.; 0. |] in
  check_float "l2" 5. (Stats.l2_norm a);
  check_float "l2 diff" 5. (Stats.l2_diff a b);
  check_float "max diff" 4. (Stats.max_abs_diff a b);
  check_float "rms" (5. /. sqrt 2.) (Stats.rms a);
  check_float "rel diff" 1. (Stats.rel_diff 0. 5.)

let test_stats_empty_raises () =
  Alcotest.(check bool)
    "mean of empty raises" true
    (match Stats.mean [||] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Table --------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check int)
        "aligned" (String.length (List.hd lines)) (String.length l))
    lines

let test_table_arity_mismatch () =
  let t = Table.create [ "a" ] in
  Alcotest.(check bool)
    "wrong arity raises" true
    (match Table.add_row t [ "1"; "2" ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- properties ----------------------------------------------------------- *)

let vec_gen =
  QCheck.Gen.(
    map3 Vec3.make (float_range (-10.) 10.) (float_range (-10.) 10.)
      (float_range (-10.) 10.))

let arbitrary_vec = QCheck.make ~print:Vec3.to_string vec_gen

let prop_cross_anticommutes =
  QCheck.Test.make ~name:"cross anticommutes" ~count:200
    (QCheck.pair arbitrary_vec arbitrary_vec) (fun (a, b) ->
      Vec3.approx_equal ~eps:1e-9 (Vec3.cross a b) (Vec3.neg (Vec3.cross b a)))

let prop_triple_invariant_under_rotation =
  QCheck.Test.make ~name:"triple product cyclic" ~count:200
    (QCheck.triple arbitrary_vec arbitrary_vec arbitrary_vec)
    (fun (a, b, c) ->
      Float.abs (Vec3.triple a b c -. Vec3.triple b c a) < 1e-8)

let prop_arc_symmetric =
  QCheck.Test.make ~name:"arc_length symmetric" ~count:200
    (QCheck.pair (QCheck.pair QCheck.(float_bound_inclusive 6.) QCheck.(float_bound_inclusive 1.5))
       (QCheck.pair QCheck.(float_bound_inclusive 6.) QCheck.(float_bound_inclusive 1.5)))
    (fun ((l1, t1), (l2, t2)) ->
      let a = Sphere.of_lonlat l1 t1 and b = Sphere.of_lonlat l2 t2 in
      Float.abs (Sphere.arc_length a b -. Sphere.arc_length b a) < 1e-12)

let prop_triangle_area_additive =
  (* Splitting a spherical triangle at an interior point preserves
     total area. *)
  QCheck.Test.make ~name:"spherical triangle area additive" ~count:100
    (QCheck.triple
       (QCheck.pair QCheck.(float_bound_inclusive 3.) QCheck.(float_bound_inclusive 1.2))
       (QCheck.pair QCheck.(float_bound_inclusive 3.) QCheck.(float_bound_inclusive 1.2))
       (QCheck.pair QCheck.(float_bound_inclusive 3.) QCheck.(float_bound_inclusive 1.2)))
    (fun ((l1, t1), (l2, t2), (l3, t3)) ->
      let a = Sphere.of_lonlat l1 t1
      and b = Sphere.of_lonlat (l2 +. 0.4) (-.t2)
      and c = Sphere.of_lonlat (l3 +. 1.1) (t3 /. 2.) in
      let whole = Sphere.triangle_area a b c in
      QCheck.assume (whole > 1e-6 && whole < 3.);
      let p = Vec3.normalize (Vec3.add a (Vec3.add b c)) in
      let parts =
        Sphere.triangle_area a b p +. Sphere.triangle_area b c p
        +. Sphere.triangle_area c a p
      in
      Float.abs (whole -. parts) < 1e-9 *. Float.max 1. whole)

let prop_polygon_area_matches_triangle =
  QCheck.Test.make ~name:"polygon area of a triangle" ~count:100
    (QCheck.pair
       (QCheck.pair QCheck.(float_bound_inclusive 3.) QCheck.(float_bound_inclusive 1.2))
       (QCheck.pair QCheck.(float_bound_inclusive 3.) QCheck.(float_bound_inclusive 1.2)))
    (fun ((l1, t1), (l2, t2)) ->
      let a = Sphere.of_lonlat l1 t1
      and b = Sphere.of_lonlat (l2 +. 0.5) (-.t2)
      and c = Sphere.of_lonlat (l1 +. 1.5) (t2 /. 3.) in
      let tri = Sphere.triangle_area a b c in
      QCheck.assume (tri > 1e-6 && tri < 3.);
      Float.abs (Sphere.polygon_area [| a; b; c |] -. tri)
      < 1e-9 *. Float.max 1. tri)

let prop_geodesic_midpoint_equidistant =
  QCheck.Test.make ~name:"geodesic midpoint equidistant" ~count:100
    (QCheck.pair
       (QCheck.pair QCheck.(float_bound_inclusive 6.) QCheck.(float_bound_inclusive 1.4))
       (QCheck.pair QCheck.(float_bound_inclusive 6.) QCheck.(float_bound_inclusive 1.4)))
    (fun ((l1, t1), (l2, t2)) ->
      let a = Sphere.of_lonlat l1 t1 and b = Sphere.of_lonlat l2 (-.t2) in
      QCheck.assume (Vec3.dist a b > 1e-6 && Vec3.dist a (Vec3.neg b) > 1e-6);
      let mid = Sphere.geodesic_midpoint a b in
      Float.abs (Sphere.arc_length mid a -. Sphere.arc_length mid b) < 1e-9)

let vec_arb_nonzero =
  QCheck.make ~print:Vec3.to_string
    QCheck.Gen.(
      map3 Vec3.make (float_range 0.2 3.) (float_range (-3.) (-0.2))
        (float_range 0.5 2.))

let prop_mat3_inverse_roundtrip =
  QCheck.Test.make ~name:"mat3 inverse roundtrip" ~count:100
    (QCheck.triple vec_arb_nonzero vec_arb_nonzero vec_arb_nonzero)
    (fun (a, b, c) ->
      QCheck.assume (Float.abs (Vec3.triple a b c) > 0.1);
      let m = Mat3.zero () in
      Mat3.add_outer m 1. a;
      Mat3.add_outer m 1.5 b;
      Mat3.add_outer m 2. c;
      match Mat3.inv m with
      | mi ->
          let v = Vec3.make 1. (-2.) 0.5 in
          Vec3.approx_equal ~eps:1e-6 (Mat3.mul_vec mi (Mat3.mul_vec m v)) v
      | exception Invalid_argument _ -> true)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone" ~count:100
    QCheck.(array_of_size Gen.(int_range 1 50) (float_bound_inclusive 100.))
    (fun a ->
      let p25 = Stats.percentile 25. a
      and p75 = Stats.percentile 75. a in
      p25 <= p75)

let () =
  Alcotest.run "numerics"
    [
      ( "vec3",
        [
          Alcotest.test_case "basics" `Quick test_vec3_basics;
          Alcotest.test_case "normalize" `Quick test_vec3_normalize;
          Alcotest.test_case "triple" `Quick test_vec3_triple;
        ] );
      ( "sphere",
        [
          Alcotest.test_case "lonlat roundtrip" `Quick test_lonlat_roundtrip;
          Alcotest.test_case "arc length" `Quick test_arc_length;
          Alcotest.test_case "octant area" `Quick test_triangle_area_octant;
          Alcotest.test_case "circumcenter" `Quick test_circumcenter;
          Alcotest.test_case "polygon area" `Quick test_polygon_area_hemisphere;
          Alcotest.test_case "tangent basis" `Quick test_tangent_basis;
          Alcotest.test_case "project tangent" `Quick test_project_tangent;
        ] );
      ( "mat3",
        [
          Alcotest.test_case "identity" `Quick test_mat3_identity;
          Alcotest.test_case "inverse" `Quick test_mat3_inv;
          Alcotest.test_case "singular" `Quick test_mat3_singular;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "norms" `Quick test_stats_norms;
          Alcotest.test_case "empty" `Quick test_stats_empty_raises;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity_mismatch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cross_anticommutes;
            prop_triple_invariant_under_rotation;
            prop_arc_symmetric;
            prop_percentile_monotone;
            prop_triangle_area_additive;
            prop_polygon_area_matches_triangle;
            prop_geodesic_midpoint_equidistant;
            prop_mat3_inverse_roundtrip;
          ] );
    ]
