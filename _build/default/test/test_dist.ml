open Mpas_numerics
open Mpas_mesh
open Mpas_swe
open Mpas_dist

let mesh = lazy (Build.icosahedral ~level:3 ~lloyd_iters:2 ())

(* --- exchange structure ------------------------------------------------- *)

let build_exchange n_ranks =
  let m = Lazy.force mesh in
  Exchange.build m (Mpas_partition.Partition.sfc m ~n_parts:n_ranks)

let test_exchange_well_formed () =
  List.iter
    (fun n_ranks ->
      Alcotest.(check (list string))
        (Format.sprintf "%d ranks" n_ranks)
        []
        (Exchange.check (build_exchange n_ranks)))
    [ 1; 2; 4; 7 ]

let test_single_rank_has_no_ghosts () =
  let x = build_exchange 1 in
  let s = x.Exchange.sets.(0) in
  Alcotest.(check int) "no ghost cells" 0 (Array.length s.Exchange.ghost_cells);
  Alcotest.(check int) "no ghost edges" 0 (Array.length s.Exchange.ghost_edges);
  Alcotest.(check int) "owns all cells" (Lazy.force mesh).n_cells
    (Array.length s.Exchange.own_cells)

let test_exchange_moves_ghost_values () =
  let x = build_exchange 3 in
  let m = Lazy.force mesh in
  (* Each rank's copy starts with its rank id everywhere; after the
     exchange every ghost slot holds its owner's id. *)
  let fields =
    Array.init 3 (fun r -> Array.make m.n_cells (float_of_int r))
  in
  Exchange.exchange x Exchange.Cells fields;
  Array.iter
    (fun s ->
      Array.iter
        (fun g ->
          Alcotest.(check (float 0.))
            "ghost holds owner's value"
            (float_of_int x.Exchange.cell_owner.(g))
            fields.(s.Exchange.rank).(g))
        s.Exchange.ghost_cells)
    x.Exchange.sets

let test_exchange_counts_traffic () =
  let x = build_exchange 4 in
  let m = Lazy.force mesh in
  Exchange.reset_stats x;
  let fields = Array.init 4 (fun _ -> Array.make m.n_cells 0.) in
  Exchange.exchange x Exchange.Cells fields;
  let ghost_total =
    Array.fold_left
      (fun acc s -> acc + Array.length s.Exchange.ghost_cells)
      0 x.Exchange.sets
  in
  Alcotest.(check (float 0.1))
    "bytes = 8 * ghosts"
    (8. *. float_of_int ghost_total)
    (Exchange.bytes_moved x)

(* --- distributed model --------------------------------------------------- *)

let test_distributed_matches_serial () =
  let m = Lazy.force mesh in
  let serial = Model.init Williamson.Tc5 m in
  let dist = Driver.init ~n_ranks:4 Williamson.Tc5 m in
  Model.run serial ~steps:5;
  Driver.run dist ~steps:5;
  let gathered = Driver.gather_state dist in
  (* Owned entries use identical per-item arithmetic: bitwise equal. *)
  let same_h =
    Array.for_all Fun.id
      (Array.init m.n_cells (fun c ->
           Float.equal serial.Model.state.Fields.h.(c) gathered.Fields.h.(c)))
  in
  let same_u =
    Array.for_all Fun.id
      (Array.init m.n_edges (fun e ->
           Float.equal serial.Model.state.Fields.u.(e) gathered.Fields.u.(e)))
  in
  Alcotest.(check bool) "h bitwise equal" true same_h;
  Alcotest.(check bool) "u bitwise equal" true same_u

let test_rank_count_invariance () =
  let m = Lazy.force mesh in
  let d2 = Driver.init ~n_ranks:2 Williamson.Tc2 m in
  let d6 = Driver.init ~n_ranks:6 Williamson.Tc2 m in
  Driver.run d2 ~steps:3;
  Driver.run d6 ~steps:3;
  let g2 = Driver.gather_state d2 and g6 = Driver.gather_state d6 in
  Alcotest.(check bool) "2 vs 6 ranks bitwise equal" true
    (g2.Fields.h = g6.Fields.h && g2.Fields.u = g6.Fields.u)

let test_poison_does_not_leak () =
  (* NaN planted outside own+ghost must never reach owned values: the
     kernels only read what the ownership discipline allows. *)
  let m = Lazy.force mesh in
  let dist = Driver.init ~n_ranks:4 Williamson.Tc5 m in
  Driver.poison_invisible dist;
  Driver.run dist ~steps:2;
  Alcotest.(check bool) "owned values stay finite" true
    (Driver.owned_values_finite dist)

let test_distributed_conserves_mass () =
  let m = Lazy.force mesh in
  let dist = Driver.init ~n_ranks:3 Williamson.Tc5 m in
  let mass state =
    let acc = ref 0. in
    for c = 0 to m.n_cells - 1 do
      acc := !acc +. (state.Fields.h.(c) *. m.area_cell.(c))
    done;
    !acc
  in
  let before = mass (Driver.gather_state dist) in
  Driver.run dist ~steps:5;
  let after = mass (Driver.gather_state dist) in
  Alcotest.(check bool) "mass conserved" true
    (Stats.rel_diff before after < 1e-13)

let test_traffic_matches_netmodel_scale () =
  (* The measured per-step halo traffic should be within a small factor
     of what the analytic network model assumes. *)
  let m = Lazy.force mesh in
  let dist = Driver.init ~n_ranks:4 Williamson.Tc5 m in
  Exchange.reset_stats dist.Driver.exchange;
  Driver.run dist ~steps:1;
  let measured = Exchange.bytes_moved dist.Driver.exchange in
  let patch = Mpas_machine.Netmodel.analytic_patch ~cells:m.n_cells ~ranks:4 in
  (* Analytic model: 8 exchanges of 2 fields over the boundary; the
     fine-grained driver exchanges ~13 fields x 4 substeps. *)
  let boundary = float_of_int patch.Mpas_machine.Netmodel.boundary_cells in
  let analytic_low = 8. *. 2. *. boundary *. 8. *. 4. (* 4 ranks *) in
  Alcotest.(check bool)
    (Format.sprintf "measured %.0f within [1x, 40x] of coarse model %.0f"
       measured analytic_low)
    true
    (measured > analytic_low && measured < 40. *. analytic_low)

let test_dt_default_and_explicit () =
  let m = Lazy.force mesh in
  let auto = Driver.init ~n_ranks:2 Williamson.Tc5 m in
  let fixed = Driver.init ~n_ranks:2 ~dt:100. Williamson.Tc5 m in
  Alcotest.(check (float 1e-9))
    "default dt matches Williamson heuristic"
    (Williamson.recommended_dt Williamson.Tc5 m)
    auto.Driver.dt;
  Alcotest.(check (float 0.)) "explicit dt" 100. fixed.Driver.dt

let test_distributed_tracers_and_del4 () =
  (* The extension paths (tracer transport, biharmonic diffusion) must
     also be bitwise identical between serial and distributed runs. *)
  let m = Lazy.force mesh in
  let bell = Williamson.cosine_bell m in
  let dx = Mesh.mean_spacing m in
  let config =
    { Config.default with visc4 = 1e-4 *. (dx ** 4.) /. 86400. }
  in
  let serial = Model.init ~config ~tracers:[| bell |] Williamson.Tc5 m in
  let dist =
    Driver.init ~config ~tracers:[| bell |] ~n_ranks:4 Williamson.Tc5 m
  in
  Model.run serial ~steps:3;
  Driver.run dist ~steps:3;
  let same = ref true in
  Array.iter
    (fun s ->
      Array.iter
        (fun c ->
          if
            not
              (Float.equal
                 serial.Model.state.Fields.tracers.(0).(c)
                 dist.Driver.states.(s.Exchange.rank).Fields.tracers.(0).(c))
          then same := false;
          if
            not
              (Float.equal serial.Model.state.Fields.h.(c)
                 dist.Driver.states.(s.Exchange.rank).Fields.h.(c))
          then same := false)
        s.Exchange.own_cells)
    dist.Driver.exchange.Exchange.sets;
  Alcotest.(check bool) "tracers + del4 bitwise equal" true !same

(* --- properties ------------------------------------------------------------ *)

let prop_bitwise_equal_any_rank_count =
  QCheck.Test.make ~name:"distributed = serial for any rank count" ~count:4
    QCheck.(int_range 2 8)
    (fun n_ranks ->
      let m = Lazy.force mesh in
      let serial = Model.init Williamson.Tc6 m in
      let dist = Driver.init ~n_ranks Williamson.Tc6 m in
      Model.run serial ~steps:2;
      Driver.run dist ~steps:2;
      let g = Driver.gather_state dist in
      g.Fields.h = serial.Model.state.Fields.h
      && g.Fields.u = serial.Model.state.Fields.u)

let prop_exchange_idempotent =
  QCheck.Test.make ~name:"exchange is idempotent" ~count:5
    QCheck.(int_range 2 6)
    (fun n_ranks ->
      let m = Lazy.force mesh in
      let x = build_exchange n_ranks in
      let r = Rng.create 9L in
      let fields =
        Array.init n_ranks (fun _ ->
            Array.init m.n_cells (fun _ -> Rng.uniform r 0. 1.))
      in
      Exchange.exchange x Exchange.Cells fields;
      let snapshot = Array.map Array.copy fields in
      Exchange.exchange x Exchange.Cells fields;
      Array.for_all2 (fun a b -> a = b) snapshot fields)

let () =
  Alcotest.run "dist"
    [
      ( "exchange",
        [
          Alcotest.test_case "well formed" `Quick test_exchange_well_formed;
          Alcotest.test_case "single rank" `Quick test_single_rank_has_no_ghosts;
          Alcotest.test_case "ghost values" `Quick
            test_exchange_moves_ghost_values;
          Alcotest.test_case "traffic stats" `Quick test_exchange_counts_traffic;
        ] );
      ( "distributed model",
        [
          Alcotest.test_case "matches serial bitwise" `Quick
            test_distributed_matches_serial;
          Alcotest.test_case "rank-count invariant" `Quick
            test_rank_count_invariance;
          Alcotest.test_case "poison containment" `Quick
            test_poison_does_not_leak;
          Alcotest.test_case "mass conservation" `Quick
            test_distributed_conserves_mass;
          Alcotest.test_case "traffic scale" `Quick
            test_traffic_matches_netmodel_scale;
          Alcotest.test_case "dt handling" `Quick test_dt_default_and_explicit;
          Alcotest.test_case "tracers + del4" `Quick
            test_distributed_tracers_and_del4;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bitwise_equal_any_rank_count; prop_exchange_idempotent ] );
    ]
