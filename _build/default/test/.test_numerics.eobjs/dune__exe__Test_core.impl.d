test/test_core.ml: Alcotest Float Format List Mpas_core Mpas_numerics String
