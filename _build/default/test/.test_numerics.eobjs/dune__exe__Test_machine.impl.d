test/test_machine.ml: Alcotest Calibration Cost Costmodel Float Format Gen Hw List Mpas_machine Mpas_numerics Mpas_patterns Netmodel QCheck QCheck_alcotest Simulate String
