test/test_partition.ml: Alcotest Array Build Format Halo Lazy List Mpas_machine Mpas_mesh Mpas_numerics Mpas_partition Partition Planar_hex QCheck QCheck_alcotest
