test/test_hybrid.ml: Alcotest Cost Costmodel Float Format Hw List Mpas_hybrid Mpas_machine Mpas_patterns Pattern Plan QCheck QCheck_alcotest Registry Schedule Simulate String
