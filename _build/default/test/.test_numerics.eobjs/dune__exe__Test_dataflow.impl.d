test/test_dataflow.ml: Alcotest Array Dot Format Fusion Graph Int Lazy List Mpas_dataflow Mpas_patterns Pattern QCheck QCheck_alcotest Registry String
