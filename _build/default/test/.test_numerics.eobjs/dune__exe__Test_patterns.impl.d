test/test_patterns.ml: Alcotest Array Cost Float Fun Int64 Lazy List Mpas_mesh Mpas_numerics Mpas_par Mpas_patterns Pattern QCheck QCheck_alcotest Refactor Registry Rng Stats
