test/test_swe.mli:
