test/test_par.ml: Alcotest Array Atomic Float Fun List Mpas_par Pool QCheck QCheck_alcotest
