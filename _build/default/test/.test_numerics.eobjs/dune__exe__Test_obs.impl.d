test/test_obs.ml: Alcotest Array Build Float Fun Jsonv Lazy List Metrics Model Mpas_mesh Mpas_obs Mpas_obs_report Mpas_par Mpas_patterns Mpas_swe Option Pool Printf Sys Timestep Trace Unix Williamson
