test/test_numerics.ml: Alcotest Array Float Fun Gen List Mat3 Mpas_numerics QCheck QCheck_alcotest Rng Sphere Stats String Table Vec3
