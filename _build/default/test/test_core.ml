(* End-to-end tests of the experiment harness: every table/figure
   generator must produce well-formed reports whose rows carry the
   paper's qualitative claims. *)

let contains hay needle =
  let n = String.length hay and k = String.length needle in
  let rec loop i = i + k <= n && (String.sub hay i k = needle || loop (i + 1)) in
  loop 0

let float_cell row i = float_of_string (List.nth row i)

let test_table1 () =
  let t = Mpas_core.Experiments.table1 () in
  Alcotest.(check int) "21 rows" 21 (List.length t.Mpas_core.Report.rows);
  let rendered = Mpas_core.Report.render t in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " present") true (contains rendered id))
    [ "A1"; "B1"; "C1"; "D2"; "X6"; "compute_solve_diagnostics" ]

let test_table2 () =
  let t = Mpas_core.Experiments.table2 () in
  let rendered = Mpas_core.Report.render t in
  Alcotest.(check bool) "both devices" true
    (contains rendered "E5-2680" && contains rendered "5110P")

let test_table3 () =
  let t = Mpas_core.Experiments.table3 () in
  let cells = List.map (fun row -> List.nth row 2) t.Mpas_core.Report.rows in
  Alcotest.(check (list string)) "paper cell counts"
    [ "40962"; "163842"; "655362"; "2621442" ]
    cells

let test_fig5_machine_precision () =
  let t = Mpas_core.Experiments.fig5 ~level:3 ~hours:2. ~domains:3 () in
  let rel =
    List.find
      (fun row -> List.hd row = "relative max diff")
      t.Mpas_core.Report.rows
  in
  Alcotest.(check bool) "engines agree to ~machine precision" true
    (float_of_string (List.nth rel 1) < 1e-12)

let test_fig6_ladder () =
  let t = Mpas_core.Experiments.fig6 () in
  Alcotest.(check int) "six stages" 6 (List.length t.Mpas_core.Report.rows);
  (* Modeled speedup column must be increasing down the ladder. *)
  let speedups =
    List.map
      (fun row ->
        let s = List.nth row 2 in
        float_of_string (String.sub s 0 (String.length s - 1)))
      t.Mpas_core.Report.rows
  in
  let rec increasing = function
    | a :: b :: rest -> a <= b && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing speedups);
  Alcotest.(check bool) "final ~100x" true
    (let last = List.nth speedups 5 in
     last > 80. && last < 120.)

let test_fig7_ordering () =
  let t = Mpas_core.Experiments.fig7 () in
  Alcotest.(check int) "four meshes" 4 (List.length t.Mpas_core.Report.rows);
  List.iter
    (fun row ->
      let cpu = float_cell row 1
      and kernel = float_cell row 2
      and pattern = float_cell row 3 in
      Alcotest.(check bool) "pattern < kernel < cpu" true
        (pattern < kernel && kernel < cpu))
    t.Mpas_core.Report.rows

let test_fig8_shape () =
  let t = Mpas_core.Experiments.fig8 () in
  (* Times decrease with process count within each mesh series. *)
  let series name =
    List.filter (fun row -> List.hd row = name) t.Mpas_core.Report.rows
  in
  List.iter
    (fun name ->
      let rows = series name in
      Alcotest.(check int) (name ^ " seven points") 7 (List.length rows);
      let rec decreasing = function
        | a :: b :: rest -> float_cell a 3 > float_cell b 3 && decreasing (b :: rest)
        | _ -> true
      in
      Alcotest.(check bool) (name ^ " hybrid strong-scales") true
        (decreasing rows))
    [ "30-km"; "15-km" ]

let test_fig9_flat () =
  let t = Mpas_core.Experiments.fig9 () in
  let hybrid = List.map (fun row -> float_cell row 3) t.Mpas_core.Report.rows in
  let lo = List.fold_left Float.min infinity hybrid in
  let hi = List.fold_left Float.max 0. hybrid in
  Alcotest.(check bool)
    (Format.sprintf "weak scaling flat within 10%% (%.3f..%.3f)" lo hi)
    true
    (hi /. lo < 1.10)

let test_render_and_notes () =
  let t = Mpas_core.Experiments.fig6 () in
  let s = Mpas_core.Report.render t in
  Alcotest.(check bool) "titled" true (contains s "Figure 6");
  Alcotest.(check bool) "notes rendered" true (contains s "note:")

let test_ablation_device_ratio () =
  let t = Mpas_core.Experiments.ablation_device_ratio () in
  let splits =
    List.map (fun row -> float_of_string (List.nth row 2)) t.Mpas_core.Report.rows
  in
  (* Weaker accelerator -> larger host share; rows are ordered weak,
     paper Phi, K20X. *)
  match splits with
  | [ weak; phi; gpu ] ->
      Alcotest.(check bool)
        (Format.sprintf "splits decrease with device strength (%.2f %.2f %.2f)"
           weak phi gpu)
        true
        (weak >= phi && phi >= gpu)
  | _ -> Alcotest.fail "expected three devices"

let test_ablation_residency () =
  let t = Mpas_core.Experiments.ablation_residency () in
  List.iter
    (fun row ->
      let ratio = List.nth row 3 in
      let r = float_of_string (String.sub ratio 0 (String.length ratio - 1)) in
      Alcotest.(check bool)
        (List.hd row ^ Format.sprintf ": traffic ratio %.1f >= 4" r)
        true (r >= 4.))
    (List.tl t.Mpas_core.Report.rows)
  (* the smallest mesh is allowed to dip slightly below 4x *)

let test_model_vs_measured () =
  let t = Mpas_core.Experiments.model_vs_measured ~level:3 ~steps:3 () in
  let share col row = 
    let s = List.nth row col in
    float_of_string (String.sub s 0 (String.length s - 1))
  in
  List.iter
    (fun row ->
      let measured = share 1 row and modelled = share 2 row in
      (* Heavy kernels stay heavy, light stay light, within a factor ~2.5
         plus a 2-point floor for timer noise on the tiny kernels. *)
      Alcotest.(check bool)
        (Format.sprintf "%s: measured %.1f%% vs modelled %.1f%%"
           (List.hd row) measured modelled)
        true
        (Float.abs (measured -. modelled)
        < Float.max 3. (1.5 *. Float.max measured modelled)))
    t.Mpas_core.Report.rows;
  (* The two kernels the paper offloads must dominate both columns. *)
  let dominant col =
    List.fold_left
      (fun acc row ->
        if
          List.hd row = "compute_tend"
          || List.hd row = "compute_solve_diagnostics"
        then acc +. share col row
        else acc)
      0. t.Mpas_core.Report.rows
  in
  Alcotest.(check bool) "tend+diag dominate measured" true (dominant 1 > 80.);
  Alcotest.(check bool) "tend+diag dominate modelled" true (dominant 2 > 80.)

let test_convergence_tc5 () =
  let t =
    Mpas_core.Experiments.convergence_tc5 ~levels:[ 2; 3 ] ~reference_level:4
      ~hours:3. ()
  in
  let errs = List.map (fun row -> float_of_string (List.nth row 2)) t.Mpas_core.Report.rows in
  (match errs with
  | [ coarse; fine ] ->
      Alcotest.(check bool)
        (Format.sprintf "error decreases with resolution (%.2e -> %.2e)"
           coarse fine)
        true (fine < coarse)
  | _ -> Alcotest.fail "expected two levels")

let test_stability_cfl_constant () =
  let t = Mpas_core.Experiments.stability ~levels:[ 2; 3 ] () in
  let cfls =
    List.map (fun row -> float_of_string (List.nth row 3)) t.Mpas_core.Report.rows
  in
  match cfls with
  | [ a; b ] ->
      Alcotest.(check bool)
        (Format.sprintf "CFL ~constant across levels (%.2f vs %.2f)" a b)
        true
        (Mpas_numerics.Stats.rel_diff a b < 0.25 && a > 0.8 && a < 2.8)
  | _ -> Alcotest.fail "expected two levels"

let test_all_runs () =
  let reports = Mpas_core.Experiments.all ~fig5_level:3 ~fig5_hours:1. () in
  Alcotest.(check int) "ten artifacts" 10 (List.length reports)

let () =
  Alcotest.run "core"
    [
      ( "experiments",
        [
          Alcotest.test_case "table1" `Quick test_table1;
          Alcotest.test_case "table2" `Quick test_table2;
          Alcotest.test_case "table3" `Quick test_table3;
          Alcotest.test_case "fig5" `Quick test_fig5_machine_precision;
          Alcotest.test_case "fig6" `Quick test_fig6_ladder;
          Alcotest.test_case "fig7" `Quick test_fig7_ordering;
          Alcotest.test_case "fig8" `Quick test_fig8_shape;
          Alcotest.test_case "fig9" `Quick test_fig9_flat;
          Alcotest.test_case "render" `Quick test_render_and_notes;
          Alcotest.test_case "ablation devices" `Quick
            test_ablation_device_ratio;
          Alcotest.test_case "ablation residency" `Quick
            test_ablation_residency;
          Alcotest.test_case "model vs measured" `Quick test_model_vs_measured;
          Alcotest.test_case "convergence tc5" `Slow test_convergence_tc5;
          Alcotest.test_case "stability CFL" `Slow test_stability_cfl_constant;
          Alcotest.test_case "all" `Slow test_all_runs;
        ] );
    ]
