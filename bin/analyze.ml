(* Static-analysis and sanitizer lint driver: runs the checker suite
   over both mesh families and exits nonzero on any violation.

   1. registry inference — every Table I instance's inferred
      read/write sets (shadow instrumentation through the runtime's
      own compiled closures) must match its declarations, in CSR
      fast-path, ragged and split-part modes;
   2. bounds audit — every unsafe-indexed site of the CSR kernels must
      be discharged by the mesh's validated CSR invariants;
   3. schedule races — compiled phase programs for each placement plan
      must order every conflicting task pair, and a live executor log
      must replay clean;
   4. overlapped distributed schedules — the comm-extended phase
      programs of the overlapped halo-exchange driver must pass the
      same structural and race checks, their pack/transfer/unpack
      bodies must move exactly the declared ghosts, and a stolen live
      run must replay clean;
   5. live-tsan — the online vector-clock race monitor rides a fused
      Steal-mode run end to end: zero violations, bit-identical
      result, and a seeded hazard-edge drop must be caught;
   6. explore — the bounded interleaving explorer proves the deque and
      wakeup protocol models clean up to the preemption bound and
      catches every seeded protocol bug;
   7. bounds-coverage — the bounds catalog audits itself: every entry
      live and in-bounds on a real mesh, every unsafe source site
      catalogued, and seeded defects in both directions flagged.

   Sections run lazily; `--only SECTION` (repeatable, prefix match)
   selects a subset — CI shards the suite across parallel jobs this
   way. *)

open Cmdliner
module Jsonv = Mpas_obs.Jsonv
module A = Mpas_analysis

type section = {
  sec_name : string;
  sec_mesh : string;
  sec_checks : int;
  sec_failures : string list;
}

let registry_section mesh_name probe =
  let reports = A.Infer.check_registry probe in
  let failures =
    List.concat_map
      (fun (r : A.Infer.report) ->
        List.map
          (fun v ->
            Printf.sprintf "%s/%s [%s]: %s" r.A.Infer.r_instance
              (match r.A.Infer.r_phase with
              | `Early -> "early"
              | `Final -> "final")
              (A.Infer.mode_name r.A.Infer.r_mode)
              (A.Infer.violation_message v))
          r.A.Infer.r_violations)
      (A.Infer.failed reports)
  in
  {
    sec_name = "registry-inference";
    sec_mesh = mesh_name;
    sec_checks = List.length reports;
    sec_failures = failures;
  }

let bounds_section mesh_name mesh =
  let reports = A.Bounds.audit mesh in
  let failures =
    List.map
      (fun (r : A.Bounds.site_report) ->
        match r.A.Bounds.sr_verdict with
        | A.Bounds.Refuted invs ->
            Printf.sprintf "%s: %s" (A.Bounds.site_name r.A.Bounds.sr_site)
              (String.concat "; " (List.map A.Bounds.invariant_name invs))
        | A.Bounds.Proved _ -> assert false)
      (A.Bounds.refuted reports)
  in
  {
    sec_name = "bounds-audit";
    sec_mesh = mesh_name;
    sec_checks = List.length reports;
    sec_failures = failures;
  }

let plans =
  [
    ("no-plan", None);
    ("kernel-level", Some Mpas_hybrid.Plan.kernel_level);
    ("pattern-driven", Some Mpas_hybrid.Plan.pattern_driven);
  ]

let split = 0.4

let races_section mesh_name probe (plan_name, plan) =
  let spec = Mpas_runtime.Spec.build ?plan ~split ~recon:true () in
  let early_footprints, final_footprints = A.Infer.spec_footprints probe spec in
  let prs = A.Races.check_spec ~early_footprints ~final_footprints spec in
  let failures =
    List.concat_map
      (fun (pr : A.Races.phase_races) ->
        List.map
          (fun r ->
            Printf.sprintf "%s phase: %s"
              (match pr.A.Races.pr_phase with
              | `Early -> "early"
              | `Final -> "final")
              (A.Races.race_message r))
          pr.A.Races.pr_races)
      prs
  in
  let n_pairs phase =
    let n = Array.length phase.Mpas_runtime.Spec.tasks in
    n * (n - 1) / 2
  in
  {
    sec_name = "static-races:" ^ plan_name;
    sec_mesh = mesh_name;
    sec_checks =
      n_pairs spec.Mpas_runtime.Spec.early
      + n_pairs spec.Mpas_runtime.Spec.final;
    sec_failures = failures;
  }

(* Drive the real engine for a few steps and replay its log: every
   task exactly once, every edge respected, no conflicting overlap.
   The spec checked against is the one the engine actually compiled
   ([Engine.program]), so fused and tiled programs replay too. *)
let replay_with ~tag ~mode ?(fuse = false) ?(tiling = `Off) ~domains mesh_name
    mesh probe =
  let plan = Mpas_hybrid.Plan.pattern_driven in
  let steps = 2 in
  let log : Mpas_runtime.Exec.log = ref [] in
  let entries = ref 0 and issues = ref [] in
  Mpas_par.Pool.with_pool ~n_domains:domains (fun pool ->
      let eng =
        Mpas_runtime.Engine.create ~mode ~pool ~plan ~split ~fuse ~tiling ~log
          ()
      in
      let model =
        Mpas_swe.Model.init
          ~engine:(Mpas_runtime.Engine.timestep_engine eng)
          Mpas_swe.Williamson.Tc5 mesh
      in
      (* One warm-up-free prime of the footprints is impossible before
         the engine compiled its program, so run step 1, then fetch the
         spec and check both steps' logs. *)
      let spec = ref None in
      let footprints = ref ([||], [||]) in
      (* sequence counters restart every run_phase call, so the log is
         drained and checked one step at a time *)
      for _ = 1 to steps do
        Mpas_swe.Model.run model ~steps:1;
        (match !spec with
        | Some _ -> ()
        | None ->
            let s = Option.get (Mpas_runtime.Engine.program eng) in
            spec := Some s;
            footprints := A.Infer.spec_footprints probe s);
        let s = Option.get !spec in
        let early_footprints, final_footprints = !footprints in
        entries := !entries + List.length !log;
        issues :=
          !issues
          @ A.Races.check_log ~spec:s ~early_footprints ~final_footprints !log;
        log := []
      done);
  {
    sec_name =
      Printf.sprintf "log-replay:%s(%d steps, %d entries)" tag steps !entries;
    sec_mesh = mesh_name;
    sec_checks = !entries;
    sec_failures = List.map A.Races.issue_message !issues;
  }

let replay_section mesh_name mesh probe =
  replay_with ~tag:"pattern-driven" ~mode:Mpas_runtime.Exec.Async ~domains:2
    mesh_name mesh probe

(* The same replay over a stolen schedule of fused super-tasks: the
   work-stealing executor's logs must order every conflicting pair
   exactly like the sorted-queue executor's. *)
let steal_replay_section mesh_name mesh probe =
  replay_with ~tag:"steal-fused" ~mode:Mpas_runtime.Exec.Steal ~fuse:true
    ~domains:4 mesh_name mesh probe

(* Overlapped distributed schedules (Mpas_dist.Overlap): structural
   well-formedness, race freedom of the comm-extended program under
   the declared region footprints, and a self-test that seeding a
   missing unpack -> consumer edge is actually caught (so a clean
   verdict means something). *)
let dist_static_section mesh_name mesh =
  let d = Mpas_dist.Driver.init ~n_ranks:3 Mpas_swe.Williamson.Tc5 mesh in
  let ov = Mpas_dist.Overlap.of_driver d in
  let spec = Mpas_dist.Overlap.spec ov in
  let structural = Mpas_runtime.Spec.check spec in
  let prs = A.Comm.check_spec ov in
  let race_failures =
    List.concat_map
      (fun (pr : A.Races.phase_races) ->
        List.map
          (fun r ->
            Printf.sprintf "%s phase: %s"
              (match pr.A.Races.pr_phase with
              | `Early -> "early"
              | `Final -> "final")
              (A.Races.race_message r))
          pr.A.Races.pr_races)
      prs
  in
  let early_footprints, _ = A.Comm.footprints ov in
  let phase = spec.Mpas_runtime.Spec.early in
  let unpack_edges =
    List.filter
      (fun (src, dst) ->
        (match phase.Mpas_runtime.Spec.tasks.(src).Mpas_runtime.Spec.kind with
        | Mpas_runtime.Spec.Unpack _ -> true
        | _ -> false)
        && phase.Mpas_runtime.Spec.tasks.(dst).Mpas_runtime.Spec.kind
           = Mpas_runtime.Spec.Compute)
      (A.Races.edges phase)
  in
  let caught =
    List.length
      (List.filter
         (fun (src, dst) ->
           List.exists
             (fun (r : A.Races.race) -> r.A.Races.ra = src && r.A.Races.rb = dst)
             (A.Races.check_phase ~footprints:early_footprints
                (A.Races.drop_edge phase ~src ~dst)))
         unpack_edges)
  in
  let selftest_failures =
    if unpack_edges = [] then [ "no unpack -> consumer edges to self-test" ]
    else if caught = 0 then
      [
        Printf.sprintf
          "self-test: %d seeded unpack-edge drops, none reported as a race"
          (List.length unpack_edges);
      ]
    else []
  in
  let n_pairs phase =
    let n = Array.length phase.Mpas_runtime.Spec.tasks in
    n * (n - 1) / 2
  in
  {
    sec_name = "dist-overlap-static";
    sec_mesh = mesh_name;
    sec_checks =
      n_pairs spec.Mpas_runtime.Spec.early
      + n_pairs spec.Mpas_runtime.Spec.final
      + List.length unpack_edges;
    sec_failures = structural @ race_failures @ selftest_failures;
  }

(* The compiled pack/transfer/unpack closures must move exactly the
   ghosts the exchange maps declare — run each chain over an encoded
   shadow state. *)
let dist_bodies_section mesh_name mesh =
  let d = Mpas_dist.Driver.init ~n_ranks:3 Mpas_swe.Williamson.Tc5 mesh in
  let ov = Mpas_dist.Overlap.of_driver d in
  let failures = A.Comm.verify_bodies ov in
  {
    sec_name = "dist-overlap-bodies";
    sec_mesh = mesh_name;
    sec_checks = Mpas_mesh.Mesh.(mesh.n_cells + mesh.n_edges + mesh.n_vertices);
    sec_failures = failures;
  }

(* Live replay of the overlapped driver on the work-stealing executor:
   every comm and compute task exactly once per substep, all edges
   respected, no conflicting overlap. *)
let dist_replay_section mesh_name mesh =
  let steps = 2 in
  let log : Mpas_runtime.Exec.log = ref [] in
  let entries = ref 0 and issues = ref [] in
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let d = Mpas_dist.Driver.init ~n_ranks:3 Mpas_swe.Williamson.Tc5 mesh in
      let ov =
        Mpas_dist.Overlap.of_driver ~mode:Mpas_runtime.Exec.Steal ~pool ~log d
      in
      for _ = 1 to steps do
        Mpas_dist.Overlap.step ov;
        entries := !entries + List.length !log;
        issues := !issues @ A.Comm.check_log ov !log;
        log := []
      done);
  {
    sec_name =
      Printf.sprintf "dist-overlap-replay:steal(%d steps, %d entries)" steps
        !entries;
    sec_mesh = mesh_name;
    sec_checks = !entries;
    sec_failures = List.map A.Races.issue_message !issues;
  }

(* Ensemble member-axis programs: structural well-formedness of the
   compiled block-chain phases, race freedom under the engine's
   declared block-qualified slot accesses, and a self-test that
   severing a chain edge between two conflicting tasks of one block is
   actually caught. *)
let ens_static_section mesh_name mesh =
  let e = Mpas_ensemble.Ensemble.create ~capacity:8 ~block:2 mesh in
  let spec = Mpas_ensemble.Ensemble.spec e in
  let structural = Mpas_runtime.Spec.check spec in
  let race_failures =
    List.concat_map
      (fun (pr : A.Races.phase_races) ->
        List.map
          (fun r ->
            Printf.sprintf "%s phase: %s"
              (match pr.A.Races.pr_phase with
              | `Early -> "early"
              | `Final -> "final")
              (A.Races.race_message r))
          pr.A.Races.pr_races)
      (A.Ens.check_spec e)
  in
  (* self-test: drop each block-0 chain edge; at least one severed
     pair must surface as a race, or a clean verdict proves nothing *)
  let phase = spec.Mpas_runtime.Spec.early in
  let footprints = A.Ens.footprints e `Early in
  let nk = phase.Mpas_runtime.Spec.n_levels in
  let chain_edges =
    List.filter (fun (src, dst) -> src < nk && dst < nk) (A.Races.edges phase)
  in
  let caught =
    List.length
      (List.filter
         (fun (src, dst) ->
           List.exists
             (fun (r : A.Races.race) -> r.A.Races.ra = src && r.A.Races.rb = dst)
             (A.Races.check_phase ~footprints
                (A.Races.drop_edge phase ~src ~dst)))
         chain_edges)
  in
  let selftest_failures =
    if chain_edges = [] then [ "no block-chain edges to self-test" ]
    else if caught = 0 then
      [
        Printf.sprintf
          "self-test: %d seeded chain-edge drops, none reported as a race"
          (List.length chain_edges);
      ]
    else []
  in
  let n_pairs phase =
    let n = Array.length phase.Mpas_runtime.Spec.tasks in
    n * (n - 1) / 2
  in
  {
    sec_name = "ensemble-static";
    sec_mesh = mesh_name;
    sec_checks =
      n_pairs spec.Mpas_runtime.Spec.early
      + n_pairs spec.Mpas_runtime.Spec.final
      + List.length chain_edges;
    sec_failures = structural @ race_failures @ selftest_failures;
  }

(* Live replay of a stolen ensemble batch (three perturbed Williamson
   members): every block task exactly once per substep, chain edges
   respected, no conflicting overlap between member blocks. *)
let ens_replay_section mesh_name mesh =
  let steps = 2 in
  let log : Mpas_runtime.Exec.log = ref [] in
  let entries = ref 0 and issues = ref [] in
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let e =
        Mpas_ensemble.Ensemble.create ~capacity:8 ~block:2
          ~mode:Mpas_runtime.Exec.Steal ~pool ~log mesh
      in
      List.iter
        (fun (case, config) ->
          ignore (Mpas_ensemble.Ensemble.submit_case e ~config case))
        [
          (Mpas_swe.Williamson.Tc5, Mpas_swe.Config.default);
          ( Mpas_swe.Williamson.Tc2,
            { Mpas_swe.Config.default with h_adv_order = Mpas_swe.Config.Second }
          );
          ( Mpas_swe.Williamson.Tc6,
            { Mpas_swe.Config.default with visc2 = 1e3 } );
        ];
      for _ = 1 to steps do
        Mpas_ensemble.Ensemble.step e ();
        entries := !entries + List.length !log;
        issues := !issues @ A.Ens.check_log e !log;
        log := []
      done);
  {
    sec_name =
      Printf.sprintf "ensemble-replay:steal(%d steps, %d entries)" steps
        !entries;
    sec_mesh = mesh_name;
    sec_checks = !entries;
    sec_failures = List.map A.Races.issue_message !issues;
  }

(* Serving-layer recovery lint: drive the server under several seeded
   fault schedules.  Every job must either complete bit-identically to
   its fault-free solo reference or be reported [Failed] with a reason
   — a wedged queue or silent corruption is a failure.  A schedule
   that never forces a restore proves nothing, so across the seeds at
   least one checkpoint restore is also required. *)
let server_recovery_section mesh_name mesh =
  let module S = Mpas_server.Server in
  let module F = Mpas_server.Fault in
  let module Metrics = Mpas_obs.Metrics in
  let steps = 6 in
  let requests =
    [
      ("acme", S.High, Mpas_swe.Williamson.Tc5, Mpas_swe.Config.default);
      ( "acme",
        S.Normal,
        Mpas_swe.Williamson.Tc2,
        { Mpas_swe.Config.default with h_adv_order = Mpas_swe.Config.Second } );
      ( "beta",
        S.Normal,
        Mpas_swe.Williamson.Tc6,
        { Mpas_swe.Config.default with pv_average = Mpas_swe.Config.Edge_only }
      );
      ("beta", S.Low, Mpas_swe.Williamson.Tc2_rotated, Mpas_swe.Config.default);
    ]
  in
  let reference =
    let cache = Hashtbl.create 8 in
    fun case config ->
      match Hashtbl.find_opt cache (case, config) with
      | Some st -> st
      | None ->
          let model =
            Mpas_swe.Model.init ~config ~engine:Mpas_swe.Timestep.refactored
              case mesh
          in
          Mpas_swe.Model.run model ~steps;
          Hashtbl.add cache (case, config) model.Mpas_swe.Model.state;
          model.Mpas_swe.Model.state
  in
  let same a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  let seeds = [ 3; 41; 2026 ] in
  let failures = ref [] and checks = ref 0 and restores = ref 0 in
  let failf fmt = Printf.ksprintf (fun s -> failures := !failures @ [ s ]) fmt in
  List.iter
    (fun seed ->
      let registry = Metrics.create () in
      let fault = F.plan ~ticks:10 ~events:4 ~seed () in
      let srv =
        S.create ~registry ~capacity:2 ~block:1 ~queue_limit:8
          ~checkpoint_every:2 ~max_retries:4 ~fault mesh
      in
      let ids =
        List.filter_map
          (fun (tenant, priority, case, config) ->
            match S.submit srv ~tenant ~priority ~config ~steps case with
            | Ok id -> Some (id, tenant, case, config)
            | Error r ->
                failf "seed %d: clean submit rejected: %s" seed
                  (S.reject_message r);
                None)
          requests
      in
      if not (S.drain srv ~max_ticks:500 ()) then
        failf "seed %d: queue did not drain in 500 ticks (plan [%s])" seed
          (F.to_string fault);
      List.iter
        (fun (id, tenant, case, config) ->
          incr checks;
          let info = S.query srv id in
          match info.S.jb_status with
          | S.Completed -> (
              match S.result srv id with
              | Some got ->
                  let want = reference case config in
                  if
                    not
                      (same want.Mpas_swe.Fields.h got.Mpas_swe.Fields.h
                      && same want.Mpas_swe.Fields.u got.Mpas_swe.Fields.u)
                  then
                    failf
                      "seed %d: job %d (%s) completed but diverged from its \
                       fault-free reference"
                      seed id tenant
              | None -> failf "seed %d: job %d completed without a result" seed id)
          | S.Failed reason when reason <> "" -> ()
          | s ->
              failf "seed %d: job %d (%s) ended %s, expected completed or \
                     failed-with-reason"
                seed id tenant (S.status_name s))
        ids;
      match Metrics.find_counter (Metrics.snapshot registry) "server.restores" with
      | Some n -> restores := !restores + n
      | None -> ())
    seeds;
  incr checks;
  if !restores = 0 then
    failf "no seed forced a checkpoint restore; the lint proved nothing";
  {
    sec_name = Printf.sprintf "server-recovery(%d seeds)" (List.length seeds);
    sec_mesh = mesh_name;
    sec_checks = !checks;
    sec_failures = !failures;
  }

(* Online race monitor (Analysis.Tsan) riding a live fused Steal-mode
   run: happens-before comes solely from the compiled DAG's edges (the
   clocks are task-indexed, so a lucky serial schedule cannot mask a
   missing edge), and every retired task's footprint is checked
   against unordered shadow accesses.  The monitored run must stay
   bit-identical to the sequential reference driver and report zero
   violations; a seeded hazard-edge drop replayed with no-op bodies
   must be caught naming the pair, or the clean verdict proves
   nothing. *)
(* The hex family has no Williamson case: drive it from a
   geostrophically balanced f-plane state (the runtime tests' hex
   reference flow). *)
let init_model ~engine (mesh : Mpas_mesh.Mesh.t) =
  match mesh.Mpas_mesh.Mesh.geometry with
  | Mpas_mesh.Mesh.Sphere _ ->
      Mpas_swe.Model.init ~engine Mpas_swe.Williamson.Tc5 mesh
  | Mpas_mesh.Mesh.Plane _ ->
      let module Vec3 = Mpas_numerics.Vec3 in
      let f = 1e-4
      and g = Mpas_swe.Config.default.Mpas_swe.Config.gravity in
      let flow = Vec3.make 5. 2. 0. in
      let slope = Vec3.scale (-.(f /. g)) (Vec3.cross Vec3.ez flow) in
      let h =
        Array.init mesh.Mpas_mesh.Mesh.n_cells (fun c ->
            1000. +. Vec3.dot slope mesh.Mpas_mesh.Mesh.x_cell.(c))
      in
      let u =
        Array.init mesh.Mpas_mesh.Mesh.n_edges (fun e ->
            Vec3.dot flow mesh.Mpas_mesh.Mesh.edge_normal.(e))
      in
      Mpas_swe.Model.of_state ~engine ~dt:5.
        ~b:(Array.make mesh.Mpas_mesh.Mesh.n_cells 0.)
        mesh
        { Mpas_swe.Fields.h; u; tracers = [||] }

let live_tsan_section mesh_name mesh probe =
  let steps = 10 in
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun s -> failures := !failures @ [ s ]) fmt in
  let tasks_seen = ref 0 in
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let eng =
        Mpas_runtime.Engine.create ~mode:Mpas_runtime.Exec.Steal ~pool
          ~plan:Mpas_hybrid.Plan.pattern_driven ~split ~fuse:true ()
      in
      let engine = Mpas_runtime.Engine.timestep_engine eng in
      (* compile the program on a scratch model, then monitor a fresh
         run against footprints inferred from that program *)
      let scratch = init_model ~engine mesh in
      Mpas_swe.Model.run scratch ~steps:1;
      let spec = Option.get (Mpas_runtime.Engine.program eng) in
      let early_footprints, final_footprints =
        A.Infer.spec_footprints probe spec
      in
      let tsan = A.Tsan.create ~spec ~early_footprints ~final_footprints () in
      let model = init_model ~engine mesh in
      A.Tsan.with_monitor tsan (fun () -> Mpas_swe.Model.run model ~steps);
      List.iter
        (fun v -> failures := !failures @ [ A.Tsan.violation_message v ])
        (A.Tsan.violations tsan);
      tasks_seen := A.Tsan.tasks_seen tsan;
      if A.Tsan.phase_runs tsan = 0 then failf "monitor saw no phase runs";
      let reference = init_model ~engine:Mpas_swe.Timestep.refactored mesh in
      Mpas_swe.Model.run reference ~steps;
      let same a b =
        Array.for_all2
          (fun x y ->
            Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
          a b
      in
      let got = model.Mpas_swe.Model.state
      and want = reference.Mpas_swe.Model.state in
      if
        not
          (same want.Mpas_swe.Fields.h got.Mpas_swe.Fields.h
          && same want.Mpas_swe.Fields.u got.Mpas_swe.Fields.u)
      then failf "monitored steal run diverged from the sequential reference");
  (* seeded self-test: drop a hazard edge that leaves a conflicting
     pair unordered and replay the early phase with no-op bodies — the
     monitor must name that pair even though the sequential schedule
     never overlaps them *)
  let spec0 = Mpas_runtime.Spec.build ~split ~recon:true () in
  let early_fp, final_fp = A.Infer.spec_footprints probe spec0 in
  let phase0 = spec0.Mpas_runtime.Spec.early in
  let all_edges = A.Races.edges phase0 in
  let seeded =
    List.filter_map
      (fun (src, dst) ->
        let dropped = A.Races.drop_edge phase0 ~src ~dst in
        if
          List.exists
            (fun (r : A.Races.race) -> r.A.Races.ra = src && r.A.Races.rb = dst)
            (A.Races.check_phase ~footprints:early_fp dropped)
        then Some (src, dst, dropped)
        else None)
      all_edges
  in
  (match seeded with
  | [] ->
      failf
        "self-test: no hazard-edge drop leaves a conflicting pair unordered"
  | (src, dst, dropped) :: _ ->
      let mutated = { spec0 with Mpas_runtime.Spec.early = dropped } in
      let tsan =
        A.Tsan.create ~spec:mutated ~early_footprints:early_fp
          ~final_footprints:final_fp ()
      in
      let bodies =
        Array.make
          (Array.length dropped.Mpas_runtime.Spec.tasks)
          (fun () -> ())
      in
      A.Tsan.with_monitor tsan (fun () ->
          Mpas_runtime.Exec.run_phase ~mode:Mpas_runtime.Exec.Sequential
            ~pool:None ~host_lanes:1 ~phase:`Early ~substep:0
            ~instrument:(fun _ body -> body ())
            dropped bodies);
      let names_pair = function
        | A.Tsan.Race r ->
            (r.A.Tsan.rc_a = src && r.A.Tsan.rc_b = dst)
            || (r.A.Tsan.rc_a = dst && r.A.Tsan.rc_b = src)
        | _ -> false
      in
      if not (List.exists names_pair (A.Tsan.violations tsan)) then
        failf "self-test: dropped edge %d -> %d not reported as a race" src dst);
  {
    sec_name = Printf.sprintf "live-tsan:steal-fused(%d steps)" steps;
    sec_mesh = mesh_name;
    sec_checks = !tasks_seen + List.length all_edges + 1;
    sec_failures = !failures;
  }

(* Bounded interleaving exploration of the runtime's concurrency
   protocols, at model level and fully deterministic: the unseeded
   models must come back clean without truncation (a proof up to the
   preemption bound), and every seeded protocol bug — a dropped CAS, a
   mis-ordered wakeup version read, skipped broadcasts — must be
   caught. *)
let explore_section () =
  let module E = A.Explore in
  let correct =
    [ E.Models.chase_lev (); E.Models.steal_wakeup (); E.Models.async_exec () ]
  in
  let seeded =
    [
      E.Models.chase_lev ~bug:E.Models.Drop_last_cas ();
      E.Models.async_exec ~bug:E.Models.Drop_enable_signal ();
      E.Models.steal_wakeup ~bug:E.Models.Drop_version_check ();
      E.Models.steal_wakeup ~bug:E.Models.Drop_spread_broadcast ();
      E.Models.steal_wakeup ~bug:E.Models.Drop_retire_broadcast ();
    ]
  in
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun s -> failures := !failures @ [ s ]) fmt in
  let schedules = ref 0 in
  List.iter
    (fun m ->
      let oc = E.run m in
      schedules := !schedules + oc.E.oc_schedules;
      (match oc.E.oc_error with
      | Some _ -> failures := !failures @ [ E.outcome_message oc ]
      | None -> ());
      if oc.E.oc_truncated then
        failf "%s: truncated at %d schedules; clean but not a proof"
          oc.E.oc_model oc.E.oc_schedules)
    correct;
  List.iter
    (fun m ->
      let oc = E.run m in
      schedules := !schedules + oc.E.oc_schedules;
      if oc.E.oc_error = None then
        failf "seeded bug survived: %s clean over %d schedules" oc.E.oc_model
          oc.E.oc_schedules)
    seeded;
  {
    sec_name = "explore(pb=2)";
    sec_mesh = "(model)";
    sec_checks = !schedules;
    sec_failures = !failures;
  }

(* The bounds catalog auditing itself, both directions.  Coverage:
   interpret every entry's index shape over the live mesh — an entry
   that enumerates no indices, can't resolve its array, or lands out
   of bounds fails.  Scan: every [Array.unsafe_*] site in the kernel
   sources must map to a catalog entry and vice versa.  Both
   directions are seeded with a deliberate defect that must be
   flagged. *)
let bounds_coverage_section ~src_root mesh_name mesh =
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun s -> failures := !failures @ [ s ]) fmt in
  let cov = A.Bounds.coverage mesh in
  List.iter
    (fun (c : A.Bounds.coverage) ->
      if A.Bounds.cv_dead c || c.A.Bounds.cv_oob > 0 then
        failures := !failures @ [ A.Bounds.coverage_message c ])
    cov;
  (* seeded dead entry: a table no mesh provides *)
  let bogus =
    {
      (List.hd A.Bounds.catalog) with
      A.Bounds.s_kernel = "selftest";
      s_array = "no_such_table";
      s_index = A.Bounds.Loaded { table = "no_such_table"; space = A.Bounds.Cells };
    }
  in
  (match A.Bounds.coverage ~sites:[ bogus ] mesh with
  | [ c ] when A.Bounds.cv_dead c -> ()
  | _ -> failf "self-test: bogus catalog entry not flagged dead");
  let n_scan = ref 0 in
  (match src_root with
  | None ->
      failf "kernel sources not found for the scan audit; pass --src-root"
  | Some root ->
      let sources = A.Bounds.default_sources ~root in
      n_scan :=
        List.fold_left
          (fun acc (p, f) -> acc + List.length (A.Bounds.scan_file ~prefix:p f))
          0 sources;
      List.iter
        (fun g -> failures := !failures @ [ A.Bounds.scan_gap_message g ])
        (A.Bounds.scan_audit ~sources A.Bounds.catalog);
      (* seeded gap: hide one kernel's entries from the catalog *)
      let victim = "tend_h" in
      let holey =
        List.filter
          (fun (s : A.Bounds.site) -> s.A.Bounds.s_kernel <> victim)
          A.Bounds.catalog
      in
      let caught =
        List.exists
          (function
            | A.Bounds.Uncatalogued sc -> sc.A.Bounds.sc_kernel = victim
            | A.Bounds.Unscanned _ -> false)
          (A.Bounds.scan_audit ~sources holey)
      in
      if not caught then
        failf "self-test: hiding kernel %S left no uncatalogued gap" victim);
  {
    sec_name = "bounds-coverage";
    sec_mesh = mesh_name;
    sec_checks = List.length cov + !n_scan + 2;
    sec_failures = !failures;
  }

(* The section catalog: (selector key, thunk) pairs.  Meshes and
   probes are shared lazily so `--only` pays only for what it runs.
   The heavy live-replay sections run on the icosahedral family only,
   as before. *)
let section_catalog ~src_root () =
  let hex =
    lazy (Mpas_mesh.Planar_hex.create ~f:1e-4 ~nx:6 ~ny:4 ~dc:1000. ())
  in
  let ico = lazy (Mpas_mesh.Build.icosahedral ~level:1 ~lloyd_iters:2 ()) in
  let hex_probe = lazy (A.Infer.create (Lazy.force hex)) in
  let ico_probe = lazy (A.Infer.create (Lazy.force ico)) in
  let per name mesh probe heavy =
    [
      ("registry-inference", fun () -> registry_section name (Lazy.force probe));
      ("bounds-audit", fun () -> bounds_section name (Lazy.force mesh));
      ( "bounds-coverage",
        fun () -> bounds_coverage_section ~src_root name (Lazy.force mesh) );
      ("ensemble-static", fun () -> ens_static_section name (Lazy.force mesh));
      ( "live-tsan",
        fun () -> live_tsan_section name (Lazy.force mesh) (Lazy.force probe) );
    ]
    @ List.map
        (fun ((plan_name, _) as p) ->
          ( "static-races:" ^ plan_name,
            fun () -> races_section name (Lazy.force probe) p ))
        plans
    @
    if not heavy then []
    else
      [
        ( "log-replay:pattern-driven",
          fun () -> replay_section name (Lazy.force mesh) (Lazy.force probe) );
        ( "log-replay:steal-fused",
          fun () ->
            steal_replay_section name (Lazy.force mesh) (Lazy.force probe) );
        ("dist-overlap-static", fun () -> dist_static_section name (Lazy.force mesh));
        ("dist-overlap-bodies", fun () -> dist_bodies_section name (Lazy.force mesh));
        ("dist-overlap-replay", fun () -> dist_replay_section name (Lazy.force mesh));
        ("ensemble-replay", fun () -> ens_replay_section name (Lazy.force mesh));
        ("server-recovery", fun () -> server_recovery_section name (Lazy.force mesh));
      ]
  in
  per "planar-hex-6x4" hex hex_probe false
  @ per "icosahedral-l1" ico ico_probe true
  @ [ ("explore", fun () -> explore_section ()) ]

(* Auto-detect the repository root for the source scan: analyze runs
   from the project root in CI but from _build subdirectories under
   `dune exec`, so probe upward. *)
let detect_src_root () =
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "lib/swe/operators.ml"))
    [ "."; ".."; "../.."; "../../.."; "../../../.."; "../../../../.." ]

let json_of_section s =
  Jsonv.Obj
    [
      ("section", Jsonv.Str s.sec_name);
      ("mesh", Jsonv.Str s.sec_mesh);
      ("checks", Jsonv.Num (float_of_int s.sec_checks));
      ( "failures",
        Jsonv.Arr (List.map (fun f -> Jsonv.Str f) s.sec_failures) );
    ]

let run json only src_root_opt =
  let src_root =
    match src_root_opt with Some _ -> src_root_opt | None -> detect_src_root ()
  in
  let catalog = section_catalog ~src_root () in
  let selected =
    match only with
    | [] -> catalog
    | prefixes ->
        let unmatched =
          List.filter
            (fun p ->
              not
                (List.exists
                   (fun (k, _) -> String.starts_with ~prefix:p k)
                   catalog))
            prefixes
        in
        List.iter
          (fun p -> Printf.eprintf "analyze: --only %s matches no section\n" p)
          unmatched;
        if unmatched <> [] then exit 2;
        List.filter
          (fun (k, _) ->
            List.exists (fun p -> String.starts_with ~prefix:p k) prefixes)
          catalog
  in
  let secs = List.map (fun (_, thunk) -> thunk ()) selected in
  let ok = List.for_all (fun s -> s.sec_failures = []) secs in
  if json then
    print_endline
      (Jsonv.to_string
         (Jsonv.Obj
            [
              ("ok", Jsonv.Bool ok);
              ("sections", Jsonv.Arr (List.map json_of_section secs));
            ]))
  else begin
    List.iter
      (fun s ->
        Printf.printf "%-28s %-16s %5d checks  %s\n" s.sec_name s.sec_mesh
          s.sec_checks
          (if s.sec_failures = [] then "ok"
           else Printf.sprintf "%d FAILURES" (List.length s.sec_failures));
        List.iter (fun f -> Printf.printf "    %s\n" f) s.sec_failures)
      secs;
    print_endline
      (if ok then "analyze: all checks passed"
       else "analyze: FAILURES found")
  end;
  if ok then 0 else 1

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let only =
  Arg.(
    value & opt_all string []
    & info [ "only" ] ~docv:"SECTION"
        ~doc:
          "Run only sections whose name starts with $(docv); repeatable.  CI \
           shards the suite across jobs with this.")

let src_root =
  Arg.(
    value
    & opt (some dir) None
    & info [ "src-root" ] ~docv:"DIR"
        ~doc:
          "Repository root holding the kernel sources for the bounds source \
           scan (default: auto-detected by probing upward for \
           lib/swe/operators.ml).")

let cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Footprint analyzer and sanitizer suite: registry access inference, \
          unsafe CSR bounds audit (with self-audit), schedule race check, \
          overlapped distributed-schedule lint, online vector-clock race \
          monitoring, bounded interleaving exploration")
    Term.(const run $ json $ only $ src_root)

let () = exit (Cmd.eval' cmd)
