(* Static-analysis lint driver: runs the three footprint checkers over
   both mesh families and exits nonzero on any violation.

   1. registry inference — every Table I instance's inferred
      read/write sets (shadow instrumentation through the runtime's
      own compiled closures) must match its declarations, in CSR
      fast-path, ragged and split-part modes;
   2. bounds audit — every unsafe-indexed site of the CSR kernels must
      be discharged by the mesh's validated CSR invariants;
   3. schedule races — compiled phase programs for each placement plan
      must order every conflicting task pair, and a live executor log
      must replay clean;
   4. overlapped distributed schedules — the comm-extended phase
      programs of the overlapped halo-exchange driver must pass the
      same structural and race checks, their pack/transfer/unpack
      bodies must move exactly the declared ghosts, and a stolen live
      run must replay clean. *)

open Cmdliner
module Jsonv = Mpas_obs.Jsonv
module A = Mpas_analysis

type section = {
  sec_name : string;
  sec_mesh : string;
  sec_checks : int;
  sec_failures : string list;
}

let registry_section mesh_name probe =
  let reports = A.Infer.check_registry probe in
  let failures =
    List.concat_map
      (fun (r : A.Infer.report) ->
        List.map
          (fun v ->
            Printf.sprintf "%s/%s [%s]: %s" r.A.Infer.r_instance
              (match r.A.Infer.r_phase with
              | `Early -> "early"
              | `Final -> "final")
              (A.Infer.mode_name r.A.Infer.r_mode)
              (A.Infer.violation_message v))
          r.A.Infer.r_violations)
      (A.Infer.failed reports)
  in
  {
    sec_name = "registry-inference";
    sec_mesh = mesh_name;
    sec_checks = List.length reports;
    sec_failures = failures;
  }

let bounds_section mesh_name mesh =
  let reports = A.Bounds.audit mesh in
  let failures =
    List.map
      (fun (r : A.Bounds.site_report) ->
        match r.A.Bounds.sr_verdict with
        | A.Bounds.Refuted invs ->
            Printf.sprintf "%s: %s" (A.Bounds.site_name r.A.Bounds.sr_site)
              (String.concat "; " (List.map A.Bounds.invariant_name invs))
        | A.Bounds.Proved _ -> assert false)
      (A.Bounds.refuted reports)
  in
  {
    sec_name = "bounds-audit";
    sec_mesh = mesh_name;
    sec_checks = List.length reports;
    sec_failures = failures;
  }

let plans =
  [
    ("no-plan", None);
    ("kernel-level", Some Mpas_hybrid.Plan.kernel_level);
    ("pattern-driven", Some Mpas_hybrid.Plan.pattern_driven);
  ]

let split = 0.4

let races_section mesh_name probe (plan_name, plan) =
  let spec = Mpas_runtime.Spec.build ?plan ~split ~recon:true () in
  let early_footprints, final_footprints = A.Infer.spec_footprints probe spec in
  let prs = A.Races.check_spec ~early_footprints ~final_footprints spec in
  let failures =
    List.concat_map
      (fun (pr : A.Races.phase_races) ->
        List.map
          (fun r ->
            Printf.sprintf "%s phase: %s"
              (match pr.A.Races.pr_phase with
              | `Early -> "early"
              | `Final -> "final")
              (A.Races.race_message r))
          pr.A.Races.pr_races)
      prs
  in
  let n_pairs phase =
    let n = Array.length phase.Mpas_runtime.Spec.tasks in
    n * (n - 1) / 2
  in
  {
    sec_name = "static-races:" ^ plan_name;
    sec_mesh = mesh_name;
    sec_checks =
      n_pairs spec.Mpas_runtime.Spec.early
      + n_pairs spec.Mpas_runtime.Spec.final;
    sec_failures = failures;
  }

(* Drive the real engine for a few steps and replay its log: every
   task exactly once, every edge respected, no conflicting overlap.
   The spec checked against is the one the engine actually compiled
   ([Engine.program]), so fused and tiled programs replay too. *)
let replay_with ~tag ~mode ?(fuse = false) ?(tiling = `Off) ~domains mesh_name
    mesh probe =
  let plan = Mpas_hybrid.Plan.pattern_driven in
  let steps = 2 in
  let log : Mpas_runtime.Exec.log = ref [] in
  let entries = ref 0 and issues = ref [] in
  Mpas_par.Pool.with_pool ~n_domains:domains (fun pool ->
      let eng =
        Mpas_runtime.Engine.create ~mode ~pool ~plan ~split ~fuse ~tiling ~log
          ()
      in
      let model =
        Mpas_swe.Model.init
          ~engine:(Mpas_runtime.Engine.timestep_engine eng)
          Mpas_swe.Williamson.Tc5 mesh
      in
      (* One warm-up-free prime of the footprints is impossible before
         the engine compiled its program, so run step 1, then fetch the
         spec and check both steps' logs. *)
      let spec = ref None in
      let footprints = ref ([||], [||]) in
      (* sequence counters restart every run_phase call, so the log is
         drained and checked one step at a time *)
      for _ = 1 to steps do
        Mpas_swe.Model.run model ~steps:1;
        (match !spec with
        | Some _ -> ()
        | None ->
            let s = Option.get (Mpas_runtime.Engine.program eng) in
            spec := Some s;
            footprints := A.Infer.spec_footprints probe s);
        let s = Option.get !spec in
        let early_footprints, final_footprints = !footprints in
        entries := !entries + List.length !log;
        issues :=
          !issues
          @ A.Races.check_log ~spec:s ~early_footprints ~final_footprints !log;
        log := []
      done);
  {
    sec_name =
      Printf.sprintf "log-replay:%s(%d steps, %d entries)" tag steps !entries;
    sec_mesh = mesh_name;
    sec_checks = !entries;
    sec_failures = List.map A.Races.issue_message !issues;
  }

let replay_section mesh_name mesh probe =
  replay_with ~tag:"pattern-driven" ~mode:Mpas_runtime.Exec.Async ~domains:2
    mesh_name mesh probe

(* The same replay over a stolen schedule of fused super-tasks: the
   work-stealing executor's logs must order every conflicting pair
   exactly like the sorted-queue executor's. *)
let steal_replay_section mesh_name mesh probe =
  replay_with ~tag:"steal-fused" ~mode:Mpas_runtime.Exec.Steal ~fuse:true
    ~domains:4 mesh_name mesh probe

(* Overlapped distributed schedules (Mpas_dist.Overlap): structural
   well-formedness, race freedom of the comm-extended program under
   the declared region footprints, and a self-test that seeding a
   missing unpack -> consumer edge is actually caught (so a clean
   verdict means something). *)
let dist_static_section mesh_name mesh =
  let d = Mpas_dist.Driver.init ~n_ranks:3 Mpas_swe.Williamson.Tc5 mesh in
  let ov = Mpas_dist.Overlap.of_driver d in
  let spec = Mpas_dist.Overlap.spec ov in
  let structural = Mpas_runtime.Spec.check spec in
  let prs = A.Comm.check_spec ov in
  let race_failures =
    List.concat_map
      (fun (pr : A.Races.phase_races) ->
        List.map
          (fun r ->
            Printf.sprintf "%s phase: %s"
              (match pr.A.Races.pr_phase with
              | `Early -> "early"
              | `Final -> "final")
              (A.Races.race_message r))
          pr.A.Races.pr_races)
      prs
  in
  let early_footprints, _ = A.Comm.footprints ov in
  let phase = spec.Mpas_runtime.Spec.early in
  let unpack_edges =
    List.filter
      (fun (src, dst) ->
        (match phase.Mpas_runtime.Spec.tasks.(src).Mpas_runtime.Spec.kind with
        | Mpas_runtime.Spec.Unpack _ -> true
        | _ -> false)
        && phase.Mpas_runtime.Spec.tasks.(dst).Mpas_runtime.Spec.kind
           = Mpas_runtime.Spec.Compute)
      (A.Races.edges phase)
  in
  let caught =
    List.length
      (List.filter
         (fun (src, dst) ->
           List.exists
             (fun (r : A.Races.race) -> r.A.Races.ra = src && r.A.Races.rb = dst)
             (A.Races.check_phase ~footprints:early_footprints
                (A.Races.drop_edge phase ~src ~dst)))
         unpack_edges)
  in
  let selftest_failures =
    if unpack_edges = [] then [ "no unpack -> consumer edges to self-test" ]
    else if caught = 0 then
      [
        Printf.sprintf
          "self-test: %d seeded unpack-edge drops, none reported as a race"
          (List.length unpack_edges);
      ]
    else []
  in
  let n_pairs phase =
    let n = Array.length phase.Mpas_runtime.Spec.tasks in
    n * (n - 1) / 2
  in
  {
    sec_name = "dist-overlap-static";
    sec_mesh = mesh_name;
    sec_checks =
      n_pairs spec.Mpas_runtime.Spec.early
      + n_pairs spec.Mpas_runtime.Spec.final
      + List.length unpack_edges;
    sec_failures = structural @ race_failures @ selftest_failures;
  }

(* The compiled pack/transfer/unpack closures must move exactly the
   ghosts the exchange maps declare — run each chain over an encoded
   shadow state. *)
let dist_bodies_section mesh_name mesh =
  let d = Mpas_dist.Driver.init ~n_ranks:3 Mpas_swe.Williamson.Tc5 mesh in
  let ov = Mpas_dist.Overlap.of_driver d in
  let failures = A.Comm.verify_bodies ov in
  {
    sec_name = "dist-overlap-bodies";
    sec_mesh = mesh_name;
    sec_checks = Mpas_mesh.Mesh.(mesh.n_cells + mesh.n_edges + mesh.n_vertices);
    sec_failures = failures;
  }

(* Live replay of the overlapped driver on the work-stealing executor:
   every comm and compute task exactly once per substep, all edges
   respected, no conflicting overlap. *)
let dist_replay_section mesh_name mesh =
  let steps = 2 in
  let log : Mpas_runtime.Exec.log = ref [] in
  let entries = ref 0 and issues = ref [] in
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let d = Mpas_dist.Driver.init ~n_ranks:3 Mpas_swe.Williamson.Tc5 mesh in
      let ov =
        Mpas_dist.Overlap.of_driver ~mode:Mpas_runtime.Exec.Steal ~pool ~log d
      in
      for _ = 1 to steps do
        Mpas_dist.Overlap.step ov;
        entries := !entries + List.length !log;
        issues := !issues @ A.Comm.check_log ov !log;
        log := []
      done);
  {
    sec_name =
      Printf.sprintf "dist-overlap-replay:steal(%d steps, %d entries)" steps
        !entries;
    sec_mesh = mesh_name;
    sec_checks = !entries;
    sec_failures = List.map A.Races.issue_message !issues;
  }

(* Ensemble member-axis programs: structural well-formedness of the
   compiled block-chain phases, race freedom under the engine's
   declared block-qualified slot accesses, and a self-test that
   severing a chain edge between two conflicting tasks of one block is
   actually caught. *)
let ens_static_section mesh_name mesh =
  let e = Mpas_ensemble.Ensemble.create ~capacity:8 ~block:2 mesh in
  let spec = Mpas_ensemble.Ensemble.spec e in
  let structural = Mpas_runtime.Spec.check spec in
  let race_failures =
    List.concat_map
      (fun (pr : A.Races.phase_races) ->
        List.map
          (fun r ->
            Printf.sprintf "%s phase: %s"
              (match pr.A.Races.pr_phase with
              | `Early -> "early"
              | `Final -> "final")
              (A.Races.race_message r))
          pr.A.Races.pr_races)
      (A.Ens.check_spec e)
  in
  (* self-test: drop each block-0 chain edge; at least one severed
     pair must surface as a race, or a clean verdict proves nothing *)
  let phase = spec.Mpas_runtime.Spec.early in
  let footprints = A.Ens.footprints e `Early in
  let nk = phase.Mpas_runtime.Spec.n_levels in
  let chain_edges =
    List.filter (fun (src, dst) -> src < nk && dst < nk) (A.Races.edges phase)
  in
  let caught =
    List.length
      (List.filter
         (fun (src, dst) ->
           List.exists
             (fun (r : A.Races.race) -> r.A.Races.ra = src && r.A.Races.rb = dst)
             (A.Races.check_phase ~footprints
                (A.Races.drop_edge phase ~src ~dst)))
         chain_edges)
  in
  let selftest_failures =
    if chain_edges = [] then [ "no block-chain edges to self-test" ]
    else if caught = 0 then
      [
        Printf.sprintf
          "self-test: %d seeded chain-edge drops, none reported as a race"
          (List.length chain_edges);
      ]
    else []
  in
  let n_pairs phase =
    let n = Array.length phase.Mpas_runtime.Spec.tasks in
    n * (n - 1) / 2
  in
  {
    sec_name = "ensemble-static";
    sec_mesh = mesh_name;
    sec_checks =
      n_pairs spec.Mpas_runtime.Spec.early
      + n_pairs spec.Mpas_runtime.Spec.final
      + List.length chain_edges;
    sec_failures = structural @ race_failures @ selftest_failures;
  }

(* Live replay of a stolen ensemble batch (three perturbed Williamson
   members): every block task exactly once per substep, chain edges
   respected, no conflicting overlap between member blocks. *)
let ens_replay_section mesh_name mesh =
  let steps = 2 in
  let log : Mpas_runtime.Exec.log = ref [] in
  let entries = ref 0 and issues = ref [] in
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let e =
        Mpas_ensemble.Ensemble.create ~capacity:8 ~block:2
          ~mode:Mpas_runtime.Exec.Steal ~pool ~log mesh
      in
      List.iter
        (fun (case, config) ->
          ignore (Mpas_ensemble.Ensemble.submit_case e ~config case))
        [
          (Mpas_swe.Williamson.Tc5, Mpas_swe.Config.default);
          ( Mpas_swe.Williamson.Tc2,
            { Mpas_swe.Config.default with h_adv_order = Mpas_swe.Config.Second }
          );
          ( Mpas_swe.Williamson.Tc6,
            { Mpas_swe.Config.default with visc2 = 1e3 } );
        ];
      for _ = 1 to steps do
        Mpas_ensemble.Ensemble.step e ();
        entries := !entries + List.length !log;
        issues := !issues @ A.Ens.check_log e !log;
        log := []
      done);
  {
    sec_name =
      Printf.sprintf "ensemble-replay:steal(%d steps, %d entries)" steps
        !entries;
    sec_mesh = mesh_name;
    sec_checks = !entries;
    sec_failures = List.map A.Races.issue_message !issues;
  }

(* Serving-layer recovery lint: drive the server under several seeded
   fault schedules.  Every job must either complete bit-identically to
   its fault-free solo reference or be reported [Failed] with a reason
   — a wedged queue or silent corruption is a failure.  A schedule
   that never forces a restore proves nothing, so across the seeds at
   least one checkpoint restore is also required. *)
let server_recovery_section mesh_name mesh =
  let module S = Mpas_server.Server in
  let module F = Mpas_server.Fault in
  let module Metrics = Mpas_obs.Metrics in
  let steps = 6 in
  let requests =
    [
      ("acme", S.High, Mpas_swe.Williamson.Tc5, Mpas_swe.Config.default);
      ( "acme",
        S.Normal,
        Mpas_swe.Williamson.Tc2,
        { Mpas_swe.Config.default with h_adv_order = Mpas_swe.Config.Second } );
      ( "beta",
        S.Normal,
        Mpas_swe.Williamson.Tc6,
        { Mpas_swe.Config.default with pv_average = Mpas_swe.Config.Edge_only }
      );
      ("beta", S.Low, Mpas_swe.Williamson.Tc2_rotated, Mpas_swe.Config.default);
    ]
  in
  let reference =
    let cache = Hashtbl.create 8 in
    fun case config ->
      match Hashtbl.find_opt cache (case, config) with
      | Some st -> st
      | None ->
          let model =
            Mpas_swe.Model.init ~config ~engine:Mpas_swe.Timestep.refactored
              case mesh
          in
          Mpas_swe.Model.run model ~steps;
          Hashtbl.add cache (case, config) model.Mpas_swe.Model.state;
          model.Mpas_swe.Model.state
  in
  let same a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  let seeds = [ 3; 41; 2026 ] in
  let failures = ref [] and checks = ref 0 and restores = ref 0 in
  let failf fmt = Printf.ksprintf (fun s -> failures := !failures @ [ s ]) fmt in
  List.iter
    (fun seed ->
      let registry = Metrics.create () in
      let fault = F.plan ~ticks:10 ~events:4 ~seed () in
      let srv =
        S.create ~registry ~capacity:2 ~block:1 ~queue_limit:8
          ~checkpoint_every:2 ~max_retries:4 ~fault mesh
      in
      let ids =
        List.filter_map
          (fun (tenant, priority, case, config) ->
            match S.submit srv ~tenant ~priority ~config ~steps case with
            | Ok id -> Some (id, tenant, case, config)
            | Error r ->
                failf "seed %d: clean submit rejected: %s" seed
                  (S.reject_message r);
                None)
          requests
      in
      if not (S.drain srv ~max_ticks:500 ()) then
        failf "seed %d: queue did not drain in 500 ticks (plan [%s])" seed
          (F.to_string fault);
      List.iter
        (fun (id, tenant, case, config) ->
          incr checks;
          let info = S.query srv id in
          match info.S.jb_status with
          | S.Completed -> (
              match S.result srv id with
              | Some got ->
                  let want = reference case config in
                  if
                    not
                      (same want.Mpas_swe.Fields.h got.Mpas_swe.Fields.h
                      && same want.Mpas_swe.Fields.u got.Mpas_swe.Fields.u)
                  then
                    failf
                      "seed %d: job %d (%s) completed but diverged from its \
                       fault-free reference"
                      seed id tenant
              | None -> failf "seed %d: job %d completed without a result" seed id)
          | S.Failed reason when reason <> "" -> ()
          | s ->
              failf "seed %d: job %d (%s) ended %s, expected completed or \
                     failed-with-reason"
                seed id tenant (S.status_name s))
        ids;
      match Metrics.find_counter (Metrics.snapshot registry) "server.restores" with
      | Some n -> restores := !restores + n
      | None -> ())
    seeds;
  incr checks;
  if !restores = 0 then
    failf "no seed forced a checkpoint restore; the lint proved nothing";
  {
    sec_name = Printf.sprintf "server-recovery(%d seeds)" (List.length seeds);
    sec_mesh = mesh_name;
    sec_checks = !checks;
    sec_failures = !failures;
  }

let sections () =
  let meshes =
    [
      ( "planar-hex-6x4",
        Mpas_mesh.Planar_hex.create ~f:1e-4 ~nx:6 ~ny:4 ~dc:1000. () );
      ("icosahedral-l1", Mpas_mesh.Build.icosahedral ~level:1 ~lloyd_iters:2 ());
    ]
  in
  List.concat_map
    (fun (name, mesh) ->
      let probe = A.Infer.create mesh in
      (registry_section name probe :: bounds_section name mesh
       :: ens_static_section name mesh
       :: List.map (races_section name probe) plans)
      @
      match name with
      | "icosahedral-l1" ->
          [
            replay_section name mesh probe;
            steal_replay_section name mesh probe;
            dist_static_section name mesh;
            dist_bodies_section name mesh;
            dist_replay_section name mesh;
            ens_replay_section name mesh;
            server_recovery_section name mesh;
          ]
      | _ -> [])
    meshes

let json_of_section s =
  Jsonv.Obj
    [
      ("section", Jsonv.Str s.sec_name);
      ("mesh", Jsonv.Str s.sec_mesh);
      ("checks", Jsonv.Num (float_of_int s.sec_checks));
      ( "failures",
        Jsonv.Arr (List.map (fun f -> Jsonv.Str f) s.sec_failures) );
    ]

let run json =
  let secs = sections () in
  let ok = List.for_all (fun s -> s.sec_failures = []) secs in
  if json then
    print_endline
      (Jsonv.to_string
         (Jsonv.Obj
            [
              ("ok", Jsonv.Bool ok);
              ("sections", Jsonv.Arr (List.map json_of_section secs));
            ]))
  else begin
    List.iter
      (fun s ->
        Printf.printf "%-28s %-16s %5d checks  %s\n" s.sec_name s.sec_mesh
          s.sec_checks
          (if s.sec_failures = [] then "ok"
           else Printf.sprintf "%d FAILURES" (List.length s.sec_failures));
        List.iter (fun f -> Printf.printf "    %s\n" f) s.sec_failures)
      secs;
    print_endline
      (if ok then "analyze: all checks passed"
       else "analyze: FAILURES found")
  end;
  if ok then 0 else 1

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Footprint analyzer: registry access inference, unsafe CSR bounds \
          audit, schedule race check, overlapped distributed-schedule lint")
    Term.(const run $ json)

let () = exit (Cmd.eval' cmd)
