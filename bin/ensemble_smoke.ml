(* Smoke check for the ensemble batch-serving engine: submit a mixed
   batch of perturbed Williamson configurations, advance it with the
   work-stealing executor, query every member, and verify each member's
   trajectory is bit-identical to a solo run of the refactored engine
   with the same configuration.  Also exercises the serving surface:
   a member with a step target must finish [Done], and a member poisoned
   with a NaN must be quarantined [Failed] without disturbing the rest
   of the batch.  Exits nonzero on any divergence.  Wired to the
   [ensemble-smoke] dune alias, which CI builds on every push.

   [--members N] scales the batch (perturbation templates cycle) and
   [--steps N] the horizon, so CI and profiling runs can size the same
   check up without editing it. *)

open Mpas_swe
open Mpas_ensemble

let templates =
  [|
    ("tc5/default", Williamson.Tc5, Config.default);
    ("tc2/second-order", Williamson.Tc2, { Config.default with h_adv_order = Config.Second });
    ("tc6/edge-only-pv", Williamson.Tc6, { Config.default with pv_average = Config.Edge_only });
    ( "tc5/viscous-drag",
      Williamson.Tc5,
      { Config.default with visc2 = 1e3; bottom_drag = 1e-6; apvm_factor = 0.25 } );
    ("tc2-rotated/default", Williamson.Tc2_rotated, Config.default);
  |]

let usage () =
  prerr_endline "usage: ensemble_smoke [--members N] [--steps N]   (N >= 1)";
  exit 2

let members, steps =
  let members = ref 5 and steps = ref 5 in
  let set r v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> r := n
    | _ -> usage ()
  in
  let rec parse = function
    | [] -> ()
    | "--members" :: v :: rest ->
        set members v;
        parse rest
    | "--steps" :: v :: rest ->
        set steps v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (!members, !steps)

let batch =
  List.init members (fun i ->
      let t = i mod Array.length templates in
      let name, case, config = templates.(t) in
      (Printf.sprintf "%s#%d" name i, case, config, t))

let same a b =
  Array.for_all2
    (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
    a b

let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "ensemble-smoke FAILED: %s\n%!" s; exit 1) fmt

let () =
  let m = Mpas_mesh.Build.icosahedral ~level:2 () in
  (* one solo reference per (template, horizon), shared by the members
     that cycle onto the same template *)
  let solo_cache = Hashtbl.create 16 in
  let solo t n =
    match Hashtbl.find_opt solo_cache (t, n) with
    | Some st -> st
    | None ->
        let _, case, config = templates.(t) in
        let model = Model.init ~config ~engine:Timestep.refactored case m in
        Model.run model ~steps:n;
        Hashtbl.add solo_cache (t, n) model.Model.state;
        model.Model.state
  in
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let e =
        Ensemble.create ~capacity:(max 16 (members + 1)) ~block:2
          ~mode:Mpas_runtime.Exec.Steal ~pool m
      in
      let ids =
        List.map
          (fun (name, case, config, t) ->
            (name, t, Ensemble.submit_case e ~tenant:name ~config case))
          batch
      in
      (* an extra member stops early on its own target *)
      let capped = Ensemble.submit_case e ~target:2 Williamson.Tc5 in
      Ensemble.step e ~n:steps ();
      List.iter
        (fun (name, t, id) ->
          let info = Ensemble.query e id in
          (match info.Ensemble.i_status with
          | Ensemble.Running -> ()
          | s -> fail "%s: status %s after %d steps" name (Ensemble.status_name s) steps);
          if info.Ensemble.i_steps <> steps then
            fail "%s: %d steps, expected %d" name info.Ensemble.i_steps steps;
          let got = Ensemble.state e id in
          let ref_state = solo t steps in
          if not (same ref_state.Fields.h got.Fields.h) then
            fail "%s: h diverged from solo reference" name;
          if not (same ref_state.Fields.u got.Fields.u) then
            fail "%s: u diverged from solo reference" name;
          Printf.printf "ensemble-smoke ok: %-22s bit-identical to solo (%d steps)\n%!"
            name steps)
        ids;
      (match Ensemble.query e capped with
      | { Ensemble.i_status = Ensemble.Done; i_steps = 2; _ } ->
          print_endline "ensemble-smoke ok: capped member finished Done at its target"
      | info ->
          fail "capped member: status %s after %d steps, expected done at 2"
            (Ensemble.status_name info.Ensemble.i_status)
            info.Ensemble.i_steps);
      (* poison one member; the batch must quarantine it and keep going *)
      if members >= 2 then begin
        let _, _, victim_id = List.nth ids 0 in
        let wname, wt, witness_id = List.nth ids 1 in
        let poisoned = Ensemble.state e victim_id in
        poisoned.Fields.h.(0) <- Float.nan;
        Ensemble.set_state e victim_id poisoned;
        Ensemble.step e ~n:2 ();
        (match Ensemble.query e victim_id with
        | { Ensemble.i_status = Ensemble.Failed reason; _ } ->
            Printf.printf "ensemble-smoke ok: poisoned member quarantined (%s)\n%!"
              reason
        | info ->
            fail "poisoned member: status %s, expected failed"
              (Ensemble.status_name info.Ensemble.i_status));
        (match Ensemble.query e witness_id with
        | { Ensemble.i_status = Ensemble.Running; i_steps; _ }
          when i_steps = steps + 2 ->
            ()
        | info ->
            fail "witness member: status %s at %d steps, expected running at %d"
              (Ensemble.status_name info.Ensemble.i_status)
              info.Ensemble.i_steps (steps + 2));
        let got = Ensemble.state e witness_id in
        let ref_state = solo wt (steps + 2) in
        if
          not
            (same ref_state.Fields.h got.Fields.h
            && same ref_state.Fields.u got.Fields.u)
        then fail "%s: diverged after a neighbour's quarantine" wname;
        Printf.printf
          "ensemble-smoke ok: batch unaffected by the quarantine (%d members, occupancy %.2f)\n%!"
          (List.length (Ensemble.members e))
          (Ensemble.occupancy e)
      end);
  Printf.printf
    "ensemble-smoke ok: all %d members bit-identical to their solo references (%d steps)\n"
    members steps
