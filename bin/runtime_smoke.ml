(* Smoke check for the dataflow task runtime: a few RK-4 steps on a
   tiny mesh must reproduce the sequential engine bit for bit under
   (1) the asynchronous DAG engine on two domains with the
   pattern-driven plan and a real 0.5 split, and (2) the full
   optimisation stack — fused super-tasks, cache-aware tiling and
   work-stealing lanes on four domains.  Wired to the [runtime-smoke]
   dune alias, which CI builds on every push. *)

open Mpas_swe

let () =
  let m = Mpas_mesh.Build.icosahedral ~level:2 () in
  let steps = 5 in
  let reference = Model.init Williamson.Tc5 m in
  Model.run reference ~steps;
  let same a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  let matches eng =
    let model =
      Model.init ~engine:(Mpas_runtime.Engine.timestep_engine eng)
        Williamson.Tc5 m
    in
    Model.run model ~steps;
    same reference.Model.state.Fields.h model.Model.state.Fields.h
    && same reference.Model.state.Fields.u model.Model.state.Fields.u
  in
  let check name ok =
    if ok then Printf.printf "runtime-smoke ok: %s\n%!" name
    else begin
      Printf.eprintf "runtime-smoke FAILED: %s diverged from sequential\n%!"
        name;
      exit 1
    end
  in
  Mpas_par.Pool.with_pool ~n_domains:2 (fun pool ->
      check "async DAG engine (2 domains, split 0.5)"
        (matches
           (Mpas_runtime.Engine.create ~mode:Mpas_runtime.Exec.Async ~pool
              ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.5 ())));
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      check "fused+stealing+tiled engine (4 domains)"
        (matches
           (Mpas_runtime.Engine.create ~mode:Mpas_runtime.Exec.Steal ~pool
              ~fuse:true ~tiling:`Auto ())));
  print_endline
    "runtime-smoke ok: all engines bit-identical to sequential (5 steps)"
