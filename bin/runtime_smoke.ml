(* Smoke check for the dataflow task runtime: a few RK-4 steps on a
   tiny mesh driven by the asynchronous DAG engine on two domains (with
   the pattern-driven plan and a real 0.5 split) must reproduce the
   sequential engine bit for bit.  Wired to the [runtime-smoke] dune
   alias, which CI builds on every push. *)

open Mpas_swe

let () =
  let m = Mpas_mesh.Build.icosahedral ~level:2 () in
  let steps = 5 in
  let reference = Model.init Williamson.Tc5 m in
  Model.run reference ~steps;
  let ok =
    Mpas_par.Pool.with_pool ~n_domains:2 (fun pool ->
        let eng =
          Mpas_runtime.Engine.create ~mode:Mpas_runtime.Exec.Async ~pool
            ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.5 ()
        in
        let model =
          Model.init
            ~engine:(Mpas_runtime.Engine.timestep_engine eng)
            Williamson.Tc5 m
        in
        Model.run model ~steps;
        let same a b =
          Array.for_all2
            (fun x y ->
              Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
            a b
        in
        same reference.Model.state.Fields.h model.Model.state.Fields.h
        && same reference.Model.state.Fields.u model.Model.state.Fields.u)
  in
  if ok then
    print_endline
      "runtime-smoke ok: async DAG engine bit-identical to sequential (5 \
       steps, 2 domains, split 0.5)"
  else begin
    prerr_endline "runtime-smoke FAILED: async DAG engine diverged from \
                   sequential";
    exit 1
  end
