(* End-to-end check of the serving layer: two tenants submit a mixed
   batch of Williamson jobs, a seeded fault plan injects kernel raises,
   checkpoint truncation and lane deaths while they run, and the server
   must recover every job from its checkpoints and drain — with every
   completed job bit-identical to an uninterrupted solo run of the
   refactored engine, and every non-completed job carrying a reason.
   Also exercises admission control: an over-quota burst must be
   rejected deterministically with a typed reason.  Exits nonzero on
   any violation.  Wired to the [server-smoke] dune alias with a fixed
   seed; [--seed N] replays any other schedule. *)

open Mpas_swe
module S = Mpas_server.Server
module F = Mpas_server.Fault
module Metrics = Mpas_obs.Metrics

let fail fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "server-smoke FAILED: %s\n%!" s;
      exit 1)
    fmt

let seed =
  match Array.to_list Sys.argv with
  | [ _ ] -> 7
  | [ _; "--seed"; v ] -> (
      match int_of_string_opt v with Some n -> n | None -> fail "bad seed %s" v)
  | _ ->
      prerr_endline "usage: server_smoke [--seed N]";
      exit 2

let steps = 6

let requests =
  [
    ("acme", S.High, Williamson.Tc5, Config.default);
    ("acme", S.Normal, Williamson.Tc2, { Config.default with h_adv_order = Config.Second });
    ("acme", S.Normal, Williamson.Tc5, { Config.default with visc2 = 1e3; bottom_drag = 1e-6 });
    ("beta", S.Normal, Williamson.Tc6, { Config.default with pv_average = Config.Edge_only });
    ("beta", S.Low, Williamson.Tc2_rotated, Config.default);
  ]

let same a b =
  Array.for_all2
    (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
    a b

let () =
  let m = Mpas_mesh.Build.icosahedral ~level:1 ~lloyd_iters:2 () in
  let registry = Metrics.create () in
  let fault = F.plan ~ticks:8 ~events:4 ~seed () in
  Printf.printf "server-smoke: seed %d -> fault plan [%s]\n%!" seed
    (F.to_string fault);
  let srv =
    S.create ~registry ~capacity:3 ~block:1 ~queue_limit:8 ~tenant_quota:3
      ~checkpoint_every:2 ~max_retries:4 ~fault m
  in
  let ids =
    List.map
      (fun (tenant, priority, case, config) ->
        let weight = if tenant = "acme" then 2.0 else 1.0 in
        match S.submit srv ~tenant ~weight ~priority ~config ~steps case with
        | Ok id -> (id, tenant, case, config)
        | Error r -> fail "admission rejected a clean submit: %s" (S.reject_message r))
      requests
  in
  (* the over-quota burst must bounce with a typed, stable reason *)
  (match S.submit srv ~tenant:"acme" ~steps Williamson.Tc5 with
  | Error (S.Tenant_quota ("acme", 3) as r) ->
      Printf.printf "server-smoke ok: over-quota burst rejected (%s)\n%!"
        (S.reject_message r)
  | Error r -> fail "over-quota burst: wrong rejection %s" (S.reject_message r)
  | Ok id -> fail "over-quota burst admitted as job %d" id);
  if not (S.drain srv ~max_ticks:300 ()) then
    fail "queue did not drain in 300 ticks";
  let completed = ref 0 in
  List.iter
    (fun (id, tenant, case, config) ->
      let info = S.query srv id in
      match info.S.jb_status with
      | S.Completed ->
          incr completed;
          let got = Option.get (S.result srv id) in
          let solo = Model.init ~config ~engine:Timestep.refactored case m in
          Model.run solo ~steps;
          if
            not
              (same solo.Model.state.Fields.h got.Fields.h
              && same solo.Model.state.Fields.u got.Fields.u)
          then
            fail "job %d (%s): completed but diverged from the solo reference"
              id tenant;
          Printf.printf
            "server-smoke ok: job %d (%s) completed, %d retries, bit-identical\n%!"
            id tenant info.S.jb_retries
      | S.Failed reason when reason <> "" ->
          Printf.printf "server-smoke ok: job %d (%s) failed with reason: %s\n%!"
            id tenant reason
      | s -> fail "job %d (%s): unexpected terminal state %s" id tenant (S.status_name s))
    ids;
  if !completed = 0 then fail "no job completed; the check proved nothing";
  let snap = Metrics.snapshot registry in
  let total name =
    List.fold_left
      (fun acc (n, e) ->
        match e with
        | Metrics.Counter_value v when fst (Metrics.parse_labeled n) = name ->
            acc + v
        | _ -> acc)
      0 snap
  in
  let injected = total "server.faults_injected" in
  let disruptive =
    List.exists
      (fun (ev : F.event) ->
        ev.F.ev_kind = F.Kernel_raise || ev.F.ev_kind = F.Lane_death)
      fault
  in
  if List.length fault > 0 && injected = 0 then
    fail "fault plan had %d events but none was injected" (List.length fault);
  let recoveries = total "server.recoveries" in
  if disruptive && recoveries = 0 then
    fail "disruptive faults injected but no recovery happened";
  Printf.printf
    "server-smoke ok: drained in %d ticks (%d faults injected, %d recoveries, %d restores, %d checkpoints, %d corrupt skipped)\n%!"
    (S.now srv) injected recoveries
    (total "server.restores")
    (total "server.checkpoints_written")
    (total "server.snapshots_corrupt_skipped");
  List.iter
    (fun (n, e) ->
      match e with
      | Metrics.Counter_value v when String.length n >= 7 && String.sub n 0 7 = "server." ->
          Printf.printf "  %-48s %d\n" n v
      | _ -> ())
    snap;
  print_endline "server-smoke ok: submit -> fault -> recover -> drain survived"
