(* Pretty-print a saved measured-vs-roofline report.

   Usage: obs_report FILE
   where FILE is either a bench [--json] dump (the report is read from
   its "measured_vs_roofline" field) or a bare report object. *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run path =
  try
    let json = Mpas_obs.Jsonv.of_string (read_file path) in
    let report_json =
      match Mpas_obs.Jsonv.member "measured_vs_roofline" json with
      | Some j -> j
      | None -> json
    in
    let report = Mpas_obs_report.Report.of_json report_json in
    print_endline (Mpas_obs_report.Report.to_string report);
    0
  with
  | Sys_error msg | Failure msg ->
      prerr_endline ("obs_report: " ^ msg);
      1

let path_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Saved report (bench --json dump) to print.")

let cmd =
  Cmd.v
    (Cmd.info "obs_report"
       ~doc:"Pretty-print a saved measured-vs-roofline kernel report")
    Term.(const run $ path_arg)

let () = exit (Cmd.eval' cmd)
