open Mpas_patterns
open Mpas_dataflow

let graph = lazy (Graph.build ())

let node_id (g : Graph.t) i = g.nodes.(i).Graph.instance.Pattern.id

let find (g : Graph.t) id =
  let rec loop i =
    if i >= Graph.n_nodes g then raise Not_found
    else if node_id g i = id then i
    else loop (i + 1)
  in
  loop 0

let test_graph_well_formed () =
  Alcotest.(check (list string)) "no violations" []
    (Graph.check (Lazy.force graph))

let test_node_count () =
  Alcotest.(check int) "21 nodes" 21 (Graph.n_nodes (Lazy.force graph))

let test_topological_order () =
  let g = Lazy.force graph in
  Alcotest.(check int)
    "covers all nodes" (Graph.n_nodes g)
    (List.length (Graph.topological_order g))

let test_known_dependencies () =
  let g = Lazy.force graph in
  (* B2 (h_edge) consumes the d2fdx2 produced by H2. *)
  let h2 = find g "H2" and b2 = find g "B2" in
  Alcotest.(check bool) "H2 -> B2" true (List.mem h2 (Graph.preds g b2));
  (* The APVM chain: E -> H1 -> F. *)
  let e = find g "E" and h1 = find g "H1" and f = find g "F" in
  Alcotest.(check bool) "E -> H1" true (List.mem e (Graph.preds g h1));
  Alcotest.(check bool) "H1 -> F" true (List.mem h1 (Graph.preds g f));
  (* Accumulation depends only on the tendencies. *)
  let x4 = find g "X4" in
  Alcotest.(check (list int)) "X4 preds" [ find g "A1" ] (Graph.preds g x4)

let test_cross_substep_sources () =
  (* compute_tend reads diagnostics of the previous substep, so those
     variables must appear as sources, not in-substep deps. *)
  let g = Lazy.force graph in
  let source_vars = List.sort_uniq compare (List.map snd g.sources) in
  List.iter
    (fun v ->
      Alcotest.(check bool) (v ^ " is a source") true (List.mem v source_vars))
    [ "h_edge"; "ke"; "pv_edge"; "divergence"; "vorticity" ]

let test_ready_order () =
  let g = Lazy.force graph in
  let ro = Graph.ready_order g in
  Alcotest.(check (list int))
    "same order as topological_order" (Graph.topological_order g)
    (List.map fst ro);
  List.iter
    (fun (i, indeg) ->
      Alcotest.(check int)
        (Format.sprintf "indegree of node %d" i)
        (List.length (Graph.preds g i))
        indeg)
    ro

let test_levels_monotone_along_deps () =
  let g = Lazy.force graph in
  let levels = Graph.levels g in
  List.iter
    (fun (d : Graph.dep) ->
      Alcotest.(check bool) "level increases" true
        (levels.(d.Graph.dst) > levels.(d.Graph.src)))
    g.deps

let test_level_sets_are_independent () =
  let g = Lazy.force graph in
  let sets = Graph.level_sets g in
  Array.iter
    (fun nodes ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a <> b then
                Alcotest.(check bool) "no dep inside a level" false
                  (List.mem b (Graph.preds g a)))
            nodes)
        nodes)
    sets

let test_diagnostics_level_parallelism () =
  (* The diagnostics fan-out is the concurrency the hybrid design
     exploits: at least 5 instances must share one level. *)
  let g = Lazy.force graph in
  let widest =
    Array.fold_left
      (fun acc s -> Int.max acc (List.length s))
      0 (Graph.level_sets g)
  in
  Alcotest.(check bool)
    (Format.sprintf "widest level %d >= 5" widest)
    true (widest >= 5)

let test_critical_path () =
  let g = Lazy.force graph in
  let unit_weight _ = 1. in
  let cp = Graph.critical_path g ~weight:unit_weight in
  let depth = float_of_int (Array.length (Graph.level_sets g)) in
  Alcotest.(check (float 1e-9)) "unit critical path = depth" depth cp;
  (* Weighted path is at least the heaviest node. *)
  let w (n : Graph.node) = if n.Graph.instance.Pattern.id = "B1" then 10. else 1. in
  Alcotest.(check bool) "weighted >= heaviest" true
    (Graph.critical_path g ~weight:w >= 10.)

let test_subgraph () =
  let insts = Registry.of_kernel Pattern.Compute_solve_diagnostics in
  let g = Graph.of_instances insts in
  Alcotest.(check int) "node count" (List.length insts) (Graph.n_nodes g);
  Alcotest.(check (list string)) "well formed" [] (Graph.check g)

let test_dot_render () =
  let g = Lazy.force graph in
  let dot = Dot.render g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 100 && String.sub dot 0 7 = "digraph");
  List.iter
    (fun kernel ->
      let name = Pattern.kernel_name kernel in
      let found =
        (* Substring search. *)
        let n = String.length dot and k = String.length name in
        let rec loop i = i + k <= n && (String.sub dot i k = name || loop (i + 1)) in
        loop 0
      in
      Alcotest.(check bool) (name ^ " cluster present") true found)
    Pattern.all_kernels;
  let colored =
    Dot.render
      ~placement:(fun id -> if id = "B1" then Some "gold" else None)
      g
  in
  Alcotest.(check bool) "placement colors" true
    (String.length colored > String.length dot)

(* --- fusion ----------------------------------------------------------------- *)

let test_fusion_chains () =
  (* The legal fusions of our registry, derived by hand from the
     iteration spaces and neighbour reads. *)
  let expect =
    [
      (Pattern.Compute_tend, [ [ "A1" ]; [ "B1"; "C1"; "X1" ] ]);
      (Pattern.Enforce_boundary_edge, [ [ "X2" ] ]);
      (Pattern.Compute_next_substep_state, [ [ "X3" ] ]);
      ( Pattern.Compute_solve_diagnostics,
        [ [ "H2" ]; [ "B2" ]; [ "A2"; "A3" ]; [ "D1"; "C2"; "D2" ]; [ "E" ];
          [ "G"; "H1"; "F" ] ] );
      (Pattern.Accumulative_update, [ [ "X4" ]; [ "X5" ] ]);
      (Pattern.Mpas_reconstruct, [ [ "A4"; "X6" ] ]);
    ]
  in
  List.iter
    (fun (kernel, chains) ->
      Alcotest.(check (list (list string)))
        (Pattern.kernel_name kernel)
        chains (Fusion.chains kernel))
    expect

let test_fusion_chains_partition_kernels () =
  (* Chains must cover every instance exactly once, in order. *)
  List.iter
    (fun kernel ->
      let flattened = List.concat (Fusion.chains kernel) in
      let ids =
        List.map
          (fun (i : Pattern.instance) -> i.Pattern.id)
          (Registry.of_kernel kernel)
      in
      Alcotest.(check (list string))
        (Pattern.kernel_name kernel ^ " covered in order")
        ids flattened)
    Pattern.all_kernels

let test_fusion_never_fuses_neighbour_reads () =
  (* Inside any chain, no instance reads an earlier chain member's
     output through the stencil. *)
  List.iter
    (fun (_, chains) ->
      List.iter
        (fun chain ->
          let rec walk produced = function
            | [] -> ()
            | id :: rest ->
                let i = Registry.instance id in
                List.iter
                  (fun v ->
                    Alcotest.(check bool)
                      (id ^ " does not stencil-read " ^ v)
                      false (List.mem v produced))
                  i.Pattern.neighbour_inputs;
                walk (produced @ i.Pattern.outputs) rest
          in
          walk [] chain)
        chains)
    (Fusion.all_chains ())

let test_fusion_rejects_conflicting_writes () =
  (* Two instances with conflicting write sets must not fuse: when the
     second never reads the shared output back, interleaving the two
     writes point-by-point would reorder generations of the variable. *)
  let mk id ~inputs ~outputs =
    {
      Pattern.id;
      kind = Pattern.Local;
      kernel = Pattern.Compute_tend;
      spaces = [ Pattern.Mass ];
      inputs;
      neighbour_inputs = [];
      outputs;
      irregular = false;
    }
  in
  let first = mk "W1" ~inputs:[ "x" ] ~outputs:[ "t" ] in
  let blind = mk "W2" ~inputs:[ "y" ] ~outputs:[ "t" ] in
  Alcotest.(check bool)
    "blind overwrite rejected" false
    (Fusion.can_follow ~chain:[ first ] blind);
  Alcotest.(check (list string))
    "named as a WAW conflict" [ "blind WAW on t" ]
    (List.map Access.conflict_name
       (Fusion.fusion_conflicts ~chain:[ first ] blind));
  (* a read-modify-write of the same variable stays legal (the
     B1; C1; X1 chain's shape) *)
  let rmw = mk "W3" ~inputs:[ "t" ] ~outputs:[ "t" ] in
  Alcotest.(check bool)
    "read-modify-write accepted" true
    (Fusion.can_follow ~chain:[ first ] rmw)

let test_fusion_region_counts () =
  let before, after = Fusion.regions_per_step () in
  Alcotest.(check int) "before = instance executions" 77 before;
  Alcotest.(check bool)
    (Format.sprintf "fusion reduces regions (%d -> %d)" before after)
    true
    (after < before && after > 0)

let prop_every_node_reaches_or_is_reached =
  (* The diagram is connected enough that no instance is isolated. *)
  QCheck.Test.make ~name:"no isolated nodes" ~count:1 QCheck.unit (fun () ->
      let g = Lazy.force graph in
      Array.for_all
        (fun (n : Graph.node) ->
          Graph.preds g n.Graph.index <> []
          || Graph.succs g n.Graph.index <> []
          || List.exists (fun (i, _) -> i = n.Graph.index) g.sources)
        g.nodes)

let () =
  Alcotest.run "dataflow"
    [
      ( "graph",
        [
          Alcotest.test_case "well formed" `Quick test_graph_well_formed;
          Alcotest.test_case "node count" `Quick test_node_count;
          Alcotest.test_case "topological" `Quick test_topological_order;
          Alcotest.test_case "known deps" `Quick test_known_dependencies;
          Alcotest.test_case "sources" `Quick test_cross_substep_sources;
          Alcotest.test_case "ready order" `Quick test_ready_order;
          Alcotest.test_case "levels monotone" `Quick
            test_levels_monotone_along_deps;
          Alcotest.test_case "levels independent" `Quick
            test_level_sets_are_independent;
          Alcotest.test_case "diagnostics fan-out" `Quick
            test_diagnostics_level_parallelism;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "subgraph" `Quick test_subgraph;
        ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot_render ]);
      ( "fusion",
        [
          Alcotest.test_case "chains" `Quick test_fusion_chains;
          Alcotest.test_case "partition" `Quick
            test_fusion_chains_partition_kernels;
          Alcotest.test_case "conflicting writes rejected" `Quick
            test_fusion_rejects_conflicting_writes;
          Alcotest.test_case "legality" `Quick
            test_fusion_never_fuses_neighbour_reads;
          Alcotest.test_case "region counts" `Quick test_fusion_region_counts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_every_node_reaches_or_is_reached ] );
    ]
