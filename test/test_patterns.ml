open Mpas_numerics
open Mpas_patterns

let mesh = lazy (Mpas_mesh.Build.icosahedral ~level:3 ())

(* --- taxonomy -------------------------------------------------------------- *)

let test_eight_letters () =
  Alcotest.(check int) "eight letters" 8 (List.length Pattern.all_letters)

let test_shapes_cover_combinations () =
  (* The eight letters cover all 3x3 point combinations except
     vorticity <- vorticity (paper SSIII-A). *)
  let points = [ Pattern.Mass; Pattern.Velocity; Pattern.Vorticity ] in
  let combos =
    List.concat_map (fun o -> List.map (fun i -> (o, i)) points) points
  in
  let covered =
    List.filter
      (fun (o, i) -> Pattern.letter_of_shape ~output:o ~input:i <> None)
      combos
  in
  Alcotest.(check int) "eight combinations covered" 8 (List.length covered);
  Alcotest.(check bool)
    "vorticity<-vorticity absent" true
    (Pattern.letter_of_shape ~output:Pattern.Vorticity
       ~input:Pattern.Vorticity
    = None)

let test_shapes_unique () =
  let shapes = List.map Pattern.shape Pattern.all_letters in
  Alcotest.(check int)
    "no two letters share a shape"
    (List.length shapes)
    (List.length (List.sort_uniq compare shapes))

(* --- registry --------------------------------------------------------------- *)

let test_registry_checks () =
  Alcotest.(check (list string)) "registry well formed" [] (Registry.check ())

let test_registry_size () =
  Alcotest.(check int) "21 instances" 21 (List.length Registry.instances)

let test_letter_census () =
  (* A:4 B:2 C:2 D:2 E:1 F:1 G:1 H:2 — the Figure 4 inventory. *)
  Alcotest.(check (list (pair string int)))
    "census"
    [ ("A", 4); ("B", 2); ("C", 2); ("D", 2); ("E", 1); ("F", 1); ("G", 1);
      ("H", 2) ]
    (List.map
       (fun (l, n) -> (Pattern.letter_name l, n))
       (Registry.letter_census ()))

let test_locals_count () =
  let locals =
    List.filter (fun i -> i.Pattern.kind = Pattern.Local) Registry.instances
  in
  Alcotest.(check int) "six local computations X1-X6" 6 (List.length locals)

let test_every_kernel_nonempty () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Pattern.kernel_name k ^ " has instances")
        true
        (Registry.of_kernel k <> []))
    Pattern.all_kernels

let test_irregular_set () =
  (* Exactly the loops the paper refactors: cell/vertex reductions fed
     from edges or vertices. *)
  let irregular =
    List.filter_map
      (fun i -> if i.Pattern.irregular then Some i.Pattern.id else None)
      Registry.instances
  in
  Alcotest.(check (list string))
    "irregular instances"
    [ "A1"; "H2"; "A2"; "A3"; "D1"; "E" ]
    irregular

let test_instance_lookup () =
  let b1 = Registry.instance "B1" in
  Alcotest.(check string) "id" "B1" b1.Pattern.id;
  Alcotest.(check bool)
    "unknown raises" true
    (match Registry.instance "Z9" with
    | _ -> false
    | exception Not_found -> true)

(* --- refactoring ------------------------------------------------------------ *)

let random_edge_field seed =
  let m = Lazy.force mesh in
  let r = Rng.create seed in
  Array.init m.n_edges (fun _ -> Rng.uniform r (-5.) 5.)

let test_refactoring_forms_agree () =
  let m = Lazy.force mesh in
  let x = random_edge_field 3L in
  let y2 = Array.make m.n_cells 0. in
  let y3 = Array.make m.n_cells 0. in
  let y4 = Array.make m.n_cells 0. in
  Refactor.edge_to_cell_scatter m ~x ~y:y2;
  Refactor.edge_to_cell_gather m ~x ~y:y3;
  Refactor.edge_to_cell_branch_free m (Refactor.label_matrix m) ~x ~y:y4;
  Alcotest.(check bool)
    "alg2 = alg3" true
    (Stats.max_abs_diff y2 y3 < 1e-12);
  (* Gather and branch-free sum in the same order: bitwise equal. *)
  Alcotest.(check bool)
    "alg3 = alg4 bitwise" true
    (Array.for_all Fun.id (Array.init m.n_cells (fun c -> Float.equal y3.(c) y4.(c))))

let test_label_matrix_is_edge_sign () =
  let m = Lazy.force mesh in
  let l = Refactor.labels (Refactor.label_matrix m) in
  let same = ref true in
  for c = 0 to m.n_cells - 1 do
    for j = 0 to m.n_edges_on_cell.(c) - 1 do
      if l.(c).(j) <> m.edge_sign_on_cell.(c).(j) then same := false
    done
  done;
  Alcotest.(check bool) "L = edge_sign_on_cell" true !same

let test_refactored_parallel_bitwise () =
  let m = Lazy.force mesh in
  let x = random_edge_field 4L in
  let serial = Array.make m.n_cells 0. in
  let labels = Refactor.label_matrix m in
  Refactor.edge_to_cell_branch_free m labels ~x ~y:serial;
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let par = Array.make m.n_cells 0. in
      Refactor.edge_to_cell_branch_free ~pool m labels ~x ~y:par;
      Alcotest.(check bool)
        "parallel bitwise equal" true
        (Array.for_all Fun.id
           (Array.init m.n_cells (fun c -> Float.equal serial.(c) par.(c)))))

let test_csr_form_bitwise () =
  (* The CSR fast path of Algorithm 4 walks the packed sign array in the
     same order as the ragged label matrix: bitwise-equal output. *)
  let m = Lazy.force mesh in
  let x = random_edge_field 5L in
  let ragged = Array.make m.n_cells 0. in
  let csr = Array.make m.n_cells 0. in
  Refactor.edge_to_cell_branch_free m (Refactor.label_matrix m) ~x ~y:ragged;
  Refactor.edge_to_cell_csr m ~x ~y:csr;
  Alcotest.(check bool)
    "csr = alg4 bitwise" true
    (Array.for_all Fun.id
       (Array.init m.n_cells (fun c -> Float.equal ragged.(c) csr.(c))));
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let par = Array.make m.n_cells 0. in
      Refactor.edge_to_cell_csr ~pool m ~x ~y:par;
      Alcotest.(check bool)
        "csr parallel bitwise" true
        (Array.for_all Fun.id
           (Array.init m.n_cells (fun c -> Float.equal ragged.(c) par.(c)))))

(* --- costs ------------------------------------------------------------------- *)

let test_stats_of_level_match_mesh () =
  let m = Lazy.force mesh in
  let a = Cost.stats_of_level 3 in
  let b = Cost.stats_of_mesh m in
  Alcotest.(check int) "cells" a.Cost.n_cells b.Cost.n_cells;
  Alcotest.(check int) "edges" a.Cost.n_edges b.Cost.n_edges;
  Alcotest.(check int) "vertices" a.Cost.n_vertices b.Cost.n_vertices;
  Alcotest.(check (float 1e-9))
    "mean edges per cell" a.Cost.mean_edges_per_cell b.Cost.mean_edges_per_cell

let test_costs_positive_and_scale () =
  let s6 = Cost.stats_of_level 6 and s7 = Cost.stats_of_level 7 in
  List.iter
    (fun (i : Pattern.instance) ->
      let w6 = Cost.instance_work s6 i.Pattern.id in
      let w7 = Cost.instance_work s7 i.Pattern.id in
      Alcotest.(check bool)
        (i.Pattern.id ^ " positive") true
        (w6.Cost.flops > 0. && w6.Cost.bytes > 0. && w6.Cost.items > 0.);
      (* One refinement level quadruples the mesh. *)
      Alcotest.(check bool)
        (i.Pattern.id ^ " scales ~4x") true
        (let r = w7.Cost.flops /. w6.Cost.flops in
         r > 3.9 && r < 4.1))
    Registry.instances

let test_rk4_step_work_consistent () =
  let s = Cost.stats_of_level 6 in
  let per_kernel =
    List.fold_left
      (fun acc k ->
        let w = Cost.kernel_work s k in
        acc +. (w.Cost.flops *. float_of_int (Cost.kernel_calls_per_step k)))
      0. Pattern.all_kernels
  in
  let total = (Cost.rk4_step_work s).Cost.flops in
  Alcotest.(check (float 1.)) "sum over kernels" per_kernel total

let test_b1_dominates () =
  (* The perp-flux momentum stencil is the most expensive instance, as
     in the profiled MPAS code. *)
  let s = Cost.stats_of_level 6 in
  let cost id = (Cost.instance_work s id).Cost.bytes in
  List.iter
    (fun (i : Pattern.instance) ->
      if i.Pattern.id <> "B1" then
        Alcotest.(check bool)
          ("B1 >= " ^ i.Pattern.id)
          true
          (cost "B1" >= cost i.Pattern.id))
    Registry.instances

let test_layout_cost () =
  (* Ragged layout pays extra row-pointer traffic on gather loops; the
     default layout is the packed CSR view the engine actually runs. *)
  let s = Cost.stats_of_level 6 in
  List.iter
    (fun (i : Pattern.instance) ->
      let id = i.Pattern.id in
      let csr = Cost.instance_work ~layout:Cost.Csr s id in
      let ragged = Cost.instance_work ~layout:Cost.Ragged s id in
      let default = Cost.instance_work s id in
      Alcotest.(check (float 0.1)) (id ^ " default is csr") csr.Cost.bytes
        default.Cost.bytes;
      Alcotest.(check (float 0.1)) (id ^ " same flops") csr.Cost.flops
        ragged.Cost.flops;
      Alcotest.(check bool)
        (id ^ " ragged >= csr bytes")
        true
        (ragged.Cost.bytes >= csr.Cost.bytes))
    Registry.instances;
  let b1_csr = Cost.instance_work ~layout:Cost.Csr s "B1" in
  let b1_ragged = Cost.instance_work ~layout:Cost.Ragged s "B1" in
  Alcotest.(check bool)
    "B1 ragged strictly heavier" true
    (b1_ragged.Cost.bytes > b1_csr.Cost.bytes)

let test_field_bytes () =
  let s = Cost.stats_of_level 3 in
  Alcotest.(check (float 0.1)) "mass field"
    (float_of_int s.Cost.n_cells *. 8.)
    (Cost.field_bytes s Pattern.Mass);
  Alcotest.(check (float 0.1)) "velocity field"
    (float_of_int s.Cost.n_edges *. 8.)
    (Cost.field_bytes s Pattern.Velocity)

(* --- properties ---------------------------------------------------------------- *)

let prop_refactoring_equivalence_random_meshes =
  QCheck.Test.make ~name:"refactoring equivalence on hex meshes" ~count:10
    QCheck.(pair (int_range 3 8) (int_range 0 1000))
    (fun (n, seed) ->
      let m = Mpas_mesh.Planar_hex.create ~nx:n ~ny:n ~dc:100. () in
      let r = Rng.create (Int64.of_int seed) in
      let x = Array.init m.n_edges (fun _ -> Rng.uniform r (-1.) 1.) in
      let y2 = Array.make m.n_cells 0. and y4 = Array.make m.n_cells 0. in
      Refactor.edge_to_cell_scatter m ~x ~y:y2;
      Refactor.edge_to_cell_branch_free m (Refactor.label_matrix m) ~x ~y:y4;
      Stats.max_abs_diff y2 y4 < 1e-12)

let prop_work_monotone_in_level =
  QCheck.Test.make ~name:"work grows with level" ~count:6
    QCheck.(int_range 1 6)
    (fun level ->
      let a = Cost.rk4_step_work (Cost.stats_of_level level) in
      let b = Cost.rk4_step_work (Cost.stats_of_level (level + 1)) in
      b.Cost.flops > a.Cost.flops && b.Cost.bytes > a.Cost.bytes)

let () =
  Alcotest.run "patterns"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "eight letters" `Quick test_eight_letters;
          Alcotest.test_case "shape coverage" `Quick
            test_shapes_cover_combinations;
          Alcotest.test_case "shapes unique" `Quick test_shapes_unique;
        ] );
      ( "registry",
        [
          Alcotest.test_case "well formed" `Quick test_registry_checks;
          Alcotest.test_case "size" `Quick test_registry_size;
          Alcotest.test_case "letter census" `Quick test_letter_census;
          Alcotest.test_case "locals" `Quick test_locals_count;
          Alcotest.test_case "kernels nonempty" `Quick
            test_every_kernel_nonempty;
          Alcotest.test_case "irregular set" `Quick test_irregular_set;
          Alcotest.test_case "lookup" `Quick test_instance_lookup;
        ] );
      ( "refactoring",
        [
          Alcotest.test_case "three forms agree" `Quick
            test_refactoring_forms_agree;
          Alcotest.test_case "label matrix" `Quick test_label_matrix_is_edge_sign;
          Alcotest.test_case "parallel bitwise" `Quick
            test_refactored_parallel_bitwise;
          Alcotest.test_case "csr form bitwise" `Quick test_csr_form_bitwise;
        ] );
      ( "costs",
        [
          Alcotest.test_case "stats match mesh" `Quick
            test_stats_of_level_match_mesh;
          Alcotest.test_case "positive, scale 4x" `Quick
            test_costs_positive_and_scale;
          Alcotest.test_case "step work" `Quick test_rk4_step_work_consistent;
          Alcotest.test_case "B1 dominates" `Quick test_b1_dominates;
          Alcotest.test_case "layout bytes" `Quick test_layout_cost;
          Alcotest.test_case "field bytes" `Quick test_field_bytes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_refactoring_equivalence_random_meshes;
            prop_work_monotone_in_level;
          ] );
    ]
