(* The footprint analyzer: inference must certify the real registry
   clean and catch seeded drift; the bounds auditor must prove every
   unsafe site on valid meshes and refute them on corrupted CSR views;
   the race detector must certify compiled specs and live executor
   logs and notice a deleted hazard edge; the online vector-clock
   monitor must ride live stolen runs clean and catch a seeded
   hazard-edge drop; the interleaving explorer must prove the protocol
   models and catch every seeded protocol bug; and the bounds catalog
   must audit itself (coverage + source scan) in both directions. *)

open Mpas_mesh
open Mpas_par
open Mpas_swe
open Mpas_patterns
open Mpas_runtime
open Mpas_analysis

let hex = lazy (Planar_hex.create ~f:1e-4 ~nx:6 ~ny:4 ~dc:1000. ())
let ico = lazy (Build.icosahedral ~level:1 ~lloyd_iters:2 ())
let probe = lazy (Infer.create (Lazy.force hex))
let probe_ico = lazy (Infer.create (Lazy.force ico))

(* --- footprint primitives ----------------------------------------------- *)

let test_iset () =
  let s = Footprint.Iset.create 8 in
  Alcotest.(check bool) "empty" true (Footprint.Iset.is_empty s);
  Footprint.Iset.add s 3;
  Footprint.Iset.add s 3;
  Footprint.Iset.add s 5;
  Alcotest.(check int) "cardinal" 2 (Footprint.Iset.cardinal s);
  Alcotest.(check (list int)) "elements" [ 3; 5 ] (Footprint.Iset.elements s);
  Alcotest.(check string) "summary" "2/8" (Footprint.Iset.summary s);
  let t = Footprint.Iset.of_list 8 [ 5; 7 ] in
  Alcotest.(check bool) "overlap" false (Footprint.Iset.inter_empty s t);
  let d = Footprint.Iset.of_list 8 [ 0; 1 ] in
  Alcotest.(check bool) "disjoint" true (Footprint.Iset.inter_empty s d);
  let u = Footprint.Iset.union s d in
  Alcotest.(check int) "union" 4 (Footprint.Iset.cardinal u)

let test_conflicts () =
  let fp vals =
    let f = Footprint.create () in
    List.iter
      (fun (name, rw, i) ->
        (match rw with
        | `R -> Footprint.read f ~name ~point:Pattern.Mass ~size:8 i
        | `W -> Footprint.write f ~name ~point:Pattern.Mass ~size:8 i))
      vals;
    f
  in
  let names a b =
    List.map Footprint.conflict_name (Footprint.conflicts a b)
  in
  let w = fp [ ("x", `W, 2) ] and r = fp [ ("x", `R, 2) ] in
  Alcotest.(check (list string)) "raw" [ "RAW on x" ] (names w r);
  Alcotest.(check (list string)) "war" [ "WAR on x" ] (names r w);
  Alcotest.(check (list string)) "waw" [ "WAW on x" ] (names w w);
  (* same array, disjoint cells: no hazard *)
  let r' = fp [ ("x", `R, 5) ] in
  Alcotest.(check (list string)) "disjoint cells" [] (names w r');
  Alcotest.(check bool) "conflicting" true (Footprint.conflicting w r)

(* --- registry inference ------------------------------------------------- *)

let test_registry_clean () =
  let failed = Infer.failed (Infer.check_registry (Lazy.force probe)) in
  let render (r : Infer.report) =
    Printf.sprintf "%s[%s]: %s" r.Infer.r_instance
      (Infer.mode_name r.Infer.r_mode)
      (String.concat "; "
         (List.map Infer.violation_message r.Infer.r_violations))
  in
  Alcotest.(check (list string))
    "every instance matches its Table I declaration" []
    (List.map render failed)

let instance id =
  List.find (fun i -> i.Pattern.id = id) Registry.instances

let drift inst =
  Infer.check_instance (Lazy.force probe) ~final:false ~mode:Infer.Csr inst

let test_drift_missing_input () =
  let a1 = instance "A1" in
  let vs =
    drift
      { a1 with Pattern.inputs = List.filter (( <> ) "h_edge") a1.Pattern.inputs }
  in
  Alcotest.(check bool)
    "undeclared read of diag.h_edge flagged" true
    (List.mem (Infer.Undeclared_read "diag.h_edge") vs)

let test_drift_extra_input () =
  let a1 = instance "A1" in
  let vs = drift { a1 with Pattern.inputs = "vorticity" :: a1.Pattern.inputs } in
  Alcotest.(check bool)
    "phantom input flagged" true
    (List.mem (Infer.Unread_input "vorticity") vs)

let test_drift_missing_output () =
  let a1 = instance "A1" in
  let vs = drift { a1 with Pattern.outputs = [] } in
  Alcotest.(check bool)
    "undeclared write of tend.tend_h flagged" true
    (List.mem (Infer.Undeclared_write "tend.tend_h") vs)

let test_drift_extra_output () =
  let a1 = instance "A1" in
  let vs = drift { a1 with Pattern.outputs = "ke" :: a1.Pattern.outputs } in
  Alcotest.(check bool)
    "phantom output flagged" true
    (List.mem (Infer.Unwritten_output "ke") vs)

(* --- fused super-task inference ----------------------------------------- *)

let test_fused_clean () =
  let failed = Infer.failed (Infer.check_fused_spec (Lazy.force probe)) in
  let render (r : Infer.report) =
    Printf.sprintf "%s[%s]: %s" r.Infer.r_instance
      (Infer.mode_name r.Infer.r_mode)
      (String.concat "; "
         (List.map Infer.violation_message r.Infer.r_violations))
  in
  Alcotest.(check (list string))
    "every fused chain matches the union of its members' declarations" []
    (List.map render failed)

let test_fused_dropped_member_caught () =
  (* Seed the bug the check exists for: a planner that claims the
     vortex chain [D1; C2; D2] but compiles a body running only
     [D1; C2].  D2's declared output (pv_vertex) is never written, and
     its external declared inputs are never read. *)
  let d1 = instance "D1" and c2 = instance "C2" and d2 = instance "D2" in
  let vs =
    Infer.check_fused ~body:[ d1; c2 ]
      (Lazy.force probe) ~final:false ~mode:Infer.Csr [ d1; c2; d2 ]
  in
  Alcotest.(check bool)
    "dropped member's write set flagged" true
    (List.mem (Infer.Unwritten_output "D2:pv_vertex") vs);
  (* And the converse seeding: a body that runs an extra member the
     task does not declare shows up as undeclared writes. *)
  let vs' =
    Infer.check_fused ~body:[ d1; c2; d2 ]
      (Lazy.force probe) ~final:false ~mode:Infer.Csr [ d1; c2 ]
  in
  Alcotest.(check bool)
    "undeclared write of diag.pv_vertex flagged" true
    (List.mem (Infer.Undeclared_write "diag.pv_vertex") vs')

(* --- bounds auditor ----------------------------------------------------- *)

let test_bounds_clean () =
  List.iter
    (fun (name, m) ->
      let reports = Bounds.audit (Lazy.force m) in
      Alcotest.(check bool)
        (name ^ ": a real catalog") true
        (List.length reports > 80);
      Alcotest.(check (list string))
        (name ^ ": every unsafe site proved") []
        (List.map
           (fun (r : Bounds.site_report) -> Bounds.site_name r.Bounds.sr_site)
           (Bounds.refuted reports));
      (* only the runtime check_len guards remain as assumptions *)
      List.iter
        (fun (r : Bounds.site_report) ->
          match r.Bounds.sr_verdict with
          | Bounds.Proved { assumptions } ->
              Alcotest.(check bool)
                (name ^ ": assumptions are guards only")
                true
                (List.for_all Bounds.is_assumption assumptions)
          | Bounds.Refuted _ -> ())
        reports)
    [ ("hex", hex); ("ico", ico) ]

let copy_csr (c : Mesh.csr) =
  {
    c with
    Mesh.cell_edges = Array.copy c.Mesh.cell_edges;
    eoe_offsets = Array.copy c.Mesh.eoe_offsets;
  }

let test_bounds_out_of_range () =
  let m = Lazy.force hex in
  let bad = copy_csr (Mesh.csr m) in
  bad.Mesh.cell_edges.(0) <- m.Mesh.n_edges;
  let refuted = Bounds.refuted (Bounds.audit ~csr:bad m) in
  Alcotest.(check bool) "some sites refuted" true (refuted <> []);
  (* exactly the loads through cell_edges lose their proof *)
  List.iter
    (fun (r : Bounds.site_report) ->
      match r.Bounds.sr_verdict with
      | Bounds.Refuted invs ->
          Alcotest.(check bool)
            (Bounds.site_name r.Bounds.sr_site ^ " refuted by cell_edges range")
            true
            (List.for_all
               (function
                 | Bounds.In_range_ok { table = "cell_edges"; _ } -> true
                 | _ -> false)
               invs)
      | Bounds.Proved _ -> ())
    refuted;
  let kernels =
    List.sort_uniq compare
      (List.map
         (fun (r : Bounds.site_report) -> r.Bounds.sr_site.Bounds.s_kernel)
         refuted)
  in
  Alcotest.(check bool)
    "kinetic_energy's u load is among them" true
    (List.mem "kinetic_energy" kernels)

let test_bounds_offsets_drift () =
  let m = Lazy.force hex in
  let bad = copy_csr (Mesh.csr m) in
  let n = Array.length bad.Mesh.eoe_offsets in
  bad.Mesh.eoe_offsets.(n - 1) <- bad.Mesh.eoe_offsets.(n - 1) + 1;
  let refuted = Bounds.refuted (Bounds.audit ~csr:bad m) in
  Alcotest.(check bool) "some sites refuted" true (refuted <> []);
  let arrays =
    List.sort_uniq compare
      (List.map
         (fun (r : Bounds.site_report) -> r.Bounds.sr_site.Bounds.s_array)
         refuted)
  in
  (* the rows of the eoe tables are no longer covered by the offsets,
     and the malformed offsets table loses its own shape proof *)
  Alcotest.(check (list string))
    "exactly the eoe walks" [ "eoe_edges"; "eoe_offsets"; "eoe_weights" ]
    arrays

(* --- schedule races ----------------------------------------------------- *)

let plans =
  [
    ("none", None);
    ("kernel-level", Some Mpas_hybrid.Plan.kernel_level);
    ("pattern-driven", Some Mpas_hybrid.Plan.pattern_driven);
  ]

let test_static_clean () =
  let probe = Lazy.force probe in
  List.iter
    (fun (pname, plan) ->
      List.iter
        (fun split ->
          let spec = Spec.build ?plan ~split ~recon:true () in
          let early_footprints, final_footprints =
            Infer.spec_footprints probe spec
          in
          let prs = Races.check_spec ~early_footprints ~final_footprints spec in
          let msgs =
            List.concat_map
              (fun (pr : Races.phase_races) ->
                List.map Races.race_message pr.Races.pr_races)
              prs
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s/split %.1f race-free" pname split)
            [] msgs)
        [ 0.3; 0.5; 0.7 ])
    plans

let test_dropped_edge_caught () =
  let probe = Lazy.force probe in
  let spec = Spec.build ~recon:true () in
  let early_footprints, final_footprints = Infer.spec_footprints probe spec in
  let caught = ref 0 and checked = ref 0 in
  List.iter
    (fun (phase, footprints) ->
      List.iter
        (fun (src, dst) ->
          incr checked;
          let races =
            Races.check_phase ~footprints (Races.drop_edge phase ~src ~dst)
          in
          if
            List.exists
              (fun (r : Races.race) -> r.Races.ra = src && r.Races.rb = dst)
              races
          then incr caught)
        (Races.edges phase))
    [
      (spec.Spec.early, early_footprints);
      (spec.Spec.final, final_footprints);
    ];
  Alcotest.(check bool)
    (Printf.sprintf
       "deleting a hazard edge is noticed (%d of %d edges load-bearing)"
       !caught !checked)
    true (!caught > 0)

(* --- live log replay ---------------------------------------------------- *)

let replay_clean (n_domains, (pname, split)) =
  (* a single lane cannot serve device-class tasks *)
  let plan = if n_domains < 2 then None else List.assoc pname plans in
  let m = Lazy.force ico in
  let spec = Spec.build ?plan ~split ~recon:true () in
  let early_footprints, final_footprints =
    Infer.spec_footprints (Lazy.force probe_ico) spec
  in
  let log : Exec.log = ref [] in
  Pool.with_pool ~n_domains (fun pool ->
      let eng =
        Engine.create ~mode:Exec.Async ~pool ?plan ~split ~log ()
      in
      let model =
        Model.init ~engine:(Engine.timestep_engine eng) Williamson.Tc5 m
      in
      Model.run model ~steps:1);
  !log <> []
  && Races.check_log ~spec ~early_footprints ~final_footprints !log = []

let prop_replay_clean =
  QCheck.Test.make ~name:"executor logs replay race-free" ~count:6
    QCheck.(
      pair
        (oneofl [ 1; 2; 4 ])
        (pair
           (oneofl [ "none"; "kernel-level"; "pattern-driven" ])
           (oneofl [ 0.3; 0.5; 0.7 ])))
    replay_clean

(* --- communication-extended schedules (Mpas_dist.Overlap) --------------- *)

let overlap_of ?mode ?pool ?log ~n_ranks ~depth () =
  let m = Lazy.force ico in
  let d = Mpas_dist.Driver.init ~n_ranks Williamson.Tc5 m in
  Mpas_dist.Overlap.of_driver ?mode ?pool ?log ~depth d

let test_comm_spec_clean () =
  List.iter
    (fun (n_ranks, depth) ->
      let ov = overlap_of ~n_ranks ~depth () in
      let name = Printf.sprintf "%d ranks, depth %d" n_ranks depth in
      Alcotest.(check (list string))
        (name ^ ": structurally well formed")
        []
        (Spec.check (Mpas_dist.Overlap.spec ov));
      Alcotest.(check bool)
        (name ^ ": comm-extended program race-free under declared footprints")
        true
        (Races.spec_clean (Comm.check_spec ov)))
    [ (1, 1); (2, 1); (4, 1); (3, 2) ]

let test_comm_bodies_verified () =
  List.iter
    (fun n_ranks ->
      let ov = overlap_of ~n_ranks ~depth:1 () in
      Alcotest.(check (list string))
        (Printf.sprintf
           "%d ranks: comm chains move exactly the declared ghosts" n_ranks)
        []
        (Comm.verify_bodies ov))
    [ 2; 4 ]

let test_comm_dropped_unpack_edge_caught () =
  (* Seed the violation the comm footprints exist for: delete an
     unpack -> consumer edge and the static checker must flag the pair
     (unless transitivity still covers it through another chain). *)
  let ov = overlap_of ~n_ranks:2 ~depth:1 () in
  let early_fp, _ = Comm.footprints ov in
  let phase = (Mpas_dist.Overlap.spec ov).Spec.early in
  let unpack_edges =
    List.filter
      (fun (src, dst) ->
        (match phase.Spec.tasks.(src).Spec.kind with
        | Spec.Unpack _ -> true
        | _ -> false)
        && phase.Spec.tasks.(dst).Spec.kind = Spec.Compute)
      (Races.edges phase)
  in
  let caught = ref 0 in
  List.iter
    (fun (src, dst) ->
      let races =
        Races.check_phase ~footprints:early_fp
          (Races.drop_edge phase ~src ~dst)
      in
      if
        List.exists
          (fun (r : Races.race) -> r.Races.ra = src && r.Races.rb = dst)
          races
      then incr caught)
    unpack_edges;
  Alcotest.(check bool)
    (Printf.sprintf "dropped unpack->consumer edges caught (%d of %d)" !caught
       (List.length unpack_edges))
    true
    (List.length unpack_edges > 0 && !caught > 0)

let test_comm_log_replay_steal () =
  (* An overlapped stolen schedule must replay clean: every comm and
     compute task exactly once per substep, all edges respected, no
     conflicting overlap. *)
  let log : Exec.log = ref [] in
  let issues = ref [] in
  let entries = ref 0 in
  Pool.with_pool ~n_domains:4 (fun pool ->
      let ov = overlap_of ~mode:Exec.Steal ~pool ~log ~n_ranks:3 ~depth:1 () in
      for _ = 1 to 2 do
        Mpas_dist.Overlap.step ov;
        entries := !entries + List.length !log;
        issues := !issues @ Comm.check_log ov !log;
        log := []
      done);
  Alcotest.(check bool) "log nonempty" true (!entries > 0);
  Alcotest.(check (list string))
    "overlapped stolen schedule replays clean" []
    (List.map Races.issue_message !issues)

(* --- ensemble member-axis programs -------------------------------------- *)

let test_bounds_strided_coverage () =
  (* Every Strided kernel is catalogued, its slab sites lean only on
     the slab/member entry guards plus CSR facts, and the whole
     strided family is proved on a valid mesh. *)
  let strided =
    List.filter
      (fun (s : Bounds.site) ->
        String.length s.Bounds.s_kernel > 8
        && String.sub s.Bounds.s_kernel 0 8 = "strided.")
      Bounds.catalog
  in
  let kernels =
    List.sort_uniq compare
      (List.map (fun (s : Bounds.site) -> s.Bounds.s_kernel) strided)
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " catalogued") true
        (List.mem ("strided." ^ k) kernels))
    [
      "blit_state"; "d2fdx2"; "h_edge"; "kinetic_energy"; "divergence";
      "vorticity"; "h_vertex"; "pv_vertex"; "pv_cell"; "tangential_velocity";
      "grad_pv"; "pv_edge"; "tend_h"; "tend_u"; "dissipation"; "local_forcing";
      "enforce_boundary_edge"; "next_substep_state"; "accumulate";
    ];
  (* every slab access carries its slab-guard assumption *)
  List.iter
    (fun (s : Bounds.site) ->
      match s.Bounds.s_index with
      | Bounds.Slab _ ->
          Alcotest.(check bool)
            (Bounds.site_name s ^ " slab-guarded")
            true
            (List.exists
               (function Bounds.Slab_guard _ -> true | _ -> false)
               (Bounds.obligations s))
      | _ -> ())
    strided;
  let reports = Bounds.audit (Lazy.force ico) in
  let refuted_strided =
    List.filter
      (fun (r : Bounds.site_report) ->
        List.memq r.Bounds.sr_site strided)
      (Bounds.refuted reports)
  in
  Alcotest.(check (list string))
    "all strided sites proved" []
    (List.map
       (fun (r : Bounds.site_report) -> Bounds.site_name r.Bounds.sr_site)
       refuted_strided)

let test_bounds_strided_refuted_on_corruption () =
  (* A poisoned connectivity entry must cost the strided gather
     kernels their proof too, not only the solo ones. *)
  let m = Lazy.force hex in
  let bad = copy_csr (Mesh.csr m) in
  bad.Mesh.cell_edges.(0) <- m.Mesh.n_edges;
  let kernels =
    List.sort_uniq compare
      (List.map
         (fun (r : Bounds.site_report) -> r.Bounds.sr_site.Bounds.s_kernel)
         (Bounds.refuted (Bounds.audit ~csr:bad m)))
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " refuted") true (List.mem k kernels))
    [ "strided.kinetic_energy"; "strided.divergence"; "strided.tend_h" ]

let ensemble_engine ?mode ?pool ?log m =
  let open Mpas_ensemble in
  let e = Ensemble.create ?mode ?pool ?log ~capacity:8 ~block:2 m in
  let b = Array.make m.Mesh.n_cells 0. in
  let st =
    {
      Fields.h = Array.make m.Mesh.n_cells 1000.;
      u = Array.make m.Mesh.n_edges 0.1;
      tracers = [||];
    }
  in
  List.iter
    (fun config -> ignore (Ensemble.submit e ~config ~dt:5. ~b st))
    [
      Config.default;
      { Config.default with h_adv_order = Config.Second };
      { Config.default with visc2 = 1e3; bottom_drag = 1e-6 };
    ];
  e

let test_ens_static_clean () =
  List.iter
    (fun (name, m) ->
      let e = ensemble_engine (Lazy.force m) in
      let races = Ens.check_spec e in
      Alcotest.(check (list string))
        (name ^ ": member axis race-free") []
        (List.concat_map
           (fun (pr : Races.phase_races) ->
             List.map Races.race_message pr.Races.pr_races)
           races))
    [ ("hex", hex); ("ico", ico) ]

let test_ens_dropped_edge_caught () =
  (* Deleting the chain edge between a block's tend_u and dissipation
     tasks leaves two unordered tasks updating the same slab slot —
     the checker must notice, proving the chain edges are load-bearing
     rather than vacuously consistent. *)
  let e = ensemble_engine (Lazy.force hex) in
  let sp = Mpas_ensemble.Ensemble.spec e in
  let fps = Ens.footprints e `Early in
  Alcotest.(check (list string))
    "intact chain clean" []
    (List.map Races.race_message (Races.check_phase ~footprints:fps sp.Spec.early));
  let mutated = Races.drop_edge sp.Spec.early ~src:1 ~dst:2 in
  let races = Races.check_phase ~footprints:fps mutated in
  Alcotest.(check bool) "dropped edge caught" true (races <> []);
  Alcotest.(check bool)
    "the race is the severed pair" true
    (List.exists (fun (r : Races.race) -> r.Races.ra = 1 && r.Races.rb = 2) races)

let test_ens_log_replay () =
  (* A stolen member-axis schedule must replay clean: every block task
     exactly once per substep, chain edges respected, no conflicting
     overlap between blocks. *)
  let log : Exec.log = ref [] in
  let issues = ref [] in
  let entries = ref 0 in
  Pool.with_pool ~n_domains:4 (fun pool ->
      let e =
        ensemble_engine ~mode:Exec.Steal ~pool ~log (Lazy.force hex)
      in
      for _ = 1 to 2 do
        Mpas_ensemble.Ensemble.step e ();
        entries := !entries + List.length !log;
        issues := !issues @ Ens.check_log e !log;
        log := []
      done);
  Alcotest.(check bool) "log nonempty" true (!entries > 0);
  Alcotest.(check (list string))
    "stolen ensemble schedule replays clean" []
    (List.map Races.issue_message !issues)

(* --- online race monitor (Tsan over task-indexed vector clocks) --------- *)

let test_vclock () =
  let a = Vclock.create 3 and b = Vclock.create 3 in
  Alcotest.(check bool) "initially unobserved" false (Vclock.observed a 1);
  Vclock.tick b 1;
  Alcotest.(check bool) "zero leq ticked" true (Vclock.leq a b);
  Alcotest.(check bool) "ticked not leq zero" false (Vclock.leq b a);
  Vclock.join a b;
  Alcotest.(check bool) "observed after join" true (Vclock.observed a 1);
  Vclock.tick a 0;
  Alcotest.(check bool) "incomparable after own tick" false (Vclock.leq a b)

(* The monitor riding the real engine: a fused split Steal-mode run
   must finish bit-identical to the sequential reference with zero
   online violations — cross-validating the DAG-derived happens-before
   against the bit-identity battery. *)
let test_tsan_engine_bit_identical () =
  let m = Lazy.force ico in
  let steps = 3 in
  let monitored = ref None in
  Pool.with_pool ~n_domains:4 (fun pool ->
      let eng =
        Engine.create ~mode:Exec.Steal ~pool
          ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.4 ~fuse:true ()
      in
      let engine = Engine.timestep_engine eng in
      (* compile on a scratch model, monitor a fresh run *)
      let scratch = Model.init ~engine Williamson.Tc5 m in
      Model.run scratch ~steps:1;
      let spec = Option.get (Engine.program eng) in
      let early_footprints, final_footprints =
        Infer.spec_footprints (Lazy.force probe_ico) spec
      in
      let tsan = Tsan.create ~spec ~early_footprints ~final_footprints () in
      let model = Model.init ~engine Williamson.Tc5 m in
      Tsan.with_monitor tsan (fun () -> Model.run model ~steps);
      Alcotest.(check (list string))
        "no online violations" []
        (List.map Tsan.violation_message (Tsan.violations tsan));
      Alcotest.(check bool) "phases monitored" true (Tsan.phase_runs tsan > 0);
      Alcotest.(check bool) "tasks monitored" true (Tsan.tasks_seen tsan > 0);
      monitored := Some model.Model.state);
  let reference = Model.init ~engine:Timestep.refactored Williamson.Tc5 m in
  Model.run reference ~steps;
  let got = Option.get !monitored in
  let bits_equal xs ys =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      xs ys
  in
  Alcotest.(check bool)
    "monitored run bit-identical to sequential reference" true
    (bits_equal reference.Model.state.Fields.h got.Fields.h
    && bits_equal reference.Model.state.Fields.u got.Fields.u)

let test_tsan_overlap_clean () =
  Pool.with_pool ~n_domains:4 (fun pool ->
      let ov = overlap_of ~mode:Exec.Steal ~pool ~n_ranks:3 ~depth:1 () in
      let early_footprints, final_footprints = Comm.footprints ov in
      let tsan =
        Tsan.create
          ~spec:(Mpas_dist.Overlap.spec ov)
          ~early_footprints ~final_footprints ()
      in
      Tsan.with_monitor tsan (fun () ->
          for _ = 1 to 2 do
            Mpas_dist.Overlap.step ov
          done);
      Alcotest.(check (list string))
        "overlapped stolen run race-free online" []
        (List.map Tsan.violation_message (Tsan.violations tsan));
      Alcotest.(check bool) "tasks monitored" true (Tsan.tasks_seen tsan > 0))

let test_tsan_ensemble_clean () =
  Pool.with_pool ~n_domains:4 (fun pool ->
      let e = ensemble_engine ~mode:Exec.Steal ~pool (Lazy.force hex) in
      let tsan =
        Tsan.create
          ~spec:(Mpas_ensemble.Ensemble.spec e)
          ~early_footprints:(Ens.footprints e `Early)
          ~final_footprints:(Ens.footprints e `Final)
          ()
      in
      Tsan.with_monitor tsan (fun () ->
          for _ = 1 to 2 do
            Mpas_ensemble.Ensemble.step e ()
          done);
      Alcotest.(check (list string))
        "stolen ensemble run race-free online" []
        (List.map Tsan.violation_message (Tsan.violations tsan));
      Alcotest.(check bool) "tasks monitored" true (Tsan.tasks_seen tsan > 0))

let test_tsan_seeded_race_caught () =
  (* Drop a hazard edge that leaves a conflicting pair unordered, then
     replay the phase with no-op bodies on the sequential executor.
     The schedule never overlaps the pair — log replay would stay
     silent — but the clocks derive happens-before from the DAG alone,
     so the monitor must still name the pair. *)
  let spec = Spec.build ~recon:true () in
  let early_fp, final_fp = Infer.spec_footprints (Lazy.force probe) spec in
  let phase = spec.Spec.early in
  let seeded =
    List.filter_map
      (fun (src, dst) ->
        let dropped = Races.drop_edge phase ~src ~dst in
        if
          List.exists
            (fun (r : Races.race) -> r.Races.ra = src && r.Races.rb = dst)
            (Races.check_phase ~footprints:early_fp dropped)
        then Some (src, dst, dropped)
        else None)
      (Races.edges phase)
  in
  match seeded with
  | [] -> Alcotest.fail "no hazard-edge drop leaves a conflicting pair"
  | (src, dst, dropped) :: _ ->
      let mutated = { spec with Spec.early = dropped } in
      let tsan =
        Tsan.create ~spec:mutated ~early_footprints:early_fp
          ~final_footprints:final_fp ()
      in
      let bodies =
        Array.make (Array.length dropped.Spec.tasks) (fun () -> ())
      in
      Tsan.with_monitor tsan (fun () ->
          Exec.run_phase ~mode:Exec.Sequential ~pool:None ~host_lanes:1
            ~phase:`Early ~substep:0
            ~instrument:(fun _ body -> body ())
            dropped bodies);
      Alcotest.(check bool)
        (Printf.sprintf "race on severed pair %d, %d reported" src dst)
        true
        (List.exists
           (function
             | Tsan.Race r ->
                 (r.Tsan.rc_a = src && r.Tsan.rc_b = dst)
                 || (r.Tsan.rc_a = dst && r.Tsan.rc_b = src)
             | _ -> false)
           (Tsan.violations tsan))

(* --- bounded interleaving explorer -------------------------------------- *)

let test_explore_models_clean () =
  List.iter
    (fun m ->
      let oc = Explore.run m in
      Alcotest.(check (option string))
        (oc.Explore.oc_model ^ " clean") None oc.Explore.oc_error;
      Alcotest.(check bool)
        (oc.Explore.oc_model ^ " exhaustive within bound")
        false oc.Explore.oc_truncated;
      Alcotest.(check bool)
        (oc.Explore.oc_model ^ " explores many schedules")
        true
        (oc.Explore.oc_schedules > 1))
    [
      Explore.Models.chase_lev ();
      Explore.Models.steal_wakeup ();
      Explore.Models.async_exec ();
    ]

let test_explore_seeded_bugs_caught () =
  List.iter
    (fun m ->
      let oc = Explore.run m in
      Alcotest.(check bool)
        (Printf.sprintf "%s caught in %d schedules" oc.Explore.oc_model
           oc.Explore.oc_schedules)
        true
        (oc.Explore.oc_error <> None);
      Alcotest.(check bool)
        (oc.Explore.oc_model ^ " failing trace reported")
        true
        (oc.Explore.oc_trace <> []))
    [
      Explore.Models.chase_lev ~bug:Explore.Models.Drop_last_cas ();
      Explore.Models.async_exec ~bug:Explore.Models.Drop_enable_signal ();
      Explore.Models.steal_wakeup ~bug:Explore.Models.Drop_version_check ();
      Explore.Models.steal_wakeup ~bug:Explore.Models.Drop_spread_broadcast ();
      Explore.Models.steal_wakeup ~bug:Explore.Models.Drop_retire_broadcast ();
    ]

let test_explore_bound_matters () =
  (* The lost-wakeup window needs one preemption to open: bound 0
     misses the seeded version-check bug, bound 1 catches it —
     evidence the preemption budget is live, not decorative. *)
  let bug () =
    Explore.Models.steal_wakeup ~bug:Explore.Models.Drop_version_check ()
  in
  let at pb = (Explore.run ~preemption_bound:pb (bug ())).Explore.oc_error in
  Alcotest.(check (option string)) "bound 0 misses the window" None (at 0);
  Alcotest.(check bool) "bound 1 catches it" true (at 1 <> None)

(* --- bounds catalog self-audit ------------------------------------------ *)

let test_bounds_coverage_live () =
  List.iter
    (fun (name, m) ->
      let cov = Bounds.coverage (Lazy.force m) in
      Alcotest.(check bool)
        (name ^ ": the full catalog is interpreted")
        true
        (List.length cov = List.length Bounds.catalog);
      Alcotest.(check (list string))
        (name ^ ": no dead or out-of-bounds entries")
        []
        (List.filter_map
           (fun (c : Bounds.coverage) ->
             if Bounds.cv_dead c || c.Bounds.cv_oob > 0 then
               Some (Bounds.coverage_message c)
             else None)
           cov))
    [ ("hex", hex); ("ico", ico) ]

let test_bounds_coverage_selftest () =
  let bogus =
    {
      (List.hd Bounds.catalog) with
      Bounds.s_kernel = "selftest";
      s_array = "no_such_table";
      s_index = Bounds.Loaded { table = "no_such_table"; space = Bounds.Cells };
    }
  in
  match Bounds.coverage ~sites:[ bogus ] (Lazy.force hex) with
  | [ c ] ->
      Alcotest.(check bool) "bogus entry flagged dead" true (Bounds.cv_dead c)
  | _ -> Alcotest.fail "expected exactly one coverage row"

let src_root =
  lazy
    (List.find_opt
       (fun d -> Sys.file_exists (Filename.concat d "lib/swe/operators.ml"))
       [ "."; ".."; "../.."; "../../.."; "../../../.." ])

let test_bounds_scan_audit () =
  match Lazy.force src_root with
  | None -> Alcotest.fail "kernel sources not reachable from the test cwd"
  | Some root ->
      let sources = Bounds.default_sources ~root in
      Alcotest.(check (list string))
        "every unsafe source site catalogued, every entry live" []
        (List.map Bounds.scan_gap_message
           (Bounds.scan_audit ~sources Bounds.catalog));
      (* seeded gap: hide one kernel's entries *)
      let holey =
        List.filter
          (fun (s : Bounds.site) -> s.Bounds.s_kernel <> "tend_h")
          Bounds.catalog
      in
      Alcotest.(check bool)
        "hidden kernel reported uncatalogued" true
        (List.exists
           (function
             | Bounds.Uncatalogued sc -> sc.Bounds.sc_kernel = "tend_h"
             | Bounds.Unscanned _ -> false)
           (Bounds.scan_audit ~sources holey))

(* Run QCheck properties under an explicit seed, printed on failure so
   shrunk counterexamples reproduce: set QCHECK_SEED to replay a
   failing run. *)
let qcheck_with_seed tests =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> int_of_string s
    | None -> truncate (Unix.gettimeofday () *. 1000.)
  in
  List.map
    (fun t ->
      match t with
      | QCheck2.Test.Test cell ->
          let name = QCheck.Test.get_name cell in
          Alcotest.test_case name `Quick (fun () ->
              try
                QCheck.Test.check_cell_exn
                  ~rand:(Random.State.make [| seed |])
                  cell
              with e ->
                Printf.eprintf
                  "\n[qcheck] %s failed; reproduce with QCHECK_SEED=%d\n%!" name
                  seed;
                raise e))
    tests

let () =
  Alcotest.run "analysis"
    [
      ( "footprint",
        [
          Alcotest.test_case "iset" `Quick test_iset;
          Alcotest.test_case "conflicts" `Quick test_conflicts;
        ] );
      ( "inference",
        [
          Alcotest.test_case "registry clean" `Quick test_registry_clean;
          Alcotest.test_case "missing input caught" `Quick
            test_drift_missing_input;
          Alcotest.test_case "extra input caught" `Quick test_drift_extra_input;
          Alcotest.test_case "missing output caught" `Quick
            test_drift_missing_output;
          Alcotest.test_case "extra output caught" `Quick
            test_drift_extra_output;
          Alcotest.test_case "fused chains clean" `Quick test_fused_clean;
          Alcotest.test_case "fused dropped member caught" `Quick
            test_fused_dropped_member_caught;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "all sites proved" `Quick test_bounds_clean;
          Alcotest.test_case "out-of-range entry refutes" `Quick
            test_bounds_out_of_range;
          Alcotest.test_case "offsets drift refutes" `Quick
            test_bounds_offsets_drift;
        ] );
      ( "races",
        [
          Alcotest.test_case "specs race-free" `Quick test_static_clean;
          Alcotest.test_case "dropped hazard edge caught" `Quick
            test_dropped_edge_caught;
        ]
        @ qcheck_with_seed [ prop_replay_clean ] );
      ( "tsan",
        [
          Alcotest.test_case "vector clocks" `Quick test_vclock;
          Alcotest.test_case "engine run monitored bit-identical" `Quick
            test_tsan_engine_bit_identical;
          Alcotest.test_case "overlapped run monitored clean" `Quick
            test_tsan_overlap_clean;
          Alcotest.test_case "ensemble run monitored clean" `Quick
            test_tsan_ensemble_clean;
          Alcotest.test_case "seeded edge drop caught online" `Quick
            test_tsan_seeded_race_caught;
        ] );
      ( "explore",
        [
          Alcotest.test_case "protocol models proved clean" `Quick
            test_explore_models_clean;
          Alcotest.test_case "seeded protocol bugs caught" `Quick
            test_explore_seeded_bugs_caught;
          Alcotest.test_case "preemption bound is live" `Quick
            test_explore_bound_matters;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "catalog live on real meshes" `Quick
            test_bounds_coverage_live;
          Alcotest.test_case "bogus entry flagged dead" `Quick
            test_bounds_coverage_selftest;
          Alcotest.test_case "source scan agrees with catalog" `Quick
            test_bounds_scan_audit;
        ] );
      ( "comm",
        [
          Alcotest.test_case "overlapped specs race-free" `Quick
            test_comm_spec_clean;
          Alcotest.test_case "comm bodies match declarations" `Quick
            test_comm_bodies_verified;
          Alcotest.test_case "dropped unpack edge caught" `Quick
            test_comm_dropped_unpack_edge_caught;
          Alcotest.test_case "stolen overlapped log replays clean" `Quick
            test_comm_log_replay_steal;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "strided sites catalogued and proved" `Quick
            test_bounds_strided_coverage;
          Alcotest.test_case "strided sites refuted on corruption" `Quick
            test_bounds_strided_refuted_on_corruption;
          Alcotest.test_case "member axis race-free" `Quick
            test_ens_static_clean;
          Alcotest.test_case "dropped chain edge caught" `Quick
            test_ens_dropped_edge_caught;
          Alcotest.test_case "stolen ensemble log replays clean" `Quick
            test_ens_log_replay;
        ] );
    ]
