open Mpas_patterns
open Mpas_machine
open Mpas_hybrid

let stats = Cost.stats_of_level 6
let cfg split = Schedule.default_config ~split

(* --- plans -------------------------------------------------------------------- *)

let test_plans_cover_registry () =
  List.iter
    (fun plan ->
      Alcotest.(check (list string))
        (plan.Plan.plan_name ^ " covers all instances")
        [] (Plan.check plan))
    [ Plan.cpu_only; Plan.device_only; Plan.kernel_level; Plan.pattern_driven ]

let test_kernel_level_is_kernel_granular () =
  (* All instances of one kernel share a site. *)
  List.iter
    (fun kernel ->
      let sites =
        List.map
          (fun (i : Pattern.instance) ->
            Plan.kernel_level.Plan.place i.Pattern.id)
          (Registry.of_kernel kernel)
      in
      Alcotest.(check int)
        (Pattern.kernel_name kernel ^ " single site")
        1
        (List.length (List.sort_uniq compare sites)))
    Pattern.all_kernels

let test_pattern_driven_splits_diagnostics () =
  let adjustable =
    List.filter
      (fun (i : Pattern.instance) ->
        Plan.pattern_driven.Plan.place i.Pattern.id = Plan.Adjustable)
      Registry.instances
  in
  Alcotest.(check bool) "has adjustable instances" true (adjustable <> []);
  List.iter
    (fun (i : Pattern.instance) ->
      Alcotest.(check string)
        (i.Pattern.id ^ " adjustable only in diagnostics")
        "compute_solve_diagnostics"
        (Pattern.kernel_name i.Pattern.kernel))
    adjustable

(* --- schedules ------------------------------------------------------------------ *)

let test_step_tasks_simulate () =
  (* The task system must be well formed for every plan and split. *)
  List.iter
    (fun plan ->
      List.iter
        (fun split ->
          let r = Schedule.step_result (cfg split) stats plan in
          Alcotest.(check bool)
            (Format.sprintf "%s split %.1f positive makespan"
               plan.Plan.plan_name split)
            true
            (r.Simulate.makespan > 0.))
        [ 0.; 0.3; 1. ])
    [ Plan.cpu_only; Plan.device_only; Plan.kernel_level; Plan.pattern_driven ]

let test_cpu_only_has_idle_device () =
  let r = Schedule.step_result (cfg 0.) stats Plan.cpu_only in
  Alcotest.(check (float 0.)) "device idle" 0. r.Simulate.device_busy;
  Alcotest.(check (float 0.)) "no transfers" 0. r.Simulate.link_busy

let test_device_only_uses_device () =
  let r = Schedule.step_result (cfg 0.) stats Plan.device_only in
  Alcotest.(check (float 0.)) "host idle" 0. r.Simulate.host_busy

let test_task_counts () =
  (* Substeps 0-2 run every instance except the two reconstruction
     ones; substep 3 runs every instance except the substep-state
     update.  Resident pseudo-tasks have zero duration. *)
  let n = List.length Registry.instances in
  let expected = (3 * (n - 2)) + (n - 1) in
  let tasks = Schedule.step_tasks (cfg 0.) stats Plan.device_only in
  let pseudo, real =
    List.partition
      (fun (t : Simulate.task) -> t.Simulate.duration = 0.)
      tasks
  in
  Alcotest.(check bool) "pseudo tasks exist" true (List.length pseudo > 0);
  Alcotest.(check int) "instance executions" expected (List.length real)

let test_split_moves_work () =
  let t0 = Schedule.step_result (cfg 0.) stats Plan.pattern_driven in
  let t1 = Schedule.step_result (cfg 1.) stats Plan.pattern_driven in
  Alcotest.(check bool) "larger split, more host work" true
    (t1.Simulate.host_busy > t0.Simulate.host_busy);
  Alcotest.(check bool) "larger split, less device work" true
    (t1.Simulate.device_busy < t0.Simulate.device_busy)

let test_optimize_split_beats_extremes () =
  let _, best = Schedule.optimize_split ~grid:20 (cfg 0.) stats Plan.pattern_driven in
  let t0 = Schedule.step_time (cfg 0.) stats Plan.pattern_driven in
  let t1 = Schedule.step_time (cfg 1.) stats Plan.pattern_driven in
  Alcotest.(check bool) "best <= split 0" true (best <= t0 +. 1e-12);
  Alcotest.(check bool) "best <= split 1" true (best <= t1 +. 1e-12)

let test_optimize_split_no_adjustable () =
  let split, t = Schedule.optimize_split (cfg 0.5) stats Plan.kernel_level in
  Alcotest.(check (float 0.)) "split forced to 0" 0. split;
  Alcotest.(check bool) "time positive" true (t > 0.)

(* --- the paper's headline results ------------------------------------------------- *)

let cpu_serial level =
  Costmodel.step_time_single_device Hw.xeon_e5_2680_v2
    Costmodel.default_params Costmodel.baseline (Cost.stats_of_level level)

let test_pattern_beats_kernel_everywhere () =
  List.iter
    (fun (_, level) ->
      let s = Cost.stats_of_level level in
      let kernel = Schedule.step_time (cfg 0.) s Plan.kernel_level in
      let _, pattern = Schedule.optimize_split ~grid:20 (cfg 0.) s Plan.pattern_driven in
      Alcotest.(check bool)
        (Format.sprintf "level %d: pattern (%.3f) < kernel (%.3f)" level
           pattern kernel)
        true (pattern < kernel))
    Cost.table3_meshes

let test_fig7_speedup_band () =
  (* The headline: ~8.35x pattern-driven speedup on the finest mesh,
     within a 20% band; kernel-level around 6x. *)
  let s = Cost.stats_of_level 9 in
  let cpu = cpu_serial 9 in
  let kernel = Schedule.step_time (cfg 0.) s Plan.kernel_level in
  let _, pattern = Schedule.optimize_split ~grid:20 (cfg 0.) s Plan.pattern_driven in
  let sk = cpu /. kernel and sp = cpu /. pattern in
  Alcotest.(check bool)
    (Format.sprintf "kernel speedup %.2f in [4.8, 7.3]" sk)
    true
    (sk > 4.8 && sk < 7.3);
  Alcotest.(check bool)
    (Format.sprintf "pattern speedup %.2f in [6.7, 10.0]" sp)
    true
    (sp > 6.7 && sp < 10.0)

let test_speedup_grows_with_mesh () =
  let speedup level =
    let s = Cost.stats_of_level level in
    let _, t = Schedule.optimize_split ~grid:20 (cfg 0.) s Plan.pattern_driven in
    cpu_serial level /. t
  in
  Alcotest.(check bool) "finer meshes amortize overheads" true
    (speedup 9 > speedup 6)

let test_residency_reduces_transfers () =
  (* SS IV-A: keeping data resident on the device cuts the transfer
     volume of the pattern-driven design by at least 4x on the 30-km
     mesh. *)
  let s = Cost.stats_of_level 8 in
  let on = Schedule.step_result (cfg 0.) s Plan.pattern_driven in
  let off =
    Schedule.step_result
      { (cfg 0.) with Schedule.residency = false }
      s Plan.pattern_driven
  in
  let ratio = off.Simulate.link_busy /. on.Simulate.link_busy in
  Alcotest.(check bool)
    (Format.sprintf "transfer reduction %.1fx >= 4x" ratio)
    true (ratio >= 4.)

(* --- properties ---------------------------------------------------------------------- *)

let prop_split_extremes_match_pinned =
  (* A plan with everything adjustable at split 1 equals all-host. *)
  QCheck.Test.make ~name:"split continuity at extremes" ~count:5
    QCheck.(int_range 3 7)
    (fun level ->
      let s = Cost.stats_of_level level in
      let all_adjustable =
        { Plan.plan_name = "all-adjustable"; place = (fun _ -> Plan.Adjustable) }
      in
      let t_host = Schedule.step_time (cfg 1.) s all_adjustable in
      let t_cpu = Schedule.step_time (cfg 0.) s Plan.cpu_only in
      (* Identical work, same site: within a whisker (resident pseudo
         task bookkeeping only). *)
      Float.abs (t_host -. t_cpu) /. t_cpu < 0.02)

let prop_makespan_positive_any_split =
  QCheck.Test.make ~name:"makespan positive for any split" ~count:30
    QCheck.(float_bound_inclusive 1.)
    (fun split ->
      Schedule.step_time (cfg split) stats Plan.pattern_driven > 0.)

(* Real instance tasks are named "<id>#<substep>@h|@d"; pseudo tasks
   (steady-state residency, write-back) carry a "<prefix>:" marker. *)
let parse_task_tid tid =
  match String.index_opt tid ':' with
  | Some _ -> None
  | None -> (
      match (String.index_opt tid '#', String.rindex_opt tid '@') with
      | Some hash, Some at when hash < at ->
          let id = String.sub tid 0 hash in
          let substep = String.sub tid (hash + 1) (at - hash - 1) in
          let site = String.sub tid (at + 1) (String.length tid - at - 1) in
          Some (id, int_of_string substep, site)
      | _ -> None)

let all_plans =
  [ Plan.cpu_only; Plan.device_only; Plan.kernel_level; Plan.pattern_driven ]

let prop_instances_assigned_exactly_once =
  (* Under any plan and split, every registry instance shows up in the
     step's task system, no (instance, substep, site) is emitted twice,
     and an instance occupies at most the two sites per substep (both
     only when its placement is adjustable and split is interior). *)
  QCheck.Test.make ~name:"every instance assigned exactly once" ~count:24
    QCheck.(pair (float_bound_inclusive 1.) (int_range 0 3))
    (fun (split, plan_idx) ->
      let plan = List.nth all_plans plan_idx in
      let tasks = Schedule.step_tasks (cfg split) stats plan in
      let tids = List.map (fun t -> t.Simulate.tid) tasks in
      let parsed = List.filter_map parse_task_tid tids in
      let sites_of key =
        List.filter_map
          (fun (id, sub, site) -> if (id, sub) = key then Some site else None)
          parsed
      in
      List.length (List.sort_uniq compare tids) = List.length tids
      && parsed <> []
      && List.for_all
           (fun (id, sub, _) ->
             let sites = List.sort compare (sites_of (id, sub)) in
             sites = [ "d" ] || sites = [ "h" ] || sites = [ "d"; "h" ])
           parsed
      && List.for_all
           (fun (i : Pattern.instance) ->
             List.exists (fun (id, _, _) -> id = i.Pattern.id) parsed)
           Registry.instances)

let prop_optimized_split_in_unit_interval =
  QCheck.Test.make ~name:"optimized split lands in [0,1]" ~count:4
    QCheck.(int_range 3 6)
    (fun level ->
      let s = Cost.stats_of_level level in
      List.for_all
        (fun plan ->
          let best, t = Schedule.optimize_split ~grid:8 (cfg 0.5) s plan in
          0. <= best && best <= 1. && t > 0.)
        all_plans)

let prop_busy_monotone_in_split =
  (* The makespan is U-shaped in the split, so the honest monotonicity
     statement lives on the lanes: pushing adjustable work toward the
     host can only grow the host lane and shrink the device lane, and
     the makespan can never undercut its busiest lane. *)
  QCheck.Test.make ~name:"lane busy times monotone in split" ~count:20
    QCheck.(pair (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let r_lo = Schedule.step_result (cfg lo) stats Plan.pattern_driven in
      let r_hi = Schedule.step_result (cfg hi) stats Plan.pattern_driven in
      let tol = 1e-9 *. Float.max 1. r_lo.Simulate.makespan in
      r_lo.Simulate.host_busy <= r_hi.Simulate.host_busy +. tol
      && r_hi.Simulate.device_busy <= r_lo.Simulate.device_busy +. tol
      && List.for_all
           (fun (r : Simulate.result) ->
             r.Simulate.makespan
             >= Float.max r.Simulate.host_busy r.Simulate.device_busy -. tol)
           [ r_lo; r_hi ])

let () =
  Alcotest.run "hybrid"
    [
      ( "plans",
        [
          Alcotest.test_case "cover registry" `Quick test_plans_cover_registry;
          Alcotest.test_case "kernel granularity" `Quick
            test_kernel_level_is_kernel_granular;
          Alcotest.test_case "adjustable set" `Quick
            test_pattern_driven_splits_diagnostics;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "simulate all plans" `Quick
            test_step_tasks_simulate;
          Alcotest.test_case "cpu only" `Quick test_cpu_only_has_idle_device;
          Alcotest.test_case "device only" `Quick test_device_only_uses_device;
          Alcotest.test_case "task counts" `Quick test_task_counts;
          Alcotest.test_case "split moves work" `Quick test_split_moves_work;
          Alcotest.test_case "optimized split" `Quick
            test_optimize_split_beats_extremes;
          Alcotest.test_case "no adjustable" `Quick
            test_optimize_split_no_adjustable;
        ] );
      ( "paper results",
        [
          Alcotest.test_case "pattern beats kernel" `Quick
            test_pattern_beats_kernel_everywhere;
          Alcotest.test_case "fig7 band" `Quick test_fig7_speedup_band;
          Alcotest.test_case "speedup grows" `Quick test_speedup_grows_with_mesh;
          Alcotest.test_case "residency 4x" `Quick
            test_residency_reduces_transfers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_split_extremes_match_pinned;
            prop_makespan_positive_any_split;
            prop_instances_assigned_exactly_once;
            prop_optimized_split_in_unit_interval;
            prop_busy_monotone_in_split;
          ] );
    ]
