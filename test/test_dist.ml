open Mpas_numerics
open Mpas_mesh
open Mpas_swe
open Mpas_dist

let mesh = lazy (Build.icosahedral ~level:3 ~lloyd_iters:2 ())

(* Smaller instances for the overlapped-driver matrix. *)
let ico_small = lazy (Build.icosahedral ~level:2 ~lloyd_iters:2 ())
let hex = lazy (Planar_hex.create ~f:1e-4 ~nx:8 ~ny:6 ~dc:1000. ())

(* A geostrophically balanced f-plane state (the hex family has no
   Williamson case). *)
let hex_state (m : Mesh.t) =
  let f = 1e-4 and g = Config.default.Config.gravity in
  let flow = Vec3.make 5. 2. 0. in
  let slope = Vec3.scale (-.(f /. g)) (Vec3.cross Vec3.ez flow) in
  let h =
    Array.init m.Mesh.n_cells (fun c ->
        1000. +. Vec3.dot slope m.Mesh.x_cell.(c))
  in
  let u =
    Array.init m.Mesh.n_edges (fun e -> Vec3.dot flow m.Mesh.edge_normal.(e))
  in
  { Fields.h; u; tracers = [||] }

(* --- exchange structure ------------------------------------------------- *)

let build_exchange n_ranks =
  let m = Lazy.force mesh in
  Exchange.build m (Mpas_partition.Partition.sfc m ~n_parts:n_ranks)

let test_exchange_well_formed () =
  List.iter
    (fun n_ranks ->
      Alcotest.(check (list string))
        (Format.sprintf "%d ranks" n_ranks)
        []
        (Exchange.check (build_exchange n_ranks)))
    [ 1; 2; 4; 7 ]

let test_single_rank_has_no_ghosts () =
  let x = build_exchange 1 in
  let s = x.Exchange.sets.(0) in
  Alcotest.(check int) "no ghost cells" 0 (Array.length s.Exchange.ghost_cells);
  Alcotest.(check int) "no ghost edges" 0 (Array.length s.Exchange.ghost_edges);
  Alcotest.(check int) "owns all cells" (Lazy.force mesh).n_cells
    (Array.length s.Exchange.own_cells)

let test_exchange_moves_ghost_values () =
  let x = build_exchange 3 in
  let m = Lazy.force mesh in
  (* Each rank's copy starts with its rank id everywhere; after the
     exchange every ghost slot holds its owner's id. *)
  let fields =
    Array.init 3 (fun r -> Array.make m.n_cells (float_of_int r))
  in
  Exchange.exchange x Exchange.Cells fields;
  Array.iter
    (fun s ->
      Array.iter
        (fun g ->
          Alcotest.(check (float 0.))
            "ghost holds owner's value"
            (float_of_int x.Exchange.cell_owner.(g))
            fields.(s.Exchange.rank).(g))
        s.Exchange.ghost_cells)
    x.Exchange.sets

let test_exchange_counts_traffic () =
  let x = build_exchange 4 in
  let m = Lazy.force mesh in
  Exchange.reset_stats x;
  let fields = Array.init 4 (fun _ -> Array.make m.n_cells 0.) in
  Exchange.exchange x Exchange.Cells fields;
  let ghost_total =
    Array.fold_left
      (fun acc s -> acc + Array.length s.Exchange.ghost_cells)
      0 x.Exchange.sets
  in
  Alcotest.(check (float 0.1))
    "bytes = 8 * ghosts"
    (8. *. float_of_int ghost_total)
    (Exchange.bytes_moved x)

(* --- distributed model --------------------------------------------------- *)

let test_distributed_matches_serial () =
  let m = Lazy.force mesh in
  let serial = Model.init Williamson.Tc5 m in
  let dist = Driver.init ~n_ranks:4 Williamson.Tc5 m in
  Model.run serial ~steps:5;
  Driver.run dist ~steps:5;
  let gathered = Driver.gather_state dist in
  (* Owned entries use identical per-item arithmetic: bitwise equal. *)
  let same_h =
    Array.for_all Fun.id
      (Array.init m.n_cells (fun c ->
           Float.equal serial.Model.state.Fields.h.(c) gathered.Fields.h.(c)))
  in
  let same_u =
    Array.for_all Fun.id
      (Array.init m.n_edges (fun e ->
           Float.equal serial.Model.state.Fields.u.(e) gathered.Fields.u.(e)))
  in
  Alcotest.(check bool) "h bitwise equal" true same_h;
  Alcotest.(check bool) "u bitwise equal" true same_u

let test_rank_count_invariance () =
  let m = Lazy.force mesh in
  let d2 = Driver.init ~n_ranks:2 Williamson.Tc2 m in
  let d6 = Driver.init ~n_ranks:6 Williamson.Tc2 m in
  Driver.run d2 ~steps:3;
  Driver.run d6 ~steps:3;
  let g2 = Driver.gather_state d2 and g6 = Driver.gather_state d6 in
  Alcotest.(check bool) "2 vs 6 ranks bitwise equal" true
    (g2.Fields.h = g6.Fields.h && g2.Fields.u = g6.Fields.u)

let test_poison_does_not_leak () =
  (* NaN planted outside own+ghost must never reach owned values: the
     kernels only read what the ownership discipline allows. *)
  let m = Lazy.force mesh in
  let dist = Driver.init ~n_ranks:4 Williamson.Tc5 m in
  Driver.poison_invisible dist;
  Driver.run dist ~steps:2;
  Alcotest.(check bool) "owned values stay finite" true
    (Driver.owned_values_finite dist)

let test_distributed_conserves_mass () =
  let m = Lazy.force mesh in
  let dist = Driver.init ~n_ranks:3 Williamson.Tc5 m in
  let mass state =
    let acc = ref 0. in
    for c = 0 to m.n_cells - 1 do
      acc := !acc +. (state.Fields.h.(c) *. m.area_cell.(c))
    done;
    !acc
  in
  let before = mass (Driver.gather_state dist) in
  Driver.run dist ~steps:5;
  let after = mass (Driver.gather_state dist) in
  Alcotest.(check bool) "mass conserved" true
    (Stats.rel_diff before after < 1e-13)

let test_traffic_matches_netmodel_scale () =
  (* The measured per-step halo traffic should be within a small factor
     of what the analytic network model assumes. *)
  let m = Lazy.force mesh in
  let dist = Driver.init ~n_ranks:4 Williamson.Tc5 m in
  Exchange.reset_stats dist.Driver.exchange;
  Driver.run dist ~steps:1;
  let measured = Exchange.bytes_moved dist.Driver.exchange in
  let patch = Mpas_machine.Netmodel.analytic_patch ~cells:m.n_cells ~ranks:4 in
  (* Analytic model: 8 exchanges of 2 fields over the boundary; the
     fine-grained driver exchanges ~13 fields x 4 substeps. *)
  let boundary = float_of_int patch.Mpas_machine.Netmodel.boundary_cells in
  let analytic_low = 8. *. 2. *. boundary *. 8. *. 4. (* 4 ranks *) in
  Alcotest.(check bool)
    (Format.sprintf "measured %.0f within [1x, 40x] of coarse model %.0f"
       measured analytic_low)
    true
    (measured > analytic_low && measured < 40. *. analytic_low)

let test_dt_default_and_explicit () =
  let m = Lazy.force mesh in
  let auto = Driver.init ~n_ranks:2 Williamson.Tc5 m in
  let fixed = Driver.init ~n_ranks:2 ~dt:100. Williamson.Tc5 m in
  Alcotest.(check (float 1e-9))
    "default dt matches Williamson heuristic"
    (Williamson.recommended_dt Williamson.Tc5 m)
    auto.Driver.dt;
  Alcotest.(check (float 0.)) "explicit dt" 100. fixed.Driver.dt

let test_distributed_tracers_and_del4 () =
  (* The extension paths (tracer transport, biharmonic diffusion) must
     also be bitwise identical between serial and distributed runs. *)
  let m = Lazy.force mesh in
  let bell = Williamson.cosine_bell m in
  let dx = Mesh.mean_spacing m in
  let config =
    { Config.default with visc4 = 1e-4 *. (dx ** 4.) /. 86400. }
  in
  let serial = Model.init ~config ~tracers:[| bell |] Williamson.Tc5 m in
  let dist =
    Driver.init ~config ~tracers:[| bell |] ~n_ranks:4 Williamson.Tc5 m
  in
  Model.run serial ~steps:3;
  Driver.run dist ~steps:3;
  let same = ref true in
  Array.iter
    (fun s ->
      Array.iter
        (fun c ->
          if
            not
              (Float.equal
                 serial.Model.state.Fields.tracers.(0).(c)
                 dist.Driver.states.(s.Exchange.rank).Fields.tracers.(0).(c))
          then same := false;
          if
            not
              (Float.equal serial.Model.state.Fields.h.(c)
                 dist.Driver.states.(s.Exchange.rank).Fields.h.(c))
          then same := false)
        s.Exchange.own_cells)
    dist.Driver.exchange.Exchange.sets;
  Alcotest.(check bool) "tracers + del4 bitwise equal" true !same

(* --- overlapped driver ------------------------------------------------- *)

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let test_exchange_arity_reports_counts () =
  let x = build_exchange 4 in
  (match
     Exchange.exchange x Exchange.Cells (Array.init 3 (fun _ -> [||]))
   with
  | () -> Alcotest.fail "short field array accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        ("reports actual and expected: " ^ msg)
        true
        (contains msg "got 3" && contains msg "expected 4"));
  match
    Exchange.exchange x Exchange.Cells (Array.init 6 (fun _ -> [||]))
  with
  | () -> Alcotest.fail "long field array accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        ("reports actual and expected: " ^ msg)
        true
        (contains msg "got 6" && contains msg "expected 4")

(* The pairs (classic, overlapped) both built from the same initial
   state; bitwise identity of the gathered state after [steps]. *)
let overlap_matches_classic m state ~dt ~n_ranks ~depth ~steps =
  let b = Array.make m.Mesh.n_cells 0. in
  let classic = Driver.of_state ~n_ranks ~dt ~b m state in
  let ov = Overlap.of_driver ~depth (Driver.of_state ~n_ranks ~dt ~b m state) in
  Driver.run classic ~steps;
  Overlap.run ov ~steps;
  let a = Driver.gather_state classic and o = Overlap.gather_state ov in
  a.Fields.h = o.Fields.h && a.Fields.u = o.Fields.u

let test_overlap_matches_classic_10_steps () =
  let cases =
    [
      ("icosahedral", Lazy.force ico_small, None);
      ("planar-hex", Lazy.force hex, Some (hex_state (Lazy.force hex)));
    ]
  in
  List.iter
    (fun (name, m, state) ->
      let state, dt =
        match state with
        | Some s -> (s, 5.)
        | None ->
            let m' = Williamson.prepare_mesh Williamson.Tc5 m in
            let s, _b = Williamson.init Williamson.Tc5 m' in
            (s, Williamson.recommended_dt Williamson.Tc5 m')
      in
      List.iter
        (fun n_ranks ->
          List.iter
            (fun depth ->
              Alcotest.(check bool)
                (Printf.sprintf "%s, %d ranks, depth %d" name n_ranks depth)
                true
                (overlap_matches_classic m state ~dt ~n_ranks ~depth ~steps:10))
            [ 1; 2 ])
        [ 1; 2; 4 ])
    cases

let test_overlap_spec_well_formed () =
  let m = Lazy.force ico_small in
  let ov = Overlap.of_driver (Driver.init ~n_ranks:3 Williamson.Tc5 m) in
  Alcotest.(check (list string)) "spec check" [] (Mpas_runtime.Spec.check (Overlap.spec ov));
  (* comm kinds really appear *)
  let kinds p =
    Array.fold_left
      (fun acc (tk : Mpas_runtime.Spec.task) ->
        match tk.Mpas_runtime.Spec.kind with
        | Mpas_runtime.Spec.Compute -> acc
        | k -> Mpas_runtime.Spec.kind_name k :: acc)
      [] p.Mpas_runtime.Spec.tasks
  in
  let count name l =
    List.length (List.filter (fun k -> k = name) l)
  in
  let early = kinds (Overlap.spec ov).Mpas_runtime.Spec.early in
  (* 10 exchanged fields per early sweep at fourth order, 3 ranks:
     pack/unpack per rank, one transfer each *)
  Alcotest.(check int) "early packs" 30 (count "pack" early);
  Alcotest.(check int) "early transfers" 10 (count "exchange" early);
  Alcotest.(check int) "early unpacks" 30 (count "unpack" early)

let test_overlap_counts_traffic () =
  (* Overlapped ghost traffic must equal the classic driver's. *)
  let m = Lazy.force ico_small in
  let classic = Driver.init ~n_ranks:3 Williamson.Tc5 m in
  let od = Driver.init ~n_ranks:3 Williamson.Tc5 m in
  let ov = Overlap.of_driver od in
  Exchange.reset_stats classic.Driver.exchange;
  Exchange.reset_stats od.Driver.exchange;
  Driver.run classic ~steps:2;
  Overlap.run ov ~steps:2;
  Alcotest.(check int)
    "same exchange count" classic.Driver.exchange.Exchange.exchanges
    od.Driver.exchange.Exchange.exchanges;
  Alcotest.(check int)
    "same values moved" classic.Driver.exchange.Exchange.values_moved
    od.Driver.exchange.Exchange.values_moved

let test_overlap_rejects_unsupported () =
  let m = Lazy.force ico_small in
  let bell = Williamson.cosine_bell m in
  let with_tracers =
    Driver.init ~tracers:[| bell |] ~n_ranks:2 Williamson.Tc5 m
  in
  Alcotest.check_raises "tracers rejected"
    (Invalid_argument
       "Mpas_dist.Overlap.of_driver: tracers and biharmonic diffusion need \
        the classic Driver.step")
    (fun () -> ignore (Overlap.of_driver with_tracers))

(* --- properties ------------------------------------------------------------ *)

let prop_bitwise_equal_any_rank_count =
  QCheck.Test.make ~name:"distributed = serial for any rank count" ~count:4
    QCheck.(int_range 2 8)
    (fun n_ranks ->
      let m = Lazy.force mesh in
      let serial = Model.init Williamson.Tc6 m in
      let dist = Driver.init ~n_ranks Williamson.Tc6 m in
      Model.run serial ~steps:2;
      Driver.run dist ~steps:2;
      let g = Driver.gather_state dist in
      g.Fields.h = serial.Model.state.Fields.h
      && g.Fields.u = serial.Model.state.Fields.u)

(* Interior/boundary classification invariants, over random rank
   counts and halo depths. *)
let sorted_union a b = List.sort compare (Array.to_list a @ Array.to_list b)

let prop_split_tiles_owned =
  QCheck.Test.make ~name:"interior + boundary tile the owned sets" ~count:6
    QCheck.(pair (int_range 2 6) (int_range 1 3))
    (fun (n_ranks, depth) ->
      let x = build_exchange n_ranks in
      let splits = Exchange.classify x ~depth in
      Array.for_all
        (fun (sp : Exchange.split) ->
          let s = x.Exchange.sets.(sp.Exchange.sp_rank) in
          sorted_union sp.Exchange.int_cells sp.Exchange.bnd_cells
          = Array.to_list s.Exchange.own_cells
          && sorted_union sp.Exchange.int_edges sp.Exchange.bnd_edges
             = Array.to_list s.Exchange.own_edges
          && sorted_union sp.Exchange.int_vertices sp.Exchange.bnd_vertices
             = Array.to_list s.Exchange.own_vertices)
        splits)

let prop_send_subset_of_boundary =
  QCheck.Test.make ~name:"send sets are contained in the boundary" ~count:6
    QCheck.(pair (int_range 2 6) (int_range 1 3))
    (fun (n_ranks, depth) ->
      let x = build_exchange n_ranks in
      let splits = Exchange.classify x ~depth in
      let subset a b =
        let inb = Hashtbl.create 64 in
        Array.iter (fun i -> Hashtbl.replace inb i ()) b;
        Array.for_all (Hashtbl.mem inb) a
      in
      Array.for_all
        (fun (sp : Exchange.split) ->
          subset sp.Exchange.send_cells sp.Exchange.bnd_cells
          && subset sp.Exchange.send_edges sp.Exchange.bnd_edges
          && subset sp.Exchange.send_vertices sp.Exchange.bnd_vertices)
        splits)

let prop_interior_stencils_read_no_ghost =
  QCheck.Test.make
    ~name:"depth-1 stencils on interior entities read owned data only"
    ~count:6
    QCheck.(pair (int_range 2 6) (int_range 1 3))
    (fun (n_ranks, depth) ->
      let m = Lazy.force mesh in
      let x = build_exchange n_ranks in
      let splits = Exchange.classify x ~depth in
      Array.for_all
        (fun (sp : Exchange.split) ->
          let r = sp.Exchange.sp_rank in
          let own_c c = x.Exchange.cell_owner.(c) = r in
          let own_e e = x.Exchange.edge_owner.(e) = r in
          let own_v v = x.Exchange.vertex_owner.(v) = r in
          Array.for_all
            (fun c ->
              let ok = ref true in
              for j = 0 to m.n_edges_on_cell.(c) - 1 do
                if
                  not
                    (own_e m.edges_on_cell.(c).(j)
                    && own_c m.cells_on_cell.(c).(j)
                    && own_v m.vertices_on_cell.(c).(j))
                then ok := false
              done;
              !ok)
            sp.Exchange.int_cells
          && Array.for_all
               (fun e ->
                 Array.for_all own_c m.cells_on_edge.(e)
                 && Array.for_all own_v m.vertices_on_edge.(e)
                 && Array.for_all own_e m.edges_on_edge.(e))
               sp.Exchange.int_edges
          && Array.for_all
               (fun v ->
                 Array.for_all own_e m.edges_on_vertex.(v)
                 && Array.for_all own_c m.cells_on_vertex.(v))
               sp.Exchange.int_vertices)
        splits)

let prop_exchange_idempotent =
  QCheck.Test.make ~name:"exchange is idempotent" ~count:5
    QCheck.(int_range 2 6)
    (fun n_ranks ->
      let m = Lazy.force mesh in
      let x = build_exchange n_ranks in
      let r = Rng.create 9L in
      let fields =
        Array.init n_ranks (fun _ ->
            Array.init m.n_cells (fun _ -> Rng.uniform r 0. 1.))
      in
      Exchange.exchange x Exchange.Cells fields;
      let snapshot = Array.map Array.copy fields in
      Exchange.exchange x Exchange.Cells fields;
      Array.for_all2 (fun a b -> a = b) snapshot fields)

let () =
  Alcotest.run "dist"
    [
      ( "exchange",
        [
          Alcotest.test_case "well formed" `Quick test_exchange_well_formed;
          Alcotest.test_case "single rank" `Quick test_single_rank_has_no_ghosts;
          Alcotest.test_case "ghost values" `Quick
            test_exchange_moves_ghost_values;
          Alcotest.test_case "traffic stats" `Quick test_exchange_counts_traffic;
        ] );
      ( "distributed model",
        [
          Alcotest.test_case "matches serial bitwise" `Quick
            test_distributed_matches_serial;
          Alcotest.test_case "rank-count invariant" `Quick
            test_rank_count_invariance;
          Alcotest.test_case "poison containment" `Quick
            test_poison_does_not_leak;
          Alcotest.test_case "mass conservation" `Quick
            test_distributed_conserves_mass;
          Alcotest.test_case "traffic scale" `Quick
            test_traffic_matches_netmodel_scale;
          Alcotest.test_case "dt handling" `Quick test_dt_default_and_explicit;
          Alcotest.test_case "tracers + del4" `Quick
            test_distributed_tracers_and_del4;
        ] );
      ( "overlapped driver",
        [
          Alcotest.test_case "exchange arity message" `Quick
            test_exchange_arity_reports_counts;
          Alcotest.test_case "matches classic, 10 steps" `Quick
            test_overlap_matches_classic_10_steps;
          Alcotest.test_case "spec well formed" `Quick
            test_overlap_spec_well_formed;
          Alcotest.test_case "traffic stats match classic" `Quick
            test_overlap_counts_traffic;
          Alcotest.test_case "unsupported configs rejected" `Quick
            test_overlap_rejects_unsupported;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bitwise_equal_any_rank_count;
            prop_exchange_idempotent;
            prop_split_tiles_owned;
            prop_send_subset_of_boundary;
            prop_interior_stencils_read_no_ghost;
          ] );
    ]
