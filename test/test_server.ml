open Mpas_mesh
open Mpas_swe
open Mpas_server
module Metrics = Mpas_obs.Metrics

let ico = lazy (Build.icosahedral ~level:1 ~lloyd_iters:2 ())
let hex = lazy (Planar_hex.create ~f:1e-4 ~nx:8 ~ny:6 ~dc:1000. ())

(* --- snapshot codec: round trip ----------------------------------------- *)

(* Deterministic value stream with awkward floats mixed in: exact
   integers, subnormals, huge magnitudes, negative zero. *)
let stream seed =
  let s = ref (Int64.of_int (if seed = 0 then 0x9E3779B9 else seed)) in
  fun () ->
    s := Int64.logxor !s (Int64.shift_left !s 13);
    s := Int64.logxor !s (Int64.shift_right_logical !s 7);
    s := Int64.logxor !s (Int64.shift_left !s 17);
    let u = Int64.to_int (Int64.logand !s 0xFFFFL) in
    match u land 7 with
    | 0 -> float_of_int (u - 32768)
    | 1 -> 1e-310 *. float_of_int (1 + (u land 63))
    | 2 -> 1e300 +. (1e287 *. float_of_int u)
    | 3 -> -0.
    | _ -> (float_of_int u /. 65536.) -. 0.5

let random_state mesh seed =
  let next = stream seed in
  {
    Fields.h = Array.init mesh.Mesh.n_cells (fun _ -> next ());
    u = Array.init mesh.Mesh.n_edges (fun _ -> next ());
    tracers = [||];
  }

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let snapshot_of mesh ~width ~step ~seed =
  {
    Snapshot.sn_step = step;
    sn_members =
      List.init width (fun i -> (i * 3, random_state mesh (seed + i)));
  }

let snapshot_equal a b =
  a.Snapshot.sn_step = b.Snapshot.sn_step
  && List.length a.Snapshot.sn_members = List.length b.Snapshot.sn_members
  && List.for_all2
       (fun (ta, sa) (tb, sb) ->
         ta = tb
         && bits_equal sa.Fields.h sb.Fields.h
         && bits_equal sa.Fields.u sb.Fields.u)
       a.Snapshot.sn_members b.Snapshot.sn_members

(* Both mesh families, the ensemble widths the serving layer batches
   at, adversarial float payloads: encode/decode must be the identity
   on every bit. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"snapshot round-trips bit-exactly" ~count:24
    QCheck.(
      triple (oneofl [ 1; 7; 64 ]) bool (pair (int_range 0 100_000) small_nat))
    (fun (width, on_hex, (step, seed)) ->
      let mesh = Lazy.force (if on_hex then hex else ico) in
      let t = snapshot_of mesh ~width ~step ~seed in
      snapshot_equal t (Snapshot.decode (Snapshot.encode t)))

(* --- snapshot codec: corruption ------------------------------------------ *)

let corrupt_raises bytes =
  match Snapshot.decode bytes with
  | _ -> false
  | exception Snapshot.Corrupt _ -> true

(* Every proper prefix must be rejected by the frame checks — never a
   crash, never a silent partial load. *)
let prop_truncation =
  QCheck.Test.make ~name:"any truncation is Corrupt" ~count:24
    QCheck.(triple (oneofl [ 1; 7 ]) bool (pair small_nat (float_bound_exclusive 1.)))
    (fun (width, on_hex, (seed, frac)) ->
      let mesh = Lazy.force (if on_hex then hex else ico) in
      let bytes =
        Snapshot.encode (snapshot_of mesh ~width ~step:3 ~seed)
      in
      let cut = int_of_float (frac *. float_of_int (String.length bytes)) in
      corrupt_raises (String.sub bytes 0 cut))

(* Any single flipped bit must fail the checksum (or an earlier frame
   check) — the codec never silently loads a damaged image. *)
let prop_bit_flip =
  QCheck.Test.make ~name:"any single bit flip is Corrupt" ~count:48
    QCheck.(triple (oneofl [ 1; 7 ]) small_nat (pair small_nat (int_range 0 7)))
    (fun (width, seed, (pos_seed, bit)) ->
      let mesh = Lazy.force ico in
      let bytes =
        Snapshot.encode (snapshot_of mesh ~width ~step:9 ~seed)
      in
      let pos = pos_seed * 37 mod String.length bytes in
      let flipped = Bytes.of_string bytes in
      Bytes.set flipped pos
        (Char.chr (Char.code bytes.[pos] lxor (1 lsl bit)));
      corrupt_raises (Bytes.to_string flipped))

let test_codec_rejects_garbage () =
  Alcotest.(check bool) "empty" true (corrupt_raises "");
  Alcotest.(check bool) "short" true (corrupt_raises "MPAS-SNP");
  let valid =
    Snapshot.encode (snapshot_of (Lazy.force ico) ~width:1 ~step:0 ~seed:1)
  in
  Alcotest.(check bool) "trailing junk" true (corrupt_raises (valid ^ "x"));
  Alcotest.(check bool) "valid still decodes" true (not (corrupt_raises valid))

let test_codec_save_load () =
  let t = snapshot_of (Lazy.force hex) ~width:7 ~step:42 ~seed:5 in
  let path = Filename.temp_file "mpas_snap" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save t path;
      Alcotest.(check bool) "file round-trips" true
        (snapshot_equal t (Snapshot.load path)))

(* --- fault plans ---------------------------------------------------------- *)

let test_fault_plan_deterministic () =
  let a = Fault.plan ~ticks:20 ~events:5 ~seed:11 ()
  and b = Fault.plan ~ticks:20 ~events:5 ~seed:11 ()
  and c = Fault.plan ~ticks:20 ~events:5 ~seed:12 () in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  Alcotest.(check bool) "different seed, different plan" true (a <> c);
  Alcotest.(check bool) "sorted by tick" true
    (List.sort (fun x y -> compare x.Fault.ev_tick y.Fault.ev_tick) a = a);
  Alcotest.(check int) "requested event count" 5 (List.length a)

(* --- serving layer -------------------------------------------------------- *)

let steps = 4

let solo ?(config = Config.default) case n =
  let m = Model.init ~config ~engine:Timestep.refactored case (Lazy.force ico) in
  Model.run m ~steps:n;
  m.Model.state

let check_result srv id ?(config = Config.default) case n =
  match Server.result srv id with
  | None -> Alcotest.failf "job %d has no result" id
  | Some got ->
      let want = solo ~config case n in
      Alcotest.(check bool)
        (Printf.sprintf "job %d bit-identical to solo" id)
        true
        (bits_equal want.Fields.h got.Fields.h
        && bits_equal want.Fields.u got.Fields.u)

let status srv id = (Server.query srv id).Server.jb_status

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0
let ok = function Ok id -> id | Error r -> Alcotest.failf "rejected: %s" (Server.reject_message r)

let test_happy_path () =
  let srv = Server.create ~registry:(Metrics.create ()) ~capacity:2 (Lazy.force ico) in
  let a = ok (Server.submit srv ~steps Williamson.Tc5) in
  let cfg = { Config.default with h_adv_order = Config.Second } in
  let b = ok (Server.submit srv ~config:cfg ~steps Williamson.Tc2) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  Alcotest.(check bool) "a completed" true (status srv a = Server.Completed);
  Alcotest.(check bool) "b completed" true (status srv b = Server.Completed);
  check_result srv a Williamson.Tc5 steps;
  check_result srv b ~config:cfg Williamson.Tc2 steps

let test_admission_control () =
  let srv =
    Server.create ~registry:(Metrics.create ()) ~capacity:1 ~queue_limit:2
      ~tenant_quota:2 (Lazy.force ico)
  in
  let _a = ok (Server.submit srv ~tenant:"acme" ~steps Williamson.Tc5) in
  let _b = ok (Server.submit srv ~tenant:"acme" ~steps Williamson.Tc5) in
  (match Server.submit srv ~tenant:"acme" ~steps Williamson.Tc5 with
  | Error (Server.Tenant_quota ("acme", 2)) -> ()
  | _ -> Alcotest.fail "third acme submit should hit the quota");
  (match Server.submit srv ~tenant:"beta" ~steps Williamson.Tc5 with
  | Error (Server.Queue_full 2) -> ()
  | _ -> Alcotest.fail "same-priority submit should bounce off the full queue");
  (* a higher-priority arrival sheds the newest low-priority job instead *)
  let high =
    ok (Server.submit srv ~tenant:"beta" ~priority:Server.High ~steps Williamson.Tc5)
  in
  Alcotest.(check bool) "victim shed" true
    (match status srv _b with Server.Shed _ -> true | _ -> false);
  Alcotest.(check bool) "malformed steps raise" true
    (match Server.submit srv ~steps:0 Williamson.Tc5 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (match
     Server.submit srv
       ~config:{ Config.default with visc4 = 1e10 }
       ~steps Williamson.Tc5
   with
  | Error (Server.Unsupported _) -> ()
  | _ -> Alcotest.fail "visc4 config should be rejected as unsupported");
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  Alcotest.(check bool) "high-priority job completed" true
    (status srv high = Server.Completed)

let test_priority_and_wfq () =
  let srv =
    Server.create ~registry:(Metrics.create ()) ~capacity:1 (Lazy.force ico)
  in
  (* heavy tenant floods first; light tenant arrives last *)
  let h1 = ok (Server.submit srv ~tenant:"heavy" ~steps Williamson.Tc5) in
  let h2 = ok (Server.submit srv ~tenant:"heavy" ~steps Williamson.Tc5) in
  let h3 = ok (Server.submit srv ~tenant:"heavy" ~steps Williamson.Tc5) in
  let l1 = ok (Server.submit srv ~tenant:"light" ~steps Williamson.Tc5) in
  let lo = ok (Server.submit srv ~tenant:"zeta" ~priority:Server.Low ~steps Williamson.Tc5) in
  Server.tick srv;
  Alcotest.(check bool) "heavy admitted first (vt tie, name order)" true
    (status srv h1 = Server.Running);
  (* after the first job retires, fair queuing picks the light tenant
     over the heavy tenant's backlog *)
  for _ = 1 to steps do Server.tick srv done;
  Alcotest.(check bool) "h1 completed" true (status srv h1 = Server.Completed);
  Alcotest.(check bool) "light runs before heavy backlog" true
    (status srv l1 = Server.Running);
  Alcotest.(check bool) "heavy backlog still queued" true
    (status srv h2 = Server.Queued && status srv h3 = Server.Queued);
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "job %d completed" id)
        true
        (status srv id = Server.Completed))
    [ h1; h2; h3; l1; lo ]

let test_kernel_raise_recovery () =
  let registry = Metrics.create () in
  let fault = [ { Fault.ev_tick = 2; ev_kind = Fault.Kernel_raise; ev_arg = 1 } ] in
  let srv =
    Server.create ~registry ~capacity:2 ~checkpoint_every:2 ~fault
      (Lazy.force ico)
  in
  let n = 6 in
  let id = ok (Server.submit srv ~steps:n Williamson.Tc5) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  let info = Server.query srv id in
  Alcotest.(check bool) "completed" true (info.Server.jb_status = Server.Completed);
  Alcotest.(check int) "one retry" 1 info.Server.jb_retries;
  check_result srv id Williamson.Tc5 n;
  let snap = Metrics.snapshot registry in
  Alcotest.(check (option int)) "one recovery" (Some 1)
    (Metrics.find_counter snap "server.recoveries");
  Alcotest.(check (option int)) "one restore" (Some 1)
    (Metrics.find_counter snap "server.restores")

let test_lane_death_recovery () =
  let fault = [ { Fault.ev_tick = 3; ev_kind = Fault.Lane_death; ev_arg = 0 } ] in
  let srv =
    Server.create ~registry:(Metrics.create ()) ~capacity:2 ~checkpoint_every:2
      ~fault (Lazy.force ico)
  in
  let n = 6 in
  let id = ok (Server.submit srv ~steps:n Williamson.Tc5) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  Alcotest.(check bool) "completed after lane death" true
    (status srv id = Server.Completed);
  check_result srv id Williamson.Tc5 n

let test_truncated_checkpoint_fallback () =
  let registry = Metrics.create () in
  (* the step-2 checkpoint is written truncated; the raise at tick 4
     must fall back to the pristine step-0 image and still land
     bit-identically *)
  let fault =
    [
      { Fault.ev_tick = 2; ev_kind = Fault.Snapshot_truncate; ev_arg = 0 };
      { Fault.ev_tick = 4; ev_kind = Fault.Kernel_raise; ev_arg = 2 };
    ]
  in
  let srv =
    Server.create ~registry ~capacity:1 ~checkpoint_every:2 ~fault
      (Lazy.force ico)
  in
  let n = 6 in
  let id = ok (Server.submit srv ~steps:n Williamson.Tc5) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  Alcotest.(check bool) "completed via older checkpoint" true
    (status srv id = Server.Completed);
  check_result srv id Williamson.Tc5 n;
  let snap = Metrics.snapshot registry in
  Alcotest.(check bool) "corrupt snapshot was skipped, not loaded" true
    (match Metrics.find_counter snap "server.snapshots_corrupt_skipped" with
    | Some k -> k >= 1
    | None -> false)

let test_no_valid_checkpoint_fails_reported () =
  (* every checkpoint the job ever writes (only the admission-time one,
     given the long period) is truncated; recovery must report failure,
     never silently rerun or load a damaged image *)
  let fault =
    [
      { Fault.ev_tick = 1; ev_kind = Fault.Snapshot_truncate; ev_arg = 0 };
      { Fault.ev_tick = 2; ev_kind = Fault.Kernel_raise; ev_arg = 0 };
    ]
  in
  let srv =
    Server.create ~registry:(Metrics.create ()) ~capacity:1
      ~checkpoint_every:1000 ~fault (Lazy.force ico)
  in
  let id = ok (Server.submit srv ~steps:6 Williamson.Tc5) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  match status srv id with
  | Server.Failed reason ->
      Alcotest.(check bool) "reason names the missing checkpoint" true
        (contains reason "no valid checkpoint")
  | s -> Alcotest.failf "expected failed, got %s" (Server.status_name s)

let test_retries_exhausted () =
  let fault =
    List.init 8 (fun i ->
        { Fault.ev_tick = i + 2; ev_kind = Fault.Kernel_raise; ev_arg = 0 })
  in
  let srv =
    Server.create ~registry:(Metrics.create ()) ~capacity:1 ~checkpoint_every:2
      ~max_retries:2 ~fault (Lazy.force ico)
  in
  let id = ok (Server.submit srv ~steps:20 Williamson.Tc5) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  match status srv id with
  | Server.Failed reason ->
      Alcotest.(check bool) "reason names the retry cap" true
        (contains reason "retries exhausted")
  | s -> Alcotest.failf "expected failed, got %s" (Server.status_name s)

let test_deadline_shed_and_demote () =
  let srv =
    Server.create ~registry:(Metrics.create ()) ~capacity:1 (Lazy.force ico)
  in
  let blocker = ok (Server.submit srv ~steps:6 Williamson.Tc5) in
  let doomed = ok (Server.submit srv ~deadline:2 ~steps:6 Williamson.Tc5) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  Alcotest.(check bool) "blocker completed" true
    (status srv blocker = Server.Completed);
  Alcotest.(check bool) "queued job past deadline shed" true
    (match status srv doomed with Server.Shed _ -> true | _ -> false);
  (* same setup with finish_over_deadline: demoted to the cheap lane,
     but finishes *)
  let registry = Metrics.create () in
  let srv =
    Server.create ~registry ~capacity:1 ~finish_over_deadline:true
      (Lazy.force ico)
  in
  let _blocker = ok (Server.submit srv ~steps:6 Williamson.Tc5) in
  let late = ok (Server.submit srv ~deadline:2 ~steps:4 Williamson.Tc5) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  Alcotest.(check bool) "late job still completed" true
    (status srv late = Server.Completed);
  Alcotest.(check bool) "demoted to the cheap lane" true
    ((Server.query srv late).Server.jb_priority = Server.Low);
  Alcotest.(check (option int)) "demotion counted" (Some 1)
    (Metrics.find_counter (Metrics.snapshot registry)
       "server.deadline_demotions");
  check_result srv late Williamson.Tc5 4

let test_cancel () =
  let srv =
    Server.create ~registry:(Metrics.create ()) ~capacity:1 (Lazy.force ico)
  in
  let a = ok (Server.submit srv ~steps:6 Williamson.Tc5) in
  let b = ok (Server.submit srv ~steps:6 Williamson.Tc5) in
  Server.tick srv;
  Server.cancel srv b;
  Alcotest.(check bool) "queued job cancelled" true
    (status srv b = Server.Cancelled);
  Server.cancel srv a;
  Alcotest.(check bool) "running job cancelled" true
    (status srv a = Server.Cancelled);
  Alcotest.(check int) "slot freed" 0 (Server.running srv);
  Alcotest.(check bool) "unknown id raises" true
    (match Server.query srv 999 with
    | _ -> false
    | exception Not_found -> true)

(* Divergence is deterministic, not transient: an absurd dt blows the
   run up the same way every time, so the server must fail the job
   immediately with the engine's reason instead of burning retries on
   checkpoint restarts. *)
let test_divergence_fails_without_retry () =
  let srv =
    Server.create ~registry:(Metrics.create ()) ~capacity:1 (Lazy.force ico)
  in
  let id = ok (Server.submit srv ~dt:1e9 ~steps:6 Williamson.Tc5) in
  Alcotest.(check bool) "drained" true (Server.drain srv ());
  let info = Server.query srv id in
  (match info.Server.jb_status with
  | Server.Failed reason ->
      Alcotest.(check bool) "engine reason forwarded" true
        (contains reason "diverged")
  | s -> Alcotest.failf "expected failed, got %s" (Server.status_name s));
  Alcotest.(check int) "no retries burned" 0 info.Server.jb_retries

let () =
  Alcotest.run "server"
    [
      ( "snapshot-codec",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_truncation;
          QCheck_alcotest.to_alcotest prop_bit_flip;
          Alcotest.test_case "garbage rejected" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "save/load" `Quick test_codec_save_load;
        ] );
      ( "fault-plans",
        [
          Alcotest.test_case "seeded determinism" `Quick
            test_fault_plan_deterministic;
        ] );
      ( "serving",
        [
          Alcotest.test_case "happy path" `Quick test_happy_path;
          Alcotest.test_case "admission control" `Quick test_admission_control;
          Alcotest.test_case "priority + weighted fairness" `Quick
            test_priority_and_wfq;
          Alcotest.test_case "kernel-raise recovery" `Quick
            test_kernel_raise_recovery;
          Alcotest.test_case "lane-death recovery" `Quick
            test_lane_death_recovery;
          Alcotest.test_case "truncated checkpoint fallback" `Quick
            test_truncated_checkpoint_fallback;
          Alcotest.test_case "all checkpoints corrupt -> reported failure"
            `Quick test_no_valid_checkpoint_fails_reported;
          Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
          Alcotest.test_case "deadline shed and demote" `Quick
            test_deadline_shed_and_demote;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "divergence fails without retry" `Quick
            test_divergence_fails_without_retry;
        ] );
    ]
