open Mpas_numerics
open Mpas_mesh
open Mpas_par
open Mpas_swe
open Mpas_patterns
open Mpas_runtime

let ico = lazy (Build.icosahedral ~level:3 ~lloyd_iters:3 ())
let hex = lazy (Planar_hex.create ~f:1e-4 ~nx:8 ~ny:6 ~dc:1000. ())

(* A geostrophically balanced f-plane state (the hex family has no
   Williamson case). *)
let hex_state (m : Mesh.t) =
  let f = 1e-4 and g = Config.default.Config.gravity in
  let flow = Vec3.make 5. 2. 0. in
  let slope = Vec3.scale (-.(f /. g)) (Vec3.cross Vec3.ez flow) in
  let h =
    Array.init m.Mesh.n_cells (fun c ->
        1000. +. Vec3.dot slope m.Mesh.x_cell.(c))
  in
  let u =
    Array.init m.Mesh.n_edges (fun e -> Vec3.dot flow m.Mesh.edge_normal.(e))
  in
  { Fields.h; u; tracers = [||] }

let bits_equal xs ys =
  Array.length xs = Array.length ys
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       xs ys

let check_bit_identical name (a : Fields.state) (b : Fields.state) =
  Alcotest.(check bool) (name ^ ": h bit-identical") true
    (bits_equal a.Fields.h b.Fields.h);
  Alcotest.(check bool) (name ^ ": u bit-identical") true
    (bits_equal a.Fields.u b.Fields.u)

let with_optional_pool domains f =
  if domains <= 1 then f None
  else Pool.with_pool ~n_domains:domains (fun p -> f (Some p))

(* --- spec -------------------------------------------------------------- *)

let test_spec_well_formed () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check (list string)) name [] (Spec.check s))
    [
      ("default", Spec.build ~recon:true ());
      ("no recon", Spec.build ~recon:false ());
      ( "pattern-driven 0.4",
        Spec.build ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.4
          ~recon:true () );
      ( "pattern-driven 0",
        Spec.build ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0. ~recon:true
          () );
      ( "pattern-driven 1",
        Spec.build ~plan:Mpas_hybrid.Plan.pattern_driven ~split:1. ~recon:true
          () );
      ( "kernel-level",
        Spec.build ~plan:Mpas_hybrid.Plan.kernel_level ~recon:true () );
    ]

let test_spec_counts () =
  let s = Spec.build ~recon:true () in
  (* 21 registry instances minus A4/X6 early, minus X3 final. *)
  Alcotest.(check int) "early tasks" 19 (Array.length s.Spec.early.Spec.tasks);
  Alcotest.(check int) "final tasks" 20 (Array.length s.Spec.final.Spec.tasks);
  Alcotest.(check bool) "host only" false (Spec.uses_device s);
  (* pattern_driven marks 7 instances adjustable: each becomes 2 parts. *)
  let sp =
    Spec.build ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.4 ~recon:true ()
  in
  Alcotest.(check int) "early split tasks" 26
    (Array.length sp.Spec.early.Spec.tasks);
  Alcotest.(check int) "final split tasks" 27
    (Array.length sp.Spec.final.Spec.tasks);
  Alcotest.(check bool) "uses device" true (Spec.uses_device sp)

(* --- super-task fusion -------------------------------------------------- *)

let member_ids (p : Spec.phase) =
  List.concat_map
    (fun (tk : Spec.task) ->
      if tk.Spec.part = None || (match tk.Spec.part with
        | Some (f0, _) -> f0 = 0.
        | None -> true)
      then List.map (fun (m : Pattern.instance) -> m.Pattern.id) tk.Spec.members
      else [])
    (Array.to_list p.Spec.tasks)

let test_spec_fused_well_formed () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check (list string)) name [] (Spec.check s))
    [
      ("fused", Spec.build ~fuse:true ~recon:true ());
      ("fused no recon", Spec.build ~fuse:true ~recon:false ());
      ("fused tiled", Spec.build ~fuse:true ~tile:(fun _ -> 3) ~recon:true ());
      ( "fused tiled split",
        Spec.build ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.4 ~fuse:true
          ~tile:(fun _ -> 3) ~recon:true () );
      ("tiled only", Spec.build ~tile:(fun _ -> 4) ~recon:true ());
    ]

let test_spec_fused_counts () =
  let s = Spec.build ~fuse:true ~recon:true () in
  (* The greedy packer collapses the 19/20 instances into 8/7 chains. *)
  Alcotest.(check int) "fused early tasks" 8
    (Array.length s.Spec.early.Spec.tasks);
  Alcotest.(check int) "fused final tasks" 7
    (Array.length s.Spec.final.Spec.tasks);
  (* No instance is dropped or duplicated by fusion. *)
  Alcotest.(check int) "early members" 19
    (List.length (member_ids s.Spec.early));
  Alcotest.(check int) "final members" 20
    (List.length (member_ids s.Spec.final));
  (* Every chain is legal under the dataflow fusion rules. *)
  let legal (tk : Spec.task) =
    let rec go chain = function
      | [] -> true
      | m :: rest ->
          Mpas_dataflow.Fusion.can_follow ~chain m && go (chain @ [ m ]) rest
    in
    match tk.Spec.members with [] -> false | first :: rest -> go [ first ] rest
  in
  Alcotest.(check bool) "chains legal" true
    (Array.for_all legal s.Spec.early.Spec.tasks
    && Array.for_all legal s.Spec.final.Spec.tasks);
  (* Tiling multiplies tasks without changing the member multiset. *)
  let st = Spec.build ~fuse:true ~tile:(fun _ -> 3) ~recon:true () in
  Alcotest.(check int) "tiled early tasks" 24
    (Array.length st.Spec.early.Spec.tasks);
  Alcotest.(check (list string))
    "tiled members match fused members"
    (List.sort compare (member_ids s.Spec.early))
    (List.sort compare (member_ids st.Spec.early))

let task_index (p : Spec.phase) id =
  let found = ref (-1) in
  Array.iteri
    (fun i (tk : Spec.task) ->
      if tk.Spec.instance.Pattern.id = id && tk.Spec.part = None then found := i)
    p.Spec.tasks;
  if !found < 0 then Alcotest.fail ("no full task for " ^ id);
  !found

let test_spec_hazard_edges () =
  (* The WAR edges the RAW diagram cannot carry: tend readers of the
     previous substep's diagnostics must finish before this substep's
     diagnostics overwrite them. *)
  let s = Spec.build ~recon:true () in
  let p = s.Spec.early in
  let edge a b =
    List.mem (task_index p a) p.Spec.tasks.(task_index p b).Spec.preds
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (a ^ " before " ^ b) true (edge a b))
    [
      ("C1", "A3");  (* C1 reads old divergence; A3 rewrites it *)
      ("C1", "D1");  (* same for vorticity *)
      ("A1", "B2");  (* A1/B1 read old h_edge; B2 rewrites it *)
      ("B1", "B2");
      ("B1", "A2");  (* old ke *)
      ("B1", "F");   (* old pv_edge *)
      ("B1", "X3");  (* tend reads old provis; X3 rewrites it *)
      ("H2", "B2");  (* and a known RAW edge for contrast *)
      ("X3", "A2");  (* diagnostics wait for the new provisional state *)
    ]

let test_part_ranges_tile () =
  List.iter
    (fun n ->
      List.iter
        (fun f ->
          let a = Bind.part_range ~n (0., f)
          and b = Bind.part_range ~n (f, 1.) in
          Alcotest.(check int)
            (Printf.sprintf "n=%d f=%g tiles" n f)
            n
            (Array.length a + Array.length b);
          if Array.length a > 0 && Array.length b > 0 then
            Alcotest.(check int) "contiguous" (a.(Array.length a - 1) + 1)
              b.(0))
        [ 0.1; 0.25; 0.4; 0.5; 0.9 ])
    [ 1; 7; 642; 1000 ]

(* --- bit-identity against the sequential reference ---------------------- *)

let check_matches_sequential ~name ~mk_model ~mode ?plan ?split ?host_lanes
    ?fuse ?tiling ~domains ~steps () =
  let reference = mk_model Timestep.refactored in
  Model.run reference ~steps;
  with_optional_pool domains (fun pool ->
      let eng =
        Engine.create ~mode ?pool ?plan ?split ?host_lanes ?fuse ?tiling ()
      in
      let model = mk_model (Engine.timestep_engine eng) in
      Model.run model ~steps;
      check_bit_identical name reference.Model.state model.Model.state)

let mk_ico engine = Model.init ~engine Williamson.Tc5 (Lazy.force ico)

let mk_hex engine =
  let m = Lazy.force hex in
  Model.of_state ~engine ~dt:5. ~b:(Array.make m.Mesh.n_cells 0.) m
    (hex_state m)

let test_ico_async_matches () =
  check_matches_sequential ~name:"ico async" ~mk_model:mk_ico ~mode:Exec.Async
    ~domains:4 ~steps:10 ()

let test_ico_split_matches () =
  check_matches_sequential ~name:"ico pattern-driven split" ~mk_model:mk_ico
    ~mode:Exec.Async ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.4
    ~host_lanes:2 ~domains:4 ~steps:10 ()

let test_hex_barrier_matches () =
  check_matches_sequential ~name:"hex barrier" ~mk_model:mk_hex
    ~mode:Exec.Barrier ~domains:2 ~steps:10 ()

let test_hex_split_matches () =
  check_matches_sequential ~name:"hex pattern-driven split" ~mk_model:mk_hex
    ~mode:Exec.Async ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.3
    ~domains:2 ~steps:10 ()

let test_sequential_mode_matches () =
  check_matches_sequential ~name:"sequential mode" ~mk_model:mk_ico
    ~mode:Exec.Sequential ~domains:1 ~steps:3 ()

let test_ico_fused_steal_tiled_matches () =
  (* The full optimisation stack — fused super-tasks, cache-block
     tiling, work-stealing lanes — must still be bit-identical to the
     sequential reference after 10 steps. *)
  check_matches_sequential ~name:"ico fused+steal+tiled" ~mk_model:mk_ico
    ~mode:Exec.Steal ~fuse:true ~tiling:(`Block 200) ~domains:4 ~steps:10 ()

let test_hex_fused_steal_tiled_matches () =
  check_matches_sequential ~name:"hex fused+steal+tiled" ~mk_model:mk_hex
    ~mode:Exec.Steal ~fuse:true ~tiling:(`Block 16) ~domains:4 ~steps:10 ()

let test_ico_fused_split_steal_matches () =
  (* Fusion and stealing under a hybrid plan with part tasks. *)
  check_matches_sequential ~name:"ico fused split steal" ~mk_model:mk_ico
    ~mode:Exec.Steal ~plan:Mpas_hybrid.Plan.pattern_driven ~split:0.4
    ~host_lanes:2 ~fuse:true ~tiling:`Auto ~domains:4 ~steps:10 ()

let test_determinism_across_pool_sizes () =
  List.iter
    (fun domains ->
      check_matches_sequential
        ~name:(Printf.sprintf "async %d domains" domains)
        ~mk_model:mk_ico ~mode:Exec.Async ~domains ~steps:5 ())
    [ 1; 2; 4 ]

let test_split_sweep_matches () =
  (* Every split fraction must give the same bits — the split only moves
     the cut between the two part tasks. *)
  List.iter
    (fun split ->
      check_matches_sequential
        ~name:(Printf.sprintf "split %g" split)
        ~mk_model:mk_hex ~mode:Exec.Async
        ~plan:Mpas_hybrid.Plan.pattern_driven ~split ~domains:2 ~steps:3 ())
    [ 0.; 0.2; 0.5; 0.8; 1. ]

(* --- scheduling properties (via the execution log) ---------------------- *)

let early_ids =
  List.filter_map
    (fun (i : Pattern.instance) ->
      if i.Pattern.kernel = Pattern.Mpas_reconstruct then None
      else Some i.Pattern.id)
    Registry.instances

let final_ids =
  List.filter_map
    (fun (i : Pattern.instance) ->
      if i.Pattern.id = "X3" then None else Some i.Pattern.id)
    Registry.instances

let schedule_sound (domains, mode) =
  let log : Exec.log = ref [] in
  let spec = Spec.build ~recon:true () in
  with_optional_pool domains (fun pool ->
      let eng = Engine.create ~mode ?pool ~log () in
      let model = mk_hex (Engine.timestep_engine eng) in
      Model.run model ~steps:1);
  let entries = !log in
  List.for_all
    (fun (ph, sub) ->
      let g =
        List.filter
          (fun (e : Exec.entry) -> e.Exec.e_phase = ph && e.Exec.e_substep = sub)
          entries
      in
      let ids = List.sort compare (List.map (fun e -> e.Exec.e_instance) g) in
      let expect =
        List.sort compare (if ph = `Early then early_ids else final_ids)
      in
      let phase_spec = if ph = `Early then spec.Spec.early else spec.Spec.final in
      let by_task = Array.make (Array.length phase_spec.Spec.tasks) None in
      List.iter (fun (e : Exec.entry) -> by_task.(e.Exec.e_task) <- Some e) g;
      (* every instance exactly once per substep *)
      ids = expect
      && Array.for_all Option.is_some by_task
      (* no task starts before all its producers finished *)
      && Array.for_all
           (fun (tk : Spec.task) ->
             match by_task.(tk.Spec.index) with
             | None -> false
             | Some e ->
                 List.for_all
                   (fun p ->
                     match by_task.(p) with
                     | None -> false
                     | Some pe -> pe.Exec.e_finish_seq < e.Exec.e_start_seq)
                   tk.Spec.preds)
           phase_spec.Spec.tasks)
    [ (`Early, 0); (`Early, 1); (`Early, 2); (`Final, 3) ]

let prop_schedule_sound =
  QCheck.Test.make ~name:"exactly-once + happens-before" ~count:12
    QCheck.(
      pair
        (oneofl [ 1; 2; 4 ])
        (oneofl [ Exec.Barrier; Exec.Async; Exec.Steal ]))
    schedule_sound

(* The same soundness over the overlapped distributed programs, whose
   phases carry Pack/Exchange/Unpack tasks: every task of the
   comm-extended DAG runs exactly once per substep, no task starts
   before its predecessors finish, and comm tasks really execute. *)
let ico_dist = lazy (Build.icosahedral ~level:2 ~lloyd_iters:2 ())

let overlap_schedule_sound (domains, mode, depth) =
  let m = Lazy.force ico_dist in
  let log : Exec.log = ref [] in
  let d = Mpas_dist.Driver.init ~n_ranks:3 Williamson.Tc5 m in
  let spec =
    with_optional_pool domains (fun pool ->
        let ov = Mpas_dist.Overlap.of_driver ~mode ?pool ~log ~depth d in
        Mpas_dist.Overlap.run ov ~steps:1;
        Mpas_dist.Overlap.spec ov)
  in
  let entries = !log in
  let comm_ran kind_prefix =
    List.exists
      (fun (e : Exec.entry) ->
        String.length e.Exec.e_instance > 3
        && String.sub e.Exec.e_instance 0 3 = kind_prefix)
      entries
  in
  comm_ran "PK:" && comm_ran "XF:" && comm_ran "UP:"
  && List.for_all
       (fun (ph, sub) ->
         let g =
           List.filter
             (fun (e : Exec.entry) ->
               e.Exec.e_phase = ph && e.Exec.e_substep = sub)
             entries
         in
         let phase_spec =
           if ph = `Early then spec.Spec.early else spec.Spec.final
         in
         let by_task = Array.make (Array.length phase_spec.Spec.tasks) None in
         let dup = ref false in
         List.iter
           (fun (e : Exec.entry) ->
             if by_task.(e.Exec.e_task) <> None then dup := true;
             by_task.(e.Exec.e_task) <- Some e)
           g;
         (not !dup)
         && Array.for_all Option.is_some by_task
         && Array.for_all
              (fun (tk : Spec.task) ->
                match by_task.(tk.Spec.index) with
                | None -> false
                | Some e ->
                    List.for_all
                      (fun p ->
                        match by_task.(p) with
                        | None -> false
                        | Some pe -> pe.Exec.e_finish_seq < e.Exec.e_start_seq)
                      tk.Spec.preds)
              phase_spec.Spec.tasks)
       [ (`Early, 0); (`Early, 1); (`Early, 2); (`Final, 3) ]

let prop_overlap_schedule_sound =
  QCheck.Test.make
    ~name:"overlapped comm programs: exactly-once + happens-before" ~count:8
    QCheck.(
      triple
        (oneofl [ 1; 2; 4 ])
        (oneofl [ Exec.Barrier; Exec.Async; Exec.Steal ])
        (oneofl [ 1; 2 ]))
    overlap_schedule_sound

(* --- engine envelope ---------------------------------------------------- *)

let test_handles () =
  let state0 = { Fields.h = [||]; u = [||]; tracers = [||] } in
  Alcotest.(check bool) "rk4" true (Engine.handles Config.default state0);
  Alcotest.(check bool) "ssprk3" false
    (Engine.handles { Config.default with Config.integrator = Config.Ssprk3 }
       state0);
  Alcotest.(check bool) "visc4" false
    (Engine.handles { Config.default with Config.visc4 = 1e5 } state0);
  Alcotest.(check bool) "tracers" false
    (Engine.handles Config.default { state0 with Fields.tracers = [| [||] |] })

let test_fallback_tracers () =
  let m = Lazy.force ico in
  let bell = Williamson.cosine_bell m in
  let reference = Model.init ~tracers:[| bell |] Williamson.Tc2 m in
  Model.run reference ~steps:2;
  Pool.with_pool ~n_domains:2 (fun pool ->
      let eng = Engine.create ~pool () in
      let model =
        Model.init
          ~engine:(Engine.timestep_engine eng)
          ~tracers:[| bell |] Williamson.Tc2 m
      in
      Model.run model ~steps:2;
      check_bit_identical "fallback" reference.Model.state model.Model.state;
      Alcotest.(check bool) "tracer bit-identical" true
        (bits_equal reference.Model.state.Fields.tracers.(0)
           model.Model.state.Fields.tracers.(0)))

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_create_validates () =
  expect_invalid "device plan without pool" (fun () ->
      Engine.create ~plan:Mpas_hybrid.Plan.pattern_driven ());
  expect_invalid "split out of range" (fun () -> Engine.create ~split:1.5 ());
  expect_invalid "zero host lanes" (fun () -> Engine.create ~host_lanes:0 ());
  Pool.with_pool ~n_domains:2 (fun pool ->
      expect_invalid "host_lanes beyond pool" (fun () ->
          Engine.create ~pool ~host_lanes:3 ());
      expect_invalid "no device lane left" (fun () ->
          Engine.create ~pool ~plan:Mpas_hybrid.Plan.pattern_driven
            ~host_lanes:2 ());
      (* Sequential mode never needs a device lane. *)
      ignore
        (Engine.create ~mode:Exec.Sequential
           ~plan:Mpas_hybrid.Plan.pattern_driven ()))

(* --- tuner -------------------------------------------------------------- *)

let test_tuner () =
  let m = Lazy.force hex in
  let state = hex_state m in
  let b = Array.make m.Mesh.n_cells 0. in
  Pool.with_pool ~n_domains:2 (fun pool ->
      (match
         Tune.best_split ~candidates:[ 0.25; 0.75 ] ~steps:1 ~pool
           ~plan:Mpas_hybrid.Plan.pattern_driven Config.default m ~b ~dt:5.
           state
       with
      | Some (split, secs) ->
          Alcotest.(check bool) "split from candidates" true
            (List.mem split [ 0.25; 0.75 ]);
          Alcotest.(check bool) "positive time" true (secs > 0.)
      | None -> (* the unsplit baseline won — a legal verdict *) ());
      (* Injected timers pin down the baseline comparison: every split
         slower than no-split must yield None (the old tuner returned
         the least-bad split here), and a genuinely faster split must
         be returned with its measured time. *)
      let tune time_fn =
        Tune.best_split ~candidates:[ 0.25; 0.75 ] ~steps:1 ~time_fn ~pool
          ~plan:Mpas_hybrid.Plan.pattern_driven Config.default m ~b ~dt:5.
          state
      in
      Alcotest.(check bool) "baseline wins -> None" true
        (tune (function None -> 1.0 | Some _ -> 2.0) = None);
      (match tune (function None -> 1.0 | Some f -> if f = 0.75 then 0.5 else 0.9) with
      | Some (0.75, 0.5) -> ()
      | _ -> Alcotest.fail "expected Some (0.75, 0.5)"));
  (* The tuner steps copies; the input state is untouched. *)
  let fresh = hex_state m in
  Alcotest.(check bool) "state untouched" true
    (bits_equal state.Fields.h fresh.Fields.h
    && bits_equal state.Fields.u fresh.Fields.u)

(* --- observability integration ------------------------------------------ *)

let test_observed_integration () =
  let registry = Mpas_obs.Metrics.create () in
  Pool.with_pool ~n_domains:2 (fun pool ->
      let eng = Engine.create ~pool () in
      let te = Timestep.observed ~registry (Engine.timestep_engine eng) in
      let model = mk_hex te in
      Model.run model ~steps:1);
  (* One timer update per task execution, routed through the standard
     kernel instrument: 4 tend tasks x 4 substeps, etc. *)
  let count name =
    Mpas_obs.Metrics.Timer.count (Mpas_obs.Metrics.timer ~registry name)
  in
  Alcotest.(check int) "compute_tend tasks" 16
    (count "swe.kernel.compute_tend");
  Alcotest.(check int) "diagnostics tasks" 44
    (count "swe.kernel.compute_solve_diagnostics");
  Alcotest.(check int) "reconstruct tasks" 2
    (count "swe.kernel.mpas_reconstruct")

let test_trace_spans () =
  let sink = Mpas_obs.Trace.memory () in
  Mpas_obs.Trace.set_sink sink;
  Fun.protect
    ~finally:(fun () -> Mpas_obs.Trace.set_sink Mpas_obs.Trace.noop)
    (fun () ->
      Pool.with_pool ~n_domains:2 (fun pool ->
          let eng = Engine.create ~pool () in
          let model = mk_hex (Engine.timestep_engine eng) in
          Model.run model ~steps:1));
  let tasks =
    List.filter
      (fun (e : Mpas_obs.Trace.event) -> e.Mpas_obs.Trace.ev_cat = "task")
      (Mpas_obs.Trace.events sink)
  in
  (* 19 early tasks x 3 substeps + 20 final tasks. *)
  Alcotest.(check int) "one span per task execution" 77 (List.length tasks)

(* --- steal-mode sleepers/wakeup path ------------------------------------ *)

(* Pin the stingy-wakeup path of the Steal executor: with every root
   task artificially slow and all successors instant, the non-root
   lanes of a 4-lane pool drain their deques, fail their steal sweeps
   and block on the sleepers counter while the roots run; the retire
   broadcasts must wake them and the phase must terminate with every
   task exactly once and every edge witnessed by the sequence counter.
   (The interleaving explorer proves the protocol model exhaustively;
   this drives the real deques and counter.) *)
let test_steal_wakeup_sleepers () =
  let spec = Spec.build ~recon:true () in
  let phase = spec.Spec.early in
  let n = Array.length phase.Spec.tasks in
  let bodies =
    Array.init n (fun i ->
        if phase.Spec.tasks.(i).Spec.preds = [] then fun () ->
          Unix.sleepf 0.02
        else fun () -> ())
  in
  let log : Exec.log = ref [] in
  Pool.with_pool ~n_domains:4 (fun pool ->
      Exec.run_phase ~log ~mode:Exec.Steal ~pool:(Some pool) ~host_lanes:4
        ~phase:`Early ~substep:0
        ~instrument:(fun _ body -> body ())
        phase bodies);
  Alcotest.(check int) "every task retired exactly once" n (List.length !log);
  let entry = Array.make n None in
  List.iter
    (fun (e : Exec.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "task %d logged once" e.Exec.e_task)
        true
        (entry.(e.Exec.e_task) = None);
      entry.(e.Exec.e_task) <- Some e)
    !log;
  Array.iter
    (fun (t : Spec.task) ->
      List.iter
        (fun p ->
          match (entry.(p), entry.(t.Spec.index)) with
          | Some s, Some d ->
              Alcotest.(check bool)
                (Printf.sprintf "edge %d -> %d respected" p t.Spec.index)
                true
                (s.Exec.e_finish_seq < d.Exec.e_start_seq)
          | _ -> Alcotest.fail "missing log entry")
        t.Spec.preds)
    phase.Spec.tasks

(* Run QCheck properties under an explicit seed, printed on failure so
   shrunk counterexamples reproduce: set QCHECK_SEED to replay a
   failing run. *)
let qcheck_with_seed tests =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> int_of_string s
    | None -> truncate (Unix.gettimeofday () *. 1000.)
  in
  List.map
    (fun t ->
      match t with
      | QCheck2.Test.Test cell ->
          let name = QCheck.Test.get_name cell in
          Alcotest.test_case name `Quick (fun () ->
              try
                QCheck.Test.check_cell_exn
                  ~rand:(Random.State.make [| seed |])
                  cell
              with e ->
                Printf.eprintf
                  "\n[qcheck] %s failed; reproduce with QCHECK_SEED=%d\n%!" name
                  seed;
                raise e))
    tests

let () =
  Alcotest.run "runtime"
    [
      ( "spec",
        [
          Alcotest.test_case "well formed" `Quick test_spec_well_formed;
          Alcotest.test_case "task counts" `Quick test_spec_counts;
          Alcotest.test_case "hazard edges" `Quick test_spec_hazard_edges;
          Alcotest.test_case "part ranges tile" `Quick test_part_ranges_tile;
          Alcotest.test_case "fused well formed" `Quick
            test_spec_fused_well_formed;
          Alcotest.test_case "fused task counts" `Quick test_spec_fused_counts;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "ico async" `Quick test_ico_async_matches;
          Alcotest.test_case "ico split" `Quick test_ico_split_matches;
          Alcotest.test_case "hex barrier" `Quick test_hex_barrier_matches;
          Alcotest.test_case "hex split" `Quick test_hex_split_matches;
          Alcotest.test_case "sequential mode" `Quick
            test_sequential_mode_matches;
          Alcotest.test_case "pool sizes 1/2/4" `Quick
            test_determinism_across_pool_sizes;
          Alcotest.test_case "split sweep" `Quick test_split_sweep_matches;
          Alcotest.test_case "ico fused+steal+tiled" `Quick
            test_ico_fused_steal_tiled_matches;
          Alcotest.test_case "hex fused+steal+tiled" `Quick
            test_hex_fused_steal_tiled_matches;
          Alcotest.test_case "ico fused split steal" `Quick
            test_ico_fused_split_steal_matches;
        ] );
      ( "engine",
        [
          Alcotest.test_case "handles" `Quick test_handles;
          Alcotest.test_case "fallback (tracers)" `Quick test_fallback_tracers;
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "tuner" `Quick test_tuner;
        ] );
      ( "observability",
        [
          Alcotest.test_case "observed timers" `Quick test_observed_integration;
          Alcotest.test_case "trace spans" `Quick test_trace_spans;
        ] );
      ( "steal",
        [
          Alcotest.test_case "sleepers woken, exactly-once" `Quick
            test_steal_wakeup_sleepers;
        ] );
      ( "properties",
        qcheck_with_seed [ prop_schedule_sound; prop_overlap_schedule_sound ] );
    ]
