open Mpas_numerics
open Mpas_mesh
open Mpas_swe
open Mpas_par
open Mpas_runtime
open Mpas_ensemble
open Ensemble

let ico = lazy (Build.icosahedral ~level:2 ~lloyd_iters:2 ())
let hex = lazy (Planar_hex.create ~f:1e-4 ~nx:8 ~ny:6 ~dc:1000. ())

(* A geostrophically balanced f-plane state (the hex family has no
   Williamson case). *)
let hex_state (m : Mesh.t) =
  let f = 1e-4 and g = Config.default.Config.gravity in
  let flow = Vec3.make 5. 2. 0. in
  let slope = Vec3.scale (-.(f /. g)) (Vec3.cross Vec3.ez flow) in
  let h =
    Array.init m.Mesh.n_cells (fun c ->
        1000. +. Vec3.dot slope m.Mesh.x_cell.(c))
  in
  let u =
    Array.init m.Mesh.n_edges (fun e -> Vec3.dot flow m.Mesh.edge_normal.(e))
  in
  { Fields.h; u; tracers = [||] }

let hex_dt = 5.

(* Bitwise equality: both trajectories must follow the identical IEEE
   operation sequence, so plain structural equality is the check. *)
let check_bits name (a : float array) (b : float array) =
  Alcotest.(check bool) name true (a = b)

let solo_steps ?(config = Config.default) ~dt ~b mesh state n =
  let model =
    Model.of_state ~config ~engine:Timestep.refactored ~dt ~b mesh state
  in
  Model.run model ~steps:n;
  model.Model.state

(* The perturbed-config mix used by the batched-vs-solo comparisons. *)
let varied_configs =
  [
    Config.default;
    { Config.default with h_adv_order = Config.Second };
    { Config.default with pv_average = Config.Edge_only };
    {
      Config.default with
      visc2 = 1e3;
      bottom_drag = 1e-6;
      apvm_factor = 0.25;
    };
  ]

(* --- bit identity ------------------------------------------------------- *)

let test_bit_identity_ico () =
  let m = Lazy.force ico in
  let e = create ~capacity:8 ~block:3 m in
  let cases =
    [
      (Williamson.Tc5, List.nth varied_configs 0);
      (Williamson.Tc2, List.nth varied_configs 1);
      (Williamson.Tc6, List.nth varied_configs 2);
      (Williamson.Tc5, List.nth varied_configs 3);
      (Williamson.Tc2_rotated, Config.default);
    ]
  in
  let ids =
    List.map (fun (case, config) -> submit_case e ~config case) cases
  in
  step e ~n:10 ();
  List.iter2
    (fun id (case, config) ->
      let got = state e id in
      let solo =
        Model.init ~config ~engine:Timestep.refactored case m
      in
      Model.run solo ~steps:10;
      let name = Williamson.case_name case in
      check_bits (name ^ " h") solo.Model.state.Fields.h got.Fields.h;
      check_bits (name ^ " u") solo.Model.state.Fields.u got.Fields.u;
      Alcotest.(check int) (name ^ " steps") 10 (query e id).i_steps)
    ids cases

let test_bit_identity_hex () =
  let m = Lazy.force hex in
  let e = create ~capacity:4 ~block:2 m in
  let b = Array.make m.Mesh.n_cells 0. in
  let st = hex_state m in
  let ids =
    List.map
      (fun config -> submit e ~config ~dt:hex_dt ~b st)
      varied_configs
  in
  step e ~n:10 ();
  List.iter2
    (fun id config ->
      let got = state e id in
      let want = solo_steps ~config ~dt:hex_dt ~b m st 10 in
      check_bits "hex h" want.Fields.h got.Fields.h;
      check_bits "hex u" want.Fields.u got.Fields.u)
    ids varied_configs

(* Every executor mode must produce the same bits: member blocks are
   independent, so the schedule cannot matter. *)
let test_modes_bit_identical () =
  let m = Lazy.force hex in
  let b = Array.make m.Mesh.n_cells 0. in
  let st = hex_state m in
  let want = solo_steps ~dt:hex_dt ~b m st 5 in
  let run_mode mode pool_size =
    let with_engine pool =
      let e = create ~capacity:8 ~block:2 ~mode ?pool m in
      let id = submit e ~dt:hex_dt ~b st in
      (* Fill other slots so several blocks carry work. *)
      List.iter
        (fun config -> ignore (submit e ~config ~dt:hex_dt ~b st))
        varied_configs;
      step e ~n:5 ();
      state e id
    in
    if pool_size = 0 then with_engine None
    else
      Pool.with_pool ~n_domains:pool_size (fun p -> with_engine (Some p))
  in
  List.iter
    (fun (name, mode, pool_size) ->
      let got = run_mode mode pool_size in
      check_bits (name ^ " h") want.Fields.h got.Fields.h;
      check_bits (name ^ " u") want.Fields.u got.Fields.u)
    [
      ("sequential", Exec.Sequential, 0);
      ("barrier", Exec.Barrier, 2);
      ("async", Exec.Async, 4);
      ("steal", Exec.Steal, 4);
    ]

(* --- failure isolation -------------------------------------------------- *)

let test_quarantine () =
  let m = Lazy.force hex in
  let e = create ~capacity:4 ~block:2 m in
  let b = Array.make m.Mesh.n_cells 0. in
  let st = hex_state m in
  let victim = submit e ~dt:hex_dt ~b st in
  let bystander =
    submit e ~config:(List.nth varied_configs 3) ~dt:hex_dt ~b st
  in
  (* Poison the victim: NaN thickness in one cell. *)
  let poisoned = Fields.copy_state st in
  poisoned.Fields.h.(0) <- Float.nan;
  set_state e victim poisoned;
  step e ~n:3 ();
  (match (query e victim).i_status with
  | Failed reason ->
      Alcotest.(check bool)
        "reason names the field" true
        (String.length reason > 0)
  | s -> Alcotest.failf "victim should be failed, is %s" (status_name s));
  (* The batch keeps going: the bystander is running, stepped, and
     bit-identical to its solo reference. *)
  Alcotest.(check string)
    "bystander running" "running"
    (status_name (query e bystander).i_status);
  Alcotest.(check int) "bystander steps" 3 (query e bystander).i_steps;
  let want =
    solo_steps ~config:(List.nth varied_configs 3) ~dt:hex_dt ~b m st 3
  in
  let got = state e bystander in
  check_bits "bystander h" want.Fields.h got.Fields.h;
  check_bits "bystander u" want.Fields.u got.Fields.u;
  (* The victim stops consuming steps after quarantine. *)
  Alcotest.(check int) "victim stopped at failure" 1 (query e victim).i_steps

let test_member_isolation_qcheck () =
  let m = Lazy.force hex in
  let b = Array.make m.Mesh.n_cells 0. in
  let st = hex_state m in
  let configs = Array.of_list varied_configs in
  let prop (i, j, seed) =
    let i = i mod 3 and j = j mod 3 in
    QCheck.assume (i <> j);
    let e = create ~capacity:4 ~block:2 m in
    let ids =
      Array.init 3 (fun k -> submit e ~config:configs.(k) ~dt:hex_dt ~b st)
    in
    (* Arbitrary garbage into member i — including values that blow up. *)
    let rng = Random.State.make [| seed |] in
    let garbage =
      {
        Fields.h =
          Array.init m.Mesh.n_cells (fun _ ->
              Random.State.float rng 4000. -. 1000.);
        u = Array.init m.Mesh.n_edges (fun _ -> Random.State.float rng 200.);
        tracers = [||];
      }
    in
    set_state e ids.(i) garbage;
    step e ~n:2 ();
    (* Member j's trajectory must be exactly the solo one, no matter
       what member i did. *)
    let want = solo_steps ~config:configs.(j) ~dt:hex_dt ~b m st 2 in
    let got = state e ids.(j) in
    want.Fields.h = got.Fields.h && want.Fields.u = got.Fields.u
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"member isolation" ~count:15
       QCheck.(triple small_nat small_nat small_nat)
       prop)

(* --- serving API -------------------------------------------------------- *)

let test_target_done () =
  let m = Lazy.force hex in
  let e = create ~capacity:2 m in
  let b = Array.make m.Mesh.n_cells 0. in
  let id = submit e ~target:3 ~dt:hex_dt ~b (hex_state m) in
  step e ~n:5 ();
  Alcotest.(check string) "done" "done" (status_name (query e id).i_status);
  Alcotest.(check int) "stopped at target" 3 (query e id).i_steps

let test_evict_and_reuse () =
  let m = Lazy.force hex in
  let e = create ~capacity:2 m in
  let b = Array.make m.Mesh.n_cells 0. in
  let st = hex_state m in
  let a = submit e ~dt:hex_dt ~b st in
  let b_id = submit e ~dt:hex_dt ~b st in
  Alcotest.check_raises "full"
    (Invalid_argument
       "Ensemble.submit: batch full (got 2 members, expected < 2)")
    (fun () -> ignore (submit e ~dt:hex_dt ~b st));
  evict e a;
  let c = submit e ~dt:hex_dt ~b st in
  Alcotest.(check bool) "fresh id" true (c <> a && c <> b_id);
  Alcotest.(check int) "two live members" 2 (List.length (members e));
  Alcotest.check_raises "evicted id is gone" Not_found (fun () ->
      ignore (query e a))

let test_submit_validation () =
  let m = Lazy.force hex in
  let e = create ~capacity:2 m in
  let b = Array.make m.Mesh.n_cells 0. in
  let st = hex_state m in
  let nc = m.Mesh.n_cells and ne = m.Mesh.n_edges in
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect
    (Printf.sprintf "Ensemble.submit: state.h cells (got 5, expected %d)" nc)
    (fun () ->
      ignore
        (submit e ~dt:hex_dt ~b
           { st with Fields.h = Array.make 5 1000. }));
  expect
    (Printf.sprintf "Ensemble.submit: state.u edges (got 7, expected %d)" ne)
    (fun () ->
      ignore (submit e ~dt:hex_dt ~b { st with Fields.u = Array.make 7 0. }));
  expect
    (Printf.sprintf "Ensemble.submit: b cells (got 1, expected %d)" nc)
    (fun () -> ignore (submit e ~dt:hex_dt ~b:[| 0. |] st));
  expect
    (Printf.sprintf "Ensemble.submit: f_vertex vertices (got 2, expected %d)"
       m.Mesh.n_vertices)
    (fun () -> ignore (submit e ~f_vertex:[| 0.; 0. |] ~dt:hex_dt ~b st));
  expect "Ensemble.submit: tracer rows (got 1, expected 0)" (fun () ->
      ignore
        (submit e ~dt:hex_dt ~b
           { st with Fields.tracers = [| Array.make nc 1. |] }));
  expect "Ensemble.submit: integrator unsupported (got ssprk3, expected rk4)"
    (fun () ->
      ignore
        (submit e
           ~config:{ Config.default with integrator = Config.Ssprk3 }
           ~dt:hex_dt ~b st));
  expect
    "Ensemble.submit: del-4 dissipation unsupported (got visc4 = 1e+10, \
     expected 0)" (fun () ->
      ignore
        (submit e
           ~config:{ Config.default with visc4 = 1e10 }
           ~dt:hex_dt ~b st))

(* --- spec structure ----------------------------------------------------- *)

let test_spec_well_formed () =
  let m = Lazy.force hex in
  List.iter
    (fun (capacity, block) ->
      let e = create ~capacity ~block m in
      let sp = spec e in
      Alcotest.(check (list string))
        (Printf.sprintf "capacity %d block %d" capacity block)
        [] (Spec.check sp);
      (* One task per (block, kernel); blocks share no slots. *)
      let blocks = (capacity + block - 1) / block in
      Alcotest.(check bool)
        "early task count" true
        (Array.length sp.Spec.early.Spec.tasks mod blocks = 0))
    [ (1, 1); (8, 3); (64, 8) ]

let test_task_accesses_block_disjoint () =
  let m = Lazy.force hex in
  let e = create ~capacity:8 ~block:4 m in
  let sp = spec e in
  let nk2 = Array.length sp.Spec.early.Spec.tasks / 2 in
  let slots_of task =
    List.map (fun a -> a.a_slot) (task_accesses e `Early ~task)
  in
  let block0 = List.concat_map slots_of (List.init nk2 (fun i -> i)) in
  let block1 = List.concat_map slots_of (List.init nk2 (fun i -> nk2 + i)) in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " not shared") false (List.mem s block1))
    block0

(* --- observability ------------------------------------------------------ *)

let test_tenant_metrics_and_merge () =
  let open Mpas_obs in
  let registry = Metrics.create () in
  let m = Lazy.force hex in
  let e = create ~registry ~capacity:4 m in
  let b = Array.make m.Mesh.n_cells 0. in
  let st = hex_state m in
  ignore (submit e ~tenant:"acme" ~dt:hex_dt ~b st);
  ignore (submit e ~tenant:"acme" ~dt:hex_dt ~b st);
  ignore (submit e ~tenant:"globex" ~dt:hex_dt ~b st);
  step e ~n:3 ();
  let snap = Metrics.snapshot registry in
  Alcotest.(check (option int))
    "acme members stepped" (Some 6)
    (Metrics.find_counter snap "ensemble.members_stepped{tenant=acme}");
  Alcotest.(check (option int))
    "globex members stepped" (Some 3)
    (Metrics.find_counter snap "ensemble.members_stepped{tenant=globex}");
  Alcotest.(check (option int))
    "batch steps" (Some 3)
    (Metrics.find_counter snap "ensemble.batch_steps");
  (match Metrics.find_timer snap "ensemble.step{tenant=globex}" with
  | Some ts -> Alcotest.(check int) "globex step timer count" 3 ts.t_count
  | None -> Alcotest.fail "missing per-tenant step timer");
  (* Merging snapshots from two engine processes: same tenant adds,
     distinct tenants stay distinct. *)
  let other = Metrics.create () in
  Metrics.Counter.add
    (Metrics.counter ~registry:other ~labels:[ ("tenant", "acme") ]
       "ensemble.members_stepped")
    10;
  Metrics.Counter.add
    (Metrics.counter ~registry:other ~labels:[ ("tenant", "initech") ]
       "ensemble.members_stepped")
    7;
  let merged = Metrics.merge snap (Metrics.snapshot other) in
  Alcotest.(check (option int))
    "merge adds same tenant" (Some 16)
    (Metrics.find_counter merged "ensemble.members_stepped{tenant=acme}");
  Alcotest.(check (option int))
    "merge keeps distinct tenant" (Some 7)
    (Metrics.find_counter merged "ensemble.members_stepped{tenant=initech}");
  Alcotest.(check (option int))
    "unlabeled untouched" (Some 3)
    (Metrics.find_counter merged "ensemble.batch_steps")

let test_labeled_name () =
  let open Mpas_obs in
  Alcotest.(check string)
    "keys sorted" "x{a=1,b=2}"
    (Metrics.labeled_name "x" [ ("b", "2"); ("a", "1") ]);
  Alcotest.(check string) "no labels" "x" (Metrics.labeled_name "x" []);
  let name, labels = Metrics.parse_labeled "x{a=1,b=2}" in
  Alcotest.(check string) "parse base" "x" name;
  Alcotest.(check (list (pair string string)))
    "parse labels"
    [ ("a", "1"); ("b", "2") ]
    labels;
  Alcotest.check_raises "structural char rejected"
    (Invalid_argument "Metrics.labeled_name: label value \"a,b\" contains ','")
    (fun () -> ignore (Metrics.labeled_name "x" [ ("k", "a,b") ]))

let () =
  Alcotest.run "ensemble"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "icosahedral batch vs solo" `Quick
            test_bit_identity_ico;
          Alcotest.test_case "planar-hex batch vs solo" `Quick
            test_bit_identity_hex;
          Alcotest.test_case "all executor modes" `Quick
            test_modes_bit_identical;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "NaN quarantine" `Quick test_quarantine;
          Alcotest.test_case "QCheck member isolation" `Quick
            test_member_isolation_qcheck;
        ] );
      ( "serving",
        [
          Alcotest.test_case "target -> done" `Quick test_target_done;
          Alcotest.test_case "evict and reuse" `Quick test_evict_and_reuse;
          Alcotest.test_case "submit validation messages" `Quick
            test_submit_validation;
        ] );
      ( "spec",
        [
          Alcotest.test_case "well-formed member-axis programs" `Quick
            test_spec_well_formed;
          Alcotest.test_case "blocks share no slots" `Quick
            test_task_accesses_block_disjoint;
        ] );
      ( "obs",
        [
          Alcotest.test_case "per-tenant counters and merge" `Quick
            test_tenant_metrics_and_merge;
          Alcotest.test_case "labeled names" `Quick test_labeled_name;
        ] );
    ]
