open Mpas_numerics
open Mpas_mesh

(* Shared fixtures: building meshes is the expensive part, do it once. *)
let ico3 = lazy (Build.icosahedral ~level:3 ())
let ico3_relaxed = lazy (Build.icosahedral ~level:3 ~lloyd_iters:4 ())
let hex = lazy (Planar_hex.create ~nx:8 ~ny:6 ~dc:1000. ())

let check_float = Alcotest.(check (float 1e-9))

(* --- icosphere ------------------------------------------------------------ *)

let test_icosphere_counts () =
  List.iter
    (fun level ->
      let t = Icosphere.create ~level in
      Alcotest.(check int)
        "points" (Icosphere.points_at_level level)
        (Array.length t.Icosphere.points);
      Alcotest.(check int)
        "triangles"
        (20 * (1 lsl (2 * level)))
        (Array.length t.Icosphere.triangles))
    [ 0; 1; 2; 3 ]

let test_icosphere_unit_points () =
  let t = Icosphere.create ~level:2 in
  Array.iter
    (fun p -> check_float "unit" 1. (Vec3.norm p))
    t.Icosphere.points

let test_icosphere_orientation () =
  let t = Icosphere.create ~level:2 in
  Array.iter
    (fun (a, b, c) ->
      Alcotest.(check bool)
        "ccw" true
        (Vec3.triple t.Icosphere.points.(a) t.Icosphere.points.(b)
           t.Icosphere.points.(c)
        > 0.))
    t.Icosphere.triangles

let test_lloyd_improves_centroidality () =
  let t = Icosphere.create ~level:3 in
  let before = Icosphere.centroid_offset t in
  let after = Icosphere.centroid_offset (Icosphere.relax ~iters:3 t) in
  Alcotest.(check bool)
    (Format.sprintf "offset shrinks (%g -> %g)" before after)
    true (after < before /. 2.)

let test_paper_mesh_sizes () =
  (* Table III: the paper's four meshes are levels 6..9. *)
  Alcotest.(check (list int))
    "Table III cell counts"
    [ 40962; 163842; 655362; 2621442 ]
    (List.map Icosphere.points_at_level [ 6; 7; 8; 9 ])

(* --- spherical mesh -------------------------------------------------------- *)

let test_mesh_invariants () =
  Alcotest.(check (list string)) "no violations" []
    (Mesh.check ~area_tol:1e-3 (Lazy.force ico3))

let test_mesh_invariants_relaxed () =
  Alcotest.(check (list string)) "no violations" []
    (Mesh.check ~area_tol:1e-3 (Lazy.force ico3_relaxed))

let test_mesh_counts () =
  let m = Lazy.force ico3 in
  Alcotest.(check int) "cells" 642 m.n_cells;
  Alcotest.(check int) "edges" 1920 m.n_edges;
  Alcotest.(check int) "vertices" 1280 m.n_vertices;
  Alcotest.(check int) "pentagons" 12
    (Array.to_seq m.n_edges_on_cell
    |> Seq.filter (fun n -> n = 5)
    |> Seq.length)

let test_cell_areas_positive () =
  let m = Lazy.force ico3 in
  Array.iter
    (fun a -> Alcotest.(check bool) "positive" true (a > 0.))
    m.area_cell;
  Array.iter
    (fun a -> Alcotest.(check bool) "positive" true (a > 0.))
    m.area_triangle

let test_edge_orthogonality () =
  (* On a Voronoi/Delaunay pair the edge normal and tangent must be
     orthogonal unit vectors with t = k x n. *)
  let m = Lazy.force ico3 in
  for e = 0 to m.n_edges - 1 do
    check_float "normal unit" 1. (Vec3.norm m.edge_normal.(e));
    check_float "orthogonal" 0. (Vec3.dot m.edge_normal.(e) m.edge_tangent.(e));
    let k = m.x_edge.(e) in
    Alcotest.(check bool)
      "t = k x n" true
      (Vec3.approx_equal ~eps:1e-12
         (Vec3.cross k m.edge_normal.(e))
         m.edge_tangent.(e))
  done

let test_vertices_follow_tangent () =
  let m = Lazy.force ico3 in
  for e = 0 to m.n_edges - 1 do
    let v1 = m.vertices_on_edge.(e).(0) and v2 = m.vertices_on_edge.(e).(1) in
    let d = Vec3.sub m.x_vertex.(v2) m.x_vertex.(v1) in
    Alcotest.(check bool)
      "tangent order" true
      (Vec3.dot d m.edge_tangent.(e) > 0.)
  done

let test_coriolis () =
  let m = Lazy.force ico3 in
  for c = 0 to m.n_cells - 1 do
    Alcotest.(check (float 1e-12))
      "f = 2 omega sin(lat)"
      (2. *. Build.earth_omega *. sin m.lat_cell.(c))
      m.f_cell.(c)
  done

let solid_body_u (m : Mesh.t) om =
  Array.init m.n_edges (fun e ->
      let vel = Vec3.scale om (Vec3.cross Vec3.ez m.x_edge.(e)) in
      Vec3.dot vel m.edge_normal.(e))

let test_solid_body_divergence_free () =
  let m = Lazy.force ico3 in
  let u = solid_body_u m 10. in
  for c = 0 to m.n_cells - 1 do
    let acc = ref 0. in
    for j = 0 to m.n_edges_on_cell.(c) - 1 do
      let e = m.edges_on_cell.(c).(j) in
      acc := !acc +. (m.edge_sign_on_cell.(c).(j) *. u.(e) *. m.dv_edge.(e))
    done;
    Alcotest.(check (float 1e-6)) "div = 0" 0. (!acc /. m.area_cell.(c))
  done

let test_solid_body_vorticity () =
  let m = Lazy.force ico3 in
  let om = 10. in
  let u = solid_body_u m om in
  let radius = match m.geometry with Mesh.Sphere r -> r | _ -> assert false in
  for v = 0 to m.n_vertices - 1 do
    let acc = ref 0. in
    for k = 0 to 2 do
      let e = m.edges_on_vertex.(v).(k) in
      acc := !acc +. (m.edge_sign_on_vertex.(v).(k) *. u.(e) *. m.dc_edge.(e))
    done;
    let zeta = !acc /. m.area_triangle.(v) in
    let exact = 2. *. om *. sin m.lat_vertex.(v) /. radius in
    Alcotest.(check bool)
      "vorticity within 5% of scale" true
      (Float.abs (zeta -. exact) < 0.05 *. (2. *. om /. radius))
  done

let test_trisk_antisymmetry () =
  let m = Lazy.force ico3 in
  let find_w e e' =
    let rec loop i =
      if i >= Array.length m.edges_on_edge.(e) then None
      else if m.edges_on_edge.(e).(i) = e' then Some m.weights_on_edge.(e).(i)
      else loop (i + 1)
    in
    loop 0
  in
  for e = 0 to m.n_edges - 1 do
    Array.iteri
      (fun i e' ->
        match find_w e' e with
        | None -> Alcotest.fail "weights not mutual"
        | Some w' ->
            let a = m.dc_edge.(e) *. m.dv_edge.(e)
            and a' = m.dc_edge.(e') *. m.dv_edge.(e') in
            Alcotest.(check (float 1e-10))
              "A_e w + A_e' w' = 0" 0.
              (((a *. m.weights_on_edge.(e).(i)) +. (a' *. w')) /. a))
      m.edges_on_edge.(e)
  done

let test_tangential_reconstruction_accuracy () =
  (* First-order accurate on the relaxed (SCVT-like) grid. *)
  let m = Lazy.force ico3_relaxed in
  let om = 10. in
  let u = solid_body_u m om in
  let errs =
    Array.init m.n_edges (fun e ->
        let acc = ref 0. in
        Array.iteri
          (fun i e' -> acc := !acc +. (m.weights_on_edge.(e).(i) *. u.(e')))
          m.edges_on_edge.(e);
        let vel = Vec3.scale om (Vec3.cross Vec3.ez m.x_edge.(e)) in
        Float.abs (!acc -. Vec3.dot vel m.edge_tangent.(e)))
  in
  Alcotest.(check bool)
    (Format.sprintf "mean err %g < 2%% of scale" (Stats.mean errs))
    true
    (Stats.mean errs < 0.02 *. om)

let test_with_boundary_edges () =
  let m = Lazy.force ico3 in
  let m' = Mesh.with_boundary_edges m (fun e -> e mod 7 = 0) in
  Alcotest.(check bool) "original untouched" false m.boundary_edge.(0);
  Alcotest.(check bool) "mask set" true m'.boundary_edge.(0);
  Alcotest.(check bool) "mask clear" false m'.boundary_edge.(1)

let test_edge_index_on_cell () =
  let m = Lazy.force ico3 in
  let c = 37 in
  let e = m.edges_on_cell.(c).(2) in
  Alcotest.(check int) "found" 2 (Mesh.edge_index_on_cell m ~c ~e);
  Alcotest.(check bool)
    "missing raises" true
    (let foreign =
       (* An edge of a non-adjacent cell. *)
       m.edges_on_cell.((c + m.n_cells / 2) mod m.n_cells).(0)
     in
     match Mesh.edge_index_on_cell m ~c ~e:foreign with
     | _ -> false
     | exception Not_found -> true)

let test_fold_edges_on_cell () =
  let m = Lazy.force ico3 in
  let n = Mesh.fold_edges_on_cell m 5 (fun acc _ -> acc + 1) 0 in
  Alcotest.(check int) "count" m.n_edges_on_cell.(5) n

(* --- planar hex ------------------------------------------------------------ *)

let test_hex_invariants () =
  Alcotest.(check (list string)) "no violations" []
    (Mesh.check (Lazy.force hex))

let test_hex_counts () =
  let m = Lazy.force hex in
  Alcotest.(check int) "cells" 48 m.n_cells;
  Alcotest.(check int) "edges" 144 m.n_edges;
  Alcotest.(check int) "vertices" 96 m.n_vertices

let test_hex_geometry_exact () =
  let m = Lazy.force hex in
  let dc = 1000. in
  Array.iter (fun d -> check_float "dc" dc d) m.dc_edge;
  Array.iter (fun d -> check_float "dv" (dc /. sqrt 3.) d) m.dv_edge;
  Array.iter
    (fun a -> check_float "hex area" (sqrt 3. /. 2. *. dc *. dc) a)
    m.area_cell

let test_hex_uniform_flow_exact () =
  (* On the regular hex mesh the TRiSK reconstruction of a uniform flow
     is exact, not just consistent. *)
  let m = Lazy.force hex in
  let flow = Vec3.make 3.7 (-1.2) 0. in
  let u = Array.init m.n_edges (fun e -> Vec3.dot flow m.edge_normal.(e)) in
  for e = 0 to m.n_edges - 1 do
    let acc = ref 0. in
    Array.iteri
      (fun i e' -> acc := !acc +. (m.weights_on_edge.(e).(i) *. u.(e')))
      m.edges_on_edge.(e);
    Alcotest.(check (float 1e-10))
      "tangential exact"
      (Vec3.dot flow m.edge_tangent.(e))
      !acc
  done

let test_hex_rejects_bad_args () =
  Alcotest.(check bool)
    "small nx raises" true
    (match Planar_hex.create ~nx:2 ~ny:5 ~dc:1. () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "bad dc raises" true
    (match Planar_hex.create ~nx:4 ~ny:4 ~dc:0. () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- multiresolution (variable density) ------------------------------------ *)

let test_variable_resolution_mesh () =
  (* A density bump must locally shrink the cells while keeping every
     structural invariant; with fixed topology only gentle contrasts
     are reachable (DESIGN.md), so the test asserts direction and a
     modest ratio rather than the asymptotic density^(-1/4) law. *)
  let center = Sphere.of_lonlat 0.5 0.3 in
  let density p =
    let d = Sphere.arc_length center p in
    1. +. (15. *. exp (-.(d *. d) /. 0.3))
  in
  let m =
    Build.icosahedral ~level:3 ~lloyd_iters:80 ~density ~over_relax:1.6 ()
  in
  Alcotest.(check (list string)) "invariants hold" []
    (Mesh.check ~area_tol:1e-3 m);
  let near = ref [] and far = ref [] in
  for e = 0 to m.n_edges - 1 do
    let d = Sphere.arc_length center m.x_edge.(e) in
    if d < 0.3 then near := m.dc_edge.(e) :: !near
    else if d > 1.5 then far := m.dc_edge.(e) :: !far
  done;
  let mean l = Stats.mean (Array.of_list l) in
  let ratio = mean !far /. mean !near in
  Alcotest.(check bool)
    (Format.sprintf "refined region is finer (ratio %.2f)" ratio)
    true (ratio > 1.12)

let test_over_relaxation_accelerates () =
  let t = Icosphere.create ~level:3 in
  let plain = Icosphere.centroid_offset (Icosphere.relax ~iters:3 t) in
  let fast =
    Icosphere.centroid_offset (Icosphere.relax ~over_relax:1.6 ~iters:3 t)
  in
  Alcotest.(check bool)
    (Format.sprintf "over-relaxed closer to SCVT (%.2e vs %.2e)" fast plain)
    true (fast < plain)

(* --- packed CSR view -------------------------------------------------------- *)

let check_csr_view name (m : Mesh.t) =
  let csr = Mesh.csr m in
  Alcotest.(check (list string)) (name ^ ": no CSR violations") []
    (Mesh.csr_errors m csr);
  (* Offsets: start at 0, monotone, close over the data arrays. *)
  let check_offsets tag offsets n data_len =
    Alcotest.(check int) (tag ^ " length") (n + 1) (Array.length offsets);
    Alcotest.(check int) (tag ^ " starts at 0") 0 offsets.(0);
    for i = 0 to n - 1 do
      Alcotest.(check bool) (tag ^ " monotone") true
        (offsets.(i) <= offsets.(i + 1))
    done;
    Alcotest.(check int) (tag ^ " closes") data_len offsets.(n)
  in
  check_offsets "cell offsets" csr.cell_offsets m.n_cells
    (Array.length csr.cell_edges);
  check_offsets "eoe offsets" csr.eoe_offsets m.n_edges
    (Array.length csr.eoe_edges);
  (* Round trip: every flat entry aliases its ragged counterpart. *)
  let flat_eq_ragged tag flat offsets ragged =
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j x ->
            if flat.(offsets.(i) + j) <> x then
              Alcotest.failf "%s: %s row %d slot %d differs" name tag i j)
          row)
      ragged
  in
  flat_eq_ragged "edges_on_cell" csr.cell_edges csr.cell_offsets
    m.edges_on_cell;
  flat_eq_ragged "cells_on_cell" csr.cell_neighbors csr.cell_offsets
    m.cells_on_cell;
  flat_eq_ragged "vertices_on_cell" csr.cell_vertices csr.cell_offsets
    m.vertices_on_cell;
  flat_eq_ragged "edge_sign_on_cell" csr.cell_edge_signs csr.cell_offsets
    m.edge_sign_on_cell;
  flat_eq_ragged "edges_on_edge" csr.eoe_edges csr.eoe_offsets m.edges_on_edge;
  flat_eq_ragged "weights_on_edge" csr.eoe_weights csr.eoe_offsets
    m.weights_on_edge;
  let strided tag flat stride ragged =
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j x ->
            if flat.((stride * i) + j) <> x then
              Alcotest.failf "%s: %s row %d slot %d differs" name tag i j)
          row)
      ragged
  in
  strided "edges_on_vertex" csr.vertex_edges 3 m.edges_on_vertex;
  strided "cells_on_vertex" csr.vertex_cells 3 m.cells_on_vertex;
  strided "kite_areas_on_vertex" csr.vertex_kite_areas 3 m.kite_areas_on_vertex;
  strided "edge_sign_on_vertex" csr.vertex_edge_signs 3 m.edge_sign_on_vertex;
  strided "cells_on_edge" csr.edge_cells 2 m.cells_on_edge;
  strided "vertices_on_edge" csr.edge_vertices 2 m.vertices_on_edge;
  (* Memoized: the builders construct the view eagerly and [Mesh.csr]
     must keep returning that same value. *)
  Alcotest.(check bool) (name ^ ": memoized") true (Mesh.csr m == csr)

let test_csr_view_sphere () = check_csr_view "ico3" (Lazy.force ico3)
let test_csr_view_hex () = check_csr_view "hex" (Lazy.force hex)

let test_csr_cache_shared_by_copies () =
  let m = Lazy.force ico3 in
  let m' = Mesh.with_boundary_edges m (fun _ -> false) in
  (* Connectivity is shared, so the copy may reuse the memoized view. *)
  Alcotest.(check bool) "copy reuses the view" true (Mesh.csr m' == Mesh.csr m)

let test_csr_rebuilt_after_io () =
  (* Deserialized meshes start with an empty cache and build on first
     use; the rebuilt view must validate and match the ragged arrays. *)
  let m = Mesh_io.of_string (Mesh_io.to_string (Lazy.force hex)) in
  check_csr_view "hex after io" m

let test_csr_validate_typed () =
  let m = Lazy.force hex in
  let csr = Mesh.csr m in
  (* the typed report agrees with the rendered one *)
  Alcotest.(check (list string))
    "valid view: no typed errors" []
    (List.map Mesh.Csr.message (Mesh.Csr.validate m csr));
  (* a corrupted copy is pinned to the offending table *)
  let bad = { csr with Mesh.cell_edges = Array.copy csr.Mesh.cell_edges } in
  bad.Mesh.cell_edges.(0) <- m.Mesh.n_edges;
  let errors = Mesh.Csr.validate m bad in
  Alcotest.(check bool) "corruption detected" true (errors <> []);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        (Mesh.Csr.message e ^ " names cell_edges")
        (Some "cell_edges") (Mesh.Csr.error_table e);
      match e with
      | Mesh.Csr.Out_of_range { got; bound; _ } ->
          Alcotest.(check int) "offending value" m.Mesh.n_edges got;
          Alcotest.(check int) "bound" m.Mesh.n_edges bound
      | _ -> Alcotest.fail ("unexpected error: " ^ Mesh.Csr.message e))
    errors

(* --- mesh I/O ------------------------------------------------------------- *)

let meshes_equal (a : Mesh.t) (b : Mesh.t) =
  (* The text format promises a bit-for-bit round trip. *)
  a.geometry = b.geometry && a.n_cells = b.n_cells && a.n_edges = b.n_edges
  && a.n_vertices = b.n_vertices && a.max_edges = b.max_edges
  && a.x_cell = b.x_cell && a.x_edge = b.x_edge && a.x_vertex = b.x_vertex
  && a.edges_on_cell = b.edges_on_cell
  && a.cells_on_edge = b.cells_on_edge
  && a.weights_on_edge = b.weights_on_edge
  && a.kite_areas_on_vertex = b.kite_areas_on_vertex
  && a.edge_sign_on_cell = b.edge_sign_on_cell
  && a.edge_sign_on_vertex = b.edge_sign_on_vertex
  && a.dc_edge = b.dc_edge && a.dv_edge = b.dv_edge
  && a.area_cell = b.area_cell && a.area_triangle = b.area_triangle
  && a.f_cell = b.f_cell && a.f_edge = b.f_edge && a.f_vertex = b.f_vertex
  && a.boundary_edge = b.boundary_edge && a.angle_edge = b.angle_edge
  && a.lon_cell = b.lon_cell && a.lat_vertex = b.lat_vertex

let test_io_roundtrip_sphere () =
  let m = Lazy.force ico3 in
  let m' = Mesh_io.of_string (Mesh_io.to_string m) in
  Alcotest.(check bool) "bitwise roundtrip" true (meshes_equal m m');
  Alcotest.(check (list string)) "roundtrip passes invariants" []
    (Mesh.check ~area_tol:1e-3 m')

let test_io_roundtrip_hex () =
  let m = Lazy.force hex in
  let m' = Mesh_io.of_string (Mesh_io.to_string m) in
  Alcotest.(check bool) "bitwise roundtrip" true (meshes_equal m m')

let test_io_file_roundtrip () =
  (* save -> load through an actual file, bit-identical on both mesh
     families (the string round trips above bypass the disk path). *)
  List.iter
    (fun (family, m) ->
      let path = Filename.temp_file "mesh" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Mesh_io.save m path;
          let m' = Mesh_io.load path in
          Alcotest.(check bool)
            (family ^ " file roundtrip")
            true (meshes_equal m m');
          Alcotest.(check (list string))
            (family ^ " reloaded mesh passes invariants")
            []
            (Mesh.check ~area_tol:1e-3 m')))
    [ ("sphere", Lazy.force ico3); ("planar hex", Lazy.force hex) ]

let test_io_rejects_garbage () =
  List.iter
    (fun garbage ->
      Alcotest.(check bool) "rejects malformed input" true
        (match Mesh_io.of_string garbage with
        | _ -> false
        | exception Failure _ -> true))
    [ ""; "mpas-mesh 99"; "hello world"; "mpas-mesh 1\ngeometry cube" ]

(* --- quality ----------------------------------------------------------------- *)

let test_quality_hex_is_perfect () =
  let q = Quality.measure (Lazy.force hex) in
  Alcotest.(check int) "no pentagons" 0 q.Quality.pentagons;
  Alcotest.(check (float 1e-9)) "uniform spacing" 1. q.Quality.spacing_ratio;
  Alcotest.(check (float 1e-9)) "uniform areas" 1. q.Quality.area_ratio;
  Alcotest.(check (float 1e-9)) "centroidal" 0. q.Quality.mean_centroid_offset;
  Alcotest.(check (float 1e-9)) "orthogonal" 1. q.Quality.min_edge_orthogonality

let test_quality_lloyd_improves () =
  let raw = Quality.measure (Lazy.force ico3) in
  let relaxed = Quality.measure (Lazy.force ico3_relaxed) in
  Alcotest.(check int) "12 pentagons" 12 raw.Quality.pentagons;
  Alcotest.(check bool) "offset shrinks" true
    (relaxed.Quality.mean_centroid_offset
    < raw.Quality.mean_centroid_offset /. 2.);
  Alcotest.(check bool) "report renders" true
    (String.length (Quality.to_string relaxed) > 20)

(* --- VTK export -------------------------------------------------------------- *)

let test_vtk_structure () =
  let m = Lazy.force ico3 in
  let field = Array.init m.n_cells float_of_int in
  let s = Vtk.to_string m [ ("h", field) ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check string) "header" "# vtk DataFile Version 3.0"
    (List.hd lines);
  let count prefix =
    List.length
      (List.filter
         (fun l ->
           String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix)
         lines)
  in
  Alcotest.(check int) "one POINTS section" 1 (count "POINTS");
  Alcotest.(check int) "one POLYGONS section" 1 (count "POLYGONS");
  Alcotest.(check int) "one SCALARS section" 1 (count "SCALARS");
  (* POLYGONS declares n_cells polygons and the exact token count. *)
  let poly_line =
    List.find (fun l -> String.length l > 8 && String.sub l 0 8 = "POLYGONS") lines
  in
  (match String.split_on_char ' ' poly_line with
  | [ _; n; size ] ->
      Alcotest.(check int) "polygon count" m.n_cells (int_of_string n);
      Alcotest.(check int) "token count"
        (Array.fold_left (fun acc k -> acc + k + 1) 0 m.n_edges_on_cell)
        (int_of_string size)
  | _ -> Alcotest.fail "malformed POLYGONS header")

let test_vtk_rejects_bad_fields () =
  let m = Lazy.force ico3 in
  Alcotest.(check bool) "wrong length" true
    (match Vtk.to_string m [ ("x", [| 1. |]) ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad name" true
    (match Vtk.to_string m [ ("a b", Array.make m.n_cells 0.) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- remapping ---------------------------------------------------------------- *)

let test_locator_exact_on_centers () =
  let m = Lazy.force ico3 in
  let loc = Remap.locator m in
  (* Querying every cell center must return that cell, in any order. *)
  let order = Array.init m.n_cells (fun c -> (c * 131) mod m.n_cells) in
  Array.iter
    (fun c ->
      Alcotest.(check int) "locates its own center" c
        (Remap.nearest_cell loc m.x_cell.(c)))
    order

let test_locator_nearest_is_truly_nearest () =
  let m = Lazy.force ico3_relaxed in
  let loc = Remap.locator m in
  let r = Rng.create 12L in
  for _ = 1 to 200 do
    let p =
      Sphere.of_lonlat (Rng.uniform r (-3.) 3.) (Rng.uniform r (-1.5) 1.5)
    in
    let got = Remap.nearest_cell loc p in
    let brute = ref 0 in
    for c = 1 to m.n_cells - 1 do
      if Vec3.dist p m.x_cell.(c) < Vec3.dist p m.x_cell.(!brute) then
        brute := c
    done;
    Alcotest.(check int) "matches brute force" !brute got
  done

let test_remap_identity () =
  let m = Lazy.force ico3 in
  let r = Rng.create 13L in
  let field = Array.init m.n_cells (fun _ -> Rng.uniform r 0. 1.) in
  let mapped = Remap.remap ~src:m ~dst:m field in
  Alcotest.(check bool) "same mesh copies exactly" true (mapped = field)

let test_remap_constant_and_smooth () =
  let coarse = Lazy.force ico3 in
  let fine = Build.icosahedral ~level:4 ~lloyd_iters:2 () in
  let const = Array.make coarse.n_cells 42. in
  Array.iter
    (fun x -> Alcotest.(check (float 1e-9)) "constant preserved" 42. x)
    (Remap.remap ~src:coarse ~dst:fine const);
  (* A smooth field remaps with error well below its amplitude. *)
  let f (p : Vec3.t) = sin (2. *. p.Vec3.x) +. p.Vec3.z in
  let field = Array.map f coarse.x_cell in
  let exact = Array.map f fine.x_cell in
  let mapped = Remap.remap ~src:coarse ~dst:fine field in
  let err = Stats.l2_diff mapped exact /. Stats.l2_norm exact in
  Alcotest.(check bool)
    (Format.sprintf "smooth field rel err %.3f < 0.05" err)
    true (err < 0.05)

let test_l2_error_of_same_field_small () =
  let coarse = Lazy.force ico3 in
  let fine = Build.icosahedral ~level:4 ~lloyd_iters:2 () in
  let f (p : Vec3.t) = p.Vec3.z ** 2. in
  let e =
    Remap.l2_error ~coarse ~fine
      ~field:(Array.map f coarse.x_cell)
      ~reference:(Array.map f fine.x_cell)
  in
  Alcotest.(check bool) (Format.sprintf "err %.4f" e) true (e < 0.03)

(* --- properties -------------------------------------------------------------- *)

let prop_io_roundtrip_any_hex =
  QCheck.Test.make ~name:"io roundtrip on random hex meshes" ~count:6
    QCheck.(pair (int_range 3 7) (int_range 3 7))
    (fun (nx, ny) ->
      let m = Planar_hex.create ~nx ~ny ~dc:321.5 () in
      meshes_equal m (Mesh_io.of_string (Mesh_io.to_string m)))


let prop_mesh_levels_pass_invariants =
  QCheck.Test.make ~name:"icosahedral meshes pass invariants" ~count:3
    QCheck.(int_range 1 3)
    (fun level ->
      Mesh.check ~area_tol:1e-2 (Build.icosahedral ~level ()) = [])

let prop_hex_sizes_pass_invariants =
  QCheck.Test.make ~name:"hex meshes pass invariants" ~count:8
    QCheck.(pair (int_range 3 9) (int_range 3 9))
    (fun (nx, ny) ->
      Mesh.check (Planar_hex.create ~nx ~ny ~dc:250. ()) = [])

let prop_kites_partition_triangles =
  QCheck.Test.make ~name:"kites partition triangles" ~count:5
    QCheck.(int_range 1 3)
    (fun level ->
      let m = Build.icosahedral ~level () in
      Array.for_all Fun.id
        (Array.init m.n_vertices (fun v ->
             let s = Array.fold_left ( +. ) 0. m.kite_areas_on_vertex.(v) in
             Stats.rel_diff s m.area_triangle.(v) < 1e-6)))

let () =
  Alcotest.run "mesh"
    [
      ( "icosphere",
        [
          Alcotest.test_case "counts" `Quick test_icosphere_counts;
          Alcotest.test_case "unit points" `Quick test_icosphere_unit_points;
          Alcotest.test_case "orientation" `Quick test_icosphere_orientation;
          Alcotest.test_case "lloyd" `Quick test_lloyd_improves_centroidality;
          Alcotest.test_case "paper sizes" `Quick test_paper_mesh_sizes;
        ] );
      ( "sphere mesh",
        [
          Alcotest.test_case "invariants" `Quick test_mesh_invariants;
          Alcotest.test_case "invariants (relaxed)" `Quick
            test_mesh_invariants_relaxed;
          Alcotest.test_case "counts" `Quick test_mesh_counts;
          Alcotest.test_case "areas positive" `Quick test_cell_areas_positive;
          Alcotest.test_case "edge frames" `Quick test_edge_orthogonality;
          Alcotest.test_case "vertex order" `Quick test_vertices_follow_tangent;
          Alcotest.test_case "coriolis" `Quick test_coriolis;
          Alcotest.test_case "divergence-free" `Quick
            test_solid_body_divergence_free;
          Alcotest.test_case "vorticity" `Quick test_solid_body_vorticity;
          Alcotest.test_case "trisk antisymmetry" `Quick test_trisk_antisymmetry;
          Alcotest.test_case "tangential accuracy" `Quick
            test_tangential_reconstruction_accuracy;
          Alcotest.test_case "boundary mask" `Quick test_with_boundary_edges;
          Alcotest.test_case "edge index" `Quick test_edge_index_on_cell;
          Alcotest.test_case "fold edges" `Quick test_fold_edges_on_cell;
        ] );
      ( "planar hex",
        [
          Alcotest.test_case "invariants" `Quick test_hex_invariants;
          Alcotest.test_case "counts" `Quick test_hex_counts;
          Alcotest.test_case "geometry" `Quick test_hex_geometry_exact;
          Alcotest.test_case "uniform flow" `Quick test_hex_uniform_flow_exact;
          Alcotest.test_case "bad args" `Quick test_hex_rejects_bad_args;
        ] );
      ( "csr layout",
        [
          Alcotest.test_case "sphere invariants" `Quick test_csr_view_sphere;
          Alcotest.test_case "hex invariants" `Quick test_csr_view_hex;
          Alcotest.test_case "copies share view" `Quick
            test_csr_cache_shared_by_copies;
          Alcotest.test_case "typed validation" `Quick
            test_csr_validate_typed;
          Alcotest.test_case "rebuilt after io" `Quick
            test_csr_rebuilt_after_io;
        ] );
      ( "multiresolution",
        [
          Alcotest.test_case "variable density" `Slow
            test_variable_resolution_mesh;
          Alcotest.test_case "over-relaxation" `Quick
            test_over_relaxation_accelerates;
        ] );
      ( "mesh io",
        [
          Alcotest.test_case "sphere roundtrip" `Quick test_io_roundtrip_sphere;
          Alcotest.test_case "hex roundtrip" `Quick test_io_roundtrip_hex;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_io_rejects_garbage;
        ] );
      ( "quality",
        [
          Alcotest.test_case "perfect hex" `Quick test_quality_hex_is_perfect;
          Alcotest.test_case "lloyd improves" `Quick test_quality_lloyd_improves;
        ] );
      ( "remap",
        [
          Alcotest.test_case "locator on centers" `Quick
            test_locator_exact_on_centers;
          Alcotest.test_case "locator vs brute force" `Quick
            test_locator_nearest_is_truly_nearest;
          Alcotest.test_case "identity" `Quick test_remap_identity;
          Alcotest.test_case "constant + smooth" `Quick
            test_remap_constant_and_smooth;
          Alcotest.test_case "l2 error" `Quick test_l2_error_of_same_field_small;
        ] );
      ( "vtk",
        [
          Alcotest.test_case "structure" `Quick test_vtk_structure;
          Alcotest.test_case "bad fields" `Quick test_vtk_rejects_bad_fields;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mesh_levels_pass_invariants;
            prop_hex_sizes_pass_invariants;
            prop_kites_partition_triangles;
            prop_io_roundtrip_any_hex;
          ] );
    ]
