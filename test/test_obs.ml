(* Observability layer: metrics registry, trace sink, Chrome export and
   the measured-vs-roofline report.

   The concurrent tests run real pool loops; the overhead test backs
   the <2% no-op-sink budget promised in DESIGN.md §8. *)

open Mpas_obs
open Mpas_par
open Mpas_mesh
open Mpas_swe

let ico = lazy (Build.icosahedral ~level:3 ~lloyd_iters:3 ())

(* --- counters / gauges / timers ------------------------------------------ *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.Counter.value c);
  (* Same name finds the same counter, not a fresh one. *)
  let c' = Metrics.counter ~registry:r "c" in
  Metrics.Counter.incr c';
  Alcotest.(check int) "get-or-create aliases" 43 (Metrics.Counter.value c)

let test_gauge_basics () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "g" in
  Metrics.Gauge.set g 2.5;
  Metrics.Gauge.set g (-1.0);
  Alcotest.(check (float 0.)) "last write wins" (-1.0) (Metrics.Gauge.value g)

let test_timer_basics () =
  let r = Metrics.create () in
  let t = Metrics.timer ~registry:r "t" in
  Metrics.Timer.record t 1e-3;
  Metrics.Timer.record t 3e-3;
  Alcotest.(check int) "count" 2 (Metrics.Timer.count t);
  Alcotest.(check (float 1e-12)) "total" 4e-3 (Metrics.Timer.total t);
  match Metrics.find_timer (Metrics.snapshot r) "t" with
  | None -> Alcotest.fail "timer missing from snapshot"
  | Some s ->
      Alcotest.(check (float 1e-12)) "min" 1e-3 s.Metrics.min_s;
      Alcotest.(check (float 1e-12)) "max" 3e-3 s.Metrics.max_s;
      Alcotest.(check int) "bucket mass equals count" 2
        (Array.fold_left ( + ) 0 s.Metrics.buckets)

let test_timer_time_records_on_raise () =
  let r = Metrics.create () in
  let t = Metrics.timer ~registry:r "t" in
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      Metrics.Timer.time t (fun () -> failwith "boom"));
  Alcotest.(check int) "raising run still recorded" 1 (Metrics.Timer.count t)

let test_kind_clash_rejected () =
  let r = Metrics.create () in
  let (_ : Metrics.Counter.t) = Metrics.counter ~registry:r "x" in
  Alcotest.(check bool) "same name, different kind" true
    (match Metrics.gauge ~registry:r "x" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- snapshots and merging ----------------------------------------------- *)

let test_snapshot_sorted_and_lookup () =
  let r = Metrics.create () in
  Metrics.Counter.add (Metrics.counter ~registry:r "z.late") 7;
  Metrics.Gauge.set (Metrics.gauge ~registry:r "a.early") 1.5;
  Metrics.Timer.record (Metrics.timer ~registry:r "m.mid") 1e-4;
  let snap = Metrics.snapshot r in
  Alcotest.(check (list string))
    "sorted by name"
    [ "a.early"; "m.mid"; "z.late" ]
    (List.map fst snap);
  Alcotest.(check (option int)) "find counter" (Some 7)
    (Metrics.find_counter snap "z.late");
  Alcotest.(check (option (float 0.))) "find gauge" (Some 1.5)
    (Metrics.find_gauge snap "a.early");
  Alcotest.(check (option int)) "missing name" None
    (Metrics.find_counter snap "nope")

let test_merge_combines () =
  let mk c_add t_obs g =
    let r = Metrics.create () in
    Metrics.Counter.add (Metrics.counter ~registry:r "c") c_add;
    List.iter (Metrics.Timer.record (Metrics.timer ~registry:r "t")) t_obs;
    Metrics.Gauge.set (Metrics.gauge ~registry:r "g") g;
    Metrics.snapshot r
  in
  let left = mk 3 [ 1e-3; 5e-3 ] 1.0 in
  let right = mk 4 [ 2e-3 ] 9.0 in
  let merged = Metrics.merge left right in
  Alcotest.(check (option int)) "counters add" (Some 7)
    (Metrics.find_counter merged "c");
  Alcotest.(check (option (float 0.))) "gauge is right-biased" (Some 9.0)
    (Metrics.find_gauge merged "g");
  (match Metrics.find_timer merged "t" with
  | None -> Alcotest.fail "merged timer missing"
  | Some s ->
      Alcotest.(check int) "timer counts add" 3 s.Metrics.t_count;
      Alcotest.(check (float 1e-12)) "timer totals add" 8e-3 s.Metrics.total_s;
      Alcotest.(check (float 1e-12)) "min folds" 1e-3 s.Metrics.min_s;
      Alcotest.(check (float 1e-12)) "max folds" 5e-3 s.Metrics.max_s);
  (* Disjoint names union; merge with empty is identity. *)
  let only_left = mk 1 [] 0.0 in
  Alcotest.(check bool) "empty right is identity" true
    (Metrics.merge only_left [] = only_left);
  Alcotest.(check bool) "empty left is identity" true
    (Metrics.merge [] only_left = only_left)

let test_labeled_merge_and_grouping () =
  (* Equal label sets combine under merge (key order irrelevant),
     distinct sets stay distinct, and [group_labeled] reads the family
     back as one table. *)
  let mk order =
    let r = Metrics.create () in
    let labels =
      if order then [ ("tenant", "acme"); ("lane", "high") ]
      else [ ("lane", "high"); ("tenant", "acme") ]
    in
    Metrics.Counter.add (Metrics.counter ~registry:r ~labels "jobs") 2;
    Metrics.Counter.add
      (Metrics.counter ~registry:r ~labels:[ ("tenant", "beta") ] "jobs")
      5;
    Metrics.Counter.incr (Metrics.counter ~registry:r "jobs");
    Metrics.snapshot r
  in
  let merged = Metrics.merge (mk true) (mk false) in
  Alcotest.(check (option int))
    "equal label sets combine (sorted canonically)" (Some 4)
    (Metrics.find_counter merged "jobs{lane=high,tenant=acme}");
  Alcotest.(check (option int)) "distinct sets stay distinct" (Some 10)
    (Metrics.find_counter merged "jobs{tenant=beta}");
  Alcotest.(check (option int)) "unlabeled entry untouched" (Some 2)
    (Metrics.find_counter merged "jobs");
  Alcotest.(check int) "family groups to one table" 3
    (List.length (Metrics.group_labeled merged "jobs"));
  (match Metrics.group_labeled merged "jobs" with
  | [ ([], Metrics.Counter_value 2); (l1, _); (l2, _) ] ->
      Alcotest.(check bool) "labels parsed back sorted" true
        (l1 = [ ("lane", "high"); ("tenant", "acme") ]
        && l2 = [ ("tenant", "beta") ])
  | _ -> Alcotest.fail "unexpected group_labeled shape");
  Alcotest.(check bool) "structural characters rejected" true
    (match Metrics.labeled_name "x" [ ("a=b", "c") ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_merge_kind_mismatch_rejected () =
  let a = [ ("x", Metrics.Counter_value 1) ] in
  let b = [ ("x", Metrics.Gauge_value 2.0) ] in
  Alcotest.(check bool) "mismatched kinds rejected" true
    (match Metrics.merge a b with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_snapshot_json_parses () =
  let r = Metrics.create () in
  Metrics.Counter.add (Metrics.counter ~registry:r "c") 5;
  Metrics.Timer.record (Metrics.timer ~registry:r "t") 2e-3;
  let json = Metrics.to_json (Metrics.snapshot r) in
  (* The emitted text must be valid JSON for our own parser. *)
  let round = Jsonv.of_string (Jsonv.to_string json) in
  Alcotest.(check bool) "snapshot JSON round-trips" true (round = json)

(* --- concurrency under the pool ------------------------------------------ *)

let test_concurrent_increments_exact () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "hits" in
  let t = Metrics.timer ~registry:r "work" in
  let n = 100_000 in
  Pool.with_pool ~n_domains:4 (fun pool ->
      Pool.parallel_for pool ~lo:0 ~hi:n (fun i ->
          Metrics.Counter.incr c;
          if i land 15 = 0 then Metrics.Timer.record t 1e-6));
  Alcotest.(check int) "no lost counter updates" n (Metrics.Counter.value c);
  Alcotest.(check int) "no lost timer updates" (n / 16)
    (Metrics.Timer.count t);
  Alcotest.(check (float 1e-9)) "timer total exact"
    (float_of_int (n / 16) *. 1e-6)
    (Metrics.Timer.total t)

let test_pool_publishes_counters () =
  let snap () = Metrics.snapshot Metrics.default in
  let before name = Option.value ~default:0 (Metrics.find_counter (snap ()) name) in
  let jobs0 = before "par.pool.jobs" and chunks0 = before "par.pool.chunks" in
  Pool.with_pool ~n_domains:2 (fun pool ->
      Pool.parallel_for pool ~lo:0 ~hi:1000 (fun _ -> ()));
  let jobs1 = before "par.pool.jobs" and chunks1 = before "par.pool.chunks" in
  Alcotest.(check bool) "pool job counted" true (jobs1 > jobs0);
  Alcotest.(check bool) "pool chunks counted" true (chunks1 > chunks0)

(* --- trace sink ----------------------------------------------------------- *)

let with_memory_sink f =
  let sink = Trace.memory () in
  Trace.set_sink sink;
  Fun.protect
    ~finally:(fun () -> Trace.set_sink Trace.noop)
    (fun () -> f sink)

let complete_spans sink =
  List.filter (fun e -> e.Trace.ev_ph = `Complete) (Trace.events sink)

(* Chrome's flame view needs spans on one lane to be properly nested:
   any two either disjoint in time or one containing the other. *)
let well_nested spans =
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          a == b
          || a.Trace.ev_tid <> b.Trace.ev_tid
          ||
          let a0 = a.Trace.ev_ts_us and b0 = b.Trace.ev_ts_us in
          let a1 = a0 +. a.Trace.ev_dur_us and b1 = b0 +. b.Trace.ev_dur_us in
          a1 <= b0 || b1 <= a0
          || (a0 <= b0 && b1 <= a1)
          || (b0 <= a0 && a1 <= b1))
        spans)
    spans

let test_noop_sink_records_nothing () =
  Alcotest.(check bool) "noop disabled" false
    (Trace.set_sink Trace.noop;
     Trace.enabled ());
  Trace.with_span "ignored" (fun () -> ());
  Trace.instant "ignored too";
  Alcotest.(check int) "no events" 0 (List.length (Trace.events Trace.noop))

let test_spans_nest_and_raise_safely () =
  with_memory_sink (fun sink ->
      Alcotest.(check bool) "memory sink enabled" true (Trace.enabled ());
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ignore (Sys.opaque_identity 0));
          Trace.instant ~cat:"mark" "tick");
      Alcotest.check_raises "exception escapes the span" (Failure "boom")
        (fun () -> Trace.with_span "broken" (fun () -> failwith "boom"));
      let spans = complete_spans sink in
      Alcotest.(check (list string))
        "all spans recorded, timestamp order"
        [ "inner"; "outer"; "broken" ]
        (List.map (fun e -> e.Trace.ev_name)
           (List.sort
              (fun a b ->
                let ea = a.Trace.ev_ts_us +. a.Trace.ev_dur_us
                and eb = b.Trace.ev_ts_us +. b.Trace.ev_dur_us in
                match compare ea eb with
                | 0 ->
                    (* close times tied on a coarse clock: of two spans
                       ending together the one that opened later is the
                       inner one and must have closed first *)
                    compare b.Trace.ev_ts_us a.Trace.ev_ts_us
                | c -> c)
              spans));
      let find n = List.find (fun e -> e.Trace.ev_name = n) spans in
      let outer = find "outer" and inner = find "inner" in
      Alcotest.(check bool) "inner starts inside outer" true
        (inner.Trace.ev_ts_us >= outer.Trace.ev_ts_us);
      Alcotest.(check bool) "inner ends inside outer" true
        (inner.Trace.ev_ts_us +. inner.Trace.ev_dur_us
        <= outer.Trace.ev_ts_us +. outer.Trace.ev_dur_us);
      Alcotest.(check bool) "well nested" true (well_nested spans))

let test_chrome_json_well_formed () =
  with_memory_sink (fun sink ->
      Trace.with_span ~cat:"kernel" ~args:[ ("layout", "csr") ] "k" (fun () ->
          ());
      Trace.instant "mark";
      Trace.emit ~cat:"hybrid" ~tid:2 ~ts_us:10. ~dur_us:5. "lane";
      let doc = Jsonv.of_string (Trace.to_chrome_json sink) in
      let events =
        match Jsonv.member "traceEvents" doc with
        | Some (Jsonv.Arr evs) -> evs
        | _ -> Alcotest.fail "traceEvents array missing"
      in
      Alcotest.(check int) "all events exported" 3 (List.length events);
      List.iter
        (fun ev ->
          let get k =
            match Jsonv.member k ev with
            | Some v -> v
            | None -> Alcotest.fail ("event missing field " ^ k)
          in
          let ph = Jsonv.to_str (get "ph") in
          Alcotest.(check bool) "ph is X or i" true (ph = "X" || ph = "i");
          ignore (Jsonv.to_str (get "name"));
          ignore (Jsonv.to_float (get "ts"));
          ignore (Jsonv.to_int (get "pid"));
          ignore (Jsonv.to_int (get "tid"));
          if ph = "X" then ignore (Jsonv.to_float (get "dur")))
        events;
      (* Simulated lane events keep their explicit coordinates. *)
      let lane =
        List.find
          (fun ev -> Jsonv.member "name" ev = Some (Jsonv.Str "lane"))
          events
      in
      Alcotest.(check (option int)) "explicit tid" (Some 2)
        (Option.map Jsonv.to_int (Jsonv.member "tid" lane)))

let test_observed_step_trace () =
  (* One RK-4 step under the observed engine: every kernel shows up,
     compute_tend exactly four times (the four substeps), and the spans
     nest per lane. *)
  with_memory_sink (fun sink ->
      let m = Lazy.force ico in
      let registry = Metrics.create () in
      let model =
        Model.init ~engine:(Timestep.observed ~registry Timestep.refactored)
          Williamson.Tc5 m
      in
      Model.run model ~steps:1;
      let spans = complete_spans sink in
      let kernel_spans =
        List.filter (fun e -> e.Trace.ev_cat = "kernel") spans
      in
      let count name =
        List.length
          (List.filter (fun e -> e.Trace.ev_name = name) kernel_spans)
      in
      Alcotest.(check int) "four compute_tend substeps" 4
        (count "compute_tend");
      Alcotest.(check bool) "diagnostics kernel present" true
        (count "compute_solve_diagnostics" > 0);
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (e.Trace.ev_name ^ " span carries a layout argument")
            true
            (List.mem_assoc "layout" e.Trace.ev_args))
        kernel_spans;
      Alcotest.(check bool) "kernel spans well nested" true
        (well_nested spans);
      (* The same run filled the isolated registry's timers. *)
      match
        Metrics.find_timer (Metrics.snapshot registry)
          "swe.kernel.compute_tend"
      with
      | None -> Alcotest.fail "compute_tend timer missing"
      | Some s -> Alcotest.(check int) "timer agrees" 4 s.Metrics.t_count)

(* --- no-op-sink overhead -------------------------------------------------- *)

let test_noop_observation_overhead_small () =
  (* Acceptance budget: with the no-op sink, the observed engine must
     stay within 10% of the plain engine.  The intrinsic overhead is
     well under 2%, but a 1.6 ms step timed on a shared oversubscribed
     core carries a ±6% noise floor even under min-of-41 filtering, so
     the assertion budgets for the noise, not the probe.  The two
     engines' runs are interleaved (plain, observed, plain, ...) and
     min-of-N filtered, so load drift lands on both sides instead of
     on whichever engine happened to run during a spike; a small
     absolute epsilon keeps sub-millisecond timings from flaking. *)
  Trace.set_sink Trace.noop;
  let m = Lazy.force ico in
  let model_of engine = Model.init ~engine Williamson.Tc5 m in
  let plain_model = model_of Timestep.refactored in
  let observed_model =
    model_of
      (Timestep.observed ~registry:(Metrics.create ()) Timestep.refactored)
  in
  let time model =
    let t0 = Unix.gettimeofday () in
    Model.run model ~steps:2;
    Unix.gettimeofday () -. t0
  in
  let plain = ref infinity and observed = ref infinity in
  for _ = 1 to 15 do
    plain := Float.min !plain (time plain_model);
    observed := Float.min !observed (time observed_model)
  done;
  let plain = !plain and observed = !observed in
  Alcotest.(check bool)
    (Printf.sprintf "observed %.3f ms within 10%% of plain %.3f ms"
       (1e3 *. observed) (1e3 *. plain))
    true
    (observed <= (plain *. 1.10) +. 1e-4)

(* --- measured-vs-roofline report ------------------------------------------ *)

let stats = Mpas_patterns.Cost.stats_of_level 5

let test_report_rows () =
  let r =
    Mpas_obs_report.Report.make ~stats ~steps:2 [ ("compute_tend", 2.0) ]
  in
  Alcotest.(check int) "one row per kernel" 6 (List.length r.rows);
  let row name =
    List.find (fun (x : Mpas_obs_report.Report.row) -> x.kernel = name) r.rows
  in
  let tend = row "compute_tend" in
  Alcotest.(check (float 1e-12)) "per-step measured" 1.0 tend.measured_s;
  Alcotest.(check bool) "model predicts non-zero time" true
    (tend.modelled_s > 0.);
  Alcotest.(check (float 1e-9)) "ratio is measured over modelled"
    (1.0 /. tend.modelled_s) tend.ratio;
  let bdry = row "enforce_boundary_edge" in
  Alcotest.(check (float 0.)) "unmeasured kernel reports zero" 0.
    bdry.measured_s;
  Alcotest.(check (float 1e-12)) "measured total" 1.0
    (Mpas_obs_report.Report.measured_total r);
  Alcotest.(check bool) "every row has a ratio" true
    (List.for_all
       (fun (x : Mpas_obs_report.Report.row) ->
         Float.is_nan x.ratio || Float.is_finite x.ratio)
       r.rows)

let test_report_rejects_bad_steps () =
  Alcotest.(check bool) "steps < 1 rejected" true
    (match Mpas_obs_report.Report.make ~stats ~steps:0 [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_report_json_roundtrip () =
  let r =
    Mpas_obs_report.Report.make ~stats ~steps:3
      [ ("compute_tend", 1.5); ("mpas_reconstruct", 0.25) ]
  in
  let r' =
    Mpas_obs_report.Report.of_json
      (Jsonv.of_string
         (Jsonv.to_string (Mpas_obs_report.Report.to_json r)))
  in
  let feq a b = a = b || (Float.is_nan a && Float.is_nan b) in
  Alcotest.(check string) "device survives" r.device r'.device;
  Alcotest.(check int) "steps survive" r.steps r'.steps;
  Alcotest.(check int) "row count survives" (List.length r.rows)
    (List.length r'.rows);
  List.iter2
    (fun (a : Mpas_obs_report.Report.row) (b : Mpas_obs_report.Report.row) ->
      Alcotest.(check string) "kernel" a.kernel b.kernel;
      Alcotest.(check int) "calls" a.calls_per_step b.calls_per_step;
      Alcotest.(check bool) "measured" true (feq a.measured_s b.measured_s);
      Alcotest.(check bool) "modelled" true (feq a.modelled_s b.modelled_s);
      Alcotest.(check bool) "ratio" true (feq a.ratio b.ratio))
    r.rows r'.rows

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter_basics;
          Alcotest.test_case "gauge" `Quick test_gauge_basics;
          Alcotest.test_case "timer" `Quick test_timer_basics;
          Alcotest.test_case "timer records on raise" `Quick
            test_timer_time_records_on_raise;
          Alcotest.test_case "kind clash" `Quick test_kind_clash_rejected;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "sorted + lookup" `Quick
            test_snapshot_sorted_and_lookup;
          Alcotest.test_case "merge combines" `Quick test_merge_combines;
          Alcotest.test_case "labeled merge and grouping" `Quick
            test_labeled_merge_and_grouping;
          Alcotest.test_case "merge kind mismatch" `Quick
            test_merge_kind_mismatch_rejected;
          Alcotest.test_case "snapshot JSON" `Quick test_snapshot_json_parses;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "exact concurrent counts" `Quick
            test_concurrent_increments_exact;
          Alcotest.test_case "pool counters" `Quick
            test_pool_publishes_counters;
        ] );
      ( "trace",
        [
          Alcotest.test_case "noop sink" `Quick test_noop_sink_records_nothing;
          Alcotest.test_case "span nesting" `Quick
            test_spans_nest_and_raise_safely;
          Alcotest.test_case "chrome JSON" `Quick test_chrome_json_well_formed;
          Alcotest.test_case "observed model step" `Quick
            test_observed_step_trace;
          Alcotest.test_case "noop overhead small" `Quick
            test_noop_observation_overhead_small;
        ] );
      ( "report",
        [
          Alcotest.test_case "rows" `Quick test_report_rows;
          Alcotest.test_case "bad steps" `Quick test_report_rejects_bad_steps;
          Alcotest.test_case "json roundtrip" `Quick
            test_report_json_roundtrip;
        ] );
    ]
