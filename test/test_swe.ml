open Mpas_numerics
open Mpas_mesh
open Mpas_swe

let ico = lazy (Build.icosahedral ~level:3 ~lloyd_iters:3 ())
let hex = lazy (Planar_hex.create ~f:1e-4 ~nx:8 ~ny:6 ~dc:1000. ())

let random_u mesh seed =
  let r = Rng.create seed in
  Array.init mesh.Mesh.n_edges (fun _ -> Rng.uniform r (-10.) 10.)

let random_h mesh seed =
  let r = Rng.create seed in
  Array.init mesh.Mesh.n_cells (fun _ -> Rng.uniform r 900. 1100.)

(* --- scatter/gather equivalence (the refactoring correctness claim) ------ *)

let check_equiv name scatter gather =
  let m = Lazy.force ico in
  let out1 = scatter m and out2 = gather m in
  Alcotest.(check bool)
    (name ^ " scatter = gather")
    true
    (Stats.max_abs_diff out1 out2 < 1e-10 *. Stats.l2_norm out1 /. sqrt (float_of_int (Array.length out1)) +. 1e-13)

let test_equiv_divergence () =
  let u = random_u (Lazy.force ico) 1L in
  check_equiv "divergence"
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.divergence_scatter m ~u ~out;
      out)
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.divergence m ~u ~out;
      out)

let test_equiv_kinetic_energy () =
  let u = random_u (Lazy.force ico) 2L in
  check_equiv "ke"
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.kinetic_energy_scatter m ~u ~out;
      out)
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.kinetic_energy m ~u ~out;
      out)

let test_equiv_vorticity () =
  let u = random_u (Lazy.force ico) 3L in
  check_equiv "vorticity"
    (fun m ->
      let out = Array.make m.Mesh.n_vertices 0. in
      Operators.vorticity_scatter m ~u ~out;
      out)
    (fun m ->
      let out = Array.make m.Mesh.n_vertices 0. in
      Operators.vorticity m ~u ~out;
      out)

let test_equiv_d2fdx2 () =
  let h = random_h (Lazy.force ico) 4L in
  check_equiv "d2fdx2"
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.d2fdx2_scatter m ~h ~out;
      out)
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.d2fdx2 m ~h ~out;
      out)

let test_equiv_pv_cell () =
  let m = Lazy.force ico in
  let r = Rng.create 5L in
  let pv = Array.init m.n_vertices (fun _ -> Rng.uniform r (-1.) 1.) in
  check_equiv "pv_cell"
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.pv_cell_scatter m ~pv_vertex:pv ~out;
      out)
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.pv_cell m ~pv_vertex:pv ~out;
      out)

let test_equiv_tend_h () =
  let m = Lazy.force ico in
  let u = random_u m 6L and h_edge = Array.make m.n_edges 1000. in
  check_equiv "tend_h"
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.tend_h_scatter m ~h_edge ~u ~out;
      out)
    (fun m ->
      let out = Array.make m.Mesh.n_cells 0. in
      Operators.tend_h m ~h_edge ~u ~out;
      out)

let test_parallel_matches_serial_gather () =
  let m = Lazy.force ico in
  let u = random_u m 7L in
  let serial = Array.make m.n_cells 0. in
  Operators.divergence m ~u ~out:serial;
  Mpas_par.Pool.with_pool ~n_domains:4 (fun pool ->
      let par = Array.make m.n_cells 0. in
      Operators.divergence ~pool m ~u ~out:par;
      (* Gather loops write disjoint outputs: results are bitwise equal. *)
      Alcotest.(check bool)
        "bitwise equal" true
        (Array.for_all Fun.id
           (Array.init m.n_cells (fun c -> Float.equal serial.(c) par.(c)))))

(* --- exact answers on the regular hex mesh ------------------------------- *)

let test_hex_divergence_uniform_flow () =
  let m = Lazy.force hex in
  let flow = Vec3.make 2. 1. 0. in
  let u = Array.init m.n_edges (fun e -> Vec3.dot flow m.edge_normal.(e)) in
  let out = Array.make m.n_cells 0. in
  Operators.divergence m ~u ~out;
  Array.iter
    (fun d -> Alcotest.(check (float 1e-12)) "div uniform = 0" 0. d)
    out

let test_hex_ke_uniform_flow () =
  (* For |flow|^2 = const the TRiSK cell KE on the perfect hex grid is
     exactly |flow|^2 / 2: sum(dc dv / 4 (u.n_j)^2) / A = |u|^2/2. *)
  let m = Lazy.force hex in
  let flow = Vec3.make 3. (-1.) 0. in
  let u = Array.init m.n_edges (fun e -> Vec3.dot flow m.edge_normal.(e)) in
  let out = Array.make m.n_cells 0. in
  Operators.kinetic_energy m ~u ~out;
  Array.iter
    (fun ke ->
      Alcotest.(check (float 1e-9)) "ke = |u|^2/2" (Vec3.norm2 flow /. 2.) ke)
    out

let test_hex_h_edge_constant_field () =
  let m = Lazy.force hex in
  let h = Array.make m.n_cells 123.456 in
  let d2 = Array.make m.n_cells 0. in
  Operators.d2fdx2 m ~h ~out:d2;
  Array.iter (fun x -> Alcotest.(check (float 1e-9)) "laplacian 0" 0. x) d2;
  let out = Array.make m.n_edges 0. in
  Operators.h_edge m ~order:Config.Fourth ~h ~d2fdx2_cell:d2 ~out;
  Array.iter
    (fun x -> Alcotest.(check (float 1e-9)) "h_edge const" 123.456 x)
    out

let test_hex_grad_pv_constant () =
  let m = Lazy.force hex in
  let pv_cell = Array.make m.n_cells 7. and pv_vertex = Array.make m.n_vertices 7. in
  let out_n = Array.make m.n_edges nan and out_t = Array.make m.n_edges nan in
  Operators.grad_pv m ~pv_cell ~pv_vertex ~out_n ~out_t;
  Array.iter (fun g -> Alcotest.(check (float 1e-12)) "grad_n 0" 0. g) out_n;
  Array.iter (fun g -> Alcotest.(check (float 1e-12)) "grad_t 0" 0. g) out_t

let test_geostrophic_balance_hex () =
  (* On an f-plane, a uniform flow with a balancing linear surface tilt
     is a steady state: tend_u = 0 and tend_h = 0 away from seams. *)
  let m = Lazy.force hex in
  let f = 1e-4 and g = Config.default.gravity in
  let flow = Vec3.make 5. 0. 0. in
  (* geostrophy: f k x u = -g grad h  =>  grad h = -(f/g) k x u. *)
  let slope = Vec3.scale (-.(f /. g)) (Vec3.cross Vec3.ez flow) in
  let h0 = 1000. in
  let h = Array.init m.n_cells (fun c -> h0 +. Vec3.dot slope m.x_cell.(c)) in
  let u = Array.init m.n_edges (fun e -> Vec3.dot flow m.edge_normal.(e)) in
  let state = { Fields.h; u; tracers = [||] } in
  let model =
    Model.of_state ~dt:1.
      ~b:(Array.make m.n_cells 0.)
      m state
  in
  (* Check interior edges only: positions near the seams are unwrapped,
     so the linear h field is inconsistent across them. *)
  Timestep.rk4_step model.engine model.config m ~b:model.b ~dt:1.
    ~state:model.state ~work:model.work ();
  let interior_edge e =
    let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
    Vec3.dist m.x_cell.(c1) m.x_cell.(c2) < 1.5 *. 1000.
    && Array.for_all
         (fun c ->
           Array.for_all
             (fun c' -> Vec3.dist m.x_cell.(c) m.x_cell.(c') < 1.5 *. 1000.)
             m.cells_on_cell.(c))
         [| c1; c2 |]
  in
  let du = ref 0. in
  for e = 0 to m.n_edges - 1 do
    if interior_edge e then
      du := Float.max !du (Float.abs (model.state.u.(e) -. u.(e)))
  done;
  Alcotest.(check bool)
    (Format.sprintf "geostrophic steady (du=%g)" !du)
    true (!du < 1e-8)

(* --- local kernels -------------------------------------------------------- *)

let test_enforce_boundary_edge () =
  let m = Lazy.force ico in
  let masked = Mesh.with_boundary_edges m (fun e -> e mod 5 = 0) in
  let tend_u = Array.make m.n_edges 1. in
  Operators.enforce_boundary_edge masked ~tend_u;
  for e = 0 to m.n_edges - 1 do
    Alcotest.(check (float 0.))
      "boundary zeroed"
      (if e mod 5 = 0 then 0. else 1.)
      tend_u.(e)
  done

let test_next_substep_and_accumulate () =
  let m = Lazy.force hex in
  let base = Fields.alloc_state m in
  Array.fill base.h 0 m.n_cells 10.;
  Array.fill base.u 0 m.n_edges 2.;
  let tend =
    { Fields.tend_h = Array.make m.n_cells 0.5; tend_u = Array.make m.n_edges (-1.); tend_tracers = [||] }
  in
  let provis = Fields.alloc_state m in
  Operators.next_substep_state m ~coef:2. ~base ~tend ~provis;
  Alcotest.(check (float 1e-12)) "provis h" 11. provis.h.(0);
  Alcotest.(check (float 1e-12)) "provis u" 0. provis.u.(0);
  let accum = Fields.copy_state base in
  Operators.accumulate m ~coef:4. ~tend ~accum;
  Alcotest.(check (float 1e-12)) "accum h" 12. accum.h.(0);
  Alcotest.(check (float 1e-12)) "accum u" (-2.) accum.u.(0)

let test_dissipation_zero_visc_is_noop () =
  let m = Lazy.force ico in
  let tend_u = Array.make m.n_edges 3.14 in
  let divergence = random_h m 9L and vorticity = Array.make m.n_vertices 1. in
  Operators.dissipation m ~visc2:0. ~divergence ~vorticity ~tend_u;
  Array.iter (fun x -> Alcotest.(check (float 0.)) "untouched" 3.14 x) tend_u

let test_dissipation_smooths () =
  (* The Laplacian of a random field must reduce its KE: check the sign
     of <u, visc * lap u> summed with edge areas. *)
  let m = Lazy.force ico in
  let u = random_u m 10L in
  let divergence = Array.make m.n_cells 0. in
  let vorticity = Array.make m.n_vertices 0. in
  Operators.divergence m ~u ~out:divergence;
  Operators.vorticity m ~u ~out:vorticity;
  let tend_u = Array.make m.n_edges 0. in
  Operators.dissipation m ~visc2:1e5 ~divergence ~vorticity ~tend_u;
  let dot = ref 0. in
  for e = 0 to m.n_edges - 1 do
    dot := !dot +. (u.(e) *. tend_u.(e) *. m.dc_edge.(e) *. m.dv_edge.(e))
  done;
  Alcotest.(check bool) "dissipative" true (!dot < 0.)

(* --- reconstruction -------------------------------------------------------- *)

let test_reconstruct_uniform_flow_hex () =
  let m = Lazy.force hex in
  let flow = Vec3.make 4. (-2.) 0. in
  let u = Array.init m.n_edges (fun e -> Vec3.dot flow m.edge_normal.(e)) in
  let r = Reconstruct.init m in
  let out = Fields.alloc_reconstruction m in
  Reconstruct.run r m ~u ~out;
  for c = 0 to m.n_cells - 1 do
    Alcotest.(check (float 1e-9)) "ux" flow.Vec3.x out.ux.(c);
    Alcotest.(check (float 1e-9)) "uy" flow.Vec3.y out.uy.(c);
    Alcotest.(check (float 1e-9)) "zonal" flow.Vec3.x out.zonal.(c);
    Alcotest.(check (float 1e-9)) "meridional" flow.Vec3.y out.meridional.(c)
  done

let test_reconstruct_solid_body_sphere () =
  let m = Lazy.force ico in
  let om = 10. in
  let u =
    Array.init m.n_edges (fun e ->
        Vec3.dot
          (Vec3.scale om (Vec3.cross Vec3.ez m.x_edge.(e)))
          m.edge_normal.(e))
  in
  let r = Reconstruct.init m in
  let out = Fields.alloc_reconstruction m in
  Reconstruct.run r m ~u ~out;
  let errs =
    Array.init m.n_cells (fun c ->
        let exact = Vec3.scale om (Vec3.cross Vec3.ez m.x_cell.(c)) in
        let got = Vec3.make out.ux.(c) out.uy.(c) out.uz.(c) in
        Vec3.dist got exact)
  in
  Alcotest.(check bool)
    (Format.sprintf "mean err %g < 2%%" (Stats.mean errs))
    true
    (Stats.mean errs < 0.02 *. om)

(* --- full model behaviour --------------------------------------------------- *)

let test_tc2_steady () =
  let m = Lazy.force ico in
  let model = Model.init Williamson.Tc2 m in
  let h0 = Array.copy model.state.h in
  Model.run model ~steps:10;
  let drift = Stats.max_abs_diff h0 model.state.h in
  (* Coarse-mesh discretization error bound; the state must not blow up
     or wander, as an O(1) change would be ~1000 m. *)
  Alcotest.(check bool)
    (Format.sprintf "TC2 height drift %g m < 10 m" drift)
    true (drift < 10.)

let test_mass_conservation () =
  let m = Lazy.force ico in
  let model = Model.init Williamson.Tc5 m in
  let before = (Model.invariants model).Conservation.mass in
  Model.run model ~steps:10;
  let after = (Model.invariants model).Conservation.mass in
  Alcotest.(check bool)
    "mass conserved to machine precision" true
    (Stats.rel_diff before after < 1e-15 *. 100.)

let test_energy_enstrophy_drift_small () =
  let m = Lazy.force ico in
  let model = Model.init Williamson.Tc5 m in
  let inv0 = Model.invariants model in
  Model.run model ~steps:10;
  let d = Conservation.drift ~reference:inv0 (Model.invariants model) in
  Alcotest.(check bool)
    (Format.sprintf "energy drift %g" d.Conservation.energy)
    true
    (d.Conservation.energy < 1e-4);
  Alcotest.(check bool)
    (Format.sprintf "enstrophy drift %g" d.Conservation.potential_enstrophy)
    true
    (d.Conservation.potential_enstrophy < 1e-3)

let test_engines_agree () =
  let m = Lazy.force ico in
  let m1 = Model.init Williamson.Tc5 m in
  let m2 = Model.init ~engine:Timestep.original Williamson.Tc5 m in
  Model.run m1 ~steps:3;
  Model.run m2 ~steps:3;
  Alcotest.(check bool)
    "refactored = original (within fp reassociation)" true
    (Stats.max_abs_diff m1.state.h m2.state.h < 1e-9
    && Stats.max_abs_diff m1.state.u m2.state.u < 1e-11)

let test_parallel_engine_agrees () =
  let m = Lazy.force ico in
  let m1 = Model.init Williamson.Tc5 m in
  let m2 = Model.init Williamson.Tc5 m in
  Model.run m1 ~steps:3;
  Model.with_parallel_engine m2 ~n_domains:3 (fun m2 -> Model.run m2 ~steps:3);
  (* Refactored loops are deterministic: parallel must equal serial
     bitwise. *)
  Alcotest.(check bool)
    "parallel = serial gather, bitwise" true
    (Array.for_all Fun.id
       (Array.init m.n_cells (fun c ->
            Float.equal m1.state.h.(c) m2.state.h.(c))))

let test_rk4_convergence () =
  (* Halving dt must shrink the one-hour integration error ~16x; we
     accept anything > 8x to stay robust to error-constant noise.
     APVM is disabled because its anticipation term is O(dt) by design
     and would cap the observable order at one. *)
  let m = Lazy.force ico in
  let config = { Config.default with apvm_factor = 0. } in
  let horizon = 3600. in
  let run dt =
    let model = Model.init ~config ~dt Williamson.Tc6 m in
    Model.run model ~steps:(int_of_float (horizon /. dt));
    model.state
  in
  let reference = run 112.5 in
  let coarse = run 900. and fine = run 450. in
  let e_coarse = Stats.l2_diff coarse.h reference.h in
  let e_fine = Stats.l2_diff fine.h reference.h in
  Alcotest.(check bool)
    (Format.sprintf "order >= 3 (ratio %g)" (e_coarse /. e_fine))
    true
    (e_coarse /. e_fine > 8.)

let test_tc5_mountain_present () =
  let m = Lazy.force ico in
  let _, b = Williamson.init Williamson.Tc5 m in
  let hi = Array.fold_left Float.max 0. b in
  Alcotest.(check bool) "mountain height" true (hi > 1500. && hi <= 2000.);
  let nonzero = Array.to_seq b |> Seq.filter (fun x -> x > 0.) |> Seq.length in
  Alcotest.(check bool)
    "mountain localized" true
    (nonzero > 0 && nonzero < m.n_cells / 4)

let test_total_height () =
  let m = Lazy.force ico in
  let model = Model.init Williamson.Tc5 m in
  let th = Model.total_height model in
  Array.iteri
    (fun c x ->
      Alcotest.(check (float 1e-9)) "h + b" (model.state.h.(c) +. model.b.(c)) x)
    th

let test_recommended_dt_scales () =
  let coarse = Williamson.recommended_dt Williamson.Tc5 (Lazy.force ico) in
  let fine =
    Williamson.recommended_dt Williamson.Tc5 (Build.icosahedral ~level:4 ())
  in
  Alcotest.(check bool) "finer mesh, smaller dt" true (fine < coarse)

let test_planar_mesh_rejected () =
  Alcotest.(check bool)
    "williamson on plane raises" true
    (match Williamson.init Williamson.Tc2 (Lazy.force hex) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_tc2_rotated_steady () =
  (* The 45-degree-rotated steady flow runs across the pentagons and
     both poles; regression guard for the south-pole cell whose edge
     ordering was once built with a left-handed fallback basis,
     silently corrupting its TRiSK weights. *)
  let m = Lazy.force ico in
  let model = Model.init Williamson.Tc2_rotated m in
  let h0 = Array.copy model.state.h in
  Model.run model ~steps:10;
  let drift = Stats.max_abs_diff h0 model.state.h in
  Alcotest.(check bool)
    (Format.sprintf "rotated TC2 height drift %g m < 15 m" drift)
    true (drift < 15.)

let test_coriolis_energy_neutral () =
  (* The TRiSK perp-flux with the symmetric PV average does no work:
     sum_e A_e u_e (q Fperp)_e = 0 (paper's scheme inherits this from
     Ringler et al. 2010).  Checked for a random state and a random
     edge PV field. *)
  let m = Lazy.force ico in
  let u = random_u m 30L and h = random_h m 31L in
  let r = Rng.create 32L in
  let pv_edge = Array.init m.n_edges (fun _ -> Rng.uniform r (-1e-6) 1e-6) in
  let h_edge = Array.make m.n_edges 0. in
  let d2 = Array.make m.n_cells 0. in
  Operators.d2fdx2 m ~h ~out:d2;
  Operators.h_edge m ~order:Config.Fourth ~h ~d2fdx2_cell:d2 ~out:h_edge;
  (* gravity = 0 and ke = 0 isolate the Coriolis term in tend_u. *)
  let tend = Array.make m.n_edges 0. in
  Operators.tend_u m ~gravity:0. ~h ~b:(Array.make m.n_cells 0.)
    ~ke:(Array.make m.n_cells 0.) ~h_edge ~u ~pv_edge ~out:tend;
  (* Energy norm: KE = sum A_e h_e u_e^2 / 2, so the Coriolis work is
     sum A_e (h_e u_e) tend_e = sum A_e F_e (q Fperp)_e, which the
     antisymmetric weights cancel pairwise. *)
  let work = ref 0. and scale = ref 0. in
  for e = 0 to m.n_edges - 1 do
    let a_e = 0.5 *. m.dc_edge.(e) *. m.dv_edge.(e) in
    work := !work +. (a_e *. h_edge.(e) *. u.(e) *. tend.(e));
    scale := !scale +. Float.abs (a_e *. h_edge.(e) *. u.(e) *. tend.(e))
  done;
  Alcotest.(check bool)
    (Format.sprintf "Coriolis work %.3e of scale %.3e" !work !scale)
    true
    (Float.abs !work < 1e-10 *. !scale)

(* --- extensions: tracers and del-4 -------------------------------------- *)

let run_with_tracers ?(config = Config.default) ~tracers ~steps () =
  let m = Lazy.force ico in
  let model = Model.init ~config ~tracers Williamson.Tc2 m in
  Model.run model ~steps;
  model

let test_constant_tracer_preserved () =
  (* Compatibility with continuity: a tracer that is 1 everywhere stays
     exactly 1 under any flow. *)
  let m = Lazy.force ico in
  List.iter
    (fun scheme ->
      let config = { Config.default with tracer_adv = scheme } in
      let model =
        run_with_tracers ~config
          ~tracers:[| Array.make m.n_cells 1. |]
          ~steps:5 ()
      in
      Array.iter
        (fun x ->
          Alcotest.(check bool) "still 1 to machine precision" true
            (Float.abs (x -. 1.) < 1e-12))
        model.state.tracers.(0))
    [ Config.Centered; Config.Upwind ]

let tracer_mass (m : Mesh.t) (state : Fields.state) k =
  let acc = ref 0. in
  for c = 0 to m.n_cells - 1 do
    acc := !acc +. (state.h.(c) *. state.tracers.(k).(c) *. m.area_cell.(c))
  done;
  !acc

let test_tracer_mass_conserved () =
  let m = Lazy.force ico in
  let bell = Williamson.cosine_bell m in
  let model = Model.init ~tracers:[| bell |] Williamson.Tc2 m in
  let before = tracer_mass m model.state 0 in
  Model.run model ~steps:8;
  let after = tracer_mass m model.state 0 in
  Alcotest.(check bool)
    (Format.sprintf "flux-form transport conserves h*tracer (%.2e)"
       (Stats.rel_diff before after))
    true
    (Stats.rel_diff before after < 1e-13)

let test_upwind_monotone () =
  (* First-order upwinding must not create new extrema. *)
  let m = Lazy.force ico in
  let config = { Config.default with tracer_adv = Config.Upwind } in
  let bell = Williamson.cosine_bell m in
  let hi0 = Array.fold_left Float.max 0. bell in
  let model = run_with_tracers ~config ~tracers:[| bell |] ~steps:10 () in
  let lo = Array.fold_left Float.min infinity model.state.tracers.(0) in
  let hi = Array.fold_left Float.max 0. model.state.tracers.(0) in
  Alcotest.(check bool)
    (Format.sprintf "range [%.2e, %.3f] within [0, %.3f]" lo hi hi0)
    true
    (lo > -1e-10 && hi < hi0 +. 1e-10)

let test_bell_advects_eastward () =
  (* Under TC2's eastward flow, the bell's longitude center of mass
     must move east by roughly u0 * t / a. *)
  let m = Lazy.force ico in
  let bell = Williamson.cosine_bell m in
  let model = Model.init ~tracers:[| bell |] Williamson.Tc2 m in
  let center state =
    let sx = ref 0. and sy = ref 0. and w = ref 0. in
    Array.iteri
      (fun c x ->
        sx := !sx +. (x *. cos m.lon_cell.(c));
        sy := !sy +. (x *. sin m.lon_cell.(c));
        w := !w +. x)
      state;
    atan2 (!sy /. !w) (!sx /. !w)
  in
  let lon0 = center model.state.tracers.(0) in
  Model.run model ~steps:20;
  let lon1 = center model.state.tracers.(0) in
  let moved =
    let d = lon1 -. lon0 in
    if d < -.Float.pi then d +. (2. *. Float.pi) else d
  in
  let a = Sphere.earth_radius in
  let u0 = 2. *. Float.pi *. a /. (12. *. 86400.) in
  let expect = u0 *. Model.time model /. a in
  Alcotest.(check bool)
    (Format.sprintf "moved %.4f rad east, expect ~%.4f" moved expect)
    true
    (moved > 0.5 *. expect && moved < 1.5 *. expect)

let test_tracer_engines_agree () =
  let m = Lazy.force ico in
  let bell = Williamson.cosine_bell m in
  let m1 = Model.init ~tracers:[| bell |] Williamson.Tc5 m in
  let m2 =
    Model.init ~engine:Timestep.original ~tracers:[| bell |] Williamson.Tc5 m
  in
  Model.run m1 ~steps:3;
  Model.run m2 ~steps:3;
  Alcotest.(check bool) "scatter = gather for tracer transport" true
    (Stats.max_abs_diff m1.state.tracers.(0) m2.state.tracers.(0) < 1e-12)

let test_del4_zero_is_noop () =
  let m = Lazy.force ico in
  let a = Model.init Williamson.Tc6 m in
  let b =
    Model.init ~config:{ Config.default with visc4 = 0. } Williamson.Tc6 m
  in
  Model.run a ~steps:2;
  Model.run b ~steps:2;
  Alcotest.(check bool) "identical" true (a.state.u = b.state.u)

let test_del4_damps_noise () =
  let m = Lazy.force ico in
  let r = Rng.create 21L in
  let state, b = Williamson.init Williamson.Tc5 m in
  for e = 0 to m.n_edges - 1 do
    state.u.(e) <- state.u.(e) +. Rng.uniform r (-5.) 5.
  done;
  let dx = Mesh.mean_spacing m in
  let config = { Config.default with visc4 = 1e-3 *. (dx ** 4.) /. 86400. } in
  let noisy = Model.of_state ~config ~dt:60. ~b m state in
  let control = Model.of_state ~dt:60. ~b m state in
  let ke model =
    let out = Array.make m.n_cells 0. in
    Operators.kinetic_energy m ~u:model.Model.state.Fields.u ~out;
    Array.fold_left ( +. ) 0. out
  in
  Model.run noisy ~steps:5;
  Model.run control ~steps:5;
  Alcotest.(check bool) "del4 dissipates the noise" true
    (ke noisy < ke control)

let test_profile_measures_all_kernels () =
  let m = Lazy.force ico in
  let model = Model.init Williamson.Tc5 m in
  let profile = Profile.measure model ~steps:2 in
  Alcotest.(check int) "one entry per kernel"
    (List.length Timestep.all_kernels)
    (List.length profile);
  Alcotest.(check bool) "total positive" true (Profile.total profile > 0.);
  (* The tendency and diagnostics kernels dominate, as the paper's
     profiling assumed when assigning them to the accelerator. *)
  (match Profile.ranking profile with
  | (heaviest, _) :: _ ->
      Alcotest.(check bool) "heavy kernel is tend or diagnostics" true
        (heaviest = Timestep.Compute_tend
        || heaviest = Timestep.Compute_solve_diagnostics)
  | [] -> Alcotest.fail "empty profile");
  Alcotest.(check bool) "report renders" true
    (String.length (Profile.to_string profile) > 50);
  (* The engine is restored afterwards. *)
  Alcotest.(check bool) "engine restored" true model.engine.Timestep.gather

let test_profile_restores_engine_on_raise () =
  (* Regression: a raising step must not leave the observed wrapper
     installed.  An engine whose own instrument hook raises drives the
     failure, which also proves Profile composes with existing hooks
     instead of replacing them. *)
  let m = Lazy.force ico in
  let boom =
    Timestep.with_instrument Timestep.refactored (fun _ _ -> failwith "boom")
  in
  let model = Model.init ~engine:boom Williamson.Tc5 m in
  Alcotest.check_raises "hook failure escapes measure" (Failure "boom")
    (fun () -> ignore (Profile.measure model ~steps:1));
  Alcotest.(check bool) "original engine back in place" true
    (model.Model.engine == boom)

(* --- Galewsky (2004) barotropic instability -------------------------------- *)

let test_galewsky_height_range () =
  (* Published values: depth spans ~9,000 to ~10,150 m with a 10 km
     global mean. *)
  let m = Lazy.force ico in
  let state, _ = Williamson.init Williamson.Galewsky_balanced m in
  let lo, hi = Stats.min_max state.Fields.h in
  Alcotest.(check bool)
    (Format.sprintf "range [%.0f, %.0f]" lo hi)
    true
    (lo > 8900. && lo < 9200. && hi > 10100. && hi < 10250.);
  let mean = ref 0. and area = ref 0. in
  Array.iteri
    (fun c h ->
      mean := !mean +. (h *. m.area_cell.(c));
      area := !area +. m.area_cell.(c))
    state.Fields.h;
  Alcotest.(check (float 1.)) "10 km mean depth" 10000. (!mean /. !area)

let test_galewsky_jet_confined () =
  (* The jet lives strictly between lat0 = pi/7 and pi/2 - pi/7. *)
  let m = Lazy.force ico in
  let state, _ = Williamson.init Williamson.Galewsky_balanced m in
  Array.iteri
    (fun e u ->
      if m.lat_edge.(e) < 0.3 || m.lat_edge.(e) > 1.35 then
        Alcotest.(check bool) "no flow outside the jet" true
          (Float.abs u < 1e-6))
    state.Fields.u

let test_galewsky_balanced_nearly_steady () =
  (* The jet is ~1500 km wide, so this needs the level-4 mesh; the
     level-3 fixture has barely 1.5 cells across it. *)
  let m = Build.icosahedral ~level:4 ~lloyd_iters:3 () in
  let model = Model.init Williamson.Galewsky_balanced m in
  let h0 = Array.copy model.state.h in
  Model.run model ~steps:10;
  let drift = Stats.max_abs_diff h0 model.state.h in
  Alcotest.(check bool)
    (Format.sprintf "drift %.1f m stays well under the 1100 m range" drift)
    true (drift < 60.)

let test_galewsky_perturbation () =
  let m = Lazy.force ico in
  let balanced, _ = Williamson.init Williamson.Galewsky_balanced m in
  let perturbed, _ = Williamson.init Williamson.Galewsky m in
  let dh = Stats.max_abs_diff balanced.Fields.h perturbed.Fields.h in
  Alcotest.(check bool)
    (Format.sprintf "perturbation amplitude %.1f m" dh)
    true
    (dh > 40. && dh <= 120.);
  (* Velocities identical: the perturbation is in the height only. *)
  Alcotest.(check bool) "u unchanged" true
    (balanced.Fields.u = perturbed.Fields.u);
  let model = Model.init Williamson.Galewsky m in
  let before = (Model.invariants model).Conservation.mass in
  Model.run model ~steps:5;
  Alcotest.(check bool) "mass conserved" true
    (Stats.rel_diff before (Model.invariants model).Conservation.mass < 1e-13)

(* --- alternative integrator and PV averaging ------------------------------ *)

let test_ssprk3_conserves_mass () =
  let m = Lazy.force ico in
  let config = { Config.default with integrator = Config.Ssprk3 } in
  let model = Model.init ~config Williamson.Tc5 m in
  let before = (Model.invariants model).Conservation.mass in
  Model.run model ~steps:10;
  Alcotest.(check bool) "mass exact" true
    (Stats.rel_diff before (Model.invariants model).Conservation.mass < 1e-13)

let test_ssprk3_matches_rk4_at_small_dt () =
  let m = Lazy.force ico in
  let dt = 100. in
  let rk4 = Model.init ~dt Williamson.Tc6 m in
  let ssp =
    Model.init ~config:{ Config.default with integrator = Config.Ssprk3 } ~dt
      Williamson.Tc6 m
  in
  Model.run rk4 ~steps:10;
  Model.run ssp ~steps:10;
  let scale = Stats.l2_norm rk4.state.h in
  Alcotest.(check bool) "close at small dt" true
    (Stats.l2_diff rk4.state.h ssp.state.h /. scale < 1e-7)

let test_ssprk3_third_order () =
  let m = Lazy.force ico in
  let config =
    { Config.default with integrator = Config.Ssprk3; apvm_factor = 0. }
  in
  let horizon = 3600. in
  let run dt =
    let model = Model.init ~config ~dt Williamson.Tc6 m in
    Model.run model ~steps:(int_of_float (horizon /. dt));
    model.state
  in
  let reference = run 112.5 in
  let coarse = run 900. and fine = run 450. in
  let ratio =
    Stats.l2_diff coarse.h reference.h /. Stats.l2_diff fine.h reference.h
  in
  (* Third order: halving dt shrinks the error ~8x; accept > 5x. *)
  Alcotest.(check bool)
    (Format.sprintf "order >= ~2.3 (ratio %.1f)" ratio)
    true (ratio > 5.)

let test_ssprk3_tracers_conserved () =
  let m = Lazy.force ico in
  let config = { Config.default with integrator = Config.Ssprk3 } in
  let bell = Williamson.cosine_bell m in
  let model = Model.init ~config ~tracers:[| bell |] Williamson.Tc2 m in
  let before = tracer_mass m model.state 0 in
  Model.run model ~steps:6;
  Alcotest.(check bool) "tracer mass exact under SSP-RK3" true
    (Stats.rel_diff before (tracer_mass m model.state 0) < 1e-13)

let test_pv_average_ablation () =
  (* Only the symmetric average keeps the Coriolis force exactly
     energy-neutral. *)
  let m = Lazy.force ico in
  let u = random_u m 40L and h = random_h m 41L in
  let r = Rng.create 42L in
  let pv_edge = Array.init m.n_edges (fun _ -> Rng.uniform r (-1e-6) 1e-6) in
  let h_edge = Array.make m.n_edges 0. in
  let d2 = Array.make m.n_cells 0. in
  Operators.d2fdx2 m ~h ~out:d2;
  Operators.h_edge m ~order:Config.Fourth ~h ~d2fdx2_cell:d2 ~out:h_edge;
  let work pv_average =
    let tend = Array.make m.n_edges 0. in
    Operators.tend_u ~pv_average m ~gravity:0. ~h ~b:(Array.make m.n_cells 0.)
      ~ke:(Array.make m.n_cells 0.) ~h_edge ~u ~pv_edge ~out:tend;
    let acc = ref 0. and scale = ref 0. in
    for e = 0 to m.n_edges - 1 do
      let a_e = 0.5 *. m.dc_edge.(e) *. m.dv_edge.(e) in
      acc := !acc +. (a_e *. h_edge.(e) *. u.(e) *. tend.(e));
      scale := !scale +. Float.abs (a_e *. h_edge.(e) *. u.(e) *. tend.(e))
    done;
    Float.abs !acc /. !scale
  in
  Alcotest.(check bool) "symmetric neutral" true
    (work Config.Symmetric < 1e-10);
  Alcotest.(check bool) "edge-only not neutral" true
    (work Config.Edge_only > 1e-6)

(* --- checkpoint / restart ------------------------------------------------ *)

let test_state_io_roundtrip () =
  let m = Lazy.force ico in
  let bell = Williamson.cosine_bell m in
  let model = Model.init ~tracers:[| bell |] Williamson.Tc5 m in
  Model.run model ~steps:3;
  let s = model.state in
  let s' = State_io.of_string (State_io.to_string s) in
  Alcotest.(check bool) "bitwise roundtrip" true
    (s.Fields.h = s'.Fields.h && s.Fields.u = s'.Fields.u
    && s.Fields.tracers = s'.Fields.tracers)

let test_restart_continues_exactly () =
  (* run 6 steps straight vs 3 steps, checkpoint, restart, 3 more. *)
  let m = Lazy.force ico in
  let straight = Model.init Williamson.Tc5 m in
  Model.run straight ~steps:6;
  let first = Model.init Williamson.Tc5 m in
  Model.run first ~steps:3;
  let checkpoint = State_io.to_string first.state in
  let resumed =
    Model.of_state ~dt:first.dt ~b:first.b m (State_io.of_string checkpoint)
  in
  Model.run resumed ~steps:3;
  Alcotest.(check bool) "restart is exact" true
    (straight.state.Fields.h = resumed.state.Fields.h
    && straight.state.Fields.u = resumed.state.Fields.u)

let test_state_io_rejects_garbage () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) "rejected" true
        (match State_io.of_string bad with
        | _ -> false
        | exception Failure _ -> true))
    [ ""; "mpas-state 9"; "mpas-state 1
counts 2 2 0
h 1 x" ]

let test_state_io_file_roundtrip_both_families () =
  (* save -> load through an actual file must be bit-identical, on the
     sphere and on the doubly periodic plane, tracers included. *)
  let states_equal (a : Fields.state) (b : Fields.state) =
    a.Fields.h = b.Fields.h && a.Fields.u = b.Fields.u
    && a.Fields.tracers = b.Fields.tracers
  in
  List.iter
    (fun (family, m) ->
      let r = Rng.create 77L in
      let s =
        {
          Fields.h = Array.init m.Mesh.n_cells (fun _ -> Rng.uniform r 900. 1100.);
          u = Array.init m.Mesh.n_edges (fun _ -> Rng.uniform r (-10.) 10.);
          tracers =
            Array.init 2 (fun _ ->
                Array.init m.Mesh.n_cells (fun _ -> Rng.uniform r 0. 1.));
        }
      in
      let path = Filename.temp_file "state" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          State_io.save s path;
          Alcotest.(check bool)
            (family ^ " file roundtrip bit-identical")
            true
            (states_equal s (State_io.load path))))
    [ ("sphere", Lazy.force ico); ("planar hex", Lazy.force hex) ]

(* --- CSR fast paths vs ragged reference ---------------------------------- *)

(* Every kernel with a CSR fast path must reproduce its ragged
   predecessor bit for bit: the flat walk evaluates the same
   floating-point expressions in the same order, so even -0.0 and ulp
   differences are forbidden. *)

type runner = ?pool:Mpas_par.Pool.t -> ?on:int array -> float array -> unit

let csr_kernel_pairs (m : Mesh.t) seed : (string * int * runner * runner) list =
  let u = random_u m seed in
  let h = random_h m (Int64.add seed 100L) in
  let r = Rng.create (Int64.add seed 200L) in
  let pv_vertex = Array.init m.n_vertices (fun _ -> Rng.uniform r (-1e-6) 1e-6) in
  let pv_edge = Array.init m.n_edges (fun _ -> Rng.uniform r (-1e-6) 1e-6) in
  let tracer = Array.init m.n_cells (fun _ -> Rng.uniform r 0. 1.) in
  let btopo = Array.init m.n_cells (fun _ -> Rng.uniform r 0. 100.) in
  let h_edge = Array.make m.n_edges 0. in
  let d2 = Array.make m.n_cells 0. in
  Operators.d2fdx2 m ~h ~out:d2;
  Operators.h_edge m ~order:Config.Fourth ~h ~d2fdx2_cell:d2 ~out:h_edge;
  let ke = Array.make m.n_cells 0. in
  Operators.kinetic_energy m ~u ~out:ke;
  let div = Array.make m.n_cells 0. in
  Operators.divergence m ~u ~out:div;
  let vort = Array.make m.n_vertices 0. in
  Operators.vorticity m ~u ~out:vort;
  let tr_edge = Array.make m.n_edges 0. in
  Operators.tracer_edge m ~scheme:Config.Centered ~tracer ~u ~out:tr_edge;
  [
    ( "A2 kinetic_energy", m.n_cells,
      (fun ?pool ?on out -> Operators.kinetic_energy ?pool ?on m ~u ~out),
      fun ?pool ?on out -> Operators.Ragged.kinetic_energy ?pool ?on m ~u ~out
    );
    ( "A3 divergence", m.n_cells,
      (fun ?pool ?on out -> Operators.divergence ?pool ?on m ~u ~out),
      fun ?pool ?on out -> Operators.Ragged.divergence ?pool ?on m ~u ~out );
    ( "D1 vorticity", m.n_vertices,
      (fun ?pool ?on out -> Operators.vorticity ?pool ?on m ~u ~out),
      fun ?pool ?on out -> Operators.Ragged.vorticity ?pool ?on m ~u ~out );
    ( "C2 h_vertex", m.n_vertices,
      (fun ?pool ?on out -> Operators.h_vertex ?pool ?on m ~h ~out),
      fun ?pool ?on out -> Operators.Ragged.h_vertex ?pool ?on m ~h ~out );
    ( "E pv_cell", m.n_cells,
      (fun ?pool ?on out -> Operators.pv_cell ?pool ?on m ~pv_vertex ~out),
      fun ?pool ?on out -> Operators.Ragged.pv_cell ?pool ?on m ~pv_vertex ~out
    );
    ( "G tangential_velocity", m.n_edges,
      (fun ?pool ?on out -> Operators.tangential_velocity ?pool ?on m ~u ~out),
      fun ?pool ?on out ->
        Operators.Ragged.tangential_velocity ?pool ?on m ~u ~out );
    ( "A1 tend_h", m.n_cells,
      (fun ?pool ?on out -> Operators.tend_h ?pool ?on m ~h_edge ~u ~out),
      fun ?pool ?on out -> Operators.Ragged.tend_h ?pool ?on m ~h_edge ~u ~out
    );
    ( "B1 tend_u symmetric", m.n_edges,
      (fun ?pool ?on out ->
        Operators.tend_u ?pool ?on m ~gravity:9.80616 ~h ~b:btopo ~ke ~h_edge
          ~u ~pv_edge ~out),
      fun ?pool ?on out ->
        Operators.Ragged.tend_u ?pool ?on m ~gravity:9.80616 ~h ~b:btopo ~ke
          ~h_edge ~u ~pv_edge ~out );
    ( "B1 tend_u edge-only", m.n_edges,
      (fun ?pool ?on out ->
        Operators.tend_u ?pool ?on ~pv_average:Config.Edge_only m
          ~gravity:9.80616 ~h ~b:btopo ~ke ~h_edge ~u ~pv_edge ~out),
      fun ?pool ?on out ->
        Operators.Ragged.tend_u ?pool ?on ~pv_average:Config.Edge_only m
          ~gravity:9.80616 ~h ~b:btopo ~ke ~h_edge ~u ~pv_edge ~out );
    ( "tracer_edge centered", m.n_edges,
      (fun ?pool ?on out ->
        Operators.tracer_edge ?pool ?on m ~scheme:Config.Centered ~tracer ~u
          ~out),
      fun ?pool ?on out ->
        Operators.Ragged.tracer_edge ?pool ?on m ~scheme:Config.Centered
          ~tracer ~u ~out );
    ( "tracer_edge upwind", m.n_edges,
      (fun ?pool ?on out ->
        Operators.tracer_edge ?pool ?on m ~scheme:Config.Upwind ~tracer ~u
          ~out),
      fun ?pool ?on out ->
        Operators.Ragged.tracer_edge ?pool ?on m ~scheme:Config.Upwind ~tracer
          ~u ~out );
    ( "tend_tracer", m.n_cells,
      (fun ?pool ?on out ->
        Operators.tend_tracer ?pool ?on m ~h_edge ~u ~tracer_edge:tr_edge ~out),
      fun ?pool ?on out ->
        Operators.Ragged.tend_tracer ?pool ?on m ~h_edge ~u
          ~tracer_edge:tr_edge ~out );
    ( "velocity_laplacian", m.n_edges,
      (fun ?pool ?on out ->
        Operators.velocity_laplacian ?pool ?on m ~divergence:div
          ~vorticity:vort ~out),
      fun ?pool ?on out ->
        Operators.Ragged.velocity_laplacian ?pool ?on m ~divergence:div
          ~vorticity:vort ~out );
  ]

let bitwise_equal a b =
  Array.length a = Array.length b
  && Array.for_all Fun.id
       (Array.init (Array.length a) (fun i -> Float.equal a.(i) b.(i)))

(* [subset] exercises the [?on] dispatch: outputs start as NaN so the
   comparison also proves both forms write exactly the listed indices
   (Float.equal nan nan holds). *)
let check_csr_pairs ?pool ~subset label m seed =
  List.iter
    (fun (name, n, (csr_run : runner), (ragged_run : runner)) ->
      let on =
        if subset then Some (Array.init ((n / 2) + 1) (fun i -> 2 * i mod n))
        else None
      in
      let a = Array.make n nan and b = Array.make n nan in
      csr_run ?pool ?on a;
      ragged_run ?pool ?on b;
      Alcotest.(check bool) (label ^ " " ^ name ^ " bitwise") true
        (bitwise_equal a b))
    (csr_kernel_pairs m seed)

let test_csr_bitwise_serial () =
  check_csr_pairs ~subset:false "ico" (Lazy.force ico) 50L;
  check_csr_pairs ~subset:false "hex" (Lazy.force hex) 51L

let test_csr_bitwise_pool () =
  Mpas_par.Pool.with_pool ~n_domains:3 (fun pool ->
      check_csr_pairs ~pool ~subset:false "ico" (Lazy.force ico) 52L;
      check_csr_pairs ~pool ~subset:false "hex" (Lazy.force hex) 53L)

let test_csr_bitwise_subset () =
  check_csr_pairs ~subset:true "ico" (Lazy.force ico) 54L;
  check_csr_pairs ~subset:true "hex" (Lazy.force hex) 55L;
  Mpas_par.Pool.with_pool ~n_domains:2 (fun pool ->
      check_csr_pairs ~pool ~subset:true "ico" (Lazy.force ico) 56L)

(* --- properties -------------------------------------------------------------- *)

let prop_csr_matches_ragged =
  QCheck.Test.make ~name:"CSR fast paths bit-identical to ragged forms"
    ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let seed = Int64.of_int seed in
      List.for_all
        (fun (_, n, (csr_run : runner), (ragged_run : runner)) ->
          let a = Array.make n nan and b = Array.make n nan in
          csr_run a;
          ragged_run b;
          bitwise_equal a b)
        (csr_kernel_pairs (Lazy.force ico) seed
        @ csr_kernel_pairs (Lazy.force hex) (Int64.add seed 7L)))

let prop_refactoring_equivalence =
  QCheck.Test.make ~name:"scatter = gather for random velocity fields"
    ~count:25 QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = Lazy.force ico in
      let u = random_u m (Int64.of_int seed) in
      let s = Array.make m.n_cells 0. and g = Array.make m.n_cells 0. in
      Operators.divergence_scatter m ~u ~out:s;
      Operators.divergence m ~u ~out:g;
      Stats.max_abs_diff s g < 1e-12)

let prop_ke_nonnegative =
  QCheck.Test.make ~name:"kinetic energy non-negative" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = Lazy.force ico in
      let u = random_u m (Int64.of_int seed) in
      let ke = Array.make m.n_cells 0. in
      Operators.kinetic_energy m ~u ~out:ke;
      Array.for_all (fun x -> x >= 0.) ke)

let prop_divergence_of_any_field_integrates_to_zero =
  QCheck.Test.make ~name:"global divergence integral is zero" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = Lazy.force ico in
      let u = random_u m (Int64.of_int seed) in
      let d = Array.make m.n_cells 0. in
      Operators.divergence m ~u ~out:d;
      let total = ref 0. and scale = ref 0. in
      for c = 0 to m.n_cells - 1 do
        total := !total +. (d.(c) *. m.area_cell.(c));
        scale := !scale +. (Float.abs d.(c) *. m.area_cell.(c))
      done;
      Float.abs !total < 1e-9 *. !scale)

let prop_vorticity_of_gradient_flow_zero =
  QCheck.Test.make ~name:"curl of gradient is zero" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = Lazy.force ico in
      let phi = random_h m (Int64.of_int seed) in
      let u =
        Array.init m.n_edges (fun e ->
            let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
            (phi.(c2) -. phi.(c1)) /. m.dc_edge.(e))
      in
      let vort = Array.make m.n_vertices 0. in
      Operators.vorticity m ~u ~out:vort;
      (* Discrete curl(grad) = 0 exactly (telescoping circulation). *)
      Array.for_all (fun z -> Float.abs z < 1e-10) vort)

let () =
  Alcotest.run "swe"
    [
      ( "refactoring equivalence",
        [
          Alcotest.test_case "divergence" `Quick test_equiv_divergence;
          Alcotest.test_case "kinetic energy" `Quick test_equiv_kinetic_energy;
          Alcotest.test_case "vorticity" `Quick test_equiv_vorticity;
          Alcotest.test_case "d2fdx2" `Quick test_equiv_d2fdx2;
          Alcotest.test_case "pv_cell" `Quick test_equiv_pv_cell;
          Alcotest.test_case "tend_h" `Quick test_equiv_tend_h;
          Alcotest.test_case "parallel bitwise" `Quick
            test_parallel_matches_serial_gather;
        ] );
      ( "csr layout",
        [
          Alcotest.test_case "serial bitwise" `Quick test_csr_bitwise_serial;
          Alcotest.test_case "pool bitwise" `Quick test_csr_bitwise_pool;
          Alcotest.test_case "on-subset bitwise" `Quick
            test_csr_bitwise_subset;
        ] );
      ( "exact hex answers",
        [
          Alcotest.test_case "divergence" `Quick test_hex_divergence_uniform_flow;
          Alcotest.test_case "kinetic energy" `Quick test_hex_ke_uniform_flow;
          Alcotest.test_case "h_edge" `Quick test_hex_h_edge_constant_field;
          Alcotest.test_case "grad pv" `Quick test_hex_grad_pv_constant;
          Alcotest.test_case "geostrophic balance" `Quick
            test_geostrophic_balance_hex;
        ] );
      ( "local kernels",
        [
          Alcotest.test_case "boundary" `Quick test_enforce_boundary_edge;
          Alcotest.test_case "substep/accumulate" `Quick
            test_next_substep_and_accumulate;
          Alcotest.test_case "no-op dissipation" `Quick
            test_dissipation_zero_visc_is_noop;
          Alcotest.test_case "dissipation sign" `Quick test_dissipation_smooths;
        ] );
      ( "reconstruction",
        [
          Alcotest.test_case "uniform hex" `Quick test_reconstruct_uniform_flow_hex;
          Alcotest.test_case "solid body sphere" `Quick
            test_reconstruct_solid_body_sphere;
        ] );
      ( "model",
        [
          Alcotest.test_case "TC2 steady" `Quick test_tc2_steady;
          Alcotest.test_case "mass conservation" `Quick test_mass_conservation;
          Alcotest.test_case "energy/enstrophy" `Quick
            test_energy_enstrophy_drift_small;
          Alcotest.test_case "engines agree" `Quick test_engines_agree;
          Alcotest.test_case "parallel engine" `Quick test_parallel_engine_agrees;
          Alcotest.test_case "RK4 convergence" `Slow test_rk4_convergence;
          Alcotest.test_case "TC5 mountain" `Quick test_tc5_mountain_present;
          Alcotest.test_case "total height" `Quick test_total_height;
          Alcotest.test_case "dt heuristic" `Quick test_recommended_dt_scales;
          Alcotest.test_case "plane rejected" `Quick test_planar_mesh_rejected;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "constant tracer" `Quick
            test_constant_tracer_preserved;
          Alcotest.test_case "tracer mass" `Quick test_tracer_mass_conserved;
          Alcotest.test_case "upwind monotone" `Quick test_upwind_monotone;
          Alcotest.test_case "bell advects" `Quick test_bell_advects_eastward;
          Alcotest.test_case "tracer engines" `Quick test_tracer_engines_agree;
          Alcotest.test_case "del4 noop" `Quick test_del4_zero_is_noop;
          Alcotest.test_case "del4 damps" `Quick test_del4_damps_noise;
          Alcotest.test_case "profiling" `Quick test_profile_measures_all_kernels;
          Alcotest.test_case "profiling restores on raise" `Quick
            test_profile_restores_engine_on_raise;
        ] );
      ( "conservation theory",
        [
          Alcotest.test_case "coriolis energy-neutral" `Quick
            test_coriolis_energy_neutral;
          Alcotest.test_case "rotated TC2 steady" `Quick
            test_tc2_rotated_steady;
        ] );
      ( "galewsky",
        [
          Alcotest.test_case "height range" `Quick test_galewsky_height_range;
          Alcotest.test_case "jet confined" `Quick test_galewsky_jet_confined;
          Alcotest.test_case "balanced steady" `Slow
            test_galewsky_balanced_nearly_steady;
          Alcotest.test_case "perturbation" `Quick test_galewsky_perturbation;
        ] );
      ( "integrators",
        [
          Alcotest.test_case "ssprk3 mass" `Quick test_ssprk3_conserves_mass;
          Alcotest.test_case "ssprk3 vs rk4" `Quick
            test_ssprk3_matches_rk4_at_small_dt;
          Alcotest.test_case "ssprk3 order" `Slow test_ssprk3_third_order;
          Alcotest.test_case "ssprk3 tracers" `Quick
            test_ssprk3_tracers_conserved;
          Alcotest.test_case "pv averaging" `Quick test_pv_average_ablation;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_state_io_roundtrip;
          Alcotest.test_case "exact restart" `Quick
            test_restart_continues_exactly;
          Alcotest.test_case "garbage" `Quick test_state_io_rejects_garbage;
          Alcotest.test_case "file roundtrip both families" `Quick
            test_state_io_file_roundtrip_both_families;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_csr_matches_ragged;
            prop_refactoring_equivalence;
            prop_ke_nonnegative;
            prop_divergence_of_any_field_integrates_to_zero;
            prop_vorticity_of_gradient_flow_zero;
          ] );
    ]
