open Mpas_par

let test_sequential_pool () =
  Pool.with_pool ~n_domains:1 (fun p ->
      Alcotest.(check int) "size" 1 (Pool.size p);
      let a = Array.make 100 0 in
      Pool.parallel_for p ~lo:0 ~hi:100 (fun i -> a.(i) <- i);
      Alcotest.(check int) "last" 99 a.(99))

let test_parallel_for_covers_range () =
  Pool.with_pool ~n_domains:4 (fun p ->
      let n = 10_000 in
      let a = Array.make n 0 in
      Pool.parallel_for p ~lo:0 ~hi:n (fun i -> a.(i) <- a.(i) + 1);
      Alcotest.(check bool)
        "each index exactly once" true
        (Array.for_all (fun x -> x = 1) a))

let test_parallel_for_partial_range () =
  Pool.with_pool ~n_domains:3 (fun p ->
      let a = Array.make 100 0 in
      Pool.parallel_for p ~lo:10 ~hi:20 (fun i -> a.(i) <- 1);
      Alcotest.(check int) "only [10,20) touched" 10
        (Array.fold_left ( + ) 0 a);
      Alcotest.(check int) "untouched below" 0 a.(9);
      Alcotest.(check int) "untouched above" 0 a.(20))

let test_parallel_for_empty_range () =
  Pool.with_pool ~n_domains:2 (fun p ->
      let hit = ref false in
      Pool.parallel_for p ~lo:5 ~hi:5 (fun _ -> hit := true);
      Pool.parallel_for p ~lo:5 ~hi:3 (fun _ -> hit := true);
      Alcotest.(check bool) "no iteration" false !hit)

let test_parallel_for_chunks () =
  Pool.with_pool ~n_domains:4 (fun p ->
      let n = 1000 in
      let a = Array.make n 0 in
      Pool.parallel_for_chunks p ~lo:0 ~hi:n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            a.(i) <- a.(i) + 1
          done);
      Alcotest.(check bool)
        "chunks tile the range" true
        (Array.for_all (fun x -> x = 1) a))

let test_parallel_sum_deterministic () =
  Pool.with_pool ~n_domains:4 (fun p ->
      let f i = sin (float_of_int i) /. 7.3 in
      let s1 = Pool.parallel_sum p ~lo:0 ~hi:100_000 f in
      let s2 = Pool.parallel_sum p ~lo:0 ~hi:100_000 f in
      (* Determinism must be exact, not approximate. *)
      Alcotest.(check bool) "bitwise equal" true (Float.equal s1 s2))

let test_parallel_sum_matches_sequential () =
  let f i = float_of_int (i * i) in
  let seq = ref 0. in
  for i = 0 to 999 do
    seq := !seq +. f i
  done;
  Pool.with_pool ~n_domains:4 (fun p ->
      let par = Pool.parallel_sum p ~lo:0 ~hi:1000 f in
      Alcotest.(check (float 1e-6)) "same sum" !seq par)

let test_reuse_many_times () =
  (* Exercises the generation protocol: many small loops in a row. *)
  Pool.with_pool ~n_domains:4 (fun p ->
      let acc = Atomic.make 0 in
      for _ = 1 to 200 do
        Pool.parallel_for p ~lo:0 ~hi:64 (fun _ -> Atomic.incr acc)
      done;
      Alcotest.(check int) "all iterations ran" (200 * 64) (Atomic.get acc))

let test_create_rejects_zero () =
  Alcotest.(check bool)
    "n_domains 0 raises" true
    (match Pool.create ~n_domains:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_with_pool_shuts_down_on_exn () =
  (* with_pool must not leak domains when the body raises. *)
  Alcotest.(check bool)
    "exception propagates" true
    (match Pool.with_pool ~n_domains:3 (fun _ -> failwith "boom") with
    | _ -> false
    | exception Failure _ -> true)

let prop_sum_equals_closed_form =
  QCheck.Test.make ~name:"parallel_sum of identity" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 0 5000))
    (fun (domains, n) ->
      Pool.with_pool ~n_domains:domains (fun p ->
          let s = Pool.parallel_sum p ~lo:0 ~hi:n float_of_int in
          Float.abs (s -. (float_of_int (n * (n - 1)) /. 2.)) < 1e-6))

(* --- work-stealing deque ------------------------------------------------ *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  Alcotest.(check (option int)) "empty pop" None (Deque.pop_bottom d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal_top d);
  List.iter (Deque.push_bottom d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "size" 4 (Deque.size d);
  (* Owner pops the youngest... *)
  Alcotest.(check (option int)) "owner LIFO" (Some 4) (Deque.pop_bottom d);
  (* ...thieves take the oldest. *)
  Alcotest.(check (option int)) "thief FIFO" (Some 1) (Deque.steal_top d);
  Alcotest.(check (option int)) "thief FIFO again" (Some 2) (Deque.steal_top d);
  Alcotest.(check (option int)) "owner gets the rest" (Some 3)
    (Deque.pop_bottom d);
  Alcotest.(check (option int)) "drained" None (Deque.pop_bottom d);
  (* Growth past the initial capacity keeps order. *)
  for i = 0 to 99 do Deque.push_bottom d i done;
  Alcotest.(check (option int)) "oldest after growth" (Some 0)
    (Deque.steal_top d);
  Alcotest.(check (option int)) "youngest after growth" (Some 99)
    (Deque.pop_bottom d);
  Alcotest.(check int) "size after growth" 98 (Deque.size d)

let test_deque_concurrent_steal () =
  (* One owner domain pushing and popping, three thieves stealing: every
     pushed element must be taken exactly once, none invented. *)
  Pool.with_pool ~n_domains:4 (fun p ->
      let n = 20_000 in
      let d = Deque.create () in
      let taken = Array.make n (Atomic.make 0) in
      Array.iteri (fun i _ -> taken.(i) <- Atomic.make 0) taken;
      let pushed = Atomic.make 0 in
      Pool.run_team p (fun ~lane ->
          if lane = 0 then begin
            for i = 0 to n - 1 do
              Deque.push_bottom d i;
              Atomic.incr pushed;
              if i land 3 = 0 then
                match Deque.pop_bottom d with
                | Some x -> Atomic.incr taken.(x)
                | None -> ()
            done
          end
          else begin
            (* Thieves keep stealing until the owner is done and the
               deque is dry. *)
            let rec go () =
              match Deque.steal_top d with
              | Some x ->
                  Atomic.incr taken.(x);
                  go ()
              | None -> if Atomic.get pushed < n then go ()
            in
            go ()
          end);
      (* Drain what survived the race between "pushed = n" and the last
         steal. *)
      let rec drain () =
        match Deque.pop_bottom d with
        | Some x ->
            Atomic.incr taken.(x);
            drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check bool)
        "each element taken exactly once" true
        (Array.for_all (fun a -> Atomic.get a = 1) taken);
      Alcotest.(check int) "deque empty" 0 (Deque.size d))

let prop_disjoint_writes_race_free =
  QCheck.Test.make ~name:"disjoint writes are race-free" ~count:10
    QCheck.(int_range 1 4)
    (fun domains ->
      Pool.with_pool ~n_domains:domains (fun p ->
          let n = 5000 in
          let a = Array.make n 0 in
          Pool.parallel_for p ~lo:0 ~hi:n (fun i -> a.(i) <- 3 * i);
          Array.for_all Fun.id (Array.init n (fun i -> a.(i) = 3 * i))))

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "sequential" `Quick test_sequential_pool;
          Alcotest.test_case "covers range" `Quick
            test_parallel_for_covers_range;
          Alcotest.test_case "partial range" `Quick
            test_parallel_for_partial_range;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
          Alcotest.test_case "chunks" `Quick test_parallel_for_chunks;
          Alcotest.test_case "sum deterministic" `Quick
            test_parallel_sum_deterministic;
          Alcotest.test_case "sum correct" `Quick
            test_parallel_sum_matches_sequential;
          Alcotest.test_case "reuse" `Quick test_reuse_many_times;
          Alcotest.test_case "bad size" `Quick test_create_rejects_zero;
          Alcotest.test_case "exn safety" `Quick
            test_with_pool_shuts_down_on_exn;
        ] );
      ( "deque",
        [
          Alcotest.test_case "owner LIFO, thief FIFO" `Quick
            test_deque_lifo_fifo;
          Alcotest.test_case "concurrent steal" `Quick
            test_deque_concurrent_steal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sum_equals_closed_form; prop_disjoint_writes_race_free ] );
    ]
