(* Benchmark harness.

   Two parts:
   1. regeneration of every table and figure of the paper's evaluation
      (Tables I-III, Figures 5-9) through Mpas_core.Experiments — the
      rows printed here are the reproduction artifacts recorded in
      EXPERIMENTS.md;
   2. Bechamel micro-benchmarks of the real kernels (one group per
      experiment, the refactoring forms of Algorithms 2-4, and the
      ragged-vs-CSR layout comparison), run on this machine.

   Modes:
   - no arguments: part 1 followed by part 2 and the
     measured-vs-roofline report;
   - [--json PATH]: micro-benchmarks only, dumped to PATH as a JSON
     object with a "benchmarks" array (name, ns/run, number of raw
     measurements) and a "measured_vs_roofline" section joining a
     measured serial profile with the Costmodel roofline per kernel
     (pretty-print a saved dump with [bin/obs_report]);
   - [--trace FILE]: run one observed RK-4 step (domain pool engine)
     plus one simulated hybrid schedule and write the spans as Chrome
     trace_event JSON to FILE (load in chrome://tracing);
   - [--smoke]: one iteration of every benchmark closure, no timing —
     wired to the [bench-smoke] dune alias as a cheap liveness check. *)

open Bechamel
open Toolkit

(* --- part 1: the paper's tables and figures ------------------------------ *)

let regenerate_experiments () =
  print_endline "=== Paper evaluation artifacts (see EXPERIMENTS.md) ===\n";
  List.iter Mpas_core.Report.print
    (Mpas_core.Experiments.all ~fig5_level:4 ~fig5_hours:6. ())

(* --- part 2: micro-benchmarks -------------------------------------------- *)

let mesh = lazy (Mpas_mesh.Build.icosahedral ~level:4 ~lloyd_iters:2 ())

(* Lane pool shared by the task-runtime benches, created on first use
   and shut down at exit (live worker domains would keep the process
   from terminating). *)
let bench_pool = lazy (Mpas_par.Pool.create ~n_domains:4)

let () =
  at_exit (fun () ->
      if Lazy.is_val bench_pool then
        Mpas_par.Pool.shutdown (Lazy.force bench_pool))

(* Every micro-benchmark as (group, name, closure); the same list feeds
   the Bechamel run, the JSON dump, and the smoke mode. *)
let bench_cases () =
  let open Mpas_swe in
  let m = Lazy.force mesh in
  let rng = Mpas_numerics.Rng.create 11L in
  let x = Array.init m.n_edges (fun _ -> Mpas_numerics.Rng.uniform rng (-1.) 1.) in
  let y = Array.make m.n_cells 0. in
  let labels = Mpas_patterns.Refactor.label_matrix m in
  let refactoring =
    [
      ( "refactoring (Algorithms 2-4)", "alg2 edge-order scatter",
        fun () -> Mpas_patterns.Refactor.edge_to_cell_scatter m ~x ~y );
      ( "refactoring (Algorithms 2-4)", "alg3 cell-order gather",
        fun () -> Mpas_patterns.Refactor.edge_to_cell_gather m ~x ~y );
      ( "refactoring (Algorithms 2-4)", "alg4 branch-free",
        fun () -> Mpas_patterns.Refactor.edge_to_cell_branch_free m labels ~x ~y );
      ( "refactoring (Algorithms 2-4)", "alg4 branch-free CSR",
        fun () -> Mpas_patterns.Refactor.edge_to_cell_csr m ~x ~y );
    ]
  in
  let state, b = Williamson.init Williamson.Tc5 m in
  let diag = Fields.alloc_diagnostics m in
  let tend = Fields.alloc_tendencies m in
  let recon = Reconstruct.init m in
  let recon_out = Fields.alloc_reconstruction m in
  let cfg = Config.default in
  Operators.d2fdx2 m ~h:state.h ~out:diag.d2fdx2_cell;
  Operators.h_edge m ~order:cfg.h_adv_order ~h:state.h
    ~d2fdx2_cell:diag.d2fdx2_cell ~out:diag.h_edge;
  Operators.kinetic_energy m ~u:state.u ~out:diag.ke;
  Operators.vorticity m ~u:state.u ~out:diag.vorticity;
  Operators.h_vertex m ~h:state.h ~out:diag.h_vertex;
  Operators.pv_vertex m ~vorticity:diag.vorticity ~h_vertex:diag.h_vertex
    ~out:diag.pv_vertex;
  Operators.pv_cell m ~pv_vertex:diag.pv_vertex ~out:diag.pv_cell;
  Operators.tangential_velocity m ~u:state.u ~out:diag.v_tangential;
  Operators.grad_pv m ~pv_cell:diag.pv_cell ~pv_vertex:diag.pv_vertex
    ~out_n:diag.grad_pv_n ~out_t:diag.grad_pv_t;
  Operators.pv_edge m ~apvm_factor:cfg.apvm_factor ~dt:60.
    ~pv_vertex:diag.pv_vertex ~grad_pv_n:diag.grad_pv_n
    ~grad_pv_t:diag.grad_pv_t ~u:state.u ~v_tangential:diag.v_tangential
    ~out:diag.pv_edge;
  let operators =
    [
      ( "pattern instances (real kernels)", "A1 tend_h",
        fun () ->
          Operators.tend_h m ~h_edge:diag.h_edge ~u:state.u ~out:tend.tend_h );
      ( "pattern instances (real kernels)", "B1 tend_u",
        fun () ->
          Operators.tend_u m ~gravity:cfg.gravity ~h:state.h ~b ~ke:diag.ke
            ~h_edge:diag.h_edge ~u:state.u ~pv_edge:diag.pv_edge
            ~out:tend.tend_u );
      ( "pattern instances (real kernels)", "B2 h_edge (4th order)",
        fun () ->
          Operators.h_edge m ~order:Config.Fourth ~h:state.h
            ~d2fdx2_cell:diag.d2fdx2_cell ~out:diag.h_edge );
      ( "pattern instances (real kernels)", "D1 vorticity",
        fun () -> Operators.vorticity m ~u:state.u ~out:diag.vorticity );
      ( "pattern instances (real kernels)", "G tangential velocity",
        fun () ->
          Operators.tangential_velocity m ~u:state.u ~out:diag.v_tangential );
      ( "pattern instances (real kernels)", "A4/X6 reconstruct",
        fun () -> Reconstruct.run recon m ~u:state.u ~out:recon_out );
    ]
  in
  (* Same kernel, ragged [int array array] walk vs packed CSR walk
     (tentpole of the flat-layout work; EXPERIMENTS.md "Memory
     layout").  Pairs share inputs, so the ns/run ratio is the layout
     speedup. *)
  let layout =
    [
      ( "layout (ragged vs CSR)", "A1 tend_h ragged",
        fun () ->
          Operators.Ragged.tend_h m ~h_edge:diag.h_edge ~u:state.u
            ~out:tend.tend_h );
      ( "layout (ragged vs CSR)", "A1 tend_h csr",
        fun () ->
          Operators.tend_h m ~h_edge:diag.h_edge ~u:state.u ~out:tend.tend_h );
      ( "layout (ragged vs CSR)", "B1 tend_u ragged",
        fun () ->
          Operators.Ragged.tend_u m ~gravity:cfg.gravity ~h:state.h ~b
            ~ke:diag.ke ~h_edge:diag.h_edge ~u:state.u ~pv_edge:diag.pv_edge
            ~out:tend.tend_u );
      ( "layout (ragged vs CSR)", "B1 tend_u csr",
        fun () ->
          Operators.tend_u m ~gravity:cfg.gravity ~h:state.h ~b ~ke:diag.ke
            ~h_edge:diag.h_edge ~u:state.u ~pv_edge:diag.pv_edge
            ~out:tend.tend_u );
      ( "layout (ragged vs CSR)", "A2 kinetic_energy ragged",
        fun () -> Operators.Ragged.kinetic_energy m ~u:state.u ~out:diag.ke );
      ( "layout (ragged vs CSR)", "A2 kinetic_energy csr",
        fun () -> Operators.kinetic_energy m ~u:state.u ~out:diag.ke );
      ( "layout (ragged vs CSR)", "A3 divergence ragged",
        fun () -> Operators.Ragged.divergence m ~u:state.u ~out:diag.divergence );
      ( "layout (ragged vs CSR)", "A3 divergence csr",
        fun () -> Operators.divergence m ~u:state.u ~out:diag.divergence );
      ( "layout (ragged vs CSR)", "D1 vorticity ragged",
        fun () -> Operators.Ragged.vorticity m ~u:state.u ~out:diag.vorticity );
      ( "layout (ragged vs CSR)", "D1 vorticity csr",
        fun () -> Operators.vorticity m ~u:state.u ~out:diag.vorticity );
      ( "layout (ragged vs CSR)", "E pv_cell ragged",
        fun () ->
          Operators.Ragged.pv_cell m ~pv_vertex:diag.pv_vertex
            ~out:diag.pv_cell );
      ( "layout (ragged vs CSR)", "E pv_cell csr",
        fun () ->
          Operators.pv_cell m ~pv_vertex:diag.pv_vertex ~out:diag.pv_cell );
      ( "layout (ragged vs CSR)", "G tangential ragged",
        fun () ->
          Operators.Ragged.tangential_velocity m ~u:state.u
            ~out:diag.v_tangential );
      ( "layout (ragged vs CSR)", "G tangential csr",
        fun () ->
          Operators.tangential_velocity m ~u:state.u ~out:diag.v_tangential );
    ]
  in
  let model_original = Model.init ~engine:Timestep.original Williamson.Tc5 m in
  let model_refactored = Model.init Williamson.Tc5 m in
  let bell = Williamson.cosine_bell m in
  let model_tracers = Model.init ~tracers:[| bell |] Williamson.Tc5 m in
  let dist = Mpas_dist.Driver.init ~n_ranks:4 Williamson.Tc5 m in
  let dist2 = Mpas_dist.Driver.init ~n_ranks:2 Williamson.Tc5 m in
  (* Overlapped variants run their comm-extended DAG on the shared
     bench pool (async executor), so pack/exchange/unpack of one rank
     can proceed while another rank's boundary work is still in
     flight; the classic driver bulk-synchronizes between sweeps. *)
  let overlap2 =
    Mpas_dist.Overlap.of_driver
      ~pool:(Lazy.force bench_pool)
      (Mpas_dist.Driver.init ~n_ranks:2 Williamson.Tc5 m)
  in
  let overlap4 =
    Mpas_dist.Overlap.of_driver
      ~pool:(Lazy.force bench_pool)
      (Mpas_dist.Driver.init ~n_ranks:4 Williamson.Tc5 m)
  in
  let steps =
    [
      ( "full RK-4 step", "original (scatter) engine",
        fun () -> Model.run model_original ~steps:1 );
      ( "full RK-4 step", "refactored (gather) engine",
        fun () -> Model.run model_refactored ~steps:1 );
      ( "full RK-4 step", "with one tracer",
        fun () -> Model.run model_tracers ~steps:1 );
      ( "full RK-4 step", "distributed, 2 ranks",
        fun () -> Mpas_dist.Driver.run dist2 ~steps:1 );
      ( "full RK-4 step", "distributed, 4 ranks",
        fun () -> Mpas_dist.Driver.run dist ~steps:1 );
      ( "full RK-4 step", "overlapped, 2 ranks",
        fun () -> Mpas_dist.Overlap.run overlap2 ~steps:1 );
      ( "full RK-4 step", "overlapped, 4 ranks",
        fun () -> Mpas_dist.Overlap.run overlap4 ~steps:1 );
    ]
  in
  (* The dataflow task runtime: one full RK-4 step per engine variant.
     The split fraction of the tuned case is chosen by Tune.best_split
     on this machine right here, so the benchmark name records the
     ratio the measurement ran with. *)
  let runtime =
    let open Mpas_runtime in
    let pool = Lazy.force bench_pool in
    let mk engine = Model.init ~engine Williamson.Tc5 m in
    let model_of eng = mk (Engine.timestep_engine eng) in
    let model_seq = model_of (Engine.create ~mode:Exec.Sequential ()) in
    let model_barrier = model_of (Engine.create ~mode:Exec.Barrier ~pool ()) in
    let model_async = model_of (Engine.create ~mode:Exec.Async ~pool ()) in
    let tuned =
      let state, b = Williamson.init Williamson.Tc5 m in
      let dt = Williamson.recommended_dt Williamson.Tc5 m in
      Tune.best_split ~steps:1 ~pool ~plan:Mpas_hybrid.Plan.pattern_driven
        Config.default m ~b ~dt state
    in
    let tuned_split =
      match tuned with
      | Some (f, secs) ->
          Printf.printf
            "task runtime: tuned split f=%.3f (%.3f ms/step during tuning)\n%!"
            f (secs *. 1e3);
          f
      | None ->
          (* Tuner verdict: the plan never beat the unsplit engine on
             this machine.  Still benchmark a split case (the default
             fraction) so the ablation row exists. *)
          Printf.printf
            "task runtime: tuner recommends no split; benching f=0.500\n%!";
          0.5
    in
    let model_split =
      model_of
        (Engine.create ~mode:Exec.Async ~pool
           ~plan:Mpas_hybrid.Plan.pattern_driven ~split:tuned_split
           ~host_lanes:2 ())
    in
    (* Ablation ladder for the super-task work: each optimisation alone,
       then the full stack (fusion + cache tiling + work stealing). *)
    let model_fused =
      model_of (Engine.create ~mode:Exec.Async ~pool ~fuse:true ())
    in
    let model_steal = model_of (Engine.create ~mode:Exec.Steal ~pool ()) in
    let model_full =
      model_of
        (Engine.create ~mode:Exec.Steal ~pool ~fuse:true ~tiling:`Auto ())
    in
    [
      ( "task runtime (dataflow DAG)", "dag sequential",
        fun () -> Model.run model_seq ~steps:1 );
      ( "task runtime (dataflow DAG)", "level-barrier, 4 domains",
        fun () -> Model.run model_barrier ~steps:1 );
      ( "task runtime (dataflow DAG)", "async, 4 domains",
        fun () -> Model.run model_async ~steps:1 );
      ( "task runtime (dataflow DAG)",
        Printf.sprintf "async split-tuned f=%.3f, 4 domains" tuned_split,
        fun () -> Model.run model_split ~steps:1 );
      ( "task runtime (dataflow DAG)", "fused only, 4 domains",
        fun () -> Model.run model_fused ~steps:1 );
      ( "task runtime (dataflow DAG)", "stealing only, 4 domains",
        fun () -> Model.run model_steal ~steps:1 );
      ( "task runtime (dataflow DAG)", "fused+stealing+tiled, 4 domains",
        fun () -> Model.run model_full ~steps:1 );
    ]
  in
  let ensemble =
    (* Member-batching amortization: one sequential batch step at 1, 8
       and 64 members of the same Williamson case.  Sequential mode so
       the row measures the layout effect alone (connectivity loaded
       once per entity, applied to every member), not lane parallelism;
       divide each row by its member count for per-member ms/step. *)
    let engine_of members =
      let open Mpas_ensemble in
      let e =
        Ensemble.create ~capacity:members ~block:(min members 8)
          ~mode:Mpas_runtime.Exec.Sequential m
      in
      for _ = 1 to members do
        ignore (Ensemble.submit_case e Williamson.Tc5)
      done;
      e
    in
    List.map
      (fun members ->
        let e = engine_of members in
        ( "ensemble (member batching)",
          Printf.sprintf "batch step, %d members" members,
          fun () -> Mpas_ensemble.Ensemble.step e () ))
      [ 1; 8; 64 ]
  in
  let serving =
    (* Queue throughput of the serving layer: a full submit -> admit ->
       step -> checkpoint -> retire cycle for a burst of short jobs
       over a smaller batch, fault-free — the scheduler, checkpoint
       codec and engine churn together.  Jobs served per second is
       8 / (ns_per_run * 1e-9). *)
    [
      ( "serving layer",
        "submit+drain, 8 jobs x 2 steps, capacity 4",
        fun () ->
          let srv =
            Mpas_server.Server.create
              ~registry:(Mpas_obs.Metrics.create ())
              ~capacity:4 ~block:2 ~checkpoint_every:1 m
          in
          for _ = 1 to 8 do
            ignore (Mpas_server.Server.submit srv ~steps:2 Williamson.Tc5)
          done;
          ignore (Mpas_server.Server.drain srv ()) );
    ]
  in
  let experiments =
    (* One case per paper table/figure generator (the cheap, model-based
       ones; Figure 5 runs the real solver and is regenerated in part 1
       instead of being timed here). *)
    [
      ("experiment generators", "table1",
       fun () -> ignore (Mpas_core.Experiments.table1 ()));
      ("experiment generators", "table2",
       fun () -> ignore (Mpas_core.Experiments.table2 ()));
      ("experiment generators", "table3",
       fun () -> ignore (Mpas_core.Experiments.table3 ()));
      ("experiment generators", "fig6",
       fun () -> ignore (Mpas_core.Experiments.fig6 ()));
      ("experiment generators", "fig7",
       fun () -> ignore (Mpas_core.Experiments.fig7 ()));
      ("experiment generators", "fig8",
       fun () -> ignore (Mpas_core.Experiments.fig8 ()));
      ("experiment generators", "fig9",
       fun () -> ignore (Mpas_core.Experiments.fig9 ()));
      ("experiment generators", "ablation-devices",
       fun () -> ignore (Mpas_core.Experiments.ablation_device_ratio ()));
      ("experiment generators", "ablation-residency",
       fun () -> ignore (Mpas_core.Experiments.ablation_residency ()));
    ]
  in
  refactoring @ operators @ layout @ steps @ runtime @ ensemble @ serving
  @ experiments

let group_names cases =
  List.fold_left
    (fun acc (g, _, _) -> if List.mem g acc then acc else acc @ [ g ])
    [] cases

let tests_of_cases cases =
  List.map
    (fun g ->
      Test.make_grouped ~name:g
        (List.filter_map
           (fun (g', name, fn) ->
             if g' = g then Some (Test.make ~name (Staged.stage fn)) else None)
           cases))
    (group_names cases)

(* The step-level groups are measured directly — Bechamel's 0.5 s
   quota leaves only 2-3 raw samples behind a multi-millisecond step,
   and an OLS fit through 2 points is a coin toss.  A fixed warmup
   (compile the task program, fault the arrays in, settle the pool)
   followed by [runs] individually-timed runs gives the median a real
   sample to sit on.  [--runs] raises the count further.

   The cases of a group are interleaved round-robin — every case's
   run k completes before any case's run k+1 — so that slow drift in
   machine load lands on all rows of an ablation equally instead of
   penalizing whichever variant happened to run during a spike. *)
let direct_groups =
  [
    "task runtime (dataflow DAG)";
    "ensemble (member batching)";
    "serving layer";
  ]

let measure_direct ~runs cases =
  let cases = Array.of_list cases in
  let n = Array.length cases in
  Array.iter (fun (_, _, fn) -> for _ = 1 to 3 do fn () done) cases;
  let samples = Array.init n (fun _ -> Array.make runs 0.) in
  for k = 0 to runs - 1 do
    Array.iteri
      (fun i (_, _, fn) ->
        let t0 = Unix.gettimeofday () in
        fn ();
        samples.(i).(k) <- (Unix.gettimeofday () -. t0) *. 1e9)
      cases
  done;
  List.init n (fun i ->
      let group, name, _ = cases.(i) in
      let s = samples.(i) in
      Array.sort compare s;
      let median =
        if runs land 1 = 1 then s.(runs / 2)
        else 0.5 *. (s.((runs / 2) - 1) +. s.(runs / 2))
      in
      (group ^ "/" ^ name, median, runs))

(* Run Bechamel on every group (the direct groups through the
   warmup-and-median timer above) and return (name, ns/run, runs)
   rows, where [runs] is the number of raw measurements behind the
   estimate. *)
let measure_all ~runs cases =
  let bechamel_cases, direct_cases =
    List.partition (fun (g, _, _) -> not (List.mem g direct_groups)) cases
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  (* Bind the two phases in sequence: [@]'s operand order is
     unspecified, and the direct rows must not silently run first,
     while the process is still faulting in the freshly built cases. *)
  let bechamel_rows =
    List.concat_map
      (fun test ->
        let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
        let results = Analyze.all ols Instance.monotonic_clock raw in
        Hashtbl.fold
          (fun name ols acc ->
            let ns =
              match Analyze.OLS.estimates ols with
              | Some (t :: _) -> t
              | _ -> nan
            in
            let runs =
              match Hashtbl.find_opt raw name with
              | Some (b : Benchmark.t) -> b.stats.samples
              | None -> 0
            in
            (name, ns, runs) :: acc)
          results []
        |> List.sort compare)
      (tests_of_cases bechamel_cases)
  in
  bechamel_rows @ measure_direct ~runs direct_cases

let print_rows rows =
  print_endline "\n=== Bechamel micro-benchmarks (this machine) ===\n";
  Printf.printf "%-55s %15s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns, _) ->
      let pretty =
        if ns >= 1e9 then Printf.sprintf "%8.3f  s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-55s %15s\n" name pretty)
    rows

(* --- observability: roofline report and trace dump ----------------------- *)

(* Serial measured profile of a few real steps joined against the
   Costmodel roofline (baseline flags: the measurement runs one
   thread).  Only the distribution across kernels is meaningful — the
   model is calibrated to the paper's Xeon, not this machine. *)
let roofline_report () =
  let open Mpas_swe in
  let m = Lazy.force mesh in
  let model = Model.init Williamson.Tc5 m in
  let profile = Profile.measure model ~steps:2 in
  let measured =
    List.map (fun (k, s) -> (Timestep.kernel_name k, s)) profile
  in
  Mpas_obs_report.Report.make
    ~stats:(Mpas_patterns.Cost.stats_of_mesh m)
    ~steps:2 measured

let write_trace path =
  let open Mpas_swe in
  let sink = Mpas_obs.Trace.memory () in
  Mpas_obs.Trace.set_sink sink;
  Fun.protect
    ~finally:(fun () -> Mpas_obs.Trace.set_sink Mpas_obs.Trace.noop)
    (fun () ->
      (* One observed RK-4 step on the domain pool: kernel spans on the
         caller's lane, pool.worker spans on the worker lanes. *)
      let m = Lazy.force mesh in
      Mpas_par.Pool.with_pool ~n_domains:2 (fun pool ->
          let model =
            Model.init
              ~engine:(Timestep.observed (Timestep.parallel pool))
              Williamson.Tc5 m
          in
          Model.run model ~steps:1);
      (* And the simulated hybrid lanes for the same mesh: per
         pattern-instance spans on host (tid 1) / device (tid 2). *)
      ignore
        (Mpas_hybrid.Schedule.observe
           (Mpas_hybrid.Schedule.default_config ~split:0.6)
           (Mpas_patterns.Cost.stats_of_mesh m)
           Mpas_hybrid.Plan.pattern_driven));
  Mpas_obs.Trace.export sink path;
  Printf.printf "wrote %d trace events to %s\n"
    (List.length (Mpas_obs.Trace.events sink))
    path

let write_json path rows report =
  let open Mpas_obs in
  let json =
    Jsonv.Obj
      [
        ( "benchmarks",
          Jsonv.Arr
            (List.map
               (fun (name, ns, runs) ->
                 Jsonv.Obj
                   [
                     ("name", Jsonv.Str name);
                     ("ns_per_run", Jsonv.Num ns);
                     ("runs", Jsonv.Num (float_of_int runs));
                   ])
               rows) );
        ("measured_vs_roofline", Mpas_obs_report.Report.to_json report);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Jsonv.to_string json);
      output_string oc "\n");
  Printf.printf "wrote %d benchmark rows to %s\n" (List.length rows) path

(* Smoke keeps runs at 2: every closure once, plus a second iteration
   for the step-level groups — re-stepping the same model is what
   catches stale program caches and state-dependent bugs that a single
   run hides. *)
let smoke cases =
  List.iter
    (fun (g, name, fn) ->
      fn ();
      if List.mem g direct_groups then fn ();
      Printf.printf "smoke ok: %s/%s\n" g name)
    cases

(* The sanitizer hook must cost nothing when no monitor is installed.
   Measuring against hook-free code is impossible (the hook is
   compiled into Exec), so bound it from above: even with a no-op
   sanitizer INSTALLED, a full RK-4 step must stay within 2% of the
   uninstrumented step — and the off path (one ref load and a match
   per phase run) is strictly cheaper than that.  Judged on the median
   of per-round paired ratios: the two samples of a round run back to
   back and share whatever machine state the round landed on, so
   pairing cancels drift that would swamp a comparison of independent
   aggregates.  A shared box still jitters past 2% on occasion, so a
   measurement over budget is retried; only consistent excess fails. *)
let sanitizer_overhead_budget = 1.02

let sanitizer_overhead_measure model =
  let noop =
    {
      Mpas_runtime.Exec.san_phase_begin =
        (fun ~phase:_ ~substep:_ ~n_tasks:_ -> ());
      san_task_begin = (fun ~task:_ ~lane:_ -> ());
      san_task_end = (fun ~task:_ ~lane:_ -> ());
      san_phase_end = (fun () -> ());
    }
  in
  let runs = 31 in
  let off = Array.make runs 0. and on_ = Array.make runs 0. in
  let sample hook slot =
    Mpas_runtime.Exec.set_sanitizer hook;
    Gc.minor ();
    let t0 = Unix.gettimeofday () in
    Mpas_swe.Model.run model ~steps:2;
    slot := Unix.gettimeofday () -. t0
  in
  Fun.protect
    ~finally:(fun () -> Mpas_runtime.Exec.set_sanitizer None)
    (fun () ->
      for k = 0 to runs - 1 do
        (* Alternate A/B order per round: whatever systematic state the
           first measurement of a pair inherits (GC phase, frequency
           boost) lands on both sides equally. *)
        let a = ref 0. and b = ref 0. in
        if k land 1 = 0 then begin
          sample None a;
          sample (Some noop) b
        end
        else begin
          sample (Some noop) b;
          sample None a
        end;
        off.(k) <- !a;
        on_.(k) <- !b
      done);
  let ratios = Array.init runs (fun k -> on_.(k) /. off.(k)) in
  Array.sort compare ratios;
  ratios.(runs / 2)

let sanitizer_overhead_check () =
  let open Mpas_swe in
  let m = Lazy.force mesh in
  let eng = Mpas_runtime.Engine.create ~mode:Mpas_runtime.Exec.Sequential () in
  let model =
    Model.init ~engine:(Mpas_runtime.Engine.timestep_engine eng) Williamson.Tc5
      m
  in
  Model.run model ~steps:2;
  let attempts = 3 in
  let rec go n best =
    let ratio = sanitizer_overhead_measure model in
    let best = min best ratio in
    Printf.printf
      "sanitizer hook: installed-no-op/off median paired ratio %.4f (budget \
       %.2f, attempt %d/%d)\n%!"
      ratio sanitizer_overhead_budget n attempts;
    if ratio <= sanitizer_overhead_budget then ()
    else if n < attempts then go (n + 1) best
    else begin
      Printf.eprintf
        "sanitizer hook overhead exceeds the %.0f%% budget on %d consecutive \
         measurements (best ratio %.4f)\n"
        (100. *. (sanitizer_overhead_budget -. 1.))
        attempts best;
      exit 1
    end
  in
  go 1 infinity

type options = {
  smoke_mode : bool;
  json_path : string option;
  trace_path : string option;
  runs : int;
}

let () =
  let rec parse opts = function
    | [] -> opts
    | "--smoke" :: rest -> parse { opts with smoke_mode = true } rest
    | "--json" :: path :: rest -> parse { opts with json_path = Some path } rest
    | "--trace" :: path :: rest -> parse { opts with trace_path = Some path } rest
    | "--runs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> parse { opts with runs = n } rest
        | _ ->
            prerr_endline ("--runs expects a positive integer (got " ^ n ^ ")");
            exit 2)
    | arg :: _ ->
        prerr_endline
          ("usage: main [--smoke] [--json PATH] [--trace FILE] [--runs N] \
            (got " ^ arg ^ ")");
        exit 2
  in
  let opts =
    parse
      { smoke_mode = false; json_path = None; trace_path = None; runs = 25 }
      (List.tl (Array.to_list Sys.argv))
  in
  if opts.smoke_mode then begin
    smoke (bench_cases ());
    sanitizer_overhead_check ()
  end
  else begin
    Option.iter write_trace opts.trace_path;
    match opts.json_path with
    | Some path ->
        let rows = measure_all ~runs:opts.runs (bench_cases ()) in
        print_rows rows;
        let report = roofline_report () in
        print_endline "";
        print_endline (Mpas_obs_report.Report.to_string report);
        write_json path rows report
    | None ->
        if opts.trace_path = None then begin
          regenerate_experiments ();
          print_rows (measure_all ~runs:opts.runs (bench_cases ()));
          print_endline "";
          print_endline (Mpas_obs_report.Report.to_string (roofline_report ()))
        end
  end
