(* Variable-level access summaries: what one iteration of an instance
   touches, split by where it looks.  This is the declarative side of
   the footprint story — Mpas_analysis infers the same information from
   the running kernels and diffs it against these summaries. *)

type t = {
  point_reads : string list;
  stencil_reads : string list;
  writes : string list;
}

let of_instance (i : Pattern.instance) =
  {
    point_reads =
      List.filter
        (fun v -> not (List.mem v i.Pattern.neighbour_inputs))
        i.Pattern.inputs;
    stencil_reads = i.Pattern.neighbour_inputs;
    writes = i.Pattern.outputs;
  }

let reads t = t.point_reads @ t.stencil_reads

type fusion_conflict =
  | Stencil_raw of string
  | Stencil_war of string
  | Blind_waw of string

let conflict_name = function
  | Stencil_raw v -> "stencil-RAW on " ^ v
  | Stencil_war v -> "stencil-WAR on " ^ v
  | Blind_waw v -> "blind WAW on " ^ v

(* Legality of appending [next] to a fused loop that already runs the
   [chain] accesses point-by-point:

   - [Stencil_raw v]: [next] reads [v] through the stencil while the
     chain writes it.  In the fused loop the neighbour values have not
     been produced yet when [next]'s iteration runs — the producing
     loop must complete first.
   - [Stencil_war v]: the chain reads [v] through the stencil while
     [next] overwrites it.  Fused, [next]'s iteration at point [p]
     clobbers [v(p)] before a later iteration of the chain member reads
     it as a neighbour.
   - [Blind_waw v]: both write [v] and [next] does not read it, so the
     fused body at [p] would let [next] blindly overwrite the chain's
     value; a read-modify-write ([v] also among [next]'s inputs) keeps
     the chain's contribution and is the one WAW shape fusion admits. *)
let fusion_conflicts ~chain (next : t) =
  let union f = List.concat_map f chain in
  let chain_writes = union (fun a -> a.writes) in
  let chain_stencil = union (fun a -> a.stencil_reads) in
  let raw =
    List.filter_map
      (fun v ->
        if List.mem v chain_writes then Some (Stencil_raw v) else None)
      next.stencil_reads
  in
  let war =
    List.filter_map
      (fun v -> if List.mem v chain_stencil then Some (Stencil_war v) else None)
      next.writes
  in
  let waw =
    List.filter_map
      (fun v ->
        if List.mem v chain_writes && not (List.mem v (reads next)) then
          Some (Blind_waw v)
        else None)
      next.writes
  in
  raw @ war @ waw
