type point = Mass | Velocity | Vorticity

let point_name = function
  | Mass -> "mass"
  | Velocity -> "velocity"
  | Vorticity -> "vorticity"

type letter = A | B | C | D | E | F | G | H

let letter_name = function
  | A -> "A" | B -> "B" | C -> "C" | D -> "D"
  | E -> "E" | F -> "F" | G -> "G" | H -> "H"

let all_letters = [ A; B; C; D; E; F; G; H ]

let shape = function
  | A -> (Mass, Velocity)
  | B -> (Velocity, Mass)
  | C -> (Vorticity, Mass)
  | D -> (Vorticity, Velocity)
  | E -> (Mass, Vorticity)
  | F -> (Velocity, Vorticity)
  | G -> (Velocity, Velocity)
  | H -> (Mass, Mass)

let letter_of_shape ~output ~input =
  List.find_opt (fun l -> shape l = (output, input)) all_letters

type kind = Stencil of letter | Local

let kind_name = function
  | Stencil l -> "stencil " ^ letter_name l
  | Local -> "local"

type kernel =
  | Compute_tend
  | Enforce_boundary_edge
  | Compute_next_substep_state
  | Compute_solve_diagnostics
  | Accumulative_update
  | Mpas_reconstruct
  | Halo_exchange

let kernel_name = function
  | Compute_tend -> "compute_tend"
  | Enforce_boundary_edge -> "enforce_boundary_edge"
  | Compute_next_substep_state -> "compute_next_substep_state"
  | Compute_solve_diagnostics -> "compute_solve_diagnostics"
  | Accumulative_update -> "accumulative_update"
  | Mpas_reconstruct -> "mpas_reconstruct"
  | Halo_exchange -> "halo_exchange"

(* Halo_exchange is deliberately absent: it has no Table I instances —
   its tasks are synthesized by the distributed runtime, not declared
   in the registry. *)
let all_kernels =
  [ Compute_tend; Enforce_boundary_edge; Compute_next_substep_state;
    Compute_solve_diagnostics; Accumulative_update; Mpas_reconstruct ]

type instance = {
  id : string;
  kind : kind;
  kernel : kernel;
  spaces : point list;
  inputs : string list;
  neighbour_inputs : string list;
  outputs : string list;
  irregular : bool;
}

let stencil_output t =
  match t.kind with Stencil l -> Some (fst (shape l)) | Local -> None
