(** Regularity-aware loop refactoring (paper §III-D and §IV-C/D).

    The canonical irregular reduction of the paper's Algorithm 2 is the
    edge-to-cell update

    {v
    for iedge:  Y(cell1(iedge)) += X(iedge)
                Y(cell2(iedge)) -= X(iedge)
    v}

    which races under multithreading.  This module provides the three
    forms studied in the paper:
    - [edge_to_cell_scatter]: Algorithm 2 verbatim (sequential only);
    - [edge_to_cell_gather]: Algorithm 3, refactored to cell order with
      the orientation branch;
    - [edge_to_cell_branch_free]: Algorithm 4, with the precomputed +-1
      label matrix [L] replacing the branch so the loop also
      vectorizes.

    The three are numerically equivalent up to floating-point
    reassociation; the gather forms are race-free and accept a pool. *)

open Mpas_mesh
open Mpas_par

(** Algorithm 2: accumulate into [y] (cells) from [x] (edges).
    [y] is overwritten. *)
val edge_to_cell_scatter : Mesh.t -> x:float array -> y:float array -> unit

(** Algorithm 3: the cell-order rewrite with the
    [icell = CellsOnEdge(iedge, 1)] branch. *)
val edge_to_cell_gather :
  ?pool:Pool.t -> Mesh.t -> x:float array -> y:float array -> unit

(** The label matrix [L] of Algorithm 4:
    [L(icell)(j) = +1] if [icell] is the first cell of its [j]-th edge,
    [-1] otherwise. *)
type label_matrix

val label_matrix : Mesh.t -> label_matrix

(** Algorithm 4: branch-free accumulation using [L]. *)
val edge_to_cell_branch_free :
  ?pool:Pool.t -> Mesh.t -> label_matrix -> x:float array -> y:float array -> unit

(** Algorithm 4 over the packed {!Mesh.csr} layout: the view's
    [cell_edge_signs] equals the label matrix entry for entry, so the
    branch-free loop walks flat offsets/data arrays with unsafe
    indexing.  Bit-identical to {!edge_to_cell_branch_free} (same
    accumulation order). *)
val edge_to_cell_csr :
  ?pool:Pool.t -> Mesh.t -> x:float array -> y:float array -> unit

(** Expose [L] for tests. *)
val labels : label_matrix -> float array array
