type mesh_stats = {
  n_cells : int;
  n_edges : int;
  n_vertices : int;
  mean_edges_per_cell : float;
  mean_edges_on_edge : float;
}

let stats_of_level k =
  let n_cells = (10 * (1 lsl (2 * k))) + 2 in
  let n_vertices = 20 * (1 lsl (2 * k)) in
  let n_edges = 30 * (1 lsl (2 * k)) in
  let mean_edges_per_cell = float_of_int (2 * n_edges) /. float_of_int n_cells in
  {
    n_cells;
    n_edges;
    n_vertices;
    mean_edges_per_cell;
    mean_edges_on_edge = 2. *. (mean_edges_per_cell -. 1.);
  }

let stats_of_mesh (m : Mpas_mesh.Mesh.t) =
  let mean a = Mpas_numerics.Stats.mean (Array.map float_of_int a) in
  {
    n_cells = m.n_cells;
    n_edges = m.n_edges;
    n_vertices = m.n_vertices;
    mean_edges_per_cell = mean m.n_edges_on_cell;
    mean_edges_on_edge = mean m.n_edges_on_edge;
  }

let table3_meshes =
  [ ("120-km", 6); ("60-km", 7); ("30-km", 8); ("15-km", 9) ]

type work = { items : float; flops : float; bytes : float }

let zero_work = { items = 0.; flops = 0.; bytes = 0. }

let add_work a b =
  {
    items = a.items +. b.items;
    flops = a.flops +. b.flops;
    bytes = a.bytes +. b.bytes;
  }

(* Bytes: one double read/write = 8, one 32-bit index = 4.  Per-item
   doubles include the geometric constants (dv, dc, areas, weights...)
   actually touched by the gather loop bodies in Mpas_swe.Operators. *)
let w ~items ~flops_per ~dbl_per ~idx_per =
  {
    items = float_of_int items;
    flops = float_of_int items *. flops_per;
    bytes = (float_of_int items *. ((dbl_per *. 8.) +. (idx_per *. 4.)));
  }

type layout = Ragged | Csr

(* Ragged row-pointer dereferences per output item: each inner gather
   loop first loads the row's [int array array] slot (a boxed-array
   pointer, 8 bytes) before it can index the row.  The packed CSR view
   replaces them with the offset lookups already counted in the index
   traffic, so [Csr] adds nothing. *)
let ragged_rows_per_item = function
  | "A1" | "A3" | "H2" | "C1" | "D1" | "C2" | "G" | "H1" | "A4" -> 2.
  | "B1" | "E" -> 3.
  | "A2" | "B2" | "F" -> 1.
  | _ -> 0.

let instance_work_csr s id =
  let nc = s.n_cells and ne = s.n_edges and nv = s.n_vertices in
  let ec = s.mean_edges_per_cell in
  let eoe = s.mean_edges_on_edge in
  match id with
  | "A1" ->
      (* tend_h: per cell, ec iterations of 4 flops over h_edge,u,dv. *)
      w ~items:nc ~flops_per:((4. *. ec) +. 2.) ~dbl_per:((3. *. ec) +. 2.)
        ~idx_per:(2. *. ec)
  | "B1" ->
      (* tend_u: eoe-long perp-flux sum (6 flops each) plus gradient. *)
      w ~items:ne ~flops_per:((6. *. eoe) +. 10.)
        ~dbl_per:((4. *. eoe) +. 8.) ~idx_per:(eoe +. 2.)
  | "C1" -> w ~items:ne ~flops_per:8. ~dbl_per:7. ~idx_per:4.
  | "X1" -> w ~items:ne ~flops_per:2. ~dbl_per:3. ~idx_per:0.
  | "X2" -> w ~items:ne ~flops_per:1. ~dbl_per:2. ~idx_per:0.
  | "X3" ->
      w ~items:(nc + ne) ~flops_per:2. ~dbl_per:3. ~idx_per:0.
  | "H2" ->
      w ~items:nc ~flops_per:((4. *. ec) +. 1.) ~dbl_per:((4. *. ec) +. 2.)
        ~idx_per:(2. *. ec)
  | "B2" -> w ~items:ne ~flops_per:8. ~dbl_per:6. ~idx_per:2.
  | "A2" ->
      w ~items:nc ~flops_per:((4. *. ec) +. 1.) ~dbl_per:((3. *. ec) +. 2.)
        ~idx_per:ec
  | "A3" ->
      w ~items:nc ~flops_per:((3. *. ec) +. 1.) ~dbl_per:((3. *. ec) +. 2.)
        ~idx_per:ec
  | "D1" -> w ~items:nv ~flops_per:10. ~dbl_per:8. ~idx_per:3.
  | "C2" -> w ~items:nv ~flops_per:7. ~dbl_per:8. ~idx_per:3.
  | "D2" -> w ~items:nv ~flops_per:2. ~dbl_per:4. ~idx_per:0.
  | "E" ->
      w ~items:nc ~flops_per:((2. *. ec) +. 1.) ~dbl_per:((2. *. ec) +. 2.)
        ~idx_per:(2. *. ec)
  | "G" ->
      w ~items:ne ~flops_per:(2. *. eoe) ~dbl_per:(2. *. eoe) ~idx_per:eoe
  | "H1" -> w ~items:ne ~flops_per:6. ~dbl_per:8. ~idx_per:4.
  | "F" -> w ~items:ne ~flops_per:7. ~dbl_per:7. ~idx_per:2.
  | "X4" -> w ~items:nc ~flops_per:2. ~dbl_per:3. ~idx_per:0.
  | "X5" -> w ~items:ne ~flops_per:2. ~dbl_per:3. ~idx_per:0.
  | "A4" ->
      (* 3-vector dot-accumulate per cell edge. *)
      w ~items:nc ~flops_per:(6. *. ec) ~dbl_per:((4. *. ec) +. 3.)
        ~idx_per:ec
  | "X6" -> w ~items:nc ~flops_per:6. ~dbl_per:11. ~idx_per:0.
  | _ -> raise Not_found

let instance_work ?(layout = Csr) s id =
  let work = instance_work_csr s id in
  match layout with
  | Csr -> work
  | Ragged ->
      {
        work with
        bytes = work.bytes +. (work.items *. ragged_rows_per_item id *. 8.);
      }

let kernel_work ?layout s k =
  List.fold_left
    (fun acc (i : Pattern.instance) -> add_work acc (instance_work ?layout s i.id))
    zero_work (Registry.of_kernel k)

let kernel_calls_per_step = function
  | Pattern.Compute_tend -> 4
  | Pattern.Enforce_boundary_edge -> 4
  | Pattern.Compute_next_substep_state -> 3
  | Pattern.Compute_solve_diagnostics -> 4
  | Pattern.Accumulative_update -> 4
  | Pattern.Mpas_reconstruct -> 1
  | Pattern.Halo_exchange -> 4 (* one comm wave per substep *)

let rk4_step_work ?layout s =
  List.fold_left
    (fun acc k ->
      let per = kernel_work ?layout s k in
      let n = float_of_int (kernel_calls_per_step k) in
      add_work acc
        { items = per.items *. n; flops = per.flops *. n; bytes = per.bytes *. n })
    zero_work Pattern.all_kernels

let field_bytes s = function
  | Pattern.Mass -> float_of_int s.n_cells *. 8.
  | Pattern.Velocity -> float_of_int s.n_edges *. 8.
  | Pattern.Vorticity -> float_of_int s.n_vertices *. 8.
