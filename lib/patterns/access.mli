(** Variable-level access summaries derived from the Table I
    declarations: what one iteration of an instance reads at its own
    point, reads through the stencil, and writes.  [Dataflow.Fusion]
    consults these for fusion legality; [Mpas_analysis] infers the same
    sets from the running kernels and diffs them against the registry. *)

type t = {
  point_reads : string list;  (** inputs read at the iteration point only *)
  stencil_reads : string list;  (** inputs read through the neighbourhood *)
  writes : string list;  (** outputs, written at the iteration point *)
}

val of_instance : Pattern.instance -> t

(** All reads, point and stencil. *)
val reads : t -> string list

(** Why appending an instance to a fused chain would change the
    program's meaning. *)
type fusion_conflict =
  | Stencil_raw of string
      (** next stencil-reads a variable the chain writes *)
  | Stencil_war of string
      (** the chain stencil-reads a variable next overwrites *)
  | Blind_waw of string
      (** both write the variable and next does not read it back *)

val conflict_name : fusion_conflict -> string

(** [fusion_conflicts ~chain next] lists every conflict that forbids
    running [next]'s iteration inside the fused loop that already runs
    [chain] (earlier members first).  Empty means the fusion preserves
    the data-flow semantics; point-local RAW (next reads a chain output
    at its own point) is legal and not reported. *)
val fusion_conflicts : chain:t list -> t -> fusion_conflict list
