(** Work model per pattern instance: flop and memory-traffic counts as
    a function of mesh size.  These drive the roofline cost model of
    the performance simulator (DESIGN.md §3, §6).

    Counts are derived from the refactored (gather) loop bodies of
    [Mpas_swe.Operators]: per output item, the number of floating-point
    operations and the bytes of double and index traffic.  They are
    estimates of the {e shape} of the work — what matters downstream is
    the relative weight of instances and their arithmetic intensity,
    not exact instruction counts. *)

type mesh_stats = {
  n_cells : int;
  n_edges : int;
  n_vertices : int;
  mean_edges_per_cell : float;  (** < 6 because of the 12 pentagons *)
  mean_edges_on_edge : float;  (** ~10 *)
}

(** Analytic stats of the icosahedral grid at a bisection level; usable
    for meshes too large to build (Table III's 15-km mesh). *)
val stats_of_level : int -> mesh_stats

(** Stats measured from a built mesh. *)
val stats_of_mesh : Mpas_mesh.Mesh.t -> mesh_stats

(** The four paper meshes of Table III: level and resolution name. *)
val table3_meshes : (string * int) list

type work = {
  items : float;  (** loop iterations (output points) *)
  flops : float;  (** floating-point operations, total *)
  bytes : float;  (** memory traffic, total, read + write *)
}

val zero_work : work
val add_work : work -> work -> work

(** Connectivity layout the kernels run against.  [Csr] (the default)
    is the packed flat view the single-device engine uses; [Ragged] is
    the [int array array] layout, which pays an extra boxed-row-pointer
    dereference (8 bytes) per inner gather row per item. *)
type layout = Ragged | Csr

(** Work of one instance on a mesh; [?layout] defaults to [Csr].
    @raise Not_found for ids absent from the registry. *)
val instance_work : ?layout:layout -> mesh_stats -> string -> work

(** Total work of one kernel. *)
val kernel_work : ?layout:layout -> mesh_stats -> Pattern.kernel -> work

(** Work of a whole RK-4 step: each kernel weighted by how many times
    Algorithm 1 runs it per step (4 for the tendency/diagnostics
    kernels, 3 for next_substep_state, 1 for the reconstruction). *)
val rk4_step_work : ?layout:layout -> mesh_stats -> work

(** How many times Algorithm 1 runs each kernel per time step. *)
val kernel_calls_per_step : Pattern.kernel -> int

(** Bytes of one field living at the given point type (doubles). *)
val field_bytes : mesh_stats -> Pattern.point -> float
