(** The computation-pattern taxonomy of the paper (§III-A).

    Every loop of the shallow-water model is either a {e local}
    computation (point-wise, embarrassingly parallel) or one of eight
    {e stencil} patterns classified by the mesh-point types of its
    output and inputs (Figure 3): with three point types (mass,
    velocity, vorticity) there are nine output/input combinations, of
    which the vorticity-from-vorticity stencil does not occur in the
    model, leaving the eight letters A-H. *)

type point = Mass | Velocity | Vorticity

val point_name : point -> string

(** The eight stencil letters of Figure 3. *)
type letter = A | B | C | D | E | F | G | H

val letter_name : letter -> string
val all_letters : letter list

(** Output and input point types of a stencil letter. *)
val shape : letter -> point * point

(** The letter with the given shape, if the model uses it
    ([Vorticity, Vorticity] has none). *)
val letter_of_shape : output:point -> input:point -> letter option

type kind =
  | Stencil of letter
  | Local  (** point-wise computation, no neighbour access *)

val kind_name : kind -> string

(** The six kernels of Algorithm 1 (plus reconstruction), and the
    communication pseudo-kernel [Halo_exchange] whose pack / exchange /
    unpack tasks the distributed runtime synthesizes around them. *)
type kernel =
  | Compute_tend
  | Enforce_boundary_edge
  | Compute_next_substep_state
  | Compute_solve_diagnostics
  | Accumulative_update
  | Mpas_reconstruct
  | Halo_exchange

val kernel_name : kernel -> string

(** The Table I compute kernels — [Halo_exchange] is excluded because
    it carries no registry instances. *)
val all_kernels : kernel list

(** One box of the data-flow diagram (Figure 4): a pattern instance
    with its Table I variables. *)
type instance = {
  id : string;  (** Table I label, e.g. "A1" or "X3" *)
  kind : kind;
  kernel : kernel;
  spaces : point list;
      (** iteration spaces: the point type(s) whose index range the
          refactored loop(s) run over; e.g. X3 updates both a mass and
          a velocity field *)
  inputs : string list;  (** variable names read *)
  neighbour_inputs : string list;
      (** the subset of [inputs] read through the stencil (at
          neighbouring mesh points); the rest are read at the output
          point itself.  Drives the loop-fusion legality analysis
          (paper SS IV-F). *)
  outputs : string list;  (** variable names written *)
  irregular : bool;
      (** true when the original MPAS loop is an irregular reduction
          (Algorithm 2) needing the regularity-aware refactoring *)
}

(** For a stencil instance, the output point type of its letter. *)
val stencil_output : instance -> point option
