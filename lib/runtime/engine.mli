open Mpas_par
open Mpas_swe

(** The task runtime packaged as a {!Mpas_swe.Timestep.engine}: builds
    the phase programs ({!Spec}), compiles them against the live model
    arrays ({!Bind}), and drives the executor ({!Exec}) through
    [Timestep]'s custom-step hook — [Model], [Profile], the benches and
    [Timestep.observed] all run unchanged on top.

    Steps are bit-identical to the sequential [Timestep.refactored]
    engine for every mode, pool size, plan and split: tasks evaluate
    the same floating-point expressions over disjoint index sets, and
    the spec's edges serialize every pair that shares data.

    Configurations outside the task program — SSP RK-3, tracers,
    biharmonic diffusion — fall back to the classic driver (on the
    engine's pool), so the wrapper is safe as a drop-in default. *)

type t

(** [create ()] builds a runtime engine.

    - [mode] (default [Async]): see {!Exec.mode}.
    - [pool]: worker lanes; absent = single lane.
    - [plan]: a {!Mpas_hybrid.Plan} assigning instances to host or
      device lanes, [Adjustable] ones split by [split].
    - [split] (default 0.5): host fraction of adjustable instances;
      must lie in [0, 1].
    - [host_lanes]: lanes reserved for host-class tasks (default: all
      without a plan, half with one, at least 1).  The rest serve
      device-class tasks.
    - [log]: executor log receiving every retired task.

    Raises [Invalid_argument] when [split] is out of range,
    [host_lanes] exceeds the pool, or the plan places work on the
    device while no lane is left to serve it. *)
val create :
  ?mode:Exec.mode ->
  ?pool:Pool.t ->
  ?plan:Mpas_hybrid.Plan.t ->
  ?split:float ->
  ?host_lanes:int ->
  ?log:Exec.log ->
  unit ->
  t

val mode : t -> Exec.mode
val split : t -> float
val host_lanes : t -> int

(** The [Timestep] engine driving this runtime (CSR gather layout, the
    runtime's pool, the custom step installed).  Compose with
    {!Timestep.with_instrument} / {!Timestep.observed} as usual. *)
val timestep_engine : t -> Timestep.engine

(** True when the runtime's task program would handle this
    configuration itself rather than falling back to the classic
    driver. *)
val handles : Config.t -> Fields.state -> bool
