open Mpas_par
open Mpas_swe

(** The task runtime packaged as a {!Mpas_swe.Timestep.engine}: builds
    the phase programs ({!Spec}), compiles them against the live model
    arrays ({!Bind}), and drives the executor ({!Exec}) through
    [Timestep]'s custom-step hook — [Model], [Profile], the benches and
    [Timestep.observed] all run unchanged on top.

    Steps are bit-identical to the sequential [Timestep.refactored]
    engine for every mode, pool size, plan and split: tasks evaluate
    the same floating-point expressions over disjoint index sets, and
    the spec's edges serialize every pair that shares data.

    Configurations outside the task program — SSP RK-3, tracers,
    biharmonic diffusion — fall back to the classic driver (on the
    engine's pool), so the wrapper is safe as a drop-in default. *)

type t

(** How part tasks are tiled into cache-sized blocks.  [`Auto] sizes
    the block from the host CPU's private L2 via
    {!Mpas_machine.Hw.tile_elements}, capped so no space is cut into
    more than ~2 tiles per core the OS reports
    ([Domain.recommended_domain_count]) — finer tiles add scheduler
    overhead without locality or stealable parallelism.  [`Block n]
    forces [n] loop elements per tile. *)
type tiling = [ `Off | `Auto | `Block of int ]

(** [create ()] builds a runtime engine.

    - [mode] (default [Async]): see {!Exec.mode}.
    - [pool]: worker lanes; absent = single lane.
    - [plan]: a {!Mpas_hybrid.Plan} assigning instances to host or
      device lanes, [Adjustable] ones split by [split].
    - [split] (default 0.5): host fraction of adjustable instances;
      must lie in [0, 1].
    - [host_lanes]: lanes reserved for host-class tasks (default: all
      without a plan, half with one, at least 1).  The rest serve
      device-class tasks.
    - [fuse] (default false): fuse legal kernel chains into
      super-tasks at compile time ({!Spec.build}'s [fuse]); fused
      chains compile to the specialized super-kernels of
      {!Mpas_swe.Fused}.
    - [tiling] (default [`Off]): tile tasks into cache-sized blocks.
    - [log]: executor log receiving every retired task.

    Raises [Invalid_argument] when [split] is out of range, a [`Block]
    tile is below 1, [host_lanes] exceeds the pool, or the plan places
    work on the device while no lane is left to serve it. *)
val create :
  ?mode:Exec.mode ->
  ?pool:Pool.t ->
  ?plan:Mpas_hybrid.Plan.t ->
  ?split:float ->
  ?host_lanes:int ->
  ?fuse:bool ->
  ?tiling:tiling ->
  ?log:Exec.log ->
  unit ->
  t

val mode : t -> Exec.mode
val split : t -> float
val host_lanes : t -> int
val fused : t -> bool

(** The phase programs the engine last compiled (None before the first
    step).  This is the exact spec the executor ran — log replay
    checkers should validate against it rather than rebuilding one. *)
val program : t -> Spec.t option

(** The [Timestep] engine driving this runtime (CSR gather layout, the
    runtime's pool, the custom step installed).  Compose with
    {!Timestep.with_instrument} / {!Timestep.observed} as usual. *)
val timestep_engine : t -> Timestep.engine

(** True when the runtime's task program would handle this
    configuration itself rather than falling back to the classic
    driver. *)
val handles : Config.t -> Fields.state -> bool
