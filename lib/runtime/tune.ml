open Mpas_swe

let default_candidates =
  [ 0.; 0.125; 0.25; 0.375; 0.5; 0.625; 0.75; 0.875; 1. ]

(* The tuner used to return the fastest candidate unconditionally —
   and on a host whose lanes outnumber its cores, the "winner" (often
   f = 1.0, everything on the host lanes) was still slower than not
   splitting at all.  So the unsplit engine (no plan, every lane a
   peer) is measured with the same protocol as the candidates, and a
   split is only recommended when it actually beats that baseline. *)
let best_split ?(candidates = default_candidates) ?(steps = 3) ?host_lanes
    ?recon ?time_fn ~pool ~plan cfg m ~b ~dt state =
  if candidates = [] then invalid_arg "Mpas_runtime.Tune.best_split: no candidates";
  if steps < 1 then invalid_arg "Mpas_runtime.Tune.best_split: steps < 1";
  let measure split =
    let state = Fields.copy_state state in
    let work = Timestep.alloc_workspace ~n_tracers:(Fields.n_tracers state) m in
    let eng =
      match split with
      | None -> Engine.create ~mode:Exec.Async ~pool ()
      | Some split ->
          Engine.create ~mode:Exec.Async ~pool ~plan ~split ?host_lanes ()
    in
    let te = Engine.timestep_engine eng in
    Timestep.init_diagnostics te cfg m ~dt ~state ~work;
    (* Warm-up step: compiles the program and faults the arrays in. *)
    Timestep.step te cfg m ~b ?recon ~dt ~state ~work ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to steps do
      Timestep.step te cfg m ~b ?recon ~dt ~state ~work ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int steps
  in
  let time_one = match time_fn with Some f -> f | None -> measure in
  let baseline = time_one None in
  let best_s, best_t =
    match candidates with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun (bs, bt) s ->
            let t = time_one (Some s) in
            if t < bt then (s, t) else (bs, bt))
          (first, time_one (Some first))
          rest
  in
  if best_t < baseline then Some (best_s, best_t) else None
