open Mpas_swe

let default_candidates =
  [ 0.; 0.125; 0.25; 0.375; 0.5; 0.625; 0.75; 0.875; 1. ]

let best_split ?(candidates = default_candidates) ?(steps = 3) ?host_lanes
    ?recon ~pool ~plan cfg m ~b ~dt state =
  if candidates = [] then invalid_arg "Mpas_runtime.Tune.best_split: no candidates";
  if steps < 1 then invalid_arg "Mpas_runtime.Tune.best_split: steps < 1";
  let time_one split =
    let state = Fields.copy_state state in
    let work = Timestep.alloc_workspace ~n_tracers:(Fields.n_tracers state) m in
    let eng =
      Engine.create ~mode:Exec.Async ~pool ~plan ~split ?host_lanes ()
    in
    let te = Engine.timestep_engine eng in
    Timestep.init_diagnostics te cfg m ~dt ~state ~work;
    (* Warm-up step: compiles the program and faults the arrays in. *)
    Timestep.step te cfg m ~b ?recon ~dt ~state ~work ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to steps do
      Timestep.step te cfg m ~b ?recon ~dt ~state ~work ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int steps
  in
  match candidates with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun (bs, bt) s ->
          let t = time_one s in
          if t < bt then (s, t) else (bs, bt))
        (first, time_one first)
        rest
