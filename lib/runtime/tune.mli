open Mpas_mesh
open Mpas_par
open Mpas_swe

(** Measurement-driven choice of the adjustable split: run a few real
    steps per candidate fraction on a scratch copy of the state and
    keep the fraction with the lowest wall time per step — the paper's
    tuning loop over the light-yellow boxes of Figure 4b.

    The model state is untouched (each candidate steps a copy), so the
    tuner can run on live model data before committing to an engine. *)

val default_candidates : float list
(** 0, 1/8, ..., 1 — both pure placements and seven real splits. *)

(** [best_split ~pool ~plan cfg m ~b ~dt state] measures every
    candidate split {e and} the unsplit engine (no plan — every lane a
    peer), and returns [Some (split, seconds_per_step)] for the best
    candidate only when it beats the unsplit baseline; [None] means
    "don't split — the plan costs more than it buys on this machine".
    [steps] (default 3) measured steps follow one warm-up step per
    configuration.  [host_lanes] is passed through to {!Engine.create};
    the pool must leave at least one device lane when [plan] places
    device work.  [recon] makes the measured step include the
    reconstruction, when the production engine will run one.
    [time_fn] replaces the wall-clock measurement ([None] = the
    unsplit baseline, [Some f] = candidate split [f]) — for tests. *)
val best_split :
  ?candidates:float list ->
  ?steps:int ->
  ?host_lanes:int ->
  ?recon:Reconstruct.t ->
  ?time_fn:(float option -> float) ->
  pool:Pool.t ->
  plan:Mpas_hybrid.Plan.t ->
  Config.t ->
  Mesh.t ->
  b:float array ->
  dt:float ->
  Fields.state ->
  (float * float) option
