open Mpas_patterns
open Mpas_par

(** Member-axis phase programs for batched (ensemble) execution.

    The solo runtime parallelizes {e within} one simulation by
    splitting kernels over index-space fractions.  An ensemble flips
    the axis: the same kernel chain runs once per {e member block}, and
    blocks — not index ranges — become the part-tasks.  [build] turns a
    straight-line kernel chain into a {!Spec.phase} with one task per
    (block, kernel): within a block the chain is a dependency chain
    (level = position), across blocks there are no edges at all, so
    every {!Exec} mode (barrier, async, work stealing) schedules whole
    member blocks concurrently, and the PR 6 machinery applies across
    members for free.  [part] on each task records the member fraction
    [(b/nb, (b+1)/nb)], so the parts of one kernel tile the unit
    interval exactly as {!Spec.check} demands. *)

type kernel = {
  bk_id : string;  (** instance id in specs/logs, e.g. ["ens.tend_u"] *)
  bk_kernel : Pattern.kernel;  (** driver-kernel family, for reporting *)
  bk_body : block:int -> unit -> unit;
      (** the batched body for one member block; called once per block
          per phase run *)
}

(** [build ~kernels ~blocks] compiles the chain into a phase program
    plus the aligned body array ([task index = block * n_kernels +
    kernel position]).  The result passes {!Spec.check}.
    @raise Invalid_argument when [kernels] is empty or [blocks < 1]. *)
val build : kernels:kernel list -> blocks:int -> Spec.phase * (unit -> unit) array

(** Run one compiled member-axis phase through {!Exec.run_phase}.
    Defaults: [mode = Sequential], [pool = None], every lane a host
    lane, no instrumentation.  [preempt] is forwarded to
    {!Exec.run_phase} (the cooperative eviction hook — see
    {!Exec.Preempted}). *)
val run :
  ?log:Exec.log ->
  ?preempt:(unit -> bool) ->
  ?mode:Exec.mode ->
  ?pool:Pool.t ->
  ?instrument:(Spec.task -> (unit -> unit) -> unit) ->
  phase:[ `Early | `Final ] ->
  substep:int ->
  Spec.phase ->
  (unit -> unit) array ->
  unit
