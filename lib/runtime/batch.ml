open Mpas_patterns
open Mpas_par

type kernel = {
  bk_id : string;
  bk_kernel : Pattern.kernel;
  bk_body : block:int -> unit -> unit;
}

(* One synthetic registry instance per chain kernel, shared by every
   block's task for that kernel so Spec.check's per-instance part
   tiling groups the blocks together.  The member axis is not a mesh
   space, hence [spaces = []] and [Local]. *)
let instance_of k : Pattern.instance =
  {
    id = k.bk_id;
    kind = Pattern.Local;
    kernel = k.bk_kernel;
    spaces = [];
    inputs = [];
    neighbour_inputs = [];
    outputs = [];
    irregular = false;
  }

let build ~kernels ~blocks =
  if kernels = [] then invalid_arg "Batch.build: empty kernel chain";
  if blocks < 1 then
    invalid_arg (Printf.sprintf "Batch.build: blocks = %d, need >= 1" blocks);
  let ks = Array.of_list kernels in
  let nk = Array.length ks in
  let instances = Array.map instance_of ks in
  let fb = float_of_int blocks in
  let task b k : Spec.task =
    let index = (b * nk) + k in
    {
      Spec.index;
      instance = instances.(k);
      members = [ instances.(k) ];
      part =
        (if blocks = 1 then None
         else Some (float_of_int b /. fb, float_of_int (b + 1) /. fb));
      cls = Spec.Host;
      kind = Spec.Compute;
      level = k;
      preds = (if k = 0 then [] else [ index - 1 ]);
      succs = (if k = nk - 1 then [] else [ index + 1 ]);
    }
  in
  let tasks =
    Array.init (blocks * nk) (fun i -> task (i / nk) (i mod nk))
  in
  let bodies =
    Array.init (blocks * nk) (fun i -> ks.(i mod nk).bk_body ~block:(i / nk))
  in
  ({ Spec.tasks; n_levels = nk }, bodies)

let run ?log ?preempt ?(mode = Exec.Sequential) ?pool
    ?(instrument = fun _ f -> f ()) ~phase ~substep spec bodies =
  let host_lanes = match pool with Some p -> Pool.size p | None -> 1 in
  Exec.run_phase ?log ?preempt ~mode ~pool ~host_lanes ~phase ~substep
    ~instrument spec bodies
