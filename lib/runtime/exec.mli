open Mpas_par

(** The dependency-driven executor: runs one compiled phase program
    over the pool's worker lanes.

    Lanes are partitioned into a host set (lanes [0 .. host_lanes-1])
    and a device set (the rest), standing in for the paper's
    CPU-thread / accelerator-stream pair.  Each lane loops: pop the
    lowest-index ready task of its class, run it, retire it (waking
    lanes whose tasks became ready).  Popping lowest-index-first makes
    the schedule deterministic given the lane interleaving — and the
    result is bit-identical regardless of interleaving because tasks
    only commute when the spec carries no edge between them. *)

type mode =
  | Sequential  (** program order on the calling domain — the reference *)
  | Barrier
      (** level-synchronous: only tasks of the current ASAP level may
          start, all lanes meet between levels (the paper's
          kernel-barrier execution) *)
  | Async  (** fully dependency-driven: any ready task may start *)
  | Steal
      (** dependency-driven over per-lane work-stealing deques: a lane
          pushes the tasks it enables onto its own deque and pops LIFO
          (hottest first); when dry it steals FIFO from a random
          same-class victim, and blocks on a condition variable after a
          fruitless sweep.  Same logging, tracing and bit-identity
          guarantees as [Async] — only the schedule differs. *)

val mode_name : mode -> string

(** One retired task, for the observability log.  [start_seq] and
    [finish_seq] are draws from one atomic counter shared by the whole
    phase run: task [a] provably finished before task [b] started iff
    [a.finish_seq < b.start_seq] — the happens-before witness the
    scheduling tests check, robust where wall-clock stamps tie. *)
type entry = {
  e_phase : [ `Early | `Final ];
  e_substep : int;
  e_task : int;  (** index into the phase's task array *)
  e_instance : string;  (** instance id, e.g. "B1" *)
  e_lane : int;
  e_start_seq : int;
  e_finish_seq : int;
  e_t0 : float;
  e_t1 : float;
}

type log = entry list ref

(** Online sanitizer hook ([Analysis.Tsan] is the client).  When one is
    installed, {!run_phase} calls [san_phase_begin] once at entry,
    [san_task_begin]/[san_task_end] around {e every} task body (from
    whichever lane runs it — the callbacks must be thread-safe), and
    [san_phase_end] on normal completion.  [task] indexes the phase's
    task array; [lane] is the worker lane.  When none is installed the
    only cost is one ref load and a match per phase run plus a match
    per task — the hot kernels never pay for the hook.

    An abandoned phase ({!Preempted}) skips [san_phase_end]; monitors
    must treat [san_phase_begin] as a full reset. *)
type sanitizer = {
  san_phase_begin : phase:[ `Early | `Final ] -> substep:int -> n_tasks:int -> unit;
  san_task_begin : task:int -> lane:int -> unit;
  san_task_end : task:int -> lane:int -> unit;
  san_phase_end : unit -> unit;
}

(** Install (or clear, with [None]) the process-wide sanitizer.  Only
    call between phase runs: {!run_phase} captures the hook at entry,
    so a mid-phase swap is unseen by running lanes. *)
val set_sanitizer : sanitizer option -> unit

exception Preempted
(** Raised by {!run_phase} when the cooperative [preempt] flag fires:
    the phase stops cleanly at a task boundary, but tasks already
    retired have written their outputs — the caller owns deciding
    whether the partial state is recoverable (the serving layer
    restores from a checkpoint). *)

(** [run_phase ~mode ~pool ~host_lanes ~phase ~substep ~instrument spec
    bodies] executes [bodies] (aligned with [spec.tasks]) under the
    spec's edges.  [instrument] wraps every task body (it may be called
    concurrently from several lanes).  [pool = None] runs single-lane.
    When a trace sink is set, each task records a span (category
    ["task"]) tagged with instance, substep and lane.  Appends to [log]
    when given, newest first.

    [preempt] is the cooperative eviction hook: polled on the
    orchestrating domain — between task retires in [Sequential] mode,
    at phase entry in the pooled modes (worker lanes never raise) —
    and when it returns [true] the run aborts with {!Preempted}. *)
val run_phase :
  ?log:log ->
  ?preempt:(unit -> bool) ->
  mode:mode ->
  pool:Pool.t option ->
  host_lanes:int ->
  phase:[ `Early | `Final ] ->
  substep:int ->
  instrument:(Spec.task -> (unit -> unit) -> unit) ->
  Spec.phase ->
  (unit -> unit) array ->
  unit
