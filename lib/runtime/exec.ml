open Mpas_par
open Mpas_patterns

type mode = Sequential | Barrier | Async | Steal

let mode_name = function
  | Sequential -> "sequential"
  | Barrier -> "barrier"
  | Async -> "async"
  | Steal -> "steal"

type entry = {
  e_phase : [ `Early | `Final ];
  e_substep : int;
  e_task : int;
  e_instance : string;
  e_lane : int;
  e_start_seq : int;
  e_finish_seq : int;
  e_t0 : float;
  e_t1 : float;
}

type log = entry list ref

(* Online sanitizer hook (see Analysis.Tsan).  [run_phase] reads the
   installed sanitizer exactly once at phase entry — the off path costs
   one ref load and a match — and the runners call the task callbacks
   around every body, from whichever lane runs it.  Install/remove only
   between phase runs: the runners capture the value at entry, so a
   mid-phase swap is not seen (and would race on the ref). *)
type sanitizer = {
  san_phase_begin : phase:[ `Early | `Final ] -> substep:int -> n_tasks:int -> unit;
  san_task_begin : task:int -> lane:int -> unit;
  san_task_end : task:int -> lane:int -> unit;
  san_phase_end : unit -> unit;
}

let sanitizer_hook : sanitizer option ref = ref None
let set_sanitizer s = sanitizer_hook := s

exception Preempted

let now = Mpas_obs.Trace.now

let trace_task (tk : Spec.task) ~substep ~lane ~t0 =
  let id = tk.Spec.instance.Pattern.id in
  Mpas_obs.Trace.complete ~cat:"task" ~t0
    ~args:
      [
        ("instance", id);
        ("substep", string_of_int substep);
        ("lane", string_of_int lane);
        ( "part",
          match tk.Spec.part with
          | None -> "full"
          | Some (f0, f1) -> Printf.sprintf "%g-%g" f0 f1 );
      ]
    ("task." ^ id)

let run_sequential ?log ?(preempt = fun () -> false) ~san ~phase ~substep
    ~instrument (spec : Spec.phase) bodies =
  let seq = ref 0 in
  Array.iteri
    (fun i (tk : Spec.task) ->
      if preempt () then raise Preempted;
      let s0 = !seq in
      incr seq;
      let t0 = now () in
      (match san with None -> () | Some s -> s.san_task_begin ~task:i ~lane:0);
      instrument tk bodies.(i);
      (match san with None -> () | Some s -> s.san_task_end ~task:i ~lane:0);
      let t1 = now () in
      let s1 = !seq in
      incr seq;
      if Mpas_obs.Trace.enabled () then trace_task tk ~substep ~lane:0 ~t0;
      match log with
      | None -> ()
      | Some l ->
          l :=
            {
              e_phase = phase;
              e_substep = substep;
              e_task = i;
              e_instance = tk.Spec.instance.Pattern.id;
              e_lane = 0;
              e_start_seq = s0;
              e_finish_seq = s1;
              e_t0 = t0;
              e_t1 = t1;
            }
            :: !l)
    spec.Spec.tasks

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x < y -> x :: l
  | y :: rest -> y :: insert_sorted x rest

(* Dependency-driven execution over the pool's worker lanes.  All
   bookkeeping (ready queues, dependency counters, level cursor, log)
   lives under one mutex; task bodies run with it released.  Bodies
   must not raise — an escaped exception would wedge the other lanes. *)
let run_parallel ?log ~mode ~pool ~host_lanes ~san ~phase ~substep ~instrument
    (spec : Spec.phase) bodies =
  let tasks = spec.Spec.tasks in
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let lanes = match pool with None -> 1 | Some p -> Pool.size p in
    let host_lanes = Int.min host_lanes lanes in
    let needs c = Array.exists (fun tk -> tk.Spec.cls = c) tasks in
    if host_lanes < 1 && needs Spec.Host then
      invalid_arg "Mpas_runtime.Exec: program has host tasks but no host lane";
    if lanes - host_lanes < 1 && needs Spec.Device then
      invalid_arg
        "Mpas_runtime.Exec: program has device tasks but no device lane";
    let mu = Mutex.create () in
    let cv = Condition.create () in
    let indeg = Array.map (fun tk -> List.length tk.Spec.preds) tasks in
    let ready = [| ref []; ref [] |] in
    let qi = function Spec.Host -> 0 | Spec.Device -> 1 in
    let push i =
      let q = ready.(qi tasks.(i).Spec.cls) in
      q := insert_sorted i !q
    in
    Array.iteri (fun i d -> if d = 0 then push i) indeg;
    let remaining = ref n in
    let seq = Atomic.make 0 in
    let level = ref 0 in
    let level_left = Array.make spec.Spec.n_levels 0 in
    Array.iter
      (fun tk -> level_left.(tk.Spec.level) <- level_left.(tk.Spec.level) + 1)
      tasks;
    (* Lowest ready index of the lane's class; Barrier mode only
       releases tasks of the current level. *)
    let pop cls =
      let q = ready.(qi cls) in
      match mode with
      | Sequential | Async | Steal -> (
          match !q with
          | [] -> None
          | i :: rest ->
              q := rest;
              Some i)
      | Barrier ->
          let rec take skipped = function
            | [] -> None
            | i :: rest when tasks.(i).Spec.level = !level ->
                q := List.rev_append skipped rest;
                Some i
            | i :: rest -> take (i :: skipped) rest
          in
          take [] !q
    in
    let retire i ~lane ~s0 ~s1 ~t0 ~t1 =
      (match log with
      | None -> ()
      | Some l ->
          l :=
            {
              e_phase = phase;
              e_substep = substep;
              e_task = i;
              e_instance = tasks.(i).Spec.instance.Pattern.id;
              e_lane = lane;
              e_start_seq = s0;
              e_finish_seq = s1;
              e_t0 = t0;
              e_t1 = t1;
            }
            :: !l);
      decr remaining;
      let tk = tasks.(i) in
      level_left.(tk.Spec.level) <- level_left.(tk.Spec.level) - 1;
      while !level < spec.Spec.n_levels && level_left.(!level) = 0 do
        incr level
      done;
      List.iter
        (fun s ->
          indeg.(s) <- indeg.(s) - 1;
          if indeg.(s) = 0 then push s)
        tk.Spec.succs;
      Condition.broadcast cv
    in
    let lane_body ~lane =
      let cls = if lane < host_lanes then Spec.Host else Spec.Device in
      Mutex.lock mu;
      let rec loop () =
        if !remaining = 0 then Mutex.unlock mu
        else
          match pop cls with
          | Some i ->
              Mutex.unlock mu;
              let s0 = Atomic.fetch_and_add seq 1 in
              let t0 = now () in
              (match san with
              | None -> ()
              | Some s -> s.san_task_begin ~task:i ~lane);
              instrument tasks.(i) bodies.(i);
              (match san with
              | None -> ()
              | Some s -> s.san_task_end ~task:i ~lane);
              let t1 = now () in
              let s1 = Atomic.fetch_and_add seq 1 in
              if Mpas_obs.Trace.enabled () then
                trace_task tasks.(i) ~substep ~lane ~t0;
              Mutex.lock mu;
              retire i ~lane ~s0 ~s1 ~t0 ~t1;
              loop ()
          | None ->
              Condition.wait cv mu;
              loop ()
      in
      loop ()
    in
    match pool with
    | None -> lane_body ~lane:0
    | Some p -> Pool.run_team p lane_body
  end

(* Work-stealing execution: one deque per worker lane.  A lane pushes
   the tasks it enables onto its own deque and pops LIFO from the
   bottom; when dry it steals FIFO from the top of a random same-class
   victim, and after a full fruitless sweep it blocks on a condition
   variable (essential on machines with fewer cores than lanes — a
   spinning thief would starve the lane holding the work).  Dependency
   counters are atomic, the start/finish sequence numbers come from the
   same global atomic counter as the other modes, and the log gets the
   same entries, so [Races.check_log] replays stolen schedules
   unchanged. *)
let run_stealing ?log ~pool ~host_lanes ~san ~phase ~substep ~instrument
    (spec : Spec.phase) bodies =
  let tasks = spec.Spec.tasks in
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let lanes = match pool with None -> 1 | Some p -> Pool.size p in
    let host_lanes = Int.min host_lanes lanes in
    let needs c = Array.exists (fun tk -> tk.Spec.cls = c) tasks in
    if host_lanes < 1 && needs Spec.Host then
      invalid_arg "Mpas_runtime.Exec: program has host tasks but no host lane";
    if lanes - host_lanes < 1 && needs Spec.Device then
      invalid_arg
        "Mpas_runtime.Exec: program has device tasks but no device lane";
    let deques = Array.init lanes (fun _ -> Deque.create ()) in
    let host_set = Array.init host_lanes Fun.id in
    let device_set =
      Array.init (lanes - host_lanes) (fun k -> host_lanes + k)
    in
    let set_of = function Spec.Host -> host_set | Spec.Device -> device_set in
    let indeg =
      Array.map (fun tk -> Atomic.make (List.length tk.Spec.preds)) tasks
    in
    let remaining = Atomic.make n in
    let seq = Atomic.make 0 in
    (* Sleep coordination: [version] is bumped under [mu] whenever work
       is pushed or the phase drains; a thief that swept every deque
       empty re-checks the version it read before the sweep and only
       then waits, so no wakeup is lost.  [sleepers] counts lanes
       blocked on [cv]: wakeups are gated on it and on there being
       surplus work (more than the enabling lane will immediately pop
       itself), so a phase whose DAG is momentarily sequential does not
       pay a thundering herd of futile wakeups per retire — the
       dominant cost when the machine has fewer cores than lanes. *)
    let mu = Mutex.create () in
    let cv = Condition.create () in
    let version = ref 0 in
    let sleepers = ref 0 in
    (* Cores the OS can actually run lanes on: waking a thief beyond
       this only adds context-switch churn (lanes > cores is the normal
       shape when the pool emulates accelerator lanes), so surplus-work
       wakeups stop once every core has an awake lane. *)
    let hw_cores = Domain.recommended_domain_count () in
    let rr = [| Atomic.make 0; Atomic.make 0 |] in
    let spread i =
      let cls = tasks.(i).Spec.cls in
      let set = set_of cls in
      let k =
        Atomic.fetch_and_add rr.(match cls with Spec.Host -> 0 | Spec.Device -> 1) 1
      in
      Deque.push_bottom deques.(set.(k mod Array.length set)) i
    in
    Array.iteri (fun i tk -> if tk.Spec.preds = [] then spread i) tasks;
    let lane_body ~lane =
      let cls = if lane < host_lanes then Spec.Host else Spec.Device in
      let my = deques.(lane) in
      let mates = set_of cls in
      let rng = ref (((lane + 1) * 0x9E3779B9) lor 1) in
      let rand_below k =
        let x = !rng in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 7) in
        let x = (x lxor (x lsl 17)) land max_int in
        rng := x lor 1;
        x mod k
      in
      let try_steal () =
        let nm = Array.length mates in
        if nm <= 1 then None
        else begin
          let start = rand_below nm in
          let rec go k =
            if k = nm then None
            else
              let v = mates.((start + k) mod nm) in
              if v = lane then go (k + 1)
              else
                match Deque.steal_top deques.(v) with
                | Some _ as r -> r
                | None -> go (k + 1)
          in
          go 0
        end
      in
      let run i =
        let s0 = Atomic.fetch_and_add seq 1 in
        let t0 = now () in
        (match san with None -> () | Some s -> s.san_task_begin ~task:i ~lane);
        instrument tasks.(i) bodies.(i);
        (match san with None -> () | Some s -> s.san_task_end ~task:i ~lane);
        let t1 = now () in
        let s1 = Atomic.fetch_and_add seq 1 in
        if Mpas_obs.Trace.enabled () then trace_task tasks.(i) ~substep ~lane ~t0;
        let pushed = ref 0 and spread_out = ref false in
        List.iter
          (fun s ->
            if Atomic.fetch_and_add indeg.(s) (-1) = 1 then begin
              incr pushed;
              if tasks.(s).Spec.cls = cls then Deque.push_bottom my s
              else begin
                spread s;
                spread_out := true
              end
            end)
          tasks.(i).Spec.succs;
        let last = Atomic.fetch_and_add remaining (-1) = 1 in
        if !pushed > 0 || last || log <> None then begin
          Mutex.lock mu;
          (match log with
          | None -> ()
          | Some l ->
              l :=
                {
                  e_phase = phase;
                  e_substep = substep;
                  e_task = i;
                  e_instance = tasks.(i).Spec.instance.Pattern.id;
                  e_lane = lane;
                  e_start_seq = s0;
                  e_finish_seq = s1;
                  e_t0 = t0;
                  e_t1 = t1;
                }
                :: !l);
          if !pushed > 0 then incr version;
          (* Drained, or work landed on a lane that may be asleep: wake
             everyone.  Otherwise wake a single thief, and only when
             this lane's deque holds more than the task it pops next —
             a surplus a thief could actually take. *)
          if last || !spread_out then Condition.broadcast cv
          else if
            !sleepers > 0
            && lanes - !sleepers < hw_cores
            && Deque.size my > 1
          then Condition.signal cv;
          Mutex.unlock mu
        end
      in
      let rec loop () =
        if Atomic.get remaining > 0 then begin
          Mutex.lock mu;
          let v0 = !version in
          Mutex.unlock mu;
          match Deque.pop_bottom my with
          | Some i ->
              run i;
              loop ()
          | None -> (
              match try_steal () with
              | Some i ->
                  run i;
                  loop ()
              | None ->
                  Mutex.lock mu;
                  if !version = v0 && Atomic.get remaining > 0 then begin
                    incr sleepers;
                    Condition.wait cv mu;
                    decr sleepers
                  end;
                  Mutex.unlock mu;
                  loop ())
        end
      in
      loop ()
    in
    match pool with
    | None -> lane_body ~lane:0
    | Some p -> Pool.run_team p lane_body
  end

let run_phase ?log ?preempt ~mode ~pool ~host_lanes ~phase ~substep
    ~instrument spec bodies =
  let san = !sanitizer_hook in
  (match san with
  | None -> ()
  | Some s ->
      s.san_phase_begin ~phase ~substep
        ~n_tasks:(Array.length spec.Spec.tasks));
  (match mode with
  | Sequential ->
      run_sequential ?log ?preempt ~san ~phase ~substep ~instrument spec
        bodies
  | Barrier | Async ->
      (* Worker lanes must not raise (an escaped exception would wedge
         the team), so the parallel modes only honour the preempt flag
         at phase entry, before any lane launches. *)
      (match preempt with Some p when p () -> raise Preempted | _ -> ());
      run_parallel ?log ~mode ~pool ~host_lanes ~san ~phase ~substep
        ~instrument spec bodies
  | Steal ->
      (match preempt with Some p when p () -> raise Preempted | _ -> ());
      run_stealing ?log ~pool ~host_lanes ~san ~phase ~substep ~instrument
        spec bodies);
  match san with None -> () | Some s -> s.san_phase_end ()
