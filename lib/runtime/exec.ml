open Mpas_par
open Mpas_patterns

type mode = Sequential | Barrier | Async

let mode_name = function
  | Sequential -> "sequential"
  | Barrier -> "barrier"
  | Async -> "async"

type entry = {
  e_phase : [ `Early | `Final ];
  e_substep : int;
  e_task : int;
  e_instance : string;
  e_lane : int;
  e_start_seq : int;
  e_finish_seq : int;
  e_t0 : float;
  e_t1 : float;
}

type log = entry list ref

let now = Mpas_obs.Trace.now

let trace_task (tk : Spec.task) ~substep ~lane ~t0 =
  let id = tk.Spec.instance.Pattern.id in
  Mpas_obs.Trace.complete ~cat:"task" ~t0
    ~args:
      [
        ("instance", id);
        ("substep", string_of_int substep);
        ("lane", string_of_int lane);
        ( "part",
          match tk.Spec.part with
          | None -> "full"
          | Some (f0, f1) -> Printf.sprintf "%g-%g" f0 f1 );
      ]
    ("task." ^ id)

let run_sequential ?log ~phase ~substep ~instrument (spec : Spec.phase) bodies =
  let seq = ref 0 in
  Array.iteri
    (fun i (tk : Spec.task) ->
      let s0 = !seq in
      incr seq;
      let t0 = now () in
      instrument tk bodies.(i);
      let t1 = now () in
      let s1 = !seq in
      incr seq;
      if Mpas_obs.Trace.enabled () then trace_task tk ~substep ~lane:0 ~t0;
      match log with
      | None -> ()
      | Some l ->
          l :=
            {
              e_phase = phase;
              e_substep = substep;
              e_task = i;
              e_instance = tk.Spec.instance.Pattern.id;
              e_lane = 0;
              e_start_seq = s0;
              e_finish_seq = s1;
              e_t0 = t0;
              e_t1 = t1;
            }
            :: !l)
    spec.Spec.tasks

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x < y -> x :: l
  | y :: rest -> y :: insert_sorted x rest

(* Dependency-driven execution over the pool's worker lanes.  All
   bookkeeping (ready queues, dependency counters, level cursor, log)
   lives under one mutex; task bodies run with it released.  Bodies
   must not raise — an escaped exception would wedge the other lanes. *)
let run_parallel ?log ~mode ~pool ~host_lanes ~phase ~substep ~instrument
    (spec : Spec.phase) bodies =
  let tasks = spec.Spec.tasks in
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let lanes = match pool with None -> 1 | Some p -> Pool.size p in
    let host_lanes = Int.min host_lanes lanes in
    let needs c = Array.exists (fun tk -> tk.Spec.cls = c) tasks in
    if host_lanes < 1 && needs Spec.Host then
      invalid_arg "Mpas_runtime.Exec: program has host tasks but no host lane";
    if lanes - host_lanes < 1 && needs Spec.Device then
      invalid_arg
        "Mpas_runtime.Exec: program has device tasks but no device lane";
    let mu = Mutex.create () in
    let cv = Condition.create () in
    let indeg = Array.map (fun tk -> List.length tk.Spec.preds) tasks in
    let ready = [| ref []; ref [] |] in
    let qi = function Spec.Host -> 0 | Spec.Device -> 1 in
    let push i =
      let q = ready.(qi tasks.(i).Spec.cls) in
      q := insert_sorted i !q
    in
    Array.iteri (fun i d -> if d = 0 then push i) indeg;
    let remaining = ref n in
    let seq = Atomic.make 0 in
    let level = ref 0 in
    let level_left = Array.make spec.Spec.n_levels 0 in
    Array.iter
      (fun tk -> level_left.(tk.Spec.level) <- level_left.(tk.Spec.level) + 1)
      tasks;
    (* Lowest ready index of the lane's class; Barrier mode only
       releases tasks of the current level. *)
    let pop cls =
      let q = ready.(qi cls) in
      match mode with
      | Sequential | Async -> (
          match !q with
          | [] -> None
          | i :: rest ->
              q := rest;
              Some i)
      | Barrier ->
          let rec take skipped = function
            | [] -> None
            | i :: rest when tasks.(i).Spec.level = !level ->
                q := List.rev_append skipped rest;
                Some i
            | i :: rest -> take (i :: skipped) rest
          in
          take [] !q
    in
    let retire i ~lane ~s0 ~s1 ~t0 ~t1 =
      (match log with
      | None -> ()
      | Some l ->
          l :=
            {
              e_phase = phase;
              e_substep = substep;
              e_task = i;
              e_instance = tasks.(i).Spec.instance.Pattern.id;
              e_lane = lane;
              e_start_seq = s0;
              e_finish_seq = s1;
              e_t0 = t0;
              e_t1 = t1;
            }
            :: !l);
      decr remaining;
      let tk = tasks.(i) in
      level_left.(tk.Spec.level) <- level_left.(tk.Spec.level) - 1;
      while !level < spec.Spec.n_levels && level_left.(!level) = 0 do
        incr level
      done;
      List.iter
        (fun s ->
          indeg.(s) <- indeg.(s) - 1;
          if indeg.(s) = 0 then push s)
        tk.Spec.succs;
      Condition.broadcast cv
    in
    let lane_body ~lane =
      let cls = if lane < host_lanes then Spec.Host else Spec.Device in
      Mutex.lock mu;
      let rec loop () =
        if !remaining = 0 then Mutex.unlock mu
        else
          match pop cls with
          | Some i ->
              Mutex.unlock mu;
              let s0 = Atomic.fetch_and_add seq 1 in
              let t0 = now () in
              instrument tasks.(i) bodies.(i);
              let t1 = now () in
              let s1 = Atomic.fetch_and_add seq 1 in
              if Mpas_obs.Trace.enabled () then
                trace_task tasks.(i) ~substep ~lane ~t0;
              Mutex.lock mu;
              retire i ~lane ~s0 ~s1 ~t0 ~t1;
              loop ()
          | None ->
              Condition.wait cv mu;
              loop ()
      in
      loop ()
    in
    match pool with
    | None -> lane_body ~lane:0
    | Some p -> Pool.run_team p lane_body
  end

let run_phase ?log ~mode ~pool ~host_lanes ~phase ~substep ~instrument spec
    bodies =
  match mode with
  | Sequential -> run_sequential ?log ~phase ~substep ~instrument spec bodies
  | Barrier | Async ->
      run_parallel ?log ~mode ~pool ~host_lanes ~phase ~substep ~instrument
        spec bodies
