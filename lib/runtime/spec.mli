open Mpas_patterns

(** Static task programs for one RK-4 step, derived from the data-flow
    diagram ({!Mpas_dataflow.Graph}).

    A step runs the {e early} phase three times (substeps 0-2:
    compute_tend, enforce_boundary_edge, compute_next_substep_state,
    compute_solve_diagnostics, accumulative_update) and the {e final}
    phase once (substep 3: tend, boundary, accumulate-into-state,
    diagnostics of the new state, reconstruction).  Within a phase,
    tasks carry every edge a scheduler must respect:

    - the RAW dependences of the diagram (a consumer after its last
      writer), via {!Mpas_dataflow.Graph.ready_order};
    - WAR/WAW hazard edges the static diagram does not carry: an
      instance reading a variable of the {e previous} substep (a graph
      "source") must finish before this substep's writer of that
      variable starts — e.g. B1 reads the old [ke] that A2 overwrites,
      and the whole tend group reads the [provis] state X3 replaces.

    Instances a {!Mpas_hybrid.Plan} marks [Adjustable] are expanded
    into two tasks over complementary index fractions — the paper's
    tunable split applied to real index ranges. *)

type cls = Host | Device

(** Which halo field a communication task moves.  [cm_rank] is the
    rank whose per-rank array the task touches; the fan-in [Exchange]
    task moves every rank's buffer and carries [cm_rank = -1]. *)
type comm = { cm_field : string; cm_point : Pattern.point; cm_rank : int }

(** Communication tasks are first-class DAG nodes: [Pack] copies a
    rank's boundary values of a field into its send buffer, [Exchange]
    moves every rank's send buffer into the receive buffers (the
    simulated wire), [Unpack] writes the received owner values into a
    rank's ghost slots.  [Compute] is every task [build] emits; the
    overlapped distributed driver ([Mpas_dist.Overlap]) synthesizes the
    comm kinds with explicit footprints so boundary-compute -> pack ->
    exchange -> unpack -> consumer are real hazard edges while interior
    compute overlaps the exchange. *)
type kind = Compute | Pack of comm | Exchange of comm | Unpack of comm

val kind_name : kind -> string

(** The comm payload of a non-[Compute] kind. *)
val comm_of : kind -> comm option

type task = {
  index : int;  (** position in the phase array (a topological order) *)
  instance : Pattern.instance;
      (** first member of the fused chain (the whole chain when the
          task is unfused); final-phase diagnostics appear with their
          inputs renamed [provis_h -> h], [provis_u -> u] *)
  members : Pattern.instance list;
      (** kernel instances this task runs back-to-back, in order; a
          singleton unless [build ~fuse:true] packed a legal chain *)
  part : (float * float) option;
      (** fraction of the members' index spaces this task covers;
          [None] = the full range (executes the CSR fast paths) *)
  cls : cls;  (** worker-lane class the task may run on *)
  kind : kind;  (** [Compute] for every task [build] emits *)
  level : int;  (** ASAP level under the full edge set *)
  preds : int list;  (** task indices that must finish first *)
  succs : int list;
}

type phase = { tasks : task array; n_levels : int }

type t = { early : phase; final : phase }

(** The registry instances the early phase runs (everything except
    reconstruction), in driver execution order. *)
val early_instances : unit -> Pattern.instance list

(** The instances the final phase runs: tend, boundary, accumulation,
    diagnostics with inputs renamed [provis_h -> h] / [provis_u -> u],
    and (when [recon]) reconstruction — in driver execution order. *)
val final_instances : recon:bool -> Pattern.instance list

(** [build ?plan ?split ?fuse ?tile ~recon ()] expands the registry
    into the two phase programs.  Without [plan] every task is [Host]
    class and runs the full index range.  [split] (default 0.5,
    clamped to [0, 1]) is the host fraction of [Adjustable] instances;
    fractions of 0 or 1 collapse the pair back into a single
    full-range task.  [recon] selects whether the final phase includes
    A4/X6.

    [fuse] (default false) packs legal kernel chains into super-tasks
    at build time: a greedy planner walks a topological order and
    extends the open chain with any ready instance sharing the chain's
    index spaces and placement whose access summary raises no
    stencil-RAW/WAR or blind-WAW conflict ({!Mpas_dataflow.Fusion}).
    A fused task lists its chain in [members], inherits the union of
    the members' edges (internal edges collapse), and is compiled by
    [Bind] to one closure running the members back-to-back per tile.

    [tile] (default [fun _ -> 1]) maps an instance to a tile count;
    a chain uses the max over its members and is expanded into that
    many equal index fractions (intersected with the [split] point for
    [Adjustable] chains), giving the scheduler units worth stealing
    while each tile's intermediates stay cache-hot. *)
val build :
  ?plan:Mpas_hybrid.Plan.t ->
  ?split:float ->
  ?fuse:bool ->
  ?tile:(Pattern.instance -> int) ->
  recon:bool ->
  unit ->
  t

(** True when some task of either phase is [Device] class — such a
    program needs at least one device lane to make progress. *)
val uses_device : t -> bool

(** Structural validation used by the tests: every pred/succ pair is
    symmetric, edges go forward, levels are monotone, parts tile the
    unit interval.  Returns violations, empty when well formed. *)
val check : t -> string list
