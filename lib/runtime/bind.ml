open Mpas_mesh
open Mpas_swe
open Mpas_patterns

type env = {
  cfg : Config.t;
  mesh : Mesh.t;
  b : float array;
  dt : float;
  state : Fields.state;
  work : Timestep.workspace;
  recon : Reconstruct.t option;
  mutable rk : int;
}

let cut n f =
  let k = int_of_float (Float.round (f *. float_of_int n)) in
  Int.max 0 (Int.min n k)

let part_range ~n (f0, f1) =
  let lo = cut n f0 and hi = cut n f1 in
  Array.init (Int.max 0 (hi - lo)) (fun k -> lo + k)

(* Contiguous [lo, hi) of a part over an n-element space; the same
   cut points as [part_range], so the fused tile kernels cover exactly
   the indices the member-sequential path would. *)
let bounds n = function
  | None -> (0, n)
  | Some (f0, f1) -> (cut n f0, cut n f1)

let timestep_kernel : Pattern.kernel -> Timestep.kernel = function
  | Pattern.Compute_tend -> Timestep.Compute_tend
  | Pattern.Enforce_boundary_edge -> Timestep.Enforce_boundary_edge
  | Pattern.Compute_next_substep_state -> Timestep.Compute_next_substep_state
  | Pattern.Compute_solve_diagnostics -> Timestep.Compute_solve_diagnostics
  | Pattern.Accumulative_update -> Timestep.Accumulative_update
  | Pattern.Mpas_reconstruct -> Timestep.Mpas_reconstruct
  | Pattern.Halo_exchange -> Timestep.Halo_exchange

let space_size (m : Mesh.t) = function
  | Pattern.Mass -> m.Mesh.n_cells
  | Pattern.Velocity -> m.Mesh.n_edges
  | Pattern.Vorticity -> m.Mesh.n_vertices

let substep_coef env = [| env.dt /. 2.; env.dt /. 2.; env.dt |]

let accum_coef env =
  [| env.dt /. 6.; env.dt /. 3.; env.dt /. 3.; env.dt /. 6. |]

(* The shared instance-to-closure table.  [on] is the index subset for
   an instance with a single iteration space; X3/X4/X5 use [on_cells] /
   [on_edges] instead.  [None] = the full range (CSR fast paths). *)
let compile_body env ~final ~(on : int array option)
    ~(on_cells : int array option) ~(on_edges : int array option)
    (inst : Pattern.instance) =
  let m = env.mesh and cfg = env.cfg and work = env.work in
  let diag = work.Timestep.diag and tend = work.Timestep.tend in
  let provis = work.Timestep.provis and accum = work.Timestep.accum in
  (* The tend group always reads the provisional state (also in the
     final substep); renamed diagnostics/reconstruction read the
     updated state the final X4/X5 publish. *)
  let src = if final then env.state else provis in
  let substep_coef = substep_coef env in
  let accum_coef = accum_coef env in
  match inst.Pattern.id with
  (* compute_tend *)
  | "A1" ->
      fun () ->
        Operators.tend_h ?on m ~h_edge:diag.Fields.h_edge ~u:provis.Fields.u
          ~out:tend.Fields.tend_h
  | "B1" ->
      fun () ->
        Operators.tend_u ?on ~pv_average:cfg.Config.pv_average m
          ~gravity:cfg.Config.gravity ~h:provis.Fields.h ~b:env.b
          ~ke:diag.Fields.ke ~h_edge:diag.Fields.h_edge ~u:provis.Fields.u
          ~pv_edge:diag.Fields.pv_edge ~out:tend.Fields.tend_u
  | "C1" ->
      fun () ->
        Operators.dissipation ?on m ~visc2:cfg.Config.visc2
          ~divergence:diag.Fields.divergence ~vorticity:diag.Fields.vorticity
          ~tend_u:tend.Fields.tend_u
  | "X1" ->
      fun () ->
        Operators.local_forcing ?on m ~drag:cfg.Config.bottom_drag
          ~u:provis.Fields.u ~tend_u:tend.Fields.tend_u
  (* enforce_boundary_edge *)
  | "X2" -> fun () -> Operators.enforce_boundary_edge ?on m ~tend_u:tend.Fields.tend_u
  (* compute_next_substep_state (early phases only) *)
  | "X3" ->
      fun () ->
        Operators.next_substep_state ?on_cells ?on_edges m
          ~coef:substep_coef.(env.rk) ~base:env.state ~tend ~provis
  (* compute_solve_diagnostics *)
  | "H2" -> (
      match cfg.Config.h_adv_order with
      | Config.Second -> fun () -> ()
      | Config.Fourth ->
          fun () ->
            Operators.d2fdx2 ?on m ~h:src.Fields.h
              ~out:diag.Fields.d2fdx2_cell)
  | "B2" ->
      fun () ->
        Operators.h_edge ?on m ~order:cfg.Config.h_adv_order ~h:src.Fields.h
          ~d2fdx2_cell:diag.Fields.d2fdx2_cell ~out:diag.Fields.h_edge
  | "A2" ->
      fun () -> Operators.kinetic_energy ?on m ~u:src.Fields.u ~out:diag.Fields.ke
  | "A3" ->
      fun () ->
        Operators.divergence ?on m ~u:src.Fields.u ~out:diag.Fields.divergence
  | "D1" ->
      fun () ->
        Operators.vorticity ?on m ~u:src.Fields.u ~out:diag.Fields.vorticity
  | "C2" ->
      fun () ->
        Operators.h_vertex ?on m ~h:src.Fields.h ~out:diag.Fields.h_vertex
  | "D2" ->
      fun () ->
        Operators.pv_vertex ?on m ~vorticity:diag.Fields.vorticity
          ~h_vertex:diag.Fields.h_vertex ~out:diag.Fields.pv_vertex
  | "E" ->
      fun () ->
        Operators.pv_cell ?on m ~pv_vertex:diag.Fields.pv_vertex
          ~out:diag.Fields.pv_cell
  | "G" ->
      fun () ->
        Operators.tangential_velocity ?on m ~u:src.Fields.u
          ~out:diag.Fields.v_tangential
  | "H1" ->
      fun () ->
        Operators.grad_pv ?on m ~pv_cell:diag.Fields.pv_cell
          ~pv_vertex:diag.Fields.pv_vertex ~out_n:diag.Fields.grad_pv_n
          ~out_t:diag.Fields.grad_pv_t
  | "F" ->
      fun () ->
        Operators.pv_edge ?on m ~apvm_factor:cfg.Config.apvm_factor ~dt:env.dt
          ~pv_vertex:diag.Fields.pv_vertex ~grad_pv_n:diag.Fields.grad_pv_n
          ~grad_pv_t:diag.Fields.grad_pv_t ~u:src.Fields.u
          ~v_tangential:diag.Fields.v_tangential ~out:diag.Fields.pv_edge
  (* accumulative_update; in the final substep the task also publishes
     its slice of the accumulator into the state (the blit of the
     sequential driver, split per space and per part) *)
  | "X4" ->
      fun () ->
        Operators.accumulate ?on_cells ~on_edges:[||] m
          ~coef:accum_coef.(env.rk) ~tend ~accum;
        if final then
          (match on_cells with
          | None ->
              Array.blit accum.Fields.h 0 env.state.Fields.h 0 m.Mesh.n_cells
          | Some idx ->
              Array.iter
                (fun c -> env.state.Fields.h.(c) <- accum.Fields.h.(c))
                idx)
  | "X5" ->
      fun () ->
        Operators.accumulate ~on_cells:[||] ?on_edges m
          ~coef:accum_coef.(env.rk) ~tend ~accum;
        if final then
          (match on_edges with
          | None ->
              Array.blit accum.Fields.u 0 env.state.Fields.u 0 m.Mesh.n_edges
          | Some idx ->
              Array.iter
                (fun e -> env.state.Fields.u.(e) <- accum.Fields.u.(e))
                idx)
  (* mpas_reconstruct (final phase only) *)
  | "A4" -> (
      match env.recon with
      | None -> invalid_arg "Mpas_runtime.Bind: A4 compiled without recon"
      | Some r ->
          fun () ->
            Reconstruct.run_cartesian ?on r m ~u:env.state.Fields.u
              ~out:work.Timestep.recon)
  | "X6" -> (
      match env.recon with
      | None -> invalid_arg "Mpas_runtime.Bind: X6 compiled without recon"
      | Some r ->
          fun () -> Reconstruct.run_horizontal ?on r m ~out:work.Timestep.recon)
  | id -> invalid_arg ("Mpas_runtime.Bind: unknown instance " ^ id)

let compile_single env ~final ~part (inst : Pattern.instance) =
  let m = env.mesh in
  let on =
    match (part, inst.Pattern.spaces) with
    | None, _ -> None
    | Some p, [ sp ] -> Some (part_range ~n:(space_size m sp) p)
    | Some _, _ -> None
  in
  let on_cells = Option.map (part_range ~n:m.Mesh.n_cells) part in
  let on_edges = Option.map (part_range ~n:m.Mesh.n_edges) part in
  compile_body env ~final ~on ~on_cells ~on_edges inst

(* Explicit index subsets instead of part fractions: the distributed
   overlap driver compiles each instance once per rank per
   interior/boundary region. *)
let compile_on env ~final ~on_cells ~on_edges ~on_vertices
    (inst : Pattern.instance) =
  let on =
    match inst.Pattern.spaces with
    | [ Pattern.Mass ] -> Some on_cells
    | [ Pattern.Velocity ] -> Some on_edges
    | [ Pattern.Vorticity ] -> Some on_vertices
    | _ -> None
  in
  compile_body env ~final ~on ~on_cells:(Some on_cells)
    ~on_edges:(Some on_edges) inst

(* Communication bodies: plain array copies over precomputed ghost
   maps (supplied by [Mpas_dist.Exchange]); the runtime stays free of
   a dist dependency.  Each is bitwise the per-entity copy
   [Exchange.exchange] performs, split into its pack / wire / unpack
   thirds so the scheduler can overlap them with interior compute. *)

(* [buf.(j) <- src.(send.(j))] *)
let pack_body ~src ~send ~buf () =
  Array.iteri (fun j i -> Array.unsafe_set buf j (Array.unsafe_get src i)) send

(* The simulated wire: every rank's send buffer into its receive
   mirror. *)
let transfer_body ~sbufs ~rbufs () =
  Array.iteri
    (fun r sb -> Array.blit sb 0 rbufs.(r) 0 (Array.length sb))
    sbufs

(* [dst.(ghosts.(j)) <- rbufs.(from_rank.(j)).(from_off.(j))]: the
   owner's packed value lands in this rank's ghost slot. *)
let unpack_body ~dst ~ghosts ~from_rank ~from_off ~rbufs () =
  Array.iteri
    (fun j g -> dst.(g) <- rbufs.(from_rank.(j)).(from_off.(j)))
    ghosts

(* Specialized closures for the fused chains the spec planner packs.
   Each handler consumes a maximal prefix of the member list and
   returns the remaining members; anything it does not recognize falls
   back to the member-sequential path, so correctness never depends on
   the planner's exact output. *)
let compile_segment env ~final ~part (insts : Pattern.instance list) =
  let m = env.mesh and cfg = env.cfg and work = env.work in
  let diag = work.Timestep.diag and tend = work.Timestep.tend in
  let provis = work.Timestep.provis and accum = work.Timestep.accum in
  let src = if final then env.state else provis in
  let accum_coef = accum_coef env in
  let substep_coef = substep_coef env in
  let eat id l =
    match l with
    | (x : Pattern.instance) :: tl when x.Pattern.id = id -> (true, tl)
    | _ -> (false, l)
  in
  (* The accumulative updates read the coefficient of the live RK
     substep at call time, like the member-sequential path. *)
  let x4_arg present =
    if present then
      Some
        ( accum_coef.(env.rk),
          accum.Fields.h,
          if final then Some env.state.Fields.h else None )
    else None
  in
  let x5_arg present =
    if present then
      Some
        ( accum_coef.(env.rk),
          accum.Fields.u,
          if final then Some env.state.Fields.u else None )
    else None
  in
  match insts with
  | [] -> None
  | first :: rest0 -> (
      match first.Pattern.id with
      | "A1" ->
          let x4, rest = eat "X4" rest0 in
          let lo, hi = bounds m.Mesh.n_cells part in
          Some
            ( (fun () ->
                Fused.tend_h_chain m ~h_edge:diag.Fields.h_edge
                  ~u:provis.Fields.u ~out:tend.Fields.tend_h ~x4:(x4_arg x4)
                  ~lo ~hi),
              rest )
      | "B1" ->
          let c1, rest = eat "C1" rest0 in
          let x1, rest = eat "X1" rest in
          let x2, rest = eat "X2" rest in
          let x5, rest = eat "X5" rest in
          let lo, hi = bounds m.Mesh.n_edges part in
          let dissip =
            if c1 && cfg.Config.visc2 <> 0. then
              Some
                ( cfg.Config.visc2,
                  diag.Fields.divergence,
                  diag.Fields.vorticity )
            else None
          in
          let drag = if x1 then cfg.Config.bottom_drag else 0. in
          let boundary = x2 && Array.exists Fun.id m.Mesh.boundary_edge in
          Some
            ( (fun () ->
                Fused.tend_u_chain m ~pv_average:cfg.Config.pv_average
                  ~gravity:cfg.Config.gravity ~h:provis.Fields.h ~b:env.b
                  ~ke:diag.Fields.ke ~h_edge:diag.Fields.h_edge
                  ~u:provis.Fields.u ~pv_edge:diag.Fields.pv_edge
                  ~out:tend.Fields.tend_u ~dissip ~drag ~boundary
                  ~x5:(x5_arg x5) ~lo ~hi),
              rest )
      | "H2" | "A2" ->
          let h2 = first.Pattern.id = "H2" in
          let a2, rest =
            if h2 then eat "A2" rest0 else (true, rest0)
          in
          let a3, rest = eat "A3" rest in
          let x4, rest = eat "X4" rest in
          let d2 =
            if h2 && cfg.Config.h_adv_order = Config.Fourth then
              Some diag.Fields.d2fdx2_cell
            else None
          in
          let ke_out = if a2 then Some diag.Fields.ke else None in
          let div_out = if a3 then Some diag.Fields.divergence else None in
          let lo, hi = bounds m.Mesh.n_cells part in
          if
            (* a lone H2 at second-order advection is a no-op; don't
               compile it to an empty sweep *)
            Option.is_none d2 && Option.is_none ke_out
            && Option.is_none div_out && not x4
          then Some ((fun () -> ()), rest)
          else
            Some
              ( (fun () ->
                  Fused.diag_cells_chain m ~h:src.Fields.h ~u:src.Fields.u ~d2
                    ~ke_out ~div_out ~x4:(x4_arg x4) ~tend_h:tend.Fields.tend_h
                    ~lo ~hi),
                rest )
      | "B2" ->
          let g, rest = eat "G" rest0 in
          let x5, rest = eat "X5" rest in
          let g_arg =
            if g then Some (src.Fields.u, diag.Fields.v_tangential) else None
          in
          let lo, hi = bounds m.Mesh.n_edges part in
          Some
            ( (fun () ->
                Fused.diag_edges_chain m ~order:cfg.Config.h_adv_order
                  ~h:src.Fields.h ~d2fdx2_cell:diag.Fields.d2fdx2_cell
                  ~h_edge_out:diag.Fields.h_edge ~g:g_arg ~x5:(x5_arg x5)
                  ~tend_u:tend.Fields.tend_u ~lo ~hi),
              rest )
      | "X3" ->
          let clo, chi = bounds m.Mesh.n_cells part in
          let elo, ehi = bounds m.Mesh.n_edges part in
          Some
            ( (fun () ->
                Fused.next_substep_range m ~coef:substep_coef.(env.rk)
                  ~base:env.state ~tend ~provis ~clo ~chi ~elo ~ehi),
              rest0 )
      | "E" ->
          let lo, hi = bounds m.Mesh.n_cells part in
          Some
            ( (fun () ->
                Fused.pv_cell_range m ~pv_vertex:diag.Fields.pv_vertex
                  ~out:diag.Fields.pv_cell ~lo ~hi),
              rest0 )
      | "D1" ->
          let c2, rest = eat "C2" rest0 in
          let d2, rest = if c2 then eat "D2" rest else (false, rest) in
          let hv_out = if c2 then Some diag.Fields.h_vertex else None in
          let pv_out = if d2 then Some diag.Fields.pv_vertex else None in
          let lo, hi = bounds m.Mesh.n_vertices part in
          Some
            ( (fun () ->
                Fused.vortex_chain m ~u:src.Fields.u ~h:src.Fields.h
                  ~vort_out:diag.Fields.vorticity ~hv_out ~pv_out ~lo ~hi),
              rest )
      | "G" | "H1" -> (
          let g_arg, rest =
            if first.Pattern.id = "G" then
              match rest0 with
              | h1 :: tl when h1.Pattern.id = "H1" ->
                  (Some (Some (src.Fields.u, diag.Fields.v_tangential)), tl)
              | _ -> (None, rest0)
            else (Some None, rest0)
          in
          match g_arg with
          | None -> None (* bare G not followed by H1: member path *)
          | Some g ->
              let f, rest = eat "F" rest in
              let f_arg =
                if f then
                  Some
                    ( cfg.Config.apvm_factor,
                      env.dt,
                      src.Fields.u,
                      diag.Fields.v_tangential,
                      diag.Fields.pv_edge )
                else None
              in
              let lo, hi = bounds m.Mesh.n_edges part in
              Some
                ( (fun () ->
                    Fused.pv_edge_chain m ~g ~pv_cell:diag.Fields.pv_cell
                      ~pv_vertex:diag.Fields.pv_vertex
                      ~gn_out:diag.Fields.grad_pv_n
                      ~gt_out:diag.Fields.grad_pv_t ~f:f_arg ~lo ~hi),
                  rest ))
      | "A4" -> (
          match env.recon with
          | None -> invalid_arg "Mpas_runtime.Bind: A4 compiled without recon"
          | Some r ->
              let x6, rest = eat "X6" rest0 in
              let lo, hi = bounds m.Mesh.n_cells part in
              Some
                ( (fun () ->
                    Reconstruct.run_range r m ~u:env.state.Fields.u
                      ~out:work.Timestep.recon ~x6 ~lo ~hi),
                  rest ))
      | _ -> None)

let rec compile_members env ~final ~part = function
  | [] -> []
  | first :: rest as insts -> (
      match compile_segment env ~final ~part insts with
      | Some (body, rest') -> body :: compile_members env ~final ~part rest'
      | None ->
          compile_single env ~final ~part first
          :: compile_members env ~final ~part rest)

(* Single-member tasks go through [compile_segment] too: a tiled part
   of a lone kernel must reach the contiguous-range fast kernels, not
   [compile_single]'s ragged index fallback. *)
let compile env ~final (tk : Spec.task) =
  match compile_members env ~final ~part:tk.Spec.part tk.Spec.members with
  | [] -> fun () -> ()
  | [ body ] -> body
  | bodies ->
      let bodies = Array.of_list bodies in
      fun () -> Array.iter (fun body -> body ()) bodies
