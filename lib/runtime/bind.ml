open Mpas_mesh
open Mpas_swe
open Mpas_patterns

type env = {
  cfg : Config.t;
  mesh : Mesh.t;
  b : float array;
  dt : float;
  state : Fields.state;
  work : Timestep.workspace;
  recon : Reconstruct.t option;
  mutable rk : int;
}

let cut n f =
  let k = int_of_float (Float.round (f *. float_of_int n)) in
  Int.max 0 (Int.min n k)

let part_range ~n (f0, f1) =
  let lo = cut n f0 and hi = cut n f1 in
  Array.init (Int.max 0 (hi - lo)) (fun k -> lo + k)

let timestep_kernel : Pattern.kernel -> Timestep.kernel = function
  | Pattern.Compute_tend -> Timestep.Compute_tend
  | Pattern.Enforce_boundary_edge -> Timestep.Enforce_boundary_edge
  | Pattern.Compute_next_substep_state -> Timestep.Compute_next_substep_state
  | Pattern.Compute_solve_diagnostics -> Timestep.Compute_solve_diagnostics
  | Pattern.Accumulative_update -> Timestep.Accumulative_update
  | Pattern.Mpas_reconstruct -> Timestep.Mpas_reconstruct

let space_size (m : Mesh.t) = function
  | Pattern.Mass -> m.Mesh.n_cells
  | Pattern.Velocity -> m.Mesh.n_edges
  | Pattern.Vorticity -> m.Mesh.n_vertices

let compile env ~final (tk : Spec.task) =
  let m = env.mesh and cfg = env.cfg and work = env.work in
  let diag = work.Timestep.diag and tend = work.Timestep.tend in
  let provis = work.Timestep.provis and accum = work.Timestep.accum in
  let inst = tk.Spec.instance in
  (* Index subset for the instance's single space; X3/X4/X5 derive
     their per-space ranges below instead. *)
  let on =
    match (tk.Spec.part, inst.Pattern.spaces) with
    | None, _ -> None
    | Some p, [ sp ] -> Some (part_range ~n:(space_size m sp) p)
    | Some _, _ -> None
  in
  let on_cells_of part = Option.map (part_range ~n:m.Mesh.n_cells) part in
  let on_edges_of part = Option.map (part_range ~n:m.Mesh.n_edges) part in
  (* The tend group always reads the provisional state (also in the
     final substep); renamed diagnostics/reconstruction read the
     updated state the final X4/X5 publish. *)
  let src = if final then env.state else provis in
  let substep_coef = [| env.dt /. 2.; env.dt /. 2.; env.dt |] in
  let accum_coef =
    [| env.dt /. 6.; env.dt /. 3.; env.dt /. 3.; env.dt /. 6. |]
  in
  match inst.Pattern.id with
  (* compute_tend *)
  | "A1" ->
      fun () ->
        Operators.tend_h ?on m ~h_edge:diag.Fields.h_edge ~u:provis.Fields.u
          ~out:tend.Fields.tend_h
  | "B1" ->
      fun () ->
        Operators.tend_u ?on ~pv_average:cfg.Config.pv_average m
          ~gravity:cfg.Config.gravity ~h:provis.Fields.h ~b:env.b
          ~ke:diag.Fields.ke ~h_edge:diag.Fields.h_edge ~u:provis.Fields.u
          ~pv_edge:diag.Fields.pv_edge ~out:tend.Fields.tend_u
  | "C1" ->
      fun () ->
        Operators.dissipation ?on m ~visc2:cfg.Config.visc2
          ~divergence:diag.Fields.divergence ~vorticity:diag.Fields.vorticity
          ~tend_u:tend.Fields.tend_u
  | "X1" ->
      fun () ->
        Operators.local_forcing ?on m ~drag:cfg.Config.bottom_drag
          ~u:provis.Fields.u ~tend_u:tend.Fields.tend_u
  (* enforce_boundary_edge *)
  | "X2" -> fun () -> Operators.enforce_boundary_edge ?on m ~tend_u:tend.Fields.tend_u
  (* compute_next_substep_state (early phases only) *)
  | "X3" ->
      let on_cells = on_cells_of tk.Spec.part
      and on_edges = on_edges_of tk.Spec.part in
      fun () ->
        Operators.next_substep_state ?on_cells ?on_edges m
          ~coef:substep_coef.(env.rk) ~base:env.state ~tend ~provis
  (* compute_solve_diagnostics *)
  | "H2" -> (
      match cfg.Config.h_adv_order with
      | Config.Second -> fun () -> ()
      | Config.Fourth ->
          fun () ->
            Operators.d2fdx2 ?on m ~h:src.Fields.h
              ~out:diag.Fields.d2fdx2_cell)
  | "B2" ->
      fun () ->
        Operators.h_edge ?on m ~order:cfg.Config.h_adv_order ~h:src.Fields.h
          ~d2fdx2_cell:diag.Fields.d2fdx2_cell ~out:diag.Fields.h_edge
  | "A2" ->
      fun () -> Operators.kinetic_energy ?on m ~u:src.Fields.u ~out:diag.Fields.ke
  | "A3" ->
      fun () ->
        Operators.divergence ?on m ~u:src.Fields.u ~out:diag.Fields.divergence
  | "D1" ->
      fun () ->
        Operators.vorticity ?on m ~u:src.Fields.u ~out:diag.Fields.vorticity
  | "C2" ->
      fun () ->
        Operators.h_vertex ?on m ~h:src.Fields.h ~out:diag.Fields.h_vertex
  | "D2" ->
      fun () ->
        Operators.pv_vertex ?on m ~vorticity:diag.Fields.vorticity
          ~h_vertex:diag.Fields.h_vertex ~out:diag.Fields.pv_vertex
  | "E" ->
      fun () ->
        Operators.pv_cell ?on m ~pv_vertex:diag.Fields.pv_vertex
          ~out:diag.Fields.pv_cell
  | "G" ->
      fun () ->
        Operators.tangential_velocity ?on m ~u:src.Fields.u
          ~out:diag.Fields.v_tangential
  | "H1" ->
      fun () ->
        Operators.grad_pv ?on m ~pv_cell:diag.Fields.pv_cell
          ~pv_vertex:diag.Fields.pv_vertex ~out_n:diag.Fields.grad_pv_n
          ~out_t:diag.Fields.grad_pv_t
  | "F" ->
      fun () ->
        Operators.pv_edge ?on m ~apvm_factor:cfg.Config.apvm_factor ~dt:env.dt
          ~pv_vertex:diag.Fields.pv_vertex ~grad_pv_n:diag.Fields.grad_pv_n
          ~grad_pv_t:diag.Fields.grad_pv_t ~u:src.Fields.u
          ~v_tangential:diag.Fields.v_tangential ~out:diag.Fields.pv_edge
  (* accumulative_update; in the final substep the task also publishes
     its slice of the accumulator into the state (the blit of the
     sequential driver, split per space and per part) *)
  | "X4" ->
      let on_cells = on_cells_of tk.Spec.part in
      fun () ->
        Operators.accumulate ?on_cells ~on_edges:[||] m
          ~coef:accum_coef.(env.rk) ~tend ~accum;
        if final then
          (match on_cells with
          | None ->
              Array.blit accum.Fields.h 0 env.state.Fields.h 0 m.Mesh.n_cells
          | Some idx ->
              Array.iter
                (fun c -> env.state.Fields.h.(c) <- accum.Fields.h.(c))
                idx)
  | "X5" ->
      let on_edges = on_edges_of tk.Spec.part in
      fun () ->
        Operators.accumulate ~on_cells:[||] ?on_edges m
          ~coef:accum_coef.(env.rk) ~tend ~accum;
        if final then
          (match on_edges with
          | None ->
              Array.blit accum.Fields.u 0 env.state.Fields.u 0 m.Mesh.n_edges
          | Some idx ->
              Array.iter
                (fun e -> env.state.Fields.u.(e) <- accum.Fields.u.(e))
                idx)
  (* mpas_reconstruct (final phase only) *)
  | "A4" -> (
      match env.recon with
      | None -> invalid_arg "Mpas_runtime.Bind: A4 compiled without recon"
      | Some r ->
          fun () ->
            Reconstruct.run_cartesian ?on r m ~u:env.state.Fields.u
              ~out:work.Timestep.recon)
  | "X6" -> (
      match env.recon with
      | None -> invalid_arg "Mpas_runtime.Bind: X6 compiled without recon"
      | Some r ->
          fun () -> Reconstruct.run_horizontal ?on r m ~out:work.Timestep.recon)
  | id -> invalid_arg ("Mpas_runtime.Bind: unknown instance " ^ id)
