open Mpas_mesh
open Mpas_swe

(** The kernel binding table: every pattern instance of
    {!Mpas_patterns.Registry} compiled to a closure over the real SWE
    kernel bodies ({!Mpas_swe.Operators}, {!Mpas_swe.Reconstruct}).

    Bodies run {e without} a pool: a task executes entirely on the
    worker lane that popped it, so full-range tasks take the packed CSR
    fast paths and part-range tasks the ragged [?on] forms — both
    bit-identical to the sequential [Timestep.refactored] engine. *)

(** Everything a step's closures capture.  [rk] is mutated by the
    engine between substeps; closures read it at call time, so one
    compiled program serves all four substeps. *)
type env = {
  cfg : Config.t;
  mesh : Mesh.t;
  b : float array;
  dt : float;
  state : Fields.state;
  work : Timestep.workspace;
  recon : Reconstruct.t option;
  mutable rk : int;
}

(** The index range a part fraction covers in a space of [n] indices:
    [round (f0 n), round (f1 n)) — complementary fractions tile the
    space exactly. *)
val part_range : n:int -> float * float -> int array

(** Pattern kernels and Timestep kernels mirror each other; the runtime
    reports through [Timestep]'s instrument hook. *)
val timestep_kernel : Mpas_patterns.Pattern.kernel -> Timestep.kernel

(** [compile env ~final task] resolves the task's instance id to its
    kernel body over [env].  [final] selects the last-substep variants:
    diagnostics and reconstruction read [env.state] instead of the
    provisional fields, and X4/X5 additionally publish their slice of
    the accumulator into [env.state].  A fused task (more than one
    [members] entry) compiles to one closure running the chain
    back-to-back over the task's tile, using the specialized
    super-kernels of {!Mpas_swe.Fused} for recognized chain shapes and
    the member-sequential bodies otherwise — both bit-identical to the
    unfused program.  Raises [Invalid_argument] for an id outside the
    registry or a reconstruction task without [env.recon]. *)
val compile : env -> final:bool -> Spec.task -> unit -> unit
