open Mpas_mesh
open Mpas_swe

(** The kernel binding table: every pattern instance of
    {!Mpas_patterns.Registry} compiled to a closure over the real SWE
    kernel bodies ({!Mpas_swe.Operators}, {!Mpas_swe.Reconstruct}).

    Bodies run {e without} a pool: a task executes entirely on the
    worker lane that popped it, so full-range tasks take the packed CSR
    fast paths and part-range tasks the ragged [?on] forms — both
    bit-identical to the sequential [Timestep.refactored] engine. *)

(** Everything a step's closures capture.  [rk] is mutated by the
    engine between substeps; closures read it at call time, so one
    compiled program serves all four substeps. *)
type env = {
  cfg : Config.t;
  mesh : Mesh.t;
  b : float array;
  dt : float;
  state : Fields.state;
  work : Timestep.workspace;
  recon : Reconstruct.t option;
  mutable rk : int;
}

(** The index range a part fraction covers in a space of [n] indices:
    [round (f0 n), round (f1 n)) — complementary fractions tile the
    space exactly. *)
val part_range : n:int -> float * float -> int array

(** Pattern kernels and Timestep kernels mirror each other; the runtime
    reports through [Timestep]'s instrument hook. *)
val timestep_kernel : Mpas_patterns.Pattern.kernel -> Timestep.kernel

(** Index-range length of a mesh-point space. *)
val space_size : Mesh.t -> Mpas_patterns.Pattern.point -> int

(** [compile_on env ~final ~on_cells ~on_edges ~on_vertices inst]
    compiles one instance over explicit index subsets instead of part
    fractions — the form the distributed overlap driver uses to run
    each instance once per rank per interior/boundary region.  An
    instance with a single iteration space takes the subset of that
    space; X3/X4/X5 take [on_cells]/[on_edges] directly. *)
val compile_on :
  env ->
  final:bool ->
  on_cells:int array ->
  on_edges:int array ->
  on_vertices:int array ->
  Mpas_patterns.Pattern.instance ->
  unit ->
  unit

(** {2 Communication bodies}

    Buffer copies over precomputed ghost maps, used by
    [Mpas_dist.Overlap] to compile [Spec.Pack]/[Exchange]/[Unpack]
    tasks.  Together they perform bitwise the same per-entity copy as
    [Mpas_dist.Exchange.exchange], split into schedulable thirds. *)

(** [pack_body ~src ~send ~buf ()] copies [src.(send.(j))] into
    [buf.(j)]. *)
val pack_body : src:float array -> send:int array -> buf:float array -> unit -> unit

(** [transfer_body ~sbufs ~rbufs ()] blits every rank's send buffer
    into its receive mirror — the simulated wire. *)
val transfer_body :
  sbufs:float array array -> rbufs:float array array -> unit -> unit

(** [unpack_body ~dst ~ghosts ~from_rank ~from_off ~rbufs ()] writes
    [rbufs.(from_rank.(j)).(from_off.(j))] into [dst.(ghosts.(j))] —
    the owner's packed value into this rank's ghost slot. *)
val unpack_body :
  dst:float array ->
  ghosts:int array ->
  from_rank:int array ->
  from_off:int array ->
  rbufs:float array array ->
  unit ->
  unit

(** [compile env ~final task] resolves the task's instance id to its
    kernel body over [env].  [final] selects the last-substep variants:
    diagnostics and reconstruction read [env.state] instead of the
    provisional fields, and X4/X5 additionally publish their slice of
    the accumulator into [env.state].  A fused task (more than one
    [members] entry) compiles to one closure running the chain
    back-to-back over the task's tile, using the specialized
    super-kernels of {!Mpas_swe.Fused} for recognized chain shapes and
    the member-sequential bodies otherwise — both bit-identical to the
    unfused program.  Raises [Invalid_argument] for an id outside the
    registry or a reconstruction task without [env.recon]. *)
val compile : env -> final:bool -> Spec.task -> unit -> unit
