open Mpas_patterns

type cls = Host | Device

type comm = { cm_field : string; cm_point : Pattern.point; cm_rank : int }

type kind = Compute | Pack of comm | Exchange of comm | Unpack of comm

let kind_name = function
  | Compute -> "compute"
  | Pack _ -> "pack"
  | Exchange _ -> "exchange"
  | Unpack _ -> "unpack"

let comm_of = function
  | Compute -> None
  | Pack c | Exchange c | Unpack c -> Some c

type task = {
  index : int;
  instance : Pattern.instance;
  members : Pattern.instance list;
  part : (float * float) option;
  cls : cls;
  kind : kind;
  level : int;
  preds : int list;
  succs : int list;
}

type phase = { tasks : task array; n_levels : int }

type t = { early : phase; final : phase }

(* WAR/WAW hazard edges the RAW diagram omits: every reader of [v] must
   finish before the next writer of [v] starts (the tend group still
   reads the previous substep's diagnostics while this substep's
   diagnostics instances want to overwrite them), and two writers of
   the same variable stay ordered.  Indices are list positions. *)
let hazard_edges insts =
  let readers : (string, int list) Hashtbl.t = Hashtbl.create 32 in
  let last_writer : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let edges = ref [] in
  List.iteri
    (fun i (inst : Pattern.instance) ->
      List.iter
        (fun v ->
          let r = Option.value ~default:[] (Hashtbl.find_opt readers v) in
          Hashtbl.replace readers v (i :: r))
        inst.Pattern.inputs;
      List.iter
        (fun v ->
          List.iter
            (fun j -> if j <> i then edges := (j, i) :: !edges)
            (Option.value ~default:[] (Hashtbl.find_opt readers v));
          (match Hashtbl.find_opt last_writer v with
          | Some w when w <> i -> edges := (w, i) :: !edges
          | _ -> ());
          Hashtbl.replace readers v [];
          Hashtbl.replace last_writer v i)
        inst.Pattern.outputs)
    insts;
  !edges

(* Full per-node edge set: the RAW dependences of the data-flow diagram
   (seeded through Graph.ready_order, the same view Hybrid.Schedule
   consumes) plus the hazard edges. *)
let node_edges insts =
  let g = Mpas_dataflow.Graph.of_instances insts in
  let raw =
    List.concat_map
      (fun (i, _indeg) ->
        List.map (fun p -> (p, i)) (Mpas_dataflow.Graph.preds g i))
      (Mpas_dataflow.Graph.ready_order g)
  in
  List.sort_uniq compare (raw @ hazard_edges insts)

(* In the final substep the diagnostics run on the state the
   accumulative update just produced, not on the provisional fields. *)
let rename_final (inst : Pattern.instance) =
  let r = function "provis_h" -> "h" | "provis_u" -> "u" | v -> v in
  {
    inst with
    Pattern.inputs = List.map r inst.Pattern.inputs;
    neighbour_inputs = List.map r inst.Pattern.neighbour_inputs;
  }

let early_instances () =
  List.filter
    (fun (i : Pattern.instance) -> i.Pattern.kernel <> Pattern.Mpas_reconstruct)
    Registry.instances

let final_instances ~recon =
  Registry.of_kernel Pattern.Compute_tend
  @ Registry.of_kernel Pattern.Enforce_boundary_edge
  @ Registry.of_kernel Pattern.Accumulative_update
  @ List.map rename_final (Registry.of_kernel Pattern.Compute_solve_diagnostics)
  @ (if recon then Registry.of_kernel Pattern.Mpas_reconstruct else [])

let clamp01 f = Float.max 0. (Float.min 1. f)

(* Greedy super-task packer.  Walks a topological order of the node
   graph keeping one open chain; a node whose predecessors are all
   retired (or already in the chain) joins the chain when it lives in
   the same index spaces, carries the same placement, and the
   Access-level legality of {!Mpas_dataflow.Fusion} finds no
   stencil-RAW, stencil-WAR or blind-WAW hazard against any member
   (point-wise RAW through a register stays legal).  When no ready
   node can extend the chain it is closed and the lowest-index ready
   node opens the next one.  Chains are contiguous runs of a
   topological order, so collapsing each to a node leaves the quotient
   graph acyclic. *)
let pack_chains ~fuse ~place (insts_a : Pattern.instance array) edges =
  let n = Array.length insts_a in
  if not fuse then List.init n (fun i -> [ i ])
  else begin
    let preds = Array.make n [] in
    List.iter (fun (s, d) -> preds.(d) <- s :: preds.(d)) edges;
    (* 0 = todo, 1 = in the open chain, 2 = done *)
    let state = Array.make n 0 in
    let ready i = state.(i) = 0 && List.for_all (fun p -> state.(p) > 0) preds.(i) in
    let chains = ref [] in
    let chain = ref [] (* forward order *) in
    let left = ref n in
    let close () =
      if !chain <> [] then begin
        List.iter (fun i -> state.(i) <- 2) !chain;
        chains := !chain :: !chains;
        chain := []
      end
    in
    let extends i =
      match !chain with
      | [] -> true
      | first :: _ ->
          place insts_a.(i).Pattern.id = place insts_a.(first).Pattern.id
          && Mpas_dataflow.Fusion.can_follow
               ~chain:(List.map (fun j -> insts_a.(j)) !chain)
               insts_a.(i)
    in
    while !left > 0 do
      let cand =
        let rec find i =
          if i >= n then None
          else if ready i && extends i then Some i
          else find (i + 1)
        in
        find 0
      in
      match cand with
      | Some i ->
          state.(i) <- 1;
          chain := !chain @ [ i ];
          decr left
      | None ->
          if !chain = [] then invalid_arg "Spec.build: cyclic node graph";
          close ()
    done;
    close ();
    List.rev !chains
  end

(* Exact tile boundaries 0 = b0 < ... < bk = 1: uniform [ntiles] cuts
   plus the optional split point.  Adjacent parts share the very same
   float, so [check]'s exact-tiling invariant holds. *)
let boundaries ntiles extra =
  let pts = ref [ 1. ] in
  for k = ntiles - 1 downto 1 do
    pts := (float_of_int k /. float_of_int ntiles) :: !pts
  done;
  let pts =
    match extra with
    | None -> !pts
    | Some f -> List.sort_uniq compare (f :: !pts)
  in
  List.filter (fun f -> f > 0. && f <= 1.) pts

let segments bs =
  let rec go lo = function
    | [] -> []
    | hi :: rest -> (lo, hi) :: go hi rest
  in
  go 0. bs

let build ?plan ?(split = 0.5) ?(fuse = false) ?(tile = fun _ -> 1) ~recon () =
  let split = clamp01 split in
  let place =
    match plan with
    | None -> fun _ -> Mpas_hybrid.Plan.Host
    | Some p -> p.Mpas_hybrid.Plan.place
  in
  let build_phase insts =
    let insts_a = Array.of_list insts in
    let edges = node_edges insts in
    let chains = Array.of_list (pack_chains ~fuse ~place insts_a edges) in
    let nc = Array.length chains in
    let chain_of = Array.make (Array.length insts_a) 0 in
    Array.iteri
      (fun ci mem -> List.iter (fun i -> chain_of.(i) <- ci) mem)
      chains;
    let qedges =
      List.sort_uniq compare
        (List.filter_map
           (fun (s, d) ->
             let cs = chain_of.(s) and cd = chain_of.(d) in
             if cs = cd then None else Some (cs, cd))
           edges)
    in
    let members_of ci = List.map (fun i -> insts_a.(i)) chains.(ci) in
    let uniform ntiles c =
      if ntiles <= 1 then [ (None, c) ]
      else
        List.map (fun seg -> (Some seg, c)) (segments (boundaries ntiles None))
    in
    let parts =
      Array.init nc (fun ci ->
          let members = members_of ci in
          let ntiles =
            List.fold_left
              (fun a (m : Pattern.instance) -> Int.max a (Int.max 1 (tile m)))
              1 members
          in
          match place (List.hd members).Pattern.id with
          | Mpas_hybrid.Plan.Host -> uniform ntiles Host
          | Mpas_hybrid.Plan.Device -> uniform ntiles Device
          | Mpas_hybrid.Plan.Adjustable ->
              if split <= 0. then uniform ntiles Device
              else if split >= 1. then uniform ntiles Host
              else
                List.map
                  (fun (f0, f1) ->
                    ( Some (f0, f1),
                      if 0.5 *. (f0 +. f1) < split then Host else Device ))
                  (segments (boundaries ntiles (Some split))))
    in
    let task_ids = Array.make nc [] in
    let count = ref 0 in
    Array.iteri
      (fun ci ps ->
        task_ids.(ci) <-
          List.map
            (fun _ ->
              let k = !count in
              incr count;
              k)
            ps)
      parts;
    let n_tasks = !count in
    let preds = Array.make n_tasks [] and succs = Array.make n_tasks [] in
    List.iter
      (fun (s, d) ->
        List.iter
          (fun ts ->
            List.iter
              (fun td ->
                preds.(td) <- ts :: preds.(td);
                succs.(ts) <- td :: succs.(ts))
              task_ids.(d))
          task_ids.(s))
      qedges;
    (* Task order is topological (chain order is, and parts of one
       chain are mutually independent), so one forward sweep gives
       ASAP levels. *)
    let level = Array.make n_tasks 0 in
    for t = 0 to n_tasks - 1 do
      List.iter (fun p -> level.(t) <- Int.max level.(t) (level.(p) + 1)) preds.(t)
    done;
    let n_levels = Array.fold_left (fun a l -> Int.max a (l + 1)) 1 level in
    let owner = Array.make n_tasks (0, (None : (float * float) option), Host) in
    Array.iteri
      (fun ci ps ->
        List.iter2 (fun t (part, c) -> owner.(t) <- (ci, part, c)) task_ids.(ci) ps)
      parts;
    let tasks =
      Array.init n_tasks (fun t ->
          let ci, part, cls = owner.(t) in
          let members = members_of ci in
          {
            index = t;
            instance = List.hd members;
            members;
            part;
            cls;
            kind = Compute;
            level = level.(t);
            preds = List.sort_uniq compare preds.(t);
            succs = List.sort_uniq compare succs.(t);
          })
    in
    { tasks; n_levels }
  in
  {
    early = build_phase (early_instances ());
    final = build_phase (final_instances ~recon);
  }

let uses_device t =
  let has p = Array.exists (fun tk -> tk.cls = Device) p.tasks in
  has t.early || has t.final

let check t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let check_phase name p =
    Array.iteri
      (fun i tk ->
        if tk.index <> i then err "%s: task %d carries index %d" name i tk.index;
        (match tk.members with
        | first :: _ when first == tk.instance -> ()
        | _ -> err "%s: task %d instance is not the first member" name i);
        List.iter
          (fun pr ->
            if pr >= i then err "%s: backward edge %d -> %d" name pr i;
            if not (List.mem i p.tasks.(pr).succs) then
              err "%s: edge %d -> %d missing from succs" name pr i;
            if p.tasks.(pr).level >= tk.level then
              err "%s: level not increasing on %d -> %d" name pr i)
          tk.preds;
        List.iter
          (fun su ->
            if not (List.mem i p.tasks.(su).preds) then
              err "%s: edge %d -> %d missing from preds" name i su)
          tk.succs;
        if tk.level < 0 || tk.level >= p.n_levels then
          err "%s: task %d level %d out of range" name i tk.level;
        match tk.part with
        | None -> ()
        | Some (f0, f1) ->
            if not (0. <= f0 && f0 < f1 && f1 <= 1.) then
              err "%s: task %d part does not slice (0,1)" name i)
      p.tasks;
    let by_id = Hashtbl.create 8 in
    Array.iter
      (fun tk ->
        match tk.part with
        | None -> ()
        | Some pt ->
            List.iter
              (fun (m : Pattern.instance) ->
                let id = m.Pattern.id in
                Hashtbl.replace by_id id
                  (pt :: Option.value ~default:[] (Hashtbl.find_opt by_id id)))
              tk.members)
      p.tasks;
    Hashtbl.iter
      (fun id parts ->
        let parts = List.sort compare parts in
        let rec tiles lo = function
          | [] -> lo = 1.
          | (f0, f1) :: rest -> f0 = lo && tiles f1 rest
        in
        if not (tiles 0. parts) then
          err "%s: parts of %s do not tile the unit interval" name id)
      by_id
  in
  check_phase "early" t.early;
  check_phase "final" t.final;
  List.rev !errs
