open Mpas_patterns

type cls = Host | Device

type task = {
  index : int;
  instance : Pattern.instance;
  part : (float * float) option;
  cls : cls;
  level : int;
  preds : int list;
  succs : int list;
}

type phase = { tasks : task array; n_levels : int }

type t = { early : phase; final : phase }

(* WAR/WAW hazard edges the RAW diagram omits: every reader of [v] must
   finish before the next writer of [v] starts (the tend group still
   reads the previous substep's diagnostics while this substep's
   diagnostics instances want to overwrite them), and two writers of
   the same variable stay ordered.  Indices are list positions. *)
let hazard_edges insts =
  let readers : (string, int list) Hashtbl.t = Hashtbl.create 32 in
  let last_writer : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let edges = ref [] in
  List.iteri
    (fun i (inst : Pattern.instance) ->
      List.iter
        (fun v ->
          let r = Option.value ~default:[] (Hashtbl.find_opt readers v) in
          Hashtbl.replace readers v (i :: r))
        inst.Pattern.inputs;
      List.iter
        (fun v ->
          List.iter
            (fun j -> if j <> i then edges := (j, i) :: !edges)
            (Option.value ~default:[] (Hashtbl.find_opt readers v));
          (match Hashtbl.find_opt last_writer v with
          | Some w when w <> i -> edges := (w, i) :: !edges
          | _ -> ());
          Hashtbl.replace readers v [];
          Hashtbl.replace last_writer v i)
        inst.Pattern.outputs)
    insts;
  !edges

(* Full per-node edge set: the RAW dependences of the data-flow diagram
   (seeded through Graph.ready_order, the same view Hybrid.Schedule
   consumes) plus the hazard edges. *)
let node_edges insts =
  let g = Mpas_dataflow.Graph.of_instances insts in
  let raw =
    List.concat_map
      (fun (i, _indeg) ->
        List.map (fun p -> (p, i)) (Mpas_dataflow.Graph.preds g i))
      (Mpas_dataflow.Graph.ready_order g)
  in
  List.sort_uniq compare (raw @ hazard_edges insts)

(* In the final substep the diagnostics run on the state the
   accumulative update just produced, not on the provisional fields. *)
let rename_final (inst : Pattern.instance) =
  let r = function "provis_h" -> "h" | "provis_u" -> "u" | v -> v in
  {
    inst with
    Pattern.inputs = List.map r inst.Pattern.inputs;
    neighbour_inputs = List.map r inst.Pattern.neighbour_inputs;
  }

let early_instances () =
  List.filter
    (fun (i : Pattern.instance) -> i.Pattern.kernel <> Pattern.Mpas_reconstruct)
    Registry.instances

let final_instances ~recon =
  Registry.of_kernel Pattern.Compute_tend
  @ Registry.of_kernel Pattern.Enforce_boundary_edge
  @ Registry.of_kernel Pattern.Accumulative_update
  @ List.map rename_final (Registry.of_kernel Pattern.Compute_solve_diagnostics)
  @ (if recon then Registry.of_kernel Pattern.Mpas_reconstruct else [])

let clamp01 f = Float.max 0. (Float.min 1. f)

let build ?plan ?(split = 0.5) ~recon () =
  let split = clamp01 split in
  let place =
    match plan with
    | None -> fun _ -> Mpas_hybrid.Plan.Host
    | Some p -> p.Mpas_hybrid.Plan.place
  in
  let build_phase insts =
    let insts_a = Array.of_list insts in
    let n = Array.length insts_a in
    let edges = node_edges insts in
    let parts =
      Array.map
        (fun (inst : Pattern.instance) ->
          match place inst.Pattern.id with
          | Mpas_hybrid.Plan.Host -> [ (None, Host) ]
          | Mpas_hybrid.Plan.Device -> [ (None, Device) ]
          | Mpas_hybrid.Plan.Adjustable ->
              if split <= 0. then [ (None, Device) ]
              else if split >= 1. then [ (None, Host) ]
              else [ (Some (0., split), Host); (Some (split, 1.), Device) ])
        insts_a
    in
    let task_ids = Array.make n [] in
    let count = ref 0 in
    Array.iteri
      (fun i ps ->
        task_ids.(i) <-
          List.map
            (fun _ ->
              let k = !count in
              incr count;
              k)
            ps)
      parts;
    let n_tasks = !count in
    let preds = Array.make n_tasks [] and succs = Array.make n_tasks [] in
    List.iter
      (fun (s, d) ->
        List.iter
          (fun ts ->
            List.iter
              (fun td ->
                preds.(td) <- ts :: preds.(td);
                succs.(ts) <- td :: succs.(ts))
              task_ids.(d))
          task_ids.(s))
      edges;
    (* Task order is topological (node order is, and parts of one node
       are mutually independent), so one forward sweep gives ASAP
       levels. *)
    let level = Array.make n_tasks 0 in
    for t = 0 to n_tasks - 1 do
      List.iter (fun p -> level.(t) <- Int.max level.(t) (level.(p) + 1)) preds.(t)
    done;
    let n_levels = Array.fold_left (fun a l -> Int.max a (l + 1)) 1 level in
    let owner = Array.make n_tasks (0, (None : (float * float) option), Host) in
    Array.iteri
      (fun i ps ->
        List.iter2 (fun t (part, c) -> owner.(t) <- (i, part, c)) task_ids.(i) ps)
      parts;
    let tasks =
      Array.init n_tasks (fun t ->
          let node, part, cls = owner.(t) in
          {
            index = t;
            instance = insts_a.(node);
            part;
            cls;
            level = level.(t);
            preds = List.sort_uniq compare preds.(t);
            succs = List.sort_uniq compare succs.(t);
          })
    in
    { tasks; n_levels }
  in
  {
    early = build_phase (early_instances ());
    final = build_phase (final_instances ~recon);
  }

let uses_device t =
  let has p = Array.exists (fun tk -> tk.cls = Device) p.tasks in
  has t.early || has t.final

let check t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let check_phase name p =
    Array.iteri
      (fun i tk ->
        if tk.index <> i then err "%s: task %d carries index %d" name i tk.index;
        List.iter
          (fun pr ->
            if pr >= i then err "%s: backward edge %d -> %d" name pr i;
            if not (List.mem i p.tasks.(pr).succs) then
              err "%s: edge %d -> %d missing from succs" name pr i;
            if p.tasks.(pr).level >= tk.level then
              err "%s: level not increasing on %d -> %d" name pr i)
          tk.preds;
        List.iter
          (fun su ->
            if not (List.mem i p.tasks.(su).preds) then
              err "%s: edge %d -> %d missing from preds" name i su)
          tk.succs;
        if tk.level < 0 || tk.level >= p.n_levels then
          err "%s: task %d level %d out of range" name i tk.level;
        match tk.part with
        | None -> ()
        | Some (f0, f1) ->
            if not (0. <= f0 && f0 < f1 && f1 <= 1.) then
              err "%s: task %d part does not slice (0,1)" name i)
      p.tasks;
    let by_id = Hashtbl.create 8 in
    Array.iter
      (fun tk ->
        match tk.part with
        | None -> ()
        | Some pt ->
            let id = tk.instance.Pattern.id in
            Hashtbl.replace by_id id
              (pt :: Option.value ~default:[] (Hashtbl.find_opt by_id id)))
      p.tasks;
    Hashtbl.iter
      (fun id parts ->
        let parts = List.sort compare parts in
        let rec tiles lo = function
          | [] -> lo = 1.
          | (f0, f1) :: rest -> f0 = lo && tiles f1 rest
        in
        if not (tiles 0. parts) then
          err "%s: parts of %s do not tile the unit interval" name id)
      by_id
  in
  check_phase "early" t.early;
  check_phase "final" t.final;
  List.rev !errs
