open Mpas_par
open Mpas_swe
open Mpas_patterns

type cache = {
  c_cfg : Config.t;
  c_mesh : Mpas_mesh.Mesh.t;
  c_b : float array;
  c_dt : float;
  c_state : Fields.state;
  c_work : Timestep.workspace;
  c_recon : Reconstruct.t option;
  c_spec : Spec.t;
  c_env : Bind.env;
  c_early : (unit -> unit) array;
  c_final : (unit -> unit) array;
}

type tiling = [ `Off | `Auto | `Block of int ]

type t = {
  t_mode : Exec.mode;
  t_pool : Pool.t option;
  t_plan : Mpas_hybrid.Plan.t option;
  t_split : float;
  t_host_lanes : int;
  t_fuse : bool;
  t_tiling : tiling;
  t_log : Exec.log option;
  mutable t_cache : cache option;
}

let create ?(mode = Exec.Async) ?pool ?plan ?(split = 0.5) ?host_lanes
    ?(fuse = false) ?(tiling = `Off) ?log () =
  if not (0. <= split && split <= 1.) then
    invalid_arg "Mpas_runtime.Engine.create: split outside [0, 1]";
  (match tiling with
  | `Block b when b < 1 ->
      invalid_arg "Mpas_runtime.Engine.create: tile block < 1"
  | _ -> ());
  let lanes = match pool with None -> 1 | Some p -> Pool.size p in
  let host_lanes =
    match host_lanes with
    | Some h ->
        if h < 1 || h > lanes then
          invalid_arg "Mpas_runtime.Engine.create: host_lanes out of range";
        h
    | None -> (
        match plan with None -> lanes | Some _ -> Int.max 1 (lanes / 2))
  in
  (* Probe with the full instance set: a plan that puts work on the
     device needs a device lane regardless of reconstruction. *)
  (match plan with
  | Some _ when mode <> Exec.Sequential ->
      let probe = Spec.build ?plan ~split ~recon:true () in
      if Spec.uses_device probe && lanes - host_lanes < 1 then
        invalid_arg
          "Mpas_runtime.Engine.create: plan places device work but no lane \
           is left to serve it (pool too small or host_lanes too high)"
  | _ -> ());
  {
    t_mode = mode;
    t_pool = pool;
    t_plan = plan;
    t_split = split;
    t_host_lanes = host_lanes;
    t_fuse = fuse;
    t_tiling = tiling;
    t_log = log;
    t_cache = None;
  }

let mode t = t.t_mode
let split t = t.t_split
let host_lanes t = t.t_host_lanes
let fused t = t.t_fuse
let program t = Option.map (fun c -> c.c_spec) t.t_cache

(* A (super-)task's loop runs over its output space; tile count rounds
   the space length up into cache-sized blocks.  [`Auto] sizes the
   block from the host CPU's private L2 (every lane of this runtime is
   a CPU thread — the device lanes emulate the accelerator stream),
   but never cuts a space into more than ~2 tiles per core the OS can
   actually run: tiles below the cache block buy no locality, and
   tiles beyond the stealable parallelism only buy scheduler
   overhead. *)
let tile_fn tiling (m : Mpas_mesh.Mesh.t) =
  match tiling with
  | `Off -> fun _ -> 1
  | (`Auto | `Block _) as tl ->
      let block_of =
        match tl with
        | `Block b -> fun _ -> b
        | `Auto ->
            let cache_block =
              Mpas_machine.Hw.(tile_elements (cache_of xeon_e5_2680_v2))
            in
            let cores = Domain.recommended_domain_count () in
            fun len -> Int.max cache_block ((len + (2 * cores) - 1) / (2 * cores))
      in
      fun (inst : Pattern.instance) ->
        let space =
          match Pattern.stencil_output inst with
          | Some p -> p
          | None -> (
              match inst.Pattern.spaces with p :: _ -> p | [] -> Pattern.Mass)
        in
        let len =
          match space with
          | Pattern.Mass -> m.Mpas_mesh.Mesh.n_cells
          | Pattern.Velocity -> m.Mpas_mesh.Mesh.n_edges
          | Pattern.Vorticity -> m.Mpas_mesh.Mesh.n_vertices
        in
        let block = block_of len in
        Int.max 1 ((len + block - 1) / block)

let handles (cfg : Config.t) (state : Fields.state) =
  cfg.Config.integrator = Config.Rk4
  && cfg.Config.visc4 = 0.
  && Fields.n_tracers state = 0

let same_recon a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | _ -> false

(* Compiling the program is O(instances), not O(mesh); still, model
   runs call step with the same arrays every time, so one compiled
   program is reused for the whole run. *)
let prepare t cfg m ~b ~recon ~dt ~state ~work =
  match t.t_cache with
  | Some c
    when c.c_cfg = cfg && c.c_mesh == m && c.c_b == b && c.c_dt = dt
         && c.c_state == state && c.c_work == work
         && same_recon c.c_recon recon ->
      c
  | _ ->
      let spec =
        Spec.build ?plan:t.t_plan ~split:t.t_split ~fuse:t.t_fuse
          ~tile:(tile_fn t.t_tiling m) ~recon:(recon <> None) ()
      in
      let env =
        { Bind.cfg; mesh = m; b; dt; state; work; recon; rk = 0 }
      in
      let c =
        {
          c_cfg = cfg;
          c_mesh = m;
          c_b = b;
          c_dt = dt;
          c_state = state;
          c_work = work;
          c_recon = recon;
          c_spec = spec;
          c_env = env;
          c_early =
            Array.map (Bind.compile env ~final:false) spec.Spec.early.Spec.tasks;
          c_final =
            Array.map (Bind.compile env ~final:true) spec.Spec.final.Spec.tasks;
        }
      in
      t.t_cache <- Some c;
      c

let step t (e : Timestep.engine) cfg m ~b ~recon ~dt ~state ~work =
  if not (handles cfg state) then
    (* Outside the task program (SSP RK-3, tracers, del4): the classic
       driver, on the same pool. *)
    Timestep.step
      { e with Timestep.custom = None }
      cfg m ~b ?recon ~dt ~state ~work ()
  else begin
    let c = prepare t cfg m ~b ~recon ~dt ~state ~work in
    let env = c.c_env in
    Fields.blit_state ~src:state ~dst:work.Timestep.accum;
    Fields.blit_state ~src:state ~dst:work.Timestep.provis;
    let instrument tk body =
      e.Timestep.instrument
        (Bind.timestep_kernel tk.Spec.instance.Pattern.kernel)
        body
    in
    for rk = 0 to 2 do
      env.Bind.rk <- rk;
      Exec.run_phase ?log:t.t_log ~mode:t.t_mode ~pool:t.t_pool
        ~host_lanes:t.t_host_lanes ~phase:`Early ~substep:rk ~instrument
        c.c_spec.Spec.early c.c_early
    done;
    env.Bind.rk <- 3;
    Exec.run_phase ?log:t.t_log ~mode:t.t_mode ~pool:t.t_pool
      ~host_lanes:t.t_host_lanes ~phase:`Final ~substep:3 ~instrument
      c.c_spec.Spec.final c.c_final
  end

let timestep_engine t =
  let custom e cfg m ~b ~recon ~dt ~state ~work =
    step t e cfg m ~b ~recon ~dt ~state ~work
  in
  {
    Timestep.refactored with
    Timestep.pool = t.t_pool;
    custom = Some custom;
  }
