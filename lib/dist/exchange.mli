(** Rank-local compute sets and halo exchange for the simulated-MPI
    execution of the model.

    Ownership: a cell belongs to its partition rank; an edge or vertex
    belongs to the rank of its first adjacent cell.  Each rank computes
    every kernel on exactly its owned entities, so the union over ranks
    reproduces the global loops with identical per-item arithmetic —
    distributed results are bitwise equal to serial ones.

    Ghost sets are derived from the actual stencil accesses of the
    kernels (edges_on_cell, cells_on_edge, edges_on_edge, ...): a rank's
    ghost set at a location is every entity of that location reachable
    from its owned items in one kernel application.  Exchanging a field
    after the kernel that produces it therefore keeps all reads valid —
    the fine-grained variant of the paper's "Exchange halo" boxes. *)

open Mpas_mesh

type location = Cells | Edges | Vertices

val location_name : location -> string

type rank_sets = {
  rank : int;
  own_cells : int array;
  own_edges : int array;
  own_vertices : int array;
  ghost_cells : int array;  (** cells read but owned elsewhere *)
  ghost_edges : int array;
  ghost_vertices : int array;
}

type t = {
  mesh : Mesh.t;
  n_ranks : int;
  cell_owner : int array;
  edge_owner : int array;
  vertex_owner : int array;
  sets : rank_sets array;
  mutable exchanges : int;  (** exchange calls so far *)
  mutable values_moved : int;  (** ghost entries copied so far *)
}

(** Build the ownership and ghost structure from a partition. *)
val build : Mesh.t -> Mpas_partition.Partition.t -> t

(** [exchange t loc fields] copies, for every rank and every ghost
    entity at [loc], the owner's value into that rank's copy of each
    field.  [fields.(rank)] is rank [rank]'s array.  Raises
    [Invalid_argument] (reporting actual vs expected counts) unless
    [fields] holds exactly one array per rank. *)
val exchange : t -> location -> float array array -> unit

(** Interior/boundary/send decomposition of each rank's owned sets,
    keyed by halo [depth] — the transfer-overlap split.  Interior and
    boundary arrays tile the owned set of each location; a depth-1
    kernel stencil on an interior entity reads owned entities only;
    the send sets (entities some other rank ghosts) are contained in
    the boundary sets, so a field can be packed as soon as its
    boundary sweep retires. *)
type split = {
  sp_rank : int;
  int_cells : int array;
  bnd_cells : int array;
  int_edges : int array;
  bnd_edges : int array;
  int_vertices : int array;
  bnd_vertices : int array;
  send_cells : int array;  (** owned cells some other rank ghosts *)
  send_edges : int array;
  send_vertices : int array;
}

(** Cells split by [Mpas_partition.Halo.interior_boundary]; an owned
    edge/vertex is boundary when its kernel support (the adjacency
    sets [build] marks as reads) touches a foreign entity or a
    boundary-band cell.  Raises [Invalid_argument] when [depth < 1]. *)
val classify : t -> depth:int -> split array

(** Book halo traffic performed outside [exchange] (the overlapped
    driver's pack/transfer/unpack tasks), updating both the per-instance
    and the process-wide counters. *)
val record_traffic : t -> exchanges:int -> values:int -> unit

(** Reset the traffic counters. *)
val reset_stats : t -> unit

(** Bytes moved so far, at 8 bytes per copied value. *)
val bytes_moved : t -> float

(** Validation: ownership covers every entity exactly once across
    ranks, ghosts are disjoint from owned, and every stencil access of
    an owned item lands in owned + ghost.  Returns violations. *)
val check : t -> string list
