open Mpas_mesh

type location = Cells | Edges | Vertices

let location_name = function
  | Cells -> "cells"
  | Edges -> "edges"
  | Vertices -> "vertices"

type rank_sets = {
  rank : int;
  own_cells : int array;
  own_edges : int array;
  own_vertices : int array;
  ghost_cells : int array;
  ghost_edges : int array;
  ghost_vertices : int array;
}

type t = {
  mesh : Mesh.t;
  n_ranks : int;
  cell_owner : int array;
  edge_owner : int array;
  vertex_owner : int array;
  sets : rank_sets array;
  mutable exchanges : int;
  mutable values_moved : int;
}

(* Entities owned by each rank, as sorted index arrays. *)
let owned_of owner n_ranks n =
  let buckets = Array.make n_ranks [] in
  for i = n - 1 downto 0 do
    buckets.(owner.(i)) <- i :: buckets.(owner.(i))
  done;
  Array.map Array.of_list buckets

let build (m : Mesh.t) (p : Mpas_partition.Partition.t) =
  let n_ranks = p.Mpas_partition.Partition.n_parts in
  let cell_owner = Array.copy p.Mpas_partition.Partition.owner in
  let edge_owner =
    Array.init m.n_edges (fun e -> cell_owner.(m.cells_on_edge.(e).(0)))
  in
  let vertex_owner =
    Array.init m.n_vertices (fun v -> cell_owner.(m.cells_on_vertex.(v).(0)))
  in
  let own_cells = owned_of cell_owner n_ranks m.n_cells in
  let own_edges = owned_of edge_owner n_ranks m.n_edges in
  let own_vertices = owned_of vertex_owner n_ranks m.n_vertices in
  let sets =
    Array.init n_ranks (fun rank ->
        (* Mark every entity any owned-item kernel reads. *)
        let cell_read = Array.make m.n_cells false in
        let edge_read = Array.make m.n_edges false in
        let vertex_read = Array.make m.n_vertices false in
        Array.iter
          (fun c ->
            for j = 0 to m.n_edges_on_cell.(c) - 1 do
              edge_read.(m.edges_on_cell.(c).(j)) <- true;
              cell_read.(m.cells_on_cell.(c).(j)) <- true;
              vertex_read.(m.vertices_on_cell.(c).(j)) <- true
            done)
          own_cells.(rank);
        Array.iter
          (fun e ->
            Array.iter (fun c -> cell_read.(c) <- true) m.cells_on_edge.(e);
            Array.iter (fun v -> vertex_read.(v) <- true) m.vertices_on_edge.(e);
            Array.iter (fun e' -> edge_read.(e') <- true) m.edges_on_edge.(e))
          own_edges.(rank);
        Array.iter
          (fun v ->
            Array.iter (fun e -> edge_read.(e) <- true) m.edges_on_vertex.(v);
            Array.iter (fun c -> cell_read.(c) <- true) m.cells_on_vertex.(v))
          own_vertices.(rank);
        let ghosts read owner n =
          let acc = ref [] in
          for i = n - 1 downto 0 do
            if read.(i) && owner.(i) <> rank then acc := i :: !acc
          done;
          Array.of_list !acc
        in
        {
          rank;
          own_cells = own_cells.(rank);
          own_edges = own_edges.(rank);
          own_vertices = own_vertices.(rank);
          ghost_cells = ghosts cell_read cell_owner m.n_cells;
          ghost_edges = ghosts edge_read edge_owner m.n_edges;
          ghost_vertices = ghosts vertex_read vertex_owner m.n_vertices;
        })
  in
  {
    mesh = m;
    n_ranks;
    cell_owner;
    edge_owner;
    vertex_owner;
    sets;
    exchanges = 0;
    values_moved = 0;
  }

(* Process-wide halo-traffic counters, alongside the per-instance
   mutable stats: they survive across drivers and feed the Obs
   reports. *)
let m_exchanges = Mpas_obs.Metrics.counter "dist.halo.exchanges"
let m_values_moved = Mpas_obs.Metrics.counter "dist.halo.values_moved"

let exchange t loc fields =
  if Array.length fields <> t.n_ranks then
    invalid_arg
      (Printf.sprintf
         "Exchange.exchange: one field copy per rank expected (got %d, \
          expected %d)"
         (Array.length fields) t.n_ranks);
  let owner, ghosts_of =
    match loc with
    | Cells -> (t.cell_owner, fun s -> s.ghost_cells)
    | Edges -> (t.edge_owner, fun s -> s.ghost_edges)
    | Vertices -> (t.vertex_owner, fun s -> s.ghost_vertices)
  in
  let moved = ref 0 in
  Array.iter
    (fun s ->
      let dst = fields.(s.rank) in
      Array.iter
        (fun g ->
          dst.(g) <- fields.(owner.(g)).(g);
          incr moved)
        (ghosts_of s))
    t.sets;
  t.values_moved <- t.values_moved + !moved;
  t.exchanges <- t.exchanges + 1;
  Mpas_obs.Metrics.Counter.incr m_exchanges;
  Mpas_obs.Metrics.Counter.add m_values_moved !moved

(* Interior/boundary/send classification for communication overlap.
   Cells split via the depth-keyed BFS of [Halo.interior_boundary];
   an owned edge or vertex is boundary when any entity its kernels
   touch (the same adjacency sets [build] marks as reads) is foreign
   or, for support cells, in the boundary-cell band.  Consequences the
   property tests check: interior + boundary tile the owned sets, a
   depth-1 stencil on an interior entity reads owned entities only,
   and every send entity (ghosted by some other rank) is boundary —
   so packing can start as soon as the boundary sweep finishes, while
   the interior sweep still runs. *)
type split = {
  sp_rank : int;
  int_cells : int array;
  bnd_cells : int array;
  int_edges : int array;
  bnd_edges : int array;
  int_vertices : int array;
  bnd_vertices : int array;
  send_cells : int array;
  send_edges : int array;
  send_vertices : int array;
}

let classify t ~depth =
  let m = t.mesh in
  let part =
    {
      Mpas_partition.Partition.n_parts = t.n_ranks;
      owner = t.cell_owner;
    }
  in
  let ib = Mpas_partition.Halo.interior_boundary m part ~depth in
  (* An entity is a send entity when any rank ghosts it. *)
  let sc = Array.make m.n_cells false in
  let se = Array.make m.n_edges false in
  let sv = Array.make m.n_vertices false in
  Array.iter
    (fun s ->
      Array.iter (fun g -> sc.(g) <- true) s.ghost_cells;
      Array.iter (fun g -> se.(g) <- true) s.ghost_edges;
      Array.iter (fun g -> sv.(g) <- true) s.ghost_vertices)
    t.sets;
  let filt pred arr =
    Array.of_list (List.filter pred (Array.to_list arr))
  in
  Array.init t.n_ranks (fun r ->
      let int_cells, bnd_cells = ib.(r) in
      let bcell = Array.make m.n_cells false in
      Array.iter (fun c -> bcell.(c) <- true) bnd_cells;
      let s = t.sets.(r) in
      let bnd_edge e =
        Array.exists
          (fun c -> t.cell_owner.(c) <> r || bcell.(c))
          m.cells_on_edge.(e)
        || Array.exists (fun v -> t.vertex_owner.(v) <> r) m.vertices_on_edge.(e)
        || Array.exists (fun e' -> t.edge_owner.(e') <> r) m.edges_on_edge.(e)
      in
      let bnd_vertex v =
        Array.exists
          (fun c -> t.cell_owner.(c) <> r || bcell.(c))
          m.cells_on_vertex.(v)
        || Array.exists (fun e -> t.edge_owner.(e) <> r) m.edges_on_vertex.(v)
      in
      {
        sp_rank = r;
        int_cells;
        bnd_cells;
        int_edges = filt (fun e -> not (bnd_edge e)) s.own_edges;
        bnd_edges = filt bnd_edge s.own_edges;
        int_vertices = filt (fun v -> not (bnd_vertex v)) s.own_vertices;
        bnd_vertices = filt bnd_vertex s.own_vertices;
        send_cells = filt (fun c -> sc.(c)) s.own_cells;
        send_edges = filt (fun e -> se.(e)) s.own_edges;
        send_vertices = filt (fun v -> sv.(v)) s.own_vertices;
      })

(* The overlapped driver moves ghosts through pack/transfer/unpack
   task bodies that run concurrently; it books the traffic here once
   per step instead of from inside the (parallel) bodies. *)
let record_traffic t ~exchanges ~values =
  t.exchanges <- t.exchanges + exchanges;
  t.values_moved <- t.values_moved + values;
  Mpas_obs.Metrics.Counter.add m_exchanges exchanges;
  Mpas_obs.Metrics.Counter.add m_values_moved values

let reset_stats t =
  t.exchanges <- 0;
  t.values_moved <- 0

let bytes_moved t = 8. *. float_of_int t.values_moved

let check t =
  let m = t.mesh in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Ownership partitions each entity set. *)
  let total f = Array.fold_left (fun acc s -> acc + Array.length (f s)) 0 t.sets in
  if total (fun s -> s.own_cells) <> m.n_cells then err "cells not partitioned";
  if total (fun s -> s.own_edges) <> m.n_edges then err "edges not partitioned";
  if total (fun s -> s.own_vertices) <> m.n_vertices then
    err "vertices not partitioned";
  Array.iter
    (fun s ->
      let visible_cell = Array.make m.n_cells false in
      let visible_edge = Array.make m.n_edges false in
      let visible_vertex = Array.make m.n_vertices false in
      Array.iter (fun c -> visible_cell.(c) <- true) s.own_cells;
      Array.iter (fun c -> visible_cell.(c) <- true) s.ghost_cells;
      Array.iter (fun e -> visible_edge.(e) <- true) s.own_edges;
      Array.iter (fun e -> visible_edge.(e) <- true) s.ghost_edges;
      Array.iter (fun v -> visible_vertex.(v) <- true) s.own_vertices;
      Array.iter (fun v -> visible_vertex.(v) <- true) s.ghost_vertices;
      (* Ghosts must not be owned. *)
      Array.iter
        (fun c ->
          if t.cell_owner.(c) = s.rank then err "rank %d ghosts own cell" s.rank)
        s.ghost_cells;
      (* Every stencil access from owned items must be visible. *)
      Array.iter
        (fun c ->
          for j = 0 to m.n_edges_on_cell.(c) - 1 do
            if not visible_edge.(m.edges_on_cell.(c).(j)) then
              err "rank %d: cell %d reads invisible edge" s.rank c;
            if not visible_cell.(m.cells_on_cell.(c).(j)) then
              err "rank %d: cell %d reads invisible cell" s.rank c;
            if not visible_vertex.(m.vertices_on_cell.(c).(j)) then
              err "rank %d: cell %d reads invisible vertex" s.rank c
          done)
        s.own_cells;
      Array.iter
        (fun e ->
          Array.iter
            (fun c ->
              if not visible_cell.(c) then
                err "rank %d: edge %d reads invisible cell" s.rank e)
            m.cells_on_edge.(e);
          Array.iter
            (fun v ->
              if not visible_vertex.(v) then
                err "rank %d: edge %d reads invisible vertex" s.rank e)
            m.vertices_on_edge.(e);
          Array.iter
            (fun e' ->
              if not visible_edge.(e') then
                err "rank %d: edge %d reads invisible edge" s.rank e)
            m.edges_on_edge.(e))
        s.own_edges;
      Array.iter
        (fun v ->
          Array.iter
            (fun e ->
              if not visible_edge.(e) then
                err "rank %d: vertex %d reads invisible edge" s.rank v)
            m.edges_on_vertex.(v);
          Array.iter
            (fun c ->
              if not visible_cell.(c) then
                err "rank %d: vertex %d reads invisible cell" s.rank v)
            m.cells_on_vertex.(v))
        s.own_vertices)
    t.sets;
  List.rev !errors
