open Mpas_swe
open Mpas_patterns
module Spec = Mpas_runtime.Spec
module Bind = Mpas_runtime.Bind
module Exec = Mpas_runtime.Exec

(* The overlapped distributed driver: one RK-4 step compiled to a task
   DAG in which halo communication is first-class.  Every kernel
   instance becomes, per rank, an interior task and a boundary task
   (the transfer-overlap split of Exchange.classify); each "Exchange
   halo" box of the classic driver becomes a pack-per-rank /
   transfer / unpack-per-rank group whose edges make
   boundary-compute -> pack -> transfer -> unpack -> consumer real
   hazard edges, while interior compute carries no edge to the wire
   and overlaps it.

   Dependence edges come from a last-writer/readers table over
   region-resolved variable keys "var@rank,region" with region one of
   interior / boundary / ghost, plus buffer keys for the send and
   receive staging arrays.  Regions of one rank are disjoint, so a
   footprint conflict between two tasks implies a shared key, and the
   table emits an edge (or a writer chain) for every shared key — the
   declared footprints [accesses] hands to Mpas_analysis are exact for
   writes and over-approximate reads consistently with the keys, so
   the static race check of the generated program is clean by
   construction and any dropped edge is detected. *)

type region = Int | Bnd | Gho

type access = {
  a_slot : string;
  a_point : Pattern.point;
  a_size : int;
  a_reads : int array list;
  a_writes : int array list;
}

type t = {
  driver : Driver.t;
  depth : int;
  mode : Exec.mode;
  pool : Mpas_par.Pool.t option;
  log : Exec.log option;
  splits : Exchange.split array;
  spec : Spec.t;
  early_bodies : (unit -> unit) array;
  final_bodies : (unit -> unit) array;
  early_accesses : access list array;
  final_accesses : access list array;
  envs : Bind.env array;
  step_exchanges : int;  (** comm groups run per step, for the stats *)
  step_values : int;  (** ghost values moved per step *)
}

let handles (d : Driver.t) =
  d.Driver.config.Config.visc4 = 0.
  && Fields.n_tracers d.Driver.states.(0) = 0

(* Fields the classic driver exchanges (tracers excluded — [handles]
   gates them out), with the instance whose retirement triggers the
   exchange.  Order within a list is the classic exchange order. *)
let comm_after ~final ~(cfg : Config.t) = function
  | "X3" -> [ ("provis_h", Pattern.Mass); ("provis_u", Pattern.Velocity) ]
  | "X5" when final -> [ ("h", Pattern.Mass); ("u", Pattern.Velocity) ]
  | "H2" when cfg.Config.h_adv_order = Config.Fourth ->
      [ ("d2fdx2_cell", Pattern.Mass) ]
  | "B2" -> [ ("h_edge", Pattern.Velocity) ]
  | "D2" ->
      [
        ("ke", Pattern.Mass);
        ("divergence", Pattern.Mass);
        ("vorticity", Pattern.Vorticity);
        ("pv_vertex", Pattern.Vorticity);
      ]
  | "E" -> [ ("pv_cell", Pattern.Mass) ]
  | "F" -> [ ("pv_edge", Pattern.Velocity) ]
  | _ -> []

let field_array (d : Driver.t) ~field ~rank =
  let diag () = d.Driver.diags.(rank) in
  match field with
  | "provis_h" -> d.Driver.provis.(rank).Fields.h
  | "provis_u" -> d.Driver.provis.(rank).Fields.u
  | "h" -> d.Driver.states.(rank).Fields.h
  | "u" -> d.Driver.states.(rank).Fields.u
  | "d2fdx2_cell" -> (diag ()).Fields.d2fdx2_cell
  | "h_edge" -> (diag ()).Fields.h_edge
  | "ke" -> (diag ()).Fields.ke
  | "divergence" -> (diag ()).Fields.divergence
  | "vorticity" -> (diag ()).Fields.vorticity
  | "pv_vertex" -> (diag ()).Fields.pv_vertex
  | "pv_cell" -> (diag ()).Fields.pv_cell
  | "pv_edge" -> (diag ()).Fields.pv_edge
  | f -> invalid_arg ("Mpas_dist.Overlap: not an exchanged field: " ^ f)

(* Region-resolved dependence keys and the index sets behind them. *)

let region_tag = function Int -> 'i' | Bnd -> 'b' | Gho -> 'g'
let key v r reg = Printf.sprintf "%s@%d%c" v r (region_tag reg)
let slot_name v r = Printf.sprintf "r%d:%s" r v
let sbuf_name v r = Printf.sprintf "sbuf:%s@%d" v r
let rbuf_name v r = Printf.sprintf "rbuf:%s@%d" v r
let rbuf_key v = "rbuf:" ^ v

let region_set (x : Exchange.t) (splits : Exchange.split array) pt reg r =
  match (pt, reg) with
  | Pattern.Mass, Int -> splits.(r).Exchange.int_cells
  | Pattern.Mass, Bnd -> splits.(r).Exchange.bnd_cells
  | Pattern.Mass, Gho -> x.Exchange.sets.(r).Exchange.ghost_cells
  | Pattern.Velocity, Int -> splits.(r).Exchange.int_edges
  | Pattern.Velocity, Bnd -> splits.(r).Exchange.bnd_edges
  | Pattern.Velocity, Gho -> x.Exchange.sets.(r).Exchange.ghost_edges
  | Pattern.Vorticity, Int -> splits.(r).Exchange.int_vertices
  | Pattern.Vorticity, Bnd -> splits.(r).Exchange.bnd_vertices
  | Pattern.Vorticity, Gho -> x.Exchange.sets.(r).Exchange.ghost_vertices

let var_point v = (Registry.variable v).Registry.var_point

(* Phase builder: tasks accumulate in emission order (the classic
   driver's order, hence topological); edges come from the key
   tables.  A group's tasks are mutually independent — edges are
   computed against the pre-group table state, then the whole group's
   reads and writes are recorded. *)

type pending = {
  p_inst : Pattern.instance;
  p_kind : Spec.kind;
  p_body : unit -> unit;
  p_rkeys : string list;
  p_wkeys : string list;
  p_acc : access list;
}

type builder = {
  mutable rev : pending list;
  mutable count : int;
  mutable edges : (int * int) list;
  last_w : (string, int) Hashtbl.t;
  readers : (string, int list) Hashtbl.t;
}

let new_builder () =
  {
    rev = [];
    count = 0;
    edges = [];
    last_w = Hashtbl.create 256;
    readers = Hashtbl.create 256;
  }

let emit bld group =
  let base = bld.count in
  let idx = List.mapi (fun k p -> (base + k, p)) group in
  List.iter
    (fun (i, p) ->
      let dep j = if j <> i then bld.edges <- (j, i) :: bld.edges in
      List.iter
        (fun k -> Option.iter dep (Hashtbl.find_opt bld.last_w k))
        p.p_rkeys;
      List.iter
        (fun k ->
          List.iter dep
            (Option.value ~default:[] (Hashtbl.find_opt bld.readers k));
          Option.iter dep (Hashtbl.find_opt bld.last_w k))
        p.p_wkeys)
    idx;
  List.iter
    (fun (i, p) ->
      List.iter
        (fun k ->
          Hashtbl.replace bld.readers k
            (i :: Option.value ~default:[] (Hashtbl.find_opt bld.readers k)))
        p.p_rkeys)
    idx;
  List.iter
    (fun (i, p) ->
      List.iter
        (fun k ->
          Hashtbl.replace bld.last_w k i;
          Hashtbl.replace bld.readers k [])
        p.p_wkeys)
    idx;
  List.iter
    (fun (_, p) ->
      bld.rev <- p :: bld.rev;
      bld.count <- bld.count + 1)
    idx

(* One kernel instance -> interior + boundary task per rank.  A
   read-modify-write variable (also an output, always point-wise here)
   is read exactly in the task's own region; a pure input is read in
   every region its depth-1 stencil can touch: interior tasks reach
   interior + boundary (never a ghost — the point of the split),
   boundary tasks additionally reach ghosts, which is what serializes
   them after the unpack. *)
let compute_group bld ~(x : Exchange.t) ~splits ~envs ~final
    (inst : Pattern.instance) =
  let m = x.Exchange.mesh in
  let size pt = Bind.space_size m pt in
  let rset = region_set x splits in
  let rmw v = List.mem v inst.Pattern.outputs in
  let task r reg =
    let rkeys, racc =
      List.fold_left
        (fun (ks, acc) v ->
          let pt = var_point v in
          let regs =
            if rmw v then [ reg ]
            else if reg = Bnd then [ Int; Bnd; Gho ]
            else [ Int; Bnd ]
          in
          ( List.map (key v r) regs @ ks,
            {
              a_slot = slot_name v r;
              a_point = pt;
              a_size = size pt;
              a_reads = List.map (fun rg -> rset pt rg r) regs;
              a_writes = [];
            }
            :: acc ))
        ([], []) inst.Pattern.inputs
    in
    let wkeys, wacc =
      List.fold_left
        (fun (ks, acc) v ->
          let pt = var_point v in
          ( key v r reg :: ks,
            {
              a_slot = slot_name v r;
              a_point = pt;
              a_size = size pt;
              a_reads = [];
              a_writes = [ rset pt reg r ];
            }
            :: acc ))
        ([], []) inst.Pattern.outputs
    in
    {
      p_inst = inst;
      p_kind = Spec.Compute;
      p_body =
        Bind.compile_on envs.(r) ~final
          ~on_cells:(rset Pattern.Mass reg r)
          ~on_edges:(rset Pattern.Velocity reg r)
          ~on_vertices:(rset Pattern.Vorticity reg r)
          inst;
      p_rkeys = rkeys;
      p_wkeys = wkeys;
      p_acc = racc @ wacc;
    }
  in
  let nr = Array.length envs in
  emit bld
    (List.concat
       (List.init nr (fun r -> [ task r Int; task r Bnd ])))

let comm_instance ~id ~field ~point =
  {
    Pattern.id;
    kind = Pattern.Local;
    kernel = Pattern.Halo_exchange;
    spaces = [ point ];
    inputs = [ field ];
    neighbour_inputs = [];
    outputs = [ field ];
    irregular = false;
  }

let full n = Array.init n (fun i -> i)

(* One halo exchange of [field] -> pack group, transfer, unpack group.
   Buffers are per field so exchanges of different fields can fly
   concurrently.  Returns the ghost-value count for the traffic
   stats. *)
let comm_group bld ~(d : Driver.t) ~splits ~field ~point =
  let x = d.Driver.exchange in
  let m = x.Exchange.mesh in
  let nr = x.Exchange.n_ranks in
  let owner, send_of, ghosts_of =
    match point with
    | Pattern.Mass ->
        ( x.Exchange.cell_owner,
          (fun r -> splits.(r).Exchange.send_cells),
          fun r -> x.Exchange.sets.(r).Exchange.ghost_cells )
    | Pattern.Velocity ->
        ( x.Exchange.edge_owner,
          (fun r -> splits.(r).Exchange.send_edges),
          fun r -> x.Exchange.sets.(r).Exchange.ghost_edges )
    | Pattern.Vorticity ->
        ( x.Exchange.vertex_owner,
          (fun r -> splits.(r).Exchange.send_vertices),
          fun r -> x.Exchange.sets.(r).Exchange.ghost_vertices )
  in
  let n = Bind.space_size m point in
  (* Position of each sent entity in its owner's send buffer. *)
  let off = Array.make n (-1) in
  for r = 0 to nr - 1 do
    Array.iteri (fun j i -> off.(i) <- j) (send_of r)
  done;
  let sbufs = Array.init nr (fun r -> Array.make (Array.length (send_of r)) 0.) in
  let rbufs = Array.init nr (fun r -> Array.make (Array.length (send_of r)) 0.) in
  let arr r = field_array d ~field ~rank:r in
  let comm r = { Spec.cm_field = field; cm_point = point; cm_rank = r } in
  let sbuf_acc r rw =
    let len = Array.length sbufs.(r) in
    {
      a_slot = sbuf_name field r;
      a_point = point;
      a_size = len;
      a_reads = (if rw = `R then [ full len ] else []);
      a_writes = (if rw = `W then [ full len ] else []);
    }
  in
  let rbuf_acc r rw =
    let len = Array.length rbufs.(r) in
    {
      a_slot = rbuf_name field r;
      a_point = point;
      a_size = len;
      a_reads = (if rw = `R then [ full len ] else []);
      a_writes = (if rw = `W then [ full len ] else []);
    }
  in
  emit bld
    (List.init nr (fun r ->
         {
           p_inst =
             comm_instance
               ~id:(Printf.sprintf "PK:%s@%d" field r)
               ~field ~point;
           p_kind = Spec.Pack (comm r);
           p_body = Bind.pack_body ~src:(arr r) ~send:(send_of r) ~buf:sbufs.(r);
           p_rkeys = [ key field r Bnd ];
           p_wkeys = [ sbuf_name field r ];
           p_acc =
             [
               {
                 a_slot = slot_name field r;
                 a_point = point;
                 a_size = n;
                 a_reads = [ send_of r ];
                 a_writes = [];
               };
               sbuf_acc r `W;
             ];
         }));
  emit bld
    [
      {
        p_inst = comm_instance ~id:("XF:" ^ field) ~field ~point;
        p_kind = Spec.Exchange { Spec.cm_field = field; cm_point = point; cm_rank = -1 };
        p_body = Bind.transfer_body ~sbufs ~rbufs;
        p_rkeys = List.init nr (sbuf_name field);
        p_wkeys = [ rbuf_key field ];
        p_acc =
          List.concat
            (List.init nr (fun r -> [ sbuf_acc r `R; rbuf_acc r `W ]));
      };
    ];
  emit bld
    (List.init nr (fun r ->
         let ghosts = ghosts_of r in
         let from_rank = Array.map (fun g -> owner.(g)) ghosts in
         let from_off = Array.map (fun g -> off.(g)) ghosts in
         {
           p_inst =
             comm_instance
               ~id:(Printf.sprintf "UP:%s@%d" field r)
               ~field ~point;
           p_kind = Spec.Unpack (comm r);
           p_body = Bind.unpack_body ~dst:(arr r) ~ghosts ~from_rank ~from_off ~rbufs;
           p_rkeys = [ rbuf_key field ];
           p_wkeys = [ key field r Gho ];
           p_acc =
             {
               a_slot = slot_name field r;
               a_point = point;
               a_size = n;
               a_reads = [];
               a_writes = [ ghosts ];
             }
             :: List.init nr (fun r' -> rbuf_acc r' `R);
         }));
  Array.fold_left (fun acc r -> acc + Array.length (ghosts_of r)) 0
    (Array.init nr (fun r -> r))

let finalize bld =
  let pend = Array.of_list (List.rev bld.rev) in
  let nt = Array.length pend in
  let preds = Array.make nt [] and succs = Array.make nt [] in
  List.iter
    (fun (s, d) ->
      preds.(d) <- s :: preds.(d);
      succs.(s) <- d :: succs.(s))
    (List.sort_uniq compare bld.edges);
  let level = Array.make nt 0 in
  for i = 0 to nt - 1 do
    List.iter (fun p -> level.(i) <- Int.max level.(i) (level.(p) + 1)) preds.(i)
  done;
  let n_levels = Array.fold_left (fun a l -> Int.max a (l + 1)) 1 level in
  let tasks =
    Array.init nt (fun i ->
        {
          Spec.index = i;
          instance = pend.(i).p_inst;
          members = [ pend.(i).p_inst ];
          part = None;
          cls = Spec.Host;
          kind = pend.(i).p_kind;
          level = level.(i);
          preds = List.sort_uniq compare preds.(i);
          succs = List.sort_uniq compare succs.(i);
        })
  in
  ( { Spec.tasks; n_levels },
    Array.map (fun p -> p.p_body) pend,
    Array.map (fun p -> p.p_acc) pend )

let build_phase (d : Driver.t) splits envs ~final =
  let bld = new_builder () in
  let cfg = d.Driver.config in
  let groups = ref 0 and values = ref 0 in
  let insts =
    if final then Spec.final_instances ~recon:true else Spec.early_instances ()
  in
  List.iter
    (fun (inst : Pattern.instance) ->
      compute_group bld ~x:d.Driver.exchange ~splits ~envs ~final inst;
      List.iter
        (fun (field, point) ->
          incr groups;
          values := !values + comm_group bld ~d ~splits ~field ~point)
        (comm_after ~final ~cfg inst.Pattern.id))
    insts;
  (finalize bld, !groups, !values)

let of_driver ?(mode = Exec.Async) ?pool ?log ?(depth = 1) (d : Driver.t) =
  if not (handles d) then
    invalid_arg
      "Mpas_dist.Overlap.of_driver: tracers and biharmonic diffusion need \
       the classic Driver.step";
  let splits = Exchange.classify d.Driver.exchange ~depth in
  let nr = d.Driver.exchange.Exchange.n_ranks in
  let envs =
    Array.init nr (fun r ->
        {
          Bind.cfg = d.Driver.config;
          mesh = d.Driver.mesh;
          b = d.Driver.b;
          dt = d.Driver.dt;
          state = d.Driver.states.(r);
          work =
            {
              Timestep.provis = d.Driver.provis.(r);
              tend = d.Driver.tends.(r);
              accum = d.Driver.accums.(r);
              diag = d.Driver.diags.(r);
              recon = d.Driver.recons.(r);
            };
          recon = Some d.Driver.recon;
          rk = 0;
        })
  in
  let (early, early_bodies, early_accesses), e_groups, e_values =
    build_phase d splits envs ~final:false
  in
  let (final, final_bodies, final_accesses), f_groups, f_values =
    build_phase d splits envs ~final:true
  in
  {
    driver = d;
    depth;
    mode;
    pool;
    log;
    splits;
    spec = { Spec.early; final };
    early_bodies;
    final_bodies;
    early_accesses;
    final_accesses;
    envs;
    step_exchanges = (3 * e_groups) + f_groups;
    step_values = (3 * e_values) + f_values;
  }

let spec t = t.spec
let driver t = t.driver
let splits t = t.splits
let depth t = t.depth

let accesses t = function
  | `Early -> t.early_accesses
  | `Final -> t.final_accesses

let bodies t = function
  | `Early -> t.early_bodies
  | `Final -> t.final_bodies

let m_steps = Mpas_obs.Metrics.counter "dist.overlap.steps"

let step_body t =
  let d = t.driver in
  let nr = d.Driver.exchange.Exchange.n_ranks in
  for r = 0 to nr - 1 do
    Fields.blit_state ~src:d.Driver.states.(r) ~dst:d.Driver.accums.(r);
    Fields.blit_state ~src:d.Driver.states.(r) ~dst:d.Driver.provis.(r)
  done;
  let host_lanes =
    match t.pool with None -> 1 | Some p -> Mpas_par.Pool.size p
  in
  let instrument _ body = body () in
  for rk = 0 to 2 do
    Array.iter (fun env -> env.Bind.rk <- rk) t.envs;
    Exec.run_phase ?log:t.log ~mode:t.mode ~pool:t.pool ~host_lanes
      ~phase:`Early ~substep:rk ~instrument t.spec.Spec.early t.early_bodies
  done;
  Array.iter (fun env -> env.Bind.rk <- 3) t.envs;
  Exec.run_phase ?log:t.log ~mode:t.mode ~pool:t.pool ~host_lanes
    ~phase:`Final ~substep:3 ~instrument t.spec.Spec.final t.final_bodies;
  Exchange.record_traffic d.Driver.exchange ~exchanges:t.step_exchanges
    ~values:t.step_values;
  d.Driver.steps_taken <- d.Driver.steps_taken + 1

let step t =
  Mpas_obs.Metrics.Counter.incr m_steps;
  Mpas_obs.Trace.with_span ~cat:"dist"
    ~args:
      [
        ("ranks", string_of_int t.driver.Driver.exchange.Exchange.n_ranks);
        ("mode", Exec.mode_name t.mode);
      ]
    "dist.overlap.step"
    (fun () -> step_body t)

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

let gather_state t = Driver.gather_state t.driver
