(** Overlapped distributed driver: halo communication as first-class
    runtime DAG tasks.

    The classic {!Driver} is bulk-synchronous — every "Exchange halo"
    box is a barrier between whole-rank kernel sweeps.  This driver
    compiles one RK-4 step of the same per-rank arrays into a
    {!Mpas_runtime.Spec} program in which every kernel instance is
    split, per rank, into an {e interior} and a {e boundary} task
    ({!Exchange.classify}, paper §IV's transfer overlap) and every
    halo exchange into [Pack] / [Exchange] / [Unpack] tasks
    ({!Mpas_runtime.Spec.kind}).  Edges make

    {v boundary compute -> pack -> transfer -> unpack -> consumer v}

    real hazard edges while interior compute carries no edge to the
    wire, so any {!Mpas_runtime.Exec} mode may run interior sweeps
    while ghosts are in flight.  Task bodies are the CSR kernels of
    {!Mpas_runtime.Bind} restricted to the region index sets plus the
    plain-copy comm bodies, so a step is {e bitwise} identical to
    [Driver.step] on every owned entity.

    Dependences are generated from a last-writer/readers table over
    region-resolved keys (variable at rank × interior/boundary/ghost,
    plus the staging buffers); the same region sets are exported as
    declared footprints ({!accesses}) so {!Mpas_analysis} can verify
    the program and replay its logs. *)

open Mpas_swe
open Mpas_patterns
module Spec = Mpas_runtime.Spec
module Exec = Mpas_runtime.Exec

type t

(** Declared footprint fragment of one task: index sets read and
    written in the array slot [a_slot] (length [a_size], living at
    [a_point]).  Slots are per-rank field views (["r2:provis_h"]) or
    staging buffers (["sbuf:provis_h@2"], ["rbuf:provis_h@2"]).  One
    task lists several fragments, possibly repeating a slot. *)
type access = {
  a_slot : string;
  a_point : Pattern.point;
  a_size : int;
  a_reads : int array list;
  a_writes : int array list;
}

(** True when the driver's configuration is expressible as an
    overlapped program: no tracers and no biharmonic diffusion (their
    exchanges are data-dependent extensions the task program does not
    model yet). *)
val handles : Driver.t -> bool

(** [of_driver d] compiles the overlapped program over [d]'s per-rank
    arrays; [d] remains the owner of all state ([gather_state],
    [steps_taken] and the traffic stats stay coherent, and classic and
    overlapped steps may be interleaved).  [mode] (default [Async])
    and [pool] choose the executor; [log] collects {!Exec.entry}
    records; [depth] (default 1) widens the boundary band.
    @raise Invalid_argument when {!handles} is false or [depth < 1]. *)
val of_driver :
  ?mode:Exec.mode ->
  ?pool:Mpas_par.Pool.t ->
  ?log:Exec.log ->
  ?depth:int ->
  Driver.t ->
  t

(** Advance one RK-4 step (three early phase runs + one final). *)
val step : t -> unit

val run : t -> steps:int -> unit

(** {!Driver.gather_state} of the backing driver. *)
val gather_state : t -> Fields.state

val driver : t -> Driver.t
val spec : t -> Spec.t
val splits : t -> Exchange.split array
val depth : t -> int

(** Task bodies / declared footprints, aligned with the phase's
    [tasks] array — the analysis side's replay and footprint input. *)
val bodies : t -> [ `Early | `Final ] -> (unit -> unit) array

val accesses : t -> [ `Early | `Final ] -> access list array

(** The per-rank array a comm task of [field] touches (its [cm_field]
    / [cm_rank]); used by the analyzer's comm-chain shadow check.
    @raise Invalid_argument for a field never exchanged. *)
val field_array : Driver.t -> field:string -> rank:int -> float array
