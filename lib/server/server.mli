(** Fault-tolerant multi-tenant serving layer over the ensemble engine.

    One [t] turns {!Mpas_ensemble.Ensemble} into a long-running
    service: tenants submit scenario jobs (a Williamson case, a
    perturbed config, a step budget, an optional deadline), an
    admission-controlled scheduler packs them into the batch, periodic
    checkpoints make every job restartable, and a seed-driven fault
    plan exercises the recovery paths deterministically.

    {b Job lifecycle.}  [Queued -> Running -> Completed] is the happy
    path.  A fault mid-batch sends every running job through
    [Delayed] (retry backoff) back to [Queued], resuming from its
    newest valid checkpoint; retries are capped.  Terminal states:
    [Completed] (result kept, bit-identical to an uninterrupted run),
    [Failed] (numerics divergence, exhausted retries, or no valid
    checkpoint — always with a reason), [Shed] (displaced by
    higher-priority load or past deadline), [Cancelled].

    {b Scheduling.}  Admission control is a bounded queue plus a
    per-tenant quota, both rejected deterministically with a typed
    reason.  Admission order is strict across the three priority
    lanes and weighted-fair within one: each tenant carries a virtual
    time advanced by [steps / weight] per admission, and the tenant
    with the smallest virtual time goes first (name-ordered on ties),
    so a heavy tenant cannot starve a light one.  When the queue is
    full, a higher-priority submit sheds the newest lowest-priority
    queued job instead of being rejected.  Past-deadline jobs are
    shed, or — with [finish_over_deadline] — demoted to the [Low]
    lane (the cheap lane: served only when nothing more urgent waits).

    {b Determinism.}  Ticks are the only clock the scheduler uses;
    given the same submissions and the same fault plan, every
    admission, fault, recovery and completion replays identically —
    which is what lets CI assert recovered jobs bit-identical to
    fault-free runs. *)

open Mpas_swe

type t

type priority = High | Normal | Low

val priority_name : priority -> string

type reject =
  | Queue_full of int  (** the queue bound *)
  | Tenant_quota of string * int  (** tenant, its quota *)
  | Unsupported of string  (** config the ensemble engine rejects *)

val reject_message : reject -> string

type status =
  | Queued
  | Delayed of int  (** retry backoff: re-queued at this tick *)
  | Running
  | Completed
  | Failed of string
  | Shed of string
  | Cancelled

val status_name : status -> string

type info = {
  jb_id : int;
  jb_tenant : string;
  jb_priority : priority;
  jb_status : status;
  jb_done : int;  (** completed steps *)
  jb_steps : int;  (** requested steps *)
  jb_retries : int;
  jb_deadline : int option;
}

(** [create mesh] builds a server over a fresh ensemble engine on
    [mesh] (spherical — jobs are Williamson cases).

    [capacity]/[block]/[mode]/[pool] configure the engine as
    {!Mpas_ensemble.Ensemble.create} does.  [queue_limit] bounds
    queued + delayed jobs (default 64); [tenant_quota] bounds one
    tenant's queued + delayed + running jobs (default 16);
    [checkpoint_every] is the checkpoint period in steps (default 5;
    a snapshot is also always taken at first admission);
    [max_retries] caps fault recoveries per job (default 3);
    [finish_over_deadline] (default false) demotes past-deadline
    queued jobs to [Low] instead of shedding them.  [fault] is the
    seeded fault plan to inject (default none).  Metrics land in
    [registry] under [server.*], tenant-labelled where meaningful. *)
val create :
  ?registry:Mpas_obs.Metrics.t ->
  ?capacity:int ->
  ?block:int ->
  ?mode:Mpas_runtime.Exec.mode ->
  ?pool:Mpas_par.Pool.t ->
  ?queue_limit:int ->
  ?tenant_quota:int ->
  ?checkpoint_every:int ->
  ?max_retries:int ->
  ?finish_over_deadline:bool ->
  ?fault:Fault.plan ->
  Mpas_mesh.Mesh.t ->
  t

(** [submit t ~steps case] enqueues a job and returns its id, or a
    typed rejection.  [tenant] (default ["default"]) names the payer;
    [weight] (default 1, sticky per tenant) sets its fair share;
    [priority] (default [Normal]) picks the lane; [deadline] is an
    absolute tick; [config]/[dt] perturb the run exactly as
    {!Mpas_ensemble.Ensemble.submit_case} does.
    @raise Invalid_argument on non-positive [steps], [dt] or [weight]
    (malformed requests are bugs; over-quota requests are [Error]s). *)
val submit :
  t ->
  ?tenant:string ->
  ?weight:float ->
  ?priority:priority ->
  ?deadline:int ->
  ?config:Config.t ->
  ?dt:float ->
  steps:int ->
  Williamson.case ->
  (int, reject) result

val cancel : t -> int -> unit
(** Queued/delayed jobs leave the queue; a running job's member is
    evicted.  Terminal jobs are untouched.  @raise Not_found on an
    unknown id. *)

val query : t -> int -> info
(** @raise Not_found on an unknown id. *)

val jobs : t -> info list
(** Every job ever submitted, by id. *)

val result : t -> int -> Fields.state option
(** Final state of a [Completed] job. *)

val now : t -> int
(** Ticks taken so far. *)

val tick : t -> unit
(** One scheduler round: inject this tick's faults, release backoffs,
    enforce deadlines, admit from the queues, advance the batch one
    step (recovering from injected faults), checkpoint and retire. *)

val drain : t -> ?max_ticks:int -> unit -> bool
(** Tick until no job is queued, delayed or running (true) or
    [max_ticks] (default 10_000) ticks pass (false). *)

val queue_depth : t -> int
(** Queued + delayed jobs right now. *)

val running : t -> int
