type kind = Kernel_raise | Snapshot_truncate | Lane_death

let kind_name = function
  | Kernel_raise -> "kernel-raise"
  | Snapshot_truncate -> "snapshot-truncate"
  | Lane_death -> "lane-death"

type event = { ev_tick : int; ev_kind : kind; ev_arg : int }

type plan = event list

exception Injected of string

(* xorshift64* — tiny, seed-deterministic, and good enough to scatter
   fault events; replaying the same seed replays the same schedule. *)
let mix state =
  let x = !state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  state := x;
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 33)

let plan ?(ticks = 20) ?(events = 3) ~seed () =
  if ticks < 1 then
    invalid_arg (Printf.sprintf "Fault.plan: ticks %d, need >= 1" ticks);
  if events < 0 then
    invalid_arg (Printf.sprintf "Fault.plan: events %d, need >= 0" events);
  let state = ref (Int64.of_int (if seed = 0 then 0x9E3779B9 else seed)) in
  List.init events (fun _ ->
      let tick = 1 + (mix state mod ticks) in
      let kind =
        match mix state mod 3 with
        | 0 -> Kernel_raise
        | 1 -> Snapshot_truncate
        | _ -> Lane_death
      in
      { ev_tick = tick; ev_kind = kind; ev_arg = mix state mod 4 })
  |> List.stable_sort (fun a b -> compare a.ev_tick b.ev_tick)

let at plan ~tick = List.filter (fun ev -> ev.ev_tick = tick) plan

let event_name ev =
  Printf.sprintf "%s@t%d/%d" (kind_name ev.ev_kind) ev.ev_tick ev.ev_arg

let to_string plan = String.concat " " (List.map event_name plan)
