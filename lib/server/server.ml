open Mpas_swe
module Ensemble = Mpas_ensemble.Ensemble
module Exec = Mpas_runtime.Exec
module Metrics = Mpas_obs.Metrics

type priority = High | Normal | Low

let priority_name = function High -> "high" | Normal -> "normal" | Low -> "low"
let lane_of = function High -> 0 | Normal -> 1 | Low -> 2
let lanes = [| High; Normal; Low |]

type reject =
  | Queue_full of int
  | Tenant_quota of string * int
  | Unsupported of string

let reject_message = function
  | Queue_full limit ->
      Printf.sprintf "queue full (got %d queued jobs, expected < %d)" limit
        limit
  | Tenant_quota (tenant, quota) ->
      Printf.sprintf "tenant %s over quota (got %d active jobs, expected < %d)"
        tenant quota quota
  | Unsupported msg -> "unsupported: " ^ msg

type status =
  | Queued
  | Delayed of int
  | Running
  | Completed
  | Failed of string
  | Shed of string
  | Cancelled

let status_name = function
  | Queued -> "queued"
  | Delayed t -> Printf.sprintf "delayed until t%d" t
  | Running -> "running"
  | Completed -> "completed"
  | Failed r -> "failed: " ^ r
  | Shed r -> "shed: " ^ r
  | Cancelled -> "cancelled"

type info = {
  jb_id : int;
  jb_tenant : string;
  jb_priority : priority;
  jb_status : status;
  jb_done : int;
  jb_steps : int;
  jb_retries : int;
  jb_deadline : int option;
}

type job = {
  j_id : int;
  j_tenant : string;
  j_case : Williamson.case;
  j_config : Config.t;
  j_dt : float;
  j_steps : int;
  j_deadline : int option;
  j_init : Fields.state;  (** step-0 state, the cold-start restart point *)
  j_b : float array;
  j_fv : float array;
  j_submitted : float;  (** wall clock, for the latency histogram only *)
  mutable j_priority : priority;
  mutable j_status : status;
  mutable j_member : int option;  (** ensemble member id while [Running] *)
  mutable j_base : int;  (** steps already done when last admitted *)
  mutable j_done : int;
  mutable j_retries : int;
  mutable j_resume : (int * Fields.state) option;  (** restart point *)
  mutable j_last_ck : int;  (** step of the newest checkpoint written *)
  mutable j_result : Fields.state option;
}

type tenant = {
  tn_name : string;
  mutable tn_weight : float;
  mutable tn_vt : float;  (** virtual time: accumulated service / weight *)
  tn_queues : int Queue.t array;  (** one FIFO of job ids per lane *)
}

type t = {
  mesh : Mpas_mesh.Mesh.t;
  engine : Ensemble.t;
  store : Store.t;
  registry : Metrics.t;
  capacity : int;
  queue_limit : int;
  tenant_quota : int;
  checkpoint_every : int;
  max_retries : int;
  finish_over_deadline : bool;
  fault : Fault.plan;
  jobs : (int, job) Hashtbl.t;
  tenants : (string, tenant) Hashtbl.t;
  mutable next_id : int;
  mutable t_now : int;
  (* fault-injection arming, read by the engine hooks *)
  armed_raise : int option ref;  (** raise at this substep of the next sweep *)
  armed_death : bool ref;  (** preempt the next sweep *)
  c_ticks : Metrics.Counter.t;
  c_recoveries : Metrics.Counter.t;
  c_restores : Metrics.Counter.t;
  c_demotions : Metrics.Counter.t;
  c_cancelled : Metrics.Counter.t;
  g_queue : Metrics.Gauge.t;
  g_lane : Metrics.Gauge.t array;
  g_running : Metrics.Gauge.t;
  g_delayed : Metrics.Gauge.t;
  t_tick : Metrics.Timer.t;
}

let create ?(registry = Metrics.default) ?(capacity = 16) ?(block = 4) ?mode
    ?pool ?(queue_limit = 64) ?(tenant_quota = 16) ?(checkpoint_every = 5)
    ?(max_retries = 3) ?(finish_over_deadline = false) ?(fault = []) mesh =
  if queue_limit < 1 then
    invalid_arg
      (Printf.sprintf "Server.create: queue_limit %d, need >= 1" queue_limit);
  if tenant_quota < 1 then
    invalid_arg
      (Printf.sprintf "Server.create: tenant_quota %d, need >= 1" tenant_quota);
  if checkpoint_every < 1 then
    invalid_arg
      (Printf.sprintf "Server.create: checkpoint_every %d, need >= 1"
         checkpoint_every);
  if max_retries < 0 then
    invalid_arg
      (Printf.sprintf "Server.create: max_retries %d, need >= 0" max_retries);
  let armed_raise = ref None and armed_death = ref false in
  let interrupt ~phase:_ ~substep =
    match !armed_raise with
    | Some s when s = substep ->
        armed_raise := None;
        raise
          (Fault.Injected (Printf.sprintf "kernel raise at substep %d" substep))
    | _ -> ()
  in
  let preempt () = !armed_death in
  let engine =
    Ensemble.create ~registry ~capacity ~block ?mode ?pool ~interrupt ~preempt
      mesh
  in
  {
    mesh;
    engine;
    store = Store.create ~registry ();
    registry;
    capacity;
    queue_limit;
    tenant_quota;
    checkpoint_every;
    max_retries;
    finish_over_deadline;
    fault;
    jobs = Hashtbl.create 64;
    tenants = Hashtbl.create 8;
    next_id = 0;
    t_now = 0;
    armed_raise;
    armed_death;
    c_ticks = Metrics.counter ~registry "server.ticks";
    c_recoveries = Metrics.counter ~registry "server.recoveries";
    c_restores = Metrics.counter ~registry "server.restores";
    c_demotions = Metrics.counter ~registry "server.deadline_demotions";
    c_cancelled = Metrics.counter ~registry "server.jobs_cancelled";
    g_queue = Metrics.gauge ~registry "server.queue_depth";
    g_lane =
      Array.map
        (fun p ->
          Metrics.gauge ~registry
            ~labels:[ ("lane", priority_name p) ]
            "server.queue_depth")
        lanes;
    g_running = Metrics.gauge ~registry "server.running";
    g_delayed = Metrics.gauge ~registry "server.delayed";
    t_tick = Metrics.timer ~registry "server.tick";
  }

let now t = t.t_now

(* --- small scans (job counts are modest; clarity over O(1)) ------------- *)

let sorted_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.jobs [] |> List.sort compare

let fold_jobs t f init =
  List.fold_left (fun acc id -> f acc (Hashtbl.find t.jobs id)) init
    (sorted_ids t)

let count_status t pred = fold_jobs t (fun n j -> if pred j then n + 1 else n) 0

let queue_depth t =
  count_status t (fun j ->
      match j.j_status with Queued | Delayed _ -> true | _ -> false)

let running t = count_status t (fun j -> j.j_status = Running)

let delayed_count t =
  count_status t (fun j -> match j.j_status with Delayed _ -> true | _ -> false)

let lane_depth t p =
  count_status t (fun j -> j.j_status = Queued && j.j_priority = p)

let tenant_active t name =
  count_status t (fun j ->
      j.j_tenant = name
      && match j.j_status with Queued | Delayed _ | Running -> true | _ -> false)

let update_gauges t =
  Metrics.Gauge.set t.g_queue (float_of_int (queue_depth t));
  Array.iteri
    (fun i g -> Metrics.Gauge.set g (float_of_int (lane_depth t lanes.(i))))
    t.g_lane;
  Metrics.Gauge.set t.g_running (float_of_int (running t));
  Metrics.Gauge.set t.g_delayed (float_of_int (delayed_count t))

let tenant_counter t name metric =
  Metrics.counter ~registry:t.registry ~labels:[ ("tenant", name) ] metric

let reason_counter t metric reason =
  Metrics.counter ~registry:t.registry ~labels:[ ("reason", reason) ] metric

(* --- tenants and the fair queues ---------------------------------------- *)

let min_active_vt t =
  fold_jobs t
    (fun acc j ->
      match j.j_status with
      | Queued | Delayed _ | Running ->
          let tn = Hashtbl.find t.tenants j.j_tenant in
          Float.min acc tn.tn_vt
      | _ -> acc)
    Float.infinity

let tenant_of t ?weight name =
  let tn =
    match Hashtbl.find_opt t.tenants name with
    | Some tn -> tn
    | None ->
        let tn =
          {
            tn_name = name;
            tn_weight = 1.;
            tn_vt = 0.;
            tn_queues = Array.map (fun _ -> Queue.create ()) lanes;
          }
        in
        Hashtbl.add t.tenants name tn;
        tn
  in
  (match weight with
  | Some w ->
      if w <= 0. then
        invalid_arg (Printf.sprintf "Server.submit: weight %g, need > 0" w);
      tn.tn_weight <- w
  | None -> ());
  tn

let enqueue t (j : job) =
  let tn = Hashtbl.find t.tenants j.j_tenant in
  (* A tenant returning from idle must not cash in the virtual time it
     never spent: clamp to the least-served active tenant. *)
  if tenant_active t j.j_tenant = 0 then begin
    let m = min_active_vt t in
    if Float.is_finite m then tn.tn_vt <- Float.max tn.tn_vt m
  end;
  j.j_status <- Queued;
  Queue.push j.j_id tn.tn_queues.(lane_of j.j_priority)

(* Queues are lazily cleaned: cancellation, shedding and demotion just
   flip the job's status/priority, and stale heads are dropped when the
   scheduler next looks at the lane. *)
let drop_stale t tn lane =
  let q = tn.tn_queues.(lane) in
  let rec go () =
    match Queue.peek_opt q with
    | Some id ->
        let j = Hashtbl.find t.jobs id in
        if j.j_status = Queued && lane_of j.j_priority = lane then ()
        else begin
          ignore (Queue.pop q);
          go ()
        end
    | None -> ()
  in
  go ()

let pick_admission t =
  (* Strict priority across lanes, weighted-fair (min virtual time,
     name tiebreak) within one. *)
  let rec by_lane lane =
    if lane > 2 then None
    else begin
      let best = ref None in
      Hashtbl.iter
        (fun _ tn ->
          drop_stale t tn lane;
          if not (Queue.is_empty tn.tn_queues.(lane)) then
            match !best with
            | Some b
              when (b.tn_vt, b.tn_name) <= (tn.tn_vt, tn.tn_name) ->
                ()
            | _ -> best := Some tn)
        t.tenants;
      match !best with
      | Some tn -> Some (tn, Queue.pop tn.tn_queues.(lane))
      | None -> by_lane (lane + 1)
    end
  in
  by_lane 0

(* --- submit -------------------------------------------------------------- *)

let validate_request ~steps ~dt ~deadline =
  if steps < 1 then
    invalid_arg (Printf.sprintf "Server.submit: steps %d, need >= 1" steps);
  (match dt with
  | Some d when d <= 0. ->
      invalid_arg (Printf.sprintf "Server.submit: dt %g, need > 0" d)
  | _ -> ());
  match deadline with
  | Some d when d < 0 ->
      invalid_arg (Printf.sprintf "Server.submit: deadline %d, need >= 0" d)
  | _ -> ()

let unsupported_config (cfg : Config.t) =
  if cfg.integrator <> Config.Rk4 then
    Some "integrator (got ssprk3, expected rk4)"
  else if cfg.visc4 <> 0. then
    Some (Printf.sprintf "del-4 dissipation (got visc4 = %g, expected 0)" cfg.visc4)
  else None

(* Under pressure, the newest job of the strictly lowest-priority class
   makes room for a higher-priority arrival. *)
let shed_victim t ~for_priority =
  fold_jobs t
    (fun acc j ->
      if j.j_status = Queued && lane_of j.j_priority > lane_of for_priority
      then
        match acc with
        | Some (v : job)
          when (lane_of v.j_priority, v.j_id)
               >= (lane_of j.j_priority, j.j_id) ->
            acc
        | _ -> Some j
      else acc)
    None

let shed t (j : job) reason why =
  j.j_status <- Shed why;
  Store.drop t.store ~job:j.j_id;
  Metrics.Counter.incr (reason_counter t "server.jobs_shed" reason)

let submit t ?(tenant = "default") ?weight ?(priority = Normal) ?deadline
    ?(config = Config.default) ?dt ~steps case =
  validate_request ~steps ~dt ~deadline;
  let tn = tenant_of t ?weight tenant in
  let reject r =
    let reason =
      match r with
      | Queue_full _ -> "queue-full"
      | Tenant_quota _ -> "tenant-quota"
      | Unsupported _ -> "unsupported"
    in
    Metrics.Counter.incr (reason_counter t "server.jobs_rejected" reason);
    Error r
  in
  match unsupported_config config with
  | Some msg -> reject (Unsupported msg)
  | None ->
      if tenant_active t tenant >= t.tenant_quota then
        reject (Tenant_quota (tenant, t.tenant_quota))
      else if
        queue_depth t >= t.queue_limit
        &&
        match shed_victim t ~for_priority:priority with
        | Some v ->
            shed t v "pressure"
              (Printf.sprintf "displaced by %s-priority submit at t%d"
                 (priority_name priority) t.t_now);
            false
        | None -> true
      then reject (Queue_full t.queue_limit)
      else begin
        let prepared = Williamson.prepare_mesh case t.mesh in
        let state, b = Williamson.init case prepared in
        let dt =
          match dt with
          | Some d -> d
          | None -> Williamson.recommended_dt case t.mesh
        in
        let id = t.next_id in
        t.next_id <- id + 1;
        let j =
          {
            j_id = id;
            j_tenant = tenant;
            j_case = case;
            j_config = config;
            j_dt = dt;
            j_steps = steps;
            j_deadline = deadline;
            j_init = state;
            j_b = b;
            j_fv = prepared.Mpas_mesh.Mesh.f_vertex;
            j_submitted = Unix.gettimeofday ();
            j_priority = priority;
            j_status = Queued;
            j_member = None;
            j_base = 0;
            j_done = 0;
            j_retries = 0;
            j_resume = None;
            j_last_ck = -1;
            j_result = None;
          }
        in
        Hashtbl.add t.jobs id j;
        ignore tn;
        enqueue t j;
        Metrics.Counter.incr (tenant_counter t tenant "server.jobs_submitted");
        update_gauges t;
        Ok id
      end

(* --- lifecycle helpers --------------------------------------------------- *)

let info_of (j : job) =
  {
    jb_id = j.j_id;
    jb_tenant = j.j_tenant;
    jb_priority = j.j_priority;
    jb_status = j.j_status;
    jb_done = j.j_done;
    jb_steps = j.j_steps;
    jb_retries = j.j_retries;
    jb_deadline = j.j_deadline;
  }

let find t id =
  match Hashtbl.find_opt t.jobs id with
  | Some j -> j
  | None -> raise Not_found

let query t id = info_of (find t id)
let jobs t = List.map (fun id -> info_of (Hashtbl.find t.jobs id)) (sorted_ids t)
let result t id = (find t id).j_result

let evict_member t (j : job) =
  match j.j_member with
  | Some m ->
      Ensemble.evict t.engine m;
      j.j_member <- None
  | None -> ()

let cancel t id =
  let j = find t id in
  match j.j_status with
  | Queued | Delayed _ | Running ->
      evict_member t j;
      j.j_status <- Cancelled;
      Store.drop t.store ~job:id;
      Metrics.Counter.incr t.c_cancelled;
      update_gauges t
  | Completed | Failed _ | Shed _ | Cancelled -> ()

let fail t (j : job) reason =
  evict_member t j;
  j.j_status <- Failed reason;
  Store.drop t.store ~job:j.j_id;
  Metrics.Counter.incr (tenant_counter t j.j_tenant "server.jobs_failed")

let complete t (j : job) state =
  evict_member t j;
  j.j_status <- Completed;
  j.j_result <- Some state;
  j.j_done <- j.j_steps;
  Store.drop t.store ~job:j.j_id;
  Metrics.Counter.incr (tenant_counter t j.j_tenant "server.jobs_completed");
  Metrics.Timer.record
    (Metrics.timer ~registry:t.registry
       ~labels:[ ("tenant", j.j_tenant) ]
       "server.job_latency")
    (Unix.gettimeofday () -. j.j_submitted)

(* Fault recovery: back off exponentially in ticks, restart from the
   newest valid checkpoint.  A job that exhausts its retries, or whose
   every checkpoint is damaged, is reported failed — never silently
   rerun from a corrupt image. *)
let recover t (j : job) why =
  evict_member t j;
  j.j_retries <- j.j_retries + 1;
  Metrics.Counter.incr t.c_recoveries;
  if j.j_retries > t.max_retries then
    fail t j
      (Printf.sprintf "retries exhausted (%d) after %s" t.max_retries why)
  else
    match Store.best t.store ~job:j.j_id with
    | Some (step, state) ->
        j.j_resume <- Some (step, state);
        j.j_done <- step;
        Metrics.Counter.incr t.c_restores;
        j.j_status <- Delayed (t.t_now + (1 lsl (j.j_retries - 1)))
    | None -> fail t j ("no valid checkpoint after " ^ why)

let recover_running t why =
  List.iter
    (fun id ->
      let j = Hashtbl.find t.jobs id in
      if j.j_status = Running then recover t j why)
    (sorted_ids t)

(* --- the scheduler round -------------------------------------------------- *)

let release_backoffs t =
  List.iter
    (fun id ->
      let j = Hashtbl.find t.jobs id in
      match j.j_status with
      | Delayed until when until <= t.t_now -> enqueue t j
      | _ -> ())
    (sorted_ids t)

let enforce_deadlines t =
  List.iter
    (fun id ->
      let j = Hashtbl.find t.jobs id in
      match (j.j_status, j.j_deadline) with
      | (Queued | Delayed _), Some d when t.t_now > d ->
          if t.finish_over_deadline then begin
            if j.j_priority <> Low then begin
              (* Demote to the cheap lane; the stale entry in the old
                 lane's queue is dropped on the next admission scan. *)
              j.j_priority <- Low;
              Metrics.Counter.incr t.c_demotions;
              if j.j_status = Queued then begin
                let tn = Hashtbl.find t.tenants j.j_tenant in
                Queue.push j.j_id tn.tn_queues.(lane_of Low)
              end
            end
          end
          else
            shed t j "deadline"
              (Printf.sprintf "deadline t%d exceeded at t%d" d t.t_now)
      | _ -> ())
    (sorted_ids t)

let admit t =
  let free () = t.capacity - running t in
  let rec go () =
    if free () > 0 then
      match pick_admission t with
      | None -> ()
      | Some (tn, id) ->
          let j = Hashtbl.find t.jobs id in
          let base, state =
            match j.j_resume with
            | Some (step, st) -> (step, st)
            | None -> (0, j.j_init)
          in
          let member =
            Ensemble.submit t.engine ~tenant:j.j_tenant ~config:j.j_config
              ~target:(j.j_steps - base) ~f_vertex:j.j_fv ~dt:j.j_dt ~b:j.j_b
              state
          in
          j.j_member <- Some member;
          j.j_base <- base;
          j.j_done <- base;
          j.j_status <- Running;
          (* Charge the remaining work against the tenant's fair share. *)
          tn.tn_vt <-
            tn.tn_vt +. (float_of_int (j.j_steps - base) /. tn.tn_weight);
          Metrics.Counter.incr
            (tenant_counter t j.j_tenant "server.jobs_admitted");
          (* Every job gets a restart point before its first step, so a
             fault can never strand it without a checkpoint (unless that
             write itself is faulted — then it fails, with a reason). *)
          if Store.entries t.store ~job:id = 0 then begin
            Store.put t.store ~job:id ~step:base state;
            j.j_last_ck <- base
          end;
          go ()
  in
  go ()

let post_step t =
  List.iter
    (fun id ->
      let j = Hashtbl.find t.jobs id in
      if j.j_status = Running then begin
        let member = Option.get j.j_member in
        let mi = Ensemble.query t.engine member in
        j.j_done <- j.j_base + mi.Ensemble.i_steps;
        match mi.Ensemble.i_status with
        | Ensemble.Running ->
            if
              j.j_done > j.j_last_ck
              && j.j_done mod t.checkpoint_every = 0
            then begin
              Store.put t.store ~job:id ~step:j.j_done
                (Ensemble.state t.engine member);
              j.j_last_ck <- j.j_done
            end
        | Ensemble.Done -> complete t j (Ensemble.state t.engine member)
        | Ensemble.Failed r -> fail t j ("diverged: " ^ r)
      end)
    (sorted_ids t)

let tick t =
  Metrics.Timer.time t.t_tick (fun () ->
      t.t_now <- t.t_now + 1;
      Metrics.Counter.incr t.c_ticks;
      List.iter
        (fun (ev : Fault.event) ->
          Metrics.Counter.incr
            (reason_counter t "server.faults_injected"
               (Fault.kind_name ev.Fault.ev_kind));
          match ev.Fault.ev_kind with
          | Fault.Kernel_raise -> t.armed_raise := Some (ev.Fault.ev_arg mod 4)
          | Fault.Snapshot_truncate -> Store.arm_truncation t.store 1
          | Fault.Lane_death -> t.armed_death := true)
        (Fault.at t.fault ~tick:t.t_now);
      release_backoffs t;
      enforce_deadlines t;
      admit t;
      if running t > 0 then begin
        match Ensemble.step t.engine () with
        | () -> post_step t
        | exception Fault.Injected msg -> recover_running t msg
        | exception Exec.Preempted -> recover_running t "lane death"
      end;
      (* Disarm any fault the (possibly empty) batch did not consume. *)
      t.armed_raise := None;
      t.armed_death := false;
      update_gauges t)

let drain t ?(max_ticks = 10_000) () =
  let live () =
    count_status t (fun j ->
        match j.j_status with Queued | Delayed _ | Running -> true | _ -> false)
    > 0
  in
  let rec go n =
    if not (live ()) then true else if n = 0 then false
    else begin
      tick t;
      go (n - 1)
    end
  in
  go max_ticks
