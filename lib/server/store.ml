open Mpas_swe
module Metrics = Mpas_obs.Metrics

type entry = { se_step : int; se_bytes : string }

type t = {
  tbl : (int, entry list) Hashtbl.t;  (** job id -> snapshots, newest first *)
  mutable truncate_next : int;
  c_written : Metrics.Counter.t;
  c_bytes : Metrics.Counter.t;
  c_truncated : Metrics.Counter.t;
  c_skipped : Metrics.Counter.t;
}

let create ?(registry = Metrics.default) () =
  {
    tbl = Hashtbl.create 64;
    truncate_next = 0;
    c_written = Metrics.counter ~registry "server.checkpoints_written";
    c_bytes = Metrics.counter ~registry "server.checkpoint_bytes";
    c_truncated = Metrics.counter ~registry "server.checkpoints_truncated";
    c_skipped = Metrics.counter ~registry "server.snapshots_corrupt_skipped";
  }

let arm_truncation t n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Store.arm_truncation: %d, need >= 0" n);
  t.truncate_next <- t.truncate_next + n

let put t ~job ~step state =
  let bytes = Snapshot.encode (Snapshot.singleton ~step job state) in
  let bytes =
    if t.truncate_next > 0 then begin
      t.truncate_next <- t.truncate_next - 1;
      Metrics.Counter.incr t.c_truncated;
      String.sub bytes 0 (String.length bytes / 2)
    end
    else bytes
  in
  Metrics.Counter.incr t.c_written;
  Metrics.Counter.add t.c_bytes (String.length bytes);
  let prev = Option.value (Hashtbl.find_opt t.tbl job) ~default:[] in
  Hashtbl.replace t.tbl job ({ se_step = step; se_bytes = bytes } :: prev)

let best t ~job =
  let rec pick = function
    | [] -> None
    | e :: rest -> (
        let skip () =
          Metrics.Counter.incr t.c_skipped;
          pick rest
        in
        match Snapshot.decode e.se_bytes with
        | exception Snapshot.Corrupt _ -> skip ()
        | { Snapshot.sn_step; sn_members = [ (tag, state) ] } when tag = job ->
            Some (sn_step, state)
        | _ -> skip ())
  in
  pick (Option.value (Hashtbl.find_opt t.tbl job) ~default:[])

let drop t ~job = Hashtbl.remove t.tbl job

let entries t ~job =
  List.length (Option.value (Hashtbl.find_opt t.tbl job) ~default:[])
