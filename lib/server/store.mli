(** In-memory checkpoint store for the serving layer.

    Keeps every snapshot written for each job, newest first, as
    {!Mpas_swe.Snapshot} images.  Reads are defensive: {!best} walks
    the history newest-first and returns the first image that decodes
    cleanly (checksum, frame, matching job tag), counting and skipping
    damaged ones — a truncated or bit-flipped checkpoint degrades the
    restart point, it never poisons it.

    The store doubles as a fault point: {!arm_truncation} makes the
    next write(s) land cut in half, which is how the fault-injection
    harness exercises the fallback path.

    Counters (in the registry passed to [create]):
    [server.checkpoints_written], [server.checkpoint_bytes],
    [server.checkpoints_truncated], [server.snapshots_corrupt_skipped]. *)

type t

val create : ?registry:Mpas_obs.Metrics.t -> unit -> t

val put : t -> job:int -> step:int -> Mpas_swe.Fields.state -> unit
(** Snapshot [state] at [step] for [job].  If a truncation fault is
    armed, the stored image is damaged (and the fault disarmed). *)

val best : t -> job:int -> (int * Mpas_swe.Fields.state) option
(** Newest snapshot that decodes cleanly, with the step it was taken
    at; [None] when every stored image is damaged or none exists. *)

val arm_truncation : t -> int -> unit
(** Make the next [n] writes truncate.  @raise Invalid_argument when
    [n < 0]. *)

val drop : t -> job:int -> unit
(** Forget a job's snapshots (on terminal states). *)

val entries : t -> job:int -> int
(** Stored snapshot count for a job (damaged ones included). *)
