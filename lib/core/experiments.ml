open Mpas_numerics
open Mpas_patterns
open Mpas_machine
open Mpas_hybrid

(* --- Table I ------------------------------------------------------------- *)

let table1 () =
  let rows =
    List.map
      (fun (i : Pattern.instance) ->
        [
          Pattern.kernel_name i.Pattern.kernel;
          i.Pattern.id;
          Pattern.kind_name i.Pattern.kind;
          String.concat ", " i.Pattern.inputs;
          String.concat ", " i.Pattern.outputs;
          (if i.Pattern.irregular then "yes" else "no");
        ])
      Registry.instances
  in
  Report.make ~title:"Table I: pattern instances and their variables"
    ~headers:[ "kernel"; "pattern"; "kind"; "inputs"; "outputs"; "irregular" ]
    ~notes:
      [
        "stencil letters follow Figure 3: A mass<-velocity, B velocity<-mass, \
         C vorticity<-mass, D vorticity<-velocity, E mass<-vorticity, F \
         velocity<-vorticity, G velocity<-velocity, H mass<-mass";
        "irregular = edge/vertex-order reduction in the original code \
         (Algorithm 2), refactored per Algorithm 3/4";
      ]
    rows

(* --- Table II ------------------------------------------------------------ *)

let table2 () =
  let dev_rows (d : Hw.device) =
    [
      d.Hw.name;
      string_of_int d.Hw.cores ^ "/" ^ string_of_int (Hw.threads d);
      Format.sprintf "%.1f GHz" d.Hw.freq_ghz;
      string_of_int d.Hw.simd_width_dp ^ " dp";
      Format.sprintf "%.1f" d.Hw.peak_gflops;
      Format.sprintf "%.0f GB/s" d.Hw.mem_bw_gbs;
    ]
  in
  Report.make ~title:"Table II: modelled platform configuration"
    ~headers:
      [ "device"; "cores/threads"; "frequency"; "SIMD"; "peak DP GF"; "mem BW" ]
    ~notes:
      [ "one MPI process = one 10-core CPU + one Xeon Phi (paper SS V)" ]
    [ dev_rows Hw.xeon_e5_2680_v2; dev_rows Hw.xeon_phi_5110p ]

(* --- Table III ----------------------------------------------------------- *)

let table3 () =
  let rows =
    List.map
      (fun (name, level) ->
        let s = Cost.stats_of_level level in
        [
          name;
          string_of_int level;
          string_of_int s.Cost.n_cells;
          string_of_int s.Cost.n_edges;
          string_of_int s.Cost.n_vertices;
        ])
      Cost.table3_meshes
  in
  Report.make ~title:"Table III: quasi-uniform SCVT meshes"
    ~headers:[ "resolution"; "bisection level"; "cells"; "edges"; "vertices" ]
    ~notes:[ "cell counts match the paper's 40962 / 163842 / 655362 / 2621442" ]
    rows

(* --- Figure 5 ------------------------------------------------------------ *)

let fig5 ?(level = 4) ?(lloyd_iters = 3) ?(hours = 6.) ?(domains = 4) () =
  let open Mpas_swe in
  let mesh = Mpas_mesh.Build.icosahedral ~level ~lloyd_iters () in
  let original = Model.init ~engine:Timestep.original Williamson.Tc5 mesh in
  let hybrid = Model.init Williamson.Tc5 mesh in
  let steps =
    Int.max 1 (int_of_float (Float.round (hours *. 3600. /. original.Model.dt)))
  in
  Model.run original ~steps;
  Model.with_parallel_engine hybrid ~n_domains:domains (fun hybrid ->
      Model.run hybrid ~steps);
  let th_original = Model.total_height original in
  let th_hybrid = Model.total_height hybrid in
  let lo, hi = Stats.min_max th_original in
  let max_diff = Stats.max_abs_diff th_original th_hybrid in
  let rms_diff =
    Stats.l2_diff th_original th_hybrid /. sqrt (float_of_int mesh.n_cells)
  in
  let drift =
    Conservation.drift
      ~reference:(Model.invariants original)
      (Model.invariants hybrid)
  in
  Report.make
    ~title:
      (Format.sprintf
         "Figure 5: TC5 total height h+b after %.1f h, original vs \
          hybrid/parallel (level %d, %d cells, %d steps)"
         hours level mesh.n_cells steps)
    ~headers:[ "quantity"; "value" ]
    ~notes:
      [
        "paper: the two results differ within machine precision relative to \
         the field magnitude; so do ours";
        "the parallel engine uses the refactored (Algorithm 3/4) loops on a \
         domain pool";
      ]
    [
      [ "total height min"; Report.f3 lo ];
      [ "total height max"; Report.f3 hi ];
      [ "max |difference|"; Format.sprintf "%.3e" max_diff ];
      [ "rms difference"; Format.sprintf "%.3e" rms_diff ];
      [ "relative max diff"; Format.sprintf "%.3e" (max_diff /. hi) ];
      [ "mass drift between engines"; Format.sprintf "%.3e" drift.Conservation.mass ];
      [ "energy drift between engines"; Format.sprintf "%.3e" drift.Conservation.energy ];
    ]

(* --- Figure 6 ------------------------------------------------------------ *)

let fig6 () =
  let stats = Cost.stats_of_level 8 in
  let p = Costmodel.default_params in
  let mic = Hw.xeon_phi_5110p in
  let base = Costmodel.step_time_single_device mic p Costmodel.baseline stats in
  let paper = Calibration.fig6_anchor_speedups in
  let rows =
    List.map2
      (fun (name, flags) (_, anchor) ->
        let t = Costmodel.step_time_single_device mic p flags stats in
        [
          name;
          Report.f3 t;
          Report.speedup (base /. t);
          Report.speedup anchor;
        ])
      Costmodel.fig6_ladder paper
  in
  Report.make
    ~title:
      "Figure 6: cumulative optimizations on one Xeon Phi (30-km mesh, \
       655362 cells)"
    ~headers:[ "stage"; "s/step (model)"; "speedup (model)"; "speedup (paper)" ]
    ~notes:
      [
        "speedups are over the single-core unoptimized MIC baseline, as in \
         the paper";
      ]
    rows

(* --- Figure 7 ------------------------------------------------------------ *)

let paper_fig7 =
  (* (cpu, kernel-level, pattern-driven) seconds per step. *)
  [
    ("120-km", (0.271, 0.059, 0.045));
    ("60-km", (1.115, 0.198, 0.143));
    ("30-km", (4.434, 0.741, 0.532));
    ("15-km", (17.528, 2.896, 2.102));
  ]

let fig7 () =
  let p = Costmodel.default_params in
  let cfg = Schedule.default_config ~split:0. in
  let rows =
    List.map
      (fun (name, level) ->
        let stats = Cost.stats_of_level level in
        let cpu =
          Costmodel.step_time_single_device Hw.xeon_e5_2680_v2 p
            Costmodel.baseline stats
        in
        let kernel = Schedule.step_time cfg stats Plan.kernel_level in
        let split, pattern =
          Schedule.optimize_split cfg stats Plan.pattern_driven
        in
        let pc, pk, pp = List.assoc name paper_fig7 in
        [
          name;
          Report.f3 cpu;
          Report.f3 kernel;
          Report.f3 pattern;
          Report.speedup (cpu /. kernel);
          Report.speedup (cpu /. pattern);
          Format.sprintf "%.2f" split;
          Format.sprintf "%.2fx / %.2fx" (pc /. pk) (pc /. pp);
        ])
      Cost.table3_meshes
  in
  Report.make
    ~title:
      "Figure 7: per-step time and speedup of the hybrid designs vs the \
       single-core CPU code"
    ~headers:
      [
        "mesh"; "cpu s/step"; "kernel s/step"; "pattern s/step";
        "kernel speedup"; "pattern speedup"; "best split"; "paper speedups";
      ]
    ~notes:
      [
        "the adjustable split is re-optimized per mesh (paper SSIII-C: \
         'adaptively controlled according to the configuration')";
      ]
    rows

(* --- Figures 8 and 9 ------------------------------------------------------ *)

let procs = [ 1; 2; 4; 8; 16; 32; 64 ]

let scaled_stats stats ranks =
  let f n = Int.max 1 (n / ranks) in
  {
    stats with
    Cost.n_cells = f stats.Cost.n_cells;
    n_edges = f stats.Cost.n_edges;
    n_vertices = f stats.Cost.n_vertices;
  }

let hybrid_step_time cfg stats =
  snd (Schedule.optimize_split ~grid:20 cfg stats Plan.pattern_driven)

let strong_rows level =
  let stats = Cost.stats_of_level level in
  let p = Costmodel.default_params in
  let net = Hw.fdr_infiniband in
  let cfg = Schedule.default_config ~split:0. in
  List.map
    (fun ranks ->
      let local = scaled_stats stats ranks in
      let patch = Netmodel.analytic_patch ~cells:stats.Cost.n_cells ~ranks in
      let cpu =
        Costmodel.step_time_single_device Hw.xeon_e5_2680_v2 p
          Costmodel.baseline local
        +. Netmodel.comm_time_per_step net patch
      in
      let hybrid =
        hybrid_step_time cfg local
        +. Netmodel.comm_time_per_step net ~device_link:Hw.pcie_gen2_x16 patch
      in
      (ranks, cpu, hybrid))
    procs

let fig8 () =
  let rows =
    List.concat_map
      (fun (name, level) ->
        List.map
          (fun (ranks, cpu, hybrid) ->
            [
              name;
              string_of_int ranks;
              Report.f3 cpu;
              Report.f3 hybrid;
              Report.speedup (cpu /. hybrid);
            ])
          (strong_rows level))
      [ ("30-km", 8); ("15-km", 9) ]
  in
  Report.make
    ~title:"Figure 8: strong scaling, 1-64 MPI processes"
    ~headers:
      [ "mesh"; "processes"; "cpu s/step"; "hybrid s/step"; "hybrid/cpu" ]
    ~notes:
      [
        "paper: hybrid outperforms the CPU code by nearly one order of \
         magnitude on the 15-km mesh and keeps comparable parallel \
         efficiency; the small mesh loses efficiency at high process counts";
      ]
    rows

let fig9 () =
  let per_proc = Cost.stats_of_level 6 in
  let p = Costmodel.default_params in
  let net = Hw.fdr_infiniband in
  let cfg = Schedule.default_config ~split:0. in
  let rows =
    List.filter_map
      (fun ranks ->
        if ranks > 64 then None
        else begin
          let total_cells = per_proc.Cost.n_cells * ranks in
          let patch = Netmodel.analytic_patch ~cells:total_cells ~ranks in
          let cpu =
            Costmodel.step_time_single_device Hw.xeon_e5_2680_v2 p
              Costmodel.baseline per_proc
            +. Netmodel.comm_time_per_step net patch
          in
          let hybrid =
            hybrid_step_time cfg per_proc
            +. Netmodel.comm_time_per_step net ~device_link:Hw.pcie_gen2_x16
                 patch
          in
          Some
            [
              string_of_int ranks;
              string_of_int total_cells;
              Report.f3 cpu;
              Report.f3 hybrid;
            ]
        end)
      [ 1; 4; 16; 64 ]
  in
  Report.make
    ~title:"Figure 9: weak scaling at ~40962 cells per process"
    ~headers:[ "processes"; "total cells"; "cpu s/step"; "hybrid s/step" ]
    ~notes:
      [
        "paper: both codes stay nearly flat (CPU ~0.271-0.274 s, hybrid \
         ~0.045-0.047 s)";
      ]
    rows


(* --- ablations beyond the paper's figures -------------------------------- *)

let ablation_device_ratio () =
  (* SS II-C claims the hybrid method suits "any heterogeneous
     architecture with arbitrary host-to-device ratios": vary the
     accelerator and watch the optimal adjustable split adapt. *)
  let stats = Cost.stats_of_level 8 in
  let p = Costmodel.default_params in
  let cpu_serial =
    Costmodel.step_time_single_device Hw.xeon_e5_2680_v2 p Costmodel.baseline
      stats
  in
  let weak_phi =
    { Hw.xeon_phi_5110p with
      Hw.name = "half-size Xeon Phi";
      cores = 30;
      peak_gflops = Hw.xeon_phi_5110p.Hw.peak_gflops /. 2.;
      mem_bw_gbs = Hw.xeon_phi_5110p.Hw.mem_bw_gbs /. 2. }
  in
  let rows =
    List.map
      (fun acc ->
        let cfg =
          { (Schedule.default_config ~split:0.) with
            Schedule.node = { Hw.paper_node with Hw.acc } }
        in
        let split, t = Schedule.optimize_split cfg stats Plan.pattern_driven in
        [
          acc.Hw.name;
          Format.sprintf "%.0f GF / %.0f GB/s" acc.Hw.peak_gflops
            acc.Hw.mem_bw_gbs;
          Format.sprintf "%.2f" split;
          Report.f3 t;
          Report.speedup (cpu_serial /. t);
        ])
      [ weak_phi; Hw.xeon_phi_5110p; Hw.tesla_k20x ]
  in
  Report.make
    ~title:
      "Ablation: the adjustable split adapts to the host/device ratio \
       (30-km mesh)"
    ~headers:[ "accelerator"; "strength"; "best split"; "s/step"; "speedup" ]
    ~notes:
      [
        "weaker accelerators push more adjustable work onto the host \
         (larger split), stronger ones pull it back — SS II-C's \
         'arbitrary host-to-device ratios'";
      ]
    rows

let ablation_residency () =
  (* SS IV-A: up-front data residency vs on-demand transfers. *)
  let rows =
    List.map
      (fun (name, level) ->
        let stats = Cost.stats_of_level level in
        let cfg = Schedule.default_config ~split:0.55 in
        let on = Schedule.step_result cfg stats Plan.pattern_driven in
        let off =
          Schedule.step_result
            { cfg with Schedule.residency = false }
            stats Plan.pattern_driven
        in
        [
          name;
          Report.f3 on.Simulate.link_busy;
          Report.f3 off.Simulate.link_busy;
          Report.speedup
            (off.Simulate.link_busy /. on.Simulate.link_busy);
          Report.speedup (off.Simulate.makespan /. on.Simulate.makespan);
        ])
      Cost.table3_meshes
  in
  Report.make
    ~title:"Ablation: device residency vs on-demand transfers (SS IV-A)"
    ~headers:
      [ "mesh"; "link busy resident (s)"; "link busy on-demand (s)";
        "traffic ratio"; "step slowdown" ]
    ~notes:
      [ "the paper reports the resident design moves at least 4x less data" ]
    rows

let all ?(fig5_level = 4) ?(fig5_hours = 6.) () =
  [
    table1 ();
    table2 ();
    table3 ();
    fig5 ~level:fig5_level ~hours:fig5_hours ();
    fig6 ();
    fig7 ();
    fig8 ();
    fig9 ();
    ablation_device_ratio ();
    ablation_residency ();
  ]

let convergence ?(levels = [ 2; 3; 4; 5 ]) ?(hours = 3.) () =
  (* Spatial accuracy against the analytic TC2 steady state: the
     discrete solution drifts from the exact one by the truncation
     error, so the error after a fixed simulated time measures the
     spatial order of the TRiSK scheme on quasi-uniform SCVT grids. *)
  let open Mpas_swe in
  let errs =
    List.map
      (fun level ->
        let mesh = Mpas_mesh.Build.icosahedral ~level ~lloyd_iters:4 () in
        let model = Model.init Williamson.Tc2 mesh in
        let exact = Array.copy model.Model.state.Fields.h in
        let steps =
          Int.max 1 (int_of_float (hours *. 3600. /. model.Model.dt))
        in
        Model.run model ~steps;
        let l2 =
          Stats.l2_diff exact model.Model.state.Fields.h
          /. Stats.l2_norm exact
        in
        let linf = Stats.max_abs_diff exact model.Model.state.Fields.h in
        (level, Mpas_mesh.Mesh.mean_spacing mesh /. 1000., l2, linf))
      levels
  in
  let rows =
    List.mapi
      (fun i (level, spacing, l2, linf) ->
        let order =
          if i = 0 then "-"
          else begin
            let _, _, prev, _ = List.nth errs (i - 1) in
            Format.sprintf "%.2f" (Float.log (prev /. l2) /. Float.log 2.)
          end
        in
        [
          string_of_int level;
          Format.sprintf "%.0f km" spacing;
          Format.sprintf "%.3e" l2;
          Format.sprintf "%.3f m" linf;
          order;
        ])
      errs
  in
  Report.make
    ~title:
      (Format.sprintf
         "Convergence: TC2 steady-state error after %.1f h vs resolution"
         hours)
    ~headers:[ "level"; "spacing"; "relative l2(h) error"; "linf(h)"; "order" ]
    ~notes:
      [
        "an extension of the paper's correctness validation: the TRiSK \
         scheme converges at first-to-second order on these quasi-uniform \
         grids";
      ]
    rows

let model_vs_measured ?(level = 4) ?(steps = 5) () =
  (* Grounding the cost model: its predicted per-kernel shares of a
     serial step should match the shares actually measured when the
     real solver runs on this machine.  Absolute times differ (the
     model is calibrated to the paper's Xeon, not this container); the
     distribution across kernels is the testable part. *)
  let open Mpas_swe in
  let mesh = Mpas_mesh.Build.icosahedral ~level ~lloyd_iters:2 () in
  let model = Model.init Williamson.Tc5 mesh in
  let profile = Profile.measure model ~steps in
  let measured_total = Profile.total profile in
  let stats = Cost.stats_of_mesh mesh in
  let p = Costmodel.default_params in
  let predicted k =
    float_of_int (Cost.kernel_calls_per_step k)
    *. List.fold_left
         (fun acc (i : Pattern.instance) ->
           acc
           +. Costmodel.instance_time_by_id Hw.xeon_e5_2680_v2 p
                Costmodel.baseline stats i.Pattern.id)
         0. (Registry.of_kernel k)
  in
  let predicted_total =
    List.fold_left (fun acc k -> acc +. predicted k) 0. Pattern.all_kernels
  in
  let swe_kernel_of = function
    | Pattern.Compute_tend -> Timestep.Compute_tend
    | Pattern.Enforce_boundary_edge -> Timestep.Enforce_boundary_edge
    | Pattern.Compute_next_substep_state -> Timestep.Compute_next_substep_state
    | Pattern.Compute_solve_diagnostics -> Timestep.Compute_solve_diagnostics
    | Pattern.Accumulative_update -> Timestep.Accumulative_update
    | Pattern.Mpas_reconstruct -> Timestep.Mpas_reconstruct
    | Pattern.Halo_exchange -> Timestep.Halo_exchange
  in
  let rows =
    List.map
      (fun k ->
        let measured = List.assoc (swe_kernel_of k) profile in
        [
          Pattern.kernel_name k;
          Format.sprintf "%.1f%%" (100. *. measured /. measured_total);
          Format.sprintf "%.1f%%" (100. *. predicted k /. predicted_total);
        ])
      Pattern.all_kernels
  in
  Report.make
    ~title:
      (Format.sprintf
         "Validation: measured vs modelled per-kernel share of a serial \
          step (level %d, %d steps)"
         level steps)
    ~headers:[ "kernel"; "measured share"; "modelled share" ]
    ~notes:
      [
        "measured on this machine with Mpas_swe.Profile; modelled with the \
         paper-calibrated cost model — only the distribution is comparable";
      ]
    rows

let convergence_tc5 ?(levels = [ 2; 3 ]) ?(reference_level = 4) ?(hours = 6.)
    () =
  (* Unsteady convergence: TC5 has no closed-form solution, so each
     coarse run is remapped onto a fine reference run's mesh and
     compared there (Mpas_mesh.Remap). *)
  let open Mpas_swe in
  let run level =
    let mesh = Mpas_mesh.Build.icosahedral ~level ~lloyd_iters:3 () in
    let model = Model.init Williamson.Tc5 mesh in
    let steps = Int.max 1 (int_of_float (hours *. 3600. /. model.Model.dt)) in
    Model.run model ~steps;
    (mesh, model.Model.state.Fields.h)
  in
  let fine_mesh, reference = run reference_level in
  let rows =
    List.map
      (fun level ->
        let coarse_mesh, h = run level in
        let err =
          Mpas_mesh.Remap.l2_error ~coarse:coarse_mesh ~fine:fine_mesh
            ~field:h ~reference
        in
        [
          string_of_int level;
          Format.sprintf "%.0f km"
            (Mpas_mesh.Mesh.mean_spacing coarse_mesh /. 1000.);
          Format.sprintf "%.3e" err;
        ])
      levels
  in
  Report.make
    ~title:
      (Format.sprintf
         "Convergence (unsteady): TC5 height error after %.1f h vs a \
          level-%d reference"
         hours reference_level)
    ~headers:[ "level"; "spacing"; "relative l2(h) error vs reference" ]
    ~notes:
      [ "coarse solutions are remapped onto the reference mesh before \
         comparison" ]
    rows

let stability ?(levels = [ 2; 3; 4 ]) () =
  (* CFL validation: bisect the largest stable RK-4 step on each mesh
     and check it scales linearly with the spacing.  "Stable" = the
     height field stays finite and within physical bounds over a short
     burst of steps. *)
  let open Mpas_swe in
  let stable mesh dt =
    let model = Model.init ~dt Williamson.Tc5 mesh in
    (try Model.run model ~steps:12 with _ -> ());
    Array.for_all
      (fun h -> Float.is_finite h && h > 1000. && h < 12000.)
      model.Model.state.Fields.h
  in
  let rows =
    List.map
      (fun level ->
        let mesh = Mpas_mesh.Build.icosahedral ~level ~lloyd_iters:3 () in
        let lo = ref (Williamson.recommended_dt Williamson.Tc5 mesh /. 4.) in
        let hi = ref (Williamson.recommended_dt Williamson.Tc5 mesh *. 16.) in
        for _ = 1 to 12 do
          let mid = 0.5 *. (!lo +. !hi) in
          if stable mesh mid then lo := mid else hi := mid
        done;
        let dc_min =
          Array.fold_left Float.min Float.infinity mesh.Mpas_mesh.Mesh.dc_edge
        in
        let wave = sqrt (9.80616 *. 5960.) in
        [
          string_of_int level;
          Format.sprintf "%.0f km"
            (Mpas_mesh.Mesh.mean_spacing mesh /. 1000.);
          Format.sprintf "%.0f s" !lo;
          Format.sprintf "%.2f" (!lo *. wave /. dc_min);
        ])
      levels
  in
  Report.make
    ~title:"Stability: largest stable RK-4 step on TC5 (bisected)"
    ~headers:[ "level"; "spacing"; "max stable dt"; "implied CFL" ]
    ~notes:
      [
        "the max stable dt halves with the spacing, i.e. the implied \
         gravity-wave CFL number stays roughly constant (RK-4 linear \
         stability allows CFL up to ~2.8)";
      ]
    rows
