(** Hardware descriptors for the performance model.

    The two devices reproduce Table II of the paper (Intel Xeon
    E5-2680 v2 and Intel Xeon Phi 5110P); the numbers not in the table
    (sustainable memory bandwidth, bandwidth-saturation thread counts,
    link characteristics) come from vendor data sheets and STREAM
    measurements reported for these parts, and are documented on each
    field. *)

type device = {
  name : string;
  cores : int;
  threads_per_core : int;
  freq_ghz : float;
  simd_width_dp : int;  (** double-precision SIMD lanes *)
  peak_gflops : float;  (** Table II "Gflops in D.P." *)
  mem_bw_gbs : float;  (** sustainable STREAM bandwidth, GB/s *)
  bw_saturation_threads : float;
      (** threads needed to reach [mem_bw_gbs]; a single thread
          sustains [mem_bw_gbs / bw_saturation_threads] *)
  thread_efficiency : float;
      (** effective fraction of the hardware threads that a
          well-refactored irregular stencil loop exploits (in-order
          accelerator cores score much lower than the Xeon) *)
  scalar_penalty : float;
      (** extra slowdown of non-SIMD code relative to the nominal
          per-lane rate (KNC's in-order pipeline issues scalar code
          poorly; 1.0 for the Xeon) *)
}

(** Total hardware threads. *)
val threads : device -> int

(** Peak scalar (non-SIMD) GFLOP/s of one core. *)
val scalar_core_gflops : device -> float

(** Table II, left column. *)
val xeon_e5_2680_v2 : device

(** Table II, right column. *)
val xeon_phi_5110p : device

type link = {
  link_name : string;
  latency_s : float;
  bw_gbs : float;
}

(** PCIe 2.0 x16, the 5110P's host link. *)
val pcie_gen2_x16 : link

(** One compute node of the paper's platform: CPU socket + one Phi. *)
type node = { cpu : device; acc : device; link : link }

val paper_node : node

type network = {
  net_name : string;
  net_latency_s : float;
  net_bw_gbs : float;
}

(** 56 Gb/s FDR InfiniBand (§V). *)
val fdr_infiniband : network

(** NVIDIA Tesla K20X (Titan's accelerator, cited in the paper's
    introduction) — used by the host-to-device-ratio ablation. *)
val tesla_k20x : device

(** Per-core cache capacities, driving the runtime's cache-aware task
    tiling.  Kept separate from {!device} so the roofline model's
    record stays a pure Table II transcription. *)
type cache = {
  l1d_kb : int;  (** private L1 data cache, KB *)
  l2_kb : int;  (** private (or per-SMX) L2, KB *)
  llc_share_kb : int;
      (** shared last-level capacity divided by core count; 0 when the
          part has no LLC (KNC, K20X) *)
}

val xeon_e5_2680_v2_cache : cache
val xeon_phi_5110p_cache : cache
val tesla_k20x_cache : cache

(** Cache descriptor for one of the three known devices (matched by
    name; unknown devices get the Xeon's). *)
val cache_of : device -> cache

(** [tile_elements c] — suggested tile length in loop elements: the
    count whose working set ([bytes_per_element], default 256 — the
    CSR row plus the edge-value streams a cell stencil touches) fills
    half the private L2, leaving the rest for write-back streams.
    Never below 64, so task-dispatch overhead stays amortized. *)
val tile_elements : ?bytes_per_element:int -> cache -> int
