type device = {
  name : string;
  cores : int;
  threads_per_core : int;
  freq_ghz : float;
  simd_width_dp : int;
  peak_gflops : float;
  mem_bw_gbs : float;
  bw_saturation_threads : float;
  thread_efficiency : float;
  scalar_penalty : float;
}

let threads d = d.cores * d.threads_per_core
let scalar_core_gflops d = d.peak_gflops /. float_of_int (d.cores * d.simd_width_dp)

let xeon_e5_2680_v2 =
  {
    name = "Intel Xeon E5-2680 v2";
    cores = 10;
    threads_per_core = 1;
    freq_ghz = 2.8;
    simd_width_dp = 4;
    peak_gflops = 224.;
    (* 4-channel DDR3-1866: 59.7 GB/s peak, ~45 sustained. *)
    mem_bw_gbs = 45.;
    (* A single Ivy Bridge core streams ~10 GB/s. *)
    bw_saturation_threads = 4.5;
    thread_efficiency = 0.85;
    scalar_penalty = 1.;
  }

let xeon_phi_5110p =
  {
    name = "Intel Xeon Phi 5110P";
    cores = 60;
    threads_per_core = 4;
    freq_ghz = 1.1;
    simd_width_dp = 8;
    peak_gflops = 1010.8;
    (* GDDR5 320 GB/s peak; ~150 GB/s sustained STREAM. *)
    mem_bw_gbs = 150.;
    (* In-order cores need many threads to cover memory latency;
       the model uses an effective saturation count fitted to the
       paper-reported MIC/CPU performance ratio (Calibration). *)
    bw_saturation_threads = 200.;
    thread_efficiency = 0.295;
    scalar_penalty = 1.45;
  }

type link = { link_name : string; latency_s : float; bw_gbs : float }

let pcie_gen2_x16 =
  { link_name = "PCIe 2.0 x16"; latency_s = 20e-6; bw_gbs = 6.2 }

type node = { cpu : device; acc : device; link : link }

let paper_node =
  { cpu = xeon_e5_2680_v2; acc = xeon_phi_5110p; link = pcie_gen2_x16 }

type network = {
  net_name : string;
  net_latency_s : float;
  net_bw_gbs : float;
}

let fdr_infiniband =
  { net_name = "56Gb FDR InfiniBand"; net_latency_s = 2e-6; net_bw_gbs = 6. }

(* An alternative accelerator for the host-to-device-ratio study: the
   paper argues the pattern-driven design adapts to "any heterogeneous
   architecture with arbitrary host-to-device ratios" (SS II-A, II-C).
   Numbers from the NVIDIA Tesla K20X datasheet (the Titan GPU the
   paper's introduction cites); the grouping into cores x SIMD is
   nominal (14 SMX x 64 DP lanes x 0.732 GHz x 2 = 1311 GF). *)
let tesla_k20x =
  {
    name = "NVIDIA Tesla K20X";
    cores = 14;
    threads_per_core = 64;
    freq_ghz = 0.732;
    simd_width_dp = 64;
    peak_gflops = 1311.;
    mem_bw_gbs = 180.;
    bw_saturation_threads = 400.;
    thread_efficiency = 0.45;
    scalar_penalty = 8.;
  }

(* Per-core cache capacities, for the runtime's cache-aware tiling.
   Kept as a separate record so the roofline model's [device] stays a
   pure Table II transcription. *)
type cache = {
  l1d_kb : int;
  l2_kb : int;
  llc_share_kb : int;  (* last-level capacity / cores; 0 when absent *)
}

let xeon_e5_2680_v2_cache = { l1d_kb = 32; l2_kb = 256; llc_share_kb = 2560 }

(* KNC: 512 KB private L2 per core, no shared LLC. *)
let xeon_phi_5110p_cache = { l1d_kb = 32; l2_kb = 512; llc_share_kb = 0 }

(* K20X: 64 KB L1/shared per SMX, 1.5 MB chip L2 over 14 SMX. *)
let tesla_k20x_cache = { l1d_kb = 64; l2_kb = 110; llc_share_kb = 0 }

let cache_of d =
  if d.name = xeon_phi_5110p.name then xeon_phi_5110p_cache
  else if d.name = tesla_k20x.name then tesla_k20x_cache
  else xeon_e5_2680_v2_cache

let tile_elements ?(bytes_per_element = 256) c =
  Int.max 64 (c.l2_kb * 1024 / 2 / bytes_per_element)
