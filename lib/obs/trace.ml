type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : [ `Complete | `Instant ];
  ev_ts_us : float;
  ev_dur_us : float;
  ev_tid : int;
  ev_args : (string * string) list;
}

type buffer = {
  mutex : Mutex.t;
  epoch : float;
  mutable recorded : event list;  (* newest first *)
}

type sink = Noop | Memory of buffer

let noop = Noop
let now () = Unix.gettimeofday ()
let memory () = Memory { mutex = Mutex.create (); epoch = now (); recorded = [] }

let current : sink Atomic.t = Atomic.make Noop
let set_sink s = Atomic.set current s
let current_sink () = Atomic.get current
let enabled () = match Atomic.get current with Noop -> false | Memory _ -> true

let record b ev =
  Mutex.lock b.mutex;
  b.recorded <- ev :: b.recorded;
  Mutex.unlock b.mutex

let tid () = (Domain.self () :> int)

let complete ?(cat = "") ?(args = []) ~t0 name =
  match Atomic.get current with
  | Noop -> ()
  | Memory b ->
      let t1 = now () in
      record b
        {
          ev_name = name;
          ev_cat = cat;
          ev_ph = `Complete;
          ev_ts_us = 1e6 *. (t0 -. b.epoch);
          ev_dur_us = 1e6 *. (t1 -. t0);
          ev_tid = tid ();
          ev_args = args;
        }

let with_span ?cat ?args name f =
  match Atomic.get current with
  | Noop -> f ()
  | Memory _ ->
      let t0 = now () in
      Fun.protect ~finally:(fun () -> complete ?cat ?args ~t0 name) f

let instant ?(cat = "") ?(args = []) name =
  match Atomic.get current with
  | Noop -> ()
  | Memory b ->
      record b
        {
          ev_name = name;
          ev_cat = cat;
          ev_ph = `Instant;
          ev_ts_us = 1e6 *. (now () -. b.epoch);
          ev_dur_us = 0.;
          ev_tid = tid ();
          ev_args = args;
        }

let emit ?(cat = "") ?(args = []) ?tid:tid_arg ~ts_us ~dur_us name =
  match Atomic.get current with
  | Noop -> ()
  | Memory b ->
      record b
        {
          ev_name = name;
          ev_cat = cat;
          ev_ph = `Complete;
          ev_ts_us = ts_us;
          ev_dur_us = dur_us;
          ev_tid = (match tid_arg with Some t -> t | None -> tid ());
          ev_args = args;
        }

let events = function
  | Noop -> []
  | Memory b ->
      Mutex.lock b.mutex;
      let evs = b.recorded in
      Mutex.unlock b.mutex;
      List.stable_sort (fun a b -> compare a.ev_ts_us b.ev_ts_us) (List.rev evs)

let event_json ev =
  let base =
    [
      ("name", Jsonv.Str ev.ev_name);
      ("cat", Jsonv.Str (if ev.ev_cat = "" then "default" else ev.ev_cat));
      ("ph", Jsonv.Str (match ev.ev_ph with `Complete -> "X" | `Instant -> "i"));
      ("ts", Jsonv.Num ev.ev_ts_us);
      ("pid", Jsonv.Num 1.);
      ("tid", Jsonv.Num (float_of_int ev.ev_tid));
    ]
  in
  let dur =
    match ev.ev_ph with
    | `Complete -> [ ("dur", Jsonv.Num ev.ev_dur_us) ]
    | `Instant -> [ ("s", Jsonv.Str "t") ]
  in
  let args =
    match ev.ev_args with
    | [] -> []
    | kvs -> [ ("args", Jsonv.Obj (List.map (fun (k, v) -> (k, Jsonv.Str v)) kvs)) ]
  in
  Jsonv.Obj (base @ dur @ args)

let to_json sink =
  Jsonv.Obj
    [
      ("traceEvents", Jsonv.Arr (List.map event_json (events sink)));
      ("displayTimeUnit", Jsonv.Str "ms");
    ]

let to_chrome_json sink = Jsonv.to_string (to_json sink)

let export sink path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json sink))

let clear = function
  | Noop -> ()
  | Memory b ->
      Mutex.lock b.mutex;
      b.recorded <- [];
      Mutex.unlock b.mutex
