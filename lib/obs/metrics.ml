type counter = int Atomic.t
type gauge = float Atomic.t

let n_buckets = 28
(* Bucket [i] holds durations in [100ns * 2^(i-1), 100ns * 2^i); the
   last bucket is open-ended, so ~100 ns .. ~6.7 s is resolved. *)
let bucket_of dt =
  let rec go i lim =
    if i >= n_buckets - 1 || dt < lim then i else go (i + 1) (lim *. 2.)
  in
  go 0 1e-7

type timer = {
  t_count : counter;
  t_total : float Atomic.t;
  t_min : float Atomic.t;
  t_max : float Atomic.t;
  t_buckets : counter array;
}

type metric = C of counter | G of gauge | T of timer

type t = { mutex : Mutex.t; tbl : (string, metric) Hashtbl.t }

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 32 }
let default = create ()

(* Lock-free float accumulation: the [Atomic] module has no float
   fetch-and-add, so retry a compare-and-set. *)
let atomic_update a f =
  let rec go () =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (f old)) then go ()
  in
  go ()

let get_or_create registry name make classify =
  Mutex.lock registry.mutex;
  let m =
    match Hashtbl.find_opt registry.tbl name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add registry.tbl name m;
        m
  in
  Mutex.unlock registry.mutex;
  match classify m with
  | Some v -> v
  | None -> invalid_arg ("Metrics: " ^ name ^ " already exists with another kind")

module Counter = struct
  type t = counter

  let incr = Atomic.incr
  let add c n = ignore (Atomic.fetch_and_add c n)
  let value = Atomic.get
end

module Gauge = struct
  type t = gauge

  let set = Atomic.set
  let value = Atomic.get
end

module Timer = struct
  type t = timer

  let record t dt =
    Atomic.incr t.t_count;
    atomic_update t.t_total (fun x -> x +. dt);
    atomic_update t.t_min (fun x -> Float.min x dt);
    atomic_update t.t_max (fun x -> Float.max x dt);
    Atomic.incr t.t_buckets.(bucket_of dt)

  let time t f =
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> record t (Unix.gettimeofday () -. t0)) f

  let count t = Atomic.get t.t_count
  let total t = Atomic.get t.t_total
end

(* Canonical labeled name: base{k1=v1,k2=v2} with keys sorted, so any
   ordering of the same label set resolves to the same registry entry
   and distinct sets never collide under [merge].  The four structural
   characters are rejected to keep the encoding injective. *)
let check_label_atom what s =
  String.iter
    (fun ch ->
      match ch with
      | '{' | '}' | '=' | ',' ->
          invalid_arg
            (Format.sprintf "Metrics.labeled_name: label %s %S contains %C" what s ch)
      | _ -> ())
    s

let labeled_name name labels =
  match labels with
  | [] -> name
  | _ ->
      List.iter
        (fun (k, v) ->
          check_label_atom "key" k;
          check_label_atom "value" v)
        labels;
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
      let body = String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) sorted) in
      name ^ "{" ^ body ^ "}"

let parse_labeled full =
  let n = String.length full in
  if n = 0 || full.[n - 1] <> '}' then (full, [])
  else
    match String.index_opt full '{' with
    | None -> (full, [])
    | Some i ->
        let body = String.sub full (i + 1) (n - i - 2) in
        let labels =
          if body = "" then []
          else
            List.map
              (fun kv ->
                match String.index_opt kv '=' with
                | Some j ->
                    (String.sub kv 0 j, String.sub kv (j + 1) (String.length kv - j - 1))
                | None -> (kv, ""))
              (String.split_on_char ',' body)
        in
        (String.sub full 0 i, labels)

let counter ?(registry = default) ?(labels = []) name =
  get_or_create registry (labeled_name name labels)
    (fun () -> C (Atomic.make 0))
    (function C c -> Some c | _ -> None)

let gauge ?(registry = default) ?(labels = []) name =
  get_or_create registry (labeled_name name labels)
    (fun () -> G (Atomic.make 0.))
    (function G g -> Some g | _ -> None)

let timer ?(registry = default) ?(labels = []) name =
  let name = labeled_name name labels in
  get_or_create registry name
    (fun () ->
      T
        {
          t_count = Atomic.make 0;
          t_total = Atomic.make 0.;
          t_min = Atomic.make Float.infinity;
          t_max = Atomic.make Float.neg_infinity;
          t_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
        })
    (function T t -> Some t | _ -> None)

(* --- snapshots ---------------------------------------------------------- *)

type timer_stats = {
  t_count : int;
  total_s : float;
  min_s : float;
  max_s : float;
  buckets : int array;
}

type entry = Counter_value of int | Gauge_value of float | Timer_value of timer_stats

type snapshot = (string * entry) list

let snapshot registry =
  Mutex.lock registry.mutex;
  let entries =
    Hashtbl.fold
      (fun name m acc ->
        let e =
          match m with
          | C c -> Counter_value (Atomic.get c)
          | G g -> Gauge_value (Atomic.get g)
          | T t ->
              Timer_value
                {
                  t_count = Atomic.get t.t_count;
                  total_s = Atomic.get t.t_total;
                  min_s = Atomic.get t.t_min;
                  max_s = Atomic.get t.t_max;
                  buckets = Array.map Atomic.get t.t_buckets;
                }
        in
        (name, e) :: acc)
      registry.tbl []
  in
  Mutex.unlock registry.mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let merge_entry name a b =
  match (a, b) with
  | Counter_value x, Counter_value y -> Counter_value (x + y)
  | Gauge_value _, Gauge_value y -> Gauge_value y
  | Timer_value x, Timer_value y ->
      Timer_value
        {
          t_count = x.t_count + y.t_count;
          total_s = x.total_s +. y.total_s;
          min_s = Float.min x.min_s y.min_s;
          max_s = Float.max x.max_s y.max_s;
          buckets = Array.mapi (fun i c -> c + y.buckets.(i)) x.buckets;
        }
  | _ -> invalid_arg ("Metrics.merge: kind mismatch for " ^ name)

let merge a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (na, ea) :: ta, (nb, eb) :: tb ->
        if na < nb then (na, ea) :: go ta b
        else if nb < na then (nb, eb) :: go a tb
        else (na, merge_entry na ea eb) :: go ta tb
  in
  go a b

let find_counter s name =
  match List.assoc_opt name s with Some (Counter_value v) -> Some v | _ -> None

let find_gauge s name =
  match List.assoc_opt name s with Some (Gauge_value v) -> Some v | _ -> None

let find_timer s name =
  match List.assoc_opt name s with Some (Timer_value v) -> Some v | _ -> None

let group_labeled s name =
  List.filter_map
    (fun (n, e) ->
      let base, labels = parse_labeled n in
      if base = name then Some (labels, e) else None)
    s

let to_json s =
  Jsonv.Obj
    (List.map
       (fun (name, e) ->
         let v =
           match e with
           | Counter_value v ->
               Jsonv.Obj [ ("type", Jsonv.Str "counter"); ("value", Jsonv.Num (float_of_int v)) ]
           | Gauge_value v -> Jsonv.Obj [ ("type", Jsonv.Str "gauge"); ("value", Jsonv.Num v) ]
           | Timer_value t ->
               Jsonv.Obj
                 [
                   ("type", Jsonv.Str "timer");
                   ("count", Jsonv.Num (float_of_int t.t_count));
                   ("total_s", Jsonv.Num t.total_s);
                   ("min_s", Jsonv.Num t.min_s);
                   ("max_s", Jsonv.Num t.max_s);
                   ( "buckets",
                     Jsonv.Arr
                       (Array.to_list (Array.map (fun c -> Jsonv.Num (float_of_int c)) t.buckets)) );
                 ]
         in
         (name, v))
       s)

let to_string s =
  String.concat "\n"
    (List.map
       (fun (name, e) ->
         match e with
         | Counter_value v -> Format.sprintf "%-36s counter %d" name v
         | Gauge_value v -> Format.sprintf "%-36s gauge   %g" name v
         | Timer_value t ->
             Format.sprintf "%-36s timer   n=%d total=%.3f ms mean=%.1f us" name
               t.t_count (1e3 *. t.total_s)
               (if t.t_count = 0 then 0. else 1e6 *. t.total_s /. float_of_int t.t_count))
       s)

let reset registry =
  Mutex.lock registry.mutex;
  Hashtbl.reset registry.tbl;
  Mutex.unlock registry.mutex
