open Mpas_patterns
open Mpas_machine
open Mpas_obs

type row = {
  kernel : string;
  calls_per_step : int;
  measured_s : float;
  modelled_s : float;
  ratio : float;
}

type t = { device : string; steps : int; rows : row list }

let make ?(device = Hw.xeon_e5_2680_v2) ?(params = Costmodel.default_params)
    ?(flags = Costmodel.baseline) ?layout ~stats ~steps measured =
  if steps < 1 then invalid_arg "Report.make: steps must be >= 1";
  let rows =
    List.map
      (fun kernel ->
        let name = Pattern.kernel_name kernel in
        let total =
          match List.assoc_opt name measured with Some s -> s | None -> 0.
        in
        let measured_s = total /. float_of_int steps in
        let modelled_s = Costmodel.kernel_time ?layout device params flags stats kernel in
        {
          kernel = name;
          calls_per_step = Cost.kernel_calls_per_step kernel;
          measured_s;
          modelled_s;
          ratio = (if modelled_s > 0. then measured_s /. modelled_s else Float.nan);
        })
      Pattern.all_kernels
  in
  { device = device.Hw.name; steps; rows }

let measured_total t = List.fold_left (fun acc r -> acc +. r.measured_s) 0. t.rows
let modelled_total t = List.fold_left (fun acc r -> acc +. r.modelled_s) 0. t.rows

let to_string t =
  let header =
    Format.sprintf
      "measured vs roofline (%s model, %d-step measurement)\n%-28s %12s %12s %8s"
      t.device t.steps "kernel" "measured" "modelled" "ratio"
  in
  let lines =
    List.map
      (fun r ->
        Format.sprintf "%-28s %9.3f ms %9.3f ms %8.2f" r.kernel
          (1e3 *. r.measured_s) (1e3 *. r.modelled_s) r.ratio)
      t.rows
  in
  let total =
    Format.sprintf "%-28s %9.3f ms %9.3f ms %8.2f" "total"
      (1e3 *. measured_total t) (1e3 *. modelled_total t)
      (if modelled_total t > 0. then measured_total t /. modelled_total t
       else Float.nan)
  in
  String.concat "\n" ((header :: lines) @ [ total ])

let to_json t =
  Jsonv.Obj
    [
      ("device", Jsonv.Str t.device);
      ("steps", Jsonv.Num (float_of_int t.steps));
      ( "kernels",
        Jsonv.Arr
          (List.map
             (fun r ->
               Jsonv.Obj
                 [
                   ("kernel", Jsonv.Str r.kernel);
                   ("calls_per_step", Jsonv.Num (float_of_int r.calls_per_step));
                   ("measured_s", Jsonv.Num r.measured_s);
                   ("modelled_s", Jsonv.Num r.modelled_s);
                   ("ratio", Jsonv.Num r.ratio);
                 ])
             t.rows) );
      ("measured_total_s", Jsonv.Num (measured_total t));
      ("modelled_total_s", Jsonv.Num (modelled_total t));
    ]

let of_json j =
  let get key v =
    match Jsonv.member key v with
    | Some x -> x
    | None -> failwith ("Report.of_json: missing field " ^ key)
  in
  let row v =
    {
      kernel = Jsonv.to_str (get "kernel" v);
      calls_per_step = Jsonv.to_int (get "calls_per_step" v);
      measured_s = Jsonv.to_float (get "measured_s" v);
      modelled_s = Jsonv.to_float (get "modelled_s" v);
      ratio =
        (match get "ratio" v with Jsonv.Num x -> x | _ -> Float.nan);
    }
  in
  {
    device = Jsonv.to_str (get "device" j);
    steps = Jsonv.to_int (get "steps" j);
    rows = List.map row (Jsonv.to_arr (get "kernels" j));
  }
