(** Process-wide metrics registry: monotonic counters, gauges and
    histogram timers, all safe to update concurrently from pool worker
    domains, with pure mergeable snapshots for reporting.

    Metrics are created (or found) by name in a registry; the default
    process-wide registry backs the always-on instrumentation of the
    pool and the distributed driver, while [create] gives tests and
    [Mpas_swe.Profile] an isolated registry. *)

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Current value; monotonically non-decreasing under [incr]/[add]
      with non-negative arguments. *)
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Timer : sig
  type t
  (** A histogram of durations: count, sum, min, max and log-2 buckets
      starting at 100 ns. *)

  val record : t -> float -> unit
  (** [record t dt] adds one observation of [dt] seconds. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk and record its wall-clock duration, even when it
      raises. *)

  val count : t -> int
  val total : t -> float
end

(** [counter ?registry name] finds or creates the named metric in
    [registry] (default {!default}).
    @raise Invalid_argument if [name] exists with a different kind. *)

val counter : ?registry:t -> ?labels:(string * string) list -> string -> Counter.t
val gauge : ?registry:t -> ?labels:(string * string) list -> string -> Gauge.t
val timer : ?registry:t -> ?labels:(string * string) list -> string -> Timer.t

(** {2 Labels}

    A label set attaches a dimension (e.g. a tenant) to a metric
    without a second registry: ["ensemble.steps"] with
    [labels = [("tenant", "acme")]] lives under the canonical name
    ["ensemble.steps{tenant=acme}"].  Canonicalization sorts the label
    keys, so the same set always maps to the same name and snapshots
    from concurrent tenants {!merge} without collisions — equal label
    sets combine, distinct ones stay distinct. *)

(** The canonical labeled name.  Empty label lists are the identity.
    @raise Invalid_argument on a key or value containing one of
    [{ } = ,] (they would break the encoding's injectivity). *)
val labeled_name : string -> (string * string) list -> string

(** Inverse of {!labeled_name}: base name and sorted labels.  Names
    without a label suffix parse as [(name, [])]. *)
val parse_labeled : string -> string * (string * string) list

(* --- snapshots ---------------------------------------------------------- *)

type timer_stats = {
  t_count : int;
  total_s : float;
  min_s : float;  (** [infinity] when the count is zero *)
  max_s : float;  (** [neg_infinity] when the count is zero *)
  buckets : int array;  (** bucket [i] counts durations < 100ns * 2^i *)
}

type entry = Counter_value of int | Gauge_value of float | Timer_value of timer_stats

type snapshot = (string * entry) list
(** Sorted by metric name. *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Union by name: counters add, timers combine (counts and sums add,
    min/max and buckets fold), gauges keep the right operand's value.
    @raise Invalid_argument when one name carries two kinds. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> float option
val find_timer : snapshot -> string -> timer_stats option

val group_labeled : snapshot -> string -> ((string * string) list * entry) list
(** Every entry of the snapshot whose base name is [name], as
    (sorted labels, entry) pairs in snapshot order — how a labeled
    family (e.g. [server.jobs_completed{tenant=...}], the unlabeled
    entry included as [[]]) reads back as one table. *)

val to_json : snapshot -> Jsonv.t
val to_string : snapshot -> string

val reset : t -> unit
(** Drop every metric in the registry (existing handles keep working
    but are no longer reachable from new [counter]/... calls). *)
