(** Structured trace-event sink: span begin/end records per kernel ×
    pattern-instance × layout, exported as Chrome [trace_event] JSON
    (load the file in chrome://tracing or https://ui.perfetto.dev).

    A process-global current sink routes events.  The default sink is
    {!noop}: every probe first checks {!enabled}, so instrumentation
    compiled into the hot paths costs one atomic read when tracing is
    off.  Timestamps are relative to the sink's creation, in
    microseconds; the emitting domain's id becomes the Chrome [tid], so
    pool workers render as separate lanes. *)

type sink

val noop : sink

val memory : unit -> sink
(** A fresh in-memory buffer whose epoch is "now". *)

val set_sink : sink -> unit
val current_sink : unit -> sink

val enabled : unit -> bool
(** True iff the current sink records events. *)

val now : unit -> float
(** Wall-clock seconds (the clock spans are measured with). *)

(* --- recording ---------------------------------------------------------- *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and records one complete span covering
    it in the current sink (also when [f] raises).  When tracing is
    disabled this is one atomic read plus the call to [f]. *)

val complete :
  ?cat:string -> ?args:(string * string) list -> t0:float -> string -> unit
(** Record a span that started at wall-clock [t0] (from {!now}) and
    ends now — for call sites that only know their arguments at the
    end, like a pool worker reporting how many chunks it ran. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

val emit :
  ?cat:string ->
  ?args:(string * string) list ->
  ?tid:int ->
  ts_us:float ->
  dur_us:float ->
  string ->
  unit
(** Record a span with explicit coordinates — used to export simulated
    timelines (hybrid schedule lanes) into the same trace. *)

(* --- inspection and export ---------------------------------------------- *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : [ `Complete | `Instant ];
  ev_ts_us : float;
  ev_dur_us : float;
  ev_tid : int;
  ev_args : (string * string) list;
}

val events : sink -> event list
(** Recorded events in timestamp order; [[]] for {!noop}. *)

val to_json : sink -> Jsonv.t
(** Chrome trace object: [{"traceEvents": [...], ...}]. *)

val to_chrome_json : sink -> string

val export : sink -> string -> unit
(** Write {!to_chrome_json} to a file. *)

val clear : sink -> unit
