open Mpas_mesh

type rank_halo = {
  rank : int;
  owned : int list;
  boundary : int list;
  ghosts : (int * int) list;
  neighbours : int list;
}

let build (m : Mesh.t) (p : Partition.t) =
  let owned = Array.make p.Partition.n_parts [] in
  let boundary = Array.make p.Partition.n_parts [] in
  let ghosts = Array.make p.Partition.n_parts [] in
  let neighbours = Array.make p.Partition.n_parts [] in
  for c = m.n_cells - 1 downto 0 do
    let r = p.Partition.owner.(c) in
    owned.(r) <- c :: owned.(r);
    let foreign =
      Array.to_list m.cells_on_cell.(c)
      |> List.filter (fun c' -> p.Partition.owner.(c') <> r)
    in
    if foreign <> [] then begin
      boundary.(r) <- c :: boundary.(r);
      List.iter
        (fun c' ->
          let r' = p.Partition.owner.(c') in
          if not (List.mem (c', r') ghosts.(r)) then
            ghosts.(r) <- (c', r') :: ghosts.(r);
          if not (List.mem r' neighbours.(r)) then
            neighbours.(r) <- r' :: neighbours.(r))
        foreign
    end
  done;
  Array.init p.Partition.n_parts (fun rank ->
      {
        rank;
        owned = owned.(rank);
        boundary = boundary.(rank);
        ghosts = List.sort compare ghosts.(rank);
        neighbours = List.sort compare neighbours.(rank);
      })

(* Interior/boundary decomposition of the owned cells, keyed by halo
   depth: the frontier is every owned cell with a foreign neighbour,
   and the boundary widens from it by (depth - 1) hops of
   cells_on_cell — a BFS over owned cells only.  Interior cells are
   therefore at least [depth] hops from any foreign cell, so a
   depth-[d] stencil sweep restricted to interior cells reads no ghost
   value: the transfer-overlap split of the paper's SS IV (compute the
   boundary, ship it, and hide the wire behind interior work). *)
let interior_boundary (m : Mesh.t) (p : Partition.t) ~depth =
  if depth < 1 then invalid_arg "Halo.interior_boundary: depth < 1";
  let owner = p.Partition.owner in
  (* hops.(c) = BFS distance from the frontier within the owner's
     patch; max_int = farther than [depth - 1] (interior). *)
  let hops = Array.make m.n_cells max_int in
  let frontier = ref [] in
  for c = m.n_cells - 1 downto 0 do
    let foreign = ref false in
    for j = 0 to m.n_edges_on_cell.(c) - 1 do
      if owner.(m.cells_on_cell.(c).(j)) <> owner.(c) then foreign := true
    done;
    if !foreign then begin
      hops.(c) <- 0;
      frontier := c :: !frontier
    end
  done;
  let wave = ref !frontier in
  for d = 1 to depth - 1 do
    let next = ref [] in
    List.iter
      (fun c ->
        for j = 0 to m.n_edges_on_cell.(c) - 1 do
          let c' = m.cells_on_cell.(c).(j) in
          if owner.(c') = owner.(c) && hops.(c') > d then begin
            hops.(c') <- d;
            next := c' :: !next
          end
        done)
      !wave;
    wave := !next
  done;
  let interior = Array.make p.Partition.n_parts [] in
  let boundary = Array.make p.Partition.n_parts [] in
  for c = m.n_cells - 1 downto 0 do
    let r = owner.(c) in
    if hops.(c) < max_int then boundary.(r) <- c :: boundary.(r)
    else interior.(r) <- c :: interior.(r)
  done;
  Array.init p.Partition.n_parts (fun r ->
      (Array.of_list interior.(r), Array.of_list boundary.(r)))

let summaries halos =
  Array.map
    (fun h ->
      (List.length h.owned, List.length h.boundary, List.length h.neighbours))
    halos

let check (m : Mesh.t) (p : Partition.t) halos =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  if Array.length halos <> p.Partition.n_parts then err "halo count mismatch";
  let total_owned =
    Array.fold_left (fun acc h -> acc + List.length h.owned) 0 halos
  in
  if total_owned <> m.n_cells then
    err "owned cells sum to %d, mesh has %d" total_owned m.n_cells;
  Array.iter
    (fun h ->
      List.iter
        (fun c ->
          if p.Partition.owner.(c) <> h.rank then
            err "rank %d lists boundary cell %d it does not own" h.rank c)
        h.boundary;
      List.iter
        (fun (c, home) ->
          if p.Partition.owner.(c) <> home then
            err "rank %d ghost %d has wrong home" h.rank c;
          if home = h.rank then err "rank %d ghosts its own cell %d" h.rank c;
          (* The ghost's home rank must list it as boundary. *)
          if not (List.mem c halos.(home).boundary) then
            err "ghost %d of rank %d missing from rank %d boundary" c h.rank
              home)
        h.ghosts)
    halos;
  List.rev !errors
