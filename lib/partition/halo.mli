(** Halo construction: per-rank ghost layers and exchange lists derived
    from a partition, the data behind the "Exchange halo" boxes of
    paper Figures 2 and 4. *)

open Mpas_mesh

type rank_halo = {
  rank : int;
  owned : int list;  (** cells owned by this rank *)
  boundary : int list;
      (** owned cells adjacent to another rank (data it must send) *)
  ghosts : (int * int) list;
      (** (cell, home rank) pairs this rank must receive *)
  neighbours : int list;  (** ranks exchanged with *)
}

(** Build the one-layer halo of every rank. *)
val build : Mesh.t -> Partition.t -> rank_halo array

(** [interior_boundary m p ~depth] splits each rank's owned cells into
    (interior, boundary) index arrays, both sorted ascending.  The
    boundary is every owned cell within [depth - 1] cells_on_cell hops
    of the rank's frontier (owned cells with a foreign neighbour); the
    interior is the rest, so a depth-[depth] stencil sweep over
    interior cells touches no ghost cell — the decomposition behind
    communication/computation overlap.  Raises [Invalid_argument] when
    [depth < 1]. *)
val interior_boundary :
  Mesh.t -> Partition.t -> depth:int -> (int array * int array) array

(** Summary triples (owned, boundary, neighbours) per rank, the input
    of [Mpas_machine.Netmodel.patch_of_partition]. *)
val summaries : rank_halo array -> (int * int * int) array

(** Validation against mesh and partition: ghosts are exactly the
    other-rank neighbours of owned cells, send/receive lists are
    mutually consistent, every boundary cell is owned.  Returns
    violations. *)
val check : Mesh.t -> Partition.t -> rank_halo array -> string list
