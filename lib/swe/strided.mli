(** Member-batched kernels over panelled (AoSoA) Bigarray slabs.

    The ensemble engine stores each field of every batch member in one
    C-layout float64 slab.  Members are grouped into {e panels} of
    width [bw] (the engine's member block): entry [i] of member [mm]
    lives at

    {[ (mm / bw) * size * bw  +  i * bw  +  (mm mod bw) ]}

    where [size] is the field's mesh-space extent.  Within a panel the
    [bw] members of any mesh entity sit contiguously, so a CSR gather
    loads each neighbour's cache line once and serves the whole panel —
    where a flat member-major layout ([mm * size + i]) would touch [bw]
    lines a full member stride apart per neighbour.  At [bw = 1] the
    two layouts coincide exactly.  Slabs are padded to whole panels;
    padding slots are never enabled and never read.

    The kernels sweep a member range [\[mlo, mhi)] of such slabs in one
    pass, walking the mesh entity-outer / member-inner so the CSR
    offsets, tables and geometry are loaded once per entity and applied
    to every member — the batched counterpart of the CSR fast paths in
    {!Operators}, mirrored op for op so each member's result is
    bit-identical to a solo run of the refactored engine.  Except for
    {!blit_state}, a member range must stay inside one panel (the
    runtime's member blocks are panels, so this is the natural calling
    shape).

    Members are skipped, not branched around: every kernel takes an
    [on] mask indexed by member slot, and a slot whose mask entry is
    [false] (evicted, finished, or quarantined after a blow-up) is not
    read or written at all.  Per-member physics (gravity, APVM factor,
    dissipation, drag, [dt], advection order, PV averaging) comes in as
    slot-indexed parameter arrays, so one sweep serves a batch of
    differently-configured runs.

    Safety: mesh-side indexing is [unsafe_*] against tables validated
    once by [Mesh.csr] (the {!Mpas_analysis.Bounds} catalog lists every
    site); slab and parameter extents are checked on entry, so the
    panel-addressed [unsafe_*] accesses are guarded the same way
    [Operators.check_len] guards the solo fast paths. *)

open Mpas_mesh

type slab = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** One field for all members: [panels * size * bw] entries, panelled
    as described above. *)

val alloc : bw:int -> members:int -> size:int -> slab
(** Zero-filled slab for [members] slots of a [size]-point field,
    padded to whole panels of width [bw]. *)

val fill_member : slab -> bw:int -> size:int -> member:int -> float array -> unit
(** Load a solo field into one member's panel lane (bounds-checked). *)

val read_member : slab -> bw:int -> size:int -> member:int -> float array
(** Extract one member's panel lane as a fresh solo field
    (bounds-checked). *)

val blit_member : src:slab -> dst:slab -> bw:int -> size:int -> member:int -> unit
(** Copy one member's lane between slabs of the same shape. *)

val fill_value : slab -> bw:int -> size:int -> member:int -> float -> unit
(** Set every entry of one member's lane to a constant. *)

(** {2 Batched kernels}

    All kernels share the calling shape
    [kernel m ~bw ~on ~mlo ~mhi ~<inputs> ~out]: members [mm] with
    [mlo <= mm < mhi] and [on.(mm)] participate, and (except for
    {!blit_state}) the range must lie inside one panel of width [bw].
    Slab arguments must hold every panel up to the one containing
    [mhi - 1] and parameter arrays at least [mhi] entries; violations
    raise [Invalid_argument] with got/expected counts before any unsafe
    access. *)

val blit_state :
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  size:int ->
  src:slab ->
  dst:slab ->
  unit
(** Per-member [dst <- src] over one mesh space.  May span panels; a
    panel whose members are all enabled moves as one contiguous blit,
    otherwise only the enabled lanes are copied. *)

val d2fdx2 :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  h:slab ->
  out:slab ->
  unit
(** Pass [on] = active ∧ fourth-order: only those members need it. *)

val h_edge :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  fourth:bool array ->
  h:slab ->
  d2fdx2_cell:slab ->
  out:slab ->
  unit
(** Per-member advection order: [fourth.(mm)] selects the 4th-order
    correction, otherwise the 2nd-order average. *)

val kinetic_energy :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  u:slab ->
  out:slab ->
  unit

val divergence :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  u:slab ->
  out:slab ->
  unit

val vorticity :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  u:slab ->
  out:slab ->
  unit

val h_vertex :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  h:slab ->
  out:slab ->
  unit

val pv_vertex :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  f_vertex:slab ->
  vorticity:slab ->
  h_vertex:slab ->
  out:slab ->
  unit
(** [f_vertex] is a per-member slab: Coriolis variants (e.g. the
    rotated Williamson cases) differ only here. *)

val pv_cell :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  pv_vertex:slab ->
  out:slab ->
  unit

val tangential_velocity :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  u:slab ->
  out:slab ->
  unit

val grad_pv :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  pv_cell:slab ->
  pv_vertex:slab ->
  out_n:slab ->
  out_t:slab ->
  unit

val pv_edge :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  apvm_factor:float array ->
  dt:float array ->
  pv_vertex:slab ->
  grad_pv_n:slab ->
  grad_pv_t:slab ->
  u:slab ->
  v_tangential:slab ->
  out:slab ->
  unit

val tend_h :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  h_edge:slab ->
  u:slab ->
  out:slab ->
  unit

val tend_u :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  symmetric:bool array ->
  gravity:float array ->
  h:slab ->
  b:slab ->
  ke:slab ->
  h_edge:slab ->
  u:slab ->
  pv_edge:slab ->
  out:slab ->
  unit
(** [symmetric.(mm)] selects the energy-neutral PV average,
    [b] is the per-member bottom topography slab. *)

val dissipation :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  visc2:float array ->
  divergence:slab ->
  vorticity:slab ->
  tend_u:slab ->
  unit
(** Adds [visc2.(mm) * lap u]; members with [visc2.(mm) = 0.] are
    untouched, mirroring the solo kernel's global gate. *)

val local_forcing :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  drag:float array ->
  u:slab ->
  tend_u:slab ->
  unit

val enforce_boundary_edge :
  Mesh.t -> bw:int -> on:bool array -> mlo:int -> mhi:int -> tend_u:slab -> unit

val next_substep_state :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  rk:int ->
  dt:float array ->
  base_h:slab ->
  base_u:slab ->
  tend_h:slab ->
  tend_u:slab ->
  provis_h:slab ->
  provis_u:slab ->
  unit
(** RK-4 substep coefficient [dt/2, dt/2, dt] chosen per member from
    [dt.(mm)] and [rk] (must be 0, 1 or 2). *)

val accumulate :
  Mesh.t ->
  bw:int ->
  on:bool array ->
  mlo:int ->
  mhi:int ->
  rk:int ->
  dt:float array ->
  tend_h:slab ->
  tend_u:slab ->
  accum_h:slab ->
  accum_u:slab ->
  unit
(** RK-4 accumulation coefficient [dt/6, dt/3, dt/3, dt/6] per member. *)
