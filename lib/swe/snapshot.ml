exception Corrupt of string

type t = { sn_step : int; sn_members : (int * Fields.state) list }

let version = 1
let magic = "MPAS-SNP"

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* FNV-1a, 64-bit: simple, dependency-free, and sensitive to every bit
   of the frame — a detector, not a cryptographic authenticator. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let checksum_bytes b ~len =
  let h = ref fnv_offset in
  for i = 0 to len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h fnv_prime
  done;
  !h

let checksum s = checksum_bytes (Bytes.unsafe_of_string s) ~len:(String.length s)

let singleton ~step tag state = { sn_step = step; sn_members = [ (tag, state) ] }

let encode t =
  if t.sn_step < 0 then
    invalid_arg
      (Printf.sprintf "Snapshot.encode: step %d, need >= 0" t.sn_step);
  List.iter
    (fun (_, (st : Fields.state)) ->
      let nt = Array.length st.Fields.tracers in
      if nt <> 0 then
        invalid_arg
          (Printf.sprintf
             "Snapshot.encode: tracer rows unsupported (got %d, expected 0)" nt))
    t.sn_members;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_uint16_le buf version;
  Buffer.add_int64_le buf (Int64.of_int t.sn_step);
  Buffer.add_int32_le buf (Int32.of_int (List.length t.sn_members));
  List.iter
    (fun (tag, (st : Fields.state)) ->
      Buffer.add_int64_le buf (Int64.of_int tag);
      Buffer.add_int32_le buf (Int32.of_int (Array.length st.Fields.h));
      Buffer.add_int32_le buf (Int32.of_int (Array.length st.Fields.u));
      Array.iter (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x)) st.Fields.h;
      Array.iter (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x)) st.Fields.u)
    t.sn_members;
  let body = Buffer.contents buf in
  let check = checksum body in
  Buffer.add_int64_le buf check;
  Buffer.contents buf

(* Cursor over the image with explicit remaining-length checks, so a
   truncated frame raises [Corrupt] before any read past the end. *)
type cursor = { data : Bytes.t; limit : int; mutable pos : int }

let need c n what =
  if c.pos + n > c.limit then
    corrupt "truncated: %s needs %d bytes, %d remain" what n (c.limit - c.pos)

let read_u16 c what =
  need c 2 what;
  let v = Bytes.get_uint16_le c.data c.pos in
  c.pos <- c.pos + 2;
  v

let read_i32 c what =
  need c 4 what;
  let v = Int32.to_int (Bytes.get_int32_le c.data c.pos) in
  c.pos <- c.pos + 4;
  v

let read_i64 c what =
  need c 8 what;
  let v = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  v

let read_int c what =
  let v = read_i64 c what in
  match Int64.unsigned_to_int v with
  | Some n -> n
  | None -> corrupt "%s out of range: %Ld" what v

let read_floats c n what =
  need c (8 * n) what;
  let a =
    Array.init n (fun i ->
        Int64.float_of_bits (Bytes.get_int64_le c.data (c.pos + (8 * i))))
  in
  c.pos <- c.pos + (8 * n);
  a

let decode s =
  let len = String.length s in
  let min_len = String.length magic + 2 + 8 + 4 + 8 in
  if len < min_len then
    corrupt "truncated: %d bytes, header needs %d" len min_len;
  let data = Bytes.unsafe_of_string s in
  let stored = Bytes.get_int64_le data (len - 8) in
  let computed = checksum_bytes data ~len:(len - 8) in
  if not (Int64.equal stored computed) then
    corrupt "checksum mismatch: stored %Lx, computed %Lx" stored computed;
  let c = { data; limit = len - 8; pos = 0 } in
  let tag = Bytes.sub_string data 0 (String.length magic) in
  if tag <> magic then corrupt "bad magic %S" tag;
  c.pos <- String.length magic;
  let v = read_u16 c "version" in
  if v <> version then corrupt "version %d, this build reads %d" v version;
  let step = read_int c "step" in
  let n_members = read_i32 c "member count" in
  if n_members < 0 then corrupt "member count %d" n_members;
  let members =
    List.init n_members (fun i ->
        let what = Printf.sprintf "member %d" i in
        let tag = read_int c (what ^ " tag") in
        let nh = read_i32 c (what ^ " h length") in
        let nu = read_i32 c (what ^ " u length") in
        if nh < 0 || nu < 0 then
          corrupt "%s has negative field lengths (%d, %d)" what nh nu;
        let h = read_floats c nh (what ^ " h payload") in
        let u = read_floats c nu (what ^ " u payload") in
        (tag, { Fields.h; u; tracers = [||] }))
  in
  if c.pos <> c.limit then
    corrupt "%d trailing bytes after the last member" (c.limit - c.pos);
  { sn_step = step; sn_members = members }

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))
