open Mpas_mesh

(** Fused super-kernels for the task runtime.

    Each function executes a legal kernel chain — as packed by the
    runtime's spec-level fusion planner — over one contiguous tile
    [lo, hi) of its index space, so a stolen or tiled task sweeps its
    slice of every member once while the intermediates are cache-hot.
    Values a member point-reads from the previous member's output are
    carried in registers, but every member output array is still
    written in full, keeping the chain's union footprint observable to
    the analysis layer.

    All results are bit-identical to running the member kernels of
    {!Operators} back to back over the same range: the fused loops
    walk the same CSR rows in the same order and keep each member's
    floating-point operation order.

    The [x4]/[x5] accumulator triples are
    [(coef, accumulator, publish)]: the accumulative-update member
    adds [coef *] the fresh tendency into the accumulator and, in the
    final substep ([publish = Some state_field]), stores the result
    into the state as well. *)

val tend_h_chain :
  Mesh.t ->
  h_edge:float array ->
  u:float array ->
  out:float array ->
  x4:(float * float array * float array option) option ->
  lo:int ->
  hi:int ->
  unit
(** A1 [+X4] over cells. *)

val tend_u_chain :
  Mesh.t ->
  pv_average:Config.pv_average ->
  gravity:float ->
  h:float array ->
  b:float array ->
  ke:float array ->
  h_edge:float array ->
  u:float array ->
  pv_edge:float array ->
  out:float array ->
  dissip:(float * float array * float array) option ->
  drag:float ->
  boundary:bool ->
  x5:(float * float array * float array option) option ->
  lo:int ->
  hi:int ->
  unit
(** B1 [+C1] [+X1] [+X2] [+X5] over edges.  [dissip] is
    [(visc2, divergence, vorticity)] (pass [None] when visc2 = 0,
    matching C1's gate); [drag = 0.] and [boundary = false] likewise
    make X1/X2 no-ops. *)

val diag_cells_chain :
  Mesh.t ->
  h:float array ->
  u:float array ->
  d2:float array option ->
  ke_out:float array option ->
  div_out:float array option ->
  x4:(float * float array * float array option) option ->
  tend_h:float array ->
  lo:int ->
  hi:int ->
  unit
(** [H2] [+A2] [+A3] [+X4] over cells, sharing one cell-edge row walk.
    [d2 = None] when the advection order is second (H2 no-op). *)

val diag_edges_chain :
  Mesh.t ->
  order:Config.h_adv_order ->
  h:float array ->
  d2fdx2_cell:float array ->
  h_edge_out:float array ->
  g:(float array * float array) option ->
  x5:(float * float array * float array option) option ->
  tend_u:float array ->
  lo:int ->
  hi:int ->
  unit
(** B2 [+G] [+X5] over edges.  [g] is [(u, v_tangential_out)]. *)

val vortex_chain :
  Mesh.t ->
  u:float array ->
  h:float array ->
  vort_out:float array ->
  hv_out:float array option ->
  pv_out:float array option ->
  lo:int ->
  hi:int ->
  unit
(** D1 [+C2] [+D2] over vertices.  [pv_out] requires [hv_out]. *)

val pv_edge_chain :
  Mesh.t ->
  g:(float array * float array) option ->
  pv_cell:float array ->
  pv_vertex:float array ->
  gn_out:float array ->
  gt_out:float array ->
  f:(float * float * float array * float array * float array) option ->
  lo:int ->
  hi:int ->
  unit
(** [G+] H1 [+F] over edges.  [g] is [(u, v_tangential_out)]; [f] is
    [(apvm_factor, dt, u, v_tangential, pv_edge_out)]. *)

val pv_cell_range :
  Mesh.t ->
  pv_vertex:float array ->
  out:float array ->
  lo:int ->
  hi:int ->
  unit
(** E over cells [lo, hi): the CSR fast path of {!Operators.pv_cell}
    restricted to one tile.  E never fuses, but its tiled parts must
    keep the fast path — the ragged index fallback pays a per-element
    local-index search. *)

val next_substep_range :
  Mesh.t ->
  coef:float ->
  base:Fields.state ->
  tend:Fields.tendencies ->
  provis:Fields.state ->
  clo:int ->
  chi:int ->
  elo:int ->
  ehi:int ->
  unit
(** X3 over cells [clo, chi) and edges [elo, ehi): the pointwise
    provisional-state update of {!Operators.next_substep_state}
    restricted to one tile of each space. *)
