open Mpas_mesh
module A1 = Bigarray.Array1

type slab = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

(* Panel (AoSoA) layout: members are grouped into panels of width [bw];
   entry [i] of member [mm] lives at

     (mm / bw) * size * bw  +  i * bw  +  (mm mod bw)

   so the [bw] members of a panel sit contiguously for every mesh
   entity.  A CSR gather then pulls one cache line and serves the whole
   panel where the flat member-major layout ([mm * size + i]) touched
   [bw] lines a full member stride apart.  At [bw = 1] the two layouts
   coincide exactly. *)

let panels ~bw ~members = (members + bw - 1) / bw

let alloc ~bw ~members ~size =
  if bw < 1 then
    invalid_arg (Printf.sprintf "Strided.alloc: panel width %d, need >= 1" bw);
  if members < 1 then
    invalid_arg (Printf.sprintf "Strided.alloc: members %d, need >= 1" members);
  let s =
    A1.create Bigarray.float64 Bigarray.c_layout (panels ~bw ~members * bw * size)
  in
  A1.fill s 0.;
  s

let check_member what ~bw size member (s : slab) =
  if member < 0 || ((member / bw) + 1) * size * bw > A1.dim s then
    invalid_arg
      (Printf.sprintf "Strided.%s: member %d out of slab (got %d, expected >= %d)"
         what member (A1.dim s)
         (((member / bw) + 1) * size * bw))

let member_base ~bw ~size member = ((member / bw) * size * bw) + (member mod bw)

let fill_member s ~bw ~size ~member a =
  check_member "fill_member" ~bw size member s;
  if Array.length a <> size then
    invalid_arg
      (Printf.sprintf "Strided.fill_member: field length (got %d, expected %d)"
         (Array.length a) size);
  let base = member_base ~bw ~size member in
  for i = 0 to size - 1 do
    A1.set s (base + (i * bw)) a.(i)
  done

let read_member s ~bw ~size ~member =
  check_member "read_member" ~bw size member s;
  let base = member_base ~bw ~size member in
  Array.init size (fun i -> A1.get s (base + (i * bw)))

let blit_member ~src ~dst ~bw ~size ~member =
  check_member "blit_member" ~bw size member src;
  check_member "blit_member" ~bw size member dst;
  let base = member_base ~bw ~size member in
  for i = 0 to size - 1 do
    A1.set dst (base + (i * bw)) (A1.get src (base + (i * bw)))
  done

let fill_value s ~bw ~size ~member v =
  check_member "fill_value" ~bw size member s;
  let base = member_base ~bw ~size member in
  for i = 0 to size - 1 do
    A1.set s (base + (i * bw)) v
  done

(* Entry guards: like [Operators.check_len], every strided kernel
   verifies the member range against the mask/parameter extents and the
   slab dimensions before its unsafe loops run.  These checks are the
   [Slab_guard]/[Member_guard] assumptions the Bounds catalog leans on. *)

let check_range kernel ~bw ~on ~mlo ~mhi =
  if bw < 1 then
    invalid_arg (Printf.sprintf "Strided.%s: panel width %d, need >= 1" kernel bw);
  if mlo < 0 || mhi < mlo then
    invalid_arg
      (Printf.sprintf "Strided.%s: bad member range [%d, %d)" kernel mlo mhi);
  if mhi > mlo && mlo / bw <> (mhi - 1) / bw then
    invalid_arg
      (Printf.sprintf
         "Strided.%s: member range [%d, %d) spans panels of width %d" kernel
         mlo mhi bw);
  if Array.length on < mhi then
    invalid_arg
      (Printf.sprintf "Strided.%s: on mask covers %d members, need %d" kernel
         (Array.length on) mhi)

let check_slab kernel name ~bw size mhi (s : slab) =
  let need = if mhi = 0 then 0 else (((mhi - 1) / bw) + 1) * bw * size in
  if A1.dim s < need then
    invalid_arg
      (Printf.sprintf
         "Strided.%s: slab %s holds %d entries (got %d members of %d, expected %d)"
         kernel name (A1.dim s)
         (A1.dim s / max 1 size)
         size mhi)

let check_params kernel name mhi a =
  if Array.length a < mhi then
    invalid_arg
      (Printf.sprintf "Strided.%s: parameter %s has %d entries, need %d" kernel
         name (Array.length a) mhi)

let check_flags kernel name mhi a =
  if Array.length a < mhi then
    invalid_arg
      (Printf.sprintf "Strided.%s: flag array %s has %d entries, need %d" kernel
         name (Array.length a) mhi)

(* --- state movement ----------------------------------------------------- *)

(* [blit_state] is the one kernel allowed to span panels (the sweep
   seeds accumulator and provisional state for the whole batch in one
   call).  A panel whose members are all enabled moves as one contiguous
   blit; otherwise only the enabled members are copied, stride by
   stride, so a quarantined member's slab data is never clobbered. *)
let blit_state ~bw ~on ~mlo ~mhi ~size ~src ~dst =
  if bw < 1 then
    invalid_arg
      (Printf.sprintf "Strided.blit_state: panel width %d, need >= 1" bw);
  if mlo < 0 || mhi < mlo then
    invalid_arg
      (Printf.sprintf "Strided.blit_state: bad member range [%d, %d)" mlo mhi);
  if Array.length on < mhi then
    invalid_arg
      (Printf.sprintf "Strided.blit_state: on mask covers %d members, need %d"
         (Array.length on) mhi);
  check_slab "blit_state" "src" ~bw size mhi src;
  check_slab "blit_state" "dst" ~bw size mhi dst;
  if mhi > mlo then
    for p = mlo / bw to (mhi - 1) / bw do
      let mb = p * bw in
      let lo = max mlo mb and hi = min mhi (mb + bw) in
      let whole =
        lo = mb
        && hi = mb + bw
        &&
        let ok = ref true in
        for mm = lo to hi - 1 do
          if not (Array.unsafe_get on mm) then ok := false
        done;
        !ok
      in
      let pb = p * size * bw in
      if whole then A1.blit (A1.sub src pb (size * bw)) (A1.sub dst pb (size * bw))
      else
        for mm = lo to hi - 1 do
          if Array.unsafe_get on mm then begin
            let o = pb + (mm - mb) in
            for i = 0 to size - 1 do
              A1.unsafe_set dst (o + (i * bw)) (A1.unsafe_get src (o + (i * bw)))
            done
          end
        done
    done

(* --- compute_solve_diagnostics ------------------------------------------ *)

let d2fdx2 (m : Mesh.t) ~bw ~on ~mlo ~mhi ~h ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "d2fdx2" ~bw ~on ~mlo ~mhi;
  check_slab "d2fdx2" "h" ~bw m.n_cells mhi h;
  check_slab "d2fdx2" "out" ~bw m.n_cells mhi out;
  let offsets = csr.cell_offsets
  and edges = csr.cell_edges
  and neigh = csr.cell_neighbors in
  let dc = m.dc_edge and dv = m.dv_edge and area = m.area_cell in
  let nc = m.n_cells in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw in
  for c = 0 to nc - 1 do
    let j0 = Array.unsafe_get offsets c
    and j1 = Array.unsafe_get offsets (c + 1) in
    let ib = cp + (c * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let hc = A1.unsafe_get h (ib + ml) in
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          let c' = Array.unsafe_get neigh j in
          acc :=
            !acc
            +. (Array.unsafe_get dv e
                *. (A1.unsafe_get h (cp + (c' * bw) + ml) -. hc)
                /. Array.unsafe_get dc e)
        done;
        A1.unsafe_set out (ib + ml) (!acc /. Array.unsafe_get area c)
      end
    done
  done

let h_edge (m : Mesh.t) ~bw ~on ~mlo ~mhi ~fourth ~h ~d2fdx2_cell ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "h_edge" ~bw ~on ~mlo ~mhi;
  check_flags "h_edge" "fourth" mhi fourth;
  check_slab "h_edge" "h" ~bw m.n_cells mhi h;
  check_slab "h_edge" "d2fdx2_cell" ~bw m.n_cells mhi d2fdx2_cell;
  check_slab "h_edge" "out" ~bw m.n_edges mhi out;
  let ec = csr.edge_cells in
  let dc_edge = m.dc_edge in
  let nc = m.n_cells and ne = m.n_edges in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw and ep = mlo / bw * ne * bw in
  for e = 0 to ne - 1 do
    let c1 = Array.unsafe_get ec (2 * e)
    and c2 = Array.unsafe_get ec ((2 * e) + 1) in
    let dc = Array.unsafe_get dc_edge e in
    let b1 = cp + (c1 * bw) and b2 = cp + (c2 * bw) in
    let eb = ep + (e * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let h1 = A1.unsafe_get h (b1 + ml) and h2 = A1.unsafe_get h (b2 + ml) in
        let v =
          if Array.unsafe_get fourth mm then
            (0.5 *. (h1 +. h2))
            -. (dc *. dc /. 24.
                *. (A1.unsafe_get d2fdx2_cell (b1 + ml)
                   +. A1.unsafe_get d2fdx2_cell (b2 + ml)))
          else 0.5 *. (h1 +. h2)
        in
        A1.unsafe_set out (eb + ml) v
      end
    done
  done

let kinetic_energy (m : Mesh.t) ~bw ~on ~mlo ~mhi ~u ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "kinetic_energy" ~bw ~on ~mlo ~mhi;
  check_slab "kinetic_energy" "u" ~bw m.n_edges mhi u;
  check_slab "kinetic_energy" "out" ~bw m.n_cells mhi out;
  let offsets = csr.cell_offsets and edges = csr.cell_edges in
  let dc = m.dc_edge and dv = m.dv_edge and area = m.area_cell in
  let nc = m.n_cells and ne = m.n_edges in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw and ep = mlo / bw * ne * bw in
  for c = 0 to nc - 1 do
    let j0 = Array.unsafe_get offsets c
    and j1 = Array.unsafe_get offsets (c + 1) in
    let cb = cp + (c * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          let ue = A1.unsafe_get u (ep + (e * bw) + ml) in
          acc :=
            !acc
            +. (0.25 *. Array.unsafe_get dc e *. Array.unsafe_get dv e *. ue
                *. ue)
        done;
        A1.unsafe_set out (cb + ml) (!acc /. Array.unsafe_get area c)
      end
    done
  done

let divergence (m : Mesh.t) ~bw ~on ~mlo ~mhi ~u ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "divergence" ~bw ~on ~mlo ~mhi;
  check_slab "divergence" "u" ~bw m.n_edges mhi u;
  check_slab "divergence" "out" ~bw m.n_cells mhi out;
  let offsets = csr.cell_offsets
  and edges = csr.cell_edges
  and signs = csr.cell_edge_signs in
  let dv = m.dv_edge and area = m.area_cell in
  let nc = m.n_cells and ne = m.n_edges in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw and ep = mlo / bw * ne * bw in
  for c = 0 to nc - 1 do
    let j0 = Array.unsafe_get offsets c
    and j1 = Array.unsafe_get offsets (c + 1) in
    let cb = cp + (c * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          acc :=
            !acc
            +. (Array.unsafe_get signs j
                *. A1.unsafe_get u (ep + (e * bw) + ml)
                *. Array.unsafe_get dv e)
        done;
        A1.unsafe_set out (cb + ml) (!acc /. Array.unsafe_get area c)
      end
    done
  done

let vorticity (m : Mesh.t) ~bw ~on ~mlo ~mhi ~u ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "vorticity" ~bw ~on ~mlo ~mhi;
  check_slab "vorticity" "u" ~bw m.n_edges mhi u;
  check_slab "vorticity" "out" ~bw m.n_vertices mhi out;
  let ve = csr.vertex_edges and signs = csr.vertex_edge_signs in
  let dc = m.dc_edge and area = m.area_triangle in
  let nv = m.n_vertices and ne = m.n_edges in
  let mb = mlo / bw * bw in
  let vp = mlo / bw * nv * bw and ep = mlo / bw * ne * bw in
  for v = 0 to nv - 1 do
    let b = 3 * v in
    let vb = vp + (v * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let acc = ref 0. in
        for k = b to b + 2 do
          let e = Array.unsafe_get ve k in
          acc :=
            !acc
            +. (Array.unsafe_get signs k
                *. A1.unsafe_get u (ep + (e * bw) + ml)
                *. Array.unsafe_get dc e)
        done;
        A1.unsafe_set out (vb + ml) (!acc /. Array.unsafe_get area v)
      end
    done
  done

let h_vertex (m : Mesh.t) ~bw ~on ~mlo ~mhi ~h ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "h_vertex" ~bw ~on ~mlo ~mhi;
  check_slab "h_vertex" "h" ~bw m.n_cells mhi h;
  check_slab "h_vertex" "out" ~bw m.n_vertices mhi out;
  let vc = csr.vertex_cells and kites = csr.vertex_kite_areas in
  let area = m.area_triangle in
  let nv = m.n_vertices and nc = m.n_cells in
  let mb = mlo / bw * bw in
  let vp = mlo / bw * nv * bw and cp = mlo / bw * nc * bw in
  for v = 0 to nv - 1 do
    let b = 3 * v in
    let vb = vp + (v * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let acc = ref 0. in
        for k = b to b + 2 do
          acc :=
            !acc
            +. (Array.unsafe_get kites k
                *. A1.unsafe_get h (cp + (Array.unsafe_get vc k * bw) + ml))
        done;
        A1.unsafe_set out (vb + ml) (!acc /. Array.unsafe_get area v)
      end
    done
  done

let pv_vertex (m : Mesh.t) ~bw ~on ~mlo ~mhi ~f_vertex ~vorticity ~h_vertex ~out =
  check_range "pv_vertex" ~bw ~on ~mlo ~mhi;
  let nv = m.n_vertices in
  check_slab "pv_vertex" "f_vertex" ~bw nv mhi f_vertex;
  check_slab "pv_vertex" "vorticity" ~bw nv mhi vorticity;
  check_slab "pv_vertex" "h_vertex" ~bw nv mhi h_vertex;
  check_slab "pv_vertex" "out" ~bw nv mhi out;
  let mb = mlo / bw * bw in
  let vp = mlo / bw * nv * bw in
  for v = 0 to nv - 1 do
    let vb = vp + (v * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let i = vb + mm - mb in
        A1.unsafe_set out i
          ((A1.unsafe_get f_vertex i +. A1.unsafe_get vorticity i)
          /. A1.unsafe_get h_vertex i)
      end
    done
  done

let pv_cell (m : Mesh.t) ~bw ~on ~mlo ~mhi ~pv_vertex ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "pv_cell" ~bw ~on ~mlo ~mhi;
  check_slab "pv_cell" "pv_vertex" ~bw m.n_vertices mhi pv_vertex;
  check_slab "pv_cell" "out" ~bw m.n_cells mhi out;
  let offsets = csr.cell_offsets
  and verts = csr.cell_vertices
  and vc = csr.vertex_cells
  and kites = csr.vertex_kite_areas in
  let area = m.area_cell in
  let nc = m.n_cells and nv = m.n_vertices in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw and vp = mlo / bw * nv * bw in
  for c = 0 to nc - 1 do
    let j0 = Array.unsafe_get offsets c
    and j1 = Array.unsafe_get offsets (c + 1) in
    let cb = cp + (c * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let v = Array.unsafe_get verts j in
          let b = 3 * v in
          (* Reverse link validated by [Mesh.csr]: third slot implied
             when the first two miss. *)
          let k =
            if Array.unsafe_get vc b = c then b
            else if Array.unsafe_get vc (b + 1) = c then b + 1
            else b + 2
          in
          acc :=
            !acc
            +. (Array.unsafe_get kites k
               *. A1.unsafe_get pv_vertex (vp + (v * bw) + ml))
        done;
        A1.unsafe_set out (cb + ml) (!acc /. Array.unsafe_get area c)
      end
    done
  done

let tangential_velocity (m : Mesh.t) ~bw ~on ~mlo ~mhi ~u ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "tangential_velocity" ~bw ~on ~mlo ~mhi;
  check_slab "tangential_velocity" "u" ~bw m.n_edges mhi u;
  check_slab "tangential_velocity" "out" ~bw m.n_edges mhi out;
  let offsets = csr.eoe_offsets and eoe = csr.eoe_edges and w = csr.eoe_weights in
  let ne = m.n_edges in
  let mb = mlo / bw * bw in
  let ep = mlo / bw * ne * bw in
  for e = 0 to ne - 1 do
    let i0 = Array.unsafe_get offsets e
    and i1 = Array.unsafe_get offsets (e + 1) in
    let eb = ep + (e * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let acc = ref 0. in
        for i = i0 to i1 - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get w i
                *. A1.unsafe_get u (ep + (Array.unsafe_get eoe i * bw) + ml))
        done;
        A1.unsafe_set out (eb + ml) !acc
      end
    done
  done

let grad_pv (m : Mesh.t) ~bw ~on ~mlo ~mhi ~pv_cell ~pv_vertex ~out_n ~out_t =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "grad_pv" ~bw ~on ~mlo ~mhi;
  check_slab "grad_pv" "pv_cell" ~bw m.n_cells mhi pv_cell;
  check_slab "grad_pv" "pv_vertex" ~bw m.n_vertices mhi pv_vertex;
  check_slab "grad_pv" "out_n" ~bw m.n_edges mhi out_n;
  check_slab "grad_pv" "out_t" ~bw m.n_edges mhi out_t;
  let ec = csr.edge_cells and ev = csr.edge_vertices in
  let dc = m.dc_edge and dv = m.dv_edge in
  let nc = m.n_cells and ne = m.n_edges and nv = m.n_vertices in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw
  and ep = mlo / bw * ne * bw
  and vp = mlo / bw * nv * bw in
  for e = 0 to ne - 1 do
    let c1 = Array.unsafe_get ec (2 * e)
    and c2 = Array.unsafe_get ec ((2 * e) + 1) in
    let v1 = Array.unsafe_get ev (2 * e)
    and v2 = Array.unsafe_get ev ((2 * e) + 1) in
    let dce = Array.unsafe_get dc e and dve = Array.unsafe_get dv e in
    let eb = ep + (e * bw) in
    let cb1 = cp + (c1 * bw)
    and cb2 = cp + (c2 * bw)
    and vb1 = vp + (v1 * bw)
    and vb2 = vp + (v2 * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        A1.unsafe_set out_n (eb + ml)
          ((A1.unsafe_get pv_cell (cb2 + ml) -. A1.unsafe_get pv_cell (cb1 + ml))
          /. dce);
        A1.unsafe_set out_t (eb + ml)
          ((A1.unsafe_get pv_vertex (vb2 + ml)
           -. A1.unsafe_get pv_vertex (vb1 + ml))
          /. dve)
      end
    done
  done

let pv_edge (m : Mesh.t) ~bw ~on ~mlo ~mhi ~apvm_factor ~dt ~pv_vertex
    ~grad_pv_n ~grad_pv_t ~u ~v_tangential ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "pv_edge" ~bw ~on ~mlo ~mhi;
  check_params "pv_edge" "apvm_factor" mhi apvm_factor;
  check_params "pv_edge" "dt" mhi dt;
  check_slab "pv_edge" "pv_vertex" ~bw m.n_vertices mhi pv_vertex;
  check_slab "pv_edge" "grad_pv_n" ~bw m.n_edges mhi grad_pv_n;
  check_slab "pv_edge" "grad_pv_t" ~bw m.n_edges mhi grad_pv_t;
  check_slab "pv_edge" "u" ~bw m.n_edges mhi u;
  check_slab "pv_edge" "v_tangential" ~bw m.n_edges mhi v_tangential;
  check_slab "pv_edge" "out" ~bw m.n_edges mhi out;
  let ev = csr.edge_vertices in
  let ne = m.n_edges and nv = m.n_vertices in
  let mb = mlo / bw * bw in
  let ep = mlo / bw * ne * bw and vp = mlo / bw * nv * bw in
  for e = 0 to ne - 1 do
    let v1 = Array.unsafe_get ev (2 * e)
    and v2 = Array.unsafe_get ev ((2 * e) + 1) in
    let eb = ep + (e * bw) in
    let vb1 = vp + (v1 * bw) and vb2 = vp + (v2 * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let base =
          0.5
          *. (A1.unsafe_get pv_vertex (vb1 + ml)
             +. A1.unsafe_get pv_vertex (vb2 + ml))
        in
        let advect =
          (A1.unsafe_get u (eb + ml) *. A1.unsafe_get grad_pv_n (eb + ml))
          +. (A1.unsafe_get v_tangential (eb + ml)
             *. A1.unsafe_get grad_pv_t (eb + ml))
        in
        A1.unsafe_set out (eb + ml)
          (base
          -. (Array.unsafe_get apvm_factor mm *. Array.unsafe_get dt mm
             *. advect))
      end
    done
  done

(* --- compute_tend ------------------------------------------------------- *)

let tend_h (m : Mesh.t) ~bw ~on ~mlo ~mhi ~h_edge ~u ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "tend_h" ~bw ~on ~mlo ~mhi;
  check_slab "tend_h" "h_edge" ~bw m.n_edges mhi h_edge;
  check_slab "tend_h" "u" ~bw m.n_edges mhi u;
  check_slab "tend_h" "out" ~bw m.n_cells mhi out;
  let offsets = csr.cell_offsets
  and edges = csr.cell_edges
  and signs = csr.cell_edge_signs in
  let dv = m.dv_edge and area = m.area_cell in
  let nc = m.n_cells and ne = m.n_edges in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw and ep = mlo / bw * ne * bw in
  for c = 0 to nc - 1 do
    let j0 = Array.unsafe_get offsets c
    and j1 = Array.unsafe_get offsets (c + 1) in
    let cb = cp + (c * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          let eb = ep + (e * bw) + ml in
          acc :=
            !acc
            +. (Array.unsafe_get signs j
                *. A1.unsafe_get h_edge eb
                *. A1.unsafe_get u eb
                *. Array.unsafe_get dv e)
        done;
        A1.unsafe_set out (cb + ml) (-.(!acc) /. Array.unsafe_get area c)
      end
    done
  done

let tend_u (m : Mesh.t) ~bw ~on ~mlo ~mhi ~symmetric ~gravity ~h ~b ~ke ~h_edge
    ~u ~pv_edge ~out =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "tend_u" ~bw ~on ~mlo ~mhi;
  check_flags "tend_u" "symmetric" mhi symmetric;
  check_params "tend_u" "gravity" mhi gravity;
  check_slab "tend_u" "h" ~bw m.n_cells mhi h;
  check_slab "tend_u" "b" ~bw m.n_cells mhi b;
  check_slab "tend_u" "ke" ~bw m.n_cells mhi ke;
  check_slab "tend_u" "h_edge" ~bw m.n_edges mhi h_edge;
  check_slab "tend_u" "u" ~bw m.n_edges mhi u;
  check_slab "tend_u" "pv_edge" ~bw m.n_edges mhi pv_edge;
  check_slab "tend_u" "out" ~bw m.n_edges mhi out;
  let offsets = csr.eoe_offsets
  and eoe = csr.eoe_edges
  and w = csr.eoe_weights
  and ec = csr.edge_cells in
  let dc = m.dc_edge in
  let nc = m.n_cells and ne = m.n_edges in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw and ep = mlo / bw * ne * bw in
  for e = 0 to ne - 1 do
    let i0 = Array.unsafe_get offsets e
    and i1 = Array.unsafe_get offsets (e + 1) in
    let c1 = Array.unsafe_get ec (2 * e)
    and c2 = Array.unsafe_get ec ((2 * e) + 1) in
    let dce = Array.unsafe_get dc e in
    let eb = ep + (e * bw) in
    let cb1 = cp + (c1 * bw) and cb2 = cp + (c2 * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let ml = mm - mb in
        (* Perp flux; the symmetric potential-vorticity average makes
           the Coriolis force exactly energy-neutral. *)
        let q_flux = ref 0. in
        (if Array.unsafe_get symmetric mm then begin
           let pe = A1.unsafe_get pv_edge (eb + ml) in
           for i = i0 to i1 - 1 do
             let eb' = ep + (Array.unsafe_get eoe i * bw) + ml in
             let q = 0.5 *. (pe +. A1.unsafe_get pv_edge eb') in
             q_flux :=
               !q_flux
               +. (Array.unsafe_get w i
                   *. A1.unsafe_get u eb'
                   *. A1.unsafe_get h_edge eb'
                   *. q)
           done
         end
         else begin
           let q = A1.unsafe_get pv_edge (eb + ml) in
           for i = i0 to i1 - 1 do
             let eb' = ep + (Array.unsafe_get eoe i * bw) + ml in
             q_flux :=
               !q_flux
               +. (Array.unsafe_get w i
                   *. A1.unsafe_get u eb'
                   *. A1.unsafe_get h_edge eb'
                   *. q)
           done
         end);
        let g = Array.unsafe_get gravity mm in
        let energy cb =
          (g *. (A1.unsafe_get h (cb + ml) +. A1.unsafe_get b (cb + ml)))
          +. A1.unsafe_get ke (cb + ml)
        in
        let grad = (energy cb2 -. energy cb1) /. dce in
        A1.unsafe_set out (eb + ml) (!q_flux -. grad)
      end
    done
  done

let dissipation (m : Mesh.t) ~bw ~on ~mlo ~mhi ~visc2 ~divergence ~vorticity
    ~tend_u =
  let csr : Mesh.csr = Mesh.csr m in
  check_range "dissipation" ~bw ~on ~mlo ~mhi;
  check_params "dissipation" "visc2" mhi visc2;
  check_slab "dissipation" "divergence" ~bw m.n_cells mhi divergence;
  check_slab "dissipation" "vorticity" ~bw m.n_vertices mhi vorticity;
  check_slab "dissipation" "tend_u" ~bw m.n_edges mhi tend_u;
  let ec = csr.edge_cells and ev = csr.edge_vertices in
  let dc = m.dc_edge and dv = m.dv_edge in
  let nc = m.n_cells and ne = m.n_edges and nv = m.n_vertices in
  let mb = mlo / bw * bw in
  let cp = mlo / bw * nc * bw
  and ep = mlo / bw * ne * bw
  and vp = mlo / bw * nv * bw in
  for e = 0 to ne - 1 do
    let c1 = Array.unsafe_get ec (2 * e)
    and c2 = Array.unsafe_get ec ((2 * e) + 1) in
    let v1 = Array.unsafe_get ev (2 * e)
    and v2 = Array.unsafe_get ev ((2 * e) + 1) in
    let dce = Array.unsafe_get dc e and dve = Array.unsafe_get dv e in
    let eb = ep + (e * bw) in
    let cb1 = cp + (c1 * bw)
    and cb2 = cp + (c2 * bw)
    and vb1 = vp + (v1 * bw)
    and vb2 = vp + (v2 * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let nu = Array.unsafe_get visc2 mm in
        if nu <> 0. then begin
          let ml = mm - mb in
          let lap =
            ((A1.unsafe_get divergence (cb2 + ml)
             -. A1.unsafe_get divergence (cb1 + ml))
            /. dce)
            -. ((A1.unsafe_get vorticity (vb2 + ml)
                -. A1.unsafe_get vorticity (vb1 + ml))
               /. dve)
          in
          A1.unsafe_set tend_u (eb + ml)
            (A1.unsafe_get tend_u (eb + ml) +. (nu *. lap))
        end
      end
    done
  done

let local_forcing (m : Mesh.t) ~bw ~on ~mlo ~mhi ~drag ~u ~tend_u =
  check_range "local_forcing" ~bw ~on ~mlo ~mhi;
  check_params "local_forcing" "drag" mhi drag;
  check_slab "local_forcing" "u" ~bw m.n_edges mhi u;
  check_slab "local_forcing" "tend_u" ~bw m.n_edges mhi tend_u;
  let ne = m.n_edges in
  let any = ref false in
  for mm = mlo to mhi - 1 do
    if Array.unsafe_get on mm && Array.unsafe_get drag mm <> 0. then any := true
  done;
  if !any then begin
    let mb = mlo / bw * bw in
    let ep = mlo / bw * ne * bw in
    for e = 0 to ne - 1 do
      let eb = ep + (e * bw) in
      for mm = mlo to mhi - 1 do
        if Array.unsafe_get on mm then begin
          let r = Array.unsafe_get drag mm in
          if r <> 0. then begin
            let i = eb + mm - mb in
            A1.unsafe_set tend_u i
              (A1.unsafe_get tend_u i -. (r *. A1.unsafe_get u i))
          end
        end
      done
    done
  end

(* --- remaining kernels --------------------------------------------------- *)

let enforce_boundary_edge (m : Mesh.t) ~bw ~on ~mlo ~mhi ~tend_u =
  check_range "enforce_boundary_edge" ~bw ~on ~mlo ~mhi;
  check_slab "enforce_boundary_edge" "tend_u" ~bw m.n_edges mhi tend_u;
  let be = m.boundary_edge in
  let ne = m.n_edges in
  let mb = mlo / bw * bw in
  let ep = mlo / bw * ne * bw in
  for e = 0 to ne - 1 do
    if Array.unsafe_get be e then begin
      let eb = ep + (e * bw) in
      for mm = mlo to mhi - 1 do
        if Array.unsafe_get on mm then A1.unsafe_set tend_u (eb + mm - mb) 0.
      done
    end
  done

let substep_coef ~rk dtm =
  match rk with
  | 0 | 1 -> dtm /. 2.
  | 2 -> dtm
  | _ -> invalid_arg "Strided.next_substep_state: rk must be 0, 1 or 2"

let accum_coef ~rk dtm =
  match rk with
  | 0 | 3 -> dtm /. 6.
  | 1 | 2 -> dtm /. 3.
  | _ -> invalid_arg "Strided.accumulate: rk must be 0..3"

let next_substep_state (m : Mesh.t) ~bw ~on ~mlo ~mhi ~rk ~dt ~base_h ~base_u
    ~tend_h ~tend_u ~provis_h ~provis_u =
  check_range "next_substep_state" ~bw ~on ~mlo ~mhi;
  check_params "next_substep_state" "dt" mhi dt;
  check_slab "next_substep_state" "base_h" ~bw m.n_cells mhi base_h;
  check_slab "next_substep_state" "tend_h" ~bw m.n_cells mhi tend_h;
  check_slab "next_substep_state" "provis_h" ~bw m.n_cells mhi provis_h;
  check_slab "next_substep_state" "base_u" ~bw m.n_edges mhi base_u;
  check_slab "next_substep_state" "tend_u" ~bw m.n_edges mhi tend_u;
  check_slab "next_substep_state" "provis_u" ~bw m.n_edges mhi provis_u;
  let nc = m.n_cells and ne = m.n_edges in
  let mb = mlo / bw * bw in
  let coef = Array.make bw 0. in
  for mm = mlo to mhi - 1 do
    if Array.unsafe_get on mm then
      coef.(mm - mb) <- substep_coef ~rk (Array.unsafe_get dt mm)
  done;
  let cp = mlo / bw * nc * bw in
  for c = 0 to nc - 1 do
    let cb = cp + (c * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let i = cb + mm - mb in
        A1.unsafe_set provis_h i
          (A1.unsafe_get base_h i
          +. (Array.unsafe_get coef (mm - mb) *. A1.unsafe_get tend_h i))
      end
    done
  done;
  let ep = mlo / bw * ne * bw in
  for e = 0 to ne - 1 do
    let eb = ep + (e * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let i = eb + mm - mb in
        A1.unsafe_set provis_u i
          (A1.unsafe_get base_u i
          +. (Array.unsafe_get coef (mm - mb) *. A1.unsafe_get tend_u i))
      end
    done
  done

let accumulate (m : Mesh.t) ~bw ~on ~mlo ~mhi ~rk ~dt ~tend_h ~tend_u ~accum_h
    ~accum_u =
  check_range "accumulate" ~bw ~on ~mlo ~mhi;
  check_params "accumulate" "dt" mhi dt;
  check_slab "accumulate" "tend_h" ~bw m.n_cells mhi tend_h;
  check_slab "accumulate" "accum_h" ~bw m.n_cells mhi accum_h;
  check_slab "accumulate" "tend_u" ~bw m.n_edges mhi tend_u;
  check_slab "accumulate" "accum_u" ~bw m.n_edges mhi accum_u;
  let nc = m.n_cells and ne = m.n_edges in
  let mb = mlo / bw * bw in
  let coef = Array.make bw 0. in
  for mm = mlo to mhi - 1 do
    if Array.unsafe_get on mm then
      coef.(mm - mb) <- accum_coef ~rk (Array.unsafe_get dt mm)
  done;
  let cp = mlo / bw * nc * bw in
  for c = 0 to nc - 1 do
    let cb = cp + (c * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let i = cb + mm - mb in
        A1.unsafe_set accum_h i
          (A1.unsafe_get accum_h i
          +. (Array.unsafe_get coef (mm - mb) *. A1.unsafe_get tend_h i))
      end
    done
  done;
  let ep = mlo / bw * ne * bw in
  for e = 0 to ne - 1 do
    let eb = ep + (e * bw) in
    for mm = mlo to mhi - 1 do
      if Array.unsafe_get on mm then begin
        let i = eb + mm - mb in
        A1.unsafe_set accum_u i
          (A1.unsafe_get accum_u i
          +. (Array.unsafe_get coef (mm - mb) *. A1.unsafe_get tend_u i))
      end
    done
  done
