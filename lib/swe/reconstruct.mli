(** mpas_reconstruct: least-squares reconstruction of the full velocity
    vector at cell centers from edge-normal components (instances A4
    and X6 of Table I).

    At initialization, each cell gets coefficient vectors [coef_j] such
    that the reconstructed Cartesian velocity is
    [V(c) = sum_j u(e_j) coef_j] — a tangent-plane-constrained
    least-squares fit through the edge normals, the role played by RBF
    coefficients in MPAS. *)

open Mpas_mesh
open Mpas_par

type t

(** Precompute the per-cell coefficients. *)
val init : Mesh.t -> t

(** A4: fill [out.ux/uy/uz] with the Cartesian reconstruction; X6:
    derive [out.zonal] and [out.meridional] by projecting onto the
    local east/north directions. *)
val run :
  ?pool:Pool.t -> ?on:int array -> t -> Mesh.t -> u:float array ->
  out:Fields.reconstruction -> unit

(** The two pattern instances separately, for drivers that schedule A4
    and X6 as distinct tasks (the dataflow runtime).  [run_cartesian]
    fills [out.ux/uy/uz] (A4); [run_horizontal] derives
    [out.zonal/meridional] from them (X6).  Running the pair is
    bit-identical to {!run}. *)
val run_cartesian :
  ?pool:Pool.t -> ?on:int array -> t -> Mesh.t -> u:float array ->
  out:Fields.reconstruction -> unit

val run_horizontal :
  ?pool:Pool.t -> ?on:int array -> t -> Mesh.t ->
  out:Fields.reconstruction -> unit

(** The fused-runtime tile form: A4 over the contiguous cell range
    [lo, hi), with X6's projection riding the same sweep when [x6] is
    set.  Bit-identical to {!run} / {!run_cartesian}; the Vec3
    arithmetic is scalarized so nothing allocates per cell. *)
val run_range :
  t -> Mesh.t -> u:float array -> out:Fields.reconstruction -> x6:bool ->
  lo:int -> hi:int -> unit
