(** Versioned, checksummed binary snapshots of prognostic state.

    Where {!State_io} is the line-oriented text dump for humans and
    interop, this codec is the serving layer's checkpoint format: a
    compact little-endian binary image of one or more members'
    prognostic fields plus the batch step they were taken at, framed by
    a magic tag, a format version and a trailing FNV-1a 64-bit
    checksum.  Decoding validates the frame before touching the
    payload: a truncated, bit-flipped or otherwise damaged image raises
    {!Corrupt} — it never loads silently and never reads out of
    bounds.

    The member payload is the flat [h]/[u] layout of {!Fields.state}
    (the same per-member lanes {!Strided.read_member} extracts from the
    ensemble slabs), so a snapshot of a batch member restores bit for
    bit: encode∘decode is the identity on every float, and a restarted
    integration continues exactly as the uninterrupted one. *)

exception Corrupt of string
(** The image fails structural validation (bad magic, unknown version,
    truncation, length mismatch) or its checksum. *)

type t = {
  sn_step : int;  (** batch step the snapshot was taken at *)
  sn_members : (int * Fields.state) list;
      (** tagged member states, in encoding order; tags are
          caller-chosen (the serving layer uses job ids) *)
}

val encode : t -> string
(** @raise Invalid_argument on a negative step or tracer rows (the
    ensemble state is tracerless). *)

val decode : string -> t
(** Inverse of {!encode}.  @raise Corrupt as described above. *)

val singleton : step:int -> int -> Fields.state -> t
(** [singleton ~step tag state] wraps one member. *)

val version : int
(** Current format version, for reporting. *)

val checksum : string -> int64
(** The FNV-1a 64 checksum used by the frame (exposed for tests). *)

val save : t -> string -> unit
(** Write an encoded image to a file (binary mode). *)

val load : string -> t
(** Read and decode a file.  @raise Corrupt on damage, [Sys_error] on
    missing files. *)
